package repro_test

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/sweep"
)

// estimateGrid expands cmd/sweep's default grid — all three machines ×
// the paper's seven operations × every registered algorithm variant ×
// the paper's message lengths × p ∈ {8, 32}; 788 scenarios — under the
// cheap benchmark methodology.
func estimateGrid(tb testing.TB) []sweep.Scenario {
	tb.Helper()
	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      []int{8, 32},
		Config:     benchCfg,
	}
	scns, err := spec.Expand()
	if err != nil {
		tb.Fatal(err)
	}
	return scns
}

// runGrid pushes the grid through the sweep runner under one backend
// and attaches the serving throughput as a metric.
func runGrid(b *testing.B, scns []sweep.Scenario, backend estimate.Backend) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		(&sweep.Runner{Backend: backend}).Run(scns)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(scns))*float64(b.N)/secs, "estimates/s")
	}
}

// --- Estimate throughput: the three backends over the default grid ---
// Run with `go test -bench BenchmarkEstimateThroughput -benchtime 1x`
// for one full-grid pass per backend; CI records these non-gating.

func BenchmarkEstimateThroughput(b *testing.B) {
	scns := estimateGrid(b)

	b.Run("sim", func(b *testing.B) {
		runGrid(b, scns, estimate.Sim{})
	})

	b.Run("analytic", func(b *testing.B) {
		runGrid(b, scns, estimate.PaperAnalytic())
	})

	b.Run("calibrated-cold", func(b *testing.B) {
		// Each iteration calibrates from scratch: the measure-then-fit
		// cost the expression cache amortizes away in real use.
		for i := 0; i < b.N; i++ {
			backend := &estimate.Calibrated{Config: benchCfg, Sizes: []int{8, 32}}
			(&sweep.Runner{Backend: backend}).Run(scns)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(len(scns))*float64(b.N)/secs, "estimates/s")
		}
	})

	b.Run("calibrated-warm", func(b *testing.B) {
		// One shared calibration, then closed-form serving — the hot
		// path the ROADMAP's prediction-service north star cares about.
		backend := &estimate.Calibrated{Config: benchCfg, Sizes: []int{8, 32}}
		(&sweep.Runner{Backend: backend}).Run(scns)
		b.ResetTimer()
		runGrid(b, scns, backend)
	})
}

// --- Piecewise serving: warm closed-form throughput, affine vs the
// protocol-aware piecewise family. Segment dispatch is a short linear
// scan per estimate, so the piecewise numbers must stay within ~10% of
// affine — BENCH.md tracks the pair. Run with the default -benchtime
// (steady state), not 1x.

func BenchmarkPiecewiseServing(b *testing.B) {
	scns := estimateGrid(b)
	warm := func(b *testing.B, fit estimate.FitConfig) {
		backend := &estimate.Calibrated{Config: benchCfg, Sizes: []int{8, 32}, Fit: fit}
		(&sweep.Runner{Backend: backend}).Run(scns) // calibrate off the clock
		b.ResetTimer()
		runGrid(b, scns, backend)
	}

	b.Run("affine-warm", func(b *testing.B) {
		warm(b, estimate.FitConfig{})
	})

	b.Run("piecewise-warm", func(b *testing.B) {
		warm(b, estimate.FitConfig{Piecewise: true})
	})
}
