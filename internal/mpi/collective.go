package mpi

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/machine"
)

// Algorithms selects the collective algorithm per operation, mirroring
// the vendor MPI implementations the paper measured. Names come from the
// coll registries, plus coll.AlgHardware for the T3D barrier circuit.
type Algorithms struct {
	Barrier   string
	Bcast     string
	Gather    string
	Scatter   string
	Alltoall  string
	Reduce    string
	Scan      string
	Allgather string
	Allreduce string
}

// DefaultAlgorithms returns the algorithm table of a machine's vendor
// MPI, as the paper describes it:
//
//   - Tree-based broadcast/reduce/barrier everywhere (§8: "a treelike
//     algorithm is usually employed"; EPCC MPI uses an unbalanced tree
//     for barrier and broadcast, a binary tree for reduce [6]) — except
//     the T3D barrier, which is the dedicated hardware circuit.
//   - Linear gather/scatter and pairwise total exchange, whose O(p)
//     startup the paper observes on all three machines.
//   - Recursive-doubling scan (logarithmic startup, Fig. 1e).
func DefaultAlgorithms(m *machine.Machine) Algorithms {
	a := Algorithms{
		Barrier:   coll.AlgTree,
		Bcast:     coll.AlgBinomial,
		Gather:    coll.AlgLinear,
		Scatter:   coll.AlgLinear,
		Alltoall:  coll.AlgPairwise,
		Reduce:    coll.AlgBinomial,
		Scan:      coll.AlgRecursiveDoubling,
		Allgather: coll.AlgRing,
		Allreduce: coll.AlgReduceBcast,
	}
	if m.HardwareBarrier() {
		a.Barrier = coll.AlgHardware
	}
	return a
}

// With returns a copy of a with op's algorithm replaced by name. It
// panics on an operation that has no algorithm slot (p2p).
func (a Algorithms) With(op machine.Op, name string) Algorithms {
	switch op {
	case machine.OpBarrier:
		a.Barrier = name
	case machine.OpBroadcast:
		a.Bcast = name
	case machine.OpGather:
		a.Gather = name
	case machine.OpScatter:
		a.Scatter = name
	case machine.OpAlltoall:
		a.Alltoall = name
	case machine.OpReduce:
		a.Reduce = name
	case machine.OpScan:
		a.Scan = name
	case machine.OpAllgather:
		a.Allgather = name
	case machine.OpAllreduce:
		a.Allreduce = name
	default:
		panic(fmt.Sprintf("mpi: operation %q has no algorithm slot", op))
	}
	return a
}

// Get returns the algorithm selected for op (the inverse of With).
func (a Algorithms) Get(op machine.Op) string {
	switch op {
	case machine.OpBarrier:
		return a.Barrier
	case machine.OpBroadcast:
		return a.Bcast
	case machine.OpGather:
		return a.Gather
	case machine.OpScatter:
		return a.Scatter
	case machine.OpAlltoall:
		return a.Alltoall
	case machine.OpReduce:
		return a.Reduce
	case machine.OpScan:
		return a.Scan
	case machine.OpAllgather:
		return a.Allgather
	case machine.OpAllreduce:
		return a.Allreduce
	}
	panic(fmt.Sprintf("mpi: operation %q has no algorithm slot", op))
}

func lookup[V any](reg map[string]V, name, what string) V {
	v, ok := reg[name]
	if !ok {
		panic(fmt.Sprintf("mpi: unknown %s algorithm %q", what, name))
	}
	return v
}

// enter charges the fixed per-call setup cost of a collective and
// returns the cost-classed communicator the algorithm runs over.
func (c *Comm) enter(op machine.Op) *Comm {
	cl := c.w.cluster
	if cost := cl.Machine().CallCost(op); cost > 0 {
		c.proc.Sleep(cl.Jitter(cost))
	}
	return c.as(op)
}

// Barrier blocks until all processes have entered it (MPI_Barrier). On
// the T3D this uses the hardwired AND-tree barrier network; elsewhere a
// message-based algorithm from the coll package.
func (c *Comm) Barrier() {
	name := c.w.algs.Barrier
	if name == coll.AlgHardware {
		if c.group == nil {
			c.w.cluster.HardwareBarrierEnter(c.proc)
			return
		}
		// The hardwired barrier spans the whole partition; a
		// sub-communicator must fall back to a software tree.
		name = coll.AlgTree
	}
	lookup(coll.Barriers, name, "barrier")(c.enter(machine.OpBarrier))
}

// Bcast broadcasts data from root to all processes (MPI_Bcast); every
// rank returns the message.
func (c *Comm) Bcast(root int, data []byte) []byte {
	return lookup(coll.Bcasts, c.w.algs.Bcast, "bcast")(c.enter(machine.OpBroadcast), root, data)
}

// Gather collects one equal-size block per rank at root (MPI_Gather);
// root returns blocks in rank order, others nil.
func (c *Comm) Gather(root int, mine []byte) [][]byte {
	return lookup(coll.Gathers, c.w.algs.Gather, "gather")(c.enter(machine.OpGather), root, mine)
}

// Scatter distributes one block per rank from root (MPI_Scatter); the
// root passes p blocks in rank order, every rank returns its own.
func (c *Comm) Scatter(root int, blocks [][]byte) []byte {
	return lookup(coll.Scatters, c.w.algs.Scatter, "scatter")(c.enter(machine.OpScatter), root, blocks)
}

// Alltoall performs total exchange (MPI_Alltoall): every rank passes p
// blocks (one per destination) and returns p blocks (one per source).
func (c *Comm) Alltoall(blocks [][]byte) [][]byte {
	return lookup(coll.Alltoalls, c.w.algs.Alltoall, "alltoall")(c.enter(machine.OpAlltoall), blocks)
}

// Reduce combines contributions elementwise with op onto root
// (MPI_Reduce); root returns the result, others nil.
func (c *Comm) Reduce(root int, mine []byte, op ReduceOp, dt Datatype) []byte {
	return lookup(coll.Reduces, c.w.algs.Reduce, "reduce")(
		c.enter(machine.OpReduce), root, mine, op.Combiner(dt))
}

// Scan computes the inclusive prefix reduction (MPI_Scan).
func (c *Comm) Scan(mine []byte, op ReduceOp, dt Datatype) []byte {
	return lookup(coll.Scans, c.w.algs.Scan, "scan")(
		c.enter(machine.OpScan), mine, op.Combiner(dt))
}

// Allgather collects one block per rank at every rank (MPI_Allgather).
func (c *Comm) Allgather(mine []byte) [][]byte {
	return lookup(coll.Allgathers, c.w.algs.Allgather, "allgather")(c.enter(machine.OpAllgather), mine)
}

// Allreduce combines contributions and delivers the result to every
// rank (MPI_Allreduce).
func (c *Comm) Allreduce(mine []byte, op ReduceOp, dt Datatype) []byte {
	return lookup(coll.Allreduces, c.w.algs.Allreduce, "allreduce")(
		c.enter(machine.OpAllreduce), mine, op.Combiner(dt))
}

// Gatherv collects variable-size blocks at root (MPI_Gatherv); root
// returns blocks in rank order, others nil.
func (c *Comm) Gatherv(root int, mine []byte) [][]byte {
	return coll.Gatherv(c.enter(machine.OpGather), root, mine)
}

// Scatterv distributes variable-size blocks from root (MPI_Scatterv).
func (c *Comm) Scatterv(root int, blocks [][]byte) []byte {
	return coll.Scatterv(c.enter(machine.OpScatter), root, blocks)
}

// Alltoallv performs total exchange with per-destination sizes
// (MPI_Alltoallv).
func (c *Comm) Alltoallv(blocks [][]byte) [][]byte {
	return coll.Alltoallv(c.enter(machine.OpAlltoall), blocks)
}

// ReduceScatter reduces elementwise and leaves block i on rank i
// (MPI_Reduce_scatter_block). The operation must be commutative, which
// all predefined ReduceOps are.
func (c *Comm) ReduceScatter(blocks [][]byte, op ReduceOp, dt Datatype) []byte {
	return coll.ReduceScatter(c.enter(machine.OpReduce), blocks, op.Combiner(dt))
}
