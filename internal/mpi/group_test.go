package mpi

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestSplitEvenOdd(t *testing.T) {
	p := 8
	sizes := make([]int, p)
	ranks := make([]int, p)
	sums := make([]float32, p)
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		sizes[c.Rank()] = sub.Size()
		ranks[c.Rank()] = sub.Rank()
		// Allreduce within the sub-communicator only.
		v := EncodeFloats([]float32{float32(c.Rank())})
		sums[c.Rank()] = DecodeFloats(sub.Allreduce(v, Sum, Float))[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if sizes[r] != 4 {
			t.Fatalf("rank %d: subcomm size %d, want 4", r, sizes[r])
		}
		if ranks[r] != r/2 {
			t.Fatalf("rank %d: subcomm rank %d, want %d", r, ranks[r], r/2)
		}
		want := float32(0 + 2 + 4 + 6)
		if r%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sums[r] != want {
			t.Fatalf("rank %d: subgroup sum %v, want %v", r, sums[r], want)
		}
	}
}

func TestSplitByKeyReordersRanks(t *testing.T) {
	p := 4
	newRank := make([]int, p)
	err := Run(machine.SP2(), p, 1, func(c *Comm) {
		// Reverse order: key = -rank.
		sub := c.Split(0, -c.Rank())
		newRank[c.Rank()] = sub.Rank()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if newRank[r] != p-1-r {
			t.Fatalf("world rank %d got sub rank %d, want %d", r, newRank[r], p-1-r)
		}
	}
}

func TestSplitUndefinedColorReturnsNil(t *testing.T) {
	err := Run(machine.T3D(), 4, 1, func(c *Comm) {
		var sub *Comm
		if c.Rank() < 2 {
			sub = c.Split(0, 0)
		} else {
			sub = c.Split(-1, 0)
		}
		if c.Rank() < 2 && (sub == nil || sub.Size() != 2) {
			t.Errorf("rank %d: expected 2-member subcomm", c.Rank())
		}
		if c.Rank() >= 2 && sub != nil {
			t.Errorf("rank %d: undefined color should return nil", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubcommTrafficIsolated(t *testing.T) {
	// Two sub-communicators run the same collective concurrently with
	// identical tags; context IDs must keep their traffic apart.
	p := 8
	results := make([][]float32, p)
	err := Run(machine.Paragon(), p, 1, func(c *Comm) {
		sub := c.Split(c.Rank()/4, c.Rank()) // two groups of 4
		v := EncodeFloats([]float32{float32(100*(c.Rank()/4) + 1)})
		results[c.Rank()] = DecodeFloats(sub.Allreduce(v, Sum, Float))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		want := float32(4)
		if r >= 4 {
			want = 404
		}
		if results[r][0] != want {
			t.Fatalf("rank %d: sum %v, want %v", r, results[r][0], want)
		}
	}
}

func TestSubcommBcastAndBarrierOnT3D(t *testing.T) {
	// The hardware barrier is partition-wide: a subcomm barrier must use
	// the software path and still synchronize only the subgroup.
	p := 8
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		var msg []byte
		if sub.Rank() == 0 {
			msg = []byte{byte(c.Rank() % 2)}
		}
		got := sub.Bcast(0, msg)
		if got[0] != byte(c.Rank()%2) {
			t.Errorf("rank %d: cross-group bcast leak: %v", c.Rank(), got)
		}
		sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	p := 8
	err := Run(machine.SP2(), p, 1, func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank()) // 2 groups of 4
		quad := half.Split(half.Rank()/2, 0)  // 4 groups of 2
		if quad.Size() != 2 {
			t.Errorf("nested split size %d", quad.Size())
		}
		sum := DecodeFloats(quad.Allreduce(EncodeFloats([]float32{1}), Sum, Float))
		if sum[0] != 2 {
			t.Errorf("nested allreduce sum %v", sum[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTranslate(t *testing.T) {
	err := Run(machine.T3D(), 6, 1, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Translate(sub.Rank(), c) != c.Rank() {
			t.Errorf("translate to world failed at %d", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	// Nonblocking ring shift: everyone posts Irecv, Isends, then waits —
	// would deadlock with blocking receives posted first.
	p := 8
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		r := c.Irecv(prev, 5)
		s := c.Isend(next, 5, []byte{byte(c.Rank())})
		got := r.Wait()
		s.Wait()
		if got[0] != byte(prev) {
			t.Errorf("rank %d received %d, want %d", c.Rank(), got[0], prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendDoesNotBlockOnLargeMessages(t *testing.T) {
	var posted sim.Duration
	err := Run(machine.SP2(), 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			start := c.Proc().Now()
			req := c.Isend(1, 0, make([]byte, 1<<20))
			posted = c.Proc().Now().Sub(start)
			req.Wait()
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if posted > 2*machine.SP2().SendCost(machine.OpP2P) {
		t.Fatalf("Isend of 1 MB took %v at post time, want ≈ send overhead", posted)
	}
}

func TestIsendWaitBlocksUntilInjected(t *testing.T) {
	err := Run(machine.SP2(), 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 0, make([]byte, 65536))
			req.Wait()
			minSer := sim.PerByte(65536, 13.3)
			if c.Proc().Now() < sim.Time(minSer) {
				t.Errorf("Wait returned at %v, before injection could finish", c.Proc().Now())
			}
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTest(t *testing.T) {
	err := Run(machine.T3D(), 2, 1, func(c *Comm) {
		if c.Rank() == 1 {
			r := c.Irecv(0, 3)
			if r.Test() {
				t.Error("request complete before any send")
			}
			c.Proc().Sleep(10 * sim.Millisecond)
			if !r.Test() {
				t.Error("request incomplete after message arrival")
			}
			if got := r.Wait(); got[0] != 42 {
				t.Errorf("payload %v", got)
			}
		} else {
			c.Send(1, 3, []byte{42})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallGathersPayloads(t *testing.T) {
	p := 4
	err := Run(machine.Paragon(), p, 1, func(c *Comm) {
		if c.Rank() == 0 {
			reqs := make([]*Request, 0, p-1)
			for r := 1; r < p; r++ {
				reqs = append(reqs, c.Irecv(r, 9))
			}
			all := c.Waitall(reqs...)
			for i, b := range all {
				if b[0] != byte(i+1) {
					t.Errorf("payload %d = %v", i, b)
				}
			}
		} else {
			c.Send(0, 9, []byte{byte(c.Rank())})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGathervScattervAlltoallvOnSim(t *testing.T) {
	p := 6
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		r := c.Rank()
		// Gatherv: rank r sends r bytes.
		out := c.Gatherv(0, make([]byte, r))
		if r == 0 {
			for i, b := range out {
				if len(b) != i {
					t.Errorf("gatherv block %d has %d bytes", i, len(b))
				}
			}
		}
		// Scatterv: rank r gets 2r bytes.
		var blocks [][]byte
		if r == 0 {
			blocks = make([][]byte, p)
			for i := range blocks {
				blocks[i] = bytes.Repeat([]byte{byte(i)}, 2*i)
			}
		}
		mine := c.Scatterv(0, blocks)
		if len(mine) != 2*r {
			t.Errorf("scatterv: rank %d got %d bytes", r, len(mine))
		}
		// Alltoallv: sizes src+dst.
		vblocks := make([][]byte, p)
		for d := range vblocks {
			vblocks[d] = bytes.Repeat([]byte{byte(r)}, r+d)
		}
		in := c.Alltoallv(vblocks)
		for s, b := range in {
			if len(b) != s+r || (len(b) > 0 && b[0] != byte(s)) {
				t.Errorf("alltoallv: block from %d wrong (%d bytes)", s, len(b))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterOnSim(t *testing.T) {
	p := 8
	err := Run(machine.SP2(), p, 1, func(c *Comm) {
		blocks := make([][]byte, p)
		for i := range blocks {
			blocks[i] = EncodeFloats([]float32{float32(c.Rank() + i)})
		}
		got := DecodeFloats(c.ReduceScatter(blocks, Sum, Float))
		want := float32(p*(p-1)/2 + p*c.Rank())
		if got[0] != want {
			t.Errorf("rank %d: %v, want %v", c.Rank(), got[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
