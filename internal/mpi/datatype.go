// Package mpi implements the subset of the Message Passing Interface the
// paper's experiments use — ranks, tagged point-to-point messaging with
// posted/unexpected matching, wall-clock time on unsynchronized node
// clocks, and the seven collective operations of Table 1 (plus allgather
// and allreduce) — running over the machine simulator. One process per
// node, as in the paper's runs.
package mpi

import (
	"encoding/binary"
	"math"
)

// Datatype describes the element type of a message buffer.
type Datatype struct {
	name string
	size int
}

// Name returns the MPI-style type name.
func (d Datatype) Name() string { return d.name }

// Size returns the element size in bytes.
func (d Datatype) Size() int { return d.size }

// Count returns the number of elements in a buffer of len(b) bytes.
func (d Datatype) Count(b []byte) int { return len(b) / d.size }

// The datatypes used in this study. The paper's experiments use
// single-precision floats exclusively (§2: "the data type of the message
// elements is always MPI_FLOAT").
var (
	Float = Datatype{"MPI_FLOAT", 4}
	Int32 = Datatype{"MPI_INT", 4}
	Byte  = Datatype{"MPI_BYTE", 1}
)

// EncodeFloats packs float32 values little-endian, the wire format of
// all numeric buffers in this package.
func EncodeFloats(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// DecodeFloats unpacks a float32 buffer.
func DecodeFloats(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// EncodeInts packs int32 values little-endian.
func EncodeInts(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// DecodeInts unpacks an int32 buffer.
func DecodeInts(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
