package mpi

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestP2PSendRecv(t *testing.T) {
	var got []byte
	err := Run(machine.T3D(), 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
		} else {
			got = c.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestP2PTagMatching(t *testing.T) {
	var first, second []byte
	err := Run(machine.SP2(), 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive out of tag order: tag 2 first.
			second = c.Recv(0, 2)
			first = c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "one" || string(second) != "two" {
		t.Fatalf("tag matching failed: %q %q", first, second)
	}
}

func TestP2PWildcards(t *testing.T) {
	var from int
	var data []byte
	err := Run(machine.Paragon(), 3, 1, func(c *Comm) {
		switch c.Rank() {
		case 2:
			data, from = c.RecvFrom(AnySource, AnyTag)
		case 1:
			c.Proc().Sleep(5 * sim.Microsecond)
			c.Send(2, 9, []byte("late"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(data) != "late" {
		t.Fatalf("wildcard recv: from=%d data=%q", from, data)
	}
}

func TestP2PFIFOPerPair(t *testing.T) {
	err := Run(machine.T3D(), 2, 1, func(c *Comm) {
		const n = 20
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 0); got[0] != byte(i) {
					t.Errorf("message %d out of order: %d", i, got[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2PUnmatchedRecvDeadlocks(t *testing.T) {
	err := Run(machine.T3D(), 2, 1, func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 0) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSmallSendIsEager(t *testing.T) {
	// Below the eager limit the sender's elapsed time is its CPU
	// overhead, not the transfer.
	var sendElapsed sim.Duration
	err := Run(machine.SP2(), 2, 99, func(c *Comm) {
		if c.Rank() == 0 {
			start := c.Proc().Now()
			c.Send(1, 0, make([]byte, 1024))
			sendElapsed = c.Proc().Now().Sub(start)
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	o := machine.SP2().SendCost(machine.OpP2P)
	if sendElapsed < o || sendElapsed > 2*o {
		t.Fatalf("send elapsed %v, want ≈%v (eager)", sendElapsed, o)
	}
}

func TestLargeSendBlocksForInjection(t *testing.T) {
	// Above the eager limit MPI_Send applies rendezvous flow control:
	// the call blocks until the data has left the node (64 KB at the
	// SP2's 13.3 MB/s effective rate ≈ 4.9 ms).
	var sendElapsed sim.Duration
	err := Run(machine.SP2(), 2, 99, func(c *Comm) {
		if c.Rank() == 0 {
			start := c.Proc().Now()
			c.Send(1, 0, make([]byte, 65536))
			sendElapsed = c.Proc().Now().Sub(start)
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minSer := sim.PerByte(65536, 13.3); sendElapsed < minSer {
		t.Fatalf("64 KB send returned after %v, before injection could finish (%v)", sendElapsed, minSer)
	}
}

func TestRecvWaitsForTransmission(t *testing.T) {
	// 64 KB at SP2's 13.3 MB/s effective rate ≈ 4.9 ms; the receiver
	// cannot have it sooner.
	var recvDone sim.Time
	err := Run(machine.SP2(), 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 65536))
		} else {
			c.Recv(0, 0)
			recvDone = c.Proc().Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	minSer := sim.PerByte(65536, 13.3)
	if recvDone < sim.Time(minSer) {
		t.Fatalf("recv completed at %v, faster than the wire allows (%v)", recvDone, minSer)
	}
}

func TestWtimeUsesSkewedClocks(t *testing.T) {
	clocks := make([]sim.Time, 4)
	err := Run(machine.SP2(), 4, 7, func(c *Comm) {
		clocks[c.Rank()] = c.Wtime()
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[sim.Time]bool{}
	for _, v := range clocks {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatal("expected unsynchronized clocks across ranks")
	}
}

func TestBarrierHoldsBackEarlyRanks(t *testing.T) {
	for _, m := range machine.All() {
		exit := make([]sim.Time, 8)
		err := Run(m, 8, 1, func(c *Comm) {
			// Rank r arrives at r·100µs; nobody exits before the last.
			c.Compute(sim.Duration(c.Rank()) * 100 * sim.Microsecond)
			c.Barrier()
			exit[c.Rank()] = c.Proc().Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		last := sim.Time(700 * sim.Microsecond)
		for r, e := range exit {
			if e < last {
				t.Fatalf("%s: rank %d left the barrier at %v, before the last arrival at %v",
					m.Name(), r, e, last)
			}
		}
	}
}

func TestT3DBarrierUsesHardware(t *testing.T) {
	// The hardwired barrier completes in ≈3µs after the last arrival —
	// far below any message-based barrier on this machine.
	var done sim.Time
	err := Run(machine.T3D(), 64, 1, func(c *Comm) {
		c.Barrier()
		if c.Rank() == 0 {
			done = c.Proc().Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done > sim.Time(10*sim.Microsecond) {
		t.Fatalf("T3D 64-node barrier took %v, want ≈3µs", done)
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, m := range machine.All() {
		msg := []byte("broadcast-payload")
		got := make([][]byte, 16)
		err := Run(m, 16, 1, func(c *Comm) {
			var in []byte
			if c.Rank() == 5 {
				in = msg
			}
			got[c.Rank()] = c.Bcast(5, in)
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := range got {
			if !bytes.Equal(got[r], msg) {
				t.Fatalf("%s: rank %d got %q", m.Name(), r, got[r])
			}
		}
	}
}

func TestGatherScatterAlltoallOnSim(t *testing.T) {
	p := 8
	err := Run(machine.Paragon(), p, 1, func(c *Comm) {
		r := c.Rank()
		// Scatter from 0.
		var blocks [][]byte
		if r == 0 {
			blocks = make([][]byte, p)
			for i := range blocks {
				blocks[i] = []byte{byte(i), byte(i * 2)}
			}
		}
		mine := c.Scatter(0, blocks)
		if mine[0] != byte(r) || mine[1] != byte(r*2) {
			t.Errorf("rank %d scatter block wrong: %v", r, mine)
		}
		// Gather back to 3.
		all := c.Gather(3, mine)
		if r == 3 {
			for i, b := range all {
				if b[0] != byte(i) {
					t.Errorf("gather block %d wrong: %v", i, b)
				}
			}
		}
		// Alltoall.
		out := make([][]byte, p)
		for d := range out {
			out[d] = []byte{byte(r), byte(d)}
		}
		in := c.Alltoall(out)
		for s, b := range in {
			if b[0] != byte(s) || b[1] != byte(r) {
				t.Errorf("alltoall block from %d wrong: %v", s, b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumFloats(t *testing.T) {
	p := 16
	var result []float32
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		mine := EncodeFloats([]float32{float32(c.Rank()), 1})
		out := c.Reduce(0, mine, Sum, Float)
		if c.Rank() == 0 {
			result = DecodeFloats(out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSum := float32(p * (p - 1) / 2)
	if result[0] != wantSum || result[1] != float32(p) {
		t.Fatalf("reduce sum = %v, want [%v %v]", result, wantSum, p)
	}
}

func TestScanPrefixSums(t *testing.T) {
	p := 9
	results := make([][]float32, p)
	err := Run(machine.SP2(), p, 1, func(c *Comm) {
		mine := EncodeFloats([]float32{float32(c.Rank() + 1)})
		results[c.Rank()] = DecodeFloats(c.Scan(mine, Sum, Float))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		want := float32((r + 1) * (r + 2) / 2)
		if v[0] != want {
			t.Fatalf("scan at rank %d = %v, want %v", r, v[0], want)
		}
	}
}

func TestAllreduceMaxMinProd(t *testing.T) {
	p := 8
	err := Run(machine.T3D(), p, 1, func(c *Comm) {
		r := float32(c.Rank() + 1)
		if got := DecodeFloats(c.Allreduce(EncodeFloats([]float32{r}), Max, Float))[0]; got != 8 {
			t.Errorf("max = %v", got)
		}
		if got := DecodeFloats(c.Allreduce(EncodeFloats([]float32{r}), Min, Float))[0]; got != 1 {
			t.Errorf("min = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prod over int32.
	err = Run(machine.T3D(), 4, 1, func(c *Comm) {
		v := EncodeInts([]int32{int32(c.Rank() + 1)})
		if got := DecodeInts(c.Allreduce(v, Prod, Int32))[0]; got != 24 {
			t.Errorf("prod = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherOnSim(t *testing.T) {
	p := 6
	err := Run(machine.SP2(), p, 1, func(c *Comm) {
		all := c.Allgather([]byte{byte(c.Rank() * 3)})
		for i, b := range all {
			if b[0] != byte(i*3) {
				t.Errorf("allgather block %d = %v", i, b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		var done sim.Time
		err := Run(machine.Paragon(), 16, 42, func(c *Comm) {
			blocks := make([][]byte, 16)
			for i := range blocks {
				blocks[i] = make([]byte, 1024)
			}
			c.Alltoall(blocks)
			if c.Rank() == 0 {
				done = c.Proc().Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different completion times: %v vs %v", a, b)
	}
}

func TestAlgorithmOverride(t *testing.T) {
	// Linear broadcast on 32 nodes must be slower than binomial.
	elapsed := func(alg string) sim.Time {
		cl := machine.NewCluster(machine.SP2(), 32, 1)
		algs := DefaultAlgorithms(machine.SP2())
		algs.Bcast = alg
		var done sim.Time
		if err := RunWithAlgorithms(cl, algs, func(c *Comm) {
			var in []byte
			if c.Rank() == 0 {
				in = make([]byte, 1024)
			}
			c.Bcast(0, in)
			if c.Rank() == 31 {
				done = c.Proc().Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}
	lin, bin := elapsed("linear"), elapsed("binomial")
	if lin <= bin {
		t.Fatalf("linear bcast (%v) should be slower than binomial (%v) on 32 nodes", lin, bin)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := []float32{0, 1.5, -3.25, 1e20, -1e-20}
	if got := DecodeFloats(EncodeFloats(f)); len(got) != len(f) {
		t.Fatal("length mismatch")
	} else {
		for i := range f {
			if got[i] != f[i] {
				t.Fatalf("float %d: %v != %v", i, got[i], f[i])
			}
		}
	}
	n := []int32{0, 1, -1, 1 << 30, -(1 << 30)}
	got := DecodeInts(EncodeInts(n))
	for i := range n {
		if got[i] != n[i] {
			t.Fatalf("int %d: %v != %v", i, got[i], n[i])
		}
	}
}

func TestDatatypeSizes(t *testing.T) {
	if Float.Size() != 4 || Float.Name() != "MPI_FLOAT" {
		t.Fatal("MPI_FLOAT should be 4 bytes (paper §2)")
	}
	if Float.Count(make([]byte, 64)) != 16 {
		t.Fatal("count wrong")
	}
}
