package mpi

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// TestStressRandomCollectiveSequences runs randomized SPMD programs —
// mixed collectives, varying sizes, sub-communicators — and checks both
// completion (no deadlock under any interleaving the schedule produces)
// and arithmetic correctness of every reduction. The op sequence is
// generated from a shared seed so all ranks agree on the program, as
// MPI requires.
func TestStressRandomCollectiveSequences(t *testing.T) {
	machines := machine.All()
	for trial := 0; trial < 12; trial++ {
		mach := machines[trial%len(machines)]
		script := rand.New(rand.NewSource(int64(trial)))
		p := []int{2, 3, 4, 6, 8, 16}[script.Intn(6)]
		steps := 5 + script.Intn(10)
		ops := make([]int, steps)
		sizes := make([]int, steps)
		for i := range ops {
			ops[i] = script.Intn(7)
			sizes[i] = []int{4, 64, 1024, 16384}[script.Intn(4)]
		}

		err := Run(mach, p, int64(trial), func(c *Comm) {
			for i := 0; i < steps; i++ {
				m := sizes[i]
				switch ops[i] {
				case 0:
					c.Barrier()
				case 1:
					var in []byte
					if c.Rank() == i%p {
						in = make([]byte, m)
					}
					got := c.Bcast(i%p, in)
					if len(got) != m {
						t.Errorf("trial %d step %d: bcast delivered %d bytes", trial, i, len(got))
					}
				case 2:
					c.Gather(i%p, make([]byte, m))
				case 3:
					var blocks [][]byte
					if c.Rank() == i%p {
						blocks = make([][]byte, p)
						for j := range blocks {
							blocks[j] = make([]byte, m)
						}
					}
					c.Scatter(i%p, blocks)
				case 4:
					blocks := make([][]byte, p)
					for j := range blocks {
						blocks[j] = make([]byte, m)
					}
					c.Alltoall(blocks)
				case 5:
					v := EncodeFloats([]float32{float32(c.Rank() + 1)})
					sum := DecodeFloats(c.Allreduce(v, Sum, Float))[0]
					if want := float32(p * (p + 1) / 2); sum != want {
						t.Errorf("trial %d step %d: allreduce %v, want %v", trial, i, sum, want)
					}
				case 6:
					v := EncodeFloats([]float32{1})
					prefix := DecodeFloats(c.Scan(v, Sum, Float))[0]
					if prefix != float32(c.Rank()+1) {
						t.Errorf("trial %d step %d: scan %v at rank %d", trial, i, prefix, c.Rank())
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("trial %d (%s, p=%d): %v", trial, mach.Name(), p, err)
		}
	}
}

// TestStressSubcommunicatorPipelines splits the world repeatedly and
// runs collectives at every level concurrently.
func TestStressSubcommunicatorPipelines(t *testing.T) {
	for _, mach := range machine.All() {
		err := Run(mach, 16, 9, func(c *Comm) {
			for round := 0; round < 3; round++ {
				sub := c.Split(c.Rank()%(round+2), c.Rank())
				v := EncodeFloats([]float32{1})
				n := DecodeFloats(sub.Allreduce(v, Sum, Float))[0]
				if int(n) != sub.Size() {
					t.Errorf("%s round %d: counted %v members, size %d", mach.Name(), round, n, sub.Size())
				}
				sub.Barrier()
				// World-level collective interleaved with subgroup work.
				c.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStressManyOutstandingRequests posts many nonblocking operations
// before completing any.
func TestStressManyOutstandingRequests(t *testing.T) {
	const p, nmsg = 8, 20
	err := Run(machine.SP2(), p, 3, func(c *Comm) {
		var reqs []*Request
		for i := 0; i < nmsg; i++ {
			dst := (c.Rank() + 1 + i%(p-1)) % p
			reqs = append(reqs, c.Isend(dst, i, []byte{byte(i)}))
		}
		// Receive everything addressed to me, any order of posting.
		var recvs []*Request
		for i := 0; i < nmsg; i++ {
			src := (c.Rank() - 1 - i%(p-1) + 2*p) % p
			recvs = append(recvs, c.Irecv(src, i))
		}
		for i, r := range recvs {
			if got := r.Wait(); got[0] != byte(i) {
				t.Errorf("rank %d msg %d: payload %v", c.Rank(), i, got)
			}
		}
		c.Waitall(reqs...)
	})
	if err != nil {
		t.Fatal(err)
	}
}
