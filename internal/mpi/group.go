package mpi

import (
	"sort"
)

// Split partitions the communicator into disjoint sub-communicators by
// color (MPI_Comm_split): every member calls Split; members passing the
// same color form a new communicator, ordered by key (ties broken by
// parent rank). A negative color (MPI_UNDEFINED) returns nil.
//
// Like real implementations, Split pays for its coordination with an
// actual allgather of the (color, key) pairs over the parent
// communicator, so it has a realistic, machine-dependent cost.
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) with every member of the parent.
	pairs := c.Allgather(EncodeInts([]int32{int32(color), int32(key)}))

	*c.splitSeq++
	seq := *c.splitSeq
	if color < 0 {
		return nil
	}

	type member struct{ key, parentRank int }
	var members []member
	for r, raw := range pairs {
		v := DecodeInts(raw)
		if int(v[0]) == color {
			members = append(members, member{key: int(v[1]), parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})

	group := make([]int, len(members))
	myIdx := -1
	for i, m := range members {
		group[i] = c.worldRank(m.parentRank)
		if group[i] == c.rank {
			myIdx = i
		}
	}

	child := &Comm{
		w:        c.w,
		rank:     c.rank,
		proc:     c.proc,
		opClass:  c.opClass,
		group:    group,
		myIdx:    myIdx,
		ctx:      childContext(c.ctx, seq, color),
		splitSeq: new(int),
	}
	return child
}

// childContext derives a context ID shared by all members of one new
// communicator (same parent context, same Split call, same color) and
// distinct across communicators with overwhelming probability.
func childContext(parent, seq, color int) int {
	h := uint32(parent)*2654435761 + uint32(seq)*40503 + uint32(color+1)*9176
	return int(h%0x7fe) + 1 // 1..2046, fits the 12-bit wireTag budget
}

// Translate returns the rank in other of this communicator's member
// rank r, or -1 if that process is not in other.
func (c *Comm) Translate(r int, other *Comm) int {
	return other.localRank(c.worldRank(r))
}
