package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// envelope is a delivered message awaiting (or matching) a receive.
type envelope struct {
	src  int
	tag  int
	data []byte
}

// recvReq is a posted receive awaiting a matching message.
type recvReq struct {
	src  int // or AnySource
	tag  int // or AnyTag
	done *sim.Future[envelope]
}

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// rankState is the per-node messaging engine: the unexpected-message
// queue and the posted-receive queue, matched in arrival/post order as
// MPI requires.
type rankState struct {
	unexpected []envelope
	posted     []*recvReq
}

func match(src, tag int, e envelope) bool {
	return (src == AnySource || src == e.src) && (tag == AnyTag || tag == e.tag)
}

// deliver hands an arrived message to the first matching posted receive,
// or queues it as unexpected.
func (rs *rankState) deliver(e envelope) {
	for i, req := range rs.posted {
		if match(req.src, req.tag, e) {
			rs.posted = append(rs.posted[:i], rs.posted[i+1:]...)
			req.done.Resolve(e)
			return
		}
	}
	rs.unexpected = append(rs.unexpected, e)
}

// take removes and returns the first unexpected message matching
// (src, tag), if any.
func (rs *rankState) take(src, tag int) (envelope, bool) {
	for i, e := range rs.unexpected {
		if match(src, tag, e) {
			rs.unexpected = append(rs.unexpected[:i], rs.unexpected[i+1:]...)
			return e, true
		}
	}
	return envelope{}, false
}

// World is one SPMD program execution: p rank processes over a cluster.
type World struct {
	cluster *machine.Cluster
	ranks   []*rankState
	algs    Algorithms
}

// Run executes body as p concurrent rank processes on a fresh cluster of
// machine m and drives the simulation to completion. It returns an error
// if any rank panics or the program deadlocks.
func Run(m *machine.Machine, p int, seed int64, body func(c *Comm)) error {
	return RunCluster(machine.NewCluster(m, p, seed), body)
}

// RunCluster is Run over an existing cluster (which carries kernel
// state, clock skews, and network occupancy), using the machine's
// default algorithm table.
func RunCluster(cl *machine.Cluster, body func(c *Comm)) error {
	return RunWithAlgorithms(cl, DefaultAlgorithms(cl.Machine()), body)
}

// RunWithAlgorithms is RunCluster with an explicit algorithm table,
// used by the ablation benchmarks to compare collective algorithms on
// the same machine.
func RunWithAlgorithms(cl *machine.Cluster, algs Algorithms, body func(c *Comm)) error {
	w := &World{
		cluster: cl,
		ranks:   make([]*rankState, cl.Size()),
		algs:    algs,
	}
	for i := range w.ranks {
		w.ranks[i] = &rankState{}
	}
	for r := 0; r < cl.Size(); r++ {
		r := r
		cl.Kernel().Go(fmt.Sprintf("rank-%d", r), func(proc *sim.Proc) {
			body(&Comm{w: w, rank: r, proc: proc, opClass: machine.OpP2P, splitSeq: new(int)})
		})
	}
	return cl.Kernel().Run()
}
