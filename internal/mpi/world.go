package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// envelope is a delivered message awaiting (or matching) a receive.
type envelope struct {
	src  int
	tag  int
	data []byte
}

// recvReq is a posted receive awaiting a matching message.
type recvReq struct {
	src  int // or AnySource
	tag  int // or AnyTag
	done *sim.Future[envelope]
}

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// rankState is the per-node messaging engine: the unexpected-message
// queue and the posted-receive queue, matched in arrival/post order as
// MPI requires.
type rankState struct {
	unexpected []envelope
	posted     []*recvReq
}

func match(src, tag int, e envelope) bool {
	return (src == AnySource || src == e.src) && (tag == AnyTag || tag == e.tag)
}

// deliver hands an arrived message to the first matching posted receive,
// or queues it as unexpected.
func (rs *rankState) deliver(e envelope) {
	for i, req := range rs.posted {
		if match(req.src, req.tag, e) {
			rs.posted = append(rs.posted[:i], rs.posted[i+1:]...)
			req.done.Resolve(e)
			return
		}
	}
	rs.unexpected = append(rs.unexpected, e)
}

// take removes and returns the first unexpected message matching
// (src, tag), if any.
func (rs *rankState) take(src, tag int) (envelope, bool) {
	for i, e := range rs.unexpected {
		if match(src, tag, e) {
			rs.unexpected = append(rs.unexpected[:i], rs.unexpected[i+1:]...)
			return e, true
		}
	}
	return envelope{}, false
}

// World is one SPMD program execution: p rank processes over a cluster.
type World struct {
	cluster *machine.Cluster
	ranks   []*rankState
	algs    Algorithms
	opaque  bool
}

// RunOptions bundles the execution knobs of one SPMD run.
type RunOptions struct {
	// Algorithms is the collective algorithm table; the zero value
	// selects the machine's vendor defaults.
	Algorithms Algorithms
	// OpaquePayloads declares that the rank bodies never read message
	// payload contents — only lengths matter. The collectives then skip
	// payload byte movement (staging buffers come from the shared zero
	// arena, reductions charge their simulated cost without touching
	// data), which is what the measurement harness wants: its buffers
	// are all zeros and its results are discarded. Simulated timings
	// are identical either way, because no cost in the model depends on
	// payload contents.
	OpaquePayloads bool
}

// Run executes body as p concurrent rank processes on a fresh cluster of
// machine m and drives the simulation to completion. It returns an error
// if any rank panics or the program deadlocks.
func Run(m *machine.Machine, p int, seed int64, body func(c *Comm)) error {
	return RunCluster(machine.NewCluster(m, p, seed), body)
}

// RunCluster is Run over an existing cluster (which carries kernel
// state, clock skews, and network occupancy), using the machine's
// default algorithm table.
func RunCluster(cl *machine.Cluster, body func(c *Comm)) error {
	return RunWithAlgorithms(cl, DefaultAlgorithms(cl.Machine()), body)
}

// RunWithAlgorithms is RunCluster with an explicit algorithm table,
// used by the ablation benchmarks to compare collective algorithms on
// the same machine.
func RunWithAlgorithms(cl *machine.Cluster, algs Algorithms, body func(c *Comm)) error {
	return RunWith(cl, RunOptions{Algorithms: algs}, body)
}

// RunWith is RunCluster with explicit options.
func RunWith(cl *machine.Cluster, opt RunOptions, body func(c *Comm)) error {
	if opt.Algorithms == (Algorithms{}) {
		opt.Algorithms = DefaultAlgorithms(cl.Machine())
	}
	w := &World{
		cluster: cl,
		ranks:   make([]*rankState, cl.Size()),
		algs:    opt.Algorithms,
		opaque:  opt.OpaquePayloads,
	}
	for i := range w.ranks {
		w.ranks[i] = &rankState{}
	}
	for r := 0; r < cl.Size(); r++ {
		r := r
		cl.Kernel().Go(fmt.Sprintf("rank-%d", r), func(proc *sim.Proc) {
			body(&Comm{w: w, rank: r, proc: proc, opClass: machine.OpP2P, splitSeq: new(int)})
		})
	}
	return cl.Kernel().Run()
}
