package mpi

import "repro/internal/coll"

// ReduceOp is an MPI reduction operation over a datatype.
type ReduceOp struct {
	name string
	f32  func(a, b float32) float32
	i32  func(a, b int32) int32
}

// Name returns the MPI-style operation name.
func (o ReduceOp) Name() string { return o.name }

// The standard predefined reduction operations used by the benchmarks.
var (
	Sum = ReduceOp{"MPI_SUM",
		func(a, b float32) float32 { return a + b },
		func(a, b int32) int32 { return a + b }}
	Prod = ReduceOp{"MPI_PROD",
		func(a, b float32) float32 { return a * b },
		func(a, b int32) int32 { return a * b }}
	Max = ReduceOp{"MPI_MAX",
		func(a, b float32) float32 {
			if a > b {
				return a
			}
			return b
		},
		func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		}}
	Min = ReduceOp{"MPI_MIN",
		func(a, b float32) float32 {
			if a < b {
				return a
			}
			return b
		},
		func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		}}
)

// Combiner returns a coll.Combiner applying the operation elementwise
// over buffers of the given datatype.
func (o ReduceOp) Combiner(dt Datatype) coll.Combiner {
	switch dt {
	case Float:
		return func(a, b []byte) []byte {
			av, bv := DecodeFloats(a), DecodeFloats(b)
			if len(av) != len(bv) {
				panic("mpi: reduce operand length mismatch")
			}
			out := make([]float32, len(av))
			for i := range out {
				out[i] = o.f32(av[i], bv[i])
			}
			return EncodeFloats(out)
		}
	case Int32:
		return func(a, b []byte) []byte {
			av, bv := DecodeInts(a), DecodeInts(b)
			if len(av) != len(bv) {
				panic("mpi: reduce operand length mismatch")
			}
			out := make([]int32, len(av))
			for i := range out {
				out[i] = o.i32(av[i], bv[i])
			}
			return EncodeInts(out)
		}
	default:
		panic("mpi: no combiner for datatype " + dt.Name())
	}
}
