package mpi

import (
	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Comm is a rank's communicator handle — MPI_COMM_WORLD bound to one
// process, or a sub-communicator produced by Split. It implements
// coll.Transport, so the collective algorithms run directly over it with
// per-operation costs looked up from the machine model. Group-relative
// ranks are translated to world ranks at the wire, and each communicator
// stamps its messages with a context ID so traffic in different
// communicators can never match.
type Comm struct {
	w       *World
	rank    int // world rank of this process
	proc    *sim.Proc
	opClass machine.Op

	group    []int // world ranks of the members, nil for the world
	myIdx    int   // my position in group (== rank when group is nil)
	ctx      int   // communicator context ID (0 for the world)
	splitSeq *int  // per-communicator Split counter (shared by as())
}

var _ coll.Transport = (*Comm)(nil)

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int {
	if c.group == nil {
		return c.rank
	}
	return c.myIdx
}

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.w.cluster.Size()
	}
	return len(c.group)
}

// WorldRank returns this process's rank in MPI_COMM_WORLD.
func (c *Comm) WorldRank() int { return c.rank }

// worldRank translates a communicator-relative rank to a world rank.
func (c *Comm) worldRank(r int) int {
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// localRank translates a world rank back into this communicator, or -1.
func (c *Comm) localRank(world int) int {
	if c.group == nil {
		return world
	}
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return -1
}

// wireTag namespaces a user/algorithm tag by the communicator context.
func (c *Comm) wireTag(tag int) int { return c.ctx<<20 | tag }

// Proc returns the underlying simulated process.
func (c *Comm) Proc() *sim.Proc { return c.proc }

// Cluster returns the cluster this world runs on.
func (c *Comm) Cluster() *machine.Cluster { return c.w.cluster }

// Wtime returns this node's wall-clock reading — like MPI_Wtime it uses
// the node's own unsynchronized clock, so differences are only
// meaningful within one rank (the reason behind the paper's max-reduce
// measurement procedure).
func (c *Comm) Wtime() sim.Time { return c.w.cluster.LocalClock(c.rank) }

// Compute occupies this rank's CPU for d of simulated time, modeling
// application computation between communication phases.
func (c *Comm) Compute(d sim.Duration) { c.proc.Sleep(d) }

// as returns a shallow copy of the communicator with the cost class set,
// under which Send/Recv/Combine charge that operation's calibrated
// overheads.
func (c *Comm) as(op machine.Op) *Comm {
	cc := *c
	cc.opClass = op
	return &cc
}

// Send transmits data to dst with the given tag. Messages up to the
// machine's eager limit are buffered: the call returns once the sender
// CPU has handed the data off, and delivery proceeds at the fabric's
// pace. Larger messages use rendezvous-style flow control: the call
// blocks until the data has left the node, as MPI_Send did on all three
// machines — without this a looping sender would pre-book the network
// arbitrarily far ahead.
func (c *Comm) Send(dst, tag int, data []byte) {
	cl := c.w.cluster
	m := cl.Machine()
	wdst := c.worldRank(dst)
	c.proc.Sleep(cl.Jitter(m.SendCost(c.opClass)))
	txDone, arrive := cl.Net().TransferDetail(
		c.rank, wdst, len(data), c.proc.Now(), m.InjMBs(c.opClass, len(data)))
	st := c.w.ranks[wdst]
	payload := data
	src := c.rank
	tg := c.wireTag(tag)
	cl.Kernel().At(arrive, func() {
		st.deliver(envelope{src: src, tag: tg, data: payload})
	})
	if len(data) > m.EagerLimit() {
		if wait := txDone.Sub(c.proc.Now()); wait > 0 {
			c.proc.Sleep(wait)
		}
	}
}

// Recv blocks until a message matching (src, tag) — either may be a
// wildcard — has arrived and been processed, and returns its payload.
func (c *Comm) Recv(src, tag int) []byte {
	e := c.recvEnvelope(src, tag)
	return e.data
}

// RecvFrom is Recv returning the actual source (communicator-relative),
// for AnySource receives.
func (c *Comm) RecvFrom(src, tag int) (data []byte, from int) {
	e := c.recvEnvelope(src, tag)
	return e.data, c.localRank(e.src)
}

func (c *Comm) recvEnvelope(src, tag int) envelope {
	cl := c.w.cluster
	st := c.w.ranks[c.rank]
	wsrc := src
	if src != AnySource {
		wsrc = c.worldRank(src)
	}
	wtag := tag
	if tag != AnyTag {
		wtag = c.wireTag(tag)
	}
	e, ok := st.take(wsrc, wtag)
	if !ok {
		req := &recvReq{src: wsrc, tag: wtag, done: sim.NewFuture[envelope](cl.Kernel(), "recv")}
		st.posted = append(st.posted, req)
		e = req.done.Await(c.proc)
	}
	c.proc.Sleep(cl.Jitter(cl.Machine().RecvCost(c.opClass)))
	return e
}

// Sendrecv exchanges messages with two peers (possibly the same):
// it injects the outgoing message, then blocks for the incoming one.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Combine implements coll.Transport: it applies the reduction step and
// charges the machine's arithmetic cost for this operation class. Under
// opaque payloads the cost is still charged but the data untouched —
// the merged operand has a's length either way.
func (c *Comm) Combine(a, b []byte, f coll.Combiner) []byte {
	cl := c.w.cluster
	size := len(a)
	if cost := cl.Machine().CombineCost(c.opClass, size); cost > 0 {
		c.proc.Sleep(cl.Jitter(cost))
	}
	if c.w.opaque {
		return a
	}
	return f(a, b)
}

// OpaquePayloads implements coll.OpaqueTransport: it reports whether
// this world runs with length-only payloads (RunOptions.OpaquePayloads).
func (c *Comm) OpaquePayloads() bool { return c.w.opaque }
