package mpi

import (
	"repro/internal/sim"
)

// Request is a handle to a nonblocking operation (MPI_Isend/MPI_Irecv),
// completed by Wait. A send request completes when the send buffer is
// reusable (data fully injected); a receive request completes when the
// message has arrived and been processed.
type Request struct {
	c      *Comm
	isSend bool
	// send completion
	txDone sim.Time
	// receive completion
	recv *recvReq
	env  envelope
	done bool
}

// Isend starts a nonblocking send. The sender still pays its per-message
// CPU overhead (posting the descriptor); the network transfer proceeds
// in the background regardless of message size.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	cl := c.w.cluster
	m := cl.Machine()
	c.proc.Sleep(cl.Jitter(m.SendCost(c.opClass)))
	txDone, arrive := cl.Net().TransferDetail(
		c.rank, c.worldRank(dst), len(data), c.proc.Now(), m.InjMBs(c.opClass, len(data)))
	st := c.w.ranks[c.worldRank(dst)]
	payload := data
	src := c.rank
	tg := c.wireTag(tag)
	cl.Kernel().At(arrive, func() {
		st.deliver(envelope{src: src, tag: tg, data: payload})
	})
	return &Request{c: c, isSend: true, txDone: txDone}
}

// Irecv posts a nonblocking receive for a message matching (src, tag);
// wildcards are allowed.
func (c *Comm) Irecv(src, tag int) *Request {
	st := c.w.ranks[c.rank]
	wsrc := src
	if src != AnySource {
		wsrc = c.worldRank(src)
	}
	wtag := tag
	if tag != AnyTag {
		wtag = c.wireTag(tag)
	}
	r := &Request{c: c}
	if e, ok := st.take(wsrc, wtag); ok {
		r.env = e
		r.done = true
		return r
	}
	req := &recvReq{src: wsrc, tag: wtag, done: sim.NewFuture[envelope](c.w.cluster.Kernel(), "irecv")}
	st.posted = append(st.posted, req)
	r.recv = req
	return r
}

// Wait blocks until the request completes. For receives it returns the
// message payload (charging the receive overhead); for sends it returns
// nil once the buffer is reusable.
func (r *Request) Wait() []byte {
	c := r.c
	if r.isSend {
		if wait := r.txDone.Sub(c.proc.Now()); wait > 0 {
			c.proc.Sleep(wait)
		}
		return nil
	}
	if !r.done {
		r.env = r.recv.done.Await(c.proc)
		r.done = true
	}
	cl := c.w.cluster
	c.proc.Sleep(cl.Jitter(cl.Machine().RecvCost(c.opClass)))
	return r.env.data
}

// Test reports whether the request has completed without blocking. A
// completed receive must still be Wait()ed to retrieve the payload (and
// pay the processing cost).
func (r *Request) Test() bool {
	if r.isSend {
		return r.c.proc.Now() >= r.txDone
	}
	return r.done || r.recv.done.Resolved()
}

// Waitall completes all requests in order and returns the receive
// payloads (nil entries for sends) — MPI_Waitall.
func (c *Comm) Waitall(rs ...*Request) [][]byte {
	out := make([][]byte, len(rs))
	for i, r := range rs {
		out[i] = r.Wait()
	}
	return out
}
