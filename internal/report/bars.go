package report

import (
	"fmt"
	"io"
	"strings"
)

// Bar is one horizontal bar, optionally stacked into two segments — the
// shape of the paper's Fig. 4 (startup + transmission) and Fig. 5
// (aggregated bandwidth) charts.
type Bar struct {
	Label string
	Seg1  float64 // first (dark) segment, e.g. startup latency
	Seg2  float64 // second segment, e.g. transmission delay; 0 for plain bars
}

// NewBar returns a plain bar.
func NewBar(label string, value float64) Bar { return Bar{Label: label, Seg1: value} }

// NewStackedBar returns a two-segment bar.
func NewStackedBar(label string, seg1, seg2 float64) Bar {
	return Bar{Label: label, Seg1: seg1, Seg2: seg2}
}

// BarChart renders horizontal ASCII bars scaled to width columns:
// '#' for the first segment, '·' for the second, with the numeric total
// at the end of each row.
func BarChart(w io.Writer, title, unit string, bars []Bar, width int) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintln(w, title)
	var max float64
	labelW := 0
	for _, b := range bars {
		if t := b.Seg1 + b.Seg2; t > max {
			max = t
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, b := range bars {
		n1 := int(b.Seg1 / max * float64(width))
		n2 := int((b.Seg1 + b.Seg2) / max * float64(width))
		if n2 < n1 {
			n2 = n1
		}
		bar := strings.Repeat("#", n1) + strings.Repeat("·", n2-n1)
		fmt.Fprintf(w, "  %-*s |%-*s| %s %s\n",
			labelW, b.Label, width, bar, formatY(b.Seg1+b.Seg2), unit)
	}
}
