// Package report renders the reproduction's outputs: figure series
// (machine curves over a swept axis), Table 3-style expression tables,
// paper-vs-measured comparisons, and CSV for external plotting. Output
// is plain text so the cmd tools compose with standard tooling.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one machine's curve in a figure: Y values (µs or MB/s) over
// the swept X axis.
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Figure is a set of series sharing an axis, one per machine.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTable renders the figure as an aligned table, one row per X
// value, one column per series; missing points print as "-". X values
// are the union of all series' X sets.
func (f *Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s\n", f.Title)
	xs := f.unionX()

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, formatY(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, header, rows, f.YLabel)
}

func (f *Figure) unionX() []int {
	seen := map[int]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			seen[x] = true
		}
	}
	xs := make([]int, 0, len(seen))
	for x := range seen {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	return xs
}

func (s *Series) at(x int) (float64, bool) {
	for i, v := range s.X {
		if v == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func formatY(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 10:
		return fmt.Sprintf("%.2f", v)
	case v < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func writeAligned(w io.Writer, header []string, rows [][]string, note string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	if note != "" {
		fmt.Fprintf(w, "  (values in %s)\n", note)
	}
}

// WriteCSV renders the figure as CSV with an x column and one column per
// series.
func (f *Figure) WriteCSV(w io.Writer) {
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	var rows [][]string
	for _, x := range f.unionX() {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	_ = WriteCSVTable(w, header, rows)
}
