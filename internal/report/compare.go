package report

import (
	"fmt"
	"io"
	"math"
)

// Comparison is one paper-vs-measured check for EXPERIMENTS.md and the
// figure tools: what the paper reports, what the reproduction measured,
// and the ratio.
type Comparison struct {
	Label    string  // e.g. "T3D alltoall T0(64)"
	Paper    float64 // the paper's number
	Measured float64 // ours
	Unit     string
}

// Ratio returns measured/paper (NaN-safe).
func (c Comparison) Ratio() float64 {
	if c.Paper == 0 {
		return math.NaN()
	}
	return c.Measured / c.Paper
}

// Within reports whether the measurement is within a multiplicative
// factor of the paper's value (factor ≥ 1; 2 means between ½× and 2×).
func (c Comparison) Within(factor float64) bool {
	r := c.Ratio()
	return r >= 1/factor && r <= factor
}

// WriteComparisons renders a comparison table.
func WriteComparisons(w io.Writer, title string, cs []Comparison) {
	fmt.Fprintln(w, title)
	header := []string{"check", "paper", "measured", "ratio", "unit"}
	rows := make([][]string, 0, len(cs))
	for _, c := range cs {
		rows = append(rows, []string{
			c.Label,
			formatY(c.Paper),
			formatY(c.Measured),
			fmt.Sprintf("%.2f", c.Ratio()),
			c.Unit,
		})
	}
	writeAlignedLeft(w, header, rows)
}

func writeAlignedLeft(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		s := "  "
		for i, c := range cells {
			if i == 0 {
				s += fmt.Sprintf("%-*s", widths[i]+2, c)
			} else {
				s += fmt.Sprintf("%*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w, s)
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}

// ExpressionRow is one Table 3 line: the paper's expression next to the
// refitted one.
type ExpressionRow struct {
	Machine string
	Op      string
	Paper   string
	Fitted  string
}

// WriteExpressionTable renders a Table 3 reproduction.
func WriteExpressionTable(w io.Writer, title string, rows []ExpressionRow) {
	fmt.Fprintln(w, title)
	header := []string{"machine", "operation", "paper (Table 3)", "refit from simulator"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Machine, r.Op, r.Paper, r.Fitted})
	}
	writeAlignedLeft(w, header, cells)
}
