package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSVTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVTable(&buf,
		[]string{"machine", "op", "micros"},
		[][]string{
			{"SP2", "alltoall", "317000"},
			{"T3D", "barrier", "3.1"},
		})
	if err != nil {
		t.Fatal(err)
	}
	want := "machine,op,micros\nSP2,alltoall,317000\nT3D,barrier,3.1\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteCSVTableQuotesSpecials(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVTable(&buf, []string{"a", "b"}, [][]string{{`x,y`, `say "hi"`}}); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteCSVTableRejectsRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVTable(&buf, []string{"a", "b"}, [][]string{{"only-one"}})
	if err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		XLabel: "p",
		Series: []Series{
			{Label: "SP2", X: []int{2, 8}, Y: []float64{1.5, 4}},
			{Label: "T3D", X: []int{2}, Y: []float64{0.25}},
		},
	}
	var buf bytes.Buffer
	f.WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"p,SP2,T3D", "2,1.5,0.25", "8,4,"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
