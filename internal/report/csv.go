package report

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSVTable writes one header row followed by data rows as
// RFC 4180 CSV. Every row must have the header's width; a ragged row is
// an error so malformed tables never reach external tooling silently.
func WriteCSVTable(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: csv row %d has %d fields, header has %d",
				i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
