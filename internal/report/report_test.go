package report

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		Title:  "Fig. 1a Broadcast startup latency",
		XLabel: "p",
		YLabel: "µs",
		Series: []Series{
			{Label: "SP2", X: []int{2, 4, 8}, Y: []float64{85, 140, 195.4}},
			{Label: "T3D", X: []int{2, 4, 8}, Y: []float64{35, 58, 81.1}},
			{Label: "Paragon", X: []int{2, 4}, Y: []float64{67, 119}},
		},
	}
}

func TestWriteTableContainsAllSeries(t *testing.T) {
	var b strings.Builder
	sampleFigure().WriteTable(&b)
	out := b.String()
	for _, want := range []string{"SP2", "T3D", "Paragon", "85.0", "81.1", "µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Paragon has no p=8 point: a dash must appear.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-point dash absent:\n%s", out)
	}
}

func TestWriteTableRowOrder(t *testing.T) {
	var b strings.Builder
	sampleFigure().WriteTable(&b)
	out := b.String()
	if strings.Index(out, "\n  2  ") > strings.Index(out, "\n  8  ") && strings.Index(out, "\n  8  ") > 0 {
		t.Fatalf("rows not in ascending x order:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	sampleFigure().WriteCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "p,SP2,T3D,Paragon" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want 4", len(lines))
	}
	if !strings.HasSuffix(lines[3], ",") { // Paragon missing at p=8
		t.Fatalf("missing value should be empty field: %q", lines[3])
	}
}

func TestComparisonRatioAndWithin(t *testing.T) {
	c := Comparison{Label: "x", Paper: 100, Measured: 150}
	if r := c.Ratio(); r != 1.5 {
		t.Fatalf("ratio %v", r)
	}
	if !c.Within(2) || c.Within(1.2) {
		t.Fatal("Within misjudged")
	}
	inv := Comparison{Paper: 100, Measured: 50}
	if !inv.Within(2) {
		t.Fatal("½× should be within factor 2")
	}
	zero := Comparison{Paper: 0, Measured: 1}
	if !math.IsNaN(zero.Ratio()) {
		t.Fatal("zero paper value should give NaN ratio")
	}
}

func TestWriteComparisons(t *testing.T) {
	var b strings.Builder
	WriteComparisons(&b, "Spot checks", []Comparison{
		{Label: "T3D barrier", Paper: 3, Measured: 3.1, Unit: "µs"},
		{Label: "SP2 alltoall", Paper: 317000, Measured: 340000, Unit: "µs"},
	})
	out := b.String()
	for _, want := range []string{"Spot checks", "T3D barrier", "1.03", "1.07"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteExpressionTable(t *testing.T) {
	var b strings.Builder
	WriteExpressionTable(&b, "Table 3", []ExpressionRow{
		{Machine: "T3D", Op: "alltoall", Paper: "(26p + 8.6) + (0.038p - 0.12)m", Fitted: "(25.9p + 10) + (0.039p - 0.1)m"},
	})
	out := b.String()
	if !strings.Contains(out, "26p + 8.6") || !strings.Contains(out, "refit") {
		t.Fatalf("expression table wrong:\n%s", out)
	}
}

func TestFormatY(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.14159: "3.14",
		99.9:    "99.9",
		12345:   "12345",
	}
	for v, want := range cases {
		if got := formatY(v); got != want {
			t.Errorf("formatY(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestBarChartRendering(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "Fig. 4 breakdown", "µs", []Bar{
		NewStackedBar("SP2", 858, 2390),
		NewStackedBar("T3D", 845, 1118),
		NewBar("Paragon", 5476),
	}, 40)
	out := b.String()
	if !strings.Contains(out, "Fig. 4 breakdown") || !strings.Contains(out, "#") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	// Longest bar (Paragon) must reach full width; shorter ones must not.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	count := func(s string) int { return strings.Count(s, "#") + strings.Count(s, "·") }
	if count(lines[3]) != 40 {
		t.Fatalf("max bar has %d cells, want 40:\n%s", count(lines[3]), out)
	}
	if count(lines[1]) >= count(lines[3]) {
		t.Fatalf("shorter bar not shorter:\n%s", out)
	}
	// Stacked bar contains both segment glyphs.
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "·") {
		t.Fatalf("stacked bar missing segments:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "empty", "µs", []Bar{NewBar("x", 0)}, 20)
	if !strings.Contains(b.String(), "x") {
		t.Fatal("label missing")
	}
}
