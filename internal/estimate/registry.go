package estimate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/paper"
)

// Range is a calibrated (p, m) envelope: the rectangle of machine sizes
// and message lengths an expression set was fitted over. Estimates
// inside it interpolate the fitted grid; outside it they extrapolate,
// which is where the affine model's error is unbounded — the service
// falls back to the simulator there.
type Range struct {
	PMin int `json:"p_min"`
	PMax int `json:"p_max"`
	MMin int `json:"m_min"`
	MMax int `json:"m_max"`
}

// Contains reports whether (p, m) lies inside the envelope.
func (r Range) Contains(p, m int) bool {
	return p >= r.PMin && p <= r.PMax && m >= r.MMin && m <= r.MMax
}

// String formats "p∈[8,32] m∈[4,65536]".
func (r Range) String() string {
	return fmt.Sprintf("p∈[%d,%d] m∈[%d,%d]", r.PMin, r.PMax, r.MMin, r.MMax)
}

// envelope returns the bounding Range of explicit size and length lists
// (neither assumed sorted).
func envelope(sizes, lengths []int) Range {
	r := Range{PMin: sizes[0], PMax: sizes[0], MMin: lengths[0], MMax: lengths[0]}
	for _, p := range sizes[1:] {
		r.PMin, r.PMax = min(r.PMin, p), max(r.PMax, p)
	}
	for _, m := range lengths[1:] {
		r.MMin, r.MMax = min(r.MMin, m), max(r.MMax, m)
	}
	return r
}

// Entry is one named expression set in a Registry: a backend plus the
// metadata the service needs to answer responsibly — the calibrated
// envelope (for sim fallback) and the measured error bounds (for
// error-bounded answers).
type Entry struct {
	// Name is the registry key ("paper-table3", "refit-default", ...).
	Name string
	// Description is a one-line human label for listings.
	Description string
	// Backend answers the entry's estimates.
	Backend Backend
	// Bounds, when non-nil, carries the backend's sim-validated error
	// table (sweep.AttachBounds loads it from a cache). It must be set
	// before the entry starts serving concurrent requests.
	Bounds *ErrorTable
	// Ranges reports the calibrated (p, m) envelope for one
	// (machine, op), with ok=false when the expression set has no entry
	// for the pair at all. A nil Ranges means unbounded: every request
	// is answered in closed form, never by fallback.
	Ranges func(mach *machine.Machine, op machine.Op) (Range, bool)

	epochOnce sync.Once
	epoch     string
}

// Epoch is the entry's answer-identity: backend name plus provenance,
// computed once. Everything that changes the entry's numbers — the
// calibration grid, methodology, planner, fit family, or
// calibrationVersion — changes the backend's provenance, so keying a
// per-scenario answer cache on the epoch (the way sweep-cache keys
// carry backend identity) makes recalibration self-invalidating: a
// recalibrated backend is a new epoch, and stale answers simply stop
// being found.
func (e *Entry) Epoch() string {
	e.epochOnce.Do(func() {
		e.epoch = e.Backend.Name() + "\x00" + e.Backend.Provenance()
	})
	return e.epoch
}

// Covers reports whether (mach, op, p, m) lies inside the entry's
// calibrated envelope. The second result carries the envelope when one
// exists; reasons for !ok are either a missing expression (rng zero) or
// an out-of-range request.
func (e *Entry) Covers(mach *machine.Machine, op machine.Op, p, m int) (bool, Range) {
	if e.Ranges == nil {
		return true, Range{}
	}
	rng, ok := e.Ranges(mach, op)
	if !ok {
		return false, Range{}
	}
	return rng.Contains(p, m), rng
}

// Predictor returns the entry's expressions as an analytic predictor
// over machines × ops (calibrating them first when the backend is
// Calibrated), or ok=false when the backend has no closed-form
// expressions to export (sim).
func (e *Entry) Predictor(machines []*machine.Machine, ops []machine.Op) (*model.Predictor, bool) {
	switch b := e.Backend.(type) {
	case *Analytic:
		return b.Predictor(), true
	case *Calibrated:
		return b.Predictor(machines, ops), true
	}
	return nil, false
}

// Registry is a named collection of expression sets — the paper's
// published table, refit families, per-variant calibrations — that the
// HTTP service and the CLIs resolve by name. Register entries during
// setup; Get/Names/Entries are safe for concurrent use while serving.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// Register adds an entry. It errors on an empty name, a nil backend, or
// a duplicate name — registries are assembled once, so a collision is a
// configuration bug, not a hot-swap.
func (r *Registry) Register(e *Entry) error {
	if e == nil || e.Name == "" {
		return errors.New("estimate: registry entry needs a name")
	}
	if e.Backend == nil {
		return fmt.Errorf("estimate: registry entry %q needs a backend", e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("estimate: registry entry %q already registered", e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// Get resolves an entry by name, returning a typed *UnknownNameError
// listing the valid names when it does not exist.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, &UnknownNameError{Kind: "registry", Name: name, Valid: r.Names()}
	}
	return e, nil
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Entries returns the entries sorted by name.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegistryConfig parameterizes StandardRegistry's calibrated entries.
// The zero value works: in-memory refits over the default sweep grid.
type RegistryConfig struct {
	// Store persists calibrated fits across processes (nil refits per
	// process). *sweep.Cache implements it.
	Store ExpressionStore
	// Memo dedups simulator measurements with other memo users (the
	// service's sim fallback, a validation run).
	Memo *SampleMemo
	// Workers bounds each calibrated entry's calibration pool.
	Workers int
	// Sizes and Lengths are the calibration grid of the refit entries;
	// nil means DefaultCalibrationSizes and the paper's message lengths
	// — the same grid `cmd/sweep` calibrates by default, so fits and
	// error tables persisted by a sweep are found here by content key.
	Sizes   []int
	Lengths []int
	// Config is the calibration methodology; zero means measure.Fast().
	Config measure.Config
	// Obs, when non-nil, registers the estimation-layer metrics
	// (estimate_memo_total, estimate_expressions_total) and wires them
	// into Memo and the refit entries' backends — see Instrument.
	Obs *obs.Registry
}

// DefaultCalibrationSizes is the default sweep grid's machine sizes —
// what `cmd/sweep` calibrates with when -p is not given.
var DefaultCalibrationSizes = []int{8, 32}

// StandardRegistry assembles the stock expression-set registry shared
// by cmd/serve and cmd/predict:
//
//	paper-table3     the paper's published Table 3 (analytic, fixed)
//	refit-default    expressions recalibrated from the simulator over
//	                 the calibration grid, full measurement plan
//	refit-adaptive   the same grid under the adaptive planner (stops a
//	                 triple's sweep once the fit stabilizes)
//	refit-piecewise  protocol-aware piecewise fits over the same grid
//	                 (closes the affine model's mid-length error gap)
//
// The refit entries distinguish per-variant algorithm families — each
// (machine, op, algorithm) triple carries its own fit.
func StandardRegistry(cfg RegistryConfig) *Registry {
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = DefaultCalibrationSizes
	}
	newCalibrated := func(pl Planner, fc FitConfig) *Calibrated {
		return &Calibrated{
			Config: cfg.Config, Sizes: sizes, Lengths: cfg.Lengths,
			Planner: pl, Fit: fc, Store: cfg.Store, Memo: cfg.Memo, Workers: cfg.Workers,
		}
	}
	r := NewRegistry()
	analytic := PaperAnalytic()
	full := newCalibrated(Planner{}, FitConfig{})
	adaptive := newCalibrated(Planner{Adaptive: true}, FitConfig{})
	piecewise := newCalibrated(Planner{}, FitConfig{Piecewise: true})
	if cfg.Obs != nil {
		Instrument(cfg.Obs, cfg.Memo, full, adaptive, piecewise)
	}
	for _, e := range []*Entry{
		{
			Name:        "paper-table3",
			Description: "the paper's published Table 3 expressions (analytic, fixed)",
			Backend:     analytic,
			Ranges:      analyticRanges(analytic),
		},
		{
			Name:        "refit-default",
			Description: "expressions recalibrated from the simulator (full calibration grid)",
			Backend:     full,
			Ranges:      full.Range,
		},
		{
			Name:        "refit-adaptive",
			Description: "expressions recalibrated under the adaptive planner (early-stopping sweeps)",
			Backend:     adaptive,
			Ranges:      adaptive.Range,
		},
		{
			Name:        "refit-piecewise",
			Description: "protocol-aware piecewise fits (affine segments per message-length regime)",
			Backend:     piecewise,
			Ranges:      piecewise.Range,
		},
	} {
		if err := r.Register(e); err != nil {
			panic(err) // static entry set; a collision is a bug here
		}
	}
	return r
}

// Instrument registers the estimation-layer metric series on reg and
// wires them into memo (when non-nil) and the given calibrated
// backends: estimate_memo_total{result="hit"|"miss"} counts sample-memo
// lookups (a miss is one distinct simulation), and
// estimate_expressions_total{source="store"|"refit"} counts
// calibrations loaded from the expression store vs fitted fresh. The
// series are shared across backends — the registry dedups by
// name+label — so wiring several backends aggregates their traffic.
func Instrument(reg *obs.Registry, memo *SampleMemo, cals ...*Calibrated) {
	memo.Instrument(
		reg.Counter("estimate_memo_total",
			"sample-memo lookups by result (a miss runs one distinct simulation)",
			obs.Label{Key: "result", Value: "hit"}),
		reg.Counter("estimate_memo_total",
			"sample-memo lookups by result (a miss runs one distinct simulation)",
			obs.Label{Key: "result", Value: "miss"}),
	)
	if len(cals) == 0 {
		return
	}
	store := reg.Counter("estimate_expressions_total",
		"triple calibrations by source: loaded from the expression store vs refit",
		obs.Label{Key: "source", Value: "store"})
	refit := reg.Counter("estimate_expressions_total",
		"triple calibrations by source: loaded from the expression store vs refit",
		obs.Label{Key: "source", Value: "refit"})
	for _, c := range cals {
		c.StoreHits, c.Refits = store, refit
	}
}

// analyticRanges bounds a fixed expression set by the paper's own
// measurement grid: the study's machine sizes and message lengths.
// Pairs missing from the set (e.g. allgather, which Table 3 never
// fitted) report ok=false, so the service answers them by simulation.
func analyticRanges(a *Analytic) func(*machine.Machine, machine.Op) (Range, bool) {
	return func(mach *machine.Machine, op machine.Op) (Range, bool) {
		if !a.Covers(mach.Name(), op) {
			return Range{}, false
		}
		lengths := paper.MessageLengths()
		if op == machine.OpBarrier {
			lengths = []int{0}
		}
		return envelope(paper.MachineSizes(mach.Name()), lengths), true
	}
}
