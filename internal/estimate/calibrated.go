package estimate

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/paper"
)

// BackendCalibrated names the measure-then-model backend.
const BackendCalibrated = "calibrated"

// calibrationVersion is baked into expression keys and the backend
// provenance; bump it when the calibration procedure changes in a way
// the key fields do not capture. v2: keys carry the planner
// configuration (the adaptive planner changes which grid cells feed a
// fit). v3: keys carry the fit family (affine vs. piecewise), so every
// pre-piecewise *.expr.json entry self-invalidates and a piecewise
// backend can never serve an affine fit or vice versa.
const calibrationVersion = 3

// defaultAlg is the algorithm alias meaning "the machine's vendor table
// entry" (sweep.DefaultAlgorithm; spelled out here to avoid an import
// cycle). Triples calibrate under their resolved name, so the alias and
// its eponymous variant share one calibration.
const defaultAlg = "default"

// ExpressionStore persists fitted expressions under content keys, so a
// calibration survives across processes. *sweep.Cache implements it;
// a nil store just refits per process.
type ExpressionStore interface {
	// GetExpression returns the stored expression for key, if present
	// and intact.
	GetExpression(key string) (fit.Expression, bool)
	// PutExpression stores an expression under key; id is a
	// human-readable label for cache inspection.
	PutExpression(key, id string, e fit.Expression) error
}

// Planner controls how much of the sizes×lengths calibration grid a
// triple actually measures. The zero value measures the full cross
// product, which reproduces the pre-planner calibration bit for bit.
type Planner struct {
	// Adaptive, when true, measures message-length columns in
	// ascending order and stops as soon as refitting with one more
	// column moves no fitted coefficient by more than RelTol — the
	// calibration-planning ROADMAP item. Startup-only grids (barrier)
	// always measure fully.
	Adaptive bool `json:"adaptive"`
	// RelTol is the per-coefficient relative stability tolerance;
	// ≤ 0 means 0.02. A coefficient is stable when
	// |new−old| ≤ RelTol·max(|new|,|old|) + 1e-9 and its shape (p vs
	// log p) did not flip.
	RelTol float64 `json:"rel_tol"`
	// MinLengths is the number of message-length columns measured
	// before stability is first tested; ≤ 0 means 3. Values are clamped
	// to [2, len(lengths)].
	MinLengths int `json:"min_lengths"`
}

func (pl Planner) relTol() float64 {
	if pl.RelTol <= 0 {
		return 0.02
	}
	return pl.RelTol
}

// normalized canonicalizes the planner for provenance and cache keys:
// a disabled planner is the zero value whatever its other fields say
// (they have no effect), and an enabled one pins its defaults and the
// MinLengths lower clamp, so configurations that compute identically
// key identically. (MinLengths values above the grid's column count
// also compute identically but stay distinct here: the backend-level
// provenance cannot know the per-op column count.)
func (pl Planner) normalized() Planner {
	if !pl.Adaptive {
		return Planner{}
	}
	pl.RelTol = pl.relTol()
	if pl.MinLengths <= 0 {
		pl.MinLengths = 3
	} else if pl.MinLengths < 2 {
		pl.MinLengths = 2
	}
	return pl
}

func (pl Planner) minLengths(total int) int {
	n := pl.MinLengths
	if n <= 0 {
		n = 3
	}
	if n < 2 {
		n = 2
	}
	if n > total {
		n = total
	}
	return n
}

// FitConfig selects the expression family a triple's calibration fits.
// The zero value fits the paper's affine model (fit.TwoStage); enabling
// Piecewise fits protocol-aware segments (fit.Piecewise) instead, which
// closes the affine model's mid-length error gap. The configuration is
// part of the backend's provenance and of every expression key.
type FitConfig struct {
	// Piecewise, when true, fits K ≥ 1 affine segments per triple with
	// breakpoints detected by the consecutive-refit-delta probe and K
	// chosen by grid-validated error (see fit.Piecewise); K = 1 degrades
	// to the affine fit, so each triple individually keeps the simpler
	// model when it already fits.
	Piecewise bool `json:"piecewise"`
	// MaxSegments caps K; ≤ 0 means fit.PiecewiseOptions' default — no
	// cap beyond one segment per detected regime boundary.
	MaxSegments int `json:"max_segments"`
	// RelTol is the probe's breakpoint threshold; ≤ 0 means the
	// default (0.02).
	RelTol float64 `json:"rel_tol"`
}

// normalized canonicalizes the fit config for provenance and keys: a
// disabled config is the zero value whatever its other fields say, and
// an enabled one pins its defaults, so configurations that compute
// identically key identically.
func (fc FitConfig) normalized() FitConfig {
	if !fc.Piecewise {
		return FitConfig{}
	}
	if fc.MaxSegments < 0 {
		fc.MaxSegments = 0 // canonical "uncapped"
	}
	if fc.RelTol <= 0 {
		fc.RelTol = 0.02
	}
	return FitConfig{Piecewise: true, MaxSegments: fc.MaxSegments, RelTol: fc.RelTol}
}

// options returns the fit.Piecewise options the config denotes.
func (fc FitConfig) options() fit.PiecewiseOptions {
	n := fc.normalized()
	return fit.PiecewiseOptions{MaxSegments: n.MaxSegments, RelTol: n.RelTol}
}

// Calibrated is the measure-then-model backend: on the first request
// for a (machine, op, algorithm) triple it runs a small seeded sim
// sweep over the calibration grid, fits a Table 3-style expression with
// fit.TwoStage, persists it through Store (when set), and from then on
// serves that triple in closed form at analytic speed. Unlike Analytic
// it distinguishes registry algorithm variants, because each variant is
// calibrated separately; the "default" alias resolves to the vendor
// table entry and shares its calibration.
//
// The zero value calibrates over the paper's grid with the fast
// methodology, one triple at a time on demand. Precalibrate fits many
// triples up front through a bounded worker pool. Fields must not be
// mutated after the first Estimate call; Estimate itself is safe for
// concurrent use.
type Calibrated struct {
	// Config is the calibration methodology; the zero value means
	// measure.Fast().
	Config measure.Config
	// Sizes are the calibration machine sizes (capped per machine);
	// nil means paper.MachineSizes. Matching the evaluation grid's
	// sizes makes the startup fit exact at those sizes.
	Sizes []int
	// Lengths are the calibration message lengths; nil means
	// paper.MessageLengths. Barriers always calibrate at length 0.
	Lengths []int
	// Planner bounds the measured grid; the zero value measures it
	// fully. Piecewise calibrations (see Fit) always measure the full
	// grid — the breakpoint probe scans every column — so the planner is
	// ignored (and normalized away in provenance) when Fit.Piecewise is
	// set.
	Planner Planner
	// Fit selects the expression family fitted per triple; the zero
	// value is the paper's affine model.
	Fit FitConfig
	// Store, when non-nil, persists fitted expressions across
	// processes under content keys.
	Store ExpressionStore
	// Memo, when non-nil, dedups the calibration's individual
	// measurements with any other memo user (e.g. a Sim backend in the
	// same validation run).
	Memo *SampleMemo
	// Workers bounds Precalibrate's default pool; ≤ 0 means
	// runtime.GOMAXPROCS.
	Workers int
	// StoreHits and Refits count calibrations served from the expression
	// store vs fitted fresh (obs wiring; nil = uncounted). Set them
	// before the first Estimate call, like every other field.
	StoreHits, Refits *obs.Counter

	mu  sync.Mutex
	cal map[calTriple]*calEntry
}

type calTriple struct {
	mach string
	op   machine.Op
	alg  string // always a resolved (non-alias) name
}

type calEntry struct {
	once sync.Once
	expr fit.Expression
}

// Triple identifies one calibration unit for Precalibrate. Alg may be
// the "default" alias or empty for the vendor table entry.
type Triple struct {
	Machine *machine.Machine
	Op      machine.Op
	Alg     string
}

// Name returns "calibrated".
func (*Calibrated) Name() string { return BackendCalibrated }

// Provenance hashes the calibration spec (grid, methodology, planner,
// and fit family), so sweep-cache entries derived from one calibration
// never serve another.
func (c *Calibrated) Provenance() string {
	blob, err := json.Marshal(struct {
		V       int            `json:"v"`
		Sizes   []int          `json:"sizes"`
		Lengths []int          `json:"lengths"`
		Config  measure.Config `json:"config"`
		Planner Planner        `json:"planner"`
		Fit     FitConfig      `json:"fit"`
	}{calibrationVersion, c.Sizes, c.Lengths, c.config(), c.planner(), c.Fit.normalized()})
	if err != nil {
		panic(fmt.Sprintf("estimate: calibrated provenance: %v", err))
	}
	return hashJSON(blob)
}

// planner returns the normalized planner that actually governs
// calibration: piecewise fits measure the full grid, so their planner
// canonicalizes to the zero value and configurations that compute
// identically key identically.
func (c *Calibrated) planner() Planner {
	if c.Fit.normalized().Piecewise {
		return Planner{}
	}
	return c.Planner.normalized()
}

// Estimate serves (op, algs, p, m) on mach from the triple's fitted
// expression, calibrating it first if this is the triple's first use.
// ctx is deliberately ignored: a calibration is a shared once-per-triple
// computation (calEntry.once), and letting one request's deadline abort
// it would poison the entry for every later request sharing the triple.
// The error is always nil.
func (c *Calibrated) Estimate(_ context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, _ measure.Config) (Estimate, error) {
	e := c.Expression(mach, op, algs.Get(op))
	// Predict clamps small negative fitted per-byte terms (non-physical
	// outside the calibrated range) and dispatches piecewise fits to the
	// segment covering m, exactly like model.Predictor.Time.
	t := e.Predict(m, p)
	return closedForm(BackendCalibrated, mach.Name(), op, p, m, t), nil
}

// Expression returns the fitted expression for one (machine, op,
// algorithm) triple, calibrating or loading it on first use. The
// "default" alias (or an empty name) resolves to the machine's vendor
// table entry, sharing that variant's calibration.
func (c *Calibrated) Expression(mach *machine.Machine, op machine.Op, alg string) fit.Expression {
	if alg == "" || alg == defaultAlg {
		alg = mpi.DefaultAlgorithms(mach).Get(op)
	}
	k := calTriple{mach.Name(), op, alg}
	c.mu.Lock()
	if c.cal == nil {
		c.cal = map[calTriple]*calEntry{}
	}
	entry, ok := c.cal[k]
	if !ok {
		entry = &calEntry{}
		c.cal[k] = entry
	}
	c.mu.Unlock()
	entry.once.Do(func() { entry.expr = c.calibrate(mach, op, alg) })
	return entry.expr
}

// Precalibrate fits every distinct triple (after default-alias
// resolution) through a bounded worker pool, so a sweep's cold
// calibration runs concurrently instead of triple by triple on first
// touch. workers ≤ 0 uses c.Workers, then GOMAXPROCS. Safe to call
// repeatedly; already-calibrated triples cost nothing.
func (c *Calibrated) Precalibrate(triples []Triple, workers int) {
	seen := map[calTriple]bool{}
	work := make([]Triple, 0, len(triples))
	for _, tr := range triples {
		alg := tr.Alg
		if alg == "" || alg == defaultAlg {
			alg = mpi.DefaultAlgorithms(tr.Machine).Get(tr.Op)
		}
		k := calTriple{tr.Machine.Name(), tr.Op, alg}
		if seen[k] {
			continue
		}
		seen[k] = true
		work = append(work, Triple{tr.Machine, tr.Op, alg})
	}
	if workers <= 0 {
		workers = c.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		for _, tr := range work {
			c.Expression(tr.Machine, tr.Op, tr.Alg)
		}
		return
	}
	jobs := make(chan Triple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tr := range jobs {
				c.Expression(tr.Machine, tr.Op, tr.Alg)
			}
		}()
	}
	for _, tr := range work {
		jobs <- tr
	}
	close(jobs)
	wg.Wait()
}

// Predictor calibrates every (machine, op) with the vendor-default
// algorithm table and returns an analytic predictor over the fits —
// the regenerated-Table 3 counterpart of model.FromPaper. Calibration
// runs through the Precalibrate pool.
func (c *Calibrated) Predictor(machines []*machine.Machine, ops []machine.Op) *model.Predictor {
	var triples []Triple
	for _, mach := range machines {
		for _, op := range ops {
			triples = append(triples, Triple{mach, op, defaultAlg})
		}
	}
	c.Precalibrate(triples, 0)
	exprs := map[string]map[machine.Op]fit.Expression{}
	for _, mach := range machines {
		algs := mpi.DefaultAlgorithms(mach)
		row := map[machine.Op]fit.Expression{}
		for _, op := range ops {
			row[op] = c.Expression(mach, op, algs.Get(op))
		}
		exprs[mach.Name()] = row
	}
	return model.New(exprs)
}

// Range returns the calibrated (p, m) envelope for one (machine, op) —
// the grid rectangle the triple's fits interpolate. ok is always true:
// the calibrated backend covers every registered operation. The
// signature matches Entry.Ranges so a registry entry can use the method
// value directly.
func (c *Calibrated) Range(mach *machine.Machine, op machine.Op) (Range, bool) {
	return envelope(c.sizesFor(mach), c.lengthsFor(op)), true
}

// calibrate runs the triple's calibration sweep (or loads a stored fit)
// and returns the expression. alg is already resolved.
func (c *Calibrated) calibrate(mach *machine.Machine, op machine.Op, alg string) fit.Expression {
	sizes := c.sizesFor(mach)
	lengths := c.lengthsFor(op)
	cfg := c.config()

	var key string
	if c.Store != nil {
		key = expressionKey(mach, op, alg, sizes, lengths, cfg, c.planner(), c.Fit.normalized())
		if e, ok := c.Store.GetExpression(key); ok {
			c.StoreHits.Inc()
			return e
		}
	}
	algs := mpi.DefaultAlgorithms(mach).With(op, alg)
	startupShape := paper.StartupShape(op)
	perByteShape := paper.PerByteShape(mach.Name(), op)
	var e fit.Expression
	switch {
	case c.Fit.Piecewise:
		// Piecewise fits measure the full grid: the breakpoint probe
		// needs every column, so the adaptive planner does not apply.
		d := c.Memo.Dataset(mach, op, algs, sizes, lengths, cfg)
		e = fit.Piecewise(d, startupShape, perByteShape, c.Fit.options())
	case c.Planner.Adaptive && len(lengths) > 2:
		e = c.adaptiveFit(mach, op, algs, sizes, lengths, cfg, startupShape, perByteShape)
	default:
		d := c.Memo.Dataset(mach, op, algs, sizes, lengths, cfg)
		e = fit.TwoStage(d, startupShape, perByteShape)
	}
	c.Refits.Inc()
	if c.Store != nil {
		id := fmt.Sprintf("%s/%s[%s] calibration", mach.Name(), op, alg)
		_ = c.Store.PutExpression(key, id, e) // best-effort, like sample caching
	}
	return e
}

// adaptiveFit measures message-length columns — every machine size per
// column — refitting after each one past the planner's minimum, and
// stops as soon as the fit stabilizes. The initial set is the shortest
// MinLengths−1 columns (they anchor the startup term) plus the longest
// column (it dominates the per-byte slope, and pinning it keeps a
// mid-range protocol switch — eager to rendezvous — from being
// extrapolated over); the remaining columns then join in ascending
// order until two consecutive fits agree within tolerance.
func (c *Calibrated) adaptiveFit(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, sizes, lengths []int, cfg measure.Config, startupShape, perByteShape fit.FormKind) fit.Expression {
	d := &fit.Dataset{}
	measureColumn := func(m int) {
		for _, p := range sizes {
			d.Add(p, m, c.Memo.Measure(mach, op, algs, p, m, cfg).Micros)
		}
	}
	min := c.Planner.minLengths(len(lengths))
	for i := 0; i < min-1; i++ {
		measureColumn(lengths[i])
	}
	measureColumn(lengths[len(lengths)-1])
	prev := fit.TwoStage(d, startupShape, perByteShape)
	tol := c.Planner.relTol()
	for i := min - 1; i < len(lengths)-1; i++ {
		measureColumn(lengths[i])
		next := fit.TwoStage(d, startupShape, perByteShape)
		if fit.Stable(prev, next, tol) {
			return next
		}
		prev = next
	}
	return prev
}

func (c *Calibrated) config() measure.Config {
	if c.Config == (measure.Config{}) {
		return measure.Fast()
	}
	return c.Config
}

func (c *Calibrated) sizesFor(mach *machine.Machine) []int {
	sizes := c.Sizes
	if len(sizes) == 0 {
		sizes = paper.MachineSizes(mach.Name())
	}
	out := make([]int, 0, len(sizes))
	for _, p := range sizes {
		if p >= 2 && p <= mach.MaxNodes() {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("estimate: no calibration sizes within 2..%d for %s",
			mach.MaxNodes(), mach.Name()))
	}
	return out
}

// lengthsFor returns the calibration lengths for op, sorted ascending
// and deduplicated: the fit is order-independent, but the adaptive
// planner's column schedule (shortest first, longest anchor) and the
// canonical expression key both rely on the normalized order.
func (c *Calibrated) lengthsFor(op machine.Op) []int {
	if op == machine.OpBarrier {
		return []int{0}
	}
	if len(c.Lengths) == 0 {
		return paper.MessageLengths()
	}
	lengths := append([]int(nil), c.Lengths...)
	sort.Ints(lengths)
	out := lengths[:0]
	for i, m := range lengths {
		if i == 0 || m != lengths[i-1] {
			out = append(out, m)
		}
	}
	return out
}

// expressionKey is the content key of one triple's fit: identical
// calibration inputs — machine constants, operation, resolved
// algorithm, grid, methodology, planner, fit family — always produce
// the same key, and any drift produces a different one.
func expressionKey(mach *machine.Machine, op machine.Op, alg string, sizes, lengths []int, cfg measure.Config, pl Planner, fc FitConfig) string {
	blob, err := json.Marshal(struct {
		V           int            `json:"v"`
		Calibration string         `json:"calibration"`
		Op          machine.Op     `json:"op"`
		Alg         string         `json:"alg"`
		Sizes       []int          `json:"sizes"`
		Lengths     []int          `json:"lengths"`
		Config      measure.Config `json:"config"`
		Planner     Planner        `json:"planner"`
		Fit         FitConfig      `json:"fit"`
	}{calibrationVersion, Fingerprint(mach), op, alg, sizes, lengths, cfg, pl, fc})
	if err != nil {
		panic(fmt.Sprintf("estimate: expression key %s/%s[%s]: %v", mach.Name(), op, alg, err))
	}
	return hashJSON(blob)
}
