package estimate

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/paper"
)

// BackendCalibrated names the measure-then-model backend.
const BackendCalibrated = "calibrated"

// calibrationVersion is baked into expression keys and the backend
// provenance; bump it when the calibration procedure changes in a way
// the key fields do not capture.
const calibrationVersion = 1

// ExpressionStore persists fitted expressions under content keys, so a
// calibration survives across processes. *sweep.Cache implements it;
// a nil store just refits per process.
type ExpressionStore interface {
	// GetExpression returns the stored expression for key, if present
	// and intact.
	GetExpression(key string) (fit.Expression, bool)
	// PutExpression stores an expression under key; id is a
	// human-readable label for cache inspection.
	PutExpression(key, id string, e fit.Expression) error
}

// Calibrated is the measure-then-model backend: on the first request
// for a (machine, op, algorithm) triple it runs a small seeded sim
// sweep over the calibration grid, fits a Table 3-style expression with
// fit.TwoStage, persists it through Store (when set), and from then on
// serves that triple in closed form at analytic speed. Unlike Analytic
// it distinguishes registry algorithm variants, because each variant is
// calibrated separately.
//
// The zero value calibrates over the paper's grid with the fast
// methodology. Fields must not be mutated after the first Estimate
// call; Estimate itself is safe for concurrent use.
type Calibrated struct {
	// Config is the calibration methodology; the zero value means
	// measure.Fast().
	Config measure.Config
	// Sizes are the calibration machine sizes (capped per machine);
	// nil means paper.MachineSizes. Matching the evaluation grid's
	// sizes makes the startup fit exact at those sizes.
	Sizes []int
	// Lengths are the calibration message lengths; nil means
	// paper.MessageLengths. Barriers always calibrate at length 0.
	Lengths []int
	// Store, when non-nil, persists fitted expressions across
	// processes under content keys.
	Store ExpressionStore

	mu  sync.Mutex
	cal map[calTriple]*calEntry
}

type calTriple struct {
	mach string
	op   machine.Op
	alg  string
}

type calEntry struct {
	once sync.Once
	expr fit.Expression
}

// Name returns "calibrated".
func (*Calibrated) Name() string { return BackendCalibrated }

// Provenance hashes the calibration spec (grid and methodology), so
// sweep-cache entries derived from one calibration never serve another.
func (c *Calibrated) Provenance() string {
	blob, err := json.Marshal(struct {
		V       int            `json:"v"`
		Sizes   []int          `json:"sizes"`
		Lengths []int          `json:"lengths"`
		Config  measure.Config `json:"config"`
	}{calibrationVersion, c.Sizes, c.Lengths, c.config()})
	if err != nil {
		panic(fmt.Sprintf("estimate: calibrated provenance: %v", err))
	}
	return hashJSON(blob)
}

// Estimate serves (op, algs, p, m) on mach from the triple's fitted
// expression, calibrating it first if this is the triple's first use.
func (c *Calibrated) Estimate(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, _ measure.Config) Estimate {
	e := c.Expression(mach, op, algs.Get(op))
	perByte := e.EvalPerByte(p)
	if perByte < 0 {
		// Clamp like model.Predictor.Time: small negative fitted terms
		// go non-physical outside the calibrated range.
		perByte = 0
	}
	t := e.EvalStartup(p) + perByte*float64(m)
	return closedForm(BackendCalibrated, mach.Name(), op, p, m, t)
}

// Expression returns the fitted expression for one (machine, op,
// algorithm) triple, calibrating or loading it on first use.
func (c *Calibrated) Expression(mach *machine.Machine, op machine.Op, alg string) fit.Expression {
	k := calTriple{mach.Name(), op, alg}
	c.mu.Lock()
	if c.cal == nil {
		c.cal = map[calTriple]*calEntry{}
	}
	entry, ok := c.cal[k]
	if !ok {
		entry = &calEntry{}
		c.cal[k] = entry
	}
	c.mu.Unlock()
	entry.once.Do(func() { entry.expr = c.calibrate(mach, op, alg) })
	return entry.expr
}

// Predictor calibrates every (machine, op) with the vendor-default
// algorithm table and returns an analytic predictor over the fits —
// the regenerated-Table 3 counterpart of model.FromPaper.
func (c *Calibrated) Predictor(machines []*machine.Machine, ops []machine.Op) *model.Predictor {
	exprs := map[string]map[machine.Op]fit.Expression{}
	for _, mach := range machines {
		algs := mpi.DefaultAlgorithms(mach)
		row := map[machine.Op]fit.Expression{}
		for _, op := range ops {
			row[op] = c.Expression(mach, op, algs.Get(op))
		}
		exprs[mach.Name()] = row
	}
	return model.New(exprs)
}

// calibrate runs the triple's calibration sweep (or loads a stored fit)
// and returns the expression.
func (c *Calibrated) calibrate(mach *machine.Machine, op machine.Op, alg string) fit.Expression {
	sizes := c.sizesFor(mach)
	lengths := c.lengthsFor(op)
	cfg := c.config()

	var key string
	if c.Store != nil {
		key = expressionKey(mach, op, alg, sizes, lengths, cfg)
		if e, ok := c.Store.GetExpression(key); ok {
			return e
		}
	}
	algs := mpi.DefaultAlgorithms(mach)
	if alg != "" && alg != "default" {
		algs = algs.With(op, alg)
	}
	d := BuildDataset(mach, op, algs, sizes, lengths, cfg)
	e := fit.TwoStage(d, paper.StartupShape(op), paper.PerByteShape(mach.Name(), op))
	if c.Store != nil {
		id := fmt.Sprintf("%s/%s[%s] calibration", mach.Name(), op, alg)
		_ = c.Store.PutExpression(key, id, e) // best-effort, like sample caching
	}
	return e
}

func (c *Calibrated) config() measure.Config {
	if c.Config == (measure.Config{}) {
		return measure.Fast()
	}
	return c.Config
}

func (c *Calibrated) sizesFor(mach *machine.Machine) []int {
	sizes := c.Sizes
	if len(sizes) == 0 {
		sizes = paper.MachineSizes(mach.Name())
	}
	out := make([]int, 0, len(sizes))
	for _, p := range sizes {
		if p >= 2 && p <= mach.MaxNodes() {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("estimate: no calibration sizes within 2..%d for %s",
			mach.MaxNodes(), mach.Name()))
	}
	return out
}

func (c *Calibrated) lengthsFor(op machine.Op) []int {
	if op == machine.OpBarrier {
		return []int{0}
	}
	if len(c.Lengths) == 0 {
		return paper.MessageLengths()
	}
	return c.Lengths
}

// expressionKey is the content key of one triple's fit: identical
// calibration inputs — machine constants, operation, algorithm, grid,
// methodology — always produce the same key, and any drift produces a
// different one.
func expressionKey(mach *machine.Machine, op machine.Op, alg string, sizes, lengths []int, cfg measure.Config) string {
	blob, err := json.Marshal(struct {
		V           int            `json:"v"`
		Calibration string         `json:"calibration"`
		Op          machine.Op     `json:"op"`
		Alg         string         `json:"alg"`
		Sizes       []int          `json:"sizes"`
		Lengths     []int          `json:"lengths"`
		Config      measure.Config `json:"config"`
	}{calibrationVersion, Fingerprint(mach), op, alg, sizes, lengths, cfg})
	if err != nil {
		panic(fmt.Sprintf("estimate: expression key %s/%s[%s]: %v", mach.Name(), op, alg, err))
	}
	return hashJSON(blob)
}
