package estimate

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// ErrInjected marks an error produced by a FaultBackend rather than by
// the wrapped backend; tests and the chaos soak assert on it with
// errors.Is.
var ErrInjected = errors.New("estimate: injected fault")

// FaultBackend wraps a Backend and injects faults — added latency,
// errors, and panics — per scenario by seeded probability. It exists to
// prove the serving stack's resilience machinery (deadline degradation,
// panic recovery, error accounting) under reproducible chaos: the draw
// for a given scenario depends only on (Seed, machine, op, p, m), so a
// test or soak run replays the exact same fault schedule every time,
// and a scenario that errors keeps erroring until the seed changes.
//
// The zero probabilities make the wrapper transparent. Faults are
// evaluated in order latency → error → panic, each with an independent
// draw, so a scenario can be both slowed and failed.
type FaultBackend struct {
	Inner Backend
	Seed  int64

	// LatencyProb is the probability a scenario sleeps Latency before
	// being estimated. The sleep honors ctx: a deadline that expires
	// mid-sleep returns ctx's error, exercising the degraded path.
	LatencyProb float64
	Latency     time.Duration

	// ErrorProb is the probability a scenario returns ErrInjected.
	ErrorProb float64

	// PanicProb is the probability a scenario panics, exercising the
	// serving stack's recovery middleware.
	PanicProb float64
}

// Name delegates to the wrapped backend: a fault-injected estimate that
// does come through is the inner backend's answer.
func (f *FaultBackend) Name() string { return f.Inner.Name() }

// Provenance is the inner provenance plus a chaos suffix, so answers
// produced under fault injection never share cache keys with clean ones.
func (f *FaultBackend) Provenance() string {
	return fmt.Sprintf("%s+chaos(seed=%d,l=%g:%s,e=%g,p=%g)",
		f.Inner.Provenance(), f.Seed, f.LatencyProb, f.Latency, f.ErrorProb, f.PanicProb)
}

// Estimate draws the scenario's fault schedule and then delegates.
func (f *FaultBackend) Estimate(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (Estimate, error) {
	rng := f.scenarioRand(mach.Name(), op, p, m)
	if f.LatencyProb > 0 && rng.Float64() < f.LatencyProb {
		t := time.NewTimer(f.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Estimate{}, ctx.Err()
		}
	}
	if f.ErrorProb > 0 && rng.Float64() < f.ErrorProb {
		return Estimate{}, fmt.Errorf("%w: %s %s p=%d m=%d", ErrInjected, mach.Name(), op, p, m)
	}
	if f.PanicProb > 0 && rng.Float64() < f.PanicProb {
		panic(fmt.Sprintf("chaos: injected panic for %s %s p=%d m=%d", mach.Name(), op, p, m))
	}
	return f.Inner.Estimate(ctx, mach, op, algs, p, m, cfg)
}

// scenarioRand returns a deterministic source for one scenario's draws:
// FNV-1a over the seed and scenario identity seeds a private rand, so
// fault decisions are reproducible and independent of request order.
func (f *FaultBackend) scenarioRand(mach string, op machine.Op, p, m int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d", f.Seed, mach, op, p, m)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ParseFaultSpec parses the -chaos flag's comma-separated spec, e.g.
//
//	error=0.05,panic=0.01,latency=0.2:50ms,seed=7
//
// Keys: error=<prob>, panic=<prob>, latency=<prob>:<duration>, and
// seed=<int64>. Probabilities must lie in [0, 1]. An empty spec returns
// a transparent wrapper config (all probabilities zero).
func ParseFaultSpec(spec string) (FaultBackend, error) {
	var f FaultBackend
	if spec == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return f, fmt.Errorf("estimate: fault spec %q: want key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("estimate: fault spec seed %q: %v", val, err)
			}
			f.Seed = n
		case "error":
			p, err := parseProb(val)
			if err != nil {
				return f, fmt.Errorf("estimate: fault spec error: %v", err)
			}
			f.ErrorProb = p
		case "panic":
			p, err := parseProb(val)
			if err != nil {
				return f, fmt.Errorf("estimate: fault spec panic: %v", err)
			}
			f.PanicProb = p
		case "latency":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return f, fmt.Errorf("estimate: fault spec latency %q: want prob:duration", val)
			}
			p, err := parseProb(probStr)
			if err != nil {
				return f, fmt.Errorf("estimate: fault spec latency: %v", err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return f, fmt.Errorf("estimate: fault spec latency duration %q invalid", durStr)
			}
			f.LatencyProb, f.Latency = p, d
		default:
			return f, fmt.Errorf("estimate: fault spec: unknown key %q", key)
		}
	}
	return f, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q not in [0, 1]", s)
	}
	return p, nil
}
