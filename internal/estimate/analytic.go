package estimate

import (
	"context"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/mpi"
)

// BackendAnalytic names the closed-form expression backend.
const BackendAnalytic = "analytic"

// PaperProvenance is the provenance of the paper's published Table 3.
const PaperProvenance = "paper-table3"

// Analytic serves closed-form estimates from a fixed expression set —
// paper Table 3 or any refit — via model.Predictor. It is deterministic
// and instant: no cluster is built and no event is simulated. The
// expressions model the vendor-default algorithms the paper measured,
// so the algorithm table is ignored; use Calibrated to distinguish
// registry variants.
type Analytic struct {
	pr         *model.Predictor
	provenance string
}

// NewAnalytic wraps a predictor. provenance must identify the
// expression set (see Backend.Provenance); use PaperAnalytic for the
// published table.
func NewAnalytic(pr *model.Predictor, provenance string) *Analytic {
	return &Analytic{pr: pr, provenance: provenance}
}

// PaperAnalytic returns the backend over the paper's Table 3.
func PaperAnalytic() *Analytic {
	return NewAnalytic(model.FromPaper(), PaperProvenance)
}

// Name returns "analytic".
func (*Analytic) Name() string { return BackendAnalytic }

// Provenance identifies the expression set.
func (a *Analytic) Provenance() string { return a.provenance }

// Predictor exposes the wrapped predictor for ranking, crossover, and
// workload analyses.
func (a *Analytic) Predictor() *model.Predictor { return a.pr }

// Covers reports whether the expression set has an entry for
// (mach, op); Estimate panics outside that set, matching the model
// package's contract.
func (a *Analytic) Covers(mach string, op machine.Op) bool {
	_, ok := a.pr.Expression(mach, op)
	return ok
}

// Estimate evaluates T(m, p) in closed form. All Sample statistics
// carry the single predicted value; ctx and cfg are ignored (the
// evaluation is instant) and the error is always nil.
func (a *Analytic) Estimate(_ context.Context, mach *machine.Machine, op machine.Op, _ mpi.Algorithms, p, m int, _ measure.Config) (Estimate, error) {
	t := a.pr.Time(mach.Name(), op, m, p)
	return closedForm(BackendAnalytic, mach.Name(), op, p, m, t), nil
}

// closedForm builds the Estimate of a deterministic prediction.
func closedForm(backend, mach string, op machine.Op, p, m int, t float64) Estimate {
	return Estimate{
		Sample: measure.Sample{
			Machine: mach, Op: op, P: p, M: m,
			Micros: t, MinMicros: t, MaxMicros: t,
			RankMin: t, RankMean: t,
		},
		Backend: backend,
	}
}
