package estimate

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestResolveHelpersReturnTypedErrors(t *testing.T) {
	if m, err := ResolveMachine("T3D"); err != nil || m.Name() != "T3D" {
		t.Fatalf("ResolveMachine(T3D) = %v, %v", m, err)
	}
	_, err := ResolveMachine("SP3")
	var unknown *UnknownNameError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownNameError, got %T", err)
	}
	if unknown.Kind != "machine" || !strings.Contains(err.Error(), "Paragon, SP2, T3D") {
		t.Fatalf("error %v", err)
	}

	if op, err := ResolveOp("allgather"); err != nil || op != machine.OpAllgather {
		t.Fatalf("ResolveOp(allgather) = %v, %v", op, err)
	}
	if _, err := ResolveOp("gossip"); !errors.As(err, &unknown) || unknown.Kind != "operation" {
		t.Fatalf("ResolveOp(gossip) = %v", err)
	}

	t3d, sp2 := machine.T3D(), machine.SP2()
	if alg, err := ResolveAlgorithm(sp2, machine.OpBroadcast, ""); err != nil || alg != "default" {
		t.Fatalf("empty algorithm = %q, %v", alg, err)
	}
	if alg, err := ResolveAlgorithm(t3d, machine.OpBarrier, "hardware"); err != nil || alg != "hardware" {
		t.Fatalf("T3D hardware barrier = %q, %v", alg, err)
	}
	// The hardware barrier needs the circuit: on the SP2 it does not
	// resolve, and the valid list must not offer it.
	_, err = ResolveAlgorithm(sp2, machine.OpBarrier, "hardware")
	if !errors.As(err, &unknown) || unknown.Kind != "algorithm" {
		t.Fatalf("SP2 hardware barrier = %v", err)
	}
	for _, v := range unknown.Valid {
		if v == "hardware" {
			t.Fatalf("SP2 valid barrier algorithms offer the hardware circuit: %v", unknown.Valid)
		}
	}
	if _, err := ResolveAlgorithm(sp2, machine.OpBroadcast, "quantum"); !errors.As(err, &unknown) {
		t.Fatalf("bad variant = %v", err)
	}
}

func TestCompareSurfacesTypedErrors(t *testing.T) {
	_, err := Compare(PaperAnalytic(), []string{"SP2", "SP3"}, machine.OpAlltoall, 8, 64, tinyCfg)
	var unknown *UnknownNameError
	if !errors.As(err, &unknown) || unknown.Name != "SP3" {
		t.Fatalf("Compare with a bad machine = %v", err)
	}
	if _, err := Compare(PaperAnalytic(), machine.Names(), "gossip", 8, 64, tinyCfg); !errors.As(err, &unknown) {
		t.Fatalf("Compare with a bad op = %v", err)
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Entry{Name: "a", Backend: PaperAnalytic()}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&Entry{Name: "a", Backend: PaperAnalytic()}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(&Entry{Backend: PaperAnalytic()}); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if err := r.Register(&Entry{Name: "b"}); err == nil {
		t.Fatal("backendless registration accepted")
	}
	if e, err := r.Get("a"); err != nil || e.Name != "a" {
		t.Fatalf("Get(a) = %v, %v", e, err)
	}
	_, err := r.Get("zzz")
	var unknown *UnknownNameError
	if !errors.As(err, &unknown) || unknown.Kind != "registry" || unknown.Valid[0] != "a" {
		t.Fatalf("Get(zzz) = %v", err)
	}
}

func TestStandardRegistry(t *testing.T) {
	r := StandardRegistry(RegistryConfig{Config: tinyCfg})
	want := []string{"paper-table3", "refit-adaptive", "refit-default", "refit-piecewise"}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want %v", names, want)
		}
	}
	// The refit entries must have distinct provenances (the planner is
	// part of the calibration identity) and both differ from paper's.
	seen := map[string]bool{}
	for _, e := range r.Entries() {
		id := e.Backend.Name() + "\x00" + e.Backend.Provenance()
		if seen[id] {
			t.Fatalf("entries share backend identity %q", id)
		}
		seen[id] = true
	}

	// Envelopes: the paper entry disowns unfitted pairs, the refit
	// entries cover everything over the calibration grid.
	paper, _ := r.Get("paper-table3")
	if _, ok := paper.Ranges(machine.SP2(), machine.OpAllgather); ok {
		t.Fatal("paper-table3 claims a range for allgather")
	}
	if rng, ok := paper.Ranges(machine.SP2(), machine.OpAlltoall); !ok || !rng.Contains(64, 1024) {
		t.Fatalf("paper-table3 alltoall range %v, %v", rng, ok)
	}
	refit, _ := r.Get("refit-default")
	rng, ok := refit.Ranges(machine.T3D(), machine.OpBroadcast)
	if !ok || rng != (Range{PMin: 8, PMax: 32, MMin: 4, MMax: 65536}) {
		t.Fatalf("refit-default broadcast range %v, %v", rng, ok)
	}
	if brng, _ := refit.Ranges(machine.T3D(), machine.OpBarrier); brng.MMax != 0 || !brng.Contains(8, 0) {
		t.Fatalf("barrier range %v", brng)
	}
	if in, _ := refit.Covers(machine.T3D(), machine.OpBroadcast, 64, 1024); in {
		t.Fatal("p=64 claims coverage on an 8..32 calibration")
	}

	// Predictor export: closed-form entries produce one, a sim-backed
	// entry cannot.
	if _, ok := paper.Predictor(machine.All(), []machine.Op{machine.OpAlltoall}); !ok {
		t.Fatal("paper entry exports no predictor")
	}
	simEntry := &Entry{Name: "sim", Backend: Sim{}}
	if _, ok := simEntry.Predictor(machine.All(), nil); ok {
		t.Fatal("sim entry claims a predictor")
	}
}

func TestRangeContainsAndString(t *testing.T) {
	r := Range{PMin: 8, PMax: 32, MMin: 4, MMax: 65536}
	for _, tc := range []struct {
		p, m int
		in   bool
	}{
		{8, 4, true}, {32, 65536, true}, {16, 1024, true},
		{4, 1024, false}, {64, 1024, false}, {16, 2, false}, {16, 131072, false},
	} {
		if got := r.Contains(tc.p, tc.m); got != tc.in {
			t.Fatalf("Contains(%d, %d) = %v", tc.p, tc.m, got)
		}
	}
	if s := r.String(); s != "p∈[8,32] m∈[4,65536]" {
		t.Fatalf("String() = %q", s)
	}
}

func TestErrorTableBound(t *testing.T) {
	table := &ErrorTable{Cells: []ErrorCell{
		{Machine: "SP2", Op: machine.OpBroadcast, M: 16, Median: 0.01, Max: 0.02, Points: 4},
		{Machine: "SP2", Op: machine.OpBroadcast, M: 1024, Median: 0.03, Max: 0.06, Points: 4},
		{Machine: "SP2", Op: machine.OpBarrier, M: 0, Median: 0.005, Max: 0.01, Points: 2},
	}}
	if c, ok := table.Bound("SP2", machine.OpBroadcast, 1024); !ok || c.Median != 0.03 {
		t.Fatalf("exact bound %v, %v", c, ok)
	}
	// 200 is nearer 16 than 1024 on a log scale? log(201/17) ≈ 2.47,
	// log(1025/201) ≈ 1.63 — 1024 wins.
	if c, ok := table.Bound("SP2", machine.OpBroadcast, 200); !ok || c.M != 1024 {
		t.Fatalf("nearest bound %v, %v", c, ok)
	}
	if c, ok := table.Bound("SP2", machine.OpBroadcast, 30); !ok || c.M != 16 {
		t.Fatalf("nearest bound below %v, %v", c, ok)
	}
	if c, ok := table.Bound("SP2", machine.OpBarrier, 0); !ok || c.Points != 2 {
		t.Fatalf("barrier bound %v, %v", c, ok)
	}
	if _, ok := table.Bound("T3D", machine.OpBroadcast, 16); ok {
		t.Fatal("bound for a machine the table never validated")
	}
	var nilTable *ErrorTable
	if _, ok := nilTable.Bound("SP2", machine.OpBroadcast, 16); ok {
		t.Fatal("nil table produced a bound")
	}
}

func TestErrorTableBoundIn(t *testing.T) {
	table := &ErrorTable{Cells: []ErrorCell{
		{Machine: "SP2", Op: machine.OpBroadcast, M: 16, Median: 0.01, Max: 0.02, Points: 4},
		{Machine: "SP2", Op: machine.OpBroadcast, M: 1024, Median: 0.03, Max: 0.06, Points: 4},
		{Machine: "SP2", Op: machine.OpBroadcast, M: 65536, Median: 0.002, Max: 0.004, Points: 4},
	}}
	// Unconstrained, m=200 resolves to 1024; confined to the low
	// segment [4, 256] it must stay at 16 — a bound is never borrowed
	// across a regime boundary.
	if c, ok := table.BoundIn("SP2", machine.OpBroadcast, 200, 4, 256); !ok || c.M != 16 {
		t.Fatalf("segment-confined bound %v, %v; want the m=16 cell", c, ok)
	}
	// Exact validated length inside the segment wins outright.
	if c, ok := table.BoundIn("SP2", machine.OpBroadcast, 1024, 256, 4096); !ok || c.M != 1024 {
		t.Fatalf("exact in-segment bound %v, %v", c, ok)
	}
	// A segment with no validated cells falls back to the nearest
	// overall — better an honest neighbor than no bound.
	if c, ok := table.BoundIn("SP2", machine.OpBroadcast, 300, 256, 512); !ok || c.M != 1024 {
		t.Fatalf("empty-segment fallback %v, %v", c, ok)
	}
	var nilTable *ErrorTable
	if _, ok := nilTable.BoundIn("SP2", machine.OpBroadcast, 16, 4, 256); ok {
		t.Fatal("nil table produced a bound")
	}
}

func TestErrorTableKeyAndDescribes(t *testing.T) {
	a := &Calibrated{Sizes: []int{4, 8}}
	b := &Calibrated{Sizes: []int{8, 32}}
	if ErrorTableKey(a) == ErrorTableKey(b) {
		t.Fatal("distinct calibration specs share an error-table key")
	}
	if ErrorTableKey(a) != ErrorTableKey(&Calibrated{Sizes: []int{4, 8}}) {
		t.Fatal("error-table key is not deterministic")
	}
	table := &ErrorTable{Backend: a.Name(), Provenance: a.Provenance()}
	if !table.Describes(a) || table.Describes(b) {
		t.Fatal("Describes mismatch")
	}
	var nilTable *ErrorTable
	if nilTable.Describes(a) {
		t.Fatal("nil table describes something")
	}
}

func TestCalibratedRangeClampsToMachine(t *testing.T) {
	// Sizes beyond a machine's allocation are dropped from the
	// envelope, exactly as they are dropped from the calibration.
	c := &Calibrated{Sizes: []int{8, 64, 128}, Lengths: []int{16, 1024}}
	rng, ok := c.Range(machine.T3D(), machine.OpBroadcast) // T3D caps at 64
	if !ok || rng != (Range{PMin: 8, PMax: 64, MMin: 16, MMax: 1024}) {
		t.Fatalf("T3D range %v, %v", rng, ok)
	}
}
