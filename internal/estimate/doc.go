// Package estimate unifies the repository's prediction paths — the
// discrete-event simulator and the analytic evaluation of fitted timing
// expressions — behind one pluggable Backend interface, and names
// complete expression sets through a Registry the CLIs and the HTTP
// service resolve against.
//
// # Backends
//
// The paper's closing argument is a split: measure once to fit the
// Table 3 expressions, then predict collective performance at service
// speed without rerunning the machine. Three backends implement it:
//
//   - Sim measures through the full §2 benchmark procedure on the
//     simulated machine (slow, exact — the calibration and ground-truth
//     route).
//   - Analytic evaluates a fixed expression set (paper Table 3 or any
//     regenerated fit) in closed form (instant, no simulation).
//   - Calibrated fits expressions from a small seeded simulator sweep
//     per (machine, op, algorithm) triple, optionally persists them
//     through a content-keyed ExpressionStore, and then serves at
//     analytic speed with a measurable error bound.
//
// Every backend reports a Provenance — a hash of the data its numbers
// derive from — which the sweep cache folds into result keys, so
// distinct backends, expression sets, or calibration specs never
// cross-contaminate.
//
// # Calibration control
//
// Calibrated takes three orthogonal knobs. Config sets the measurement
// methodology (measure.Fast or measure.Paper). Planner bounds how much
// of the sizes×lengths grid a triple measures: the adaptive planner
// measures columns shortest-first plus the longest anchor and stops
// when consecutive refits agree within tolerance. Fit selects the
// expression family: the zero value fits the paper's affine model
// (fit.TwoStage); FitConfig{Piecewise: true} fits protocol-aware
// segments (fit.Piecewise), which closes the affine model's mid-length
// error gap and measures the full grid (the breakpoint probe needs
// every column, so the planner is ignored). All three are part of the
// backend's provenance and of every expression key, so changing any of
// them self-invalidates stale persisted fits.
//
// # Registry and error bounds
//
// Registry names complete expression sets as Entries (backend +
// calibrated envelope + validated error table). StandardRegistry
// assembles the stock family: paper-table3, refit-default,
// refit-adaptive, and refit-piecewise. An Entry's ErrorTable — built by
// `cmd/sweep -validate` and persisted in the sweep cache under the
// backend's provenance key — turns bare predictions into error-bounded
// ones; Bound (nearest validated length) and BoundIn (confined to a
// piecewise fit's serving segment) look bounds up per answer. Range and
// Entry.Covers delimit the calibrated (p, m) envelope so out-of-range
// requests can fall back to the simulator instead of extrapolating.
//
// SampleMemo dedups identical simulator measurements process-wide
// (including in-flight ones), which is why a validation run simulates
// each grid cell exactly once even though the sim pass and the
// calibration sweep both request it.
package estimate
