package estimate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coll"
	"repro/internal/machine"
)

// UnknownNameError reports a name that does not resolve in one of the
// estimation namespaces — a machine preset, a collective operation, an
// algorithm variant, or a registry entry — listing the valid names so a
// caller (in particular the HTTP service) can surface a self-correcting
// message instead of a panic.
type UnknownNameError struct {
	Kind  string   // "machine", "operation", "algorithm", "registry"
	Name  string   // the name that failed to resolve
	Valid []string // the names that would have resolved, sorted
}

// Error formats "unknown machine "SP3" (valid: Paragon, SP2, T3D)".
func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("estimate: unknown %s %q (valid: %s)",
		e.Kind, e.Name, strings.Join(e.Valid, ", "))
}

// ResolveMachine resolves a machine preset by name, returning a typed
// *UnknownNameError (not nil-then-panic) when no preset matches.
func ResolveMachine(name string) (*machine.Machine, error) {
	if m := machine.ByName(name); m != nil {
		return m, nil
	}
	return nil, &UnknownNameError{Kind: "machine", Name: name, Valid: machine.Names()}
}

// ResolveOp validates a collective operation name against the registered
// algorithm registries (which cover every operation the simulator can
// run, including the two beyond the paper's seven).
func ResolveOp(name string) (machine.Op, error) {
	if coll.Algorithms(name) != nil {
		return machine.Op(name), nil
	}
	return "", &UnknownNameError{Kind: "operation", Name: name, Valid: coll.RegisteredOps()}
}

// ResolveAlgorithm validates an algorithm variant for op on mach. The
// empty string resolves to the "default" alias (the machine's vendor
// table entry); the hardware barrier resolves only on machines with the
// circuit. The returned name is what a sweep scenario should carry.
func ResolveAlgorithm(mach *machine.Machine, op machine.Op, name string) (string, error) {
	switch {
	case name == "" || name == defaultAlg:
		return defaultAlg, nil
	case name == coll.AlgHardware && op == machine.OpBarrier && mach.HardwareBarrier():
		return name, nil
	case name != coll.AlgHardware && coll.HasAlgorithm(string(op), name):
		return name, nil
	}
	return "", &UnknownNameError{Kind: "algorithm", Name: name, Valid: ValidAlgorithms(mach, op)}
}

// ValidAlgorithms lists the variants ResolveAlgorithm accepts for
// (mach, op): the registry entries, the "default" alias, and — on
// machines with the circuit — the hardware barrier. It is also the
// triple enumeration a full warm-up precalibrates.
func ValidAlgorithms(mach *machine.Machine, op machine.Op) []string {
	out := append([]string{defaultAlg}, coll.Algorithms(string(op))...)
	if op == machine.OpBarrier && mach.HardwareBarrier() {
		out = append(out, coll.AlgHardware)
	}
	sort.Strings(out)
	return out
}
