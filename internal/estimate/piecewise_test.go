package estimate

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/paper"
)

// pwCal returns a piecewise-fitting backend over the default
// calibration grid for the tests below.
func pwCal(store ExpressionStore, memo *SampleMemo) *Calibrated {
	return &Calibrated{
		Sizes: DefaultCalibrationSizes, Fit: FitConfig{Piecewise: true},
		Store: store, Memo: memo,
	}
}

// TestPiecewiseExpressionStoreRoundTrip: a piecewise fit persisted
// through the expression store must come back segment for segment, and
// a second backend instance must serve it without refitting.
func TestPiecewiseExpressionStoreRoundTrip(t *testing.T) {
	store := &countingStore{}
	memo := NewSampleMemo()
	mach := machine.T3D()
	alg := mpi.DefaultAlgorithms(mach).Get(machine.OpBroadcast)

	first := pwCal(store, memo).Expression(mach, machine.OpBroadcast, alg)
	if !first.IsPiecewise() {
		t.Fatalf("T3D broadcast fitted affine over the paper grid: %s", first)
	}
	if store.puts != 1 {
		t.Fatalf("calibration stored %d expressions, want 1", store.puts)
	}

	second := pwCal(store, memo).Expression(mach, machine.OpBroadcast, alg)
	if store.hits != 1 || store.puts != 1 {
		t.Fatalf("second instance did not serve the stored fit (hits=%d puts=%d)", store.hits, store.puts)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("piecewise fit drifted through the store:\n  put %v\n  got %v", first, second)
	}
}

// TestAffineToPiecewiseSelfInvalidation: enabling the piecewise fit
// family changes every expression key and the backend provenance, so
// persisted affine fits (and sweep results derived from them) can never
// be served to a piecewise backend — the affine→piecewise upgrade
// self-invalidates instead of silently mixing models.
func TestAffineToPiecewiseSelfInvalidation(t *testing.T) {
	store := &countingStore{}
	memo := NewSampleMemo()
	mach := machine.T3D()
	op := machine.OpBroadcast
	alg := mpi.DefaultAlgorithms(mach).Get(op)

	affine := &Calibrated{Sizes: DefaultCalibrationSizes, Store: store, Memo: memo}
	piecewise := pwCal(store, memo)
	if affine.Provenance() == piecewise.Provenance() {
		t.Fatal("affine and piecewise backends share a provenance")
	}

	affine.Expression(mach, op, alg)
	if store.puts != 1 {
		t.Fatalf("affine calibration stored %d expressions, want 1", store.puts)
	}
	e := piecewise.Expression(mach, op, alg)
	if store.hits != 0 {
		t.Fatal("piecewise backend was served a persisted affine fit")
	}
	if store.puts != 2 {
		t.Fatalf("piecewise calibration did not persist its own fit (puts=%d)", store.puts)
	}
	if !e.IsPiecewise() {
		t.Fatalf("piecewise backend produced an affine fit: %s", e)
	}
}

// TestPiecewisePinsWorstMidLengthCells is the regression pin for the
// mid-length error gap: the broadcast and scatter cells the affine
// model mispredicted worst before the piecewise fit (up to ~94%
// relative error at m = 256..4096, see ROADMAP "Mid-length fit
// quality") must stay below 10% — and the affine fit must still be bad
// there, or the regression lost its teeth.
func TestPiecewisePinsWorstMidLengthCells(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates four triples over the full paper lengths")
	}
	cells := []struct {
		mach *machine.Machine
		op   machine.Op
		alg  string
		p, m int
	}{
		// The four worst pre-fix broadcast/scatter scenarios of the
		// default-grid validation (86–94% relative error).
		{machine.Paragon(), machine.OpBroadcast, "linear", 8, 4096},
		{machine.Paragon(), machine.OpScatter, "linear", 32, 4096},
		{machine.Paragon(), machine.OpBroadcast, "linear", 32, 4096},
		{machine.SP2(), machine.OpScatter, "linear", 32, 256},
	}
	memo := NewSampleMemo()
	piecewise := pwCal(nil, memo)
	affine := &Calibrated{Sizes: DefaultCalibrationSizes, Memo: memo}
	cfg := piecewise.config()

	relErr := func(c *Calibrated, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int) float64 {
		sim := memo.Measure(mach, op, algs, p, m, cfg).Micros
		pred := est(c, mach, op, algs, p, m, cfg).Sample.Micros
		re := (pred - sim) / sim
		if re < 0 {
			re = -re
		}
		return re
	}
	affineStillBad := false
	for _, cell := range cells {
		algs := mpi.DefaultAlgorithms(cell.mach).With(cell.op, cell.alg)
		if re := relErr(piecewise, cell.mach, cell.op, algs, cell.p, cell.m); re > 0.10 {
			t.Errorf("%s/%s[%s] p=%d m=%d: piecewise error %.1f%% > 10%%",
				cell.mach.Name(), cell.op, cell.alg, cell.p, cell.m, 100*re)
		}
		if re := relErr(affine, cell.mach, cell.op, algs, cell.p, cell.m); re > 0.20 {
			affineStillBad = true
		}
	}
	if !affineStillBad {
		t.Error("the affine fit now handles every pinned cell within 20% — move the pin to harder cells")
	}
}

// TestPiecewiseBarrierStaysAffine: startup-only triples never fit
// segments, whatever the fit family says.
func TestPiecewiseBarrierStaysAffine(t *testing.T) {
	mach := machine.T3D()
	e := pwCal(nil, NewSampleMemo()).Expression(mach, machine.OpBarrier, mpi.DefaultAlgorithms(mach).Barrier)
	if e.IsPiecewise() || !e.StartupOnly() {
		t.Fatalf("barrier fitted segments: %s", e)
	}
}

// TestPiecewiseRangeUnchanged: the calibrated envelope of a piecewise
// backend is the same grid rectangle as the affine one's — segments
// tile the length range, they do not extend it.
func TestPiecewiseRangeUnchanged(t *testing.T) {
	memo := NewSampleMemo()
	pw := pwCal(nil, memo)
	af := &Calibrated{Sizes: DefaultCalibrationSizes, Memo: memo}
	mach := machine.SP2()
	pr, _ := pw.Range(mach, machine.OpScatter)
	ar, _ := af.Range(mach, machine.OpScatter)
	if pr != ar {
		t.Fatalf("piecewise envelope %v differs from affine %v", pr, ar)
	}
	lengths := paper.MessageLengths()
	if pr.MMin != lengths[0] || pr.MMax != lengths[len(lengths)-1] {
		t.Fatalf("envelope %v does not span the paper lengths", pr)
	}
}
