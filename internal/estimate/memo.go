package estimate

import (
	"context"
	"sync"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// SampleMemo is an in-process, concurrency-safe memo of simulator
// measurements keyed by their full identity: machine calibration
// fingerprint, operation, the complete algorithm table, grid point, and
// methodology (including seed). Two requests with identical keys are
// identical simulations, so the memo serves the second from memory —
// and in-flight duplicates wait for the first instead of re-simulating.
//
// Sharing one memo between the Sim backend and a Calibrated backend
// makes their overlap free: a -validate run measures each grid cell
// once instead of twice (the sim pass and the calibration sweep ask for
// the same cells), and a "default"-algorithm scenario reuses the
// eponymous variant's measurement because their resolved algorithm
// tables are equal.
//
// A nil *SampleMemo is valid and simply measures every request.
type SampleMemo struct {
	mu      sync.Mutex
	entries map[sampleKey]*sampleEntry
	prints  map[*machine.Machine]string // fingerprint cache

	// hits/misses count lookups (obs wiring; nil = uncounted). A miss is
	// a request that created the entry — one per distinct simulation; a
	// hit was served without simulating, including in-flight waiters.
	hits, misses *obs.Counter
}

type sampleKey struct {
	fingerprint string
	op          machine.Op
	algs        mpi.Algorithms
	p, m        int
	cfg         measure.Config
}

type sampleEntry struct {
	once   sync.Once
	sample measure.Sample
	err    error // non-nil: the measuring request's ctx canceled mid-run
}

// NewSampleMemo returns an empty memo.
func NewSampleMemo() *SampleMemo {
	return &SampleMemo{
		entries: map[sampleKey]*sampleEntry{},
		prints:  map[*machine.Machine]string{},
	}
}

// Instrument attaches hit/miss counters to the memo. Call before the
// memo sees concurrent use; either counter may be nil.
func (mo *SampleMemo) Instrument(hits, misses *obs.Counter) {
	if mo == nil {
		return
	}
	mo.hits, mo.misses = hits, misses
}

// Len returns the number of distinct measurements memoized.
func (mo *SampleMemo) Len() int {
	if mo == nil {
		return 0
	}
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return len(mo.entries)
}

// Measure returns the §2 measurement of one configuration, running the
// simulation only if no identical measurement is memoized or in flight.
func (mo *SampleMemo) Measure(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) measure.Sample {
	s, err := mo.MeasureCtx(context.Background(), mach, op, algs, p, m, cfg)
	if err != nil {
		// Background never cancels, and that is the only error path.
		panic("estimate: memo measure: " + err.Error())
	}
	return s
}

// MeasureCtx is Measure under a cancellable context. In-flight
// duplicates still coalesce onto one simulation; if the measuring
// request's ctx cancels mid-run, every waiter sharing that entry gets
// the same error and the entry is discarded, so a later request retries
// the measurement instead of being served a poisoned cache slot.
func (mo *SampleMemo) MeasureCtx(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (measure.Sample, error) {
	if mo == nil {
		return measure.MeasureOpCtx(ctx, mach, op, p, m, cfg, algs)
	}
	mo.mu.Lock()
	print, ok := mo.prints[mach]
	if !ok {
		mo.mu.Unlock()
		print = Fingerprint(mach) // hash outside the lock; idempotent
		mo.mu.Lock()
		mo.prints[mach] = print
	}
	key := sampleKey{print, op, algs, p, m, cfg}
	e, ok := mo.entries[key]
	if !ok {
		e = &sampleEntry{}
		mo.entries[key] = e
	}
	mo.mu.Unlock()
	if ok {
		mo.hits.Inc()
	} else {
		mo.misses.Inc()
	}
	e.once.Do(func() {
		e.sample, e.err = measure.MeasureOpCtx(ctx, mach, op, p, m, cfg, algs)
		if e.err != nil {
			// Forget the failed entry (only if it is still the one
			// mapped — a retry may already have replaced it).
			mo.mu.Lock()
			if mo.entries[key] == e {
				delete(mo.entries, key)
			}
			mo.mu.Unlock()
		}
	})
	return e.sample, e.err
}

// Dataset measures op across machine sizes and message lengths through
// the memo and returns the dataset for curve fitting.
func (mo *SampleMemo) Dataset(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, sizes, lengths []int, cfg measure.Config) *fit.Dataset {
	d := &fit.Dataset{}
	for _, p := range sizes {
		for _, m := range lengths {
			d.Add(p, m, mo.Measure(mach, op, algs, p, m, cfg).Micros)
		}
	}
	return d
}
