package estimate

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// faultFixture wraps the paper analytic — instant, deterministic — so
// fault tests measure only the injector.
func faultFixture(f FaultBackend) *FaultBackend {
	f.Inner = PaperAnalytic()
	return &f
}

// TestFaultBackendTransparentAtZero: zero probabilities delegate
// untouched — same estimate, no error, inner name.
func TestFaultBackendTransparentAtZero(t *testing.T) {
	fb := faultFixture(FaultBackend{Seed: 1})
	mach := machine.SP2()
	algs := mpi.DefaultAlgorithms(mach)
	cfg := measure.Fast()
	got, err := fb.Estimate(context.Background(), mach, machine.OpAlltoall, algs, 8, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fb.Inner.Estimate(context.Background(), mach, machine.OpAlltoall, algs, 8, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("transparent wrapper changed the estimate: %+v vs %+v", got, want)
	}
	if fb.Name() != fb.Inner.Name() {
		t.Fatalf("Name() = %q, want inner %q", fb.Name(), fb.Inner.Name())
	}
}

// TestFaultBackendDeterministicPerScenario: the fault schedule depends
// only on (seed, scenario) — replays agree call by call, scenario
// draws are independent of request order, and a different seed yields
// a different schedule.
func TestFaultBackendDeterministicPerScenario(t *testing.T) {
	mach := machine.T3D()
	algs := mpi.DefaultAlgorithms(mach)
	cfg := measure.Fast()
	outcome := func(fb *FaultBackend, m int) string {
		defer func() { recover() }() // panics are one of the outcomes
		_, err := fb.Estimate(context.Background(), mach, machine.OpBroadcast, algs, 8, m, cfg)
		if err != nil {
			return "error"
		}
		return "ok"
	}
	schedule := func(seed int64, ms []int) []string {
		fb := faultFixture(FaultBackend{Seed: seed, ErrorProb: 0.4, PanicProb: 0.2})
		var out []string
		for _, m := range ms {
			out = append(out, outcome(fb, m))
		}
		return out
	}
	ms := []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	a := schedule(7, ms)
	b := schedule(7, ms)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at m=%d: %v vs %v", ms[i], a, b)
		}
	}
	// Reversed request order: same per-scenario outcomes.
	rev := make([]int, len(ms))
	for i, m := range ms {
		rev[len(ms)-1-i] = m
	}
	c := schedule(7, rev)
	for i := range c {
		if c[i] != a[len(ms)-1-i] {
			t.Fatalf("order dependence at m=%d: %q vs %q", rev[i], c[i], a[len(ms)-1-i])
		}
	}
	// A new seed reshuffles at least one outcome across this many draws.
	d := schedule(8, ms)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seed change produced an identical schedule: %v", a)
	}
}

// TestFaultBackendInjectedError: an injected error is ErrInjected and
// names the scenario.
func TestFaultBackendInjectedError(t *testing.T) {
	fb := faultFixture(FaultBackend{Seed: 1, ErrorProb: 1})
	mach := machine.SP2()
	_, err := fb.Estimate(context.Background(), mach, machine.OpScatter,
		mpi.DefaultAlgorithms(mach), 16, 512, measure.Fast())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "SP2") || !strings.Contains(err.Error(), "scatter") {
		t.Fatalf("error %q does not name the scenario", err)
	}
}

// TestFaultBackendInjectedPanic: PanicProb=1 always panics.
func TestFaultBackendInjectedPanic(t *testing.T) {
	fb := faultFixture(FaultBackend{Seed: 1, PanicProb: 1})
	mach := machine.T3D()
	defer func() {
		if recover() == nil {
			t.Fatal("PanicProb=1 did not panic")
		}
	}()
	fb.Estimate(context.Background(), mach, machine.OpBroadcast,
		mpi.DefaultAlgorithms(mach), 8, 64, measure.Fast())
}

// TestFaultBackendLatencyHonorsContext: an injected sleep longer than
// the deadline returns the context's error promptly instead of
// sleeping it out.
func TestFaultBackendLatencyHonorsContext(t *testing.T) {
	fb := faultFixture(FaultBackend{Seed: 1, LatencyProb: 1, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	mach := machine.Paragon()
	start := time.Now()
	_, err := fb.Estimate(ctx, mach, machine.OpGather,
		mpi.DefaultAlgorithms(mach), 8, 64, measure.Fast())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency injection ignored the deadline: took %s", elapsed)
	}
}

// TestFaultBackendProvenanceCarriesSpec: chaos answers must never share
// cache keys with clean ones — the provenance embeds the fault config.
func TestFaultBackendProvenanceCarriesSpec(t *testing.T) {
	a := faultFixture(FaultBackend{Seed: 1, ErrorProb: 0.5})
	b := faultFixture(FaultBackend{Seed: 2, ErrorProb: 0.5})
	if a.Provenance() == a.Inner.Provenance() {
		t.Fatal("chaos provenance equals clean provenance")
	}
	if a.Provenance() == b.Provenance() {
		t.Fatal("different seeds share a provenance")
	}
	if !strings.Contains(a.Provenance(), "chaos") {
		t.Fatalf("provenance %q does not mark chaos", a.Provenance())
	}
}

// TestParseFaultSpec: the -chaos flag grammar round-trips into the
// struct, and malformed specs are rejected.
func TestParseFaultSpec(t *testing.T) {
	f, err := ParseFaultSpec("error=0.05,panic=0.01,latency=0.2:50ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultBackend{Seed: 7, LatencyProb: 0.2, Latency: 50 * time.Millisecond,
		ErrorProb: 0.05, PanicProb: 0.01}
	if f != want {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	if f, err := ParseFaultSpec(""); err != nil || f != (FaultBackend{}) {
		t.Fatalf("empty spec: %+v, %v", f, err)
	}
	for _, bad := range []string{
		"error=1.5",        // probability out of range
		"error=-0.1",       // negative probability
		"latency=0.5",      // missing duration
		"latency=0.5:-3ms", // negative duration
		"latency=0.5:x",    // unparseable duration
		"frobnicate=1",     // unknown key
		"error",            // no value
		"seed=nine",        // non-integer seed
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
