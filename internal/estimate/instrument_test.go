package estimate

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// counterValue re-registers a series (registration is idempotent) and
// reads its current total.
func counterValue(reg *obs.Registry, name, key, value string) uint64 {
	return reg.Counter(name, "", obs.Label{Key: key, Value: value}).Value()
}

// TestInstrumentCountsMemoAndExpressions wires the estimation metrics
// and checks the exact counts of one calibration: every grid cell is a
// memo miss, the fresh fit is one refit, and a second backend sharing
// the store serves the same triple as one store hit with no new refit.
func TestInstrumentCountsMemoAndExpressions(t *testing.T) {
	reg := obs.NewRegistry()
	store := &countingStore{}
	memo := NewSampleMemo()
	cal := &Calibrated{Config: tinyCfg, Sizes: []int{2, 4}, Lengths: []int{4, 256}, Memo: memo, Store: store}
	Instrument(reg, memo, cal)

	mach := machine.T3D()
	algs := mpi.DefaultAlgorithms(mach)
	est(cal, mach, machine.OpBroadcast, algs, 4, 256, tinyCfg)

	if got := counterValue(reg, "estimate_memo_total", "result", "miss"); got != 4 {
		t.Fatalf("memo misses %d, want one per 2×2 grid cell", got)
	}
	if got := counterValue(reg, "estimate_memo_total", "result", "hit"); got != 0 {
		t.Fatalf("memo hits %d on a cold calibration", got)
	}
	if got := counterValue(reg, "estimate_expressions_total", "source", "refit"); got != 1 {
		t.Fatalf("refits %d, want 1", got)
	}

	// A second estimate of the same triple reuses the in-memory fit:
	// nothing new is measured or calibrated.
	est(cal, mach, machine.OpBroadcast, algs, 2, 4, tinyCfg)
	if got := counterValue(reg, "estimate_memo_total", "result", "miss"); got != 4 {
		t.Fatalf("memo misses %d after a warm estimate, want 4", got)
	}
	if got := counterValue(reg, "estimate_expressions_total", "source", "refit"); got != 1 {
		t.Fatalf("refits %d after a warm estimate, want 1", got)
	}

	// A fresh backend sharing the store loads the fit instead of
	// re-measuring — one store hit, still one refit.
	cal2 := &Calibrated{Config: tinyCfg, Sizes: []int{2, 4}, Lengths: []int{4, 256}, Store: store}
	Instrument(reg, nil, cal2)
	est(cal2, mach, machine.OpBroadcast, algs, 4, 256, tinyCfg)
	if got := counterValue(reg, "estimate_expressions_total", "source", "store"); got != 1 {
		t.Fatalf("store hits %d, want 1", got)
	}
	if got := counterValue(reg, "estimate_expressions_total", "source", "refit"); got != 1 {
		t.Fatalf("refits %d after a store hit, want 1", got)
	}
}

// TestMemoCountersConcurrentExact races identical measurements and
// requires exactly one miss — the in-flight waiters all count as hits.
// The race gate runs this with -race.
func TestMemoCountersConcurrentExact(t *testing.T) {
	reg := obs.NewRegistry()
	memo := NewSampleMemo()
	Instrument(reg, memo)

	mach := machine.T3D()
	algs := mpi.DefaultAlgorithms(mach)
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			memo.Measure(mach, machine.OpBroadcast, algs, 4, 64, tinyCfg)
		}()
	}
	wg.Wait()

	hits := counterValue(reg, "estimate_memo_total", "result", "hit")
	misses := counterValue(reg, "estimate_memo_total", "result", "miss")
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits %d misses %d, want %d and 1", hits, misses, callers-1)
	}
}
