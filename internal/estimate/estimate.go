package estimate

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// Estimate is one predicted or measured collective timing, tagged with
// the backend that produced it. For measured (sim) estimates the Sample
// carries the paper's full statistics; closed-form backends fill every
// statistic with the single predicted value.
type Estimate struct {
	Sample  measure.Sample
	Backend string // Name() of the producing backend
}

// Micros returns the headline time in µs.
func (e Estimate) Micros() float64 { return e.Sample.Micros }

// Backend is a pluggable estimation strategy. Implementations must be
// safe for concurrent use: the sweep engine calls Estimate from many
// worker goroutines.
type Backend interface {
	// Name is the stable backend identity ("sim", "analytic",
	// "calibrated") used in reports and cache keys.
	Name() string
	// Provenance identifies the data the backend's numbers derive from
	// (e.g. an expression-set or calibration-spec hash). It is folded
	// into sweep-cache keys together with Name, so results from
	// different backends or expression sets never cross-contaminate.
	// It must change whenever the backend would produce different
	// numbers for the same (machine, op, algs, p, m, cfg).
	Provenance() string
	// Estimate returns the time of one collective: op over algs on p
	// nodes of mach with m bytes per pair, under methodology cfg
	// (closed-form backends ignore cfg — their answer is exact). ctx
	// bounds backends that simulate: the Sim backend aborts its
	// event-loop drive when ctx cancels and returns ctx's error, so a
	// serving deadline never pins a worker behind an unbounded
	// simulation. Closed-form backends ignore ctx and never error;
	// fault-injection wrappers (FaultBackend) may return ErrInjected.
	Estimate(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (Estimate, error)
}

// Fingerprint hashes a machine's full calibration-constant set (network
// parameters, per-operation tunings, noise model — everything in
// machine.Params). It is part of every sweep-cache and expression key,
// so editing a preset silently invalidates all derived results.
func Fingerprint(m *machine.Machine) string {
	// encoding/json sorts map keys, so the Tunings map serializes
	// deterministically.
	blob, err := json.Marshal(m.Params())
	if err != nil {
		panic(fmt.Sprintf("estimate: fingerprint %s: %v", m.Name(), err))
	}
	return hashJSON(blob)
}

// hashJSON is the shared content-key digest: sha256 over a
// deterministic JSON blob, hex-encoded.
func hashJSON(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// fingerprints memoizes Fingerprint by machine name. The preset
// constructors build a fresh *Machine per call (so pointer identity is
// useless as a memo key), but a preset's parameter set is fixed for
// the life of the process, making the name a sound key for machines
// that come out of ResolveMachine.
var fingerprints sync.Map // machine name → fingerprint

// CachedFingerprint is Fingerprint memoized by preset name — for
// per-request hot paths (the serve answer cache keys every scenario by
// it) where re-hashing the machine's parameter set each time would
// cost more than the lookup it guards. Callers must pass machines
// resolved from the presets (ResolveMachine); a hand-built machine
// reusing a preset name would alias its fingerprint.
func CachedFingerprint(m *machine.Machine) string {
	if fp, ok := fingerprints.Load(m.Name()); ok {
		return fp.(string)
	}
	fp := Fingerprint(m)
	fingerprints.Store(m.Name(), fp)
	return fp
}

// BuildDataset measures op across machine sizes and message lengths
// under an explicit algorithm table and returns the dataset for curve
// fitting — the measurement loop behind the Calibrated backend's
// calibration routine (formerly measure.Sweep). SampleMemo.Dataset is
// the memoized equivalent.
func BuildDataset(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, sizes, lengths []int, cfg measure.Config) *fit.Dataset {
	return (*SampleMemo)(nil).Dataset(mach, op, algs, sizes, lengths, cfg)
}

// Compare estimates one collective configuration on several machines
// (named by preset) under their vendor-default algorithm tables — the
// comparison loop the examples, the service, and the paper's §9 ranking
// discussion share. Barrier configurations are estimated with m = 0
// regardless of m. A machine or operation name that does not resolve
// returns a typed *UnknownNameError listing the valid names, instead of
// panicking somewhere inside the backend.
func Compare(b Backend, machines []string, op machine.Op, p, m int, cfg measure.Config) ([]Estimate, error) {
	if _, err := ResolveOp(string(op)); err != nil {
		return nil, err
	}
	if op == machine.OpBarrier {
		m = 0
	}
	out := make([]Estimate, 0, len(machines))
	for _, name := range machines {
		mach, err := ResolveMachine(name)
		if err != nil {
			return nil, err
		}
		est, err := b.Estimate(context.Background(), mach, op, mpi.DefaultAlgorithms(mach), p, m, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// Fastest returns the estimate with the lowest headline time (the first
// one on ties). It panics on an empty slice.
func Fastest(ests []Estimate) Estimate {
	best := ests[0]
	for _, e := range ests[1:] {
		if e.Sample.Micros < best.Sample.Micros {
			best = e
		}
	}
	return best
}
