package estimate

import (
	"context"
	"sort"
	"sync"
	"testing"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// tinyCfg keeps backend tests fast while preserving the methodology.
var tinyCfg = measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 3}

// est estimates under a background context, panicking on error: no
// backend under test errors without a cancellable ctx, and panicking
// (rather than t.Fatal) keeps the helper legal inside goroutines.
func est(b Backend, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) Estimate {
	e, err := b.Estimate(context.Background(), mach, op, algs, p, m, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

func TestSimMatchesMeasure(t *testing.T) {
	mach := machine.T3D()
	algs := mpi.DefaultAlgorithms(mach)
	want := measure.MeasureOpWith(mach, machine.OpBroadcast, 8, 1024, tinyCfg, algs)
	got := est(Sim{}, mach, machine.OpBroadcast, algs, 8, 1024, tinyCfg)
	if got.Sample != want {
		t.Fatalf("sim backend = %+v, measure says %+v", got.Sample, want)
	}
	if got.Backend != BackendSim {
		t.Fatalf("backend label %q", got.Backend)
	}
}

func TestAnalyticMatchesModel(t *testing.T) {
	a := PaperAnalytic()
	mach := machine.SP2()
	got := est(a, mach, machine.OpAlltoall, mpi.DefaultAlgorithms(mach), 64, 512, tinyCfg)
	want := model.FromPaper().Time("SP2", machine.OpAlltoall, 512, 64)
	if got.Sample.Micros != want {
		t.Fatalf("analytic = %v, model = %v", got.Sample.Micros, want)
	}
	// Closed-form estimates are point predictions: every statistic
	// carries the same value.
	s := got.Sample
	if s.MinMicros != want || s.MaxMicros != want || s.RankMin != want || s.RankMean != want {
		t.Fatalf("closed-form sample has spread: %+v", s)
	}
	if !a.Covers("SP2", machine.OpAlltoall) || a.Covers("SP2", machine.OpAllgather) {
		t.Fatal("Covers disagrees with Table 3")
	}
}

func TestBuildDatasetBuildsFullGrid(t *testing.T) {
	mach := machine.T3D()
	d := BuildDataset(mach, machine.OpBroadcast, mpi.DefaultAlgorithms(mach),
		[]int{2, 4, 8}, []int{4, 256}, measure.Fast())
	if len(d.Points) != 6 {
		t.Fatalf("dataset has %d points, want 6", len(d.Points))
	}
	if s := d.Sizes(); len(s) != 3 || s[2] != 8 {
		t.Fatalf("sizes %v", s)
	}
}

// TestCalibratedRoundTrip is the fitted-expression round trip: the
// expressions the Calibrated backend fits must reproduce the sim
// dataset they were fitted from. At the calibration sizes the startup
// fit is exact for the shortest message (TwoStage pins T0 there), and
// across the lengths the affine-in-m model holds to a few percent.
func TestCalibratedRoundTrip(t *testing.T) {
	mach := machine.SP2()
	sizes := []int{2, 8}
	lengths := []int{4, 1024, 16384, 65536}
	cal := &Calibrated{Config: tinyCfg, Sizes: sizes, Lengths: lengths}
	algs := mpi.DefaultAlgorithms(mach)

	for _, op := range []machine.Op{machine.OpBroadcast, machine.OpAlltoall, machine.OpGather} {
		d := BuildDataset(mach, op, algs, sizes, lengths, tinyCfg)
		var errs []float64
		for _, pt := range d.Points {
			e := est(cal, mach, op, algs, pt.P, pt.M, tinyCfg)
			re := (e.Sample.Micros - pt.Micros) / pt.Micros
			if re < 0 {
				re = -re
			}
			errs = append(errs, re)
			if pt.M == lengths[0] && re > 0.02 {
				// Two sizes, two-parameter form: the startup fit passes
				// through the measured shortest-message points up to the
				// deliberate s(p)·mMin offset (Expression.Eval applies
				// the per-byte term to m, not m − mMin, like Table 3).
				t.Errorf("%s p=%d m=%d: shortest-message error %.2f%% > 2%%",
					op, pt.P, pt.M, 100*re)
			}
		}
		if med := stats.Median(errs); med > 0.05 {
			t.Errorf("%s: median round-trip error %.1f%% > 5%%", op, 100*med)
		}
	}
}

// TestCalibratedBarrierStartupOnly checks the barrier calibrates at
// length 0 into a startup-only expression.
func TestCalibratedBarrierStartupOnly(t *testing.T) {
	mach := machine.T3D()
	cal := &Calibrated{Config: tinyCfg, Sizes: []int{4, 16}}
	e := cal.Expression(mach, machine.OpBarrier, mpi.DefaultAlgorithms(mach).Barrier)
	if !e.StartupOnly() {
		t.Fatalf("barrier expression has a per-byte term: %s", e)
	}
	got := est(cal, mach, machine.OpBarrier, mpi.DefaultAlgorithms(mach), 16, 0, tinyCfg)
	want := measure.MeasureOp(mach, machine.OpBarrier, 16, 0, tinyCfg).Micros
	re := (got.Sample.Micros - want) / want
	if re < 0 {
		re = -re
	}
	if re > 0.05 {
		t.Fatalf("hardware barrier estimate %.2f µs vs measured %.2f µs", got.Sample.Micros, want)
	}
}

// TestCalibratedDistinguishesAlgorithms: unlike Analytic, the
// calibrated backend fits each registry variant separately.
func TestCalibratedDistinguishesAlgorithms(t *testing.T) {
	mach := machine.SP2()
	cal := &Calibrated{Config: tinyCfg, Sizes: []int{4, 16}, Lengths: []int{4, 4096}}
	base := mpi.DefaultAlgorithms(mach)
	pairwise := est(cal, mach, machine.OpAlltoall, base.With(machine.OpAlltoall, "pairwise"), 16, 4096, tinyCfg)
	linear := est(cal, mach, machine.OpAlltoall, base.With(machine.OpAlltoall, "linear"), 16, 4096, tinyCfg)
	if pairwise.Sample.Micros == linear.Sample.Micros {
		t.Fatal("calibrated backend conflated two alltoall variants")
	}
}

// countingStore records expression-store traffic.
type countingStore struct {
	mu   sync.Mutex
	data map[string]fit.Expression
	puts int
	hits int
}

func (s *countingStore) GetExpression(key string) (fit.Expression, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if ok {
		s.hits++
	}
	return e, ok
}

func (s *countingStore) PutExpression(key, id string, e fit.Expression) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.data == nil {
		s.data = map[string]fit.Expression{}
	}
	s.data[key] = e
	return nil
}

// TestCalibratedPersistsThroughStore: a second backend instance sharing
// the store serves the persisted fit instead of re-simulating, and a
// changed calibration spec keys a different entry.
func TestCalibratedPersistsThroughStore(t *testing.T) {
	store := &countingStore{}
	mach := machine.T3D()
	algs := mpi.DefaultAlgorithms(mach)
	mk := func() *Calibrated {
		return &Calibrated{Config: tinyCfg, Sizes: []int{2, 4}, Lengths: []int{4, 1024}, Store: store}
	}

	a := est(mk(), mach, machine.OpGather, algs, 4, 1024, tinyCfg)
	if store.puts != 1 {
		t.Fatalf("first calibration stored %d expressions, want 1", store.puts)
	}

	b := est(mk(), mach, machine.OpGather, algs, 4, 1024, tinyCfg)
	if store.hits != 1 {
		t.Fatalf("second instance did not load the persisted fit (hits=%d)", store.hits)
	}
	if store.puts != 1 {
		t.Fatal("second instance refit despite the store hit")
	}
	if a.Sample.Micros != b.Sample.Micros {
		t.Fatalf("persisted fit served different numbers: %v vs %v", a.Sample.Micros, b.Sample.Micros)
	}

	// A different calibration spec must not hit the stored entry.
	third := &Calibrated{Config: tinyCfg, Sizes: []int{2, 4}, Lengths: []int{4, 4096}, Store: store}
	est(third, mach, machine.OpGather, algs, 4, 1024, tinyCfg)
	if store.puts != 2 {
		t.Fatal("changed calibration spec reused the old stored expression")
	}
}

// TestCalibratedConcurrentCallersShareOneCalibration hammers one triple
// from many goroutines: exactly one calibration sweep must run, and
// every caller must see the same expression.
func TestCalibratedConcurrentCallersShareOneCalibration(t *testing.T) {
	store := &countingStore{}
	cal := &Calibrated{Config: tinyCfg, Sizes: []int{2, 4}, Lengths: []int{4, 256}, Store: store}
	mach := machine.Paragon()
	algs := mpi.DefaultAlgorithms(mach)
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = est(cal, mach, machine.OpScan, algs, 4, 256, tinyCfg).Sample.Micros
		}(i)
	}
	wg.Wait()
	for _, v := range results[1:] {
		if v != results[0] {
			t.Fatalf("concurrent callers saw different estimates: %v", results)
		}
	}
	if store.puts != 1 {
		t.Fatalf("%d calibrations ran for one triple", store.puts)
	}
}

func TestProvenanceDistinguishesBackends(t *testing.T) {
	specs := []Backend{
		Sim{},
		PaperAnalytic(),
		NewAnalytic(model.FromPaper(), "refit"),
		&Calibrated{},
		&Calibrated{Sizes: []int{2, 8}},
		&Calibrated{Config: measure.Paper()},
	}
	seen := map[string]bool{}
	for _, b := range specs {
		id := b.Name() + "\x00" + b.Provenance()
		if seen[id] {
			t.Fatalf("duplicate backend identity %q", id)
		}
		seen[id] = true
	}
	c := &Calibrated{Sizes: []int{2, 8}}
	if c.Provenance() != (&Calibrated{Sizes: []int{2, 8}}).Provenance() {
		t.Fatal("provenance is not deterministic")
	}
}

func TestCompareAndFastest(t *testing.T) {
	ests, err := Compare(PaperAnalytic(), machine.Names(), machine.OpAlltoall, 64, 65536, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("got %d estimates", len(ests))
	}
	names := make([]string, len(ests))
	for i, e := range ests {
		names[i] = e.Sample.Machine
	}
	sort.Strings(names)
	if names[0] != "Paragon" || names[2] != "T3D" {
		t.Fatalf("machines %v", names)
	}
	if f := Fastest(ests); f.Sample.Machine != "T3D" {
		t.Fatalf("fastest 64KB alltoall should be the T3D, got %s", f.Sample.Machine)
	}
	// Barrier comparisons force m to 0.
	barriers, err := Compare(PaperAnalytic(), machine.Names(), machine.OpBarrier, 32, 4096, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range barriers {
		if e.Sample.M != 0 {
			t.Fatalf("barrier compared at m=%d", e.Sample.M)
		}
	}
}
