package estimate

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/machine"
)

// errorTableVersion is baked into ErrorTableKey; bump it when the table
// semantics change in a way the key fields do not capture.
const errorTableVersion = 1

// ErrorTable records the observed accuracy of a closed-form backend
// against the simulator, per (machine, op, message length) cell — the
// data behind the validation report's error matrix, in a loadable form.
// Attached to a registry entry it turns bare predictions into
// error-bounded ones: (value, expected relative error).
type ErrorTable struct {
	// Backend and Provenance identify the candidate backend the errors
	// were measured for; a table never describes a backend with a
	// different provenance (a recalibration invalidates it).
	Backend    string `json:"backend"`
	Provenance string `json:"provenance"`
	// Cells are sorted by (machine, op, m) so the table serializes
	// deterministically.
	Cells []ErrorCell `json:"cells"`
}

// ErrorCell is one (machine, op, m) slice of a validation: the relative
// errors of every validated scenario in the cell (machine sizes and
// algorithm variants pooled), summarized.
type ErrorCell struct {
	Machine string     `json:"machine"`
	Op      machine.Op `json:"op"`
	M       int        `json:"m"`
	// Median and Max are the cell's relative-error summary
	// (|estimate − sim| / sim over the headline time).
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
	// Points is how many validated scenarios the cell pools.
	Points int `json:"points"`
}

// Bound returns the cell covering (mach, op, m): the exact cell when the
// validation grid contained that message length, otherwise the cell with
// the nearest length on a log scale (closed-form error varies smoothly
// in m, so the neighbor is the honest stand-in). ok is false when the
// table has no (machine, op) rows at all. A nil table bounds nothing.
func (t *ErrorTable) Bound(mach string, op machine.Op, m int) (ErrorCell, bool) {
	return t.nearest(mach, op, m, 0, math.MaxInt)
}

// BoundIn is Bound constrained to validated lengths within [lo, hi] —
// the lookup the serving layer uses for piecewise answers, so the
// expected error annotated on an answer is measured on the same
// protocol segment that produced the number, never borrowed across a
// regime boundary. When no cell lies inside the range (a validation
// sparser than the calibration grid) it falls back to the
// unconstrained nearest-length lookup.
func (t *ErrorTable) BoundIn(mach string, op machine.Op, m, lo, hi int) (ErrorCell, bool) {
	if c, ok := t.nearest(mach, op, m, lo, hi); ok {
		return c, true
	}
	return t.Bound(mach, op, m)
}

// nearest is the one nearest-cell scan behind Bound and BoundIn: the
// exact cell when a validated length in [lo, hi] matches m, otherwise
// the in-range cell with the nearest length on a log scale.
func (t *ErrorTable) nearest(mach string, op machine.Op, m, lo, hi int) (ErrorCell, bool) {
	if t == nil {
		return ErrorCell{}, false
	}
	var best ErrorCell
	bestDist := math.Inf(1)
	found := false
	for _, c := range t.Cells {
		if c.Machine != mach || c.Op != op || c.M < lo || c.M > hi {
			continue
		}
		if c.M == m {
			return c, true
		}
		if d := logDist(c.M, m); d < bestDist {
			best, bestDist, found = c, d, true
		}
	}
	return best, found
}

// logDist measures how far apart two message lengths are on a log
// scale, shifted by one so zero-length (barrier) cells compare cleanly.
func logDist(a, b int) float64 {
	return math.Abs(math.Log(float64(a)+1) - math.Log(float64(b)+1))
}

// ErrorTableKey is the content key an error table is persisted under:
// the candidate backend's identity and provenance, so a table written by
// one validation run is found by any process constructing the same
// backend — and silently missed by one whose calibration spec drifted.
func ErrorTableKey(b Backend) string {
	blob, err := json.Marshal(struct {
		V          int    `json:"v"`
		Backend    string `json:"backend"`
		Provenance string `json:"provenance"`
	}{errorTableVersion, b.Name(), b.Provenance()})
	if err != nil {
		panic(fmt.Sprintf("estimate: error table key %s: %v", b.Name(), err))
	}
	return hashJSON(blob)
}

// Describes reports whether the table was measured for b (same backend
// name and provenance) — the match AttachBounds enforces before wiring a
// table to a registry entry.
func (t *ErrorTable) Describes(b Backend) bool {
	return t != nil && t.Backend == b.Name() && t.Provenance == b.Provenance()
}
