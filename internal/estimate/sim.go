package estimate

import (
	"context"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// BackendSim names the simulator backend.
const BackendSim = "sim"

// Sim is the ground-truth backend: it runs the paper's full benchmark
// procedure (warm-up, k timed iterations, max-reduce over ranks,
// repeated executions) on the discrete-event simulator. Slow and exact;
// every other backend is validated against it.
type Sim struct {
	// Memo, when non-nil, serves measurements that are identical by
	// construction (same machine constants, full algorithm table, grid
	// point, and methodology) from memory instead of re-simulating.
	// Results are unchanged; sharing one memo with a Calibrated backend
	// also makes sim-vs-calibrated validation reuse the calibration's
	// samples.
	Memo *SampleMemo
}

// Name returns "sim".
func (Sim) Name() string { return BackendSim }

// Provenance is empty: sim results are fully determined by the scenario
// and the machine calibration, both of which cache keys already cover
// (the memo only dedups identical runs).
func (Sim) Provenance() string { return "" }

// Estimate measures the collective with measure.MeasureOpCtx, through
// the memo when one is attached. A ctx cancellation aborts the
// simulation at an event-loop drive boundary and returns ctx's error.
func (s Sim) Estimate(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (Estimate, error) {
	sample, err := s.Memo.MeasureCtx(ctx, mach, op, algs, p, m, cfg)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Sample: sample, Backend: BackendSim}, nil
}
