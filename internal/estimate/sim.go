package estimate

import (
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// BackendSim names the simulator backend.
const BackendSim = "sim"

// Sim is the ground-truth backend: it runs the paper's full benchmark
// procedure (warm-up, k timed iterations, max-reduce over ranks,
// repeated executions) on the discrete-event simulator. Slow and exact;
// every other backend is validated against it.
type Sim struct{}

// Name returns "sim".
func (Sim) Name() string { return BackendSim }

// Provenance is empty: sim results are fully determined by the scenario
// and the machine calibration, both of which cache keys already cover.
func (Sim) Provenance() string { return "" }

// Estimate measures the collective with measure.MeasureOpWith.
func (Sim) Estimate(mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) Estimate {
	return Estimate{
		Sample:  measure.MeasureOpWith(mach, op, p, m, cfg, algs),
		Backend: BackendSim,
	}
}
