package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"

	"repro/internal/coll"
)

// Result is one executed (or cache-served) scenario.
type Result struct {
	Scenario Scenario       `json:"scenario"`
	Sample   measure.Sample `json:"sample"`
	Cached   bool           `json:"cached"`
	// Backend names the estimation backend that produced (or, for
	// cached results, originally produced) the sample.
	Backend string `json:"backend,omitempty"`
}

// Progress describes one completed scenario, reported in completion
// order (which varies with scheduling; the result slice does not).
type Progress struct {
	Done, Total int
	Scenario    Scenario
	Cached      bool
	Micros      float64
}

// Runner shards scenarios across a worker pool. Every scenario is an
// independent estimate — under the sim backend its own cluster, kernel,
// and RNG seeded from the scenario — so results are identical
// regardless of worker count; only wall-clock time changes.
type Runner struct {
	// Workers is the pool size; ≤ 0 means GOMAXPROCS.
	Workers int
	// BatchSize groups scenarios per work item to amortize channel
	// traffic on large grids; ≤ 0 picks a size that keeps every worker
	// busy with a few batches.
	BatchSize int
	// Cache, when non-nil, serves repeated scenarios without
	// re-estimating and persists fresh results. Keys carry the
	// backend's identity and provenance, so switching backends (or
	// recalibrating one) never serves another backend's numbers.
	Cache *Cache
	// Backend is the estimation strategy; nil means the exact
	// simulator backend (estimate.Sim).
	Backend estimate.Backend
	// OnProgress, when non-nil, is called after each scenario (from a
	// single goroutine at a time).
	OnProgress func(Progress)
	// Metrics, when non-nil, records cache outcomes and per-phase
	// timings (see NewMetrics). Nil costs nothing.
	Metrics *Metrics
}

// Run executes all scenarios and returns results in scenario order.
// Scenarios must come from Spec.Expand (or satisfy the same
// invariants); an invalid algorithm or machine panics, matching the
// measure package's contract.
//
// Run proceeds in phases: cache hits are served first (in parallel);
// then, when the backend is a *estimate.Calibrated, every triple the
// remaining scenarios touch is precalibrated through a worker pool of
// the same size, so cold calibration parallelizes across triples
// instead of serializing behind the first scenario that needs each
// one; finally the remaining scenarios are estimated in parallel.
func (r *Runner) Run(scenarios []Scenario) []Result {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) && len(scenarios) > 0 {
		workers = len(scenarios)
	}
	backend := r.Backend
	if backend == nil {
		backend = estimate.Sim{}
	}
	backendID := BackendID(backend)

	// Per-machine state shared by all workers, resolved once.
	mctx := map[string]*machineCtx{}
	for _, sc := range scenarios {
		if _, ok := mctx[sc.Machine]; ok {
			continue
		}
		m := machine.ByName(sc.Machine)
		if m == nil {
			panic(fmt.Sprintf("sweep: unknown machine %q", sc.Machine))
		}
		c := &machineCtx{m: m, defaults: mpi.DefaultAlgorithms(m)}
		if r.Cache != nil {
			c.fingerprint = Fingerprint(m)
		}
		mctx[sc.Machine] = c
	}

	results := make([]Result, len(scenarios))
	var done atomic.Int64
	var progressMu sync.Mutex
	report := func(i int) {
		n := int(done.Add(1))
		if r.OnProgress != nil {
			progressMu.Lock()
			r.OnProgress(Progress{
				Done: n, Total: len(scenarios),
				Scenario: scenarios[i],
				Cached:   results[i].Cached,
				Micros:   results[i].Sample.Micros,
			})
			progressMu.Unlock()
		}
	}

	// phaseClock reads the monotonic clock only when metrics are
	// attached, keeping the Metrics field's "nil costs nothing" promise.
	phaseClock := func() time.Time {
		if r.Metrics == nil {
			return time.Time{}
		}
		return time.Now()
	}
	endPhase := func(phase int, start time.Time) {
		if r.Metrics != nil {
			r.Metrics.observePhase(phase, time.Since(start))
		}
	}

	// Phase 1: serve cache hits, leaving the misses pending.
	phaseStart := phaseClock()
	pending := make([]int, 0, len(scenarios))
	keys := make([]string, len(scenarios))
	if r.Cache != nil {
		served := make([]bool, len(scenarios))
		r.forEach(workers, len(scenarios), func(i int) {
			sc := scenarios[i]
			keys[i] = sc.Key(mctx[sc.Machine].fingerprint, backendID)
			if s, ok := r.Cache.Get(keys[i]); ok {
				results[i] = Result{Scenario: sc, Sample: s, Cached: true, Backend: backend.Name()}
				served[i] = true
				report(i)
			}
		})
		for i, ok := range served {
			if !ok {
				pending = append(pending, i)
			}
		}
	} else {
		for i := range scenarios {
			pending = append(pending, i)
		}
	}
	endPhase(phaseCache, phaseStart)
	if r.Cache != nil {
		r.Metrics.cacheLookups(len(scenarios)-len(pending), len(pending))
	}

	// Phase 2: bulk-calibrate the triples the pending scenarios need.
	phaseStart = phaseClock()
	if cal, ok := backend.(*estimate.Calibrated); ok && len(pending) > 0 {
		triples := make([]estimate.Triple, 0, len(pending))
		for _, i := range pending {
			sc := scenarios[i]
			triples = append(triples, estimate.Triple{
				Machine: mctx[sc.Machine].m, Op: sc.Op, Alg: sc.Algorithm,
			})
		}
		cal.Precalibrate(triples, workers)
	}
	endPhase(phaseCalibrate, phaseStart)

	// Phase 3: estimate what the cache could not serve.
	phaseStart = phaseClock()
	r.forEach(workers, len(pending), func(j int) {
		i := pending[j]
		sc := scenarios[i]
		results[i] = r.runOne(sc, keys[i], mctx[sc.Machine], backend)
		report(i)
	})
	endPhase(phaseEstimate, phaseStart)
	return results
}

// forEach runs fn(0..n-1) across a bounded worker pool in contiguous
// batches (~4 per worker), so the tail stays balanced without a channel
// send per item.
func (r *Runner) forEach(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	batch := r.BatchSize
	if batch <= 0 {
		batch = n/(4*workers) + 1
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan [2]int, workers) // bounded queue of [lo, hi) index ranges
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for span := range jobs {
				for i := span[0]; i < span[1]; i++ {
					fn(i)
				}
			}
		}()
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		jobs <- [2]int{lo, hi}
	}
	close(jobs)
	wg.Wait()
}

type machineCtx struct {
	m           *machine.Machine
	defaults    mpi.Algorithms
	fingerprint string // "" when no cache is attached
}

// runOne estimates one scenario (its cache lookup already missed; key
// is "" when no cache is attached). Only the scenario's own operation
// deviates from the vendor algorithm table, so the in-band
// synchronization barrier of the measurement procedure is the same
// across variants of another operation.
func (r *Runner) runOne(sc Scenario, key string, mc *machineCtx, backend estimate.Backend) Result {
	algs := mc.defaults
	if sc.Algorithm != DefaultAlgorithm && sc.Algorithm != "" {
		algs = algs.With(sc.Op, sc.Algorithm)
	}
	// The hardware barrier is selected by name like any registry
	// algorithm but only the mpi layer can bind it.
	if sc.Op == machine.OpBarrier && sc.Algorithm == coll.AlgHardware && !mc.m.HardwareBarrier() {
		panic(fmt.Sprintf("sweep: %s has no hardware barrier", sc.Machine))
	}
	est, err := backend.Estimate(context.Background(), mc.m, sc.Op, algs, sc.P, sc.M, sc.Config)
	if err != nil {
		// Background never cancels; a sweep backend that errors anyway
		// (fault injection) is a harness misuse, not a sweep condition.
		panic(fmt.Sprintf("sweep: %s: %v", sc.ID(), err))
	}
	if r.Cache != nil {
		_ = r.Cache.Put(key, sc.ID(), est.Sample) // best-effort; a full disk must not fail the sweep
	}
	return Result{Scenario: sc, Sample: est.Sample, Backend: est.Backend}
}
