package sweep

import (
	"testing"

	"repro/internal/obs"
)

// TestRunnerMetrics runs the same grid cold then warm through a cached
// runner and requires exact cache counts and one phase observation per
// run. The race gate runs this with -race.
func TestRunnerMetrics(t *testing.T) {
	scns := testScenarios(t)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	metrics := NewMetrics(reg)

	(&Runner{Workers: 4, Cache: cache, Metrics: metrics}).Run(scns)
	(&Runner{Workers: 4, Cache: cache, Metrics: metrics}).Run(scns)

	n := uint64(len(scns))
	hits := reg.Counter("sweep_cache_total", "", obs.Label{Key: "result", Value: "hit"}).Value()
	misses := reg.Counter("sweep_cache_total", "", obs.Label{Key: "result", Value: "miss"}).Value()
	if misses != n || hits != n {
		t.Fatalf("cache hits %d misses %d, want %d and %d (cold then warm)", hits, misses, n, n)
	}
	for _, phase := range phaseNames {
		h := reg.Histogram("sweep_phase_duration_ns", "", obs.Label{Key: "phase", Value: phase})
		if h.Count() != 2 {
			t.Fatalf("phase %q observed %d times, want once per run", phase, h.Count())
		}
	}

	// An un-cached, un-instrumented runner still works (nil Metrics) and
	// a cached-but-uninstrumented one records nothing new.
	(&Runner{Workers: 4, Cache: cache}).Run(scns)
	if got := reg.Counter("sweep_cache_total", "", obs.Label{Key: "result", Value: "hit"}).Value(); got != n {
		t.Fatalf("nil-Metrics run changed the counters: hits %d", got)
	}
}
