package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/estimate"
	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
)

// cacheVersion is baked into every content key; bump it when the
// measurement semantics change in a way the key fields do not capture.
// v2: keys carry the estimation backend's identity and provenance.
const cacheVersion = 2

// Fingerprint hashes a machine's full calibration-constant set; see
// estimate.Fingerprint, which owns the digest so the backends and the
// sweep cache key the same identity.
func Fingerprint(m *machine.Machine) string {
	return estimate.Fingerprint(m)
}

// BackendID condenses a backend's identity and data provenance into the
// string the cache keys carry. Distinct backends — or one backend over
// distinct expression sets or calibration specs — never share an ID, so
// their cached results never cross-contaminate.
func BackendID(b estimate.Backend) string {
	return b.Name() + "\x00" + b.Provenance()
}

// Key returns the scenario's content key given its machine's
// calibration fingerprint and the estimation backend's ID: identical
// inputs — scenario coordinates, methodology (including seed),
// calibration constants, backend identity and provenance — always
// produce the same key, and any drift produces a different one.
func (s Scenario) Key(fingerprint, backendID string) string {
	blob, err := json.Marshal(struct {
		V           int      `json:"v"`
		Scenario    Scenario `json:"scenario"`
		Calibration string   `json:"calibration"`
		Backend     string   `json:"backend"`
	}{cacheVersion, s, fingerprint, backendID})
	if err != nil {
		panic(fmt.Sprintf("sweep: key %s: %v", s.ID(), err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// entry is the JSON persistence envelope of one cached result. The
// scenario ID is stored for humans inspecting the cache directory; the
// key alone decides a hit.
type entry struct {
	Key    string         `json:"key"`
	ID     string         `json:"id"`
	Sample measure.Sample `json:"sample"`
}

// exprEntry is the envelope of one persisted fitted expression (the
// Calibrated backend's calibration artifact).
type exprEntry struct {
	Key        string         `json:"key"`
	ID         string         `json:"id"`
	Expression fit.Expression `json:"expression"`
}

// errEntry is the envelope of one persisted validation error table (the
// `sweep -validate` artifact the serving layer loads bounds from).
type errEntry struct {
	Key   string              `json:"key"`
	ID    string              `json:"id"`
	Table estimate.ErrorTable `json:"table"`
}

// Cache is a content-keyed result store, one JSON file per scenario
// under a directory. It also persists the Calibrated backend's fitted
// expressions (estimate.ExpressionStore), so one directory carries both
// a sweep's samples and the calibration they may derive from. The zero
// of *Cache (nil) is a valid no-op cache.
type Cache struct {
	dir string
}

// Cache persists calibrations for the Calibrated backend.
var _ estimate.ExpressionStore = (*Cache)(nil)

// OpenCache returns a cache rooted at dir, creating it if needed. An
// empty dir returns nil — caching disabled.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) exprPath(key string) string {
	return filepath.Join(c.dir, key+".expr.json")
}

func (c *Cache) errPath(key string) string {
	return filepath.Join(c.dir, key+".errors.json")
}

// Get returns the cached sample for key, if present and intact.
// Corrupt or mismatched entries read as misses.
func (c *Cache) Get(key string) (measure.Sample, bool) {
	if c == nil {
		return measure.Sample{}, false
	}
	var e entry
	if !readJSON(c.path(key), &e) || e.Key != key {
		return measure.Sample{}, false
	}
	return e.Sample, true
}

// Put stores a sample under key, atomically (write-temp + rename) so
// concurrent sweeps sharing a directory never observe partial entries.
func (c *Cache) Put(key, id string, s measure.Sample) error {
	if c == nil {
		return nil
	}
	return c.writeAtomic(c.path(key), entry{Key: key, ID: id, Sample: s})
}

// GetExpression returns the persisted fitted expression for key, if
// present and intact (estimate.ExpressionStore).
func (c *Cache) GetExpression(key string) (fit.Expression, bool) {
	if c == nil {
		return fit.Expression{}, false
	}
	var e exprEntry
	if !readJSON(c.exprPath(key), &e) || e.Key != key {
		return fit.Expression{}, false
	}
	return e.Expression, true
}

// PutExpression stores a fitted expression under key, atomically
// (estimate.ExpressionStore).
func (c *Cache) PutExpression(key, id string, e fit.Expression) error {
	if c == nil {
		return nil
	}
	return c.writeAtomic(c.exprPath(key), exprEntry{Key: key, ID: id, Expression: e})
}

// GetErrorTable returns the persisted validation error table for key
// (estimate.ErrorTableKey of the candidate backend), if present and
// intact.
func (c *Cache) GetErrorTable(key string) (estimate.ErrorTable, bool) {
	if c == nil {
		return estimate.ErrorTable{}, false
	}
	var e errEntry
	if !readJSON(c.errPath(key), &e) || e.Key != key {
		return estimate.ErrorTable{}, false
	}
	return e.Table, true
}

// PutErrorTable stores a validation error table under key, atomically,
// as a stable *.errors.json artifact next to the expressions it
// describes.
func (c *Cache) PutErrorTable(key, id string, t estimate.ErrorTable) error {
	if c == nil {
		return nil
	}
	return c.writeAtomic(c.errPath(key), errEntry{Key: key, ID: id, Table: t})
}

// writeAtomic persists one JSON envelope via write-temp + rename.
func (c *Cache) writeAtomic(path string, envelope any) error {
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeJSON(tmp, envelope); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return nil
}

// writeJSON / readJSON are the io-level persistence pair, following the
// internal/fit persist idiom (WriteCSV/ReadCSV) with JSON framing.
func writeJSON(w io.Writer, envelope any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envelope)
}

func readJSON(path string, into any) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(into) == nil
}
