package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/machine"
	"repro/internal/measure"
)

// cacheVersion is baked into every content key; bump it when the
// measurement semantics change in a way the key fields do not capture.
const cacheVersion = 1

// Fingerprint hashes a machine's full calibration-constant set (network
// parameters, per-operation tunings, noise model — everything in
// machine.Params). It is part of every cache key, so editing a preset
// silently invalidates all of that machine's cached results.
func Fingerprint(m *machine.Machine) string {
	// encoding/json sorts map keys, so the Tunings map serializes
	// deterministically.
	blob, err := json.Marshal(m.Params())
	if err != nil {
		panic(fmt.Sprintf("sweep: fingerprint %s: %v", m.Name(), err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Key returns the scenario's content key given its machine's
// calibration fingerprint: identical inputs — scenario coordinates,
// methodology (including seed), calibration constants — always produce
// the same key, and any drift produces a different one.
func (s Scenario) Key(fingerprint string) string {
	blob, err := json.Marshal(struct {
		V           int      `json:"v"`
		Scenario    Scenario `json:"scenario"`
		Calibration string   `json:"calibration"`
	}{cacheVersion, s, fingerprint})
	if err != nil {
		panic(fmt.Sprintf("sweep: key %s: %v", s.ID(), err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// entry is the JSON persistence envelope of one cached result. The
// scenario ID is stored for humans inspecting the cache directory; the
// key alone decides a hit.
type entry struct {
	Key    string         `json:"key"`
	ID     string         `json:"id"`
	Sample measure.Sample `json:"sample"`
}

// Cache is a content-keyed result store, one JSON file per scenario
// under a directory. The zero of *Cache (nil) is a valid no-op cache.
type Cache struct {
	dir string
}

// OpenCache returns a cache rooted at dir, creating it if needed. An
// empty dir returns nil — caching disabled.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached sample for key, if present and intact.
// Corrupt or mismatched entries read as misses.
func (c *Cache) Get(key string) (measure.Sample, bool) {
	if c == nil {
		return measure.Sample{}, false
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return measure.Sample{}, false
	}
	defer f.Close()
	e, err := readEntry(f)
	if err != nil || e.Key != key {
		return measure.Sample{}, false
	}
	return e.Sample, true
}

// Put stores a sample under key, atomically (write-temp + rename) so
// concurrent sweeps sharing a directory never observe partial entries.
func (c *Cache) Put(key, id string, s measure.Sample) error {
	if c == nil {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeEntry(tmp, entry{Key: key, ID: id, Sample: s}); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return nil
}

// writeEntry / readEntry are the io-level persistence pair, following
// the internal/fit persist idiom (WriteCSV/ReadCSV) with JSON framing.
func writeEntry(w io.Writer, e entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

func readEntry(r io.Reader) (entry, error) {
	var e entry
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return entry{}, err
	}
	return e, nil
}
