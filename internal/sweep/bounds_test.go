package sweep

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
)

// boundsPair builds one Paired with a chosen relative error.
func boundsPair(mach string, op machine.Op, p, m int, ref, est float64) Paired {
	return Paired{
		Scenario:  Scenario{Machine: mach, Op: op, Algorithm: DefaultAlgorithm, P: p, M: m, Config: measure.Fast()},
		RefMicros: ref, EstMicros: est,
	}
}

func TestBuildErrorTable(t *testing.T) {
	b := &estimate.Calibrated{Sizes: []int{4, 8}}
	pairs := []Paired{
		// Two machine sizes pool into one (machine, op, m) cell.
		boundsPair("T3D", machine.OpBroadcast, 8, 16, 100, 110),  // 10%
		boundsPair("T3D", machine.OpBroadcast, 32, 16, 100, 104), // 4%
		boundsPair("T3D", machine.OpBroadcast, 8, 1024, 200, 202),
		boundsPair("SP2", machine.OpScatter, 8, 16, 50, 50),
	}
	table := BuildErrorTable(b, pairs)
	if table.Backend != b.Name() || table.Provenance != b.Provenance() {
		t.Fatalf("table identity %q/%q", table.Backend, table.Provenance)
	}
	if len(table.Cells) != 3 {
		t.Fatalf("cells %+v", table.Cells)
	}
	// Sorted by (machine, op, m): SP2 first, then the T3D broadcasts
	// by length.
	if table.Cells[0].Machine != "SP2" || table.Cells[1].M != 16 || table.Cells[2].M != 1024 {
		t.Fatalf("cell order %+v", table.Cells)
	}
	pooled := table.Cells[1]
	if pooled.Points != 2 || pooled.Max != 0.10 {
		t.Fatalf("pooled cell %+v", pooled)
	}
	if pooled.Median < 0.04 || pooled.Median > 0.10 {
		t.Fatalf("pooled median %v", pooled.Median)
	}
}

func TestErrorTableCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := &estimate.Calibrated{Sizes: []int{4, 8}}
	table := BuildErrorTable(b, []Paired{boundsPair("T3D", machine.OpBroadcast, 8, 16, 100, 103)})
	key := estimate.ErrorTableKey(b)
	if _, ok := cache.GetErrorTable(key); ok {
		t.Fatal("hit before put")
	}
	if err := cache.PutErrorTable(key, "test table", table); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.GetErrorTable(key)
	if !ok || len(got.Cells) != 1 || got.Cells[0].Max != 0.03 || !got.Describes(b) {
		t.Fatalf("round trip %+v, %v", got, ok)
	}
	// A different calibration spec keys differently: no cross-serving.
	if _, ok := cache.GetErrorTable(estimate.ErrorTableKey(&estimate.Calibrated{Sizes: []int{8, 32}})); ok {
		t.Fatal("error table served across calibration specs")
	}
	// The nil cache stays a no-op.
	var none *Cache
	if err := none.PutErrorTable(key, "x", table); err != nil {
		t.Fatal(err)
	}
	if _, ok := none.GetErrorTable(key); ok {
		t.Fatal("nil cache produced a table")
	}
}

func TestAttachBounds(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := estimate.NewRegistry()
	cal := &estimate.Calibrated{Sizes: []int{4, 8}, Store: cache}
	if err := reg.Register(&estimate.Entry{Name: "cal", Backend: cal, Ranges: cal.Range}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&estimate.Entry{Name: "paper", Backend: estimate.PaperAnalytic()}); err != nil {
		t.Fatal(err)
	}

	if n := AttachBounds(reg, cache); n != 0 {
		t.Fatalf("attached %d tables from an empty cache", n)
	}
	table := BuildErrorTable(cal, []Paired{boundsPair("T3D", machine.OpBroadcast, 8, 16, 100, 101)})
	if err := cache.PutErrorTable(estimate.ErrorTableKey(cal), "cal table", table); err != nil {
		t.Fatal(err)
	}
	if n := AttachBounds(reg, cache); n != 1 {
		t.Fatalf("attached %d tables, want 1", n)
	}
	entry, _ := reg.Get("cal")
	if entry.Bounds == nil || len(entry.Bounds.Cells) != 1 {
		t.Fatalf("bounds %+v", entry.Bounds)
	}
	paperEntry, _ := reg.Get("paper")
	if paperEntry.Bounds != nil {
		t.Fatal("paper entry gained bounds it was never validated for")
	}

	// A table whose provenance drifted from the entry's backend must
	// not attach, even if planted under the entry's current key.
	stale := BuildErrorTable(&estimate.Calibrated{Sizes: []int{8, 32}}, nil)
	if err := cache.PutErrorTable(estimate.ErrorTableKey(cal), "stale", stale); err != nil {
		t.Fatal(err)
	}
	entry.Bounds = nil
	if n := AttachBounds(reg, cache); n != 0 || entry.Bounds != nil {
		t.Fatalf("stale table attached (n=%d)", n)
	}

	if n := AttachBounds(reg, nil); n != 0 {
		t.Fatalf("nil cache attached %d", n)
	}
}
