package sweep

import (
	"sort"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/stats"
)

// ToDataset converts results into a fit.Dataset in result order. It is
// meant for a single (machine, op, algorithm) slice of a sweep, the
// unit the fit package's Table 3 machinery consumes.
func ToDataset(results []Result) *fit.Dataset {
	d := &fit.Dataset{}
	for _, r := range results {
		d.Add(r.Scenario.P, r.Scenario.M, r.Sample.Micros)
	}
	return d
}

// GroupKey identifies one (machine, op, algorithm) slice of a sweep.
type GroupKey struct {
	Machine   string
	Op        machine.Op
	Algorithm string
}

// Group is the results of one (machine, op, algorithm) slice, in
// scenario order, with a percentile summary of the headline times.
type Group struct {
	GroupKey
	Results []Result
	// N and the quantiles summarize Sample.Micros across the grid
	// points of the group.
	N             int
	MinMicros     float64
	MedianMicros  float64
	P95Micros     float64
	MaxMicros     float64
	GeoMeanMicros float64
	CachedCount   int
}

// Groups partitions results by (machine, op, algorithm), preserving
// first-appearance order, and summarizes each group.
func Groups(results []Result) []Group {
	idx := map[GroupKey]int{}
	var out []Group
	for _, r := range results {
		k := GroupKey{r.Scenario.Machine, r.Scenario.Op, r.Scenario.Algorithm}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Group{GroupKey: k})
		}
		out[i].Results = append(out[i].Results, r)
	}
	for i := range out {
		g := &out[i]
		xs := make([]float64, 0, len(g.Results))
		for _, r := range g.Results {
			xs = append(xs, r.Sample.Micros)
			if r.Cached {
				g.CachedCount++
			}
		}
		s := stats.Summarize(xs)
		g.N = s.N
		g.MinMicros = s.Min
		g.MaxMicros = s.Max
		g.MedianMicros = stats.Median(xs)
		g.P95Micros = stats.Percentile(xs, 95)
		g.GeoMeanMicros = stats.GeoMean(xs)
	}
	return out
}

// Decision is the winner among algorithm variants at one grid point.
type Decision struct {
	Machine string
	Op      machine.Op
	P, M    int
	// Best and BestMicros name the fastest variant; RunnerUp the
	// second-fastest (empty when only one variant ran). Margin is
	// RunnerUpMicros/BestMicros — how much choosing right matters.
	Best           string
	BestMicros     float64
	RunnerUp       string
	RunnerUpMicros float64
}

// Margin returns runner-up time over best time (1 when no runner-up).
func (d Decision) Margin() float64 {
	if d.RunnerUp == "" || d.BestMicros <= 0 {
		return 1
	}
	return d.RunnerUpMicros / d.BestMicros
}

// BestAlgorithms reduces a multi-variant sweep to a per-grid-point
// decision table: for every (machine, op, p, m) with at least two
// variants measured, which algorithm won and by what margin. Points
// appear in first-appearance order; ties break toward the variant that
// appeared first (expansion order is deterministic, so so is this).
func BestAlgorithms(results []Result) []Decision {
	type pointKey struct {
		mach string
		op   machine.Op
		p, m int
	}
	idx := map[pointKey]int{}
	var order []pointKey
	byPoint := map[pointKey][]Result{}
	for _, r := range results {
		k := pointKey{r.Scenario.Machine, r.Scenario.Op, r.Scenario.P, r.Scenario.M}
		if _, ok := idx[k]; !ok {
			idx[k] = len(order)
			order = append(order, k)
		}
		byPoint[k] = append(byPoint[k], r)
	}
	var out []Decision
	for _, k := range order {
		rs := byPoint[k]
		if len(rs) < 2 {
			continue
		}
		best, second := rs[0], Result{}
		hasSecond := false
		for _, r := range rs[1:] {
			switch {
			case r.Sample.Micros < best.Sample.Micros:
				second, hasSecond = best, true
				best = r
			case !hasSecond || r.Sample.Micros < second.Sample.Micros:
				second, hasSecond = r, true
			}
		}
		d := Decision{
			Machine: k.mach, Op: k.op, P: k.p, M: k.m,
			Best: best.Scenario.Algorithm, BestMicros: best.Sample.Micros,
		}
		if hasSecond {
			d.RunnerUp = second.Scenario.Algorithm
			d.RunnerUpMicros = second.Sample.Micros
		}
		out = append(out, d)
	}
	return out
}

// WinCount is an algorithm's tally in one machine × op decision slice.
type WinCount struct {
	Machine   string
	Op        machine.Op
	Algorithm string
	Wins      int
	Points    int // decision points for this machine × op
}

// WinCounts rolls decisions up per machine × op: how often each winning
// algorithm came first. Entries are sorted by machine, op, then
// descending wins (algorithm name breaking ties).
func WinCounts(decisions []Decision) []WinCount {
	type slot struct {
		mach string
		op   machine.Op
		alg  string
	}
	wins := map[slot]int{}
	points := map[[2]string]int{}
	for _, d := range decisions {
		wins[slot{d.Machine, d.Op, d.Best}]++
		points[[2]string{d.Machine, string(d.Op)}]++
	}
	out := make([]WinCount, 0, len(wins))
	for s, n := range wins {
		out = append(out, WinCount{
			Machine: s.mach, Op: s.op, Algorithm: s.alg,
			Wins: n, Points: points[[2]string{s.mach, string(s.op)}],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Wins != b.Wins {
			return a.Wins > b.Wins
		}
		return a.Algorithm < b.Algorithm
	})
	return out
}
