package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/paper"
)

// DefaultAlgorithm is the Scenario.Algorithm value meaning "the
// machine's vendor MPI algorithm table" (mpi.DefaultAlgorithms).
const DefaultAlgorithm = "default"

// Scenario is one fully-specified measurement: a collective on a
// machine at one grid point, with the algorithm variant and the
// measurement methodology pinned down.
type Scenario struct {
	Machine   string         `json:"machine"`
	Op        machine.Op     `json:"op"`
	Algorithm string         `json:"algorithm"` // DefaultAlgorithm or a coll registry name
	P         int            `json:"p"`         // machine size (nodes)
	M         int            `json:"m"`         // message length per pair (bytes)
	Config    measure.Config `json:"config"`
}

// ID returns a human-readable scenario identifier, stable across runs.
func (s Scenario) ID() string {
	return fmt.Sprintf("%s/%s[%s]/p=%d/m=%d", s.Machine, s.Op, s.Algorithm, s.P, s.M)
}

// Spec is a declarative scenario grid. Zero-value fields select the
// paper's sweep: all three machines, the seven Table 3 operations, the
// vendor-default algorithm per operation, the §2 machine sizes (capped
// per machine) and message lengths, and the fast methodology.
type Spec struct {
	// Machines are preset names (machine.ByName); nil means all.
	Machines []string
	// Ops are the operations to sweep; nil means machine.Ops.
	Ops []machine.Op
	// Algorithms maps an operation to the algorithm variants to sweep
	// for it. A nil map, or an op missing from the map, selects only
	// the vendor default. coll.Algorithms(op) enumerates candidates.
	Algorithms map[machine.Op][]string
	// Sizes are machine sizes; nil means paper.MachineSizes per
	// machine. Sizes above a machine's allocation are skipped.
	Sizes []int
	// Lengths are message lengths in bytes; nil means
	// paper.MessageLengths. Barriers always use length 0.
	Lengths []int
	// Config is the measurement methodology; the zero value means
	// measure.Fast().
	Config measure.Config
	// DeriveSeeds gives every scenario its own deterministic seed
	// (hashed from the scenario identity and the base seed) instead of
	// sharing Config.Seed. Derived seeds decorrelate the noise draws
	// of neighboring grid points; the shared seed reproduces the
	// paper-reproduction harness exactly.
	DeriveSeeds bool
}

// AllAlgorithms returns an Algorithms map selecting every registered
// variant for each of ops (plus the hardware barrier where a machine
// supports it, handled at expansion).
func AllAlgorithms(ops []machine.Op) map[machine.Op][]string {
	m := make(map[machine.Op][]string, len(ops))
	for _, op := range ops {
		algs := coll.Algorithms(string(op))
		if algs == nil {
			continue
		}
		if op == machine.OpBarrier {
			algs = append(append([]string(nil), algs...), coll.AlgHardware)
			sort.Strings(algs)
		}
		m[op] = algs
	}
	return m
}

// Expand materializes the grid into concrete scenarios, in
// deterministic order (machines → ops → algorithms → sizes → lengths).
// It validates every dimension and returns an error naming the first
// invalid entry.
func (sp Spec) Expand() ([]Scenario, error) {
	machines := sp.Machines
	if len(machines) == 0 {
		for _, m := range machine.All() {
			machines = append(machines, m.Name())
		}
	}
	ops := sp.Ops
	if len(ops) == 0 {
		ops = machine.Ops
	}
	cfg := sp.Config
	if cfg == (measure.Config{}) {
		cfg = measure.Fast()
	}
	if cfg.K < 1 || cfg.Reps < 1 {
		return nil, fmt.Errorf("sweep: config needs K ≥ 1 and Reps ≥ 1")
	}
	lengths := sp.Lengths
	if len(lengths) == 0 {
		lengths = paper.MessageLengths()
	}
	lengths = append([]int(nil), lengths...)
	sort.Ints(lengths)

	var out []Scenario
	for _, name := range machines {
		mach := machine.ByName(name)
		if mach == nil {
			return nil, fmt.Errorf("sweep: unknown machine %q", name)
		}
		sizes := sp.Sizes
		if len(sizes) == 0 {
			sizes = paper.MachineSizes(name)
		}
		for _, op := range ops {
			if coll.Algorithms(string(op)) == nil {
				return nil, fmt.Errorf("sweep: unknown operation %q", op)
			}
			algs, err := sp.algorithmsFor(mach, op)
			if err != nil {
				return nil, err
			}
			opLengths := lengths
			if op == machine.OpBarrier {
				opLengths = []int{0}
			}
			for _, alg := range algs {
				for _, p := range sizes {
					if p < 2 {
						return nil, fmt.Errorf("sweep: machine size %d < 2", p)
					}
					if p > mach.MaxNodes() {
						continue
					}
					for _, m := range opLengths {
						if m < 0 {
							return nil, fmt.Errorf("sweep: negative message length %d", m)
						}
						sc := Scenario{
							Machine: name, Op: op, Algorithm: alg,
							P: p, M: m, Config: cfg,
						}
						if sp.DeriveSeeds {
							sc.Config.Seed = deriveSeed(cfg.Seed, sc)
						}
						out = append(out, sc)
					}
				}
			}
		}
	}
	return out, nil
}

// algorithmsFor resolves the variant list for one op on one machine.
func (sp Spec) algorithmsFor(mach *machine.Machine, op machine.Op) ([]string, error) {
	algs, ok := sp.Algorithms[op]
	if !ok || len(algs) == 0 {
		return []string{DefaultAlgorithm}, nil
	}
	out := make([]string, 0, len(algs))
	for _, a := range algs {
		switch {
		case a == DefaultAlgorithm:
		case a == coll.AlgHardware && op == machine.OpBarrier:
			// The T3D barrier circuit: machine-bound, not in the
			// registry. Skip silently on machines without the hardware
			// so "all variants" specs stay valid across machines.
			if !mach.HardwareBarrier() {
				continue
			}
		case !coll.HasAlgorithm(string(op), a):
			return nil, fmt.Errorf("sweep: no %s algorithm %q (have %v)",
				op, a, coll.Algorithms(string(op)))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		// Every requested variant was machine-gated away: the user
		// named only the hardware barrier on a machine without the
		// circuit. Substituting the default here would silently
		// measure something the spec never asked for.
		return nil, fmt.Errorf("sweep: %s algorithm %q needs machine support (%s has none)",
			op, coll.AlgHardware, mach.Name())
	}
	return out, nil
}

// deriveSeed hashes a scenario's identity (without its seed) into a
// per-scenario RNG seed, mixed with the base seed so whole sweeps can
// be re-rolled.
func deriveSeed(base int64, sc Scenario) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d", sc.Machine, sc.Op, sc.Algorithm, sc.P, sc.M)
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	return seed ^ base
}
