package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/report"
)

// WriteCSV emits one row per scenario — the machine-readable sweep
// artifact — via the report package's CSV writer.
func WriteCSV(w io.Writer, results []Result) error {
	header := []string{
		"machine", "op", "algorithm", "p", "m",
		"micros", "min_micros", "max_micros", "rank_min", "rank_mean",
		"seed", "cached", "backend",
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Scenario.Machine,
			string(r.Scenario.Op),
			r.Scenario.Algorithm,
			strconv.Itoa(r.Scenario.P),
			strconv.Itoa(r.Scenario.M),
			formatMicros(r.Sample.Micros),
			formatMicros(r.Sample.MinMicros),
			formatMicros(r.Sample.MaxMicros),
			formatMicros(r.Sample.RankMin),
			formatMicros(r.Sample.RankMean),
			strconv.FormatInt(r.Scenario.Config.Seed, 10),
			strconv.FormatBool(r.Cached),
			r.Backend,
		})
	}
	return report.WriteCSVTable(w, header, rows)
}

// formatMicros keeps CSV output byte-stable across platforms: %g with
// full float64 round-trip precision.
func formatMicros(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMarkdown emits the human-readable sweep report: a run header,
// per-(machine, op, algorithm) percentile summaries, and — when the
// sweep covered several variants of an operation — the per-machine
// best-algorithm decision tables.
func WriteMarkdown(w io.Writer, title string, results []Result) error {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	groups := Groups(results)
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	p("# %s", title)
	p("")
	p("%d scenarios (%d served from cache) across %d (machine, op, algorithm) groups.",
		len(results), cached, len(groups))
	p("Times are simulated µs; the headline value is the paper's metric — the")
	p("mean over executions of the max-reduced per-rank averages.")
	p("")

	p("## Group summaries")
	p("")
	p("| machine | op | algorithm | points | min | median | p95 | max |")
	p("|---|---|---|---|---|---|---|---|")
	for _, g := range groups {
		p("| %s | %s | %s | %d | %.1f | %.1f | %.1f | %.1f |",
			g.Machine, g.Op, g.Algorithm, g.N,
			g.MinMicros, g.MedianMicros, g.P95Micros, g.MaxMicros)
	}
	p("")

	decisions := BestAlgorithms(results)
	if len(decisions) > 0 {
		p("## Best algorithm per machine × op")
		p("")
		p("Share of grid points each variant wins (ties go to expansion order).")
		p("")
		p("| machine | op | algorithm | wins | points |")
		p("|---|---|---|---|---|")
		for _, wc := range WinCounts(decisions) {
			p("| %s | %s | %s | %d | %d |", wc.Machine, wc.Op, wc.Algorithm, wc.Wins, wc.Points)
		}
		p("")
		p("## Decision table (per grid point)")
		p("")
		p("| machine | op | p | m | best | µs | runner-up | µs | margin |")
		p("|---|---|---|---|---|---|---|---|---|")
		for _, d := range decisions {
			ru, rv := "-", "-"
			if d.RunnerUp != "" {
				ru = d.RunnerUp
				rv = fmt.Sprintf("%.1f", d.RunnerUpMicros)
			}
			p("| %s | %s | %d | %d | %s | %.1f | %s | %s | %.2f× |",
				d.Machine, d.Op, d.P, d.M, d.Best, d.BestMicros, ru, rv, d.Margin())
		}
		p("")
	}

	_, err := io.WriteString(w, b.String())
	return err
}
