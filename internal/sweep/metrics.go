package sweep

import (
	"time"

	"repro/internal/obs"
)

// Run phases, in execution order. Indexes Metrics.phases.
const (
	phaseCache     = iota // serve cache hits
	phaseCalibrate        // bulk-precalibrate pending triples
	phaseEstimate         // estimate the remaining scenarios
	numPhases
)

var phaseNames = [numPhases]string{"cache", "calibrate", "estimate"}

// Metrics holds the sweep-layer observability series. A nil *Metrics is
// valid and records nothing, so Runner users opt in by attaching one.
type Metrics struct {
	cacheHits, cacheMisses *obs.Counter
	phases                 [numPhases]*obs.Histogram
}

// NewMetrics registers the sweep metric series on reg:
// sweep_cache_total{result="hit"|"miss"} counts scenario cache lookups,
// and sweep_phase_duration_ns{phase="cache"|"calibrate"|"estimate"}
// records wall-clock time per Run phase (one observation per phase per
// Run, so each histogram's count equals the number of Runs).
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		cacheHits: reg.Counter("sweep_cache_total",
			"scenario cache lookups by result",
			obs.Label{Key: "result", Value: "hit"}),
		cacheMisses: reg.Counter("sweep_cache_total",
			"scenario cache lookups by result",
			obs.Label{Key: "result", Value: "miss"}),
	}
	for i, name := range phaseNames {
		m.phases[i] = reg.Histogram("sweep_phase_duration_ns",
			"wall-clock nanoseconds per sweep run phase",
			obs.Label{Key: "phase", Value: name})
	}
	return m
}

// cacheLookups records one Run's cache outcome split. Nil-safe.
func (m *Metrics) cacheLookups(hits, misses int) {
	if m == nil {
		return
	}
	m.cacheHits.Add(uint64(hits))
	m.cacheMisses.Add(uint64(misses))
}

// observePhase records one phase's wall-clock duration. Nil-safe.
func (m *Metrics) observePhase(phase int, d time.Duration) {
	if m == nil {
		return
	}
	m.phases[phase].ObserveDuration(d)
}
