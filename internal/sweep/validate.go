package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/stats"
)

// Paired is one scenario estimated by both the reference backend
// (normally sim, the ground truth) and a candidate backend.
type Paired struct {
	Scenario  Scenario
	RefMicros float64
	EstMicros float64
}

// RelError returns |est − ref| / ref (0 when the reference is 0).
func (p Paired) RelError() float64 {
	if p.RefMicros == 0 {
		return 0
	}
	d := p.EstMicros - p.RefMicros
	if d < 0 {
		d = -d
	}
	return d / p.RefMicros
}

// Pair matches two result slices from the same scenario expansion,
// position by position. It errors if the slices disagree on length or
// scenario identity — the caller must run both backends over one
// Spec.Expand output.
func Pair(ref, est []Result) ([]Paired, error) {
	if len(ref) != len(est) {
		return nil, fmt.Errorf("sweep: pairing %d reference results with %d estimates", len(ref), len(est))
	}
	out := make([]Paired, len(ref))
	for i := range ref {
		if ref[i].Scenario != est[i].Scenario {
			return nil, fmt.Errorf("sweep: result %d: scenario mismatch %s vs %s",
				i, ref[i].Scenario.ID(), est[i].Scenario.ID())
		}
		out[i] = Paired{
			Scenario:  ref[i].Scenario,
			RefMicros: ref[i].Sample.Micros,
			EstMicros: est[i].Sample.Micros,
		}
	}
	return out, nil
}

// RelErrors extracts every pair's relative error, in pair order.
func RelErrors(pairs []Paired) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p.RelError()
	}
	return out
}

// MidLengthMin and MidLengthMax delimit the mid-length message window
// (bytes) the validation report summarizes separately: the regime where
// real message-passing layers switch protocols and the affine model
// carries its worst error.
const (
	MidLengthMin = 256
	MidLengthMax = 4096
)

// midLengthErrors extracts the relative errors of the scenarios inside
// the mid-length window.
func midLengthErrors(pairs []Paired) []float64 {
	var out []float64
	for _, p := range pairs {
		if p.Scenario.M >= MidLengthMin && p.Scenario.M <= MidLengthMax {
			out = append(out, p.RelError())
		}
	}
	return out
}

// ValidationTiming carries the wall-clock context of a validation run;
// zero fields are omitted from the report. RefCached/EstCached count
// cache-served scenarios in each pass — when nonzero the pass was not
// cold, and the report labels it accordingly instead of presenting a
// cache read as estimation speed.
type ValidationTiming struct {
	Backend     string  // candidate backend name
	RefSeconds  float64 // reference (sim) grid pass
	EstSeconds  float64 // candidate grid pass (includes calibration)
	WarmSeconds float64 // candidate grid, warm (expressions in memory, no cache)
	RefCached   int     // cache-served scenarios in the reference pass
	EstCached   int     // cache-served scenarios in the candidate pass
}

// passLabel names a pass honestly: cold when every scenario was
// estimated, cache-served otherwise.
func passLabel(name string, cached int) string {
	if cached == 0 {
		return name + " grid (cold)"
	}
	return fmt.Sprintf("%s grid (%d cache-served)", name, cached)
}

// WriteValidation emits the paper-style validation report: per
// (machine, op) median relative error across message lengths — the
// shape of the paper's own Table 3 error discussion — plus an overall
// error summary, the worst scenarios, and the speed comparison.
func WriteValidation(w io.Writer, title string, pairs []Paired, timing *ValidationTiming) error {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	errs := RelErrors(pairs)
	p("# %s", title)
	p("")
	p("%d scenarios estimated by both backends. Relative error is", len(pairs))
	p("|estimate − sim| / sim on the headline time (the mean over executions")
	p("of the max-reduced per-rank averages).")
	p("")
	p("## Overall error")
	p("")
	p("| points | median | mean | p95 | max |")
	p("|---|---|---|---|---|")
	p("| %d | %.2f%% | %.2f%% | %.2f%% | %.2f%% |",
		len(errs), 100*stats.Median(errs), 100*mean(errs),
		100*stats.Percentile(errs, 95), 100*maxOf(errs))
	p("")

	// The mid-length window is where message-passing layers switch
	// protocols (eager vs. rendezvous-style handoff) and where the
	// affine model is weakest; report it separately so a fit family's
	// worst regime is visible next to the flattering grid median.
	if mid := midLengthErrors(pairs); len(mid) > 0 {
		p("## Mid-length error (m ∈ [%d, %d])", MidLengthMin, MidLengthMax)
		p("")
		p("| points | median | mean | p95 | max |")
		p("|---|---|---|---|---|")
		p("| %d | %.2f%% | %.2f%% | %.2f%% | %.2f%% |",
			len(mid), 100*stats.Median(mid), 100*mean(mid),
			100*stats.Percentile(mid, 95), 100*maxOf(mid))
		p("")
	}

	if timing != nil {
		p("## Speed")
		p("")
		p("| pass | wall-clock | vs sim pass |")
		p("|---|---|---|")
		if timing.RefSeconds > 0 {
			p("| %s | %.3fs | 1× |", passLabel("sim", timing.RefCached), timing.RefSeconds)
		}
		if timing.EstSeconds > 0 {
			p("| %s | %.3fs | %s |", passLabel(timing.Backend, timing.EstCached),
				timing.EstSeconds, speedup(timing.RefSeconds, timing.EstSeconds))
		}
		if timing.WarmSeconds > 0 {
			p("| %s grid (warm, in-memory) | %.3fs | %s |", timing.Backend, timing.WarmSeconds,
				speedup(timing.RefSeconds, timing.WarmSeconds))
		}
		if timing.RefCached > 0 || timing.EstCached > 0 {
			p("")
			p("Cache-served passes do not measure estimation speed; rerun without")
			p("`-cache` (or against a fresh directory) for cold numbers.")
		}
		p("")
	}

	p("## Median relative error per machine × op × message length")
	p("")
	lengths := pairLengths(pairs)
	header := "| machine | op |"
	rule := "|---|---|"
	for _, m := range lengths {
		header += fmt.Sprintf(" m=%d |", m)
		rule += "---|"
	}
	header += " all |"
	rule += "---|"
	p("%s", header)
	p("%s", rule)
	for _, row := range groupPairs(pairs) {
		line := fmt.Sprintf("| %s | %s |", row.mach, row.op)
		for _, m := range lengths {
			cell, ok := row.byLength[m]
			if !ok {
				line += " - |"
				continue
			}
			line += fmt.Sprintf(" %.1f%% |", 100*stats.Median(cell))
		}
		line += fmt.Sprintf(" %.1f%% |", 100*stats.Median(row.all))
		p("%s", line)
	}
	p("")

	p("## Worst scenarios")
	p("")
	p("| scenario | sim µs | estimate µs | rel error |")
	p("|---|---|---|---|")
	worst := append([]Paired(nil), pairs...)
	sort.SliceStable(worst, func(i, j int) bool { return worst[i].RelError() > worst[j].RelError() })
	if len(worst) > 10 {
		worst = worst[:10]
	}
	for _, pr := range worst {
		p("| %s | %.1f | %.1f | %.1f%% |",
			pr.Scenario.ID(), pr.RefMicros, pr.EstMicros, 100*pr.RelError())
	}
	p("")

	_, err := io.WriteString(w, b.String())
	return err
}

// errRow accumulates one (machine, op) slice of a validation.
type errRow struct {
	mach     string
	op       machine.Op
	byLength map[int][]float64
	all      []float64
}

// groupPairs partitions pairs by (machine, op) in first-appearance
// order, splitting each row's errors by message length.
func groupPairs(pairs []Paired) []*errRow {
	idx := map[[2]string]int{}
	var out []*errRow
	for _, pr := range pairs {
		k := [2]string{pr.Scenario.Machine, string(pr.Scenario.Op)}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, &errRow{
				mach: pr.Scenario.Machine, op: pr.Scenario.Op,
				byLength: map[int][]float64{},
			})
		}
		e := pr.RelError()
		out[i].byLength[pr.Scenario.M] = append(out[i].byLength[pr.Scenario.M], e)
		out[i].all = append(out[i].all, e)
	}
	return out
}

// pairLengths returns the sorted distinct message lengths present.
func pairLengths(pairs []Paired) []int {
	seen := map[int]bool{}
	for _, pr := range pairs {
		seen[pr.Scenario.M] = true
	}
	out := make([]int, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func speedup(ref, est float64) string {
	if ref <= 0 || est <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f×", ref/est)
}
