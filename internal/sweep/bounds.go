package sweep

import (
	"sort"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/stats"
)

// BuildErrorTable condenses a validation's paired results into the
// loadable per-(machine, op, m) error table for candidate backend b —
// the same cells the validation report prints, with machine sizes and
// algorithm variants pooled per cell. Cells are sorted by
// (machine, op, m), so the table serializes deterministically.
func BuildErrorTable(b estimate.Backend, pairs []Paired) estimate.ErrorTable {
	type cellKey struct {
		mach string
		op   string
		m    int
	}
	errs := map[cellKey][]float64{}
	for _, pr := range pairs {
		k := cellKey{pr.Scenario.Machine, string(pr.Scenario.Op), pr.Scenario.M}
		errs[k] = append(errs[k], pr.RelError())
	}
	keys := make([]cellKey, 0, len(errs))
	for k := range errs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mach != b.mach {
			return a.mach < b.mach
		}
		if a.op != b.op {
			return a.op < b.op
		}
		return a.m < b.m
	})
	t := estimate.ErrorTable{
		Backend:    b.Name(),
		Provenance: b.Provenance(),
		Cells:      make([]estimate.ErrorCell, 0, len(keys)),
	}
	for _, k := range keys {
		es := errs[k]
		t.Cells = append(t.Cells, estimate.ErrorCell{
			Machine: k.mach, Op: machine.Op(k.op), M: k.m,
			Median: stats.Median(es), Max: maxOf(es), Points: len(es),
		})
	}
	return t
}

// AttachBounds loads each registry entry's persisted error table from
// the cache (by the entry backend's content key) and wires it to the
// entry, returning how many entries gained bounds. Tables whose backend
// identity drifted from the entry's are ignored — stale bounds must
// never annotate fresh fits. Call during setup, before serving.
func AttachBounds(reg *estimate.Registry, c *Cache) int {
	if c == nil {
		return 0
	}
	n := 0
	for _, e := range reg.Entries() {
		t, ok := c.GetErrorTable(estimate.ErrorTableKey(e.Backend))
		if !ok || !t.Describes(e.Backend) {
			continue
		}
		e.Bounds = &t
		n++
	}
	return n
}
