package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/paper"
)

// tinyCfg keeps executor tests fast: one warm-up-free iteration, one
// execution.
var tinyCfg = measure.Config{Warmup: 0, K: 1, Reps: 1, Seed: 7}

func TestExpandDefaultsCoverPaperGrid(t *testing.T) {
	scns, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	lengths := len(paper.MessageLengths())
	for _, m := range machine.All() {
		sizes := len(paper.MachineSizes(m.Name()))
		want += sizes * (1 + (len(machine.Ops)-1)*lengths) // barrier has one length
	}
	if len(scns) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scns), want)
	}
	fast := measure.Fast()
	for _, sc := range scns {
		if sc.Config != fast {
			t.Fatalf("%s: config %+v, want fast default", sc.ID(), sc.Config)
		}
		if sc.Algorithm != DefaultAlgorithm {
			t.Fatalf("%s: algorithm %q, want default", sc.ID(), sc.Algorithm)
		}
		if sc.Op == machine.OpBarrier && sc.M != 0 {
			t.Fatalf("barrier scenario with m=%d", sc.M)
		}
		if sc.P > machine.ByName(sc.Machine).MaxNodes() {
			t.Fatalf("%s exceeds allocation", sc.ID())
		}
	}
}

func TestExpandValidates(t *testing.T) {
	cases := []Spec{
		{Machines: []string{"CM-5"}},
		{Ops: []machine.Op{"gossip"}},
		{Algorithms: map[machine.Op][]string{machine.OpBroadcast: {"telepathy"}}},
		{Sizes: []int{1}},
		{Lengths: []int{-4}},
		{Config: measure.Config{K: 0, Reps: 1}},
		// Hardware barrier as the sole variant on a machine without
		// the circuit must error, not silently measure the default.
		{Machines: []string{"SP2"}, Ops: []machine.Op{machine.OpBarrier},
			Algorithms: map[machine.Op][]string{machine.OpBarrier: {coll.AlgHardware}}},
	}
	for i, sp := range cases {
		if _, err := sp.Expand(); err == nil {
			t.Errorf("case %d: Expand accepted invalid spec %+v", i, sp)
		}
	}
}

func TestExpandHardwareBarrierOnlyWhereSupported(t *testing.T) {
	sp := Spec{
		Ops:        []machine.Op{machine.OpBarrier},
		Algorithms: map[machine.Op][]string{machine.OpBarrier: {coll.AlgHardware, coll.AlgTree}},
		Sizes:      []int{4},
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	for _, sc := range scns {
		got[sc.Machine] = append(got[sc.Machine], sc.Algorithm)
	}
	for mach, algs := range got {
		wantHW := machine.ByName(mach).HardwareBarrier()
		hasHW := false
		for _, a := range algs {
			hasHW = hasHW || a == coll.AlgHardware
		}
		if hasHW != wantHW {
			t.Errorf("%s: hardware barrier expanded=%v, machine support=%v", mach, hasHW, wantHW)
		}
	}
}

func TestAllAlgorithmsMatchesRegistries(t *testing.T) {
	m := AllAlgorithms(machine.Ops)
	for _, op := range machine.Ops {
		want := coll.Algorithms(string(op))
		if op == machine.OpBarrier {
			// The hardware barrier rides along for barrier sweeps;
			// expansion drops it on machines without the circuit.
			want = append(append([]string(nil), want...), coll.AlgHardware)
			sort.Strings(want)
		}
		if !reflect.DeepEqual(m[op], want) {
			t.Errorf("%s: %v, want %v", op, m[op], want)
		}
	}
}

func TestDeriveSeedsAreDistinctAndStable(t *testing.T) {
	sp := Spec{
		Machines: []string{"SP2"}, Ops: []machine.Op{machine.OpBroadcast},
		Sizes: []int{2, 4}, Lengths: []int{4, 64},
		Config: tinyCfg, DeriveSeeds: true,
	}
	a, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sp.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	seeds := map[int64]string{}
	for _, sc := range a {
		if prev, dup := seeds[sc.Config.Seed]; dup {
			t.Fatalf("seed collision: %s and %s", prev, sc.ID())
		}
		seeds[sc.Config.Seed] = sc.ID()
	}
}

func testScenarios(t *testing.T) []Scenario {
	t.Helper()
	sp := Spec{
		Machines: []string{"T3D"},
		Ops:      []machine.Op{machine.OpBarrier, machine.OpBroadcast, machine.OpAlltoall},
		Algorithms: map[machine.Op][]string{
			machine.OpAlltoall: coll.Algorithms(coll.OpAlltoall),
		},
		Sizes: []int{2, 4}, Lengths: []int{4, 256},
		Config: tinyCfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scns
}

func TestRunnerResultsIndependentOfWorkerCount(t *testing.T) {
	scns := testScenarios(t)
	serial := (&Runner{Workers: 1}).Run(scns)
	parallel := (&Runner{Workers: 8, BatchSize: 1}).Run(scns)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("results differ between 1 and 8 workers")
	}
	var md1, md8, csv1, csv8 bytes.Buffer
	if err := WriteMarkdown(&md1, "t", serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&md8, "t", parallel); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv1, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv8, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md1.Bytes(), md8.Bytes()) || !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("emitted artifacts differ between worker counts")
	}
}

func TestRunnerMatchesSerialMeasureSweep(t *testing.T) {
	sizes := []int{2, 4, 8}
	lengths := []int{4, 1024}
	cfg := measure.Fast()
	serial := measure.Sweep(machine.Paragon(), machine.OpGather, sizes, lengths, cfg)

	sp := Spec{
		Machines: []string{"Paragon"}, Ops: []machine.Op{machine.OpGather},
		Sizes: sizes, Lengths: lengths, Config: cfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sharded := ToDataset((&Runner{Workers: 4}).Run(scns))
	if !reflect.DeepEqual(serial.Points, sharded.Points) {
		t.Fatalf("sharded sweep diverged from serial measure.Sweep:\n%v\nvs\n%v",
			sharded.Points, serial.Points)
	}
}

func TestRunnerCacheRoundTrip(t *testing.T) {
	scns := testScenarios(t)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := (&Runner{Workers: 4, Cache: cache}).Run(scns)
	for _, r := range cold {
		if r.Cached {
			t.Fatalf("%s: cached on a cold run", r.Scenario.ID())
		}
	}
	warm := (&Runner{Workers: 4, Cache: cache}).Run(scns)
	for i, r := range warm {
		if !r.Cached {
			t.Fatalf("%s: not cached on a warm run", r.Scenario.ID())
		}
		if r.Sample != cold[i].Sample {
			t.Fatalf("%s: cache returned different sample", r.Scenario.ID())
		}
	}
}

func TestCacheKeyDependsOnCalibrationAndConfig(t *testing.T) {
	sc := Scenario{Machine: "SP2", Op: machine.OpBroadcast, Algorithm: DefaultAlgorithm,
		P: 4, M: 64, Config: tinyCfg}
	sp2 := Fingerprint(machine.SP2())
	if sp2 != Fingerprint(machine.SP2()) {
		t.Fatal("fingerprint is not deterministic")
	}
	if sp2 == Fingerprint(machine.T3D()) {
		t.Fatal("distinct machines share a fingerprint")
	}
	k := sc.Key(sp2)
	if k != sc.Key(sp2) {
		t.Fatal("key is not deterministic")
	}
	if k == sc.Key(Fingerprint(machine.T3D())) {
		t.Fatal("key ignores the calibration fingerprint")
	}
	reseeded := sc
	reseeded.Config.Seed++
	if k == reseeded.Key(sp2) {
		t.Fatal("key ignores the measurement config")
	}
}

func TestCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := measure.Sample{Machine: "SP2", Op: machine.OpBroadcast, P: 4, M: 64, Micros: 12.5}
	if err := cache.Put("deadbeef", "id", s); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.Get("deadbeef"); !ok || got != s {
		t.Fatalf("Get = %+v, %v; want stored sample", got, ok)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("deadbeef"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A syntactically valid entry stored under the wrong name must not
	// satisfy a different key.
	if err := cache.Put("feedface", "id", s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "feedface.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cafebabe.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("cafebabe"); ok {
		t.Fatal("entry with mismatched key served as a hit")
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatal("empty dir should disable caching")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", "id", measure.Sample{}); err != nil {
		t.Fatal(err)
	}
}

func TestBestAlgorithmsAndWinCounts(t *testing.T) {
	mk := func(alg string, p, m int, micros float64) Result {
		return Result{
			Scenario: Scenario{Machine: "SP2", Op: machine.OpAlltoall, Algorithm: alg, P: p, M: m},
			Sample:   measure.Sample{Micros: micros},
		}
	}
	results := []Result{
		mk("pairwise", 4, 64, 10), mk("bruck", 4, 64, 8),
		mk("pairwise", 8, 64, 20), mk("bruck", 8, 64, 30),
		mk("pairwise", 16, 64, 5), // single variant: no decision
	}
	ds := BestAlgorithms(results)
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2", len(ds))
	}
	if ds[0].Best != "bruck" || ds[0].RunnerUp != "pairwise" || ds[0].Margin() != 10.0/8 {
		t.Fatalf("p=4 decision wrong: %+v", ds[0])
	}
	if ds[1].Best != "pairwise" || ds[1].RunnerUpMicros != 30 {
		t.Fatalf("p=8 decision wrong: %+v", ds[1])
	}
	wc := WinCounts(ds)
	if len(wc) != 2 || wc[0].Wins != 1 || wc[0].Points != 2 {
		t.Fatalf("win counts wrong: %+v", wc)
	}
}

func TestToDatasetPreservesGridOrder(t *testing.T) {
	scns := []Scenario{
		{Machine: "SP2", Op: machine.OpBroadcast, P: 2, M: 4},
		{Machine: "SP2", Op: machine.OpBroadcast, P: 2, M: 16},
		{Machine: "SP2", Op: machine.OpBroadcast, P: 4, M: 4},
	}
	var results []Result
	for i, sc := range scns {
		results = append(results, Result{Scenario: sc, Sample: measure.Sample{Micros: float64(i + 1)}})
	}
	d := ToDataset(results)
	if len(d.Points) != 3 {
		t.Fatalf("got %d points", len(d.Points))
	}
	if v, ok := d.At(4, 4); !ok || v != 3 {
		t.Fatalf("At(4,4) = %v, %v", v, ok)
	}
}
