package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/coll"
	"repro/internal/estimate"
	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/paper"
)

// tinyCfg keeps executor tests fast: one warm-up-free iteration, one
// execution.
var tinyCfg = measure.Config{Warmup: 0, K: 1, Reps: 1, Seed: 7}

func TestExpandDefaultsCoverPaperGrid(t *testing.T) {
	scns, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	lengths := len(paper.MessageLengths())
	for _, m := range machine.All() {
		sizes := len(paper.MachineSizes(m.Name()))
		want += sizes * (1 + (len(machine.Ops)-1)*lengths) // barrier has one length
	}
	if len(scns) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scns), want)
	}
	fast := measure.Fast()
	for _, sc := range scns {
		if sc.Config != fast {
			t.Fatalf("%s: config %+v, want fast default", sc.ID(), sc.Config)
		}
		if sc.Algorithm != DefaultAlgorithm {
			t.Fatalf("%s: algorithm %q, want default", sc.ID(), sc.Algorithm)
		}
		if sc.Op == machine.OpBarrier && sc.M != 0 {
			t.Fatalf("barrier scenario with m=%d", sc.M)
		}
		if sc.P > machine.ByName(sc.Machine).MaxNodes() {
			t.Fatalf("%s exceeds allocation", sc.ID())
		}
	}
}

func TestExpandValidates(t *testing.T) {
	cases := []Spec{
		{Machines: []string{"CM-5"}},
		{Ops: []machine.Op{"gossip"}},
		{Algorithms: map[machine.Op][]string{machine.OpBroadcast: {"telepathy"}}},
		{Sizes: []int{1}},
		{Lengths: []int{-4}},
		{Config: measure.Config{K: 0, Reps: 1}},
		// Hardware barrier as the sole variant on a machine without
		// the circuit must error, not silently measure the default.
		{Machines: []string{"SP2"}, Ops: []machine.Op{machine.OpBarrier},
			Algorithms: map[machine.Op][]string{machine.OpBarrier: {coll.AlgHardware}}},
	}
	for i, sp := range cases {
		if _, err := sp.Expand(); err == nil {
			t.Errorf("case %d: Expand accepted invalid spec %+v", i, sp)
		}
	}
}

func TestExpandHardwareBarrierOnlyWhereSupported(t *testing.T) {
	sp := Spec{
		Ops:        []machine.Op{machine.OpBarrier},
		Algorithms: map[machine.Op][]string{machine.OpBarrier: {coll.AlgHardware, coll.AlgTree}},
		Sizes:      []int{4},
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	for _, sc := range scns {
		got[sc.Machine] = append(got[sc.Machine], sc.Algorithm)
	}
	for mach, algs := range got {
		wantHW := machine.ByName(mach).HardwareBarrier()
		hasHW := false
		for _, a := range algs {
			hasHW = hasHW || a == coll.AlgHardware
		}
		if hasHW != wantHW {
			t.Errorf("%s: hardware barrier expanded=%v, machine support=%v", mach, hasHW, wantHW)
		}
	}
}

func TestAllAlgorithmsMatchesRegistries(t *testing.T) {
	m := AllAlgorithms(machine.Ops)
	for _, op := range machine.Ops {
		want := coll.Algorithms(string(op))
		if op == machine.OpBarrier {
			// The hardware barrier rides along for barrier sweeps;
			// expansion drops it on machines without the circuit.
			want = append(append([]string(nil), want...), coll.AlgHardware)
			sort.Strings(want)
		}
		if !reflect.DeepEqual(m[op], want) {
			t.Errorf("%s: %v, want %v", op, m[op], want)
		}
	}
}

func TestDeriveSeedsAreDistinctAndStable(t *testing.T) {
	sp := Spec{
		Machines: []string{"SP2"}, Ops: []machine.Op{machine.OpBroadcast},
		Sizes: []int{2, 4}, Lengths: []int{4, 64},
		Config: tinyCfg, DeriveSeeds: true,
	}
	a, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sp.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	seeds := map[int64]string{}
	for _, sc := range a {
		if prev, dup := seeds[sc.Config.Seed]; dup {
			t.Fatalf("seed collision: %s and %s", prev, sc.ID())
		}
		seeds[sc.Config.Seed] = sc.ID()
	}
}

func testScenarios(t *testing.T) []Scenario {
	t.Helper()
	sp := Spec{
		Machines: []string{"T3D"},
		Ops:      []machine.Op{machine.OpBarrier, machine.OpBroadcast, machine.OpAlltoall},
		Algorithms: map[machine.Op][]string{
			machine.OpAlltoall: coll.Algorithms(coll.OpAlltoall),
		},
		Sizes: []int{2, 4}, Lengths: []int{4, 256},
		Config: tinyCfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scns
}

func TestRunnerResultsIndependentOfWorkerCount(t *testing.T) {
	scns := testScenarios(t)
	serial := (&Runner{Workers: 1}).Run(scns)
	parallel := (&Runner{Workers: 8, BatchSize: 1}).Run(scns)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("results differ between 1 and 8 workers")
	}
	var md1, md8, csv1, csv8 bytes.Buffer
	if err := WriteMarkdown(&md1, "t", serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&md8, "t", parallel); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv1, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv8, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md1.Bytes(), md8.Bytes()) || !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("emitted artifacts differ between worker counts")
	}
}

func TestRunnerMatchesSerialMeasureSweep(t *testing.T) {
	sizes := []int{2, 4, 8}
	lengths := []int{4, 1024}
	cfg := measure.Fast()
	mach := machine.Paragon()
	serial := estimate.BuildDataset(mach, machine.OpGather, mpi.DefaultAlgorithms(mach), sizes, lengths, cfg)

	sp := Spec{
		Machines: []string{"Paragon"}, Ops: []machine.Op{machine.OpGather},
		Sizes: sizes, Lengths: lengths, Config: cfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sharded := ToDataset((&Runner{Workers: 4}).Run(scns))
	if !reflect.DeepEqual(serial.Points, sharded.Points) {
		t.Fatalf("sharded sweep diverged from serial measure.Sweep:\n%v\nvs\n%v",
			sharded.Points, serial.Points)
	}
}

func TestRunnerCacheRoundTrip(t *testing.T) {
	scns := testScenarios(t)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := (&Runner{Workers: 4, Cache: cache}).Run(scns)
	for _, r := range cold {
		if r.Cached {
			t.Fatalf("%s: cached on a cold run", r.Scenario.ID())
		}
	}
	warm := (&Runner{Workers: 4, Cache: cache}).Run(scns)
	for i, r := range warm {
		if !r.Cached {
			t.Fatalf("%s: not cached on a warm run", r.Scenario.ID())
		}
		if r.Sample != cold[i].Sample {
			t.Fatalf("%s: cache returned different sample", r.Scenario.ID())
		}
	}
}

func TestCacheKeyDependsOnCalibrationAndConfig(t *testing.T) {
	sc := Scenario{Machine: "SP2", Op: machine.OpBroadcast, Algorithm: DefaultAlgorithm,
		P: 4, M: 64, Config: tinyCfg}
	sim := BackendID(estimate.Sim{})
	sp2 := Fingerprint(machine.SP2())
	if sp2 != Fingerprint(machine.SP2()) {
		t.Fatal("fingerprint is not deterministic")
	}
	if sp2 == Fingerprint(machine.T3D()) {
		t.Fatal("distinct machines share a fingerprint")
	}
	k := sc.Key(sp2, sim)
	if k != sc.Key(sp2, sim) {
		t.Fatal("key is not deterministic")
	}
	if k == sc.Key(Fingerprint(machine.T3D()), sim) {
		t.Fatal("key ignores the calibration fingerprint")
	}
	reseeded := sc
	reseeded.Config.Seed++
	if k == reseeded.Key(sp2, sim) {
		t.Fatal("key ignores the measurement config")
	}
}

// TestCacheKeySelfInvalidatesAcrossBackends proves the cache never
// serves one backend's numbers to another: the key changes with the
// backend's identity and with its expression provenance (an analytic
// backend over a different expression set, or a calibrated backend
// whose calibration spec changed).
func TestCacheKeySelfInvalidatesAcrossBackends(t *testing.T) {
	sc := Scenario{Machine: "SP2", Op: machine.OpBroadcast, Algorithm: DefaultAlgorithm,
		P: 4, M: 64, Config: tinyCfg}
	fp := Fingerprint(machine.SP2())

	ids := map[string]string{
		"sim":             BackendID(estimate.Sim{}),
		"analytic(paper)": BackendID(estimate.PaperAnalytic()),
		"calibrated":      BackendID(&estimate.Calibrated{}),
	}
	keys := map[string]string{}
	for name, id := range ids {
		keys[name] = sc.Key(fp, id)
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("backends %s and %s share a cache key", prev, name)
		}
		seen[k] = name
	}

	// Same backend, different expression provenance: a refit analytic
	// predictor must not serve paper-table3 entries.
	refit := estimate.NewAnalytic(estimate.PaperAnalytic().Predictor(), "refit-2026-07")
	if sc.Key(fp, BackendID(refit)) == keys["analytic(paper)"] {
		t.Fatal("key ignores the analytic expression provenance")
	}

	// Same calibrated backend, different calibration spec.
	recal := &estimate.Calibrated{Sizes: []int{2, 8}, Lengths: []int{4, 1024}}
	if sc.Key(fp, BackendID(recal)) == keys["calibrated"] {
		t.Fatal("key ignores the calibration provenance")
	}
	recfg := &estimate.Calibrated{Config: measure.Paper()}
	if sc.Key(fp, BackendID(recfg)) == keys["calibrated"] ||
		sc.Key(fp, BackendID(recfg)) == sc.Key(fp, BackendID(recal)) {
		t.Fatal("key ignores the calibration methodology")
	}
}

// TestRunnerCacheDoesNotCrossContaminateBackends runs the same grid
// through sim and analytic against one cache directory: the second
// backend must miss (and re-estimate), not inherit the first's samples.
func TestRunnerCacheDoesNotCrossContaminateBackends(t *testing.T) {
	sp := Spec{
		Machines: []string{"SP2"}, Ops: []machine.Op{machine.OpBroadcast},
		Sizes: []int{2, 4}, Lengths: []int{4, 1024}, Config: tinyCfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	simCold := (&Runner{Cache: cache}).Run(scns)
	analytic := (&Runner{Cache: cache, Backend: estimate.PaperAnalytic()}).Run(scns)
	for i, r := range analytic {
		if r.Cached {
			t.Fatalf("%s: analytic run served a sim cache entry", r.Scenario.ID())
		}
		if r.Backend != estimate.BackendAnalytic {
			t.Fatalf("%s: backend label %q", r.Scenario.ID(), r.Backend)
		}
		if r.Sample.Micros == simCold[i].Sample.Micros {
			t.Fatalf("%s: analytic estimate equals the sim sample exactly — cross-contamination?",
				r.Scenario.ID())
		}
	}
	simWarm := (&Runner{Cache: cache}).Run(scns)
	for i, r := range simWarm {
		if !r.Cached || r.Sample != simCold[i].Sample {
			t.Fatalf("%s: sim warm run lost its own cache entry", r.Scenario.ID())
		}
	}
	analyticWarm := (&Runner{Cache: cache, Backend: estimate.PaperAnalytic()}).Run(scns)
	for i, r := range analyticWarm {
		if !r.Cached || r.Sample != analytic[i].Sample {
			t.Fatalf("%s: analytic warm run lost its own cache entry", r.Scenario.ID())
		}
	}
}

// TestCachePiecewiseExpressionRoundTrip: a segmented fit survives the
// on-disk *.expr.json envelope segment for segment — the persistence
// path the refit-piecewise registry entry rides.
func TestCachePiecewiseExpressionRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := fit.Expression{
		Startup: fit.Form{Kind: fit.Log, A: 55, B: 30},
		PerByte: fit.Form{Kind: fit.Linear, A: 0.014, B: 0.053},
		Segments: []fit.Segment{
			{MMin: 4, MMax: 1024,
				Startup: fit.Form{Kind: fit.Log, A: 54, B: 31},
				PerByte: fit.Form{Kind: fit.Linear, A: 0.002, B: 0.01}},
			{MMin: 1024, MMax: 65536,
				Startup: fit.Form{Kind: fit.Log, A: 80, B: 120},
				PerByte: fit.Form{Kind: fit.Linear, A: 0.016, B: -0.004}},
		},
	}
	if err := cache.PutExpression("cafe", "T3D/broadcast piecewise", e); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.GetExpression("cafe")
	if !ok || !reflect.DeepEqual(got, e) {
		t.Fatalf("piecewise expression drifted through the cache:\n  put %+v\n  got %+v", e, got)
	}
	if !got.IsPiecewise() {
		t.Fatal("segments lost in persistence")
	}
	// An affine expression must come back with no segments at all (nil,
	// not empty), keeping pre-piecewise JSON byte-compatible.
	affine := fit.Expression{Startup: fit.Form{Kind: fit.Linear, A: 24, B: 90}}
	if err := cache.PutExpression("beef", "affine", affine); err != nil {
		t.Fatal(err)
	}
	if got, _ := cache.GetExpression("beef"); got.Segments != nil {
		t.Fatalf("affine expression grew segments: %+v", got)
	}
}

func TestCacheExpressionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := fit.Expression{
		Startup: fit.Form{Kind: fit.Log, A: 55, B: 30},
		PerByte: fit.Form{Kind: fit.Linear, A: 0.014, B: 0.053},
	}
	if err := cache.PutExpression("feedbead", "SP2/broadcast", e); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.GetExpression("feedbead"); !ok || !reflect.DeepEqual(got, e) {
		t.Fatalf("GetExpression = %+v, %v; want stored expression", got, ok)
	}
	// Expressions and samples live in separate namespaces: a sample
	// under the same key must not satisfy an expression lookup.
	if _, ok := cache.Get("feedbead"); ok {
		t.Fatal("expression entry served as a sample")
	}
	if err := os.WriteFile(filepath.Join(dir, "feedbead.expr.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetExpression("feedbead"); ok {
		t.Fatal("corrupt expression served as a hit")
	}
	var nilCache *Cache
	if _, ok := nilCache.GetExpression("k"); ok {
		t.Fatal("nil cache expression hit")
	}
	if err := nilCache.PutExpression("k", "id", e); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerAnalyticMatchesModel checks the analytic backend rides the
// runner unchanged: every result equals the closed-form prediction and
// the artifacts stay byte-identical across worker counts.
func TestRunnerAnalyticMatchesModel(t *testing.T) {
	sp := Spec{
		Machines: []string{"SP2", "T3D"},
		Ops:      []machine.Op{machine.OpBarrier, machine.OpAlltoall},
		Sizes:    []int{4, 16}, Lengths: []int{4, 4096},
		Config: tinyCfg,
	}
	scns, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	backend := estimate.PaperAnalytic()
	serial := (&Runner{Workers: 1, Backend: backend}).Run(scns)
	parallel := (&Runner{Workers: 8, BatchSize: 1, Backend: backend}).Run(scns)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("analytic results differ between 1 and 8 workers")
	}
	pr := backend.Predictor()
	for _, r := range serial {
		want := pr.Time(r.Scenario.Machine, r.Scenario.Op, r.Scenario.M, r.Scenario.P)
		if r.Sample.Micros != want {
			t.Fatalf("%s: %v, model says %v", r.Scenario.ID(), r.Sample.Micros, want)
		}
	}
}

func TestCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := measure.Sample{Machine: "SP2", Op: machine.OpBroadcast, P: 4, M: 64, Micros: 12.5}
	if err := cache.Put("deadbeef", "id", s); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.Get("deadbeef"); !ok || got != s {
		t.Fatalf("Get = %+v, %v; want stored sample", got, ok)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("deadbeef"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A syntactically valid entry stored under the wrong name must not
	// satisfy a different key.
	if err := cache.Put("feedface", "id", s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "feedface.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cafebabe.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("cafebabe"); ok {
		t.Fatal("entry with mismatched key served as a hit")
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatal("empty dir should disable caching")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", "id", measure.Sample{}); err != nil {
		t.Fatal(err)
	}
}

func TestBestAlgorithmsAndWinCounts(t *testing.T) {
	mk := func(alg string, p, m int, micros float64) Result {
		return Result{
			Scenario: Scenario{Machine: "SP2", Op: machine.OpAlltoall, Algorithm: alg, P: p, M: m},
			Sample:   measure.Sample{Micros: micros},
		}
	}
	results := []Result{
		mk("pairwise", 4, 64, 10), mk("bruck", 4, 64, 8),
		mk("pairwise", 8, 64, 20), mk("bruck", 8, 64, 30),
		mk("pairwise", 16, 64, 5), // single variant: no decision
	}
	ds := BestAlgorithms(results)
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2", len(ds))
	}
	if ds[0].Best != "bruck" || ds[0].RunnerUp != "pairwise" || ds[0].Margin() != 10.0/8 {
		t.Fatalf("p=4 decision wrong: %+v", ds[0])
	}
	if ds[1].Best != "pairwise" || ds[1].RunnerUpMicros != 30 {
		t.Fatalf("p=8 decision wrong: %+v", ds[1])
	}
	wc := WinCounts(ds)
	if len(wc) != 2 || wc[0].Wins != 1 || wc[0].Points != 2 {
		t.Fatalf("win counts wrong: %+v", wc)
	}
}

func TestPairAndValidationReport(t *testing.T) {
	mk := func(op machine.Op, p, m int, micros float64) Result {
		return Result{
			Scenario: Scenario{Machine: "SP2", Op: op, Algorithm: DefaultAlgorithm, P: p, M: m},
			Sample:   measure.Sample{Micros: micros},
		}
	}
	ref := []Result{
		mk(machine.OpBroadcast, 8, 4, 100),
		mk(machine.OpBroadcast, 8, 1024, 200),
		mk(machine.OpBarrier, 8, 0, 50),
	}
	est := []Result{
		mk(machine.OpBroadcast, 8, 4, 110), // 10% high
		mk(machine.OpBroadcast, 8, 1024, 190),
		mk(machine.OpBarrier, 8, 0, 50), // exact
	}
	pairs, err := Pair(ref, est)
	if err != nil {
		t.Fatal(err)
	}
	errs := RelErrors(pairs)
	want := []float64{0.1, 0.05, 0}
	for i, e := range errs {
		if d := e - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("rel errors %v, want %v", errs, want)
		}
	}
	var b bytes.Buffer
	if err := WriteValidation(&b, "t", pairs, &ValidationTiming{
		Backend: "calibrated", RefSeconds: 10, EstSeconds: 10, WarmSeconds: 0.01,
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"| 3 | 5.00% |", "1000×", "| SP2 | broadcast |", "m=1024"} {
		if !bytes.Contains(b.Bytes(), []byte(needle)) {
			t.Fatalf("report missing %q:\n%s", needle, out)
		}
	}

	// Pairing rejects mismatched runs.
	if _, err := Pair(ref, est[:2]); err == nil {
		t.Fatal("Pair accepted mismatched lengths")
	}
	swapped := []Result{est[1], est[0], est[2]}
	if _, err := Pair(ref, swapped); err == nil {
		t.Fatal("Pair accepted scenario mismatch")
	}
}

func TestToDatasetPreservesGridOrder(t *testing.T) {
	scns := []Scenario{
		{Machine: "SP2", Op: machine.OpBroadcast, P: 2, M: 4},
		{Machine: "SP2", Op: machine.OpBroadcast, P: 2, M: 16},
		{Machine: "SP2", Op: machine.OpBroadcast, P: 4, M: 4},
	}
	var results []Result
	for i, sc := range scns {
		results = append(results, Result{Scenario: sc, Sample: measure.Sample{Micros: float64(i + 1)}})
	}
	d := ToDataset(results)
	if len(d.Points) != 3 {
		t.Fatalf("got %d points", len(d.Points))
	}
	if v, ok := d.At(4, 4); !ok || v != 3 {
		t.Fatalf("At(4,4) = %v, %v", v, ok)
	}
}
