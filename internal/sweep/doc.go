// Package sweep is the scenario-sweep engine of the reproduction: it
// expands a declarative experiment grid into concrete scenarios, fans
// them out across CPU cores, caches results under content keys, and
// aggregates the outcome into decision tables, validation reports, and
// loadable error tables.
//
// # Grids and execution
//
// A Spec declares the grid — machine preset × collective operation ×
// algorithm variant × message length × machine size × measurement
// methodology — and Expand materializes it in deterministic order;
// zero-value fields select the paper's own sweep (three machines, seven
// operations, factor-of-four lengths). Runner executes scenarios
// through any estimate.Backend over a bounded worker pool: every
// scenario is an independent seeded simulation (or closed-form
// evaluation), so output is byte-identical for any worker count. For
// calibrated backends the runner bulk-calibrates the grid's triples
// first (phase 2 of Run), so cold sweeps parallelize calibration
// instead of serializing behind first-touch fits.
//
// # The content-keyed cache
//
// Cache persists three artifact kinds in one directory, all atomically
// written and all keyed by content:
//
//   - *.json       measured samples, keyed by scenario + machine
//     calibration fingerprint + backend identity/provenance
//   - *.expr.json  fitted expressions (estimate.ExpressionStore), keyed
//     by the full calibration spec including the fit family — affine
//     and piecewise fits can never be confused
//   - *.errors.json  validation error tables, keyed by the candidate
//     backend's provenance (estimate.ErrorTableKey)
//
// Content keys mean invalidation is automatic: editing a machine
// preset, switching backends, recalibrating, or changing the fit family
// simply stops matching the stale entries. cacheVersion (samples) and
// the calibration version inside expression keys are bumped whenever
// semantics change in ways the key fields cannot capture.
//
// # Validation and error bounds
//
// Pair matches a sim (ground truth) pass against a candidate backend's
// pass over the same expansion; WriteValidation renders the paper-style
// relative-error report, including the mid-length window (m ∈ [256,
// 4096]) where protocol switches make the affine model weakest.
// BuildErrorTable condenses the pairs into a per-(machine, op, m)
// estimate.ErrorTable, and AttachBounds wires persisted tables to
// registry entries at service startup — the provenance key guarantees a
// recalibrated backend never serves stale bounds.
package sweep
