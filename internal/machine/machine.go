// Package machine defines the three multicomputers evaluated in the
// paper — the IBM SP2, the Cray T3D, and the Intel Paragon — as
// parameter sets over the network fabric, plus the per-operation cost
// model of each vendor's MPI messaging layer.
//
// Hardware constants (hop latency, link bandwidth, special hardware such
// as the T3D's hardwired barrier tree and block-transfer engine) come
// straight from the paper (§4, §5) and its references. Software
// constants — per-message CPU overheads and effective per-node injection
// bandwidths, which differ per collective because each vendor MPI used a
// different code path per operation — are calibrated against the paper's
// own fitted expressions (Table 3). DESIGN.md §2 documents this
// substitution: without the 1990s hardware the paper's closed forms are
// the only available ground truth.
package machine

import (
	"fmt"
	"math"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Op names a collective (or point-to-point) operation class for cost
// lookup. These are the seven operations the paper evaluates plus the
// extension operations we also implement.
type Op string

// Operation classes.
const (
	OpP2P       Op = "p2p"
	OpBarrier   Op = "barrier"
	OpBroadcast Op = "broadcast"
	OpGather    Op = "gather"
	OpScatter   Op = "scatter"
	OpAlltoall  Op = "alltoall" // the paper's "total exchange"
	OpReduce    Op = "reduce"
	OpScan      Op = "scan"
	OpAllgather Op = "allgather"
	OpAllreduce Op = "allreduce"
)

// Ops lists the seven operations evaluated in the paper, in the order
// they appear in Table 3.
var Ops = []Op{OpBarrier, OpBroadcast, OpGather, OpScatter, OpReduce, OpScan, OpAlltoall}

// TopoKind selects the interconnect family of a machine.
type TopoKind int

// Interconnect families of the three machines.
const (
	TopoOmega TopoKind = iota // IBM SP2 multistage High Performance Switch
	TopoTorus                 // Cray T3D 3-D torus
	TopoMesh                  // Intel Paragon 2-D mesh
)

// Tuning holds the per-operation software cost parameters of a vendor
// MPI code path. Zero values fall back to the machine-wide defaults.
type Tuning struct {
	// SendOverhead is the sender CPU time per message on this code
	// path. Zero means the machine default.
	SendOverhead sim.Duration
	// RecvOverhead is the receiver CPU time per message.
	RecvOverhead sim.Duration
	// InjMBs is the effective per-node injection/ejection bandwidth in
	// MB/s seen by this operation (protocol processing and memory
	// copies included). Zero means the machine default.
	InjMBs float64
	// BigInjMBs, if nonzero, replaces InjMBs for messages of at least
	// BigThreshold bytes (the T3D's block-transfer engine).
	BigInjMBs    float64
	BigThreshold int
	// CombinePerByte is the per-byte cost of the arithmetic combine
	// step (reduce, scan) on this machine's CPU.
	CombinePerByte sim.Duration // per byte, in ns scaled: use FromMicros(x)/1000 style
	// CallOverhead is a fixed per-collective-call CPU cost at every
	// rank (argument checking, buffer setup, communicator lookup). It
	// is the constant term of the paper's startup-latency fits.
	CallOverhead sim.Duration
}

// Params fully describes a machine model.
type Params struct {
	Name     string
	Topo     TopoKind
	MaxNodes int // largest allocation the paper had (64 on the T3D)

	Net network.Params

	// Machine-wide default software overheads per message.
	SendOverhead sim.Duration
	RecvOverhead sim.Duration

	// HardwareBarrier enables the T3D's dedicated AND-tree barrier
	// network: Barrier cost = BarrierBase + BarrierPerLog·log2(p),
	// independent of the data network.
	HardwareBarrier bool
	BarrierBase     sim.Duration
	BarrierPerLog   sim.Duration

	// NodeMFLOPS is the sustained floating-point rate of one node in
	// MFLOP/s, used by application workloads (the STAP pipeline) to
	// charge computation time. Era-typical sustained rates: the SP2's
	// POWER2 ≈ 100, the T3D's Alpha EV4 ≈ 60, the Paragon's i860XP ≈ 30.
	NodeMFLOPS float64

	// EagerLimit is the message size up to which sends are buffered
	// (the call returns after the CPU copy). Above it the send blocks
	// until the data has left the node — rendezvous-style flow control,
	// which is what keeps a looping sender from running unboundedly
	// ahead of the network. Zero means 4 KB, the era-typical threshold.
	EagerLimit int

	// ClockSkewMax is the maximum per-node clock offset; the paper's
	// nodes were not time-synchronized, which is why its measurement
	// procedure uses a max-reduce of per-rank averages.
	ClockSkewMax sim.Duration
	// JitterFrac adds a uniform random fraction to software overheads,
	// modeling OS interference (§9 factor two).
	JitterFrac float64

	// Tunings holds per-operation overrides.
	Tunings map[Op]Tuning
}

// Machine is an immutable machine description.
type Machine struct {
	p Params
}

// New validates params and returns a machine.
func New(p Params) *Machine {
	if p.Name == "" || p.MaxNodes < 2 {
		panic("machine: invalid params")
	}
	if p.Tunings == nil {
		p.Tunings = map[Op]Tuning{}
	}
	return &Machine{p: p}
}

// Name returns the machine name ("SP2", "T3D", "Paragon").
func (m *Machine) Name() string { return m.p.Name }

// MaxNodes returns the largest machine size available to the study.
func (m *Machine) MaxNodes() int { return m.p.MaxNodes }

// Params returns a copy of the machine parameters.
func (m *Machine) Params() Params { return m.p }

// HardwareBarrier reports whether a dedicated barrier network exists.
func (m *Machine) HardwareBarrier() bool { return m.p.HardwareBarrier }

// BarrierHardwareCost returns the hardwired-barrier completion cost for
// p participating nodes.
func (m *Machine) BarrierHardwareCost(p int) sim.Duration {
	return m.p.BarrierBase + sim.Duration(float64(m.p.BarrierPerLog)*math.Log2(float64(p)))
}

func (m *Machine) tuning(op Op) Tuning { return m.p.Tunings[op] }

// SendCost returns the sender CPU time for one message of op class op.
func (m *Machine) SendCost(op Op) sim.Duration {
	if t := m.tuning(op); t.SendOverhead != 0 {
		return t.SendOverhead
	}
	return m.p.SendOverhead
}

// RecvCost returns the receiver CPU time for one message.
func (m *Machine) RecvCost(op Op) sim.Duration {
	if t := m.tuning(op); t.RecvOverhead != 0 {
		return t.RecvOverhead
	}
	return m.p.RecvOverhead
}

// InjMBs returns the effective injection bandwidth for a message of size
// bytes on op's code path.
func (m *Machine) InjMBs(op Op, size int) float64 {
	t := m.tuning(op)
	mbs := t.InjMBs
	if mbs == 0 {
		mbs = m.p.Net.InjectionMBs
	}
	if t.BigInjMBs != 0 && t.BigThreshold > 0 && size >= t.BigThreshold {
		mbs = t.BigInjMBs
	}
	return mbs
}

// CombineCost returns the arithmetic combine time for size bytes.
func (m *Machine) CombineCost(op Op, size int) sim.Duration {
	t := m.tuning(op)
	return sim.Duration(int64(t.CombinePerByte) * int64(size))
}

// CallCost returns the fixed per-call setup cost of a collective.
func (m *Machine) CallCost(op Op) sim.Duration { return m.tuning(op).CallOverhead }

// EagerLimit returns the largest message size sent without rendezvous
// flow control.
func (m *Machine) EagerLimit() int {
	if m.p.EagerLimit > 0 {
		return m.p.EagerLimit
	}
	return 4096
}

// ComputeTime returns the simulated time to execute flops floating-point
// operations on one node at its sustained rate.
func (m *Machine) ComputeTime(flops float64) sim.Duration {
	rate := m.p.NodeMFLOPS
	if rate <= 0 {
		rate = 50
	}
	return sim.Duration(flops / rate * 1e3) // MFLOP/s → ns per flop
}

// NewTopology builds the interconnect for at least n nodes.
func (m *Machine) NewTopology(n int) topology.Topology {
	switch m.p.Topo {
	case TopoOmega:
		return topology.OmegaForNodes(n)
	case TopoTorus:
		return topology.TorusForNodes(n)
	case TopoMesh:
		return topology.MeshForNodes(n)
	}
	panic(fmt.Sprintf("machine: unknown topology kind %d", m.p.Topo))
}

// Log2Ceil returns ⌈log2(p)⌉ for p ≥ 1; collective tree depths.
func Log2Ceil(p int) int {
	d := 0
	for v := 1; v < p; v *= 2 {
		d++
	}
	return d
}
