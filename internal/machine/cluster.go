package machine

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Cluster is an allocation of p nodes of a machine: a simulation kernel,
// the interconnect fabric, per-node clock skews, and (on the T3D) the
// hardwired barrier network. One MPI process runs per node, as in the
// paper's experiments.
type Cluster struct {
	mach *Machine
	k    *sim.Kernel
	net  *network.Network
	p    int
	skew []sim.Duration

	hw *hwBarrier
}

// NewCluster allocates p nodes of machine m. seed drives the
// deterministic skew/jitter randomness; the same seed reproduces the
// same run exactly.
func NewCluster(m *Machine, p int, seed int64) *Cluster {
	if p < 1 {
		panic("machine: cluster needs ≥ 1 node")
	}
	if p > m.MaxNodes() {
		panic(fmt.Sprintf("machine: %s allocation of %d exceeds the study's maximum of %d nodes",
			m.Name(), p, m.MaxNodes()))
	}
	k := sim.New(seed)
	topo := m.NewTopology(p)
	net := network.New(k, topo, m.Params().Net)
	c := &Cluster{mach: m, k: k, net: net, p: p, skew: make([]sim.Duration, p)}
	maxSkew := m.Params().ClockSkewMax
	if maxSkew > 0 {
		for i := range c.skew {
			c.skew[i] = sim.Duration(k.Rand().Int63n(int64(maxSkew)))
		}
	}
	if m.HardwareBarrier() {
		c.hw = &hwBarrier{c: c, n: p}
		c.hw.sig = sim.NewSignal(k, "hw-barrier")
	}
	return c
}

// Reset returns the cluster to the state NewCluster(m, p, seed)
// produces — kernel clock at zero, reseeded RNG, clean network
// occupancy, freshly drawn clock skews — while reusing the kernel,
// topology, and network storage. It mirrors NewCluster's RNG
// consumption order exactly (skews are drawn first), so a Reset cluster
// reproduces a fresh allocation bit for bit. The kernel must have been
// driven to completion first (sim.Kernel.Reset panics otherwise).
func (c *Cluster) Reset(seed int64) {
	c.k.Reset(seed)
	c.net.Reset()
	maxSkew := c.mach.Params().ClockSkewMax
	for i := range c.skew {
		c.skew[i] = 0
	}
	if maxSkew > 0 {
		for i := range c.skew {
			c.skew[i] = sim.Duration(c.k.Rand().Int63n(int64(maxSkew)))
		}
	}
	if c.hw != nil {
		c.hw.cnt = 0
		c.hw.sig = sim.NewSignal(c.k, "hw-barrier")
	}
}

// Machine returns the machine model.
func (c *Cluster) Machine() *Machine { return c.mach }

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Net returns the fabric.
func (c *Cluster) Net() *network.Network { return c.net }

// Size returns the number of allocated nodes.
func (c *Cluster) Size() int { return c.p }

// LocalClock returns node rank's own wall clock at the current simulated
// instant. Nodes are not time-synchronized (paper §2): each has a fixed
// private offset, which is why the measurement procedure must max-reduce
// per-rank averages rather than subtract timestamps across nodes.
func (c *Cluster) LocalClock(rank int) sim.Time {
	return c.k.Now().Add(c.skew[rank])
}

// Jitter returns a software overhead d inflated by this run's OS noise
// model: a uniform random fraction in [0, JitterFrac).
func (c *Cluster) Jitter(d sim.Duration) sim.Duration {
	f := c.mach.Params().JitterFrac
	if f <= 0 || d <= 0 {
		return d
	}
	return d + sim.Duration(c.k.Rand().Float64()*f*float64(d))
}

// HardwareBarrierEnter blocks proc until all p nodes have entered the
// hardwired barrier, then releases everyone after the AND-tree
// propagation cost. Panics if the machine has no barrier hardware.
func (c *Cluster) HardwareBarrierEnter(proc *sim.Proc) {
	if c.hw == nil {
		panic("machine: " + c.mach.Name() + " has no hardware barrier")
	}
	c.hw.enter(proc)
}

// hwBarrier models the T3D's dedicated AND-tree barrier network: a
// single-wire reduction whose completion time is independent of the data
// network and nearly independent of machine size.
type hwBarrier struct {
	c   *Cluster
	n   int
	cnt int
	sig *sim.Signal
}

func (b *hwBarrier) enter(proc *sim.Proc) {
	b.cnt++
	sig := b.sig
	if b.cnt == b.n {
		// Last arrival: the AND-tree fires after the propagation cost.
		b.cnt = 0
		b.sig = sim.NewSignal(b.c.k, "hw-barrier")
		cost := b.c.mach.BarrierHardwareCost(b.n)
		done := sig
		b.c.k.After(cost, func() { done.Resolve(struct{}{}) })
	}
	sig.Await(proc)
}
