package machine_test

// Calibration regression: every (op, p, m) probe point must stay within
// a bounded factor of the paper's Table 3 prediction. This is the
// guardrail for the constants in presets.go — if a change to the
// simulator or the algorithms moves the calibration, this test names the
// point that drifted. Tolerances are deliberately loose (the shape tests
// in internal/core are the real acceptance criteria); documented
// deviations get explicit wider bounds.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/paper"
)

var calCfg = measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 1}

// loose returns the tolerance factor for a probe point. The default is
// 1.6×; points covered by EXPERIMENTS.md "known deviations" get more.
func loose(mach string, op machine.Op, m int) float64 {
	switch {
	case op == machine.OpScatter && m >= 1024:
		return 2.4 // Paragon's unphysical fit; T3D's constant per-byte term
	case op == machine.OpScan && m >= 1024:
		return 2.2 // log-p vs the paper's linear-p per-byte shape
	case op == machine.OpBroadcast && m >= 1024 && m < 65536:
		return 2.0 // mid-range: eager/rendezvous transition
	case op == machine.OpReduce && m == 1024:
		return 1.8
	case op == machine.OpBarrier:
		return 1.6
	default:
		return 1.6
	}
}

func TestCalibrationWithinBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	type probe struct{ p, m int }
	probes := []probe{{8, 4}, {32, 4}, {64, 4}, {32, 1024}, {32, 65536}, {64, 65536}}
	var worst float64 = 1
	var worstName string
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			pe, _ := paper.Expression(mach.Name(), op)
			pts := probes
			if op == machine.OpBarrier {
				pts = []probe{{8, 0}, {32, 0}, {64, 0}}
			}
			for _, pb := range pts {
				got := measure.MeasureOp(mach, op, pb.p, pb.m, calCfg).Micros
				want := pe.Eval(pb.m, pb.p)
				if want <= 0 {
					continue // fits go non-physical at extremes
				}
				ratio := got / want
				tol := loose(mach.Name(), op, pb.m)
				if ratio > tol || ratio < 1/tol {
					t.Errorf("%s/%s p=%d m=%d: measured %.1f µs vs paper %.1f (ratio %.2f, tol %.1f)",
						mach.Name(), op, pb.p, pb.m, got, want, ratio, tol)
				}
				dev := ratio
				if dev < 1 {
					dev = 1 / dev
				}
				if dev > worst {
					worst, worstName = dev, fmt.Sprintf("%s/%s p=%d m=%d", mach.Name(), op, pb.p, pb.m)
				}
			}
		}
	}
	t.Logf("worst calibration deviation: %.2fx at %s", worst, worstName)
}

func TestCalibrationGeometricMeanNearOne(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	// The pointwise test above allows each point a factor; the aggregate
	// must be far tighter — systematic bias would show here.
	var logSum float64
	var n int
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			pe, _ := paper.Expression(mach.Name(), op)
			m := 1024
			if op == machine.OpBarrier {
				m = 0
			}
			got := measure.MeasureOp(mach, op, 32, m, calCfg).Micros
			want := pe.Eval(m, 32)
			if want <= 0 {
				continue
			}
			logSum += math.Log(got / want)
			n++
		}
	}
	geo := math.Exp(logSum / float64(n))
	if geo < 0.8 || geo > 1.25 {
		t.Fatalf("geometric-mean calibration ratio %.2f over %d points, want ≈1", geo, n)
	}
	t.Logf("geometric-mean calibration ratio: %.3f over %d points", geo, n)
}
