package machine

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestPresetsBasics(t *testing.T) {
	for _, m := range All() {
		if m.Name() == "" {
			t.Fatal("unnamed machine")
		}
		if m.MaxNodes() < 64 {
			t.Fatalf("%s: max nodes %d", m.Name(), m.MaxNodes())
		}
		if m.SendCost(OpP2P) <= 0 || m.RecvCost(OpP2P) <= 0 {
			t.Fatalf("%s: nonpositive default overheads", m.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SP2", "T3D", "Paragon"} {
		if m := ByName(name); m == nil || m.Name() != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if ByName("CM-5") != nil {
		t.Fatal("unexpected machine")
	}
}

func TestHopLatenciesMatchPaper(t *testing.T) {
	// Paper §4: 125 ns SP2, 20 ns T3D, 40 ns Paragon.
	want := map[string]sim.Duration{"SP2": 125, "T3D": 20, "Paragon": 40}
	for _, m := range All() {
		if got := m.Params().Net.HopLatency; got != want[m.Name()] {
			t.Errorf("%s hop latency = %v, want %v", m.Name(), got, want[m.Name()])
		}
	}
}

func TestLinkBandwidthsMatchPaper(t *testing.T) {
	// Paper §5: 40, 300, 175 MB/s.
	want := map[string]float64{"SP2": 40, "T3D": 300, "Paragon": 175}
	for _, m := range All() {
		if got := m.Params().Net.LinkBandwidthMBs; got != want[m.Name()] {
			t.Errorf("%s link bandwidth = %v, want %v", m.Name(), got, want[m.Name()])
		}
	}
}

func TestTopologyFamilies(t *testing.T) {
	if _, ok := SP2().NewTopology(64).(*topology.Omega); !ok {
		t.Error("SP2 should build an omega network")
	}
	if _, ok := T3D().NewTopology(64).(*topology.Torus3D); !ok {
		t.Error("T3D should build a torus")
	}
	if _, ok := Paragon().NewTopology(64).(*topology.Mesh2D); !ok {
		t.Error("Paragon should build a mesh")
	}
}

func TestOnlyT3DHasHardwareBarrier(t *testing.T) {
	for _, m := range All() {
		if got, want := m.HardwareBarrier(), m.Name() == "T3D"; got != want {
			t.Errorf("%s hardware barrier = %v", m.Name(), got)
		}
	}
}

func TestT3DBarrierCostNearThreeMicroseconds(t *testing.T) {
	m := T3D()
	for _, p := range []int{2, 16, 64} {
		c := m.BarrierHardwareCost(p)
		if c < us(3) || c > us(3.2) {
			t.Errorf("T3D hardware barrier for p=%d costs %v, want ≈3µs", p, c)
		}
	}
}

func TestTuningFallbacks(t *testing.T) {
	m := SP2()
	// Allgather has no tuning entry: falls back to defaults.
	if m.SendCost(OpAllgather) != m.SendCost(OpP2P) {
		t.Error("allgather send cost should fall back to default")
	}
	// Gather overrides the recv cost.
	if m.RecvCost(OpGather) == m.RecvCost(OpP2P) {
		t.Error("gather recv override not applied")
	}
	// Unknown op: full defaults.
	if m.InjMBs(Op("mystery"), 100) != m.Params().Net.InjectionMBs {
		t.Error("unknown op should use default injection rate")
	}
}

func TestBLTThresholdSwitchesBandwidth(t *testing.T) {
	m := T3D()
	small := m.InjMBs(OpGather, 1024)
	big := m.InjMBs(OpGather, 65536)
	if big <= small {
		t.Fatalf("BLT should raise bulk bandwidth: small=%v big=%v", small, big)
	}
	if big != 213 {
		t.Fatalf("BLT gather rate = %v, want 213", big)
	}
}

func TestCombineCostScalesWithSize(t *testing.T) {
	m := Paragon()
	if m.CombineCost(OpReduce, 0) != 0 {
		t.Error("zero-byte combine should be free")
	}
	c1 := m.CombineCost(OpReduce, 1000)
	c2 := m.CombineCost(OpReduce, 2000)
	if c2 != 2*c1 || c1 <= 0 {
		t.Errorf("combine cost not linear: %v, %v", c1, c2)
	}
}

func TestClusterAllocationLimits(t *testing.T) {
	if NewCluster(T3D(), 64, 1) == nil {
		t.Fatal("64-node T3D should allocate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: the study had at most 64 T3D nodes")
		}
	}()
	NewCluster(T3D(), 128, 1)
}

func TestClusterClockSkewIsStablePerRank(t *testing.T) {
	c := NewCluster(SP2(), 8, 7)
	a := make([]sim.Time, 8)
	for r := 0; r < 8; r++ {
		a[r] = c.LocalClock(r)
	}
	distinct := map[sim.Time]bool{}
	for r := 0; r < 8; r++ {
		if c.LocalClock(r) != a[r] {
			t.Fatal("skew changed between reads at same instant")
		}
		distinct[a[r]] = true
	}
	if len(distinct) < 2 {
		t.Fatal("expected some clock skew across ranks")
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	mk := func() []sim.Time {
		c := NewCluster(Paragon(), 16, 42)
		out := make([]sim.Time, 16)
		for r := range out {
			out[r] = c.LocalClock(r)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different skews")
		}
	}
}

func TestJitterBounded(t *testing.T) {
	c := NewCluster(SP2(), 2, 3)
	base := us(100)
	for i := 0; i < 1000; i++ {
		j := c.Jitter(base)
		if j < base || j > base+base/10 {
			t.Fatalf("jitter out of bounds: %v from %v", j, base)
		}
	}
}

func TestHardwareBarrierReleasesAllAtOnce(t *testing.T) {
	c := NewCluster(T3D(), 8, 1)
	k := c.Kernel()
	var release []sim.Time
	for r := 0; r < 8; r++ {
		r := r
		k.Go("", func(p *sim.Proc) {
			p.Sleep(sim.Duration(r) * 10 * sim.Microsecond) // staggered arrival
			c.HardwareBarrierEnter(p)
			release = append(release, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(70 * sim.Microsecond).Add(T3D().BarrierHardwareCost(8))
	for _, tm := range release {
		if tm != want {
			t.Fatalf("release times %v, want all %v", release, want)
		}
	}
}

func TestHardwareBarrierReusable(t *testing.T) {
	c := NewCluster(T3D(), 4, 1)
	k := c.Kernel()
	count := 0
	for r := 0; r < 4; r++ {
		k.Go("", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				c.HardwareBarrierEnter(p)
				count++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Fatalf("count = %d, want 12", count)
	}
}

func TestNonT3DHardwareBarrierPanics(t *testing.T) {
	c := NewCluster(SP2(), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.HardwareBarrierEnter(nil)
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6, 128: 7}
	for p, want := range cases {
		if got := Log2Ceil(p); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", p, got, want)
		}
	}
}
