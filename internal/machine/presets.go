package machine

import (
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// netParams aliases network.Params for the terse preset tables below.
type netParams = network.Params

// us is a terse microsecond literal helper for the calibration tables.
func us(v float64) sim.Duration { return sim.FromMicros(v) }

// SP2 returns the IBM SP2 model (MHPCC configuration, up to 128 nodes).
//
// Hardware constants (paper §4, §5, [30]): multistage omega network of
// 4×4 Vulcan switch elements, 125 ns per hop, 40 MB/s links. Software
// constants are calibrated to Table 3 of the paper; the derivations are
// noted per operation. The SP2 of the paper runs MPICH, whose collectives
// are binomial-tree based for broadcast/reduce/barrier (O(log p) startup)
// and linear for gather/scatter/alltoall (O(p) startup).
func SP2() *Machine {
	return New(Params{
		Name:     "SP2",
		Topo:     TopoOmega,
		MaxNodes: 128,
		Net:      networkParams(125, 40, 13.3), // hop 125ns; link 40 MB/s; p2p eff ≈13 MB/s
		// Broadcast fit is (55·logp + 30): one binomial stage costs
		// o_send + o_recv + L ≈ 55 µs → 27+27.
		SendOverhead: us(27),
		RecvOverhead: us(27),
		NodeMFLOPS:   100, // sustained POWER2 rate
		ClockSkewMax: us(50),
		JitterFrac:   0.02,
		Tunings: map[Op]Tuning{
			// Barrier (123·logp − 90): gather+release tree, 2·logp
			// stages ⇒ per-stage ≈ 61.5 µs.
			OpBarrier: {SendOverhead: us(31), RecvOverhead: us(30)},
			// Broadcast (55·logp + 30): the critical path is the root's
			// sequential stage sends, so the 55 µs slope is the sender
			// overhead; bytes move at the 40 MB/s link bound, which at
			// p=32 reproduces the fitted 0.123 µs/B total.
			OpBroadcast: {SendOverhead: us(55), RecvOverhead: us(12), InjMBs: 40, CallOverhead: us(20)},
			// Gather (3.7p + 128) + (0.022p)m: the root's per-message
			// drain costs 3.7 µs CPU and bytes eject at ≈45 MB/s
			// (posted receives drained by the adapter).
			OpGather: {RecvOverhead: us(3.7), InjMBs: 45, CallOverhead: us(95)},
			// Scatter (5.8p + 77) + (0.039p)m: 5.8 µs per pipelined
			// non-blocking send, 25.6 MB/s injection.
			OpScatter: {SendOverhead: us(5.8), InjMBs: 25.6, CallOverhead: us(80)},
			// Total exchange (24p + 90) + (0.082p)m: pairwise rounds of
			// 12+12 µs overhead at 12.2 MB/s effective (the paper's §5
			// example: 64 KB × 64 nodes consumed only 33% of raw BW).
			OpAlltoall: {SendOverhead: us(12), RecvOverhead: us(12), InjMBs: 12.2, CallOverhead: us(80)},
			// Reduce (63·logp + 26): per-stage ≈ 62 µs; per-byte stage
			// cost = wire (1/40) + combine (10 ns/B).
			OpReduce: {SendOverhead: us(39), RecvOverhead: us(38), InjMBs: 40, CombinePerByte: 10, CallOverhead: us(30)},
			// Scan (100·logp − 43): recursive doubling with heavyweight
			// stages ≈ 100 µs; combine 27 ns/B on top of the 40 MB/s
			// link bound.
			OpScan: {SendOverhead: us(50), RecvOverhead: us(50), InjMBs: 40, CombinePerByte: 13},
		},
	})
}

// T3D returns the Cray T3D model (Cray Eagan configuration; the paper
// was allocated at most 64 nodes).
//
// Hardware constants (paper §4, [1], [18]): 3-D torus, 20 ns per hop,
// 300 MB/s links, a dedicated hardwired AND-tree barrier (≈3 µs
// regardless of size), a block-transfer engine (BLT) that accelerates
// bulk transfers, and prefetch queues/remote stores that keep software
// overheads far below the other machines'. CRI/EPCC MPI uses an
// unbalanced tree for barrier/broadcast and a binary tree for reduce [6].
func T3D() *Machine {
	return New(Params{
		Name:     "T3D",
		Topo:     TopoTorus,
		MaxNodes: 64,
		Net:      networkParams(20, 300, 27),
		// Broadcast (23·logp + 12): stage ≈ 22 µs → 11+11.
		SendOverhead: us(11),
		RecvOverhead: us(11),
		NodeMFLOPS:   60, // sustained 150 MHz Alpha EV4 rate
		// Hardwired barrier: 0.011·logp + 3 µs (Table 3).
		HardwareBarrier: true,
		BarrierBase:     us(3),
		BarrierPerLog:   us(0.011),
		ClockSkewMax:    us(20),
		JitterFrac:      0.01,
		Tunings: map[Op]Tuning{
			// Broadcast (23·logp + 12): root-send slope 23 µs; ≈77 MB/s
			// per stage.
			OpBroadcast: {SendOverhead: us(23), RecvOverhead: us(6), InjMBs: 77, CallOverhead: us(10)},
			// Gather (5.3p + 30) + (0.0047p)m: BLT drains the root at
			// ≈213 MB/s for bulk data; 5.3 µs per message.
			OpGather: {RecvOverhead: us(5.3), InjMBs: 120, BigInjMBs: 213, BigThreshold: 4096, CallOverhead: us(30)},
			// Scatter (4.3p + 67) + (0.0057p + 0.16)m: the paper's large
			// constant per-byte term makes a pure root-rate model
			// unfittable; ≈110 MB/s splits the difference across the
			// p=32..64 range (EXPERIMENTS.md records the residual).
			OpScatter: {SendOverhead: us(4.3), InjMBs: 110, CallOverhead: us(65)},
			// Total exchange (26p + 8.6) + (0.038p)m: 13+13 µs rounds at
			// ≈26 MB/s effective per node (torus link sharing included).
			OpAlltoall: {SendOverhead: us(13), RecvOverhead: us(13), InjMBs: 31, CallOverhead: us(25)},
			// Reduce (34·logp + 49) + (0.061·logp)m: stage ≈ 34 µs;
			// per-byte = 1/26 + 23 ns combine ≈ 0.061 µs.
			OpReduce: {SendOverhead: us(25), RecvOverhead: us(25), InjMBs: 26, CombinePerByte: 38, CallOverhead: us(25)},
			// Scan (28·logp + 41): stage ≈ 28 µs; per-byte ≈ 0.0535 µs.
			OpScan: {SendOverhead: us(14), RecvOverhead: us(14), InjMBs: 26, CombinePerByte: 18, CallOverhead: us(45)},
		},
	})
}

// Paragon returns the Intel Paragon model (SDSC configuration, up to
// 128 nodes).
//
// Hardware constants (paper §4, [7]): 2-D mesh, 40 ns per hop, 175 MB/s
// links, a dedicated i860 message coprocessor per node. The NX messaging
// layer under MPICH imposes the longest software latencies of the three
// machines — the paper singles out its total exchange and gather
// implementations as "the least efficient schemes" — while the
// coprocessor moves long messages effectively, which is why the Paragon
// overtakes the SP2 once messages grow past ≈1 KB.
func Paragon() *Machine {
	return New(Params{
		Name:     "Paragon",
		Topo:     TopoMesh,
		MaxNodes: 128,
		Net:      networkParams(40, 175, 14),
		// Broadcast (52·logp + 15): stage ≈ 50 µs → 25+25.
		SendOverhead: us(25),
		RecvOverhead: us(25),
		NodeMFLOPS:   30, // sustained i860XP rate
		ClockSkewMax: us(50),
		JitterFrac:   0.02,
		Tunings: map[Op]Tuning{
			// Barrier (147·logp − 66): 2·logp stages ≈ 73.5 µs each.
			OpBarrier: {SendOverhead: us(37), RecvOverhead: us(36)},
			// Broadcast (52·logp + 15): root-send slope 52 µs; stage rate
			// ≈68 MB/s reproduces the fitted 0.073 µs/B total at p=32.
			OpBroadcast: {SendOverhead: us(52), RecvOverhead: us(12), InjMBs: 68, CallOverhead: us(10)},
			// Gather (48p + 15) + (0.0081p)m: NX costs the root 48 µs
			// per message; the coprocessor drains at ≈123 MB/s.
			OpGather: {RecvOverhead: us(48), InjMBs: 110},
			// Scatter (18p + 78) + (0.0031p)m: 18 µs per send. The
			// fitted per-byte rate (322 MB/s) exceeds the physical link
			// rate; we use the 175 MB/s link bound (EXPERIMENTS.md
			// records the deviation).
			OpScatter: {SendOverhead: us(18), InjMBs: 175, CallOverhead: us(75)},
			// Total exchange (97p + 82) + (0.073p)m: the NX path costs
			// 49+48 µs per round at ≈13.7 MB/s effective.
			OpAlltoall: {SendOverhead: us(49), RecvOverhead: us(48), InjMBs: 16, CallOverhead: us(70)},
			// Reduce (77·logp + 3.6) + (0.16·logp)m: stage ≈ 77 µs;
			// per-byte = 1/52 + 130 ns combine ≈ 0.15 µs (slow i860
			// floating-point combine).
			OpReduce: {SendOverhead: us(47), RecvOverhead: us(47), InjMBs: 68, CombinePerByte: 148, CallOverhead: us(10)},
			// Scan (10·logp + 73) + (…+0.28)m: the one operation where
			// NX is cheap (stage ≈ 10 µs) but the combine is the
			// slowest of the three machines (71 ns/B + link).
			OpScan: {SendOverhead: us(5), RecvOverhead: us(5), InjMBs: 175, CombinePerByte: 70, CallOverhead: us(65)},
		},
	})
}

func networkParams(hopNs int64, linkMBs, injMBs float64) netParams {
	return netParams{
		HopLatency:       sim.Duration(hopNs),
		LinkBandwidthMBs: linkMBs,
		InjectionMBs:     injMBs,
	}
}

// All returns the three machine models in the paper's order.
func All() []*Machine { return []*Machine{SP2(), T3D(), Paragon()} }

// Names returns the preset machine names, sorted.
func Names() []string {
	var out []string
	for _, m := range All() {
		out = append(out, m.Name())
	}
	sort.Strings(out)
	return out
}

// ByName returns the machine with the given name, or nil.
func ByName(name string) *Machine {
	for _, m := range All() {
		if m.Name() == name {
			return m
		}
	}
	return nil
}
