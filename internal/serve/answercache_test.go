package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// countingBackend counts Estimate calls — the probe that proves the
// answer cache's single flight actually deduplicates computation.
type countingBackend struct {
	inner estimate.Backend
	calls atomic.Int64
}

func (b *countingBackend) Name() string       { return b.inner.Name() }
func (b *countingBackend) Provenance() string { return b.inner.Provenance() }
func (b *countingBackend) Estimate(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (estimate.Estimate, error) {
	b.calls.Add(1)
	return b.inner.Estimate(ctx, mach, op, algs, p, m, cfg)
}

// cachedServer is testServer plus a bounded answer cache and metrics.
func cachedServer(t *testing.T, size int) *Server {
	t.Helper()
	s := testServer(t)
	s.Cache = NewAnswerCache(size)
	instrument(s)
	return s
}

func cacheHeader(t *testing.T, s *Server, body string) string {
	t.Helper()
	rec := post(t, s, body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Header().Get("X-Estimate-Cache")
}

// TestAnswerCacheHitMissHeader: cold scenarios report miss, warm ones
// hit, and a server without a cache reports bypass — with the
// serve_answer_cache_total series counting per scenario.
func TestAnswerCacheHitMissHeader(t *testing.T) {
	s := cachedServer(t, 1024)
	batch := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	           {"machine":"T3D","op":"broadcast","p":8,"m":1024}]`
	if got := cacheHeader(t, s, batch); got != "miss" {
		t.Fatalf("cold batch X-Estimate-Cache %q, want miss", got)
	}
	if got := cacheHeader(t, s, batch); got != "hit" {
		t.Fatalf("warm batch X-Estimate-Cache %q, want hit", got)
	}
	// A batch mixing a warm scenario with a cold one is still a miss.
	mixed := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	           {"machine":"T3D","op":"broadcast","p":4,"m":16}]`
	if got := cacheHeader(t, s, mixed); got != "miss" {
		t.Fatalf("mixed batch X-Estimate-Cache %q, want miss", got)
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_answer_cache_total{result="miss"}`:   3, // 2 cold + 1 new in mixed
		`serve_answer_cache_total{result="hit"}`:    3, // 2 warm + 1 warm in mixed
		`serve_answer_cache_total{result="bypass"}`: 0,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}

	noCache := testServer(t)
	instrument(noCache)
	if got := cacheHeader(t, noCache, batch); got != "bypass" {
		t.Fatalf("cacheless X-Estimate-Cache %q, want bypass", got)
	}
	vals = promValues(t, get(t, noCache, "/metrics").Body.String())
	if got := vals[`serve_answer_cache_total{result="bypass"}`]; got != 2 {
		t.Errorf("bypass total = %d, want 2", got)
	}
}

// TestAnswerCacheIdenticalAnswers: cached answers are the same bytes as
// computed ones — the cache is invisible except for speed.
func TestAnswerCacheIdenticalAnswers(t *testing.T) {
	s := cachedServer(t, 1024)
	body := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	          {"machine":"T3D","op":"broadcast","p":8,"m":65536}]`
	cold := post(t, s, body, "").Body.String()
	warm := post(t, s, body, "").Body.String()
	if cold != warm {
		t.Fatalf("cached response differs:\n%s\nvs\n%s", cold, warm)
	}
	// And matches the cacheless server's bytes exactly.
	plain := post(t, testServer(t), body, "").Body.String()
	if cold != plain {
		t.Fatalf("cached response differs from uncached:\n%s\nvs\n%s", cold, plain)
	}
}

// TestAnswerCacheSingleFlight: many concurrent requests for one cold
// scenario compute it exactly once and produce exact hit/miss totals —
// the concurrency contract the race gate runs under -race.
func TestAnswerCacheSingleFlight(t *testing.T) {
	counting := &countingBackend{inner: estimate.PaperAnalytic()}
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "counted", Description: "analytic behind a call counter", Backend: counting,
	}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, Default: "counted", Sim: estimate.Sim{}, Config: tinyCfg,
		Cache: NewAnswerCache(64)}
	instrument(s)

	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := post(t, s, `{"machine":"SP2","op":"alltoall","p":8,"m":1024}`, "")
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String()))
			}
		}()
	}
	wg.Wait()

	if calls := counting.calls.Load(); calls != 1 {
		t.Fatalf("backend computed %d times for one scenario, want 1 (single flight)", calls)
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if miss := vals[`serve_answer_cache_total{result="miss"}`]; miss != 1 {
		t.Errorf("miss total = %d, want exactly 1", miss)
	}
	if hit := vals[`serve_answer_cache_total{result="hit"}`]; hit != clients-1 {
		t.Errorf("hit total = %d, want exactly %d", hit, clients-1)
	}
}

// TestAnswerCacheInvalidation: the cache key carries the backend's
// provenance, so a recalibrated backend — here a second calibrated
// entry over a different grid — never sees the old entry's answers,
// while an identically-provenanced backend shares them.
func TestAnswerCacheInvalidation(t *testing.T) {
	memo := estimate.NewSampleMemo()
	mkCal := func(lengths []int) *estimate.Calibrated {
		return &estimate.Calibrated{
			Config: tinyCfg, Sizes: []int{4, 8}, Lengths: lengths, Memo: memo,
		}
	}
	calA, calB := mkCal([]int{16, 1024}), mkCal([]int{16, 2048})
	calTwin := mkCal([]int{16, 1024}) // same grid as A: same provenance
	if calA.Provenance() == calB.Provenance() {
		t.Fatal("fixture broken: different grids share a provenance")
	}
	reg := estimate.NewRegistry()
	for name, cal := range map[string]*estimate.Calibrated{
		"cal-a": calA, "cal-b": calB, "cal-twin": calTwin,
	} {
		if err := reg.Register(&estimate.Entry{
			Name: name, Description: name, Backend: cal, Ranges: cal.Range,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := &Server{Registry: reg, Default: "cal-a", Sim: estimate.Sim{Memo: memo}, Config: tinyCfg,
		Cache: NewAnswerCache(1024)}

	const body = `{"machine":"T3D","op":"broadcast","p":8,"m":16}`
	header := func(registry string) string {
		rec := post(t, s, body, "registry="+registry)
		if rec.Code != http.StatusOK {
			t.Fatalf("registry %s: status %d: %s", registry, rec.Code, rec.Body.String())
		}
		return rec.Header().Get("X-Estimate-Cache")
	}
	if got := header("cal-a"); got != "miss" {
		t.Fatalf("cold cal-a: %q, want miss", got)
	}
	if got := header("cal-a"); got != "hit" {
		t.Fatalf("warm cal-a: %q, want hit", got)
	}
	// A different provenance is a different epoch: no stale answer.
	if got := header("cal-b"); got != "miss" {
		t.Fatalf("cal-b after cal-a: %q, want miss (provenance change must invalidate)", got)
	}
	// An identical provenance shares the epoch — and the answers.
	if got := header("cal-twin"); got != "hit" {
		t.Fatalf("cal-twin after cal-a: %q, want hit (identical provenance shares)", got)
	}
	// The original epoch is untouched by the recalibrated entry's traffic.
	if got := header("cal-a"); got != "hit" {
		t.Fatalf("cal-a after cal-b: %q, want hit", got)
	}
}

// TestAnswerCacheEviction: the cache never exceeds its configured
// capacity, and evicted scenarios simply recompute as misses.
func TestAnswerCacheEviction(t *testing.T) {
	s := cachedServer(t, acShards) // one answer per shard
	if s.Cache.Cap() != acShards {
		t.Fatalf("Cap() = %d, want %d", s.Cache.Cap(), acShards)
	}
	for m := 0; m < 64; m++ {
		body := fmt.Sprintf(`{"machine":"T3D","op":"broadcast","p":8,"m":%d}`, m)
		if rec := post(t, s, body, ""); rec.Code != http.StatusOK {
			t.Fatalf("m=%d: status %d: %s", m, rec.Code, rec.Body.String())
		}
		if n := s.Cache.Len(); n > s.Cache.Cap() {
			t.Fatalf("after %d scenarios: Len() = %d exceeds Cap() = %d", m+1, n, s.Cache.Cap())
		}
	}
	if s.Cache.Len() == 0 {
		t.Fatal("cache empty after traffic")
	}
}
