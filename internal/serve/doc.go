// Package serve exposes the estimation engine over HTTP/JSON — the
// paper's closing promise ("predict collective performance without
// running the machine") as a queryable network service.
//
// # Endpoints
//
//	POST /v1/estimate   single scenario, a bare scenario array, or an
//	                    envelope {registry, scenarios:[...]}
//	GET  /v1/registry   the registered expression sets
//
// Every request selects a named expression set from an
// estimate.Registry (paper-table3, refit-default, refit-adaptive,
// refit-piecewise, or anything the embedding process registered);
// batched scenarios fan out across a bounded worker pool, and cold
// calibrated batches bulk-calibrate their (machine, op, algorithm)
// triples first, so a request never serializes behind one triple's
// first fit.
//
// # Honesty guarantees
//
// Three response features keep answers honest:
//
//   - expected_error: closed-form answers attach the relative-error
//     bound a `sweep -validate` run measured for that (machine, op, m)
//     cell — rel_median, rel_max, the validated basis_m the bound comes
//     from, and how many scenarios it pooled. Piecewise expression sets
//     confine the lookup to the protocol segment that produced the
//     answer (segment_m_min/segment_m_max on the bound), so a bound is
//     never borrowed across a regime boundary.
//   - fallback/fallback_reason: scenarios outside the expression set's
//     calibrated (p, m) envelope, pairs the set never fitted, and
//     algorithm variants a fixed set cannot distinguish are answered by
//     the exact simulator — flagged, never silently extrapolated.
//   - provenance: the response envelope and the X-Estimate-Registry/
//     X-Estimate-Backend/X-Estimate-Provenance headers identify the
//     expression set, backend, and calibration-spec hash (including the
//     fit family) that produced the numbers.
//
// Unknown machine/operation/algorithm/registry names are 400s listing
// the valid names (estimate.UnknownNameError). Responses are
// byte-stable for a fixed registry and golden-tested (testdata/).
package serve
