package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Scenario is one requested prediction — the wire form of a sweep grid
// point. Barrier scenarios are normalized to m = 0.
type Scenario struct {
	Machine   string `json:"machine"`
	Op        string `json:"op"`
	Algorithm string `json:"algorithm,omitempty"` // "" or "default": the vendor table
	P         int    `json:"p"`
	M         int    `json:"m"`
}

// Bound is the expected-error annotation of a closed-form answer,
// copied from the registry entry's sim-validated error table.
type Bound struct {
	// RelMedian and RelMax summarize the validated relative error of
	// the answering expression set on this (machine, op, m) cell.
	RelMedian float64 `json:"rel_median"`
	RelMax    float64 `json:"rel_max"`
	// BasisM is the validated message length the bound comes from —
	// equal to the request's m when the validation grid contained it,
	// otherwise the nearest validated length on a log scale. For
	// piecewise expression sets the lookup is confined to the protocol
	// segment that produced the answer, so a bound is never borrowed
	// across a regime boundary.
	BasisM int `json:"basis_m"`
	// Points is how many validated scenarios the cell pooled.
	Points int `json:"points"`
	// SegmentMMin/SegmentMMax delimit the fitted message-length segment
	// that answered a piecewise estimate; both are absent on single-
	// segment (affine) answers.
	SegmentMMin int `json:"segment_m_min,omitempty"`
	SegmentMMax int `json:"segment_m_max,omitempty"`
}

// Answer is one scenario's response.
type Answer struct {
	Scenario
	// Micros is the predicted (or, on fallback, simulated) headline
	// time in µs.
	Micros float64 `json:"micros"`
	// Backend names what actually answered: the registry entry's
	// backend, or "sim" on fallback.
	Backend string `json:"backend"`
	// Fallback is set when the scenario left the entry's calibrated
	// (p, m) envelope and the exact simulator answered instead.
	Fallback       bool   `json:"fallback,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// ExpectedError bounds closed-form answers whose entry carries a
	// validated error table; absent on fallback (sim is the reference)
	// and on entries never validated.
	ExpectedError *Bound `json:"expected_error,omitempty"`
}

// Response is the estimate endpoint's envelope. Answers preserve
// request order, so the encoding is byte-stable for a fixed registry.
type Response struct {
	// Registry, Backend, and Provenance identify the expression set
	// that served the request (also exposed as X-Estimate-* headers).
	Registry   string   `json:"registry"`
	Backend    string   `json:"backend"`
	Provenance string   `json:"provenance,omitempty"`
	Answers    []Answer `json:"answers"`
}

// RegistryInfo is one row of the registry listing.
type RegistryInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Backend     string `json:"backend"`
	Provenance  string `json:"provenance,omitempty"`
	// BoundsCells is the size of the entry's attached error table;
	// zero means answers from this entry carry no expected_error.
	BoundsCells int `json:"bounds_cells"`
}

// RegistryResponse is the registry endpoint's envelope.
type RegistryResponse struct {
	Default    string         `json:"default"`
	Registries []RegistryInfo `json:"registries"`
}

// Server answers prediction requests from a registry of expression
// sets. Configure the fields before calling Handler; the handler itself
// is safe for concurrent use.
type Server struct {
	// Registry is the expression-set registry requests resolve against.
	Registry *estimate.Registry
	// Default is the registry entry served when a request names none.
	Default string
	// Sim answers out-of-range scenarios exactly; give it a SampleMemo
	// to dedup repeated fallback simulations.
	Sim estimate.Sim
	// Config is the fallback simulation methodology; zero means
	// measure.Fast() — deterministic, seeded.
	Config measure.Config
	// Workers bounds the per-request estimation pool; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// MaxBatch caps the scenarios of one request; ≤ 0 means 10000.
	MaxBatch int
	// MaxMessage caps a scenario's message length, bounding the cost a
	// single fallback simulation can impose; ≤ 0 means 16 MiB.
	MaxMessage int
	// Cache, when non-nil, memoizes finished answers per scenario —
	// keyed by the entry's epoch (backend + provenance, so
	// recalibration self-invalidates), the fallback-sim methodology,
	// the machine fingerprint, and the resolved scenario. Repeated
	// traffic then skips estimation and bound lookup entirely. Nil
	// disables caching (every request reports "bypass").
	Cache *AnswerCache
	// DisableWire turns off the binary and NDJSON codecs: only the
	// JSON content types are accepted, everything else is a 415. The
	// zero value serves all three.
	DisableWire bool
	// Obs, when non-nil, records the serving metrics (see NewMetrics)
	// and mounts GET /metrics and GET /debug/vars on the handler. Nil
	// serving pays one branch per request and never reads the clock.
	Obs *Metrics
	// Logger, when non-nil, receives structured access logs: one debug
	// line per estimate request with outcome and per-stage timings.
	// Lifecycle messages (listening, draining) belong to the caller.
	Logger *obs.Logger

	// epochs caches each entry's interned answer-cache epoch id
	// (Entry.Epoch plus the server's sim-config digest) by entry
	// identity.
	epochs sync.Map // *estimate.Entry → uint64
	// cfgOnce/cfgDigest memoize the fallback-methodology digest folded
	// into every epoch: fallback answers depend on s.config(), so two
	// servers with different methodologies must never share cached
	// answers even over one AnswerCache.
	cfgOnce   sync.Once
	cfgDigest string
	// triples caches name binding per (machine, op, algorithm) triple:
	// the preset constructors build a fresh machine (and algorithm
	// table) on every lookup, which would otherwise dominate a batched
	// request's cost. The valid-triple space is small and fixed, so the
	// cache is naturally bounded; failed resolutions are not cached.
	triplesMu sync.RWMutex
	triples   map[tripleKey]resolved
}

// tripleKey names one (machine, op, algorithm) binding, pre-resolution.
type tripleKey struct {
	mach, op, alg string
}

// maxBodyBytes bounds a request body; the largest legitimate grids are
// a few MB of JSON.
const maxBodyBytes = 16 << 20

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	if s.Obs != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		mux.HandleFunc("GET /debug/vars", s.handleVars)
	}
	return mux
}

func (s *Server) config() measure.Config {
	if s.Config == (measure.Config{}) {
		return measure.Fast()
	}
	return s.Config
}

func (s *Server) maxBatch() int {
	if s.MaxBatch <= 0 {
		return 10000
	}
	return s.MaxBatch
}

func (s *Server) maxMessage() int {
	if s.MaxMessage <= 0 {
		return 16 << 20
	}
	return s.MaxMessage
}

// resolved is a validated scenario, every name bound to its object,
// with the entry's fallback decision computed once up front.
type resolved struct {
	mach *machine.Machine
	op   machine.Op
	alg  string // "default" or a registry variant, validated
	algs mpi.Algorithms
	p, m int
	// fallback, fbKind, and fallbackReason record whether the exact
	// simulator must answer (outside the calibrated envelope, an
	// unfitted pair, or a variant the expression set cannot
	// distinguish) — the kind for metrics, the reason for the answer.
	fallback       bool
	fbKind         fallbackKind
	fallbackReason string
}

// handleEstimate answers POST /v1/estimate. It brackets serveEstimate
// with the per-request instrumentation: in-flight gauge, outcome and
// stage metrics, and the debug access-log line. With neither metrics
// nor debug logging attached the request never reads the clock.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	logging := s.Logger.Enabled(obs.LevelDebug)
	if s.Obs == nil && !logging {
		s.serveEstimate(w, r, nil)
		return
	}
	var tr obs.Trace
	var start time.Time
	if logging {
		start = time.Now()
	}
	s.Obs.begin()
	defer s.Obs.end() // deferred so a panicking request (recovered by net/http) can't leak the in-flight gauge
	st := s.serveEstimate(w, r, &tr)
	s.Obs.observe(st, &tr)
	if logging {
		s.Logger.Debug("estimate",
			obs.F("status", st.status),
			obs.F("registry", st.registry),
			obs.F("scenarios", st.scenarios),
			obs.F("fallbacks", st.fallbacks),
			obs.F("bounds", st.bounds),
			obs.F("duration_ns", time.Since(start).Nanoseconds()),
			obs.F("stage_ns", stageNS(&tr)))
	}
}

// stageNS flattens a trace into the access-log object (encoding/json
// sorts the keys, so lines stay stable).
func stageNS(tr *obs.Trace) map[string]int64 {
	out := make(map[string]int64, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		out[st.String()] = tr.NS(st)
	}
	return out
}

// stageTimer charges a request's sequential stages by chaining marks
// off one base timestamp: a mark is a single monotonic-clock delta
// (time.Since), roughly half the cost of a full time.Now, and the
// stages tile the request with no gaps. The zero value (nil trace) is
// a no-op that never reads the clock.
type stageTimer struct {
	tr   *obs.Trace
	base time.Time
	last time.Duration
}

func newStageTimer(tr *obs.Trace) stageTimer {
	if tr == nil {
		return stageTimer{}
	}
	return stageTimer{tr: tr, base: time.Now()}
}

// mark charges the time since the previous mark to stage st.
func (t *stageTimer) mark(st obs.Stage) {
	if t.tr == nil {
		return
	}
	el := time.Since(t.base)
	t.tr.Add(st, el-t.last)
	t.last = el
}

// skip advances the mark without charging a stage — for spans timed
// elsewhere (the scenario workers charge estimate and bounds).
func (t *stageTimer) skip() {
	if t.tr == nil {
		return
	}
	t.last = time.Since(t.base)
}

// workerTimer accumulates one scenario worker's estimate and bounds
// time locally against the request's base timestamp, flushing to the
// shared trace once when the worker's share of the batch is done —
// per-scenario atomic adds would contend across the pool. A workerTimer
// with a nil trace never reads the clock.
type workerTimer struct {
	tr       *obs.Trace
	base     time.Time
	est, bnd time.Duration
}

// start returns the worker's clock reading before an estimate.
func (w *workerTimer) start() time.Duration {
	if w.tr == nil {
		return 0
	}
	return time.Since(w.base)
}

// estimateDone charges the time since e0 to the estimate stage and
// returns the new reading, the bounds stage's start.
func (w *workerTimer) estimateDone(e0 time.Duration) time.Duration {
	if w.tr == nil {
		return 0
	}
	e1 := time.Since(w.base)
	w.est += e1 - e0
	return e1
}

// boundsDone charges the time since e1 to the bounds stage.
func (w *workerTimer) boundsDone(e1 time.Duration) {
	if w.tr == nil {
		return
	}
	w.bnd += time.Since(w.base) - e1
}

// flush adds the worker's accumulated stage time to the trace.
func (w *workerTimer) flush() {
	if w.tr == nil {
		return
	}
	w.tr.Add(obs.StageEstimate, w.est)
	w.tr.Add(obs.StageBounds, w.bnd)
}

// setProvenance stamps the X-Estimate-* headers identifying the
// expression set that answered (or would have answered) the request.
func setProvenance(w http.ResponseWriter, e *estimate.Entry) {
	h := w.Header()
	h.Set("X-Estimate-Registry", e.Name)
	h.Set("X-Estimate-Backend", e.Backend.Name())
	h.Set("X-Estimate-Provenance", e.Backend.Provenance())
}

// serveEstimate does the work of POST /v1/estimate and reports the
// request's outcome for instrumentation. tr may be nil.
func (s *Server) serveEstimate(w http.ResponseWriter, r *http.Request, tr *obs.Trace) reqStats {
	st := reqStats{status: http.StatusOK, codec: codecUnknown}
	// Until the request names a registry, errors are attributed to the
	// default entry — the one that would have answered — so 4xx/5xx
	// responses carry the same provenance headers as successes. An
	// unknown-registry error clears the entry instead: there is no
	// provenance to claim for a name that resolves to nothing.
	entry, _ := s.Registry.Get(s.Default)
	fail := func(status int, err error) reqStats {
		if entry != nil {
			setProvenance(w, entry)
		}
		writeError(w, status, err)
		st.status = status
		return st
	}
	codec, err := s.negotiate(r)
	if err != nil {
		w.Header().Set("Accept-Post", acceptPost)
		return fail(http.StatusUnsupportedMediaType, err)
	}
	st.codec = codec
	tm := newStageTimer(tr)
	bodyBuf := getBuffer()
	defer putBuffer(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return fail(status, fmt.Errorf("reading request body: %w", err))
	}
	body := bodyBuf.Bytes()
	scr := getScratch()
	defer putScratch(scr)

	// Decode: the codecs differ only here and at encode. JSON and
	// NDJSON produce named scenarios for the resolve loop; the binary
	// frame is resolved through its string table below.
	var regName string
	var scns []Scenario
	switch codec {
	case codecNDJSON:
		scns, err = parseNDJSON(body)
	case codecBinary:
		if err = scr.wreq.Decode(body); err == nil {
			regName = scr.wreq.Registry
		}
	default:
		regName, scns, err = parseEstimateRequest(body)
	}
	tm.mark(obs.StageDecode)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if regName == "" {
		regName = r.URL.Query().Get("registry")
	}
	if regName == "" {
		regName = s.Default
	}
	if entry, err = s.Registry.Get(regName); err != nil {
		return fail(http.StatusBadRequest, err)
	}
	st.registry = entry.Name
	n := len(scns)
	if codec == codecBinary {
		n = len(scr.wreq.Records)
	}
	if n == 0 {
		return fail(http.StatusBadRequest, errors.New("the request carries no scenarios"))
	}
	if n > s.maxBatch() {
		return fail(http.StatusBadRequest,
			fmt.Errorf("%d scenarios exceed the batch cap of %d", n, s.maxBatch()))
	}
	res := scr.resolvedSlice(n)
	if codec == codecBinary {
		if err := s.resolveWire(&scr.wreq, scr, res); err != nil {
			return fail(http.StatusBadRequest, err)
		}
	} else {
		for i, sc := range scns {
			if res[i], err = s.resolve(sc); err != nil {
				return fail(http.StatusBadRequest, fmt.Errorf("scenario %d (%s/%s): %w", i, sc.Machine, sc.Op, err))
			}
		}
	}
	for i := range res {
		res[i].fallbackReason, res[i].fbKind = fallbackReason(entry, res[i])
		res[i].fallback = res[i].fbKind != fbNone
	}
	tm.mark(obs.StageResolve)

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Bulk-calibrate the in-envelope triples of a calibrated entry
	// before fanning out, so a cold batch parallelizes its calibration
	// across triples instead of behind first-touch scenario workers.
	if cal, ok := entry.Backend.(*estimate.Calibrated); ok {
		var triples []estimate.Triple
		for _, rs := range res {
			if !rs.fallback {
				triples = append(triples, estimate.Triple{Machine: rs.mach, Op: rs.op, Alg: rs.alg})
			}
		}
		cal.Precalibrate(triples, workers)
	}
	tm.mark(obs.StageCalibrate)

	var epoch uint64
	if s.Cache != nil {
		epoch = s.entryEpoch(entry)
	}
	answers := scr.answerSlice(len(res))
	cres := scr.cacheSlice(len(res))
	if len(res) == 1 {
		// The common single-scenario request skips the pool and its
		// worker closures entirely.
		wt := workerTimer{tr: tr, base: tm.base}
		answers[0], cres[0] = s.answerCached(entry, epoch, res[0], &wt)
		wt.flush()
	} else {
		fanOut(workers, len(res), func() (func(int), func()) {
			wt := &workerTimer{tr: tr, base: tm.base}
			return func(i int) { answers[i], cres[i] = s.answerCached(entry, epoch, res[i], wt) }, wt.flush
		})
	}
	tm.skip()

	st.scenarios = len(res)
	for i := range res {
		if res[i].fallback {
			st.fallbacks++
			st.kinds[res[i].fbKind]++
		}
		if answers[i].ExpectedError != nil {
			st.bounds++
		}
		switch cres[i] {
		case cacheHit:
			st.cacheHits++
		case cacheMiss:
			st.cacheMisses++
		default:
			st.cacheBypass++
		}
	}

	setProvenance(w, entry)
	w.Header().Set("X-Estimate-Cache", cacheVerdict(s.Cache, st))
	switch codec {
	case codecNDJSON:
		writeNDJSON(w, answers)
	case codecBinary:
		writeWire(w, scr, entry.Name, entry.Backend.Name(), entry.Backend.Provenance(), answers)
	default:
		resp := Response{
			Registry:   entry.Name,
			Backend:    entry.Backend.Name(),
			Provenance: entry.Backend.Provenance(),
			Answers:    answers,
		}
		writeJSON(w, http.StatusOK, resp)
	}
	tm.mark(obs.StageEncode)
	return st
}

// cacheVerdict summarizes a served request's answer-cache interaction
// for the X-Estimate-Cache header: "bypass" when no cache is attached,
// "hit" when every scenario was served from it, "miss" otherwise.
func cacheVerdict(c *AnswerCache, st reqStats) string {
	switch {
	case c == nil:
		return "bypass"
	case st.cacheMisses == 0:
		return "hit"
	default:
		return "miss"
	}
}

// entryEpoch returns the answer-cache epoch id for one registry entry:
// Entry.Epoch (backend + provenance) extended with this server's
// fallback-methodology digest, interned to a small id (see epochID)
// and memoized per entry.
func (s *Server) entryEpoch(e *estimate.Entry) uint64 {
	if ep, ok := s.epochs.Load(e); ok {
		return ep.(uint64)
	}
	s.cfgOnce.Do(func() {
		blob, err := json.Marshal(s.config())
		if err != nil {
			panic(fmt.Sprintf("serve: config digest: %v", err))
		}
		s.cfgDigest = string(blob)
	})
	ep := epochID(e.Epoch() + "\x00" + s.cfgDigest)
	s.epochs.Store(e, ep)
	return ep
}

// Answer-cache verdicts per scenario, accumulated into reqStats and
// the serve_answer_cache_total{result} series.
const (
	cacheBypass uint8 = iota
	cacheHit
	cacheMiss
)

// answerCached serves one resolved scenario through the answer cache:
// a finished answer is returned as-is, a cold key runs s.answer once
// (single flight — concurrent requests for the same cold key wait and
// share), and with no cache attached every scenario computes.
func (s *Server) answerCached(entry *estimate.Entry, epoch uint64, rs resolved, wt *workerTimer) (Answer, uint8) {
	if s.Cache == nil {
		return s.answer(entry, rs, wt), cacheBypass
	}
	k := acKey{
		eid: epoch, fp: estimate.CachedFingerprint(rs.mach),
		op: rs.op, alg: rs.alg, p: rs.p, m: rs.m,
	}
	e, created := s.Cache.get(k)
	if !created && e.done.Load() {
		// The steady-state hit: the answer exists, so skip once.Do —
		// building its closure would be the hit path's only allocation.
		return e.ans, cacheHit
	}
	// Whoever wins the once computes; everyone blocks until the answer
	// exists. The creator is the accounting miss either way.
	e.once.Do(func() {
		e.ans = s.answer(entry, rs, wt)
		e.done.Store(true)
	})
	if created {
		return e.ans, cacheMiss
	}
	return e.ans, cacheHit
}

// parseEstimateRequest accepts the three request shapes: a bare
// scenario object, a bare scenario array, or an envelope
// {registry, scenarios}. The registry name is empty unless the envelope
// carried one.
func parseEstimateRequest(body []byte) (registry string, scns []Scenario, err error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(body, &scns); err != nil {
			return "", nil, fmt.Errorf("decoding scenario array: %w", err)
		}
		return "", scns, nil
	}
	var req struct {
		Registry  string     `json:"registry"`
		Scenarios []Scenario `json:"scenarios"`
		Scenario             // single-scenario shorthand
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", nil, fmt.Errorf("decoding request: %w", err)
	}
	scns = req.Scenarios
	if len(scns) == 0 && req.Scenario != (Scenario{}) {
		scns = []Scenario{req.Scenario}
	}
	return req.Registry, scns, nil
}

// resolve validates one scenario and binds its names.
func (s *Server) resolve(sc Scenario) (resolved, error) {
	rs, err := s.resolveTriple(sc.Machine, sc.Op, sc.Algorithm)
	if err != nil {
		return resolved{}, err
	}
	if err := s.checkPM(&rs, sc.P, sc.M); err != nil {
		return resolved{}, err
	}
	return rs, nil
}

// resolveTriple binds the name part of a scenario — machine, operation,
// algorithm, and the algorithm table the estimate runs under —
// memoized across requests (the triple space is small and fixed; see
// Server.triples). The returned base shares its machine and algorithm
// table between scenarios, which is safe: both are read-only after
// construction.
func (s *Server) resolveTriple(machName, opName, algName string) (resolved, error) {
	k := tripleKey{machName, opName, algName}
	s.triplesMu.RLock()
	rs, ok := s.triples[k]
	s.triplesMu.RUnlock()
	if ok {
		return rs, nil
	}
	mach, err := estimate.ResolveMachine(machName)
	if err != nil {
		return resolved{}, err
	}
	op, err := estimate.ResolveOp(opName)
	if err != nil {
		return resolved{}, err
	}
	alg, err := estimate.ResolveAlgorithm(mach, op, algName)
	if err != nil {
		return resolved{}, err
	}
	algs := mpi.DefaultAlgorithms(mach)
	if alg != sweepDefaultAlg {
		algs = algs.With(op, alg)
	}
	rs = resolved{mach: mach, op: op, alg: alg, algs: algs}
	s.triplesMu.Lock()
	if s.triples == nil {
		s.triples = make(map[tripleKey]resolved)
	}
	s.triples[k] = rs
	s.triplesMu.Unlock()
	return rs, nil
}

// checkPM validates and installs one scenario's (p, m) coordinates on a
// name-resolved base.
func (s *Server) checkPM(rs *resolved, p, m int) error {
	if p < 2 {
		return fmt.Errorf("p=%d: a collective needs at least 2 nodes", p)
	}
	if p > rs.mach.MaxNodes() {
		return fmt.Errorf("p=%d exceeds the %s's %d nodes", p, rs.mach.Name(), rs.mach.MaxNodes())
	}
	if rs.op == machine.OpBarrier {
		m = 0
	}
	if m < 0 {
		return fmt.Errorf("negative message length m=%d", m)
	}
	if m > s.maxMessage() {
		return fmt.Errorf("m=%d exceeds the service cap of %d bytes", m, s.maxMessage())
	}
	rs.p, rs.m = p, m
	return nil
}

// sweepDefaultAlg mirrors sweep.DefaultAlgorithm without importing the
// sweep engine into the serving layer.
const sweepDefaultAlg = "default"

// answer serves one resolved scenario from the entry — or from the
// exact simulator, flagged, when the fallback decision computed at
// resolve time says the entry cannot answer it honestly. Estimate and
// bound-attach time is charged to the worker's timer.
func (s *Server) answer(entry *estimate.Entry, rs resolved, wt *workerTimer) Answer {
	echo := Scenario{Machine: rs.mach.Name(), Op: string(rs.op), Algorithm: rs.alg, P: rs.p, M: rs.m}
	e0 := wt.start()
	if rs.fallback {
		est := s.Sim.Estimate(rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
		wt.estimateDone(e0)
		return Answer{
			Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend,
			Fallback: true, FallbackReason: rs.fallbackReason,
		}
	}
	est := entry.Backend.Estimate(rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
	e1 := wt.estimateDone(e0)
	a := Answer{Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend}
	attachBound(entry, rs, &a)
	wt.boundsDone(e1)
	return a
}

// attachBound annotates a closed-form answer with its validated
// expected-error bound, when the entry carries one.
func attachBound(entry *estimate.Entry, rs resolved, a *Answer) {
	// Piecewise fits answer from one protocol segment; the expected
	// error must come from validated lengths of that same segment, and
	// the answer says which segment served it. Affine entries skip the
	// per-answer expression lookup entirely — it is hot-path work that
	// could only rediscover there are no segments.
	if cal, isCal := entry.Backend.(*estimate.Calibrated); isCal && cal.Fit.Piecewise {
		if seg, isSeg := cal.Expression(rs.mach, rs.op, rs.alg).SegmentFor(rs.m); isSeg {
			if cell, ok := entry.Bounds.BoundIn(rs.mach.Name(), rs.op, rs.m, seg.MMin, seg.MMax); ok {
				a.ExpectedError = &Bound{
					RelMedian: cell.Median, RelMax: cell.Max,
					BasisM: cell.M, Points: cell.Points,
				}
				// BoundIn falls back to a cross-regime neighbor when the
				// validation grid has no cell inside the segment; only an
				// in-segment basis may claim the segment-scoped contract.
				if cell.M >= seg.MMin && cell.M <= seg.MMax {
					a.ExpectedError.SegmentMMin, a.ExpectedError.SegmentMMax = seg.MMin, seg.MMax
				}
			}
			return
		}
	}
	if cell, ok := entry.Bounds.Bound(rs.mach.Name(), rs.op, rs.m); ok {
		a.ExpectedError = &Bound{
			RelMedian: cell.Median, RelMax: cell.Max,
			BasisM: cell.M, Points: cell.Points,
		}
	}
}

// fallbackReason decides whether the scenario must be answered by the
// simulator: outside the entry's calibrated envelope, a pair the
// envelope function disowns, or — whatever the envelope says — a fixed
// expression set that cannot answer the pair honestly, either because
// it has no fit at all (evaluating one would panic deep inside the
// model) or because it only models vendor-default algorithms and the
// request names another variant. The kind is fbNone when the entry
// answers in closed form.
func fallbackReason(entry *estimate.Entry, rs resolved) (string, fallbackKind) {
	if a, ok := entry.Backend.(*estimate.Analytic); ok {
		if !a.Covers(rs.mach.Name(), rs.op) {
			return uncoveredReason(entry, rs), fbUncovered
		}
		// Fixed sets model the vendor-default algorithms only; naming
		// the default variant explicitly is fine, any other variant is
		// a question the set cannot answer.
		if rs.alg != sweepDefaultAlg && rs.alg != mpi.DefaultAlgorithms(rs.mach).Get(rs.op) {
			return fmt.Sprintf("the %s expression set models vendor-default algorithms only, not %s[%s]; answered by the exact simulator",
				entry.Name, rs.op, rs.alg), fbVariant
		}
	}
	in, rng := entry.Covers(rs.mach, rs.op, rs.p, rs.m)
	if in {
		return "", fbNone
	}
	if rng == (estimate.Range{}) {
		return uncoveredReason(entry, rs), fbUncovered
	}
	return fmt.Sprintf("p=%d m=%d is outside the calibrated range %s; answered by the exact simulator",
		rs.p, rs.m, rng), fbOutOfRange
}

func uncoveredReason(entry *estimate.Entry, rs resolved) string {
	return fmt.Sprintf("%s/%s has no %s expression; answered by the exact simulator",
		rs.mach.Name(), rs.op, entry.Name)
}

// handleRegistry answers GET /v1/registry.
func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	entries := s.Registry.Entries()
	resp := RegistryResponse{Default: s.Default, Registries: make([]RegistryInfo, 0, len(entries))}
	for _, e := range entries {
		info := RegistryInfo{
			Name:        e.Name,
			Description: e.Description,
			Backend:     e.Backend.Name(),
			Provenance:  e.Backend.Provenance(),
		}
		if e.Bounds != nil {
			info.BoundsCells = len(e.Bounds.Cells)
		}
		resp.Registries = append(resp.Registries, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// fanOut runs indices 0..n-1 across a bounded worker pool — the
// calibration-pool pattern (jobs channel, WaitGroup), sized like
// Precalibrate. setup runs once per worker and returns the worker's
// per-index fn plus a done hook that runs after its share of the batch
// (worker-local state, e.g. timing accumulators, flushes there).
func fanOut(workers, n int, setup func() (fn func(i int), done func())) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn, done := setup()
		for i := 0; i < n; i++ {
			fn(i)
		}
		done()
		return
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn, done := setup()
			for i := range jobs {
				fn(i)
			}
			done()
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// writeJSON encodes v with the fixed two-space indentation the goldens
// pin down, through a pooled buffer (Encoder with SetIndent produces
// byte-identical output to MarshalIndent plus the trailing newline).
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuffer()
	defer putBuffer(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// writeError emits the JSON error envelope every non-2xx response uses.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
