package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// Scenario is one requested prediction — the wire form of a sweep grid
// point. Barrier scenarios are normalized to m = 0.
type Scenario struct {
	Machine   string `json:"machine"`
	Op        string `json:"op"`
	Algorithm string `json:"algorithm,omitempty"` // "" or "default": the vendor table
	P         int    `json:"p"`
	M         int    `json:"m"`
}

// Bound is the expected-error annotation of a closed-form answer,
// copied from the registry entry's sim-validated error table.
type Bound struct {
	// RelMedian and RelMax summarize the validated relative error of
	// the answering expression set on this (machine, op, m) cell.
	RelMedian float64 `json:"rel_median"`
	RelMax    float64 `json:"rel_max"`
	// BasisM is the validated message length the bound comes from —
	// equal to the request's m when the validation grid contained it,
	// otherwise the nearest validated length on a log scale. For
	// piecewise expression sets the lookup is confined to the protocol
	// segment that produced the answer, so a bound is never borrowed
	// across a regime boundary.
	BasisM int `json:"basis_m"`
	// Points is how many validated scenarios the cell pooled.
	Points int `json:"points"`
	// SegmentMMin/SegmentMMax delimit the fitted message-length segment
	// that answered a piecewise estimate; both are absent on single-
	// segment (affine) answers.
	SegmentMMin int `json:"segment_m_min,omitempty"`
	SegmentMMax int `json:"segment_m_max,omitempty"`
}

// Answer is one scenario's response.
type Answer struct {
	Scenario
	// Micros is the predicted (or, on fallback, simulated) headline
	// time in µs.
	Micros float64 `json:"micros"`
	// Backend names what actually answered: the registry entry's
	// backend, or "sim" on fallback.
	Backend string `json:"backend"`
	// Fallback is set when the scenario left the entry's calibrated
	// (p, m) envelope and the exact simulator answered instead.
	Fallback       bool   `json:"fallback,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// ExpectedError bounds closed-form answers whose entry carries a
	// validated error table; absent on fallback (sim is the reference)
	// and on entries never validated.
	ExpectedError *Bound `json:"expected_error,omitempty"`
}

// Response is the estimate endpoint's envelope. Answers preserve
// request order, so the encoding is byte-stable for a fixed registry.
type Response struct {
	// Registry, Backend, and Provenance identify the expression set
	// that served the request (also exposed as X-Estimate-* headers).
	Registry   string   `json:"registry"`
	Backend    string   `json:"backend"`
	Provenance string   `json:"provenance,omitempty"`
	Answers    []Answer `json:"answers"`
}

// RegistryInfo is one row of the registry listing.
type RegistryInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Backend     string `json:"backend"`
	Provenance  string `json:"provenance,omitempty"`
	// BoundsCells is the size of the entry's attached error table;
	// zero means answers from this entry carry no expected_error.
	BoundsCells int `json:"bounds_cells"`
}

// RegistryResponse is the registry endpoint's envelope.
type RegistryResponse struct {
	Default    string         `json:"default"`
	Registries []RegistryInfo `json:"registries"`
}

// Server answers prediction requests from a registry of expression
// sets. Configure the fields before calling Handler; the handler itself
// is safe for concurrent use.
type Server struct {
	// Registry is the expression-set registry requests resolve against.
	Registry *estimate.Registry
	// Default is the registry entry served when a request names none.
	Default string
	// Sim answers out-of-range scenarios exactly; give it a SampleMemo
	// to dedup repeated fallback simulations.
	Sim estimate.Sim
	// Config is the fallback simulation methodology; zero means
	// measure.Fast() — deterministic, seeded.
	Config measure.Config
	// Workers bounds the per-request estimation pool; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// MaxBatch caps the scenarios of one request; ≤ 0 means 10000.
	MaxBatch int
	// MaxMessage caps a scenario's message length, bounding the cost a
	// single fallback simulation can impose; ≤ 0 means 16 MiB.
	MaxMessage int
}

// maxBodyBytes bounds a request body; the largest legitimate grids are
// a few MB of JSON.
const maxBodyBytes = 16 << 20

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	return mux
}

func (s *Server) config() measure.Config {
	if s.Config == (measure.Config{}) {
		return measure.Fast()
	}
	return s.Config
}

func (s *Server) maxBatch() int {
	if s.MaxBatch <= 0 {
		return 10000
	}
	return s.MaxBatch
}

func (s *Server) maxMessage() int {
	if s.MaxMessage <= 0 {
		return 16 << 20
	}
	return s.MaxMessage
}

// resolved is a validated scenario, every name bound to its object,
// with the entry's fallback decision computed once up front.
type resolved struct {
	mach *machine.Machine
	op   machine.Op
	alg  string // "default" or a registry variant, validated
	algs mpi.Algorithms
	p, m int
	// fallback and fallbackReason record whether the exact simulator
	// must answer (outside the calibrated envelope, an unfitted pair,
	// or a variant the expression set cannot distinguish).
	fallback       bool
	fallbackReason string
}

// handleEstimate answers POST /v1/estimate.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("reading request body: %w", err))
		return
	}
	regName, scns, err := parseEstimateRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if regName == "" {
		regName = r.URL.Query().Get("registry")
	}
	if regName == "" {
		regName = s.Default
	}
	entry, err := s.Registry.Get(regName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(scns) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("the request carries no scenarios"))
		return
	}
	if len(scns) > s.maxBatch() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d scenarios exceed the batch cap of %d", len(scns), s.maxBatch()))
		return
	}
	res := make([]resolved, len(scns))
	for i, sc := range scns {
		if res[i], err = s.resolve(sc); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("scenario %d (%s/%s): %w", i, sc.Machine, sc.Op, err))
			return
		}
		res[i].fallbackReason, res[i].fallback = fallbackReason(entry, res[i])
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Bulk-calibrate the in-envelope triples of a calibrated entry
	// before fanning out, so a cold batch parallelizes its calibration
	// across triples instead of behind first-touch scenario workers.
	if cal, ok := entry.Backend.(*estimate.Calibrated); ok {
		var triples []estimate.Triple
		for _, rs := range res {
			if !rs.fallback {
				triples = append(triples, estimate.Triple{Machine: rs.mach, Op: rs.op, Alg: rs.alg})
			}
		}
		cal.Precalibrate(triples, workers)
	}

	answers := make([]Answer, len(res))
	fanOut(workers, len(res), func(i int) {
		answers[i] = s.answer(entry, res[i])
	})

	resp := Response{
		Registry:   entry.Name,
		Backend:    entry.Backend.Name(),
		Provenance: entry.Backend.Provenance(),
		Answers:    answers,
	}
	w.Header().Set("X-Estimate-Registry", resp.Registry)
	w.Header().Set("X-Estimate-Backend", resp.Backend)
	w.Header().Set("X-Estimate-Provenance", resp.Provenance)
	writeJSON(w, http.StatusOK, resp)
}

// parseEstimateRequest accepts the three request shapes: a bare
// scenario object, a bare scenario array, or an envelope
// {registry, scenarios}. The registry name is empty unless the envelope
// carried one.
func parseEstimateRequest(body []byte) (registry string, scns []Scenario, err error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(body, &scns); err != nil {
			return "", nil, fmt.Errorf("decoding scenario array: %w", err)
		}
		return "", scns, nil
	}
	var req struct {
		Registry  string     `json:"registry"`
		Scenarios []Scenario `json:"scenarios"`
		Scenario             // single-scenario shorthand
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", nil, fmt.Errorf("decoding request: %w", err)
	}
	scns = req.Scenarios
	if len(scns) == 0 && req.Scenario != (Scenario{}) {
		scns = []Scenario{req.Scenario}
	}
	return req.Registry, scns, nil
}

// resolve validates one scenario and binds its names.
func (s *Server) resolve(sc Scenario) (resolved, error) {
	mach, err := estimate.ResolveMachine(sc.Machine)
	if err != nil {
		return resolved{}, err
	}
	op, err := estimate.ResolveOp(sc.Op)
	if err != nil {
		return resolved{}, err
	}
	alg, err := estimate.ResolveAlgorithm(mach, op, sc.Algorithm)
	if err != nil {
		return resolved{}, err
	}
	if sc.P < 2 {
		return resolved{}, fmt.Errorf("p=%d: a collective needs at least 2 nodes", sc.P)
	}
	if sc.P > mach.MaxNodes() {
		return resolved{}, fmt.Errorf("p=%d exceeds the %s's %d nodes", sc.P, mach.Name(), mach.MaxNodes())
	}
	m := sc.M
	if op == machine.OpBarrier {
		m = 0
	}
	if m < 0 {
		return resolved{}, fmt.Errorf("negative message length m=%d", m)
	}
	if m > s.maxMessage() {
		return resolved{}, fmt.Errorf("m=%d exceeds the service cap of %d bytes", m, s.maxMessage())
	}
	algs := mpi.DefaultAlgorithms(mach)
	if alg != sweepDefaultAlg {
		algs = algs.With(op, alg)
	}
	return resolved{mach: mach, op: op, alg: alg, algs: algs, p: sc.P, m: m}, nil
}

// sweepDefaultAlg mirrors sweep.DefaultAlgorithm without importing the
// sweep engine into the serving layer.
const sweepDefaultAlg = "default"

// answer serves one resolved scenario from the entry — or from the
// exact simulator, flagged, when the fallback decision computed at
// resolve time says the entry cannot answer it honestly.
func (s *Server) answer(entry *estimate.Entry, rs resolved) Answer {
	echo := Scenario{Machine: rs.mach.Name(), Op: string(rs.op), Algorithm: rs.alg, P: rs.p, M: rs.m}
	if rs.fallback {
		est := s.Sim.Estimate(rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
		return Answer{
			Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend,
			Fallback: true, FallbackReason: rs.fallbackReason,
		}
	}
	est := entry.Backend.Estimate(rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
	a := Answer{Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend}
	// Piecewise fits answer from one protocol segment; the expected
	// error must come from validated lengths of that same segment, and
	// the answer says which segment served it. Affine entries skip the
	// per-answer expression lookup entirely — it is hot-path work that
	// could only rediscover there are no segments.
	if cal, isCal := entry.Backend.(*estimate.Calibrated); isCal && cal.Fit.Piecewise {
		if seg, isSeg := cal.Expression(rs.mach, rs.op, rs.alg).SegmentFor(rs.m); isSeg {
			if cell, ok := entry.Bounds.BoundIn(rs.mach.Name(), rs.op, rs.m, seg.MMin, seg.MMax); ok {
				a.ExpectedError = &Bound{
					RelMedian: cell.Median, RelMax: cell.Max,
					BasisM: cell.M, Points: cell.Points,
				}
				// BoundIn falls back to a cross-regime neighbor when the
				// validation grid has no cell inside the segment; only an
				// in-segment basis may claim the segment-scoped contract.
				if cell.M >= seg.MMin && cell.M <= seg.MMax {
					a.ExpectedError.SegmentMMin, a.ExpectedError.SegmentMMax = seg.MMin, seg.MMax
				}
			}
			return a
		}
	}
	if cell, ok := entry.Bounds.Bound(rs.mach.Name(), rs.op, rs.m); ok {
		a.ExpectedError = &Bound{
			RelMedian: cell.Median, RelMax: cell.Max,
			BasisM: cell.M, Points: cell.Points,
		}
	}
	return a
}

// fallbackReason decides whether the scenario must be answered by the
// simulator: outside the entry's calibrated envelope, a pair the
// envelope function disowns, or — whatever the envelope says — a fixed
// expression set that cannot answer the pair honestly, either because
// it has no fit at all (evaluating one would panic deep inside the
// model) or because it only models vendor-default algorithms and the
// request names another variant.
func fallbackReason(entry *estimate.Entry, rs resolved) (string, bool) {
	if a, ok := entry.Backend.(*estimate.Analytic); ok {
		if !a.Covers(rs.mach.Name(), rs.op) {
			return uncoveredReason(entry, rs), true
		}
		// Fixed sets model the vendor-default algorithms only; naming
		// the default variant explicitly is fine, any other variant is
		// a question the set cannot answer.
		if rs.alg != sweepDefaultAlg && rs.alg != mpi.DefaultAlgorithms(rs.mach).Get(rs.op) {
			return fmt.Sprintf("the %s expression set models vendor-default algorithms only, not %s[%s]; answered by the exact simulator",
				entry.Name, rs.op, rs.alg), true
		}
	}
	in, rng := entry.Covers(rs.mach, rs.op, rs.p, rs.m)
	if in {
		return "", false
	}
	if rng == (estimate.Range{}) {
		return uncoveredReason(entry, rs), true
	}
	return fmt.Sprintf("p=%d m=%d is outside the calibrated range %s; answered by the exact simulator",
		rs.p, rs.m, rng), true
}

func uncoveredReason(entry *estimate.Entry, rs resolved) string {
	return fmt.Sprintf("%s/%s has no %s expression; answered by the exact simulator",
		rs.mach.Name(), rs.op, entry.Name)
}

// handleRegistry answers GET /v1/registry.
func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	entries := s.Registry.Entries()
	resp := RegistryResponse{Default: s.Default, Registries: make([]RegistryInfo, 0, len(entries))}
	for _, e := range entries {
		info := RegistryInfo{
			Name:        e.Name,
			Description: e.Description,
			Backend:     e.Backend.Name(),
			Provenance:  e.Backend.Provenance(),
		}
		if e.Bounds != nil {
			info.BoundsCells = len(e.Bounds.Cells)
		}
		resp.Registries = append(resp.Registries, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// fanOut runs fn(0..n-1) across a bounded worker pool — the
// calibration-pool pattern (jobs channel, WaitGroup), sized like
// Precalibrate.
func fanOut(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// writeJSON encodes v with the fixed two-space indentation the goldens
// pin down.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
}

// writeError emits the JSON error envelope every non-2xx response uses.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
