package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Scenario is one requested prediction — the wire form of a sweep grid
// point. Barrier scenarios are normalized to m = 0.
type Scenario struct {
	Machine   string `json:"machine"`
	Op        string `json:"op"`
	Algorithm string `json:"algorithm,omitempty"` // "" or "default": the vendor table
	P         int    `json:"p"`
	M         int    `json:"m"`
}

// Bound is the expected-error annotation of a closed-form answer,
// copied from the registry entry's sim-validated error table.
type Bound struct {
	// RelMedian and RelMax summarize the validated relative error of
	// the answering expression set on this (machine, op, m) cell.
	RelMedian float64 `json:"rel_median"`
	RelMax    float64 `json:"rel_max"`
	// BasisM is the validated message length the bound comes from —
	// equal to the request's m when the validation grid contained it,
	// otherwise the nearest validated length on a log scale. For
	// piecewise expression sets the lookup is confined to the protocol
	// segment that produced the answer, so a bound is never borrowed
	// across a regime boundary.
	BasisM int `json:"basis_m"`
	// Points is how many validated scenarios the cell pooled.
	Points int `json:"points"`
	// SegmentMMin/SegmentMMax delimit the fitted message-length segment
	// that answered a piecewise estimate; both are absent on single-
	// segment (affine) answers.
	SegmentMMin int `json:"segment_m_min,omitempty"`
	SegmentMMax int `json:"segment_m_max,omitempty"`
}

// Answer is one scenario's response.
type Answer struct {
	Scenario
	// Micros is the predicted (or, on fallback, simulated) headline
	// time in µs.
	Micros float64 `json:"micros"`
	// Backend names what actually answered: the registry entry's
	// backend, or "sim" on fallback.
	Backend string `json:"backend"`
	// Fallback is set when the scenario left the entry's calibrated
	// (p, m) envelope and the exact simulator answered instead.
	Fallback       bool   `json:"fallback,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// ExpectedError bounds closed-form answers whose entry carries a
	// validated error table; absent on fallback (sim is the reference)
	// and on entries never validated.
	ExpectedError *Bound `json:"expected_error,omitempty"`
}

// Response is the estimate endpoint's envelope. Answers preserve
// request order, so the encoding is byte-stable for a fixed registry.
type Response struct {
	// Registry, Backend, and Provenance identify the expression set
	// that served the request (also exposed as X-Estimate-* headers).
	Registry   string   `json:"registry"`
	Backend    string   `json:"backend"`
	Provenance string   `json:"provenance,omitempty"`
	Answers    []Answer `json:"answers"`
}

// RegistryInfo is one row of the registry listing.
type RegistryInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Backend     string `json:"backend"`
	Provenance  string `json:"provenance,omitempty"`
	// BoundsCells is the size of the entry's attached error table;
	// zero means answers from this entry carry no expected_error.
	BoundsCells int `json:"bounds_cells"`
}

// RegistryResponse is the registry endpoint's envelope.
type RegistryResponse struct {
	Default    string         `json:"default"`
	Registries []RegistryInfo `json:"registries"`
}

// Server answers prediction requests from a registry of expression
// sets. Configure the fields before calling Handler; the handler itself
// is safe for concurrent use.
type Server struct {
	// Registry is the expression-set registry requests resolve against
	// (until a hot reload swaps in a newer one — see Reloader).
	Registry *estimate.Registry
	// Default is the registry entry served when a request names none.
	Default string
	// Sim answers out-of-range scenarios exactly; nil means a bare
	// estimate.Sim{}. Give it a SampleMemo to dedup repeated fallback
	// simulations, or wrap it (estimate.FaultBackend) for chaos testing.
	Sim estimate.Backend
	// Config is the fallback simulation methodology; zero means
	// measure.Fast() — deterministic, seeded.
	Config measure.Config
	// Timeout is the default per-request estimation deadline; ≤ 0 means
	// none. A request can override it with the X-Estimate-Deadline-Ms
	// header. When the deadline expires mid-fallback the simulation is
	// cancelled and the scenario is answered degraded (closed form, no
	// bounds, fallback_reason "degraded_deadline") instead of hanging.
	Timeout time.Duration
	// Gate, when non-nil, is the admission control ahead of estimation:
	// requests beyond its concurrency budget queue, and beyond its queue
	// budget are shed with 429 + Retry-After.
	Gate *Gate
	// Reloader, when non-nil, rebuilds the registry for hot reload;
	// POST /v1/reload is mounted and ReloadRegistry swaps the result in
	// atomically. Answer-cache entries key on each entry's epoch, so
	// answers from a replaced registry self-invalidate.
	Reloader func() (*estimate.Registry, error)
	// Workers bounds the per-request estimation pool; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// MaxBatch caps the scenarios of one request; ≤ 0 means 10000.
	MaxBatch int
	// MaxMessage caps a scenario's message length, bounding the cost a
	// single fallback simulation can impose; ≤ 0 means 16 MiB.
	MaxMessage int
	// Cache, when non-nil, memoizes finished answers per scenario —
	// keyed by the entry's epoch (backend + provenance, so
	// recalibration self-invalidates), the fallback-sim methodology,
	// the machine fingerprint, and the resolved scenario. Repeated
	// traffic then skips estimation and bound lookup entirely. Nil
	// disables caching (every request reports "bypass").
	Cache *AnswerCache
	// DisableWire turns off the binary and NDJSON codecs: only the
	// JSON content types are accepted, everything else is a 415. The
	// zero value serves all three.
	DisableWire bool
	// Obs, when non-nil, records the serving metrics (see NewMetrics)
	// and mounts GET /metrics and GET /debug/vars on the handler. Nil
	// serving pays one branch per request and never reads the clock.
	Obs *Metrics
	// Logger, when non-nil, receives structured access logs: one debug
	// line per estimate request with outcome and per-stage timings.
	// Lifecycle messages (listening, draining) belong to the caller.
	Logger *obs.Logger
	// Traces, when non-nil, receives sampled request traces and mounts
	// GET /debug/traces. Which requests are captured is decided by
	// TraceSample and TraceSlow: every TraceSample-th request plus
	// always-on for errors, degraded answers, deadline-exceeded, and
	// slow requests. Nil disables capture entirely.
	Traces *obs.TraceRing
	// TraceSample captures every Nth estimate request into Traces;
	// 0 samples none periodically (errors and slow requests are still
	// always captured).
	TraceSample int
	// TraceSlow always captures requests whose wall-clock latency
	// reaches it; 0 disables the slow trigger.
	TraceSlow time.Duration

	// reg holds the hot-reloaded registry; nil until the first swap,
	// after which it overrides the Registry field (see registry()).
	reg atomic.Pointer[estimate.Registry]
	// degradedOnce/degradedA lazily build the degraded-mode backend: the
	// paper's closed-form expressions, which answer instantly when a
	// deadline has already eaten the fallback simulation's budget.
	degradedOnce sync.Once
	degradedA    *estimate.Analytic
	// epochs caches each entry's interned answer-cache epoch id
	// (Entry.Epoch plus the server's sim-config digest) by entry
	// identity.
	epochs sync.Map // *estimate.Entry → uint64
	// cfgOnce/cfgDigest memoize the fallback-methodology digest folded
	// into every epoch: fallback answers depend on s.config(), so two
	// servers with different methodologies must never share cached
	// answers even over one AnswerCache.
	cfgOnce   sync.Once
	cfgDigest string
	// traceOnce/traceSeed/traceN mint per-request trace IDs: a start-time
	// seed fixed once, then one atomic add per generated ID (no
	// crypto/rand on the hot path). traceCount drives the every-Nth
	// sampling policy and counts only ok requests (errors are always
	// captured, so they never consume a sampling slot).
	traceOnce  sync.Once
	traceSeed  uint64
	traceN     atomic.Uint64
	traceCount atomic.Uint64
	// triples caches name binding per (machine, op, algorithm) triple:
	// the preset constructors build a fresh machine (and algorithm
	// table) on every lookup, which would otherwise dominate a batched
	// request's cost. The valid-triple space is small and fixed, so the
	// cache is naturally bounded; failed resolutions are not cached.
	triplesMu sync.RWMutex
	triples   map[tripleKey]resolved
}

// tripleKey names one (machine, op, algorithm) binding, pre-resolution.
type tripleKey struct {
	mach, op, alg string
}

// maxBodyBytes bounds a request body; the largest legitimate grids are
// a few MB of JSON.
const maxBodyBytes = 16 << 20

// Handler returns the service's HTTP handler. Every route runs behind
// the panic-recovery middleware — a handler panic answers 500 instead
// of killing the connection, and the in-flight gauge (decremented by
// defer) never leaks — and the trace-ID middleware wraps that, so every
// response down to a recovered panic echoes X-Trace-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	if s.Reloader != nil {
		mux.HandleFunc("POST /v1/reload", s.handleReload)
	}
	if s.Obs != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		mux.HandleFunc("GET /debug/vars", s.handleVars)
	}
	if s.Traces != nil {
		mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	return s.withTraceID(s.recoverPanics(mux))
}

// recoverPanics converts a panicking handler into a 500 response. The
// response write is best-effort — a handler that already streamed its
// status keeps it — but the connection survives and per-request defers
// (gate release, in-flight decrement) have already run by the time the
// panic reaches this frame.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.Obs.panicked()
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: handler panicked: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// registry returns the registry requests resolve against: the last
// hot-reloaded one, or the configured Registry field before any reload.
func (s *Server) registry() *estimate.Registry {
	if r := s.reg.Load(); r != nil {
		return r
	}
	return s.Registry
}

// SetRegistry atomically swaps the serving registry. In-flight requests
// keep the entry they already resolved; new requests see the new
// registry. Answer-cache keys carry each entry's epoch, so stale
// answers are simply never found again.
func (s *Server) SetRegistry(r *estimate.Registry) {
	s.reg.Store(r)
}

// ReloadRegistry rebuilds the registry through the configured Reloader
// and swaps it in. The swap is atomic and the old registry serves until
// the new one is fully built, so a reload never fails live traffic.
func (s *Server) ReloadRegistry() error {
	if s.Reloader == nil {
		return errors.New("serve: no reloader configured")
	}
	r, err := s.Reloader()
	if err != nil {
		s.Obs.reloaded(false)
		return err
	}
	if _, err := r.Get(s.Default); err != nil {
		s.Obs.reloaded(false)
		return fmt.Errorf("reloaded registry lacks the default entry: %w", err)
	}
	s.reg.Store(r)
	s.Obs.reloaded(true)
	return nil
}

// handleReload answers POST /v1/reload: rebuild, swap, report.
func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if err := s.ReloadRegistry(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status     string   `json:"status"`
		Default    string   `json:"default"`
		Registries []string `json:"registries"`
	}{"reloaded", s.Default, s.registry().Names()})
}

func (s *Server) config() measure.Config {
	if s.Config == (measure.Config{}) {
		return measure.Fast()
	}
	return s.Config
}

// simBackend returns the fallback backend: the configured Sim, or a
// bare memo-less simulator.
func (s *Server) simBackend() estimate.Backend {
	if s.Sim != nil {
		return s.Sim
	}
	return estimate.Sim{}
}

// degradedBackend returns the closed-form backend that answers
// deadline-pressed scenarios, built lazily (most servers never degrade).
func (s *Server) degradedBackend() *estimate.Analytic {
	s.degradedOnce.Do(func() { s.degradedA = estimate.PaperAnalytic() })
	return s.degradedA
}

func (s *Server) maxBatch() int {
	if s.MaxBatch <= 0 {
		return 10000
	}
	return s.MaxBatch
}

func (s *Server) maxMessage() int {
	if s.MaxMessage <= 0 {
		return 16 << 20
	}
	return s.MaxMessage
}

// resolved is a validated scenario, every name bound to its object,
// with the entry's fallback decision computed once up front.
type resolved struct {
	mach *machine.Machine
	op   machine.Op
	alg  string // "default" or a registry variant, validated
	algs mpi.Algorithms
	p, m int
	// fallback, fbKind, and fallbackReason record whether the exact
	// simulator must answer (outside the calibrated envelope, an
	// unfitted pair, or a variant the expression set cannot
	// distinguish) — the kind for metrics, the reason for the answer.
	fallback       bool
	fbKind         fallbackKind
	fallbackReason string
}

// handleEstimate answers POST /v1/estimate. The admission gate runs
// first — a shed request costs no decode, no estimation, and never
// counts as in flight — then serveEstimate is bracketed with the
// per-request instrumentation: in-flight gauge, outcome and stage
// metrics, and the debug access-log line. With neither metrics nor
// debug logging attached the request never reads the clock.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if s.Gate != nil {
		if err := s.Gate.Acquire(r.Context(), s.Obs.queueDepth()); err != nil {
			s.shed(w, r, err)
			return
		}
		defer s.Gate.Release()
	}
	logging := s.Logger.Enabled(obs.LevelDebug)
	tracing := s.Traces != nil
	if s.Obs == nil && !logging && !tracing {
		s.serveEstimate(w, r, nil)
		return
	}
	var tr obs.Trace
	if logging || tracing {
		tr.Begin(time.Now())
	}
	s.Obs.begin()
	defer s.Obs.end() // deferred so a panicking request (recovered by net/http) can't leak the in-flight gauge
	st := s.serveEstimate(w, r, &tr)
	s.Obs.observe(st, &tr)
	if !logging && !tracing {
		return
	}
	tr.Finish(time.Now(), traceOutcome(st))
	if tracing {
		s.captureTrace(TraceIDFrom(r.Context()), st, &tr)
	}
	if logging {
		s.Logger.Debug("estimate",
			obs.F("trace_id", TraceIDFrom(r.Context())),
			obs.F("status", st.status),
			obs.F("registry", st.registry),
			obs.F("scenarios", st.scenarios),
			obs.F("fallbacks", st.fallbacks),
			obs.F("bounds", st.bounds),
			obs.F("duration_ns", tr.Duration().Nanoseconds()),
			obs.F("stage_ns", stageNS(&tr)))
	}
}

// shed refuses one request at the admission gate: a full queue is 429
// with Retry-After (the client should back off and retry), a request
// that expired while queued is 503. Shed requests are counted in
// serve_shed_total{reason} and the request-outcome series but touch
// nothing else — the point of shedding is to stay cheap. They are
// still errors, so the trace ring always captures them (with empty
// stages: the request never reached the worker pool).
func (s *Server) shed(w http.ResponseWriter, r *http.Request, err error) {
	st := reqStats{codec: CodecUnknown}
	if errors.Is(err, ErrQueueFull) {
		st.status = http.StatusTooManyRequests
		st.shed = shedQueueFull
		w.Header().Set("Retry-After", "1")
		writeError(w, st.status, errors.New("overloaded: admission queue full; retry after the Retry-After delay"))
	} else {
		st.status = http.StatusServiceUnavailable
		st.shed = shedTimeout
		writeError(w, st.status, fmt.Errorf("request expired in the admission queue: %v", err))
	}
	s.Obs.observe(st, nil)
	if s.Traces != nil {
		var tr obs.Trace
		now := time.Now()
		tr.Begin(now)
		tr.Finish(now, traceOutcome(st))
		s.captureTrace(TraceIDFrom(r.Context()), st, &tr)
	}
}

// deadlineHeader is the per-request deadline override, in milliseconds.
const deadlineHeader = "X-Estimate-Deadline-Ms"

// requestDeadline decides one request's estimation deadline: the
// X-Estimate-Deadline-Ms header wins over the server's configured
// Timeout; neither means the request runs unbounded.
func requestDeadline(r *http.Request, def time.Duration) (time.Duration, bool, error) {
	if h := r.Header.Get(deadlineHeader); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			return 0, false, fmt.Errorf("invalid %s header %q: want a positive integer millisecond count", deadlineHeader, h)
		}
		return time.Duration(ms) * time.Millisecond, true, nil
	}
	if def > 0 {
		return def, true, nil
	}
	return 0, false, nil
}

// stageNS flattens a trace into the access-log object (encoding/json
// sorts the keys, so lines stay stable).
func stageNS(tr *obs.Trace) map[string]int64 {
	out := make(map[string]int64, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		out[st.String()] = tr.NS(st)
	}
	return out
}

// stageTimer charges a request's sequential stages by chaining marks
// off one base timestamp: a mark is a single monotonic-clock delta
// (time.Since), roughly half the cost of a full time.Now, and the
// stages tile the request with no gaps. The zero value (nil trace) is
// a no-op that never reads the clock.
type stageTimer struct {
	tr   *obs.Trace
	base time.Time
	last time.Duration
}

func newStageTimer(tr *obs.Trace) stageTimer {
	if tr == nil {
		return stageTimer{}
	}
	return stageTimer{tr: tr, base: time.Now()}
}

// mark charges the time since the previous mark to stage st.
func (t *stageTimer) mark(st obs.Stage) {
	if t.tr == nil {
		return
	}
	el := time.Since(t.base)
	t.tr.Add(st, el-t.last)
	t.last = el
}

// skip advances the mark without charging a stage — for spans timed
// elsewhere (the scenario workers charge estimate and bounds).
func (t *stageTimer) skip() {
	if t.tr == nil {
		return
	}
	t.last = time.Since(t.base)
}

// workerTimer accumulates one scenario worker's estimate and bounds
// time locally against the request's base timestamp, flushing to the
// shared trace once when the worker's share of the batch is done —
// per-scenario atomic adds would contend across the pool. A workerTimer
// with a nil trace never reads the clock.
type workerTimer struct {
	tr       *obs.Trace
	base     time.Time
	est, bnd time.Duration
}

// start returns the worker's clock reading before an estimate.
func (w *workerTimer) start() time.Duration {
	if w.tr == nil {
		return 0
	}
	return time.Since(w.base)
}

// estimateDone charges the time since e0 to the estimate stage and
// returns the new reading, the bounds stage's start.
func (w *workerTimer) estimateDone(e0 time.Duration) time.Duration {
	if w.tr == nil {
		return 0
	}
	e1 := time.Since(w.base)
	w.est += e1 - e0
	return e1
}

// boundsDone charges the time since e1 to the bounds stage.
func (w *workerTimer) boundsDone(e1 time.Duration) {
	if w.tr == nil {
		return
	}
	w.bnd += time.Since(w.base) - e1
}

// flush adds the worker's accumulated stage time to the trace.
func (w *workerTimer) flush() {
	if w.tr == nil {
		return
	}
	w.tr.Add(obs.StageEstimate, w.est)
	w.tr.Add(obs.StageBounds, w.bnd)
}

// setProvenance stamps the X-Estimate-* headers identifying the
// expression set that answered (or would have answered) the request.
func setProvenance(w http.ResponseWriter, e *estimate.Entry) {
	h := w.Header()
	h.Set("X-Estimate-Registry", e.Name)
	h.Set("X-Estimate-Backend", e.Backend.Name())
	h.Set("X-Estimate-Provenance", e.Backend.Provenance())
}

// serveEstimate does the work of POST /v1/estimate and reports the
// request's outcome for instrumentation. tr may be nil.
func (s *Server) serveEstimate(w http.ResponseWriter, r *http.Request, tr *obs.Trace) reqStats {
	st := reqStats{status: http.StatusOK, codec: CodecUnknown}
	// Until the request names a registry, errors are attributed to the
	// default entry — the one that would have answered — so 4xx/5xx
	// responses carry the same provenance headers as successes. An
	// unknown-registry error clears the entry instead: there is no
	// provenance to claim for a name that resolves to nothing.
	entry, _ := s.registry().Get(s.Default)
	fail := func(status int, err error) reqStats {
		if entry != nil {
			setProvenance(w, entry)
		}
		writeError(w, status, err)
		st.status = status
		return st
	}
	codec, err := s.negotiate(r)
	if err != nil {
		w.Header().Set("Accept-Post", AcceptPost)
		return fail(http.StatusUnsupportedMediaType, err)
	}
	st.codec = codec
	ctx := r.Context()
	if d, has, derr := requestDeadline(r, s.Timeout); derr != nil {
		return fail(http.StatusBadRequest, derr)
	} else if has {
		st.hadDeadline = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	tm := newStageTimer(tr)
	bodyBuf := getBuffer()
	defer putBuffer(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return fail(status, fmt.Errorf("reading request body: %w", err))
	}
	body := bodyBuf.Bytes()
	scr := getScratch()
	defer putScratch(scr)

	// Decode: the codecs differ only here and at encode. JSON and
	// NDJSON produce named scenarios for the resolve loop; the binary
	// frame is resolved through its string table below.
	var regName string
	var scns []Scenario
	switch codec {
	case CodecNDJSON:
		scns, err = ParseNDJSON(body)
	case CodecBinary:
		if err = scr.wreq.Decode(body); err == nil {
			regName = scr.wreq.Registry
		}
	default:
		regName, scns, err = ParseJSONRequest(body)
	}
	tm.mark(obs.StageDecode)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if regName == "" {
		regName = r.URL.Query().Get("registry")
	}
	if regName == "" {
		regName = s.Default
	}
	if entry, err = s.registry().Get(regName); err != nil {
		return fail(http.StatusBadRequest, err)
	}
	st.registry = entry.Name
	n := len(scns)
	if codec == CodecBinary {
		n = len(scr.wreq.Records)
	}
	if n == 0 {
		return fail(http.StatusBadRequest, errors.New("the request carries no scenarios"))
	}
	if n > s.maxBatch() {
		return fail(http.StatusBadRequest,
			fmt.Errorf("%d scenarios exceed the batch cap of %d", n, s.maxBatch()))
	}
	res := scr.resolvedSlice(n)
	if codec == CodecBinary {
		if err := s.resolveWire(&scr.wreq, scr, res); err != nil {
			return fail(http.StatusBadRequest, err)
		}
	} else {
		for i, sc := range scns {
			if res[i], err = s.resolve(sc); err != nil {
				return fail(http.StatusBadRequest, fmt.Errorf("scenario %d (%s/%s): %w", i, sc.Machine, sc.Op, err))
			}
		}
	}
	for i := range res {
		res[i].fallbackReason, res[i].fbKind = fallbackReason(entry, res[i])
		res[i].fallback = res[i].fbKind != fbNone
	}
	tm.mark(obs.StageResolve)

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Bulk-calibrate the in-envelope triples of a calibrated entry
	// before fanning out, so a cold batch parallelizes its calibration
	// across triples instead of behind first-touch scenario workers.
	if cal, ok := entry.Backend.(*estimate.Calibrated); ok {
		var triples []estimate.Triple
		for _, rs := range res {
			if !rs.fallback {
				triples = append(triples, estimate.Triple{Machine: rs.mach, Op: rs.op, Alg: rs.alg})
			}
		}
		cal.Precalibrate(triples, workers)
	}
	tm.mark(obs.StageCalibrate)

	var epoch uint64
	if s.Cache != nil {
		epoch = s.entryEpoch(entry)
	}
	answers := scr.answerSlice(len(res))
	cres := scr.cacheSlice(len(res))
	errs := scr.errSlice(len(res))
	if len(res) == 1 {
		// The common single-scenario request skips the pool and its
		// worker closures entirely.
		wt := workerTimer{tr: tr, base: tm.base}
		answers[0], cres[0], errs[0] = s.answerCached(ctx, entry, epoch, res[0], &wt)
		wt.flush()
	} else {
		fanOut(workers, len(res), func() (func(int), func()) {
			wt := &workerTimer{tr: tr, base: tm.base}
			return func(i int) { answers[i], cres[i], errs[i] = s.answerCached(ctx, entry, epoch, res[i], wt) }, wt.flush
		})
	}
	tm.skip()

	st.scenarios = len(res)
	var scErr error
	for i := range res {
		if errs[i] != nil && scErr == nil {
			scErr = fmt.Errorf("scenario %d (%s/%s p=%d m=%d): %w",
				i, res[i].mach.Name(), res[i].op, res[i].p, res[i].m, errs[i])
		}
		if res[i].fallback {
			st.fallbacks++
			st.kinds[res[i].fbKind]++
		}
		if answers[i].FallbackReason == reasonDegraded {
			st.degraded++
		}
		if answers[i].ExpectedError != nil {
			st.bounds++
		}
		switch cres[i] {
		case cacheHit:
			st.cacheHits++
		case cacheMiss:
			st.cacheMisses++
		default:
			st.cacheBypass++
		}
	}
	if scErr != nil {
		// A deadline that expired where no closed-form degraded answer
		// exists is a timeout the client must know about; anything else
		// (an injected fault, a recovered backend panic) is a 500.
		if errors.Is(scErr, context.DeadlineExceeded) || errors.Is(scErr, context.Canceled) {
			return fail(http.StatusGatewayTimeout, fmt.Errorf("deadline exceeded with no degraded answer available: %w", scErr))
		}
		return fail(http.StatusInternalServerError, scErr)
	}

	setProvenance(w, entry)
	w.Header().Set("X-Estimate-Cache", cacheVerdict(s.Cache, st))
	switch codec {
	case CodecNDJSON:
		WriteNDJSONAnswers(w, answers)
	case CodecBinary:
		writeWire(w, scr, entry.Name, entry.Backend.Name(), entry.Backend.Provenance(), answers)
	default:
		resp := Response{
			Registry:   entry.Name,
			Backend:    entry.Backend.Name(),
			Provenance: entry.Backend.Provenance(),
			Answers:    answers,
		}
		writeJSON(w, http.StatusOK, resp)
	}
	tm.mark(obs.StageEncode)
	return st
}

// cacheVerdict summarizes a served request's answer-cache interaction
// for the X-Estimate-Cache header: "bypass" when no cache is attached,
// "hit" when every scenario was served from it, "miss" otherwise.
func cacheVerdict(c *AnswerCache, st reqStats) string {
	switch {
	case c == nil:
		return "bypass"
	case st.cacheMisses == 0:
		return "hit"
	default:
		return "miss"
	}
}

// entryEpoch returns the answer-cache epoch id for one registry entry:
// Entry.Epoch (backend + provenance) extended with this server's
// fallback-methodology digest, interned to a small id (see epochID)
// and memoized per entry.
func (s *Server) entryEpoch(e *estimate.Entry) uint64 {
	if ep, ok := s.epochs.Load(e); ok {
		return ep.(uint64)
	}
	s.cfgOnce.Do(func() {
		blob, err := json.Marshal(s.config())
		if err != nil {
			panic(fmt.Sprintf("serve: config digest: %v", err))
		}
		// The fallback backend's identity is part of every epoch: a
		// chaos-wrapped simulator (distinct provenance) must never share
		// cached answers with a clean one.
		sim := s.simBackend()
		s.cfgDigest = string(blob) + "\x00" + sim.Name() + "\x00" + sim.Provenance()
	})
	ep := epochID(e.Epoch() + "\x00" + s.cfgDigest)
	s.epochs.Store(e, ep)
	return ep
}

// Answer-cache verdicts per scenario, accumulated into reqStats and
// the serve_answer_cache_total{result} series.
const (
	cacheBypass uint8 = iota
	cacheHit
	cacheMiss
)

// answerCached serves one resolved scenario through the answer cache:
// a finished answer is returned as-is, a cold key runs s.answerSafe
// once (single flight — concurrent requests for the same cold key wait
// and share), and with no cache attached every scenario computes.
// Errored and degraded computations are forgotten after the flight —
// waiters sharing it see the same outcome, but the next request retries
// (or gets the real answer once the pressure is off) instead of being
// served a poisoned slot forever.
func (s *Server) answerCached(ctx context.Context, entry *estimate.Entry, epoch uint64, rs resolved, wt *workerTimer) (Answer, uint8, error) {
	if s.Cache == nil {
		a, err := s.answerSafe(ctx, entry, rs, wt)
		return a, cacheBypass, err
	}
	k := acKey{
		eid: epoch, fp: estimate.CachedFingerprint(rs.mach),
		op: rs.op, alg: rs.alg, p: rs.p, m: rs.m,
	}
	e, created := s.Cache.get(k)
	if !created && e.done.Load() {
		// The steady-state hit: the answer exists, so skip once.Do —
		// building its closure would be the hit path's only allocation.
		return e.ans, cacheHit, e.err
	}
	// Whoever wins the once computes; everyone blocks until the answer
	// exists. The creator is the accounting miss either way. The recover
	// lives inside answerSafe, not around the Do: a panic escaping the
	// Do fn would mark the once consumed and poison the entry.
	e.once.Do(func() {
		e.ans, e.err = s.answerSafe(ctx, entry, rs, wt)
		e.done.Store(true)
		if e.err != nil || e.ans.FallbackReason == reasonDegraded {
			s.Cache.forget(k, e)
		}
	})
	if created {
		return e.ans, cacheMiss, e.err
	}
	return e.ans, cacheHit, e.err
}

// ParseJSONRequest accepts the three request shapes: a bare
// scenario object, a bare scenario array, or an envelope
// {registry, scenarios}. The registry name is empty unless the envelope
// carried one.
func ParseJSONRequest(body []byte) (registry string, scns []Scenario, err error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(body, &scns); err != nil {
			return "", nil, fmt.Errorf("decoding scenario array: %w", err)
		}
		return "", scns, nil
	}
	var req struct {
		Registry  string     `json:"registry"`
		Scenarios []Scenario `json:"scenarios"`
		Scenario             // single-scenario shorthand
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", nil, fmt.Errorf("decoding request: %w", err)
	}
	scns = req.Scenarios
	if len(scns) == 0 && req.Scenario != (Scenario{}) {
		scns = []Scenario{req.Scenario}
	}
	return req.Registry, scns, nil
}

// resolve validates one scenario and binds its names.
func (s *Server) resolve(sc Scenario) (resolved, error) {
	rs, err := s.resolveTriple(sc.Machine, sc.Op, sc.Algorithm)
	if err != nil {
		return resolved{}, err
	}
	if err := s.checkPM(&rs, sc.P, sc.M); err != nil {
		return resolved{}, err
	}
	return rs, nil
}

// resolveTriple binds the name part of a scenario — machine, operation,
// algorithm, and the algorithm table the estimate runs under —
// memoized across requests (the triple space is small and fixed; see
// Server.triples). The returned base shares its machine and algorithm
// table between scenarios, which is safe: both are read-only after
// construction.
func (s *Server) resolveTriple(machName, opName, algName string) (resolved, error) {
	k := tripleKey{machName, opName, algName}
	s.triplesMu.RLock()
	rs, ok := s.triples[k]
	s.triplesMu.RUnlock()
	if ok {
		return rs, nil
	}
	mach, err := estimate.ResolveMachine(machName)
	if err != nil {
		return resolved{}, err
	}
	op, err := estimate.ResolveOp(opName)
	if err != nil {
		return resolved{}, err
	}
	alg, err := estimate.ResolveAlgorithm(mach, op, algName)
	if err != nil {
		return resolved{}, err
	}
	algs := mpi.DefaultAlgorithms(mach)
	if alg != sweepDefaultAlg {
		algs = algs.With(op, alg)
	}
	rs = resolved{mach: mach, op: op, alg: alg, algs: algs}
	s.triplesMu.Lock()
	if s.triples == nil {
		s.triples = make(map[tripleKey]resolved)
	}
	s.triples[k] = rs
	s.triplesMu.Unlock()
	return rs, nil
}

// checkPM validates and installs one scenario's (p, m) coordinates on a
// name-resolved base.
func (s *Server) checkPM(rs *resolved, p, m int) error {
	if p < 2 {
		return fmt.Errorf("p=%d: a collective needs at least 2 nodes", p)
	}
	if p > rs.mach.MaxNodes() {
		return fmt.Errorf("p=%d exceeds the %s's %d nodes", p, rs.mach.Name(), rs.mach.MaxNodes())
	}
	if rs.op == machine.OpBarrier {
		m = 0
	}
	if m < 0 {
		return fmt.Errorf("negative message length m=%d", m)
	}
	if m > s.maxMessage() {
		return fmt.Errorf("m=%d exceeds the service cap of %d bytes", m, s.maxMessage())
	}
	rs.p, rs.m = p, m
	return nil
}

// sweepDefaultAlg mirrors sweep.DefaultAlgorithm without importing the
// sweep engine into the serving layer.
const sweepDefaultAlg = "default"

// reasonDegraded marks an answer served closed-form because the
// request's deadline expired before the exact simulator could finish.
// Degraded answers carry no bounds and are never cached.
const reasonDegraded = "degraded_deadline"

// answerSafe is answer with backend panics converted to errors. Worker
// goroutines are outside net/http's recovery, so an unrecovered panic
// (an injected chaos fault, a modeling bug) would kill the process; here
// it becomes a per-scenario error and a 500.
func (s *Server) answerSafe(ctx context.Context, entry *estimate.Entry, rs resolved, wt *workerTimer) (a Answer, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			a, err = Answer{}, fmt.Errorf("backend panicked: %v", rec)
		}
	}()
	return s.answer(ctx, entry, rs, wt)
}

// answer serves one resolved scenario from the entry — or from the
// exact simulator, flagged, when the fallback decision computed at
// resolve time says the entry cannot answer it honestly. A ctx that
// expires mid-estimate degrades to the paper's closed-form expressions
// when they cover the scenario (an instant answer flagged
// "degraded_deadline", no bounds) and errors otherwise. Estimate and
// bound-attach time is charged to the worker's timer.
func (s *Server) answer(ctx context.Context, entry *estimate.Entry, rs resolved, wt *workerTimer) (Answer, error) {
	echo := Scenario{Machine: rs.mach.Name(), Op: string(rs.op), Algorithm: rs.alg, P: rs.p, M: rs.m}
	e0 := wt.start()
	var est estimate.Estimate
	var err error
	if rs.fallback {
		est, err = s.simBackend().Estimate(ctx, rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
	} else {
		est, err = entry.Backend.Estimate(ctx, rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
	}
	if err != nil {
		wt.estimateDone(e0)
		if ctx.Err() != nil {
			if a, ok := s.degradedAnswer(echo, rs); ok {
				return a, nil
			}
			// Make sure the timeout wins the errors.Is dispatch even if
			// the backend returned a bare injected error after ctx fired.
			return Answer{}, fmt.Errorf("%w (%v)", ctx.Err(), err)
		}
		return Answer{}, err
	}
	e1 := wt.estimateDone(e0)
	if rs.fallback {
		return Answer{
			Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend,
			Fallback: true, FallbackReason: rs.fallbackReason,
		}, nil
	}
	a := Answer{Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend}
	attachBound(entry, rs, &a)
	wt.boundsDone(e1)
	return a, nil
}

// degradedAnswer answers a deadline-pressed scenario from the paper's
// published expressions — instant, honest about what it is (fallback
// with reason "degraded_deadline"), and carrying no bounds: the
// expression set was not validated for this scenario, that is why the
// simulator was asked in the first place. ok is false when the paper's
// set has no expression for the (machine, op) pair; the caller then
// surfaces the timeout.
func (s *Server) degradedAnswer(echo Scenario, rs resolved) (Answer, bool) {
	da := s.degradedBackend()
	if !da.Covers(rs.mach.Name(), rs.op) {
		return Answer{}, false
	}
	est, err := da.Estimate(context.Background(), rs.mach, rs.op, rs.algs, rs.p, rs.m, s.config())
	if err != nil {
		return Answer{}, false // Analytic never errors; belt and braces
	}
	return Answer{
		Scenario: echo, Micros: est.Sample.Micros, Backend: est.Backend,
		Fallback: true, FallbackReason: reasonDegraded,
	}, true
}

// attachBound annotates a closed-form answer with its validated
// expected-error bound, when the entry carries one.
func attachBound(entry *estimate.Entry, rs resolved, a *Answer) {
	// Piecewise fits answer from one protocol segment; the expected
	// error must come from validated lengths of that same segment, and
	// the answer says which segment served it. Affine entries skip the
	// per-answer expression lookup entirely — it is hot-path work that
	// could only rediscover there are no segments.
	if cal, isCal := entry.Backend.(*estimate.Calibrated); isCal && cal.Fit.Piecewise {
		if seg, isSeg := cal.Expression(rs.mach, rs.op, rs.alg).SegmentFor(rs.m); isSeg {
			if cell, ok := entry.Bounds.BoundIn(rs.mach.Name(), rs.op, rs.m, seg.MMin, seg.MMax); ok {
				a.ExpectedError = &Bound{
					RelMedian: cell.Median, RelMax: cell.Max,
					BasisM: cell.M, Points: cell.Points,
				}
				// BoundIn falls back to a cross-regime neighbor when the
				// validation grid has no cell inside the segment; only an
				// in-segment basis may claim the segment-scoped contract.
				if cell.M >= seg.MMin && cell.M <= seg.MMax {
					a.ExpectedError.SegmentMMin, a.ExpectedError.SegmentMMax = seg.MMin, seg.MMax
				}
			}
			return
		}
	}
	if cell, ok := entry.Bounds.Bound(rs.mach.Name(), rs.op, rs.m); ok {
		a.ExpectedError = &Bound{
			RelMedian: cell.Median, RelMax: cell.Max,
			BasisM: cell.M, Points: cell.Points,
		}
	}
}

// fallbackReason decides whether the scenario must be answered by the
// simulator: outside the entry's calibrated envelope, a pair the
// envelope function disowns, or — whatever the envelope says — a fixed
// expression set that cannot answer the pair honestly, either because
// it has no fit at all (evaluating one would panic deep inside the
// model) or because it only models vendor-default algorithms and the
// request names another variant. The kind is fbNone when the entry
// answers in closed form.
func fallbackReason(entry *estimate.Entry, rs resolved) (string, fallbackKind) {
	if a, ok := entry.Backend.(*estimate.Analytic); ok {
		if !a.Covers(rs.mach.Name(), rs.op) {
			return uncoveredReason(entry, rs), fbUncovered
		}
		// Fixed sets model the vendor-default algorithms only; naming
		// the default variant explicitly is fine, any other variant is
		// a question the set cannot answer.
		if rs.alg != sweepDefaultAlg && rs.alg != mpi.DefaultAlgorithms(rs.mach).Get(rs.op) {
			return fmt.Sprintf("the %s expression set models vendor-default algorithms only, not %s[%s]; answered by the exact simulator",
				entry.Name, rs.op, rs.alg), fbVariant
		}
	}
	in, rng := entry.Covers(rs.mach, rs.op, rs.p, rs.m)
	if in {
		return "", fbNone
	}
	if rng == (estimate.Range{}) {
		return uncoveredReason(entry, rs), fbUncovered
	}
	return fmt.Sprintf("p=%d m=%d is outside the calibrated range %s; answered by the exact simulator",
		rs.p, rs.m, rng), fbOutOfRange
}

func uncoveredReason(entry *estimate.Entry, rs resolved) string {
	return fmt.Sprintf("%s/%s has no %s expression; answered by the exact simulator",
		rs.mach.Name(), rs.op, entry.Name)
}

// handleRegistry answers GET /v1/registry.
func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry().Entries()
	resp := RegistryResponse{Default: s.Default, Registries: make([]RegistryInfo, 0, len(entries))}
	for _, e := range entries {
		info := RegistryInfo{
			Name:        e.Name,
			Description: e.Description,
			Backend:     e.Backend.Name(),
			Provenance:  e.Backend.Provenance(),
		}
		if e.Bounds != nil {
			info.BoundsCells = len(e.Bounds.Cells)
		}
		resp.Registries = append(resp.Registries, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// fanOut runs indices 0..n-1 across a bounded worker pool — the
// calibration-pool pattern (jobs channel, WaitGroup), sized like
// Precalibrate. setup runs once per worker and returns the worker's
// per-index fn plus a done hook that runs after its share of the batch
// (worker-local state, e.g. timing accumulators, flushes there).
func fanOut(workers, n int, setup func() (fn func(i int), done func())) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn, done := setup()
		for i := 0; i < n; i++ {
			fn(i)
		}
		done()
		return
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn, done := setup()
			for i := range jobs {
				fn(i)
			}
			done()
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// writeJSON encodes v with the fixed two-space indentation the goldens
// pin down, through a pooled buffer (Encoder with SetIndent produces
// byte-identical output to MarshalIndent plus the trailing newline).
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuffer()
	defer putBuffer(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// writeError emits the JSON error envelope every non-2xx response uses.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// WriteJSONResponse encodes one estimate response exactly the way the
// worker handler does (two-space indent, trailing newline) — the
// sharding front merges worker answers and re-encodes through this, so
// a response assembled from N workers is byte-identical to one a single
// worker would have written.
func WriteJSONResponse(w http.ResponseWriter, resp *Response) {
	writeJSON(w, http.StatusOK, resp)
}

// WriteJSONError emits the service's JSON error envelope — shared with
// the front so shed and failover errors look like worker errors.
func WriteJSONError(w http.ResponseWriter, status int, err error) {
	writeError(w, status, err)
}

// SetProvenanceHeaders stamps the X-Estimate-* headers from an already
// known envelope — the front's variant of setProvenance, which works
// from a worker response instead of a registry entry.
func SetProvenanceHeaders(w http.ResponseWriter, registry, backend, provenance string) {
	h := w.Header()
	h.Set("X-Estimate-Registry", registry)
	h.Set("X-Estimate-Backend", backend)
	h.Set("X-Estimate-Provenance", provenance)
}
