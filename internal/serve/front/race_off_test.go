//go:build !race

package front

const raceEnabled = false
