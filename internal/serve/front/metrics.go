package front

import "repro/internal/obs"

// Metrics holds the front's own observability series. A nil *Metrics is
// valid and records nothing, like serve.Metrics.
type Metrics struct {
	reg *obs.Registry

	reqOK, reqClientErr, reqServerErr *obs.Counter
	retries                           *obs.Counter
	rebalance                         *obs.Counter
	inFlight                          *obs.Gauge
	workerOK, workerErr               map[string]*obs.Counter
}

// NewMetrics registers the front's series on reg:
//
//	front_requests_total{outcome}            ok | client_error | server_error
//	front_worker_requests_total{worker,outcome}  sub-requests per worker, ok | error
//	front_retries_total                      sub-batch attempts beyond the first
//	front_rebalance_total                    sub-batches answered by a non-owner worker
//	front_in_flight                          client requests currently in the handler
//
// workers is the fleet's worker-name list — the per-worker counters are
// pre-registered so the request path never takes the registry's setup
// lock.
func NewMetrics(reg *obs.Registry, workers []string) *Metrics {
	m := &Metrics{reg: reg,
		workerOK:  make(map[string]*obs.Counter, len(workers)),
		workerErr: make(map[string]*obs.Counter, len(workers)),
	}
	req := func(outcome string) *obs.Counter {
		return reg.Counter("front_requests_total",
			"client requests at the sharding front by outcome",
			obs.Label{Key: "outcome", Value: outcome})
	}
	m.reqOK, m.reqClientErr, m.reqServerErr = req("ok"), req("client_error"), req("server_error")
	m.retries = reg.Counter("front_retries_total",
		"sub-batch attempts beyond the first (failover and retry)")
	m.rebalance = reg.Counter("front_rebalance_total",
		"sub-batches answered by a worker other than their shard owner")
	m.inFlight = reg.Gauge("front_in_flight",
		"client requests currently being handled by the front")
	for _, w := range workers {
		m.workerOK[w] = reg.Counter("front_worker_requests_total",
			"sub-requests sent per worker by outcome",
			obs.Label{Key: "worker", Value: w}, obs.Label{Key: "outcome", Value: "ok"})
		m.workerErr[w] = reg.Counter("front_worker_requests_total",
			"sub-requests sent per worker by outcome",
			obs.Label{Key: "worker", Value: w}, obs.Label{Key: "outcome", Value: "error"})
	}
	return m
}

// Registry returns the underlying registry (nil-safe) — appended to the
// merged fleet view by GET /metrics.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

func (m *Metrics) begin() {
	if m != nil {
		m.inFlight.Add(1)
	}
}

func (m *Metrics) end() {
	if m != nil {
		m.inFlight.Add(-1)
	}
}

// request folds one finished client request into the outcome series.
func (m *Metrics) request(status int) {
	if m == nil {
		return
	}
	switch {
	case status < 400:
		m.reqOK.Inc()
	case status < 500:
		m.reqClientErr.Inc()
	default:
		m.reqServerErr.Inc()
	}
}

// worker records one sub-request's outcome against its worker.
func (m *Metrics) worker(name string, ok bool) {
	if m == nil {
		return
	}
	var c *obs.Counter
	if ok {
		c = m.workerOK[name]
	} else {
		c = m.workerErr[name]
	}
	if c != nil {
		c.Inc()
	}
}

func (m *Metrics) retried() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *Metrics) rebalanced() {
	if m != nil {
		m.rebalance.Inc()
	}
}

// Retries reports the lifetime failover-retry count — what the E2E
// harness asserts grew while a worker was down. Nil-safe.
func (m *Metrics) Retries() uint64 {
	if m == nil {
		return 0
	}
	return m.retries.Value()
}
