package front

// The shard key is FNV-1a over the scenario's identity fields with a
// separator byte between them, so ("ab","c") and ("a","bc") never
// collide. The algorithm name is normalized first: "" and "default"
// are the same algorithm to every worker, so they must be the same key
// — otherwise one scenario would warm two answer caches.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// shardKey hashes one scenario's identity. p and m are mixed as
// little-endian uint64 bytes, not decimal strings, so the key costs no
// allocation.
func shardKey(machine, op, alg string, p, m int) uint64 {
	if alg == "" {
		alg = "default"
	}
	h := uint64(fnvOffset)
	for _, s := range [3]string{machine, op, alg} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime
		}
		h ^= 0xFF // field separator, outside the byte range of names
		h *= fnvPrime
	}
	for _, v := range [2]uint64{uint64(p), uint64(m)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= fnvPrime
		}
	}
	return h
}

// Owner returns the index of the worker that owns one scenario in a
// fleet of workers — the deterministic sharding decision, exported so
// tests (and operators debugging a partition) can predict placement.
func Owner(machine, op, alg string, p, m, workers int) int {
	return int(shardKey(machine, op, alg, p, m) % uint64(workers))
}
