//go:build race

package front

// raceEnabled gates the full-grid E2E test, which is too slow under
// the race detector's instrumented simulator.
const raceEnabled = true
