// Package front is the fleet's data plane: an HTTP front that accepts
// the exact POST /v1/estimate surface a single worker serves — JSON,
// NDJSON, or the binary wire codec, negotiated by Content-Type — and
// shards the scenarios of each request across N serve workers.
//
// # Sharding
//
// Every scenario hashes to an owning worker by its resolved identity
// (machine, op, algorithm, p, m) — see Owner. The key is deterministic
// across codecs and requests, so each worker's answer cache and
// calibration memo see a stable partition of the keyspace: the same
// scenario always warms the same worker, no matter which client batch
// it arrives in. A batch envelope is split into per-worker sub-batches,
// fanned out concurrently (one in-flight sub-request per group, bounded
// per worker by a token-bucket gate reusing serve.Gate), and the
// answers are merged back into the original request order. A JSON
// response assembled from N workers is byte-identical to the response
// one worker would have written for the whole batch; a binary response
// is numerically identical (the same float64 bits).
//
// # Failover
//
// When a worker fails a sub-batch — connect error, timeout, 429, or a
// 5xx — the front retries the sub-batch on the next live worker in ring
// order. Liveness blends two sources: the front's own observations
// (a transport error marks the worker down, a success marks it up) and
// the fleet scraper's per-instance up state, fed through the
// fleet.Config.OnLiveness callback into SetLive. Workers marked down
// are skipped on the first pass of the ladder and only tried again as a
// last resort, so a dead worker costs one sub-batch one timeout, not
// every request one. Estimation is pure computation, so replaying a
// possibly-half-finished sub-batch on another worker is safe.
//
// Worker 4xx responses other than 429 are permanent — the request
// itself is wrong — and propagate to the client unchanged (note:
// per-scenario indexes inside such error messages refer to the
// sub-batch the owning worker saw, not the client's batch).
//
// # Coordinated reload
//
// POST /v1/reload rolls the fleet one worker at a time: drain the
// worker's front-side gate (in-flight sub-requests finish, new ones
// queue), POST its /v1/reload, undrain, move on. A worker whose rebuild
// fails halts the rollout; the response then reports per-worker state —
// which workers swapped, which failed, which were never asked — with
// status 500 and "status": "partial", so the operator knows exactly how
// far the rollout got.
//
// # Observability
//
// The front exports its own series (front_requests_total{outcome},
// front_worker_requests_total{worker,outcome}, front_retries_total,
// front_rebalance_total) and mounts GET /metrics as the merged fleet
// view: the scraper's aggregation of every worker plus the front's own
// families, one scrape for the whole data plane. Every request carries
// an X-Trace-Id — inbound values are honored and forwarded to the
// owning worker, so one ID follows a request through the front into the
// worker's /debug/traces — and the ID is echoed on every response,
// including sheds, 415s, and exhausted-failover 502s.
package front
