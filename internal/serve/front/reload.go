package front

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// WorkerReload is one worker's row in a rolling-reload report.
type WorkerReload struct {
	Worker string `json:"worker"`
	// State is "reloaded", "failed", or "skipped" (the rollout halted
	// before reaching this worker).
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// ReloadReport is the POST /v1/reload response document. Status is
// "reloaded" when every worker swapped, "partial" when the rollout
// halted — the per-worker rows then say exactly how far it got.
type ReloadReport struct {
	Status  string         `json:"status"`
	Workers []WorkerReload `json:"workers"`
}

// handleReload rolls the fleet's registries one worker at a time:
// drain the worker's front-side gate (in-flight sub-requests finish,
// new ones queue behind the drain), POST its /v1/reload, undrain, move
// on. The first failure halts the rollout — half the fleet on the new
// registry and half on the old is a state the operator must know about
// before the front keeps pushing — and the report marks the remaining
// workers "skipped". Rollouts are serialized; a concurrent reload is a
// 409.
func (f *Front) handleReload(w http.ResponseWriter, r *http.Request) {
	if !f.reloadMu.TryLock() {
		serve.WriteJSONError(w, http.StatusConflict,
			errors.New("a rolling reload is already in progress"))
		return
	}
	defer f.reloadMu.Unlock()

	report := ReloadReport{Status: "reloaded"}
	traceID := r.Header.Get(serve.TraceIDHeader)
	halted := false
	for _, ws := range f.workers {
		row := WorkerReload{Worker: ws.w.Name, State: "reloaded"}
		if halted {
			row.State = "skipped"
		} else if err := f.reloadWorker(r.Context(), ws, traceID); err != nil {
			row.State, row.Error = "failed", err.Error()
			halted = true
		}
		report.Workers = append(report.Workers, row)
	}
	status := http.StatusOK
	if halted {
		report.Status = "partial"
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, report)
}

// reloadWorker quiesces and reloads one worker. The gate is undrained
// on every path — a worker whose rebuild failed keeps serving its old
// registry, which is exactly the atomic-swap guarantee the workers
// already make.
func (f *Front) reloadWorker(ctx context.Context, ws *workerState, traceID string) error {
	drainCtx, cancel := context.WithTimeout(ctx, f.cfg.DrainTimeout)
	err := ws.gate.Drain(drainCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("draining in-flight requests: %w", err)
	}
	defer ws.gate.Undrain()

	reloadCtx, cancel := context.WithTimeout(ctx, f.cfg.ReloadTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reloadCtx, http.MethodPost, ws.w.URL+"/v1/reload", nil)
	if err != nil {
		return err
	}
	req.Header.Set(serve.TraceIDHeader, traceID)
	resp, err := f.client.Do(req)
	if err != nil {
		f.SetLive(ws.w.Name, false)
		return fmt.Errorf("reload request: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker answered %d: %s", resp.StatusCode, errExcerpt(body))
	}
	f.SetLive(ws.w.Name, true)
	return nil
}
