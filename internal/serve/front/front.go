package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// Worker names one backend serve process.
type Worker struct {
	// Name is the worker's identity in metrics, reload reports, and the
	// scraper's instance label.
	Name string
	// URL is the worker's base URL, e.g. "http://127.0.0.1:8080".
	URL string
}

// Config parameterizes a Front. The zero value of each knob picks a
// usable default.
type Config struct {
	// Workers is the fleet, in ring order. The sharding function maps
	// scenarios onto positions in this slice, so the list must be the
	// same (same order) on every front for the cache partition to hold.
	Workers []Worker
	// Client issues the sub-requests; nil uses a dedicated keep-alive
	// client.
	Client *http.Client
	// Timeout bounds one sub-request attempt (connect + worker answer);
	// ≤ 0 means 30s. The client's own deadline (X-Estimate-Deadline-Ms /
	// request context) still applies on top.
	Timeout time.Duration
	// Retries caps the attempts per sub-batch beyond the first; ≤ 0
	// means every other worker may be tried (the full failover ladder).
	Retries int
	// WorkerConcurrent bounds the sub-requests in flight per worker
	// (the front-side token bucket a rolling reload drains); ≤ 0 means 8.
	WorkerConcurrent int
	// WorkerQueue bounds the sub-requests waiting per worker beyond the
	// concurrency budget; ≤ 0 means 64.
	WorkerQueue int
	// DrainTimeout bounds quiescing one worker's gate during a rolling
	// reload; ≤ 0 means 10s.
	DrainTimeout time.Duration
	// ReloadTimeout bounds one worker's registry rebuild during a
	// rolling reload; ≤ 0 means 60s.
	ReloadTimeout time.Duration
	// Metrics, when non-nil, records the front series (see NewMetrics).
	Metrics *Metrics
	// Logger, when non-nil, gets one debug line per failover retry and
	// per liveness flip.
	Logger *obs.Logger
	// Scraper, when non-nil, supplies the merged fleet view GET /metrics
	// serves and the /status scrape table. Feed its OnLiveness callback
	// into SetLive to blend scrape health into the failover ladder.
	Scraper *fleet.Scraper
}

// workerState is one worker's runtime state at the front.
type workerState struct {
	w    Worker
	gate *serve.Gate
	// down marks the worker skippable on the failover ladder's first
	// pass — set by transport errors and scraper down transitions,
	// cleared by any success (either source).
	down atomic.Bool
}

// Front is the sharding data plane over a fleet of serve workers. Build
// with New, mount Handler.
type Front struct {
	cfg     Config
	client  *http.Client
	workers []*workerState
	byName  map[string]*workerState

	// reloadMu serializes rolling reloads: a second POST /v1/reload
	// while one runs is a 409, not a second rollout.
	reloadMu sync.Mutex

	// Trace-ID minting, same scheme as the workers': a start-time seed
	// and an atomic counter.
	traceOnce sync.Once
	traceSeed uint64
	traceN    atomic.Uint64
}

// New builds a Front over cfg. Worker names must be unique: they key
// the per-worker metrics and the reload report.
func New(cfg Config) (*Front, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("front: no workers")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.WorkerConcurrent <= 0 {
		cfg.WorkerConcurrent = 8
	}
	if cfg.WorkerQueue <= 0 {
		cfg.WorkerQueue = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.ReloadTimeout <= 0 {
		cfg.ReloadTimeout = 60 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.WorkerConcurrent}}
	}
	f := &Front{cfg: cfg, client: client, byName: make(map[string]*workerState, len(cfg.Workers))}
	for _, w := range cfg.Workers {
		if w.Name == "" || w.URL == "" {
			return nil, fmt.Errorf("front: worker needs both a name and a URL, got %q=%q", w.Name, w.URL)
		}
		if _, dup := f.byName[w.Name]; dup {
			return nil, fmt.Errorf("front: duplicate worker name %q", w.Name)
		}
		for len(w.URL) > 0 && w.URL[len(w.URL)-1] == '/' {
			w.URL = w.URL[:len(w.URL)-1]
		}
		ws := &workerState{w: w, gate: serve.NewGate(cfg.WorkerConcurrent, cfg.WorkerQueue)}
		f.workers = append(f.workers, ws)
		f.byName[w.Name] = ws
	}
	return f, nil
}

// WorkerNames returns the fleet's names in ring order — the list
// NewMetrics pre-registers per-worker counters for.
func WorkerNames(workers []Worker) []string {
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = w.Name
	}
	return names
}

// SetLive marks one worker up or down on the failover ladder. Wire the
// scraper's OnLiveness callback here; the front's own transport
// observations call it too, so whichever source saw the flip first
// wins and whichever sees the recovery first clears it.
func (f *Front) SetLive(name string, up bool) {
	ws, ok := f.byName[name]
	if !ok {
		return
	}
	if ws.down.Swap(!up) == up && f.cfg.Logger != nil {
		f.cfg.Logger.Debug("worker liveness", obs.F("worker", name), obs.F("up", up))
	}
}

// Handler returns the front's HTTP handler: the worker-compatible
// estimate surface plus the fleet control and observability routes.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", f.handleEstimate)
	mux.HandleFunc("GET /v1/registry", f.handleRegistry)
	mux.HandleFunc("POST /v1/reload", f.handleReload)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /status", f.handleStatus)
	return f.withTraceID(f.recoverPanics(mux))
}

// validTraceID mirrors the workers' acceptance rule: printable ASCII
// without spaces, quotes, or backslashes, capped at 128 bytes.
func validTraceID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

func (f *Front) newTraceID() string {
	f.traceOnce.Do(func() {
		f.traceSeed = uint64(time.Now().UnixNano()) * 0x9E3779B97F4A7C15
		if f.traceSeed == 0 {
			f.traceSeed = 1
		}
	})
	buf := make([]byte, 0, 28)
	buf = strconv.AppendUint(buf, f.traceSeed, 16)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, f.traceN.Add(1), 16)
	return string(buf)
}

// withTraceID resolves the request's trace ID (inbound header or
// minted), echoes it on the response — sheds, 415s, and exhausted
// failovers included — and normalizes the request header so every
// sub-request forwards the same ID to its worker.
func (f *Front) withTraceID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(serve.TraceIDHeader)
		if !validTraceID(id) {
			id = f.newTraceID()
			r.Header.Set(serve.TraceIDHeader, id)
		}
		w.Header().Set(serve.TraceIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// recoverPanics converts a panicking handler into a 500 response, like
// the workers' middleware.
func (f *Front) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				serve.WriteJSONError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: front handler panicked: %v", rec))
				f.cfg.Metrics.request(http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// deadlineHeader is the per-request deadline override the front
// forwards to workers verbatim (the workers' X-Estimate-Deadline-Ms).
const deadlineHeader = "X-Estimate-Deadline-Ms"

// maxBodyBytes mirrors the workers' request-body cap.
const maxBodyBytes = 16 << 20

func (f *Front) handleEstimate(w http.ResponseWriter, r *http.Request) {
	f.cfg.Metrics.begin()
	defer f.cfg.Metrics.end()
	status := f.serveEstimate(w, r)
	f.cfg.Metrics.request(status)
}

// group is one worker's share of a client batch: the original indexes
// it owns, and — after the fan-out — either its decoded answers or how
// it failed.
type group struct {
	owner int   // ring position of the owning worker
	idx   []int // original scenario indexes, in sub-batch order

	// Success: the sub-batch answers (JSON/NDJSON decode into answers,
	// binary into wanswers) plus the worker's response envelope.
	answers                       []serve.Answer
	wanswers                      []wire.Answer
	registry, backend, provenance string
	cache                         string
	servedBy                      string

	// Permanent failure: the worker's authoritative non-retryable
	// response, propagated to the client verbatim.
	status int
	body   []byte
	header http.Header

	// Exhausted failover: every ladder rung failed retryably.
	err error
}

// serveEstimate does the work of POST /v1/estimate: decode, shard,
// fan out with failover, merge, re-encode. Returns the response status
// for the outcome series.
func (f *Front) serveEstimate(w http.ResponseWriter, r *http.Request) int {
	fail := func(status int, err error) int {
		serve.WriteJSONError(w, status, err)
		return status
	}
	codec, err := serve.NegotiateCodec(r.Header.Get("Content-Type"), true)
	if err != nil {
		w.Header().Set("Accept-Post", serve.AcceptPost)
		return fail(http.StatusUnsupportedMediaType, err)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return fail(status, fmt.Errorf("reading request body: %w", err))
	}

	// Decode just far enough to shard: scenario identities and the
	// registry name. Estimation-level validation stays on the workers.
	var regName string
	var scns []serve.Scenario
	var wreq wire.Request
	n := 0
	switch codec {
	case serve.CodecNDJSON:
		scns, err = serve.ParseNDJSON(body)
		n = len(scns)
	case serve.CodecBinary:
		if err = wreq.Decode(body); err == nil {
			regName = wreq.Registry
			n = len(wreq.Records)
		}
	default:
		regName, scns, err = serve.ParseJSONRequest(body)
		n = len(scns)
	}
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if regName == "" {
		regName = r.URL.Query().Get("registry")
	}
	if n == 0 {
		return fail(http.StatusBadRequest, errors.New("the request carries no scenarios"))
	}

	// Shard: owner per scenario, sub-batch per owner. Scenario order is
	// preserved inside each sub-batch, and idx remembers where each
	// answer goes in the merged response.
	nw := len(f.workers)
	byOwner := make([][]int, nw)
	if codec == serve.CodecBinary {
		for i, rec := range wreq.Records {
			o := Owner(wreq.Table[rec.Mach], wreq.Table[rec.Op], wreq.Table[rec.Alg], rec.P, rec.M, nw)
			byOwner[o] = append(byOwner[o], i)
		}
	} else {
		for i, sc := range scns {
			o := Owner(sc.Machine, sc.Op, sc.Algorithm, sc.P, sc.M, nw)
			byOwner[o] = append(byOwner[o], i)
		}
	}
	var groups []*group
	for o, idx := range byOwner {
		if len(idx) > 0 {
			groups = append(groups, &group{owner: o, idx: idx})
		}
	}

	traceID := r.Header.Get(serve.TraceIDHeader)
	deadlineMS := r.Header.Get(deadlineHeader)
	var wg sync.WaitGroup
	for _, g := range groups {
		sub, subErr := f.encodeSub(codec, regName, &wreq, scns, g.idx)
		if subErr != nil {
			return fail(http.StatusInternalServerError, subErr)
		}
		wg.Add(1)
		go func(g *group, sub []byte) {
			defer wg.Done()
			f.runGroup(r.Context(), g, codec, regName, sub, traceID, deadlineMS)
		}(g, sub)
	}
	wg.Wait()

	// Permanent worker refusals win over exhausted failovers: the 4xx
	// says the request itself is wrong, which no amount of retrying
	// would fix. Groups are in owner order, so the propagated failure is
	// deterministic for a given batch.
	for _, g := range groups {
		if g.status >= 400 {
			for _, h := range []string{"X-Estimate-Registry", "X-Estimate-Backend", "X-Estimate-Provenance"} {
				if v := g.header.Get(h); v != "" {
					w.Header().Set(h, v)
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(g.status)
			w.Write(g.body)
			return g.status
		}
	}
	for _, g := range groups {
		if g.err != nil {
			return fail(http.StatusBadGateway,
				fmt.Errorf("shard %d (%d scenarios): %w", g.owner, len(g.idx), g.err))
		}
	}

	// Merge. The envelope comes from the lowest-owner group — every
	// group resolved the same registry name, so the values agree; taking
	// the first makes the headers deterministic regardless of which
	// goroutine finished last.
	env := groups[0]
	serve.SetProvenanceHeaders(w, env.registry, env.backend, env.provenance)
	w.Header().Set("X-Estimate-Cache", mergeCacheVerdict(groups))
	switch codec {
	case serve.CodecBinary:
		merged := make([]wire.Answer, n)
		for _, g := range groups {
			for j, orig := range g.idx {
				merged[orig] = g.wanswers[j]
			}
		}
		buf := wire.AppendResponseHeader(nil, env.registry, env.backend, env.provenance, n)
		for i := range merged {
			buf = wire.AppendAnswer(buf, merged[i])
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(buf)
	case serve.CodecNDJSON:
		serve.WriteNDJSONAnswers(w, mergeAnswers(groups, n))
	default:
		resp := serve.Response{
			Registry: env.registry, Backend: env.backend, Provenance: env.provenance,
			Answers: mergeAnswers(groups, n),
		}
		serve.WriteJSONResponse(w, &resp)
	}
	return http.StatusOK
}

func mergeAnswers(groups []*group, n int) []serve.Answer {
	merged := make([]serve.Answer, n)
	for _, g := range groups {
		for j, orig := range g.idx {
			merged[orig] = g.answers[j]
		}
	}
	return merged
}

// mergeCacheVerdict folds the workers' X-Estimate-Cache headers into
// one: every worker hit → "hit", any miss → "miss", otherwise (some
// worker serves uncached) "bypass".
func mergeCacheVerdict(groups []*group) string {
	verdict := "hit"
	for _, g := range groups {
		switch g.cache {
		case "miss":
			return "miss"
		case "hit":
		default:
			verdict = "bypass"
		}
	}
	return verdict
}

// encodeSub builds one owner's sub-request body in the inbound codec.
// The binary sub-frame reuses the client's full string table, so record
// indexes stay valid without re-interning; the table travels once per
// sub-request, which is still far cheaper than JSON names per record.
func (f *Front) encodeSub(codec serve.Codec, regName string, wreq *wire.Request, scns []serve.Scenario, idx []int) ([]byte, error) {
	switch codec {
	case serve.CodecBinary:
		sub := wire.Request{Registry: regName, Table: wreq.Table, Records: make([]wire.Record, len(idx))}
		for j, orig := range idx {
			sub.Records[j] = wreq.Records[orig]
		}
		return sub.Append(nil), nil
	case serve.CodecNDJSON:
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, orig := range idx {
			if err := enc.Encode(&scns[orig]); err != nil {
				return nil, fmt.Errorf("encoding sub-batch: %w", err)
			}
		}
		return buf.Bytes(), nil
	default:
		sub := make([]serve.Scenario, len(idx))
		for j, orig := range idx {
			sub[j] = scns[orig]
		}
		b, err := json.Marshal(sub)
		if err != nil {
			return nil, fmt.Errorf("encoding sub-batch: %w", err)
		}
		return b, nil
	}
}

// ladder returns the failover order for one owner: live workers in
// ring order starting at the owner, then down-marked workers in the
// same order as a last resort — a dead worker costs the first sub-batch
// a timeout, not every sub-batch one.
func (f *Front) ladder(owner int) []*workerState {
	nw := len(f.workers)
	order := make([]*workerState, 0, nw)
	var skipped []*workerState
	for k := 0; k < nw; k++ {
		ws := f.workers[(owner+k)%nw]
		if ws.down.Load() {
			skipped = append(skipped, ws)
		} else {
			order = append(order, ws)
		}
	}
	return append(order, skipped...)
}

func (f *Front) maxAttempts() int {
	if f.cfg.Retries <= 0 || f.cfg.Retries > len(f.workers)-1 {
		return len(f.workers)
	}
	return f.cfg.Retries + 1
}

// runGroup sends one owner's sub-batch down the failover ladder until a
// worker answers it (or refuses it permanently, or the ladder runs
// out). Fills g with the outcome.
func (f *Front) runGroup(ctx context.Context, g *group, codec serve.Codec, regName string, sub []byte, traceID, deadlineMS string) {
	order := f.ladder(g.owner)
	if max := f.maxAttempts(); len(order) > max {
		order = order[:max]
	}
	owner := f.workers[g.owner]
	var lastErr error
	for ai, ws := range order {
		if ai > 0 {
			f.cfg.Metrics.retried()
			if f.cfg.Logger != nil {
				f.cfg.Logger.Debug("failover retry",
					obs.F("trace_id", traceID), obs.F("shard", g.owner),
					obs.F("worker", ws.w.Name), obs.F("attempt", ai+1),
					obs.F("error", fmt.Sprint(lastErr)))
			}
		}
		err := f.attempt(ctx, g, ws, codec, regName, sub, traceID, deadlineMS)
		if err == nil {
			if g.status >= 400 {
				// A permanent refusal is an answer: the worker is healthy
				// and the request is wrong.
				f.cfg.Metrics.worker(ws.w.Name, true)
			} else {
				f.cfg.Metrics.worker(ws.w.Name, true)
				f.SetLive(ws.w.Name, true)
				g.servedBy = ws.w.Name
				if ws != owner {
					f.cfg.Metrics.rebalanced()
				}
			}
			return
		}
		f.cfg.Metrics.worker(ws.w.Name, false)
		var transport *transportError
		if errors.As(err, &transport) {
			f.SetLive(ws.w.Name, false)
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the client is gone or its deadline passed; stop burning workers
		}
	}
	g.err = fmt.Errorf("all %d workers failed (last: %w)", len(order), lastErr)
}

// transportError marks a sub-request failure that never reached a
// worker handler — the liveness-flipping kind.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// attempt sends the sub-batch to one worker and decodes its response
// into g. A nil return means the ladder is done: either g holds the
// answers, or g.status holds a permanent refusal. A non-nil return
// means try the next rung (429, 5xx, transport error, or a 200 whose
// body does not decode).
func (f *Front) attempt(ctx context.Context, g *group, ws *workerState, codec serve.Codec, regName string, sub []byte, traceID, deadlineMS string) error {
	if err := ws.gate.Acquire(ctx, nil); err != nil {
		return &transportError{fmt.Errorf("front gate for %s: %w", ws.w.Name, err)}
	}
	defer ws.gate.Release()

	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	target := ws.w.URL + "/v1/estimate"
	// JSON sub-bodies are bare scenario arrays and NDJSON lines carry no
	// envelope, so the registry choice rides the query string; the
	// binary sub-frame already names it.
	if regName != "" && codec != serve.CodecBinary {
		target += "?registry=" + url.QueryEscape(regName)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(sub))
	if err != nil {
		return &transportError{err}
	}
	switch codec {
	case serve.CodecBinary:
		req.Header.Set("Content-Type", wire.ContentType)
	case serve.CodecNDJSON:
		req.Header.Set("Content-Type", "application/x-ndjson")
	default:
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(serve.TraceIDHeader, traceID)
	if deadlineMS != "" {
		req.Header.Set(deadlineHeader, deadlineMS)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return &transportError{fmt.Errorf("reading %s response: %w", ws.w.Name, err)}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := g.decode(codec, resp.Header, body); err != nil {
			return fmt.Errorf("%s answered 200 but: %w", ws.w.Name, err)
		}
		return nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return fmt.Errorf("%s answered %d: %s", ws.w.Name, resp.StatusCode, errExcerpt(body))
	default:
		// A non-429 4xx is authoritative; keep the worker's envelope.
		g.status = resp.StatusCode
		g.body = body
		g.header = resp.Header
		return nil
	}
}

// decode parses one worker's 200 response into the group, validating
// the answer count against the sub-batch so a malformed worker response
// fails over instead of merging short.
func (g *group) decode(codec serve.Codec, header http.Header, body []byte) error {
	g.cache = header.Get("X-Estimate-Cache")
	switch codec {
	case serve.CodecBinary:
		var wresp wire.Response
		if err := wresp.Decode(body); err != nil {
			return err
		}
		if len(wresp.Answers) != len(g.idx) {
			return fmt.Errorf("%d answers for %d scenarios", len(wresp.Answers), len(g.idx))
		}
		g.wanswers = wresp.Answers
		g.registry, g.backend, g.provenance = wresp.Registry, wresp.Backend, wresp.Provenance
	case serve.CodecNDJSON:
		answers, err := parseNDJSONAnswers(body)
		if err != nil {
			return err
		}
		if len(answers) != len(g.idx) {
			return fmt.Errorf("%d answers for %d scenarios", len(answers), len(g.idx))
		}
		g.answers = answers
		g.registry = header.Get("X-Estimate-Registry")
		g.backend = header.Get("X-Estimate-Backend")
		g.provenance = header.Get("X-Estimate-Provenance")
	default:
		var resp serve.Response
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("decoding response: %w", err)
		}
		if len(resp.Answers) != len(g.idx) {
			return fmt.Errorf("%d answers for %d scenarios", len(resp.Answers), len(g.idx))
		}
		g.answers = resp.Answers
		g.registry, g.backend, g.provenance = resp.Registry, resp.Backend, resp.Provenance
	}
	return nil
}

// parseNDJSONAnswers decodes one answer object per non-blank line.
func parseNDJSONAnswers(body []byte) ([]serve.Answer, error) {
	var answers []serve.Answer
	for line := 0; len(body) > 0; {
		raw := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			raw, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		line++
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		var a serve.Answer
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, fmt.Errorf("decoding NDJSON answer line %d: %w", line, err)
		}
		answers = append(answers, a)
	}
	return answers, nil
}

// errExcerpt pulls the error string out of a worker's JSON error
// envelope, falling back to a clipped raw body.
func errExcerpt(body []byte) string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return env.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(bytes.TrimSpace(body))
}

// handleRegistry proxies GET /v1/registry to the first worker that
// answers — the listing is fleet-uniform, any worker's copy serves.
func (f *Front) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var lastErr error = errors.New("no workers")
	for _, ws := range f.ladder(0) {
		ctx, cancel := context.WithTimeout(r.Context(), f.cfg.Timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.w.URL+"/v1/registry", nil)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		req.Header.Set(serve.TraceIDHeader, r.Header.Get(serve.TraceIDHeader))
		resp, err := f.client.Do(req)
		if err != nil {
			cancel()
			f.SetLive(ws.w.Name, false)
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		f.SetLive(ws.w.Name, true)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	serve.WriteJSONError(w, http.StatusBadGateway, fmt.Errorf("no worker answered the registry listing: %w", lastErr))
}

// handleMetrics serves the merged fleet view — the scraper's
// aggregation of every worker — with the front's own families appended,
// so one scrape covers the whole data plane. Without a scraper the
// front's own registry is served alone.
func (f *Front) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	merged := &obs.ParsedMetrics{}
	if f.cfg.Scraper != nil {
		var err error
		if merged, err = f.cfg.Scraper.Merged(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if reg := f.cfg.Metrics.Registry(); reg != nil {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		own, err := obs.ParsePrometheus(buf.Bytes())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		merged.Families = append(merged.Families, own.Families...)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	merged.WritePrometheus(w)
}

// WorkerStatus is one worker's row in the /status document.
type WorkerStatus struct {
	Name string `json:"worker"`
	URL  string `json:"url"`
	// Live is the failover ladder's current view: false means the
	// worker is skipped on the first pass.
	Live bool `json:"live"`
}

// handleStatus reports the front's failover view and, when a scraper
// is attached, the per-instance scrape health.
func (f *Front) handleStatus(w http.ResponseWriter, _ *http.Request) {
	doc := struct {
		Workers []WorkerStatus         `json:"workers"`
		Scrapes []fleet.InstanceStatus `json:"scrapes,omitempty"`
	}{}
	for _, ws := range f.workers {
		doc.Workers = append(doc.Workers, WorkerStatus{
			Name: ws.w.Name, URL: ws.w.URL, Live: !ws.down.Load(),
		})
	}
	if f.cfg.Scraper != nil {
		doc.Scrapes = f.cfg.Scraper.Status()
	}
	writeJSON(w, http.StatusOK, doc)
}

// writeJSON matches the workers' response framing (two-space indent,
// trailing newline) for the front's own JSON documents.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
