package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// tinyCfg mirrors the serve package's test methodology: fast,
// deterministic, seeded.
var tinyCfg = measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 3}

// testRegistry builds the serve package's two-entry test registry: a
// tiny calibrated set with handcrafted bounds, plus the paper's
// Table 3. Shared read-only across workers, so every worker answers
// identically by construction — what a uniform fleet deploys.
func testRegistry(t *testing.T, memo *estimate.SampleMemo) *estimate.Registry {
	t.Helper()
	cal := &estimate.Calibrated{
		Config: tinyCfg, Sizes: []int{4, 8}, Lengths: []int{16, 1024}, Memo: memo,
	}
	bounds := &estimate.ErrorTable{
		Backend: cal.Name(), Provenance: cal.Provenance(),
		Cells: []estimate.ErrorCell{
			{Machine: "T3D", Op: machine.OpBroadcast, M: 16, Median: 0.01, Max: 0.05, Points: 4},
			{Machine: "T3D", Op: machine.OpBroadcast, M: 1024, Median: 0.02, Max: 0.08, Points: 4},
		},
	}
	reg := estimate.NewRegistry()
	for _, e := range []*estimate.Entry{
		{Name: "test-cal", Description: "tiny calibrated set",
			Backend: cal, Bounds: bounds, Ranges: cal.Range},
		{Name: "paper", Description: "paper Table 3",
			Backend: estimate.PaperAnalytic()},
	} {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// workerHandle is one in-process fleet worker: a full serve.Server
// (metrics, traces, reloader) behind an httptest listener.
type workerHandle struct {
	name       string
	srv        *serve.Server
	hs         *httptest.Server
	reg        *obs.Registry
	failReload atomic.Bool
	reloads    atomic.Int64
}

// newWorker builds one instrumented worker over the shared registry.
func newWorker(t *testing.T, name string, sreg *estimate.Registry, memo *estimate.SampleMemo) *workerHandle {
	t.Helper()
	w := &workerHandle{name: name, reg: obs.NewRegistry()}
	w.srv = &serve.Server{
		Registry: sreg, Default: "test-cal",
		Sim: estimate.Sim{Memo: memo}, Config: tinyCfg,
		Obs:         serve.NewMetrics(w.reg),
		Traces:      obs.NewTraceRing(64),
		TraceSample: 1,
		Reloader: func() (*estimate.Registry, error) {
			if w.failReload.Load() {
				return nil, fmt.Errorf("injected reload failure on %s", name)
			}
			w.reloads.Add(1)
			return sreg, nil
		},
	}
	w.hs = httptest.NewServer(w.srv.Handler())
	t.Cleanup(w.hs.Close)
	return w
}

// fleetFixture is N in-process workers behind a front, plus one direct
// worker over the same registry for identity comparisons.
type fleetFixture struct {
	front   *Front
	hs      *httptest.Server
	metrics *Metrics
	workers []*workerHandle
	direct  *workerHandle
}

func newFleet(t *testing.T, n int) *fleetFixture {
	t.Helper()
	memo := estimate.NewSampleMemo()
	sreg := testRegistry(t, memo)
	fx := &fleetFixture{direct: newWorker(t, "direct", sreg, memo)}
	var ring []Worker
	for i := 0; i < n; i++ {
		w := newWorker(t, fmt.Sprintf("w%d", i), sreg, memo)
		fx.workers = append(fx.workers, w)
		ring = append(ring, Worker{Name: w.name, URL: w.hs.URL})
	}
	fx.metrics = NewMetrics(obs.NewRegistry(), WorkerNames(ring))
	f, err := New(Config{
		Workers: ring, Metrics: fx.metrics,
		Timeout: 10 * time.Second, DrainTimeout: 5 * time.Second, ReloadTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.front = f
	fx.hs = httptest.NewServer(f.Handler())
	t.Cleanup(fx.hs.Close)
	return fx
}

// testScenarios spans three machines and operations so a three-worker
// fleet gets sub-batches on every shard.
func testScenarios() []serve.Scenario {
	var scns []serve.Scenario
	for _, mo := range []struct {
		mach string
		op   string
	}{{"T3D", "broadcast"}, {"SP2", "alltoall"}, {"Paragon", "scatter"}} {
		for _, p := range []int{4, 8} {
			for _, m := range []int{16, 1024} {
				scns = append(scns, serve.Scenario{Machine: mo.mach, Op: mo.op, P: p, M: m})
			}
		}
	}
	return scns
}

func postBody(t *testing.T, url, contentType string, body []byte, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// promValues parses the single-value lines of a Prometheus text body.
func promValues(t *testing.T, body string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			continue // histogram sums can be floats; irrelevant here
		}
		out[line[:i]] = v
	}
	return out
}

func TestOwnerDeterminism(t *testing.T) {
	// "" and "default" are the same algorithm, so they must shard
	// identically — otherwise one scenario would warm two caches.
	if Owner("T3D", "broadcast", "", 8, 1024, 3) != Owner("T3D", "broadcast", "default", 8, 1024, 3) {
		t.Fatal(`"" and "default" algorithms shard differently`)
	}
	// Stability: the same identity always lands on the same worker.
	for i := 0; i < 3; i++ {
		if Owner("SP2", "alltoall", "", 32, 4096, 5) != Owner("SP2", "alltoall", "", 32, 4096, 5) {
			t.Fatal("Owner is not deterministic")
		}
	}
	// Field separation: shifting a byte across the machine/op boundary
	// changes the key.
	if Owner("T3Db", "roadcast", "", 8, 16, 1<<30) == Owner("T3D", "broadcast", "", 8, 16, 1<<30) {
		t.Fatal("field boundary does not separate the hash")
	}
	// The 788-grid spreads across a small fleet rather than collapsing
	// onto one worker.
	counts := make([]int, 3)
	for _, sc := range testScenarios() {
		counts[Owner(sc.Machine, sc.Op, sc.Algorithm, sc.P, sc.M, 3)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("worker %d owns no scenario of a 12-point spread: %v", i, counts)
		}
	}
}

func TestNewValidatesWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
	if _, err := New(Config{Workers: []Worker{{Name: "w0", URL: "http://a"}, {Name: "w0", URL: "http://b"}}}); err == nil {
		t.Fatal("New accepted duplicate worker names")
	}
	if _, err := New(Config{Workers: []Worker{{Name: "", URL: "http://a"}}}); err == nil {
		t.Fatal("New accepted a nameless worker")
	}
}

// TestFrontJSONByteIdentical is the sharding contract: the response the
// front assembles from three workers is byte-identical to the response
// one worker writes for the same batch.
func TestFrontJSONByteIdentical(t *testing.T) {
	fx := newFleet(t, 3)
	body, err := json.Marshal(testScenarios())
	if err != nil {
		t.Fatal(err)
	}
	direct := postBody(t, fx.direct.hs.URL+"/v1/estimate", "application/json", body, nil)
	fronted := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil)
	directBytes, frontBytes := readAll(t, direct), readAll(t, fronted)
	if direct.StatusCode != http.StatusOK || fronted.StatusCode != http.StatusOK {
		t.Fatalf("direct %d, front %d: %s", direct.StatusCode, fronted.StatusCode, frontBytes)
	}
	if !bytes.Equal(directBytes, frontBytes) {
		t.Fatalf("front response drifted from the direct worker's:\ndirect: %s\nfront:  %s", directBytes, frontBytes)
	}
	for _, h := range []string{"X-Estimate-Registry", "X-Estimate-Backend", "X-Estimate-Provenance"} {
		if fronted.Header.Get(h) != direct.Header.Get(h) {
			t.Fatalf("%s: front %q vs direct %q", h, fronted.Header.Get(h), direct.Header.Get(h))
		}
	}
	if id := fronted.Header.Get(serve.TraceIDHeader); id == "" {
		t.Fatal("front response carries no X-Trace-Id")
	}
	// The fleet actually sharded: more than one worker served estimate
	// requests.
	served := 0
	for _, w := range fx.workers {
		vals := promValues(t, string(readAll(t, postGet(t, w.hs.URL+"/metrics"))))
		if vals[`serve_requests_total{outcome="ok"}`] > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d workers served the batch — not sharded", served)
	}
}

func postGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFrontNDJSONByteIdentical(t *testing.T) {
	fx := newFleet(t, 3)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, sc := range testScenarios() {
		if err := enc.Encode(sc); err != nil {
			t.Fatal(err)
		}
	}
	direct := postBody(t, fx.direct.hs.URL+"/v1/estimate", "application/x-ndjson", buf.Bytes(), nil)
	fronted := postBody(t, fx.hs.URL+"/v1/estimate", "application/x-ndjson", buf.Bytes(), nil)
	directBytes, frontBytes := readAll(t, direct), readAll(t, fronted)
	if direct.StatusCode != http.StatusOK || fronted.StatusCode != http.StatusOK {
		t.Fatalf("direct %d, front %d: %s", direct.StatusCode, fronted.StatusCode, frontBytes)
	}
	if !bytes.Equal(directBytes, frontBytes) {
		t.Fatalf("NDJSON merge drifted:\ndirect: %s\nfront:  %s", directBytes, frontBytes)
	}
}

// wireRequest encodes scns as one binary request frame.
func wireRequest(scns []serve.Scenario) []byte {
	var req wire.Request
	index := map[string]uint32{}
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(req.Table))
		req.Table = append(req.Table, s)
		index[s] = i
		return i
	}
	for _, sc := range scns {
		req.Records = append(req.Records, wire.Record{
			Mach: intern(sc.Machine), Op: intern(sc.Op), Alg: intern(sc.Algorithm),
			P: sc.P, M: sc.M,
		})
	}
	return req.Append(nil)
}

func TestFrontBinaryByteIdentical(t *testing.T) {
	fx := newFleet(t, 3)
	frame := wireRequest(testScenarios())
	direct := postBody(t, fx.direct.hs.URL+"/v1/estimate", wire.ContentType, frame, nil)
	fronted := postBody(t, fx.hs.URL+"/v1/estimate", wire.ContentType, frame, nil)
	directBytes, frontBytes := readAll(t, direct), readAll(t, fronted)
	if direct.StatusCode != http.StatusOK || fronted.StatusCode != http.StatusOK {
		t.Fatalf("direct %d, front %d", direct.StatusCode, fronted.StatusCode)
	}
	if !bytes.Equal(directBytes, frontBytes) {
		t.Fatal("binary merge drifted from the direct worker's frame")
	}
	var dr, fr wire.Response
	if err := fr.Decode(frontBytes); err != nil {
		t.Fatalf("front frame does not decode: %v", err)
	}
	if err := dr.Decode(directBytes); err != nil {
		t.Fatal(err)
	}
	for i := range dr.Answers {
		if dr.Answers[i].Micros != fr.Answers[i].Micros {
			t.Fatalf("answer %d: direct %v vs front %v µs", i, dr.Answers[i].Micros, fr.Answers[i].Micros)
		}
	}
}

// TestFrontFailover kills a worker mid-fleet and requires the batch to
// still answer completely, with the retries counter moving and the dead
// worker marked down for the next request.
func TestFrontFailover(t *testing.T) {
	fx := newFleet(t, 3)
	scns := testScenarios()
	// Kill the worker that owns the first scenario, so at least one
	// sub-batch must fail over.
	owner := Owner(scns[0].Machine, scns[0].Op, scns[0].Algorithm, scns[0].P, scns[0].M, 3)
	fx.workers[owner].hs.Close()

	body, _ := json.Marshal(scns)
	resp := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch failed with a worker down: %d %s", resp.StatusCode, got)
	}
	var r serve.Response
	if err := json.Unmarshal(got, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Answers) != len(scns) {
		t.Fatalf("%d answers for %d scenarios", len(r.Answers), len(scns))
	}
	if fx.metrics.Retries() == 0 {
		t.Fatal("front_retries_total did not move during failover")
	}
	// The transport error marked the worker down; the next request's
	// ladder skips it (no new error-outcome sub-requests against it).
	vals := func() map[string]uint64 {
		var buf bytes.Buffer
		fx.metrics.Registry().WritePrometheus(&buf)
		return promValues(t, buf.String())
	}
	deadErr := vals()[fmt.Sprintf(`front_worker_requests_total{worker="w%d",outcome="error"}`, owner)]
	if deadErr == 0 {
		t.Fatal("dead worker's error counter did not move")
	}
	resp2 := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil)
	if readAll(t, resp2); resp2.StatusCode != http.StatusOK {
		t.Fatalf("second batch failed: %d", resp2.StatusCode)
	}
	if after := vals()[fmt.Sprintf(`front_worker_requests_total{worker="w%d",outcome="error"}`, owner)]; after != deadErr {
		t.Fatalf("down-marked worker was retried first pass: %d → %d errors", deadErr, after)
	}
	if vals()[`front_rebalance_total`] == 0 {
		t.Fatal("front_rebalance_total did not move though a non-owner answered")
	}
}

// TestFrontPermanent4xx: a worker's non-429 4xx propagates to the
// client unchanged instead of burning the failover ladder.
func TestFrontPermanent4xx(t *testing.T) {
	fx := newFleet(t, 3)
	body := []byte(`[{"machine":"NoSuchMachine","op":"broadcast","p":8,"m":16}]`)
	resp := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, got)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(got, &env); err != nil || env.Error == "" {
		t.Fatalf("propagated 400 lost the worker's error envelope: %s", got)
	}
	if fx.metrics.Retries() != 0 {
		t.Fatal("a permanent 4xx consumed failover retries")
	}
}

func TestFront415EchoesTraceAndAcceptPost(t *testing.T) {
	fx := newFleet(t, 2)
	resp := postBody(t, fx.hs.URL+"/v1/estimate", "text/xml", []byte("<no/>"),
		map[string]string{serve.TraceIDHeader: "front-415-probe"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", resp.StatusCode)
	}
	if got := resp.Header.Get("Accept-Post"); got != serve.AcceptPost {
		t.Fatalf("Accept-Post %q", got)
	}
	if got := resp.Header.Get(serve.TraceIDHeader); got != "front-415-probe" {
		t.Fatalf("shed path did not echo the inbound trace ID: %q", got)
	}
}

// TestTracePropagation sends a fixed X-Trace-Id through the front and
// finds it in the owning worker's /debug/traces ring.
func TestTracePropagation(t *testing.T) {
	fx := newFleet(t, 3)
	sc := serve.Scenario{Machine: "T3D", Op: "broadcast", P: 8, M: 16}
	owner := Owner(sc.Machine, sc.Op, sc.Algorithm, sc.P, sc.M, 3)
	body, _ := json.Marshal([]serve.Scenario{sc})
	const id = "fleet-trace-0042"
	resp := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body,
		map[string]string{serve.TraceIDHeader: id})
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.TraceIDHeader); got != id {
		t.Fatalf("front echoed %q, want %q", got, id)
	}
	traces := string(readAll(t, postGet(t, fx.workers[owner].hs.URL+"/debug/traces")))
	if !strings.Contains(traces, id) {
		t.Fatalf("owning worker w%d's trace ring lacks %q:\n%s", owner, id, traces)
	}
	// The exhausted-failover error path echoes the ID too.
	for _, w := range fx.workers {
		w.hs.Close()
	}
	resp2 := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body,
		map[string]string{serve.TraceIDHeader: "fleet-trace-down"})
	readAll(t, resp2)
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d with the whole fleet down, want 502", resp2.StatusCode)
	}
	if got := resp2.Header.Get(serve.TraceIDHeader); got != "fleet-trace-down" {
		t.Fatalf("502 path did not echo the trace ID: %q", got)
	}
}

// TestRollingReloadUnderLoad rolls the fleet while traffic flows:
// zero non-200 estimate responses, every worker's
// serve_reloads_total{result="ok"} moves, and the report says
// "reloaded" for all three.
func TestRollingReloadUnderLoad(t *testing.T) {
	fx := newFleet(t, 3)
	body, _ := json.Marshal(testScenarios())
	// Warm once so calibration cost doesn't stretch the traffic loop.
	if resp := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: %d", resp.StatusCode)
	} else {
		readAll(t, resp)
	}

	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(fx.hs.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
		}()
	}

	resp := postBody(t, fx.hs.URL+"/v1/reload", "", nil, nil)
	report := readAll(t, resp)
	close(stop)
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rolling reload answered %d: %s", resp.StatusCode, report)
	}
	var rr ReloadReport
	if err := json.Unmarshal(report, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "reloaded" || len(rr.Workers) != 3 {
		t.Fatalf("report %+v", rr)
	}
	for _, row := range rr.Workers {
		if row.State != "reloaded" {
			t.Fatalf("worker %s state %q", row.Worker, row.State)
		}
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d estimate requests failed during the rolling reload", n)
	}
	for _, w := range fx.workers {
		vals := promValues(t, string(readAll(t, postGet(t, w.hs.URL+"/metrics"))))
		if vals[`serve_reloads_total{result="ok"}`] == 0 {
			t.Fatalf("worker %s never reloaded", w.name)
		}
	}
}

// TestReloadHaltsOnFailure: a worker whose rebuild fails stops the
// rollout; the report is "partial" with the remaining workers skipped,
// and the fleet keeps serving.
func TestReloadHaltsOnFailure(t *testing.T) {
	fx := newFleet(t, 3)
	fx.workers[1].failReload.Store(true)
	resp := postBody(t, fx.hs.URL+"/v1/reload", "", nil, nil)
	report := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("halted rollout answered %d, want 500: %s", resp.StatusCode, report)
	}
	var rr ReloadReport
	if err := json.Unmarshal(report, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "partial" {
		t.Fatalf("status %q, want partial", rr.Status)
	}
	want := []string{"reloaded", "failed", "skipped"}
	for i, row := range rr.Workers {
		if row.State != want[i] {
			t.Fatalf("worker %d state %q, want %q (report %+v)", i, row.State, want[i], rr)
		}
	}
	if rr.Workers[1].Error == "" {
		t.Fatal("failed worker's row carries no error")
	}
	// The gate was undrained on the failure path: traffic still flows.
	body, _ := json.Marshal(testScenarios()[:2])
	if resp := postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet stopped serving after a failed rollout: %d", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
}

// TestFrontMetricsAndStatus: GET /metrics exposes the front's own
// families, and /status reports the failover view.
func TestFrontMetricsAndStatus(t *testing.T) {
	fx := newFleet(t, 2)
	body, _ := json.Marshal(testScenarios()[:4])
	readAll(t, postBody(t, fx.hs.URL+"/v1/estimate", "application/json", body, nil))

	metrics := string(readAll(t, postGet(t, fx.hs.URL+"/metrics")))
	vals := promValues(t, metrics)
	if vals[`front_requests_total{outcome="ok"}`] != 1 {
		t.Fatalf("front_requests_total{ok} = %d, want 1\n%s",
			vals[`front_requests_total{outcome="ok"}`], metrics)
	}
	if !strings.Contains(metrics, "front_worker_requests_total") {
		t.Fatal("per-worker series missing from /metrics")
	}

	status := readAll(t, postGet(t, fx.hs.URL+"/status"))
	var doc struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := json.Unmarshal(status, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Workers) != 2 || !doc.Workers[0].Live || !doc.Workers[1].Live {
		t.Fatalf("status %s", status)
	}
}

// TestRegistryProxy: GET /v1/registry through the front matches a
// direct worker's listing.
func TestRegistryProxy(t *testing.T) {
	fx := newFleet(t, 2)
	fronted := readAll(t, postGet(t, fx.hs.URL+"/v1/registry"))
	direct := readAll(t, postGet(t, fx.direct.hs.URL+"/v1/registry"))
	if !bytes.Equal(fronted, direct) {
		t.Fatalf("registry listing drifted:\nfront:  %s\ndirect: %s", fronted, direct)
	}
}
