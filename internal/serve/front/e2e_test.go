package front

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// TestE2EDefaultGrid is the fleet acceptance pin: the default
// 788-scenario sweep grid, answered through a three-worker sharded
// fleet with validated error bounds attached, must be byte-identical
// (JSON) and numerically identical (binary wire) to the same batch
// answered by one worker directly — and must survive losing a worker
// mid-load with zero failed requests.
func TestE2EDefaultGrid(t *testing.T) {
	if raceEnabled {
		t.Skip("the full-grid E2E is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("full default grid in -short mode")
	}

	// The default cmd/sweep grid, with bounds built the way
	// `sweep -validate -cache` persists them. The registry is shared
	// read-only across the fleet and the direct worker — what a uniform
	// deploy from one sweep cache looks like — so every answer has one
	// source of truth.
	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      estimate.DefaultCalibrationSizes,
	}
	scns, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 788 {
		t.Fatalf("default grid expands to %d scenarios, want 788", len(scns))
	}
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-default")
	if err != nil {
		t.Fatal(err)
	}
	simResults := (&sweep.Runner{Backend: estimate.Sim{Memo: memo}}).Run(scns)
	estResults := (&sweep.Runner{Backend: entry.Backend}).Run(scns)
	pairs, err := sweep.Pair(simResults, estResults)
	if err != nil {
		t.Fatal(err)
	}
	table := sweep.BuildErrorTable(entry.Backend, pairs)
	entry.Bounds = &table

	mkWorker := func(name string) *workerHandle {
		w := newWorker(t, name, reg, memo)
		w.srv.Default = "refit-default"
		return w
	}
	direct := mkWorker("direct")
	var ring []Worker
	var fleet []*workerHandle
	for _, name := range []string{"w0", "w1", "w2"} {
		w := mkWorker(name)
		fleet = append(fleet, w)
		ring = append(ring, Worker{Name: w.name, URL: w.hs.URL})
	}
	metrics := NewMetrics(obs.NewRegistry(), WorkerNames(ring))
	f, err := New(Config{Workers: ring, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	fhs := httptest.NewServer(f.Handler())
	t.Cleanup(fhs.Close)
	front := fhs.URL

	request := make([]serve.Scenario, 0, len(scns))
	for _, sc := range scns {
		request = append(request, serve.Scenario{
			Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M,
		})
	}
	body, err := json.Marshal(request)
	if err != nil {
		t.Fatal(err)
	}

	// JSON: byte identity against the direct worker, cold and warm.
	directResp := postBody(t, direct.hs.URL+"/v1/estimate", "application/json", body, nil)
	directBytes := readAll(t, directResp)
	if directResp.StatusCode != http.StatusOK {
		t.Fatalf("direct worker: %d", directResp.StatusCode)
	}
	for _, pass := range []string{"cold", "warm"} {
		resp := postBody(t, front+"/v1/estimate", "application/json", body, nil)
		got := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s fleet pass: %d %s", pass, resp.StatusCode, got[:min(len(got), 400)])
		}
		if !bytes.Equal(got, directBytes) {
			t.Fatalf("%s fleet response drifted from the direct worker's (%d vs %d bytes)",
				pass, len(got), len(directBytes))
		}
	}

	// Every worker served a share: the grid actually sharded.
	counts := make([]int, len(ring))
	for _, sc := range request {
		counts[Owner(sc.Machine, sc.Op, sc.Algorithm, sc.P, sc.M, len(ring))]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("worker %d owns no scenario of the 788 grid: %v", i, counts)
		}
	}

	// Binary wire: the merged frame decodes to the same float64 bits the
	// direct worker answers (and, with a deterministic encoder on both
	// sides, the same bytes).
	frame := wireRequest(request)
	wd := readAll(t, postBody(t, direct.hs.URL+"/v1/estimate", wire.ContentType, frame, nil))
	wf := readAll(t, postBody(t, front+"/v1/estimate", wire.ContentType, frame, nil))
	var dr, fr wire.Response
	if err := dr.Decode(wd); err != nil {
		t.Fatal(err)
	}
	if err := fr.Decode(wf); err != nil {
		t.Fatal(err)
	}
	if len(dr.Answers) != 788 || len(fr.Answers) != 788 {
		t.Fatalf("wire answers: direct %d, fleet %d", len(dr.Answers), len(fr.Answers))
	}
	for i := range dr.Answers {
		if dr.Answers[i].Micros != fr.Answers[i].Micros {
			t.Fatalf("wire answer %d: direct %v vs fleet %v µs", i, dr.Answers[i].Micros, fr.Answers[i].Micros)
		}
	}
	if !bytes.Equal(wd, wf) {
		t.Fatal("wire frames differ beyond numerics — encoder drift")
	}

	// Kill one worker mid-load: the full grid must still answer with
	// zero failed requests, and the retry counter must move.
	before := metrics.Retries()
	fleet[1].hs.Close()
	resp := postBody(t, front+"/v1/estimate", "application/json", body, nil)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid failed with w1 down: %d", resp.StatusCode)
	}
	if !bytes.Equal(got, directBytes) {
		t.Fatal("failover response drifted from the direct worker's")
	}
	if metrics.Retries() == before {
		t.Fatal("front_retries_total did not move while a worker was down")
	}
}
