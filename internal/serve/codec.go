package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"sync"

	"repro/internal/serve/wire"
)

// Codec names the wire formats POST /v1/estimate negotiates by
// Content-Type. JSON stays the default (and the golden-pinned format);
// NDJSON is the curl-able streaming fallback; binary is the
// length-prefixed fast path (package wire). Exported because the
// sharding front (internal/serve/front) speaks the same three formats:
// it negotiates with NegotiateCodec, splits requests with the Parse
// helpers, and merges worker answers back with the Write helpers.
type Codec int

const (
	CodecUnknown Codec = iota - 1 // negotiation failed (415)
	CodecJSON
	CodecNDJSON
	CodecBinary
	numCodecs = 3
)

var codecNames = [numCodecs]string{"json", "ndjson", "binary"}

// Content types the endpoint accepts. JSON additionally answers
// requests with no Content-Type at all and curl's -d default
// (x-www-form-urlencoded), which has always carried JSON here.
const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"
)

// AcceptPost is the Accept-Post header value a 415 response carries.
const AcceptPost = ctJSON + ", " + ctNDJSON + ", " + wire.ContentType

// NegotiateCodec maps a request's Content-Type to a codec. Unknown
// types are a 415 — falling through to the JSON decoder would surface
// as a confusing syntax 400. wireEnabled false restricts negotiation to
// the JSON content types (the DisableWire server mode).
func NegotiateCodec(contentType string, wireEnabled bool) (Codec, error) {
	if contentType == "" {
		return CodecJSON, nil
	}
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return CodecUnknown, fmt.Errorf("unparseable Content-Type %q; supported: %s", contentType, AcceptPost)
	}
	switch mt {
	case ctJSON, "text/json", "application/x-www-form-urlencoded":
		return CodecJSON, nil
	case ctNDJSON:
		if wireEnabled {
			return CodecNDJSON, nil
		}
	case wire.ContentType:
		if wireEnabled {
			return CodecBinary, nil
		}
	}
	return CodecUnknown, fmt.Errorf("unsupported Content-Type %q; supported: %s", contentType, AcceptPost)
}

func (s *Server) negotiate(r *http.Request) (Codec, error) {
	return NegotiateCodec(r.Header.Get("Content-Type"), !s.DisableWire)
}

// ParseNDJSON decodes one scenario object per non-blank line.
func ParseNDJSON(body []byte) ([]Scenario, error) {
	var scns []Scenario
	for line := 0; len(body) > 0; {
		raw := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			raw, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		line++
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		var sc Scenario
		if err := json.Unmarshal(raw, &sc); err != nil {
			return nil, fmt.Errorf("decoding NDJSON line %d: %w", line, err)
		}
		scns = append(scns, sc)
	}
	return scns, nil
}

// WriteNDJSONAnswers streams one compact answer object per line. The
// response envelope (registry, backend, provenance) travels in the
// X-Estimate-* headers, like every response.
func WriteNDJSONAnswers(w http.ResponseWriter, answers []Answer) {
	buf := getBuffer()
	defer putBuffer(buf)
	enc := json.NewEncoder(buf)
	for i := range answers {
		if err := enc.Encode(&answers[i]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", ctNDJSON)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// resolveWire binds a decoded binary request into res. Each distinct
// (machine, op, algorithm) index triple is resolved once per request
// through the scratch memo — the point of the string table — and every
// record then pays only the (p, m) validation.
func (s *Server) resolveWire(req *wire.Request, scr *scratch, res []resolved) error {
	clear(scr.triples)
	for i, rec := range req.Records {
		tk := uint64(rec.Mach)<<42 | uint64(rec.Op)<<21 | uint64(rec.Alg)
		base, ok := scr.triples[tk]
		if !ok {
			var err error
			base, err = s.resolveTriple(req.Table[rec.Mach], req.Table[rec.Op], req.Table[rec.Alg])
			if err != nil {
				return fmt.Errorf("scenario %d (%s/%s): %w",
					i, req.Table[rec.Mach], req.Table[rec.Op], err)
			}
			scr.triples[tk] = base
		}
		rs := base
		if err := s.checkPM(&rs, rec.P, rec.M); err != nil {
			return fmt.Errorf("scenario %d (%s/%s): %w",
				i, req.Table[rec.Mach], req.Table[rec.Op], err)
		}
		res[i] = rs
	}
	return nil
}

// writeWire encodes the binary response into the scratch buffer (grown
// once, reused across requests) and writes it in one call.
func writeWire(w http.ResponseWriter, scr *scratch, registry, backend, provenance string, answers []Answer) {
	b := wire.AppendResponseHeader(scr.wbuf[:0], registry, backend, provenance, len(answers))
	for i := range answers {
		a := &answers[i]
		wa := wire.Answer{Micros: a.Micros, Fallback: a.Fallback, FallbackReason: a.FallbackReason}
		if a.ExpectedError != nil {
			wa.HasBound = true
			wa.Bound = wire.Bound{
				RelMedian: a.ExpectedError.RelMedian, RelMax: a.ExpectedError.RelMax,
				BasisM: a.ExpectedError.BasisM, Points: a.ExpectedError.Points,
				SegmentMMin: a.ExpectedError.SegmentMMin, SegmentMMax: a.ExpectedError.SegmentMMax,
			}
		}
		b = wire.AppendAnswer(b, wa)
	}
	scr.wbuf = b
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// bufPool recycles the request-body and response-encode buffers across
// requests — per-request buffer allocation was a measurable share of
// the JSON path's cost, and the binary path wants none at all.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuffer keeps one-off giants (a near-cap request body) from
// pinning memory in the pool; a batched 788-scenario response is well
// under it.
const maxPooledBuffer = 4 << 20

func getBuffer() *bytes.Buffer {
	return bufPool.Get().(*bytes.Buffer)
}

func putBuffer(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// scratch is the per-request working set — resolved scenarios,
// answers, cache verdicts, the decoded binary frame, and the binary
// encode buffer — pooled so a steady request stream stops allocating
// per request on every codec path. Slices are resliced and fully
// overwritten each use.
type scratch struct {
	res     []resolved
	answers []Answer
	cres    []uint8
	errs    []error
	wreq    wire.Request
	wbuf    []byte
	triples map[uint64]resolved
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{triples: make(map[uint64]resolved)}
}}

func getScratch() *scratch {
	return scratchPool.Get().(*scratch)
}

func putScratch(s *scratch) {
	if cap(s.res) > 1<<16 { // a pathological one-off batch shouldn't pin its arena
		return
	}
	scratchPool.Put(s)
}

func (s *scratch) resolvedSlice(n int) []resolved {
	if cap(s.res) < n {
		s.res = make([]resolved, n)
	}
	s.res = s.res[:n]
	return s.res
}

func (s *scratch) answerSlice(n int) []Answer {
	if cap(s.answers) < n {
		s.answers = make([]Answer, n)
	}
	s.answers = s.answers[:n]
	return s.answers
}

func (s *scratch) cacheSlice(n int) []uint8 {
	if cap(s.cres) < n {
		s.cres = make([]uint8, n)
	}
	s.cres = s.cres[:n]
	return s.cres
}

// errSlice returns the per-scenario error slice, cleared: unlike the
// other scratch slices it is sparsely written (most scenarios succeed),
// so stale pooled values must be zeroed.
func (s *scratch) errSlice(n int) []error {
	if cap(s.errs) < n {
		s.errs = make([]error, n)
		return s.errs
	}
	s.errs = s.errs[:n]
	for i := range s.errs {
		s.errs[i] = nil
	}
	return s.errs
}
