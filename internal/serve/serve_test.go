package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// tinyCfg keeps handler tests fast while preserving the methodology.
var tinyCfg = measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 3}

// testServer builds a server over a fixed two-entry registry: a tiny
// calibrated set (sizes 4,8 × lengths 16,1024) with handcrafted error
// bounds, and the paper's Table 3.
func testServer(t *testing.T) *Server {
	t.Helper()
	memo := estimate.NewSampleMemo()
	cal := &estimate.Calibrated{
		Config: tinyCfg, Sizes: []int{4, 8}, Lengths: []int{16, 1024}, Memo: memo,
	}
	bounds := &estimate.ErrorTable{
		Backend: cal.Name(), Provenance: cal.Provenance(),
		Cells: []estimate.ErrorCell{
			{Machine: "T3D", Op: machine.OpBroadcast, M: 16, Median: 0.01, Max: 0.05, Points: 4},
			{Machine: "T3D", Op: machine.OpBroadcast, M: 1024, Median: 0.02, Max: 0.08, Points: 4},
		},
	}
	reg := estimate.NewRegistry()
	for _, e := range []*estimate.Entry{
		{
			Name: "test-cal", Description: "tiny calibrated set",
			Backend: cal, Bounds: bounds, Ranges: cal.Range,
		},
		{
			Name: "paper", Description: "paper Table 3",
			Backend: estimate.PaperAnalytic(),
		},
	} {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	return &Server{
		Registry: reg, Default: "test-cal",
		Sim: estimate.Sim{Memo: memo}, Config: tinyCfg,
	}
}

// post sends body to the estimate endpoint (plus rawQuery, e.g.
// "registry=paper") and returns the recorded response.
func post(t *testing.T, s *Server, body, rawQuery string) *httptest.ResponseRecorder {
	t.Helper()
	url := "/v1/estimate"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder) Response {
	t.Helper()
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, rec.Body.String())
	}
	return resp
}

func TestSingleScenarioShorthand(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, `{"machine":"T3D","op":"broadcast","p":8,"m":1024}`, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode(t, rec)
	if resp.Registry != "test-cal" || resp.Backend != estimate.BackendCalibrated {
		t.Fatalf("envelope %+v", resp)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("got %d answers", len(resp.Answers))
	}
	a := resp.Answers[0]
	if a.Backend != estimate.BackendCalibrated || a.Fallback || a.Micros <= 0 {
		t.Fatalf("answer %+v", a)
	}
	if a.Algorithm != "default" {
		t.Fatalf("algorithm echo %q, want the normalized default alias", a.Algorithm)
	}
	if a.ExpectedError == nil || a.ExpectedError.BasisM != 1024 || a.ExpectedError.RelMedian != 0.02 {
		t.Fatalf("expected_error %+v", a.ExpectedError)
	}
	// Provenance travels both in the envelope and the headers.
	if got := rec.Header().Get("X-Estimate-Registry"); got != "test-cal" {
		t.Fatalf("X-Estimate-Registry %q", got)
	}
	if got := rec.Header().Get("X-Estimate-Provenance"); got != resp.Provenance || got == "" {
		t.Fatalf("X-Estimate-Provenance %q vs body %q", got, resp.Provenance)
	}
}

func TestBoundUsesNearestValidatedLength(t *testing.T) {
	s := testServer(t)
	// m=300 is inside the calibrated range but was never validated;
	// the bound must come from the nearest validated length (1024 is
	// nearer than 16 on a log scale) and say so via basis_m.
	resp := decode(t, post(t, s, `{"machine":"T3D","op":"broadcast","p":8,"m":300}`, ""))
	a := resp.Answers[0]
	if a.Fallback {
		t.Fatalf("m=300 should be in range: %+v", a)
	}
	if a.ExpectedError == nil || a.ExpectedError.BasisM != 1024 {
		t.Fatalf("expected_error %+v, want basis_m 1024", a.ExpectedError)
	}
}

// TestSparseBoundsDropSegmentClaim: when the validation grid has no
// cell inside the serving segment, BoundIn borrows the nearest cell
// from another regime — the answer must then carry the bound WITHOUT
// segment_m_min/segment_m_max, never a basis_m that contradicts the
// segment it claims to be scoped to.
func TestSparseBoundsDropSegmentClaim(t *testing.T) {
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-piecewise")
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately sparse validation: only the longest length.
	entry.Bounds = &estimate.ErrorTable{
		Backend: entry.Backend.Name(), Provenance: entry.Backend.Provenance(),
		Cells: []estimate.ErrorCell{
			{Machine: "T3D", Op: machine.OpBroadcast, M: 65536, Median: 0.002, Max: 0.004, Points: 4},
		},
	}
	s := &Server{Registry: reg, Default: "refit-piecewise", Sim: estimate.Sim{Memo: memo}}
	resp := decode(t, post(t, s, `{"machine":"T3D","op":"broadcast","p":8,"m":16}`, ""))
	a := resp.Answers[0]
	if a.Fallback || a.ExpectedError == nil {
		t.Fatalf("answer %+v", a)
	}
	b := a.ExpectedError
	if b.BasisM != 65536 {
		t.Fatalf("basis_m %d, want the only validated cell 65536", b.BasisM)
	}
	if b.SegmentMMin != 0 || b.SegmentMMax != 0 {
		t.Fatalf("cross-regime bound must not claim segment scope: %+v", b)
	}
}

func TestBatchArrayAndRegistrySelection(t *testing.T) {
	s := testServer(t)
	body := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	          {"machine":"SP2","op":"alltoall","p":8,"m":1024}]`
	resp := decode(t, post(t, s, body, ""))
	if len(resp.Answers) != 2 || resp.Registry != "test-cal" {
		t.Fatalf("envelope %+v", resp)
	}
	if resp.Answers[1].Machine != "SP2" || resp.Answers[1].Op != "alltoall" {
		t.Fatalf("answers out of request order: %+v", resp.Answers)
	}

	// A bare array picks its registry from the query string; the
	// envelope form carries it in the body.
	viaQuery := decode(t, post(t, s, body, "registry=paper"))
	if viaQuery.Backend != estimate.BackendAnalytic {
		t.Fatalf("query registry selection: %+v", viaQuery)
	}
	viaBody := decode(t, post(t, s,
		`{"registry":"paper","scenarios":[{"machine":"SP2","op":"alltoall","p":8,"m":1024}]}`, ""))
	if viaBody.Backend != estimate.BackendAnalytic || len(viaBody.Answers) != 1 {
		t.Fatalf("body registry selection: %+v", viaBody)
	}
}

func TestOutOfRangeFallsBackToSim(t *testing.T) {
	s := testServer(t)
	// m=65536 leaves the tiny calibrated envelope (m ≤ 1024); the
	// answer must come from the exact simulator, flagged, and match a
	// direct sim measurement bit for bit.
	resp := decode(t, post(t, s, `{"machine":"T3D","op":"broadcast","p":8,"m":65536}`, ""))
	a := resp.Answers[0]
	if !a.Fallback || a.Backend != estimate.BackendSim {
		t.Fatalf("answer %+v, want sim fallback", a)
	}
	if !strings.Contains(a.FallbackReason, "outside the calibrated range") {
		t.Fatalf("reason %q", a.FallbackReason)
	}
	if a.ExpectedError != nil {
		t.Fatalf("sim fallback should carry no bound: %+v", a.ExpectedError)
	}
	mach := machine.T3D()
	want, err := estimate.Sim{}.Estimate(context.Background(), mach, machine.OpBroadcast, mpi.DefaultAlgorithms(mach), 8, 65536, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Micros != want.Sample.Micros {
		t.Fatalf("fallback micros %v, direct sim %v", a.Micros, want.Sample.Micros)
	}

	// An expression set with no fit at all for the pair (Table 3 never
	// fitted allgather) falls back too, with a different reason — even
	// on this fixture's unbounded paper entry, where evaluating the
	// missing expression would otherwise panic.
	uncovered := decode(t, post(t, s, `{"machine":"SP2","op":"allgather","p":8,"m":64}`, "registry=paper"))
	u := uncovered.Answers[0]
	if !u.Fallback || u.Backend != estimate.BackendSim || !strings.Contains(u.FallbackReason, "no paper expression") {
		t.Fatalf("uncovered pair answer %+v", u)
	}
}

func TestStandardRegistryUncoveredPair(t *testing.T) {
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo, Config: tinyCfg})
	s := &Server{Registry: reg, Default: "paper-table3", Sim: estimate.Sim{Memo: memo}, Config: tinyCfg}
	// Table 3 has no allgather row: the standard registry's paper
	// entry reports the pair uncovered and the simulator answers.
	resp := decode(t, post(t, s, `{"machine":"SP2","op":"allgather","p":8,"m":64}`, ""))
	a := resp.Answers[0]
	if !a.Fallback || a.Backend != estimate.BackendSim {
		t.Fatalf("answer %+v, want sim fallback for an unfitted pair", a)
	}
	if !strings.Contains(a.FallbackReason, "no paper-table3 expression") {
		t.Fatalf("reason %q", a.FallbackReason)
	}
	// In-table requests stay analytic.
	in := decode(t, post(t, s, `{"machine":"SP2","op":"alltoall","p":8,"m":1024}`, ""))
	if in.Answers[0].Fallback || in.Answers[0].Backend != estimate.BackendAnalytic {
		t.Fatalf("in-table answer %+v", in.Answers[0])
	}
	// Table 3 models the vendor-default algorithms only: naming another
	// variant must be answered by sim (not silently served the default
	// variant's number), while naming the default variant explicitly
	// stays analytic.
	variant := decode(t, post(t, s, `{"machine":"SP2","op":"alltoall","algorithm":"bruck","p":8,"m":1024}`, ""))
	v := variant.Answers[0]
	if !v.Fallback || v.Backend != estimate.BackendSim ||
		!strings.Contains(v.FallbackReason, "vendor-default algorithms only") {
		t.Fatalf("non-default variant answer %+v", v)
	}
	named := decode(t, post(t, s, `{"machine":"SP2","op":"alltoall","algorithm":"pairwise","p":8,"m":1024}`, ""))
	if named.Answers[0].Fallback || named.Answers[0].Backend != estimate.BackendAnalytic {
		t.Fatalf("explicitly-named default variant answer %+v", named.Answers[0])
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"syntax", `{"machine":`, "decoding request"},
		{"empty", `{}`, "no scenarios"},
		{"empty-array", `[]`, "no scenarios"},
		{"unknown-machine", `{"machine":"SP3","op":"broadcast","p":8,"m":16}`, `unknown machine "SP3" (valid: Paragon, SP2, T3D)`},
		{"unknown-op", `{"machine":"SP2","op":"gossip","p":8,"m":16}`, `unknown operation "gossip"`},
		{"unknown-algorithm", `{"machine":"SP2","op":"broadcast","algorithm":"quantum","p":8,"m":16}`, `unknown algorithm "quantum"`},
		{"hardware-needs-machine", `{"machine":"SP2","op":"barrier","algorithm":"hardware","p":8}`, `unknown algorithm "hardware"`},
		{"p-too-small", `{"machine":"SP2","op":"broadcast","p":1,"m":16}`, "at least 2 nodes"},
		{"p-too-big", `{"machine":"T3D","op":"broadcast","p":1024,"m":16}`, "exceeds the T3D's 64 nodes"},
		{"m-negative", `{"machine":"SP2","op":"broadcast","p":8,"m":-4}`, "negative message length"},
		{"m-too-big", `{"machine":"SP2","op":"broadcast","p":8,"m":999999999}`, "exceeds the service cap"},
		{"unknown-registry", `{"registry":"nope","scenarios":[{"machine":"SP2","op":"broadcast","p":8,"m":16}]}`, `unknown registry "nope" (valid: paper, test-cal)`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, tc.body, "")
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", rec.Body.String())
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q, want substring %q", e.Error, tc.want)
			}
		})
	}
}

func TestBatchCapAndMethods(t *testing.T) {
	s := testServer(t)
	s.MaxBatch = 2
	rec := post(t, s, `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
		{"machine":"T3D","op":"broadcast","p":8,"m":16},
		{"machine":"T3D","op":"broadcast","p":8,"m":16}]`, "")
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "batch cap") {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	get := httptest.NewRequest(http.MethodGet, "/v1/estimate", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, get)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate status %d", rec.Code)
	}
}

func TestRegistryEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/registry", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp RegistryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Default != "test-cal" || len(resp.Registries) != 2 {
		t.Fatalf("listing %+v", resp)
	}
	// Entries are sorted by name; the calibrated one advertises its
	// attached bounds.
	if resp.Registries[0].Name != "paper" || resp.Registries[1].Name != "test-cal" {
		t.Fatalf("order %+v", resp.Registries)
	}
	if resp.Registries[1].BoundsCells != 2 || resp.Registries[0].BoundsCells != 0 {
		t.Fatalf("bounds cells %+v", resp.Registries)
	}
}

// TestBatchedRequestsConcurrently exercises the worker-pool fan-out and
// the registry under concurrent batched requests — the test the race
// gate runs with -race.
func TestBatchedRequestsConcurrently(t *testing.T) {
	s := testServer(t)
	s.Workers = 4
	var scns []Scenario
	for _, op := range machine.Ops {
		for _, p := range []int{4, 8} {
			for _, m := range []int{16, 1024} {
				scns = append(scns, Scenario{Machine: "T3D", Op: string(op), P: p, M: m})
			}
		}
	}
	body, err := json.Marshal(scns)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	responses := make([]Response, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(string(body)))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String()))
			}
			var resp Response
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				panic(err)
			}
			responses[c] = resp
		}(c)
	}
	wg.Wait()

	for c, resp := range responses {
		if len(resp.Answers) != len(scns) {
			t.Fatalf("client %d: %d answers for %d scenarios", c, len(resp.Answers), len(scns))
		}
		for i, a := range resp.Answers {
			if a.Op != scns[i].Op || a.P != scns[i].P {
				t.Fatalf("client %d answer %d echoes %+v, want %+v", c, i, a.Scenario, scns[i])
			}
			if a.Micros <= 0 {
				t.Fatalf("client %d answer %d has no time: %+v", c, i, a)
			}
		}
		// Concurrent clients asking the same batch get identical
		// numbers — calibration and memoization are shared, not raced.
		for i := range resp.Answers {
			if resp.Answers[i].Micros != responses[0].Answers[i].Micros ||
				resp.Answers[i].Backend != responses[0].Answers[i].Backend {
				t.Fatalf("client %d answer %d differs: %+v vs %+v",
					c, i, resp.Answers[i], responses[0].Answers[i])
			}
		}
	}
}

// TestResponsesAreByteStable posts the same batch twice and requires
// identical bytes — the property the golden files pin across versions.
func TestResponsesAreByteStable(t *testing.T) {
	s := testServer(t)
	body := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	          {"machine":"T3D","op":"broadcast","p":8,"m":65536},
	          {"machine":"Paragon","op":"scan","p":4,"m":1024}]`
	first := post(t, s, body, "").Body.String()
	second := post(t, s, body, "").Body.String()
	if first != second {
		t.Fatalf("responses differ:\n%s\nvs\n%s", first, second)
	}
}
