package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrQueueFull is Acquire's refusal when the admission queue is at its
// budget: the caller should shed the request with 429 + Retry-After.
var ErrQueueFull = errors.New("serve: admission queue full")

// Gate is the service's admission control: a token bucket bounding the
// requests estimating concurrently, plus a bounded wait queue ahead of
// it. The bucket is a buffered channel pre-filled with tokens (the
// snowflake proxy token idiom); a request either grabs a token
// immediately, waits in the bounded queue for one, or is shed. Shedding
// at the gate keeps one slow batch (a hostile sim fallback) from
// pinning unbounded well-behaved traffic behind it: the queue budget
// caps the worst-case latency a queued request inherits.
//
// A nil *Gate admits everything.
type Gate struct {
	tokens   chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

// NewGate returns a gate admitting up to concurrent requests with up to
// queue more waiting, or nil (no gating) when concurrent ≤ 0. queue ≤ 0
// means no waiting at all: every request beyond the concurrency budget
// is shed immediately.
func NewGate(concurrent, queue int) *Gate {
	if concurrent <= 0 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	g := &Gate{tokens: make(chan struct{}, concurrent), maxQueue: int64(queue)}
	for i := 0; i < concurrent; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// Acquire takes one admission token, waiting in the bounded queue when
// the bucket is empty. It returns ErrQueueFull when the queue is at
// budget and ctx's error when the request expires (or the client goes
// away) while queued. depth, when non-nil, tracks the live queue depth
// (the serve_queue_depth gauge). A nil gate admits immediately.
func (g *Gate) Acquire(ctx context.Context, depth *obs.Gauge) error {
	if g == nil {
		return nil
	}
	select {
	case <-g.tokens:
		return nil // fast path: a token was free, no queueing
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return ErrQueueFull
	}
	depth.Add(1)
	defer func() {
		g.waiting.Add(-1)
		depth.Add(-1)
	}()
	select {
	case <-g.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns one admission token. Call exactly once per successful
// Acquire. Nil-safe.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.tokens <- struct{}{}
}

// Drain takes every admission token, so it returns only once all
// in-flight holders have Released and no new request can acquire until
// Undrain. The front's coordinated reload drains a worker's gate before
// asking it to rebuild, giving the rollout a quiesced worker without
// shedding: requests arriving mid-drain wait in the bounded queue like
// any other burst. On ctx expiry the tokens already taken are returned
// and the drain reports failure. Nil-safe (a nil gate is always
// drained).
func (g *Gate) Drain(ctx context.Context) error {
	if g == nil {
		return nil
	}
	for i := 0; i < cap(g.tokens); i++ {
		select {
		case <-g.tokens:
		case <-ctx.Done():
			for j := 0; j < i; j++ {
				g.tokens <- struct{}{}
			}
			return ctx.Err()
		}
	}
	return nil
}

// Undrain returns every token a successful Drain took. Nil-safe.
func (g *Gate) Undrain() {
	if g == nil {
		return
	}
	for i := 0; i < cap(g.tokens); i++ {
		g.tokens <- struct{}{}
	}
}
