package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/sweep"
)

// -update regenerates the golden files in testdata/ instead of
// comparing against them:
//
//	go test ./internal/serve -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden response files")

// checkGolden compares got against testdata/<name> byte for byte.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden (%d vs %d bytes); run with -update after verifying the change is intended",
			name, len(got), len(want))
	}
}

// TestGoldenFixedRegistry pins the handler's response bytes for a small
// fixed registry: a calibrated answer with an exact bound, one with a
// nearest-length bound, an out-of-range sim fallback, a variant
// selection, and the hardware barrier.
func TestGoldenFixedRegistry(t *testing.T) {
	s := testServer(t)
	body := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	          {"machine":"T3D","op":"broadcast","p":4,"m":300},
	          {"machine":"T3D","op":"broadcast","p":8,"m":65536},
	          {"machine":"SP2","op":"alltoall","algorithm":"xor","p":4,"m":1024},
	          {"machine":"T3D","op":"barrier","algorithm":"hardware","p":8,"m":0}]`
	rec := post(t, s, body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	checkGolden(t, "fixed_registry.golden.json", rec.Body.Bytes())
}

// TestGoldenPiecewiseRegistry pins the serving surface of the
// refit-piecewise expression set: answers carry the protocol segment
// that produced them (segment_m_min/segment_m_max) and an expected
// error looked up within that segment — all byte-stable.
func TestGoldenPiecewiseRegistry(t *testing.T) {
	// A focused grid over the cells the affine model mispredicts worst:
	// T3D broadcast and scatter, every algorithm variant, the paper's
	// lengths at the default calibration sizes.
	spec := sweep.Spec{
		Machines: []string{"T3D"},
		Ops:      []machine.Op{machine.OpBroadcast, machine.OpScatter},
		Algorithms: sweep.AllAlgorithms(
			[]machine.Op{machine.OpBroadcast, machine.OpScatter}),
		Sizes: estimate.DefaultCalibrationSizes,
	}
	scns, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-piecewise")
	if err != nil {
		t.Fatal(err)
	}
	simResults := (&sweep.Runner{Backend: estimate.Sim{Memo: memo}}).Run(scns)
	estResults := (&sweep.Runner{Backend: entry.Backend}).Run(scns)
	pairs, err := sweep.Pair(simResults, estResults)
	if err != nil {
		t.Fatal(err)
	}
	table := sweep.BuildErrorTable(entry.Backend, pairs)
	entry.Bounds = &table

	s := &Server{Registry: reg, Default: "refit-piecewise", Sim: estimate.Sim{Memo: memo}}
	// Mid-length scenarios (the regime the piecewise fit exists for),
	// one interpolated length (m=3000: bound must stay inside the
	// serving segment), and one out-of-range fallback.
	body := `[{"machine":"T3D","op":"broadcast","p":8,"m":1024},
	          {"machine":"T3D","op":"broadcast","p":32,"m":4096},
	          {"machine":"T3D","op":"scatter","algorithm":"linear","p":32,"m":256},
	          {"machine":"T3D","op":"broadcast","p":8,"m":3000},
	          {"machine":"T3D","op":"scatter","p":8,"m":262144}]`
	rec := post(t, s, body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, a := range resp.Answers[:4] {
		if a.Fallback || a.Backend != estimate.BackendCalibrated {
			t.Fatalf("answer %d not served by the piecewise set: %+v", i, a)
		}
		b := a.ExpectedError
		if b == nil {
			t.Fatalf("answer %d carries no bound: %+v", i, a)
		}
		if b.SegmentMMax == 0 {
			t.Fatalf("answer %d names no serving segment: %+v", i, b)
		}
		if b.BasisM < b.SegmentMMin || b.BasisM > b.SegmentMMax {
			t.Fatalf("answer %d bound basis m=%d outside its segment [%d,%d]",
				i, b.BasisM, b.SegmentMMin, b.SegmentMMax)
		}
	}
	if last := resp.Answers[4]; !last.Fallback || last.Backend != estimate.BackendSim {
		t.Fatalf("out-of-range answer not a sim fallback: %+v", last)
	}
	checkGolden(t, "piecewise_registry.golden.json", rec.Body.Bytes())
}

// TestGoldenDefaultGrid is the acceptance pin: the default 788-scenario
// sweep grid, answered in one batched request by the calibrated
// registry entry with validated error bounds attached, plus two
// out-of-range scenarios served by sim fallback — all byte-stable.
func TestGoldenDefaultGrid(t *testing.T) {
	if raceEnabled {
		t.Skip("the full-grid golden is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("full default grid in -short mode")
	}

	// The default cmd/sweep grid: every machine, operation, and
	// algorithm variant at p ∈ {8, 32} over the paper's lengths.
	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      estimate.DefaultCalibrationSizes,
	}
	scns, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 788 {
		t.Fatalf("default grid expands to %d scenarios, want 788", len(scns))
	}

	// Build the bounds the way `sweep -validate -cache` persists them:
	// a sim pass and a calibrated pass over the same grid, paired. The
	// shared memo means every grid cell is simulated exactly once.
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-default")
	if err != nil {
		t.Fatal(err)
	}
	simResults := (&sweep.Runner{Backend: estimate.Sim{Memo: memo}}).Run(scns)
	estResults := (&sweep.Runner{Backend: entry.Backend}).Run(scns)
	pairs, err := sweep.Pair(simResults, estResults)
	if err != nil {
		t.Fatal(err)
	}
	table := sweep.BuildErrorTable(entry.Backend, pairs)
	entry.Bounds = &table

	s := &Server{Registry: reg, Default: "refit-default", Sim: estimate.Sim{Memo: memo}}

	// The batched request: the whole grid, plus two scenarios outside
	// the calibrated envelope (p beyond the calibrated sizes, m beyond
	// the calibrated lengths).
	request := make([]Scenario, 0, len(scns)+2)
	for _, sc := range scns {
		request = append(request, Scenario{
			Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M,
		})
	}
	outOfRange := []Scenario{
		{Machine: "T3D", Op: "broadcast", P: 64, M: 1024},
		{Machine: "SP2", Op: "scatter", P: 8, M: 262144},
	}
	request = append(request, outOfRange...)
	body, err := json.Marshal(request)
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(request) {
		t.Fatalf("%d answers for %d scenarios", len(resp.Answers), len(request))
	}
	// Every grid answer is calibrated and error-bounded; the appended
	// scenarios demonstrably fall back to the simulator.
	for i, a := range resp.Answers[:len(scns)] {
		if a.Fallback || a.Backend != estimate.BackendCalibrated {
			t.Fatalf("grid answer %d not calibrated: %+v", i, a)
		}
		if a.ExpectedError == nil {
			t.Fatalf("grid answer %d carries no expected-error bound: %+v", i, a)
		}
	}
	for i, a := range resp.Answers[len(scns):] {
		if !a.Fallback || a.Backend != estimate.BackendSim ||
			!strings.Contains(a.FallbackReason, "outside the calibrated range") {
			t.Fatalf("out-of-range answer %d not a flagged sim fallback: %+v", i, a)
		}
	}

	checkGolden(t, "default_grid.golden.json", rec.Body.Bytes())

	// Byte stability within the process too: a second identical batch
	// (now fully warm) must produce identical bytes.
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(body)))
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("warm re-request changed the response bytes")
	}

	// And the acceptance sanity check the README quotes: the grid's
	// calibrated error bounds are small where the fits interpolate.
	var worst float64
	for _, c := range table.Cells {
		if c.Median > worst {
			worst = c.Median
		}
	}
	if worst > 0.60 {
		t.Fatalf("worst per-cell median relative error %.2f — calibration regressed", worst)
	}
}
