package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// TraceIDHeader carries a request's trace identity. An inbound value is
// honored (so a client or front can correlate its own retries and
// cross-process hops); otherwise the server mints one. Every response —
// including 4xx/5xx and requests shed before the worker pool — echoes
// it back.
const TraceIDHeader = "X-Trace-Id"

// maxTraceIDLen bounds an inbound trace ID; longer (or non-printable)
// values are replaced with a generated one rather than stored or
// echoed verbatim.
const maxTraceIDLen = 128

// traceIDKey carries the request's trace ID through its context.
type traceIDKey struct{}

// TraceIDFrom returns the trace ID the middleware assigned to this
// request's context ("" outside a request).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// validTraceID accepts printable ASCII without spaces, quotes, or
// backslashes, capped at maxTraceIDLen — safe to echo in a header, a
// JSON log line, and a trace record without escaping surprises.
func validTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// newTraceID mints a process-unique id from a seeded per-server counter
// — one atomic add, no crypto/rand on the hot path. The seed is the
// server's start time mixed through a 64-bit multiplier, so two servers
// started apart never collide in practice and ids stay meaningless
// outside correlation.
func (s *Server) newTraceID() string {
	s.traceOnce.Do(func() {
		s.traceSeed = uint64(time.Now().UnixNano()) * 0x9E3779B97F4A7C15
		if s.traceSeed == 0 {
			s.traceSeed = 1
		}
	})
	n := s.traceN.Add(1)
	// "0123456789abcdef"-16 of the seed, a dash, then the counter: short,
	// sortable per server, and grep-able across logs and /debug/traces.
	buf := make([]byte, 0, 28)
	buf = strconv.AppendUint(buf, s.traceSeed, 16)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, n, 16)
	return string(buf)
}

// withTraceID is the outermost middleware: resolve the request's trace
// ID (inbound header or minted), echo it on the response, and stash it
// in the context for logging and trace capture. It wraps the panic
// middleware, so even a 500 from a recovered panic carries the ID.
func (s *Server) withTraceID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceIDHeader)
		if !validTraceID(id) {
			id = s.newTraceID()
		}
		w.Header().Set(TraceIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), traceIDKey{}, id)))
	})
}

// traceOutcome labels a finished request for its trace record and the
// sampling policy's always-capture set.
func traceOutcome(st reqStats) string {
	switch {
	case st.status == http.StatusOK && st.degraded > 0:
		return "degraded"
	case st.status == http.StatusOK:
		return "ok"
	case st.status == http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case st.status < 500:
		return "client_error"
	default:
		return "server_error"
	}
}

// sampleTrace decides whether one finished request is captured:
// every TraceSample-th request (0 disables periodic sampling), plus
// always-on for errors, degraded answers, deadline-exceeded, and
// requests at least TraceSlow slow. Runs after the response is written,
// so sampling never adds latency the client can see.
func (s *Server) sampleTrace(outcome string, dur time.Duration) bool {
	if outcome != "ok" {
		return true // client/server errors, degraded, deadline_exceeded
	}
	if s.TraceSlow > 0 && dur >= s.TraceSlow {
		return true
	}
	if s.TraceSample > 0 {
		return s.traceCount.Add(1)%uint64(s.TraceSample) == 0
	}
	return false
}

// captureTrace freezes one finished request into the trace ring.
func (s *Server) captureTrace(id string, st reqStats, tr *obs.Trace) {
	dur := tr.Duration()
	outcome := tr.Outcome
	if !s.sampleTrace(outcome, dur) {
		return
	}
	rec := obs.TraceRecord{
		TraceID:       id,
		StartUnixNano: tr.Start.UnixNano(),
		DurationNS:    dur.Nanoseconds(),
		Status:        st.status,
		Outcome:       outcome,
		Registry:      st.registry,
		Scenarios:     st.scenarios,
		Fallbacks:     st.fallbacks,
		Degraded:      st.degraded,
		Bounds:        st.bounds,
		CacheHits:     st.cacheHits,
		CacheMisses:   st.cacheMisses,
	}
	rec.StagesFrom(tr)
	s.Traces.Push(rec)
}

// handleTraces answers GET /debug/traces: the sampled trace ring as
// line-JSON, oldest first — one TraceRecord per line with trace ID,
// outcome, per-stage nanoseconds, and cache/fallback accounting.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ctNDJSON)
	s.Traces.WriteLineJSON(w)
}
