package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// postTraced posts body with an explicit X-Trace-Id header ("" sends
// none) and returns the recorded response.
func postTraced(t *testing.T, s *Server, body, traceID string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
	if traceID != "" {
		req.Header.Set(TraceIDHeader, traceID)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

const okScenario = `{"machine":"T3D","op":"broadcast","p":8,"m":1024}`

// TestTraceIDEchoedOnEveryResponse: the header appears on 200s, on
// every error family, and on non-estimate routes — with an inbound
// value honored and a missing or hostile one replaced by a minted ID.
func TestTraceIDEchoedOnEveryResponse(t *testing.T) {
	s := testServer(t)
	instrument(s)

	// Valid inbound ID is honored verbatim.
	if got := postTraced(t, s, okScenario, "client-retry-7").Header().Get(TraceIDHeader); got != "client-retry-7" {
		t.Fatalf("inbound trace ID not honored: %q", got)
	}
	// Absent → minted, non-empty, and unique per request.
	a := postTraced(t, s, okScenario, "").Header().Get(TraceIDHeader)
	b := postTraced(t, s, okScenario, "").Header().Get(TraceIDHeader)
	if a == "" || b == "" || a == b {
		t.Fatalf("minted IDs %q, %q: want distinct non-empty", a, b)
	}
	// Hostile inbound values (spaces, quotes, oversized) are replaced.
	for _, bad := range []string{"has space", `has"quote`, strings.Repeat("x", 129)} {
		if got := postTraced(t, s, okScenario, bad).Header().Get(TraceIDHeader); got == bad || got == "" {
			t.Errorf("hostile ID %q echoed as %q; want a minted replacement", bad, got)
		}
	}

	// Error paths: 400 (bad body), 415 (bad content type), 404 (unknown
	// route) — every one carries the header.
	for name, rec := range map[string]*httptest.ResponseRecorder{
		"400 bad body":  postTraced(t, s, `{oops`, ""),
		"415 bad ct":    postCT(t, s, "text/plain", []byte(okScenario)),
		"404 bad route": get(t, s, "/nope"),
		"200 registry":  get(t, s, "/v1/registry"),
		"200 metrics":   get(t, s, "/metrics"),
	} {
		if rec.Header().Get(TraceIDHeader) == "" {
			t.Errorf("%s: no %s header (status %d)", name, TraceIDHeader, rec.Code)
		}
	}
}

// TestTraceIDEchoedOnShed: a request refused at the admission gate —
// before the worker pool — still echoes its trace ID, and lands in the
// trace ring (errors are always captured) with empty stages.
func TestTraceIDEchoedOnShed(t *testing.T) {
	s, bb := gateServer(t, 1, 0)
	s.Traces = obs.NewTraceRing(16)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := post(t, s, gateBody, ""); rec.Code != http.StatusOK {
			t.Errorf("holder request: status %d: %s", rec.Code, rec.Body.String())
		}
	}()
	<-bb.entered

	rec := postTraced(t, s, gateBody, "shed-me-1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(TraceIDHeader); got != "shed-me-1" {
		t.Fatalf("shed response trace ID %q, want shed-me-1", got)
	}
	close(bb.release)
	wg.Wait()

	var shedRec obs.TraceRecord
	found := false
	for _, r := range s.Traces.Records() {
		if r.TraceID == "shed-me-1" {
			shedRec, found = r, true
		}
	}
	if !found {
		t.Fatalf("shed request missing from trace ring: %+v", s.Traces.Records())
	}
	if shedRec.Status != http.StatusTooManyRequests || shedRec.Outcome != "client_error" {
		t.Errorf("shed record %+v", shedRec)
	}
	for stage, ns := range shedRec.Stages {
		if ns != 0 {
			t.Errorf("shed record charged stage %s = %d ns; it never reached the pool", stage, ns)
		}
	}
}

// TestTraceSamplingPolicy: every Nth ok request is captured; errors and
// slow requests are always captured and never consume a sampling slot.
func TestTraceSamplingPolicy(t *testing.T) {
	s := testServer(t)
	s.Traces = obs.NewTraceRing(64)
	s.TraceSample = 3

	for i := 0; i < 7; i++ {
		if rec := post(t, s, okScenario, ""); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if got := s.Traces.Total(); got != 2 { // the 3rd and 6th
		t.Fatalf("captured %d of 7 ok requests with TraceSample=3, want 2", got)
	}

	// An error is captured immediately, regardless of the counter.
	if rec := postTraced(t, s, `{oops`, "err-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", rec.Code)
	}
	last, ok := s.Traces.Last()
	if !ok || last.TraceID != "err-1" || last.Outcome != "client_error" {
		t.Fatalf("error not always-captured: %+v (total %d)", last, s.Traces.Total())
	}

	// With TraceSlow=1ns every request qualifies as slow.
	slow := testServer(t)
	slow.Traces = obs.NewTraceRing(8)
	slow.TraceSlow = time.Nanosecond
	post(t, slow, okScenario, "")
	if got := slow.Traces.Total(); got != 1 {
		t.Fatalf("slow trigger captured %d, want 1", got)
	}

	// Sampling disabled entirely: ok requests never captured.
	off := testServer(t)
	off.Traces = obs.NewTraceRing(8)
	post(t, off, okScenario, "")
	if got := off.Traces.Total(); got != 0 {
		t.Fatalf("TraceSample=0 captured %d ok requests, want 0", got)
	}
}

// TestDebugTracesEndpoint: GET /debug/traces returns the ring as
// line-JSON, with per-stage timings, outcome, and identity populated;
// the route is absent when tracing is off.
func TestDebugTracesEndpoint(t *testing.T) {
	s := testServer(t)
	instrument(s)
	s.Traces = obs.NewTraceRing(16)
	s.TraceSample = 1

	if rec := postTraced(t, s, okScenario, "want-this-trace"); rec.Code != http.StatusOK {
		t.Fatalf("estimate: status %d", rec.Code)
	}
	rec := get(t, s, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ctNDJSON {
		t.Fatalf("/debug/traces content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d trace lines, want 1:\n%s", len(lines), rec.Body.String())
	}
	var tr obs.TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &tr); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, lines[0])
	}
	if tr.TraceID != "want-this-trace" || tr.Outcome != "ok" || tr.Status != 200 {
		t.Fatalf("trace record %+v", tr)
	}
	if tr.Registry != "test-cal" || tr.Scenarios != 1 {
		t.Fatalf("trace provenance %+v", tr)
	}
	if tr.DurationNS <= 0 || tr.StartUnixNano <= 0 {
		t.Fatalf("trace clock fields %+v", tr)
	}
	if len(tr.Stages) != int(obs.NumStages) {
		t.Fatalf("stage keys %v, want all %d", tr.Stages, obs.NumStages)
	}
	var total int64
	for _, ns := range tr.Stages {
		total += ns
	}
	if total <= 0 {
		t.Fatalf("no stage accumulated time: %v", tr.Stages)
	}

	// Tracing off → the route does not exist.
	plain := testServer(t)
	if rec := get(t, plain, "/debug/traces"); rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/traces without tracing: status %d, want 404", rec.Code)
	}
}
