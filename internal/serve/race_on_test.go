//go:build race

package serve

// raceEnabled gates the full-grid golden test, which is too slow under
// the race detector's instrumented simulator.
const raceEnabled = true
