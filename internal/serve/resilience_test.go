package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
)

// postH is post with extra request headers and an optional context —
// the resilience suite's door into deadlines and queued cancellation.
func postH(t *testing.T, s *Server, body string, hdr map[string]string, ctx context.Context) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// slowSim wraps the test fixture's fallback simulator in a fault
// injector that always sleeps far longer than any test deadline — the
// deterministic stand-in for a hostile fallback simulation.
func slowSim(s *Server) {
	s.Sim = &estimate.FaultBackend{Inner: s.Sim, Seed: 1, LatencyProb: 1, Latency: time.Minute}
}

// outOfRange is a scenario outside testServer's calibrated envelope
// (m ≤ 1024), forcing the sim fallback path.
const outOfRange = `{"machine":"T3D","op":"broadcast","p":8,"m":65536}`

// TestDegradedDeadlineAnswer: a deadline that expires mid-fallback
// still answers 200 — from the paper's closed forms, flagged
// degraded_deadline, no bounds — within deadline + 100ms, and the
// degraded metrics count it exactly.
func TestDegradedDeadlineAnswer(t *testing.T) {
	s := testServer(t)
	slowSim(s)
	instrument(s)
	const deadline = 250 * time.Millisecond
	start := time.Now()
	rec := postH(t, s, outOfRange, map[string]string{deadlineHeader: "250"}, nil)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Fatalf("degraded answer took %s, want ≤ deadline+100ms = %s", elapsed, deadline+100*time.Millisecond)
	}
	a := decode(t, rec).Answers[0]
	if !a.Fallback || a.FallbackReason != reasonDegraded {
		t.Fatalf("answer %+v, want fallback with reason %q", a, reasonDegraded)
	}
	if a.Backend != estimate.BackendAnalytic {
		t.Fatalf("degraded backend %q, want %q", a.Backend, estimate.BackendAnalytic)
	}
	if a.ExpectedError != nil {
		t.Fatalf("degraded answer must carry no bounds: %+v", a.ExpectedError)
	}
	if a.Micros <= 0 {
		t.Fatalf("degraded micros = %v", a.Micros)
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_deadline_total{outcome="degraded"}`: 1,
		`serve_deadline_total{outcome="met"}`:      0,
		`serve_deadline_total{outcome="exceeded"}`: 0,
		`serve_degraded_total`:                     1,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}

// TestDegradedAnswerNeverCached: a degraded answer is forgotten after
// its flight, so once the pressure is off the same scenario gets the
// real simulated answer, not the cached stopgap.
func TestDegradedAnswerNeverCached(t *testing.T) {
	s := testServer(t)
	inner := s.Sim
	fault := &estimate.FaultBackend{Inner: inner, Seed: 1, LatencyProb: 1, Latency: time.Minute}
	s.Sim = fault
	s.Cache = NewAnswerCache(64)
	rec := postH(t, s, outOfRange, map[string]string{deadlineHeader: "100"}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", rec.Code, rec.Body.String())
	}
	if a := decode(t, rec).Answers[0]; a.FallbackReason != reasonDegraded {
		t.Fatalf("first answer %+v, want degraded", a)
	}
	// Pressure off: same server, healthy simulator, no deadline. The
	// cache must not replay the degraded answer. (The epoch keys on the
	// configured Sim, so the swap must keep the same backend identity —
	// turning the injected latency off does.)
	fault.LatencyProb = 0
	rec = post(t, s, outOfRange, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy request: status %d: %s", rec.Code, rec.Body.String())
	}
	if a := decode(t, rec).Answers[0]; a.FallbackReason == reasonDegraded || a.Backend != estimate.BackendSim {
		t.Fatalf("healthy answer %+v, want a real sim answer", a)
	}
}

// TestDeadlineExceededWithoutCoverage: when the paper's expressions
// cannot answer the deadline-pressed scenario (SP2 allgather was never
// fitted), the request is an honest 504 — counted as exceeded.
func TestDeadlineExceededWithoutCoverage(t *testing.T) {
	s := testServer(t)
	slowSim(s)
	instrument(s)
	rec := postH(t, s, `{"registry":"paper","scenarios":[{"machine":"SP2","op":"allgather","p":8,"m":64}]}`,
		map[string]string{deadlineHeader: "100"}, nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_deadline_total{outcome="exceeded"}`]; got != 1 {
		t.Errorf(`exceeded total = %d, want 1`, got)
	}
	if got := vals[`serve_degraded_total`]; got != 0 {
		t.Errorf(`degraded total = %d, want 0`, got)
	}
}

// TestDeadlineMetCounting: requests that finish inside their deadline
// (configured server-wide or per header) count as met — exactly.
func TestDeadlineMetCounting(t *testing.T) {
	s := testServer(t)
	s.Timeout = 30 * time.Second
	instrument(s)
	for i := 0; i < 3; i++ {
		if rec := post(t, s, `{"machine":"T3D","op":"broadcast","p":8,"m":16}`, ""); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_deadline_total{outcome="met"}`:      3,
		`serve_deadline_total{outcome="degraded"}`: 0,
		`serve_deadline_total{outcome="exceeded"}`: 0,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}

// TestInvalidDeadlineHeader: malformed or non-positive header values
// are a 400, not a silently unbounded request.
func TestInvalidDeadlineHeader(t *testing.T) {
	s := testServer(t)
	for _, bad := range []string{"abc", "0", "-5", "1.5"} {
		rec := postH(t, s, outOfRange, map[string]string{deadlineHeader: bad}, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("deadline header %q: status %d, want 400", bad, rec.Code)
		}
	}
}

// blockingBackend parks every Estimate call until released, so tests
// can hold the admission gate's tokens deterministically.
type blockingBackend struct {
	inner   estimate.Backend
	entered chan struct{} // one send per call that reached the backend
	release chan struct{} // closed to let every parked call finish
}

func (b *blockingBackend) Name() string       { return b.inner.Name() }
func (b *blockingBackend) Provenance() string { return b.inner.Provenance() }
func (b *blockingBackend) Estimate(ctx context.Context, mach *machine.Machine, op machine.Op, algs mpi.Algorithms, p, m int, cfg measure.Config) (estimate.Estimate, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.inner.Estimate(ctx, mach, op, algs, p, m, cfg)
}

// gateServer is a single-entry server over a blocking analytic backend
// with an admission gate of (concurrent, queue).
func gateServer(t *testing.T, concurrent, queue int) (*Server, *blockingBackend) {
	t.Helper()
	bb := &blockingBackend{
		inner:   estimate.PaperAnalytic(),
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "blocked", Description: "analytic behind a latch", Backend: bb,
	}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, Default: "blocked", Sim: estimate.Sim{}, Config: tinyCfg,
		Gate: NewGate(concurrent, queue)}
	instrument(s)
	return s, bb
}

const gateBody = `{"machine":"SP2","op":"alltoall","p":8,"m":1024}`

// TestShedQueueFull: with the one concurrency token held and no queue,
// the next request is shed with 429 + Retry-After and an exact
// serve_shed_total — and succeeds once the congestion clears.
func TestShedQueueFull(t *testing.T) {
	s, bb := gateServer(t, 1, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := post(t, s, gateBody, ""); rec.Code != http.StatusOK {
			t.Errorf("holder request: status %d: %s", rec.Code, rec.Body.String())
		}
	}()
	<-bb.entered // the holder owns the only token

	rec := post(t, s, gateBody, "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	close(bb.release)
	wg.Wait()
	if rec := post(t, s, gateBody, ""); rec.Code != http.StatusOK {
		t.Fatalf("post-congestion request: status %d: %s", rec.Code, rec.Body.String())
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_shed_total{reason="queue_full"}`:        1,
		`serve_shed_total{reason="timeout"}`:           0,
		`serve_requests_total{outcome="ok"}`:           2,
		`serve_requests_total{outcome="client_error"}`: 1, // the 429
		`serve_queue_depth`:                            0,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}

// TestShedQueuedRequestExpires: a request whose context dies while
// waiting in the admission queue is shed as a timeout (503), and the
// queue-depth gauge returns to zero.
func TestShedQueuedRequestExpires(t *testing.T) {
	s, bb := gateServer(t, 1, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := post(t, s, gateBody, ""); rec.Code != http.StatusOK {
			t.Errorf("holder request: status %d: %s", rec.Code, rec.Body.String())
		}
	}()
	<-bb.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expires the instant it queues
	rec := postH(t, s, gateBody, nil, ctx)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}

	close(bb.release)
	wg.Wait()
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_shed_total{reason="timeout"}`:    1,
		`serve_shed_total{reason="queue_full"}`: 0,
		`serve_queue_depth`:                     0,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}

// TestChaosPanicRecovered: an injected backend panic answers 500 —
// single scenario and batched fan-out alike — and the in-flight gauge
// drops back to zero instead of leaking.
func TestChaosPanicRecovered(t *testing.T) {
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "chaotic", Description: "always panics",
		Backend: &estimate.FaultBackend{Inner: estimate.PaperAnalytic(), Seed: 1, PanicProb: 1},
	}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, Default: "chaotic", Sim: estimate.Sim{}, Config: tinyCfg}
	instrument(s)

	// Single-scenario path (no worker pool).
	rec := post(t, s, gateBody, "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("500 body does not mention the panic: %s", rec.Body.String())
	}
	// Fan-out path: worker goroutines are outside net/http's recovery,
	// so this proves answerSafe catches them before they kill the process.
	batch := `[{"machine":"SP2","op":"alltoall","p":8,"m":1024},
	           {"machine":"T3D","op":"broadcast","p":8,"m":64},
	           {"machine":"Paragon","op":"gather","p":8,"m":256}]`
	if rec := post(t, s, batch, ""); rec.Code != http.StatusInternalServerError {
		t.Fatalf("batched status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_in_flight`]; got != 0 {
		t.Errorf("serve_in_flight = %d after panics, want 0", got)
	}
	if got := vals[`serve_requests_total{outcome="server_error"}`]; got != 2 {
		t.Errorf("server_error total = %d, want 2", got)
	}
}

// panickyProvenance panics outside the scenario workers — in the
// response-encode path — to exercise the recovery middleware proper.
type panickyProvenance struct{ estimate.Backend }

func (panickyProvenance) Provenance() string { panic("wired to blow") }

// TestHandlerPanicMiddleware: a panic that escapes serveEstimate (not
// routed through answerSafe) is converted to a 500 by the middleware,
// counted as a server error, with the in-flight gauge intact.
func TestHandlerPanicMiddleware(t *testing.T) {
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "trapped", Description: "panics on Provenance",
		Backend: panickyProvenance{estimate.PaperAnalytic()},
	}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, Default: "trapped", Sim: estimate.Sim{}, Config: tinyCfg}
	instrument(s)
	rec := post(t, s, gateBody, "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_in_flight`]; got != 0 {
		t.Errorf("serve_in_flight = %d, want 0", got)
	}
	if got := vals[`serve_requests_total{outcome="server_error"}`]; got != 1 {
		t.Errorf("server_error total = %d, want 1", got)
	}
}

// reloadFixture builds a server whose Reloader alternates calibration
// grids — every reload is a provenance (hence epoch) change.
func reloadFixture(t *testing.T) (*Server, *atomic.Int64) {
	t.Helper()
	memo := estimate.NewSampleMemo()
	var gen atomic.Int64
	build := func() (*estimate.Registry, error) {
		lengths := []int{16, 1024}
		if gen.Load()%2 == 1 {
			lengths = []int{16, 2048}
		}
		cal := &estimate.Calibrated{Config: tinyCfg, Sizes: []int{4, 8}, Lengths: lengths, Memo: memo}
		reg := estimate.NewRegistry()
		if err := reg.Register(&estimate.Entry{
			Name: "test-cal", Description: "reloadable calibrated set",
			Backend: cal, Ranges: cal.Range,
		}); err != nil {
			return nil, err
		}
		return reg, nil
	}
	reg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, Default: "test-cal", Sim: estimate.Sim{Memo: memo}, Config: tinyCfg,
		Cache: NewAnswerCache(1024),
		Reloader: func() (*estimate.Registry, error) {
			gen.Add(1)
			return build()
		}}
	instrument(s)
	return s, &gen
}

// TestReloadSwapsAndInvalidates: POST /v1/reload swaps the registry
// atomically; the answer cache keys on entry epochs, so warm answers
// from the old registry are never served by the new one.
func TestReloadSwapsAndInvalidates(t *testing.T) {
	s, _ := reloadFixture(t)
	const body = `{"machine":"T3D","op":"broadcast","p":8,"m":16}`
	warm := func(stage string) {
		t.Helper()
		if got := post(t, s, body, "").Header().Get("X-Estimate-Cache"); got != "miss" {
			t.Fatalf("%s cold request: cache %q, want miss", stage, got)
		}
		if got := post(t, s, body, "").Header().Get("X-Estimate-Cache"); got != "hit" {
			t.Fatalf("%s warm request: cache %q, want hit", stage, got)
		}
	}
	warm("pre-reload")
	oldProv := post(t, s, body, "").Header().Get("X-Estimate-Provenance")

	req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"reloaded"`) {
		t.Fatalf("reload body: %s", rec.Body.String())
	}

	// Fresh epoch: the first post-reload request recomputes.
	warm("post-reload")
	newProv := post(t, s, body, "").Header().Get("X-Estimate-Provenance")
	if oldProv == newProv || newProv == "" {
		t.Fatalf("provenance did not change across reload: %q vs %q", oldProv, newProv)
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_reloads_total{result="ok"}`]; got != 1 {
		t.Errorf(`reloads ok = %d, want 1`, got)
	}
}

// TestReloadUnderTraffic: sustained concurrent traffic across repeated
// reloads sees zero failed requests, and the serving provenance ends on
// the last reloaded registry's. The race gate runs this under -race.
func TestReloadUnderTraffic(t *testing.T) {
	s, _ := reloadFixture(t)
	const body = `{"machine":"T3D","op":"broadcast","p":8,"m":16}`
	const clients, perClient, reloads = 8, 40, 10

	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				rec := post(t, s, body, "")
				if rec.Code != http.StatusOK {
					failed.Add(1)
					t.Errorf("request failed during reload: status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	for r := 0; r < reloads; r++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", r, rec.Code, rec.Body.String())
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed across reloads", n)
	}
	// The serving entry is the last reloaded one.
	finalProv := post(t, s, body, "").Header().Get("X-Estimate-Provenance")
	entry, err := s.registry().Get(s.Default)
	if err != nil {
		t.Fatal(err)
	}
	if finalProv != entry.Backend.Provenance() {
		t.Fatalf("serving provenance %q, want the reloaded entry's %q", finalProv, entry.Backend.Provenance())
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_reloads_total{result="ok"}`]; got != reloads {
		t.Errorf(`reloads ok = %d, want %d`, got, reloads)
	}
}

// TestReloadFailureKeepsServing: a Reloader error (or a rebuild missing
// the default entry) is a 500, counted, and the old registry keeps
// answering.
func TestReloadFailureKeepsServing(t *testing.T) {
	s, _ := reloadFixture(t)
	const body = `{"machine":"T3D","op":"broadcast","p":8,"m":16}`
	if rec := post(t, s, body, ""); rec.Code != http.StatusOK {
		t.Fatalf("pre-failure request: %d", rec.Code)
	}
	prov := post(t, s, body, "").Header().Get("X-Estimate-Provenance")

	s.Reloader = func() (*estimate.Registry, error) {
		return estimate.NewRegistry(), nil // valid but lacks "test-cal"
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("reload without default entry: status %d, want 500", rec.Code)
	}

	// The old registry is untouched.
	after := post(t, s, body, "")
	if after.Code != http.StatusOK || after.Header().Get("X-Estimate-Provenance") != prov {
		t.Fatalf("serving changed after failed reload: %d, %q", after.Code, after.Header().Get("X-Estimate-Provenance"))
	}
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_reloads_total{result="error"}`]; got != 1 {
		t.Errorf(`reloads error = %d, want 1`, got)
	}
}

// TestReloadNotMountedWithoutReloader: a server with no Reloader does
// not expose POST /v1/reload at all.
func TestReloadNotMountedWithoutReloader(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

// TestGateUnit: the token bucket's contract, without HTTP around it.
func TestGateUnit(t *testing.T) {
	if g := NewGate(0, 5); g != nil {
		t.Fatal("NewGate(0, _) should disable gating")
	}
	var nilGate *Gate
	if err := nilGate.Acquire(context.Background(), nil); err != nil {
		t.Fatalf("nil gate refused: %v", err)
	}
	nilGate.Release()

	g := NewGate(2, 1)
	ctx := context.Background()
	if err := g.Acquire(ctx, nil); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(ctx, nil); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	// Both tokens held; the queue admits one waiter. A dead context
	// makes the queued wait return deterministically.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := g.Acquire(dead, nil); err != context.Canceled {
		t.Fatalf("queued acquire under dead ctx: %v, want context.Canceled", err)
	}
	// Queue emptied again (the waiter left); a released token admits
	// the next acquire immediately.
	g.Release()
	if err := g.Acquire(ctx, nil); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}

	// Fill the queue to budget, then one more is ErrQueueFull.
	hold := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		err := g.Acquire(ctx, nil) // parks: no tokens free
		done <- err
		<-hold
	}()
	// Wait until the goroutine is queued.
	for g.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(ctx, nil); err != ErrQueueFull {
		t.Fatalf("over-budget acquire: %v, want ErrQueueFull", err)
	}
	g.Release() // admits the queued waiter
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	close(hold)
}

// TestRequestDeadlineResolution: header beats server default beats
// unbounded.
func TestRequestDeadlineResolution(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", nil)
	if d, has, err := requestDeadline(req, 0); has || err != nil || d != 0 {
		t.Fatalf("no header, no default: (%v, %v, %v)", d, has, err)
	}
	if d, has, err := requestDeadline(req, 5*time.Second); !has || err != nil || d != 5*time.Second {
		t.Fatalf("server default: (%v, %v, %v)", d, has, err)
	}
	req.Header.Set(deadlineHeader, "250")
	if d, has, err := requestDeadline(req, 5*time.Second); !has || err != nil || d != 250*time.Millisecond {
		t.Fatalf("header override: (%v, %v, %v)", d, has, err)
	}
	req.Header.Set(deadlineHeader, "-1")
	if _, _, err := requestDeadline(req, 0); err == nil {
		t.Fatal("negative header accepted")
	}
}

// TestChaosSoak is the fault-injection soak the CI race job runs
// explicitly: a fixed request count against a server whose fallback
// simulator injects latency, errors, and panics by seeded probability,
// under a deadline and an admission gate. Every response must be one
// of the stack's deliberate outcomes, the in-flight and queue gauges
// must return to zero, and no goroutine may leak.
func TestChaosSoak(t *testing.T) {
	base := countGoroutines()
	memo := estimate.NewSampleMemo()
	cal := &estimate.Calibrated{Config: tinyCfg, Sizes: []int{4, 8}, Lengths: []int{16, 1024}, Memo: memo}
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "soak-cal", Description: "calibrated set under chaos", Backend: cal, Ranges: cal.Range,
	}); err != nil {
		t.Fatal(err)
	}
	s := &Server{
		Registry: reg, Default: "soak-cal",
		Sim: &estimate.FaultBackend{
			Inner: estimate.Sim{Memo: memo}, Seed: 42,
			LatencyProb: 0.25, Latency: 300 * time.Millisecond, // > deadline: forces degraded answers
			ErrorProb: 0.25,
			PanicProb: 0.15,
		},
		Config:  tinyCfg,
		Timeout: 150 * time.Millisecond,
		Gate:    NewGate(4, 64),
		Cache:   NewAnswerCache(256),
	}
	instrument(s)

	// A fixed scenario mix: in-range (clean, calibrated) and
	// out-of-range (through the chaos-wrapped simulator). The fault
	// schedule is per-scenario-deterministic, so the soak replays
	// identically for a given seed.
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	var unexpected atomic.Int64
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				m := 16
				if (c+i)%2 == 1 {
					// Out of range: chaos territory. The halved index walks
					// all 16 chaos scenarios (the raw counter shares the
					// parity gate above and would only ever hit odd ones).
					m = 4096 + 1024*((c*perClient+i)/2%16)
				}
				body := fmt.Sprintf(`{"machine":"T3D","op":"broadcast","p":8,"m":%d}`, m)
				rec := post(t, s, body, "")
				switch rec.Code {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout, http.StatusInternalServerError:
				default:
					unexpected.Add(1)
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()
	if unexpected.Load() != 0 {
		t.Fatalf("%d responses outside the deliberate outcome set", unexpected.Load())
	}

	vals := promValues(t, get(t, s, "/metrics").Body.String())
	if got := vals[`serve_in_flight`]; got != 0 {
		t.Errorf("serve_in_flight = %d after the soak, want 0", got)
	}
	if got := vals[`serve_queue_depth`]; got != 0 {
		t.Errorf("serve_queue_depth = %d after the soak, want 0", got)
	}
	total := vals[`serve_requests_total{outcome="ok"}`] +
		vals[`serve_requests_total{outcome="client_error"}`] +
		vals[`serve_requests_total{outcome="server_error"}`]
	if want := uint64(clients * perClient); total != want {
		t.Errorf("requests accounted = %d, want %d (every request observed exactly once)", total, want)
	}
	// The seeded fault schedule guarantees each failure mode fires at
	// least once over this mix — a zero here means the soak silently
	// stopped exercising that path.
	if got := vals[`serve_degraded_total`]; got == 0 {
		t.Error("soak produced no degraded answers: latency injection never raced the deadline")
	}
	if got := vals[`serve_requests_total{outcome="server_error"}`]; got == 0 {
		t.Error("soak produced no server errors: panic/error injection never fired")
	}

	// Goroutine-leak check: cancelled simulations and recovered panics
	// must reclaim every goroutine they spawned.
	deadline := time.Now().Add(10 * time.Second)
	for countGoroutines() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, base %d", countGoroutines(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func countGoroutines() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}
