package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve/wire"
)

// postCT posts raw bytes with an explicit Content-Type.
func postCT(t *testing.T, s *Server, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

const oneScenario = `{"machine":"T3D","op":"broadcast","p":8,"m":1024}`

// TestContentTypeNegotiation: the JSON aliases (including curl -d's
// form-urlencoded default and parameterized variants) keep answering,
// and anything else is a 415 that lists the supported types.
func TestContentTypeNegotiation(t *testing.T) {
	s := testServer(t)
	for _, ct := range []string{
		"", // no Content-Type at all
		"application/json",
		"application/json; charset=utf-8",
		"text/json",
		"application/x-www-form-urlencoded", // curl -d
	} {
		if rec := postCT(t, s, ct, []byte(oneScenario)); rec.Code != http.StatusOK {
			t.Errorf("Content-Type %q: status %d: %s", ct, rec.Code, rec.Body.String())
		}
	}
	for _, ct := range []string{"application/xml", "text/plain", "multipart/form-data; boundary"} {
		rec := postCT(t, s, ct, []byte(oneScenario))
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, rec.Code)
		}
		if got := rec.Header().Get("Accept-Post"); got != AcceptPost {
			t.Fatalf("Accept-Post %q, want %q", got, AcceptPost)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("non-JSON 415 body: %s", rec.Body.String())
		}
		if !strings.Contains(e.Error, wire.ContentType) {
			t.Fatalf("415 error %q does not list the supported types", e.Error)
		}
	}
}

// TestWireDisabled: with the fast wire mode off, the binary and NDJSON
// codecs 415 while JSON keeps serving.
func TestWireDisabled(t *testing.T) {
	s := testServer(t)
	s.DisableWire = true
	for _, ct := range []string{wire.ContentType, ctNDJSON} {
		if rec := postCT(t, s, ct, []byte(oneScenario)); rec.Code != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q with wire disabled: status %d, want 415", ct, rec.Code)
		}
	}
	if rec := postCT(t, s, ctJSON, []byte(oneScenario)); rec.Code != http.StatusOK {
		t.Fatalf("JSON with wire disabled: status %d", rec.Code)
	}
}

// TestNDJSONRoundTrip: line-delimited requests stream back one compact
// answer per line, numerically identical to the JSON batch.
func TestNDJSONRoundTrip(t *testing.T) {
	s := testServer(t)
	body := `{"machine":"T3D","op":"broadcast","p":8,"m":16}

	{"machine":"T3D","op":"broadcast","p":8,"m":65536}
`
	rec := postCT(t, s, ctNDJSON, []byte(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != ctNDJSON {
		t.Fatalf("response Content-Type %q", ct)
	}
	var answers []Answer
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var a Answer
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("decoding line %q: %v", line, err)
		}
		answers = append(answers, a)
	}
	want := decode(t, post(t, s,
		`[{"machine":"T3D","op":"broadcast","p":8,"m":16},
		  {"machine":"T3D","op":"broadcast","p":8,"m":65536}]`, ""))
	if len(answers) != len(want.Answers) {
		t.Fatalf("%d NDJSON answers, %d JSON answers", len(answers), len(want.Answers))
	}
	for i := range answers {
		if answers[i].Micros != want.Answers[i].Micros || answers[i].Fallback != want.Answers[i].Fallback {
			t.Fatalf("answer %d differs: NDJSON %+v vs JSON %+v", i, answers[i], want.Answers[i])
		}
	}

	// A malformed line is a 400 naming the line.
	bad := postCT(t, s, ctNDJSON, []byte("{\"machine\":\"T3D\",\"op\":\"broadcast\",\"p\":8,\"m\":16}\n{oops\n"))
	if bad.Code != http.StatusBadRequest || !strings.Contains(bad.Body.String(), "line 2") {
		t.Fatalf("bad line: status %d: %s", bad.Code, bad.Body.String())
	}
}

// goldenWireRequest is the binary form of TestGoldenFixedRegistry's
// batch: same five scenarios, names traveling once via the string
// table.
func goldenWireRequest() *wire.Request {
	return &wire.Request{
		Table: []string{"T3D", "broadcast", "", "SP2", "alltoall", "xor", "barrier", "hardware"},
		Records: []wire.Record{
			{Mach: 0, Op: 1, Alg: 2, P: 8, M: 16},
			{Mach: 0, Op: 1, Alg: 2, P: 4, M: 300},
			{Mach: 0, Op: 1, Alg: 2, P: 8, M: 65536},
			{Mach: 3, Op: 4, Alg: 5, P: 4, M: 1024},
			{Mach: 0, Op: 6, Alg: 7, P: 8, M: 0},
		},
	}
}

// TestGoldenWireMatchesJSON: the binary codec's answers are numerically
// identical — bit for bit — to the pinned JSON golden for the same
// batch. This is the cross-codec contract: switching a client to the
// fast wire mode changes no numbers.
func TestGoldenWireMatchesJSON(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "fixed_registry.golden.json"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var golden Response
	if err := json.Unmarshal(blob, &golden); err != nil {
		t.Fatal(err)
	}

	s := testServer(t)
	rec := postCT(t, s, wire.ContentType, goldenWireRequest().Append(nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("response Content-Type %q", ct)
	}
	var resp wire.Response
	if err := resp.Decode(rec.Body.Bytes()); err != nil {
		t.Fatalf("decoding response frame: %v", err)
	}
	if resp.Registry != golden.Registry || resp.Backend != golden.Backend || resp.Provenance != golden.Provenance {
		t.Fatalf("envelope (%q, %q, %q) vs golden (%q, %q, %q)",
			resp.Registry, resp.Backend, resp.Provenance,
			golden.Registry, golden.Backend, golden.Provenance)
	}
	if len(resp.Answers) != len(golden.Answers) {
		t.Fatalf("%d answers, golden has %d", len(resp.Answers), len(golden.Answers))
	}
	for i, a := range resp.Answers {
		g := golden.Answers[i]
		if a.Micros != g.Micros {
			t.Errorf("answer %d micros %v, golden %v", i, a.Micros, g.Micros)
		}
		if a.Fallback != g.Fallback || a.FallbackReason != g.FallbackReason {
			t.Errorf("answer %d fallback (%v, %q), golden (%v, %q)",
				i, a.Fallback, a.FallbackReason, g.Fallback, g.FallbackReason)
		}
		if a.HasBound != (g.ExpectedError != nil) {
			t.Fatalf("answer %d bound presence %v, golden %v", i, a.HasBound, g.ExpectedError != nil)
		}
		if a.HasBound {
			want := wire.Bound{
				RelMedian: g.ExpectedError.RelMedian, RelMax: g.ExpectedError.RelMax,
				BasisM: g.ExpectedError.BasisM, Points: g.ExpectedError.Points,
				SegmentMMin: g.ExpectedError.SegmentMMin, SegmentMMax: g.ExpectedError.SegmentMMax,
			}
			if a.Bound != want {
				t.Errorf("answer %d bound %+v, golden %+v", i, a.Bound, want)
			}
		}
	}
}

// TestWireRequestErrors: frame and scenario errors on the binary path
// surface as the usual JSON 400 envelope.
func TestWireRequestErrors(t *testing.T) {
	s := testServer(t)
	// JSON posted with the binary Content-Type fails on the magic check.
	rec := postCT(t, s, wire.ContentType, []byte(oneScenario))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "magic") {
		t.Fatalf("JSON-as-binary: status %d: %s", rec.Code, rec.Body.String())
	}
	// An unknown machine in the string table names the failing record.
	req := &wire.Request{
		Table:   []string{"NX2", "broadcast", ""},
		Records: []wire.Record{{Mach: 0, Op: 1, Alg: 2, P: 8, M: 16}},
	}
	rec = postCT(t, s, wire.ContentType, req.Append(nil))
	if rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "scenario 0") ||
		!strings.Contains(rec.Body.String(), "unknown machine") {
		t.Fatalf("unknown machine: status %d: %s", rec.Code, rec.Body.String())
	}
	// The registry travels in the frame.
	good := goldenWireRequest()
	good.Registry = "paper"
	rec = postCT(t, s, wire.ContentType, good.Append(nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("named registry: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Estimate-Registry"); got != "paper" {
		t.Fatalf("X-Estimate-Registry %q, want paper", got)
	}
}

// TestWireMetrics: serve_wire_requests_total counts requests by
// negotiated codec, including 415s under none.
func TestWireMetrics(t *testing.T) {
	s := testServer(t)
	instrument(s)
	postCT(t, s, ctJSON, []byte(oneScenario))
	postCT(t, s, ctNDJSON, []byte(oneScenario))
	postCT(t, s, wire.ContentType, goldenWireRequest().Append(nil))
	postCT(t, s, "application/xml", []byte(oneScenario)) // 415: no codec
	vals := promValues(t, get(t, s, "/metrics").Body.String())
	for series, want := range map[string]uint64{
		`serve_wire_requests_total{codec="json"}`:   1,
		`serve_wire_requests_total{codec="ndjson"}`: 1,
		`serve_wire_requests_total{codec="binary"}`: 1,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}
