package serve

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// fallbackKind classifies why a scenario fell back to the simulator —
// the bounded label set of serve_fallbacks_total (free-form reason
// strings would explode the series space).
type fallbackKind int

const (
	fbNone       fallbackKind = iota
	fbOutOfRange              // outside the calibrated (p, m) envelope
	fbUncovered               // the entry has no fit for (machine, op)
	fbVariant                 // a fixed set asked about a non-default variant
	numFallbackKinds
)

var fallbackKindNames = [numFallbackKinds]string{"", "out_of_range", "uncovered", "variant_only"}

// shedReason classifies why the admission gate refused a request — the
// label set of serve_shed_total.
type shedReason int

const (
	shedNone      shedReason = iota
	shedQueueFull            // the bounded wait queue was at budget (429)
	shedTimeout              // the request expired while queued (503)
	numShedReasons
)

var shedReasonNames = [numShedReasons]string{"", "queue_full", "timeout"}

// Deadline outcomes — the label set of serve_deadline_total, recorded
// for every request that carried a deadline (configured or header).
const (
	dlMet      = iota // answered in full within the deadline
	dlDegraded        // answered, but ≥ 1 scenario degraded to closed form
	dlExceeded        // 504: the deadline fired with no degraded answer available
	numDeadlineOutcomes
)

var deadlineOutcomeNames = [numDeadlineOutcomes]string{"met", "degraded", "exceeded"}

// reqStats is one request's outcome, filled by serveEstimate and turned
// into metric updates and an access-log line by handleEstimate.
type reqStats struct {
	status    int
	registry  string // resolved entry name; "" when none resolved
	codec     Codec  // negotiated wire codec; CodecUnknown on 415
	shed      shedReason
	scenarios int
	fallbacks int
	kinds     [numFallbackKinds]int
	bounds    int // answers carrying an expected_error
	// hadDeadline marks a request that ran under a deadline; degraded
	// counts its scenarios answered closed-form because the deadline
	// expired mid-simulation.
	hadDeadline bool
	degraded    int
	// Answer-cache verdicts per scenario. With no cache attached every
	// scenario is a bypass.
	cacheHits, cacheMisses, cacheBypass int
}

// Metrics holds the serving layer's observability series. A nil
// *Metrics is valid and records nothing — the server's hot path then
// pays one branch and zero clock reads per request.
type Metrics struct {
	reg *obs.Registry

	reqOK, reqClientErr, reqServerErr  *obs.Counter
	scenariosClosed, scenariosFallback *obs.Counter
	fallbackKinds                      [numFallbackKinds]*obs.Counter // [fbNone] stays nil
	bounds                             *obs.Counter
	wire                               [numCodecs]*obs.Counter
	cacheHit, cacheMiss, cacheBypass   *obs.Counter
	shedKinds                          [numShedReasons]*obs.Counter // [shedNone] stays nil
	deadlines                          [numDeadlineOutcomes]*obs.Counter
	degraded                           *obs.Counter
	reloadOK, reloadErr                *obs.Counter
	inFlight                           *obs.Gauge
	queue                              *obs.Gauge
	batch                              *obs.Histogram
	stages                             [obs.NumStages]*obs.Histogram

	// byRegistry caches serve_registry_requests_total handles per entry
	// name, so the per-request path skips the registry's setup mutex.
	byRegistry sync.Map // string → *obs.Counter
}

// NewMetrics registers the serving metric series on reg and returns the
// handle bundle to assign to Server.Obs:
//
//	serve_requests_total{outcome}          ok | client_error | server_error
//	serve_registry_requests_total{registry} served requests per entry
//	serve_scenarios_total{mode}            closed_form | fallback
//	serve_fallbacks_total{reason}          out_of_range | uncovered | variant_only
//	serve_bounds_attached_total            answers carrying expected_error
//	serve_wire_requests_total{codec}       json | ndjson | binary
//	serve_answer_cache_total{result}       hit | miss | bypass (per scenario)
//	serve_shed_total{reason}               queue_full | timeout (admission gate refusals)
//	serve_deadline_total{outcome}          met | degraded | exceeded (deadline-carrying requests)
//	serve_degraded_total                   scenarios answered degraded (closed form, deadline pressed)
//	serve_reloads_total{result}            ok | error (hot registry reloads)
//	serve_in_flight                        requests currently in the handler
//	serve_queue_depth                      requests waiting at the admission gate
//	serve_batch_size                       scenarios per served request
//	serve_stage_duration_ns{stage}         decode … encode (see obs.Stage)
//
// Scenario, fallback, bound, batch, and stage series update only on
// served (status-200) requests, so their totals are mutually consistent
// with serve_requests_total{outcome="ok"}.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	req := func(outcome string) *obs.Counter {
		return reg.Counter("serve_requests_total",
			"estimate requests by outcome",
			obs.Label{Key: "outcome", Value: outcome})
	}
	m.reqOK, m.reqClientErr, m.reqServerErr = req("ok"), req("client_error"), req("server_error")
	mode := func(mode string) *obs.Counter {
		return reg.Counter("serve_scenarios_total",
			"served scenarios by answering mode",
			obs.Label{Key: "mode", Value: mode})
	}
	m.scenariosClosed, m.scenariosFallback = mode("closed_form"), mode("fallback")
	for k := fbNone + 1; k < numFallbackKinds; k++ {
		m.fallbackKinds[k] = reg.Counter("serve_fallbacks_total",
			"scenarios answered by the exact simulator, by reason",
			obs.Label{Key: "reason", Value: fallbackKindNames[k]})
	}
	m.bounds = reg.Counter("serve_bounds_attached_total",
		"served answers carrying a validated expected_error bound")
	for c := Codec(0); c < numCodecs; c++ {
		m.wire[c] = reg.Counter("serve_wire_requests_total",
			"estimate requests by negotiated wire codec",
			obs.Label{Key: "codec", Value: codecNames[c]})
	}
	cache := func(result string) *obs.Counter {
		return reg.Counter("serve_answer_cache_total",
			"scenario answer-cache lookups by result (bypass: no cache attached)",
			obs.Label{Key: "result", Value: result})
	}
	m.cacheHit, m.cacheMiss, m.cacheBypass = cache("hit"), cache("miss"), cache("bypass")
	for sr := shedNone + 1; sr < numShedReasons; sr++ {
		m.shedKinds[sr] = reg.Counter("serve_shed_total",
			"requests refused at the admission gate, by reason",
			obs.Label{Key: "reason", Value: shedReasonNames[sr]})
	}
	for d := 0; d < numDeadlineOutcomes; d++ {
		m.deadlines[d] = reg.Counter("serve_deadline_total",
			"deadline-carrying requests by outcome",
			obs.Label{Key: "outcome", Value: deadlineOutcomeNames[d]})
	}
	m.degraded = reg.Counter("serve_degraded_total",
		"scenarios answered degraded: closed form because the deadline expired mid-simulation")
	reload := func(result string) *obs.Counter {
		return reg.Counter("serve_reloads_total",
			"hot registry reloads by result",
			obs.Label{Key: "result", Value: result})
	}
	m.reloadOK, m.reloadErr = reload("ok"), reload("error")
	m.inFlight = reg.Gauge("serve_in_flight",
		"estimate requests currently being handled")
	m.queue = reg.Gauge("serve_queue_depth",
		"requests waiting at the admission gate")
	m.batch = reg.Histogram("serve_batch_size",
		"scenarios per served estimate request")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		m.stages[st] = reg.Histogram("serve_stage_duration_ns",
			"per-request pipeline stage time in nanoseconds (estimate and bounds sum worker time)",
			obs.Label{Key: "stage", Value: st.String()})
	}
	return m
}

// Registry returns the underlying metric registry (nil-safe) — what
// /metrics and /debug/vars export, and where cmd wiring adds series
// from other layers.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// begin/end bracket one in-flight request. Nil-safe.
func (m *Metrics) begin() {
	if m != nil {
		m.inFlight.Add(1)
	}
}

func (m *Metrics) end() {
	if m != nil {
		m.inFlight.Add(-1)
	}
}

// queueDepth returns the admission-queue gauge (nil when unmetered —
// obs gauges are nil-safe, so the gate adds into it unconditionally).
func (m *Metrics) queueDepth() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.queue
}

// reloaded records one hot registry reload. Nil-safe.
func (m *Metrics) reloaded(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.reloadOK.Inc()
	} else {
		m.reloadErr.Inc()
	}
}

// panicked records a request that died in a handler panic (recovered by
// the middleware into a 500). Nil-safe.
func (m *Metrics) panicked() {
	if m != nil {
		m.reqServerErr.Inc()
	}
}

// observe folds one finished request into the series. Stage histograms
// and scenario-level counters update only for served requests, keeping
// them consistent with the ok outcome count.
func (m *Metrics) observe(st reqStats, tr *obs.Trace) {
	if m == nil {
		return
	}
	switch {
	case st.status < 400:
		m.reqOK.Inc()
	case st.status < 500:
		m.reqClientErr.Inc()
	default:
		m.reqServerErr.Inc()
	}
	if st.codec >= 0 {
		m.wire[st.codec].Inc()
	}
	if st.shed != shedNone {
		m.shedKinds[st.shed].Inc()
	}
	if st.hadDeadline {
		switch {
		case st.status == http.StatusGatewayTimeout:
			m.deadlines[dlExceeded].Inc()
		case st.status == http.StatusOK && st.degraded > 0:
			m.deadlines[dlDegraded].Inc()
		case st.status == http.StatusOK:
			m.deadlines[dlMet].Inc()
		}
	}
	if st.status != http.StatusOK {
		return
	}
	if st.degraded > 0 {
		m.degraded.Add(uint64(st.degraded))
	}
	if st.cacheHits > 0 {
		m.cacheHit.Add(uint64(st.cacheHits))
	}
	if st.cacheMisses > 0 {
		m.cacheMiss.Add(uint64(st.cacheMisses))
	}
	if st.cacheBypass > 0 {
		m.cacheBypass.Add(uint64(st.cacheBypass))
	}
	if st.registry != "" {
		m.registryCounter(st.registry).Inc()
	}
	m.batch.Observe(uint64(st.scenarios))
	if n := st.scenarios - st.fallbacks; n > 0 {
		m.scenariosClosed.Add(uint64(n))
	}
	if st.fallbacks > 0 {
		m.scenariosFallback.Add(uint64(st.fallbacks))
		for k := fbNone + 1; k < numFallbackKinds; k++ {
			if st.kinds[k] > 0 {
				m.fallbackKinds[k].Add(uint64(st.kinds[k]))
			}
		}
	}
	if st.bounds > 0 {
		m.bounds.Add(uint64(st.bounds))
	}
	if tr != nil {
		for stage := obs.Stage(0); stage < obs.NumStages; stage++ {
			m.stages[stage].Observe(uint64(tr.NS(stage)))
		}
	}
}

// registryCounter returns the served-request counter for one entry
// name, registering it on first use.
func (m *Metrics) registryCounter(name string) *obs.Counter {
	if c, ok := m.byRegistry.Load(name); ok {
		return c.(*obs.Counter)
	}
	c := m.reg.Counter("serve_registry_requests_total",
		"served requests per registry entry",
		obs.Label{Key: "registry", Value: name})
	m.byRegistry.Store(name, c)
	return c
}

// Totals reports the lifetime request, scenario, and fallback counts —
// the shutdown drain's final snapshot. Nil-safe.
func (m *Metrics) Totals() (requests, scenarios, fallbacks uint64) {
	if m == nil {
		return 0, 0, 0
	}
	requests = m.reqOK.Value() + m.reqClientErr.Value() + m.reqServerErr.Value()
	scenarios = m.scenariosClosed.Value() + m.scenariosFallback.Value()
	return requests, scenarios, m.scenariosFallback.Value()
}

// handleMetrics answers GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Obs.Registry().WritePrometheus(w)
}

// handleVars answers GET /debug/vars with an expvar-style JSON object.
// The server publishes into its own metric registry rather than the
// process-global expvar namespace, so many Server instances (tests, one
// process hosting several) never collide on Publish.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	blob, err := json.MarshalIndent(map[string]any{"obs": s.Obs.Registry().Snapshot()}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}
