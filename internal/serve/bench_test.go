package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// BenchmarkServeThroughput measures the service's request rate through
// the full HTTP handler stack (decode, validate, estimate, encode) on
// the warm calibrated registry — single-scenario requests vs the
// batched default grid, each plain, with metrics attached (the -obs
// variants), and with metrics plus sampled tracing (the -trace
// variants: a 64-slot ring at 1-in-100 sampling, the production
// shape); scripts/bench.sh gates both overheads at 5%. Tracked by
// scripts/bench.sh; non-gating.
func BenchmarkServeThroughput(b *testing.B) {
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-default")
	if err != nil {
		b.Fatal(err)
	}

	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      estimate.DefaultCalibrationSizes,
	}
	scns, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	grid := make([]Scenario, len(scns))
	for i, sc := range scns {
		grid[i] = Scenario{Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M}
	}
	batchBody, err := json.Marshal(grid)
	if err != nil {
		b.Fatal(err)
	}
	singleBody := []byte(`{"machine":"SP2","op":"alltoall","p":32,"m":1024}`)

	// Calibrate outside the timed region: throughput is the serving
	// number, cold calibration is BenchmarkCalibrationCold's.
	if cal, ok := entry.Backend.(*estimate.Calibrated); ok {
		var triples []estimate.Triple
		for _, sc := range scns {
			triples = append(triples, estimate.Triple{
				Machine: machine.ByName(sc.Machine), Op: sc.Op, Alg: sc.Algorithm,
			})
		}
		cal.Precalibrate(triples, 0)
	}

	// The plain and instrumented servers share the registry and memo, so
	// both serve the same warm fits; only the metrics plumbing differs.
	for _, v := range []struct {
		suffix  string
		metrics *Metrics
		traces  *obs.TraceRing
	}{
		{"", nil, nil},
		{"-obs", NewMetrics(obs.NewRegistry()), nil},
		{"-trace", NewMetrics(obs.NewRegistry()), obs.NewTraceRing(64)},
	} {
		s := &Server{Registry: reg, Default: "refit-default", Sim: estimate.Sim{Memo: memo},
			Obs: v.metrics, Traces: v.traces, TraceSample: 100}
		handler := s.Handler()
		post := func(body []byte) *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			return rec
		}

		b.Run("single"+v.suffix, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				post(singleBody)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
		b.Run("batch788"+v.suffix, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				post(batchBody)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(b.N*len(grid))/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}
