package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/machine"
)

// AnswerCache is the service's per-scenario answer cache: repeated
// traffic for a scenario the registry has already answered skips
// estimation, bound lookup, and fallback simulation entirely and
// returns the finished Answer.
//
// Keys are derived the way sweep-cache keys are: the registry entry's
// epoch (backend name + provenance, which carries the calibration
// grid, methodology, fit family, and calibrationVersion) plus the
// server's fallback-sim methodology digest, the machine's calibration
// fingerprint, and the resolved scenario itself. Recalibration — a new
// provenance — therefore self-invalidates: stale answers are simply
// never found under the new epoch, and age out of the bounded space.
//
// The cache is sharded (16 ways) with single-flight misses: concurrent
// requests for one cold key run the estimate once and share the
// result, the same contract estimate.SampleMemo gives simulator
// measurements. Capacity is bounded; eviction is a second-chance
// (CLOCK-style) sweep per shard, so sustained hot keys survive churn.
//
// A nil *AnswerCache is valid and caches nothing (every request
// reports "bypass").
type AnswerCache struct {
	shards   [acShards]acShard
	perShard int
}

const acShards = 16

// acKey identifies one cacheable answer. Every component that could
// change the answer is in the key: the entry's epoch + config digest
// (interned to a small id — see epochID — so the hot hit path never
// hashes the long provenance strings), the machine's calibration
// fingerprint (which doubles as the machine identity: it hashes the
// full parameter set, so no separate name is needed), and the resolved
// scenario. alg is the resolved name ("default" normalized), so the
// alias and its eponymous variant cache separately — same behavior as
// the serving path, which resolves before answering.
type acKey struct {
	eid  uint64 // interned epoch, from epochID
	fp   string // estimate.CachedFingerprint of the machine
	op   machine.Op
	alg  string
	p, m int
}

// epochIDs interns epoch strings (entry provenance + server config
// digest) to small ids, so per-scenario cache keys carry 8 bytes
// instead of a few hundred. Identical epochs — two entries over the
// same calibration — intern to the same id and therefore share
// answers; a recalibrated backend is a new string, hence a new id.
var (
	epochIDs sync.Map // string → uint64
	epochSeq atomic.Uint64
)

func epochID(epoch string) uint64 {
	if v, ok := epochIDs.Load(epoch); ok {
		return v.(uint64)
	}
	v, _ := epochIDs.LoadOrStore(epoch, epochSeq.Add(1))
	return v.(uint64)
}

// acEntry is one cached (or in-flight) answer; once gives cold keys
// their single flight, done marks the answer as materialized (eviction
// never removes an entry a goroutine is still computing into). err is
// the computation's failure, shared by the flight's waiters; errored
// entries are forgotten right after the flight (see Server.answerCached)
// so retries recompute.
type acEntry struct {
	once sync.Once
	done atomic.Bool
	used atomic.Bool
	ans  Answer
	err  error
}

type acShard struct {
	mu sync.RWMutex
	m  map[acKey]*acEntry
}

// NewAnswerCache returns a cache bounded at roughly size answers
// (rounded up to the shard count), or nil — caching disabled — when
// size ≤ 0.
func NewAnswerCache(size int) *AnswerCache {
	if size <= 0 {
		return nil
	}
	c := &AnswerCache{perShard: (size + acShards - 1) / acShards}
	for i := range c.shards {
		c.shards[i].m = make(map[acKey]*acEntry)
	}
	return c
}

// Len returns the number of cached (including in-flight) answers.
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Cap returns the configured capacity in answers (0 for nil).
func (c *AnswerCache) Cap() int {
	if c == nil {
		return 0
	}
	return c.perShard * acShards
}

// get returns the entry for k, creating an in-flight one when absent.
// created reports whether this caller inserted it — the accounting
// miss; callers that found an entry (finished or in flight) are hits.
// Either way the caller must pass its compute fn through e.once.Do and
// read e.ans after, which is what serializes the single flight.
func (c *AnswerCache) get(k acKey) (e *acEntry, created bool) {
	sh := &c.shards[c.shard(&k)]
	sh.mu.RLock()
	e, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		// The second-chance mark only needs to become true; checking
		// first keeps steady hits from dirtying the cache line.
		if !e.used.Load() {
			e.used.Store(true)
		}
		return e, false
	}
	sh.mu.Lock()
	if e, ok = sh.m[k]; ok {
		sh.mu.Unlock()
		if !e.used.Load() {
			e.used.Store(true)
		}
		return e, false
	}
	if len(sh.m) >= c.perShard {
		sh.evictLocked()
	}
	e = &acEntry{}
	sh.m[k] = e
	sh.mu.Unlock()
	return e, true
}

// forget removes k's entry if it is still e — pointer-compared, so a
// retry that already replaced the slot is left alone. Used to discard
// errored and degraded computations after their single flight.
func (c *AnswerCache) forget(k acKey, e *acEntry) {
	sh := &c.shards[c.shard(&k)]
	sh.mu.Lock()
	if sh.m[k] == e {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
}

// shard hashes the key's scenario coordinates (FNV-1a). The epoch id
// is near-constant across a request stream and the fingerprint tracks
// the few machine presets, so neither is worth hashing here — op, alg,
// p, m spread the grid fine across 16 shards.
func (c *AnswerCache) shard(k *acKey) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(k.op); i++ {
		h = (h ^ uint32(k.op[i])) * prime
	}
	for i := 0; i < len(k.alg); i++ {
		h = (h ^ uint32(k.alg[i])) * prime
	}
	h = (h ^ uint32(k.p)) * prime
	h = (h ^ uint32(k.m)) * prime
	return h % acShards
}

// evictLocked frees one slot: a second-chance sweep in map order
// (randomized by Go) that skips in-flight entries, clears used marks
// as it passes, and removes the first finished entry not referenced
// since the last sweep — falling back to any finished entry when the
// whole shard is recently used.
func (sh *acShard) evictLocked() {
	var fallback acKey
	haveFallback := false
	for k, e := range sh.m {
		if !e.done.Load() {
			continue
		}
		if e.used.Load() {
			e.used.Store(false)
			if !haveFallback {
				fallback, haveFallback = k, true
			}
			continue
		}
		delete(sh.m, k)
		return
	}
	if haveFallback {
		delete(sh.m, fallback)
	}
	// Every entry in flight: let the shard run one over; the next
	// insert's sweep will find finished entries to reclaim.
}
