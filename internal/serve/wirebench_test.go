package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// BenchmarkServeWire measures the fast wire mode end to end through a
// real TCP socket: an httptest server with the warm calibrated
// registry, hit by a kept-alive client. Variants cover the binary codec
// single and batched (the default 788-scenario grid), each cold
// (answer cache off) and hot (warm answer cache), plus the same-run
// JSON batch as the comparator the wire mode is judged against.
// scripts/bench.sh prints and gates on the batch788-hot scenarios/s
// headline. Tracked by scripts/bench.sh.
func BenchmarkServeWire(b *testing.B) {
	memo := estimate.NewSampleMemo()
	reg := estimate.StandardRegistry(estimate.RegistryConfig{Memo: memo})
	entry, err := reg.Get("refit-default")
	if err != nil {
		b.Fatal(err)
	}

	spec := sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      estimate.DefaultCalibrationSizes,
	}
	scns, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	// Calibrate outside the timed region, as BenchmarkServeThroughput
	// does: these numbers are serving rates, not calibration rates.
	if cal, ok := entry.Backend.(*estimate.Calibrated); ok {
		var triples []estimate.Triple
		for _, sc := range scns {
			triples = append(triples, estimate.Triple{
				Machine: machine.ByName(sc.Machine), Op: sc.Op, Alg: sc.Algorithm,
			})
		}
		cal.Precalibrate(triples, 0)
	}

	// The binary grid request: every distinct name once in the table.
	wreq := wire.Request{}
	index := map[string]uint32{}
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(wreq.Table))
		wreq.Table = append(wreq.Table, s)
		index[s] = i
		return i
	}
	grid := make([]Scenario, len(scns))
	for i, sc := range scns {
		grid[i] = Scenario{Machine: sc.Machine, Op: string(sc.Op), Algorithm: sc.Algorithm, P: sc.P, M: sc.M}
		wreq.Records = append(wreq.Records, wire.Record{
			Mach: intern(sc.Machine), Op: intern(string(sc.Op)), Alg: intern(sc.Algorithm),
			P: sc.P, M: sc.M,
		})
	}
	batchWire := wreq.Append(nil)
	batchJSON, err := json.Marshal(grid)
	if err != nil {
		b.Fatal(err)
	}
	singleWire := (&wire.Request{
		Table:   []string{"SP2", "alltoall", ""},
		Records: []wire.Record{{Mach: 0, Op: 1, Alg: 2, P: 32, M: 1024}},
	}).Append(nil)

	for _, v := range []struct {
		name        string
		contentType string
		body        []byte
		cache       *AnswerCache
		scenarios   int
	}{
		{"binary-single-cold", wire.ContentType, singleWire, nil, 1},
		{"binary-single-hot", wire.ContentType, singleWire, NewAnswerCache(1 << 18), 1},
		{"binary-batch788-cold", wire.ContentType, batchWire, nil, len(grid)},
		{"binary-batch788-hot", wire.ContentType, batchWire, NewAnswerCache(1 << 18), len(grid)},
		{"json-batch788-cold", "application/json", batchJSON, nil, len(grid)},
		{"json-batch788-hot", "application/json", batchJSON, NewAnswerCache(1 << 18), len(grid)},
	} {
		s := &Server{Registry: reg, Default: "refit-default", Sim: estimate.Sim{Memo: memo}, Cache: v.cache}
		srv := httptest.NewServer(s.Handler())
		client := srv.Client()
		url := srv.URL + "/v1/estimate"
		post := func() {
			resp, err := client.Post(url, v.contentType, bytes.NewReader(v.body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.Run(v.name, func(b *testing.B) {
			post() // warm the connection (and, for -hot, the answer cache)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(b.N*v.scenarios)/b.Elapsed().Seconds(), "scenarios/s")
		})
		srv.Close()
	}
}
