package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestLenRoundTrip drives AppendLen/ReadLen across the power-of-two
// size-class thresholds, checking the value, the consumed byte count,
// and that the encoder picked the shortest form.
func TestLenRoundTrip(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
	}{
		{0x00, 1}, {0x01, 1}, {0x3e, 1}, {0x3f, 1},
		{0x40, 2}, {0x41, 2}, {0xfe, 2}, {0xff, 2}, {0x100, 2}, {0x101, 2},
		{0x1ffe, 2}, {0x1fff, 2}, {0x2000, 2}, {0x2001, 2}, {0x3fff, 2},
		{0x4000, 4}, {0x4001, 4},
		{0xfffe, 4}, {0xffff, 4}, {0x10000, 4}, {0x10001, 4},
		{0xffffe, 4}, {0xfffff, 4}, {0x100000, 4},
		{0x3fffffff, 4},
		{0x40000000, 9}, {0x40000001, 9},
		{1 << 40, 9}, {math.MaxUint64 - 1, 9}, {math.MaxUint64, 9},
	}
	for _, tc := range cases {
		enc := AppendLen(nil, tc.v)
		if len(enc) != tc.size {
			t.Fatalf("value %#x encoded to %d bytes, want %d", tc.v, len(enc), tc.size)
		}
		got, n, err := ReadLen(enc)
		if err != nil {
			t.Fatalf("value %#x: ReadLen error %v", tc.v, err)
		}
		if got != tc.v || n != len(enc) {
			t.Fatalf("value %#x round-tripped to %#x (consumed %d of %d)", tc.v, got, n, len(enc))
		}
		// With trailing data present the reader must consume exactly the
		// header.
		got, n, err = ReadLen(append(enc, 0xAA, 0xBB))
		if err != nil || got != tc.v || n != len(enc) {
			t.Fatalf("value %#x with trailer: got %#x, n=%d, err=%v", tc.v, got, n, err)
		}
	}
}

// TestLenTruncated: every strict prefix of an encoded header errors
// instead of misreading.
func TestLenTruncated(t *testing.T) {
	for _, v := range []uint64{0x40, 0x4000, 0x40000000, math.MaxUint64} {
		enc := AppendLen(nil, v)
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := ReadLen(enc[:cut]); err == nil {
				t.Fatalf("value %#x truncated to %d bytes decoded without error", v, cut)
			}
		}
	}
	// Reserved tag bytes (11 with any low bit set) are rejected.
	if _, _, err := ReadLen([]byte{0xC1, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("reserved tag byte decoded without error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "x", "default", strings.Repeat("m", 0x3f),
		strings.Repeat("m", 0x40), strings.Repeat("long", 1<<10)} {
		enc := AppendString(nil, s)
		got, n, err := ReadString(enc)
		if err != nil || got != s || n != len(enc) {
			t.Fatalf("string %q (len %d): got %q, n=%d of %d, err=%v", s[:min(8, len(s))], len(s), got, n, len(enc), err)
		}
	}
	if _, _, err := ReadString(AppendString(nil, "hello")[:3]); err == nil {
		t.Fatal("truncated string decoded without error")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 3.7500000000000004, 1e-300, math.MaxFloat64,
		math.Inf(1), math.SmallestNonzeroFloat64} {
		enc := AppendFloat(nil, f)
		got, n, err := ReadFloat(enc)
		if err != nil || n != 8 || math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("float %v: got %v (bits %#x vs %#x), err=%v",
				f, got, math.Float64bits(got), math.Float64bits(f), err)
		}
	}
	// NaN round-trips bit-exactly too.
	nan := math.Float64frombits(0x7ff8000000000001)
	got, _, _ := ReadFloat(AppendFloat(nil, nan))
	if math.Float64bits(got) != math.Float64bits(nan) {
		t.Fatal("NaN payload bits not preserved")
	}
}

func sampleRequest() *Request {
	return &Request{
		Registry: "refit-default",
		Table:    []string{"T3D", "broadcast", "", "SP2", "alltoall", "pairwise"},
		Records: []Record{
			{Mach: 0, Op: 1, Alg: 2, P: 8, M: 1024},
			{Mach: 3, Op: 4, Alg: 5, P: 32, M: 0x4000}, // m crosses the 2-byte header threshold
			{Mach: 0, Op: 1, Alg: 2, P: 64, M: 1 << 20},
		},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	enc := req.Append(nil)
	var dec Request
	if err := dec.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if dec.Registry != req.Registry || len(dec.Table) != len(req.Table) || len(dec.Records) != len(req.Records) {
		t.Fatalf("decoded %+v", dec)
	}
	for i := range req.Table {
		if dec.Table[i] != req.Table[i] {
			t.Fatalf("table[%d] = %q, want %q", i, dec.Table[i], req.Table[i])
		}
	}
	for i := range req.Records {
		if dec.Records[i] != req.Records[i] {
			t.Fatalf("record[%d] = %+v, want %+v", i, dec.Records[i], req.Records[i])
		}
	}
	// A pooled Request decodes a second frame reusing its slices.
	second := &Request{Registry: "", Table: []string{"Paragon", "scan", "linear"},
		Records: []Record{{Mach: 0, Op: 1, Alg: 2, P: 4, M: 16}}}
	if err := dec.Decode(second.Append(nil)); err != nil {
		t.Fatal(err)
	}
	if dec.Registry != "" || len(dec.Records) != 1 || dec.Table[0] != "Paragon" {
		t.Fatalf("reused decode %+v", dec)
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	enc := sampleRequest().Append(nil)
	var dec Request
	// Every strict prefix fails cleanly.
	for cut := 0; cut < len(enc); cut++ {
		if err := dec.Decode(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
	// Trailing garbage is rejected, not ignored.
	if err := dec.Decode(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// JSON posted as binary fails on the magic check.
	if err := dec.Decode([]byte(`{"machine":"T3D"}`)); err != ErrMagic {
		t.Fatalf("JSON body error %v, want ErrMagic", err)
	}
	// A record index past the table is rejected at decode time.
	bad := &Request{Table: []string{"T3D"}, Records: []Record{{Mach: 1, Op: 0, Alg: 0, P: 8, M: 16}}}
	if err := dec.Decode(bad.Append(nil)); err == nil || !strings.Contains(err.Error(), "table entry") {
		t.Fatalf("out-of-table index error %v", err)
	}
}

func sampleResponse() *Response {
	return &Response{
		Registry: "refit-default", Backend: "calibrated", Provenance: strings.Repeat("ab", 32),
		Answers: []Answer{
			{Micros: 123.456},
			{Micros: 3.7500000000000004, HasBound: true,
				Bound: Bound{RelMedian: 0.01, RelMax: 0.05, BasisM: 1024, Points: 4}},
			{Micros: 9e5, HasBound: true,
				Bound: Bound{RelMedian: 0.002, RelMax: 0.2, BasisM: 65536, Points: 8,
					SegmentMMin: 4096, SegmentMMax: 262144}},
			{Micros: 42, Fallback: true,
				FallbackReason: "p=64 m=1 is outside the calibrated range; answered by the exact simulator"},
		},
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := sampleResponse()
	enc := resp.Append(nil)
	var dec Response
	if err := dec.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if dec.Registry != resp.Registry || dec.Backend != resp.Backend || dec.Provenance != resp.Provenance {
		t.Fatalf("envelope %+v", dec)
	}
	if len(dec.Answers) != len(resp.Answers) {
		t.Fatalf("%d answers, want %d", len(dec.Answers), len(resp.Answers))
	}
	for i := range resp.Answers {
		want, got := resp.Answers[i], dec.Answers[i]
		if math.Float64bits(got.Micros) != math.Float64bits(want.Micros) {
			t.Fatalf("answer %d micros bits differ", i)
		}
		if got != want {
			t.Fatalf("answer %d = %+v, want %+v", i, got, want)
		}
	}
	// Incremental encoding (header + per-answer appends, the server's
	// path) produces the same bytes as the whole-frame Append.
	inc := AppendResponseHeader(nil, resp.Registry, resp.Backend, resp.Provenance, len(resp.Answers))
	for _, a := range resp.Answers {
		inc = AppendAnswer(inc, a)
	}
	if !bytes.Equal(inc, enc) {
		t.Fatal("incremental and whole-frame encodings differ")
	}
}

func TestResponseDecodeErrors(t *testing.T) {
	enc := sampleResponse().Append(nil)
	var dec Response
	for cut := 0; cut < len(enc); cut++ {
		if err := dec.Decode(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
	if err := dec.Decode(append(append([]byte{}, enc...), 0xFF)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}
