// Package wire implements the estimate service's binary codec: the
// length-prefixed frame format POST /v1/estimate negotiates via
// Content-Type (see ContentType). The format exists to close the gap
// between the warm in-process estimation rate and what survives JSON
// encode/decode on the socket: scenario records are fixed-layout, name
// strings travel once per request in a string table that records index
// into, and answers are raw float64 bits — so a batched request costs
// a handful of bytes per scenario instead of a JSON object.
//
// Every variable-size quantity uses the same thresholded length header
// (AppendLen/ReadLen): small values pay one byte, and the header grows
// through 2- and 4-byte forms to a 9-byte escape for full uint64 — the
// encapsulation idiom of codecs that frame high-rate small messages.
//
// # Request frame
//
//	magic (0xE7) | version (0x01)
//	registry     string            "" = server default (or ?registry=)
//	tableLen     len               string-table entry count
//	table        tableLen strings  machine / op / algorithm names
//	recordLen    len               scenario count
//	records      recordLen × { mach len | op len | alg len | p len | m len }
//
// mach/op/alg are indexes into the string table, so each distinct name
// is resolved once per request no matter how many records use it.
//
// # Response frame
//
//	magic (0xE7) | version (0x01)
//	registry, backend, provenance   strings (the envelope / X-Estimate-*)
//	answerLen    len
//	answers      answerLen × answer
//
// One answer is:
//
//	flags  byte     1 = fallback, 2 = bound attached, 4 = bound names a segment
//	micros float64  8-byte little-endian IEEE 754 bits
//	[reason string]                      when flags&1
//	[relMedian, relMax float64,
//	 basisM, points len,
//	 [segMin, segMax len when flags&4]]  when flags&2
//
// Answers preserve request order and echo nothing: the caller already
// knows which scenario each position asked about. Micros and the bound
// statistics are the same float64 bits the JSON encoding prints, so
// binary answers are numerically identical to JSON answers — a golden
// test in the serve package pins this.
//
// Errors are not framed: a non-200 response carries the service's JSON
// error envelope regardless of the request codec, so clients check the
// HTTP status before decoding.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// ContentType is the negotiated media type of both request and
// response frames.
const ContentType = "application/x-estimate-wire"

// Magic and Version open every frame; a decoder rejects anything else,
// so accidentally posting JSON with the binary Content-Type fails fast
// with a clear error instead of a garbage parse.
const (
	Magic   = 0xE7
	Version = 0x01
)

// Length-header size classes, tagged in the top two bits of the first
// byte. Encoders always emit the shortest form.
const (
	tag2 = 0x40 // 01vvvvvv + 1 byte: 14-bit value
	tag4 = 0x80 // 10vvvvvv + 3 bytes: 30-bit value
	tag8 = 0xC0 // 11000000 + 8 bytes: full uint64
)

// Frame-sanity caps: a decoder never allocates more than the remaining
// input can justify, but absurd declared counts fail early with a
// specific error instead of an EOF deep in the record loop.
const (
	maxTable  = 1 << 20 // distinct strings per request
	maxString = 1 << 20 // bytes per table entry / reason string
)

var (
	// ErrShort reports a frame that ends mid-field.
	ErrShort = errors.New("wire: truncated frame")
	// ErrMagic reports a frame that does not start with Magic+Version.
	ErrMagic = errors.New("wire: bad magic or version (not an estimate wire frame)")
)

// AppendLen appends the thresholded length header for v:
// 1 byte below 0x40, 2 below 0x4000, 4 below 0x40000000, 9 otherwise.
func AppendLen(dst []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(dst, byte(v))
	case v < 1<<14:
		return append(dst, tag2|byte(v>>8), byte(v))
	case v < 1<<30:
		return append(dst, tag4|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(dst, tag8,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// ReadLen decodes one length header from the front of src, returning
// the value and the bytes consumed.
func ReadLen(src []byte) (v uint64, n int, err error) {
	if len(src) == 0 {
		return 0, 0, ErrShort
	}
	b := src[0]
	switch b >> 6 {
	case 0:
		return uint64(b), 1, nil
	case 1:
		if len(src) < 2 {
			return 0, 0, ErrShort
		}
		return uint64(b&0x3F)<<8 | uint64(src[1]), 2, nil
	case 2:
		if len(src) < 4 {
			return 0, 0, ErrShort
		}
		return uint64(b&0x3F)<<24 | uint64(src[1])<<16 | uint64(src[2])<<8 | uint64(src[3]), 4, nil
	default:
		if b != tag8 {
			return 0, 0, fmt.Errorf("wire: reserved length tag 0x%02x", b)
		}
		if len(src) < 9 {
			return 0, 0, ErrShort
		}
		v = uint64(src[1])<<56 | uint64(src[2])<<48 | uint64(src[3])<<40 | uint64(src[4])<<32 |
			uint64(src[5])<<24 | uint64(src[6])<<16 | uint64(src[7])<<8 | uint64(src[8])
		return v, 9, nil
	}
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendLen(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString decodes one length-prefixed string (a copy, independent
// of src's lifetime).
func ReadString(src []byte) (s string, n int, err error) {
	v, n, err := ReadLen(src)
	if err != nil {
		return "", 0, err
	}
	if v > maxString {
		return "", 0, fmt.Errorf("wire: %d-byte string exceeds the %d cap", v, maxString)
	}
	if uint64(len(src)-n) < v {
		return "", 0, ErrShort
	}
	return string(src[n : n+int(v)]), n + int(v), nil
}

// AppendFloat appends f's IEEE 754 bits, little-endian.
func AppendFloat(dst []byte, f float64) []byte {
	b := math.Float64bits(f)
	return append(dst,
		byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
		byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
}

// ReadFloat decodes one little-endian float64.
func ReadFloat(src []byte) (f float64, n int, err error) {
	if len(src) < 8 {
		return 0, 0, ErrShort
	}
	b := uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 | uint64(src[3])<<24 |
		uint64(src[4])<<32 | uint64(src[5])<<40 | uint64(src[6])<<48 | uint64(src[7])<<56
	return math.Float64frombits(b), 8, nil
}

// readInt reads a length header that must fit a non-negative int.
func readInt(src []byte) (int, int, error) {
	v, n, err := ReadLen(src)
	if err != nil {
		return 0, 0, err
	}
	if v > math.MaxInt32 {
		return 0, 0, fmt.Errorf("wire: value %d exceeds the 31-bit field cap", v)
	}
	return int(v), n, nil
}

// Record is one fixed-layout scenario: string-table indexes for the
// names, plus the grid point.
type Record struct {
	Mach, Op, Alg uint32 // indexes into Request.Table
	P, M          int
}

// Request is a decoded request frame. Decode reuses the receiver's
// slices, so a pooled Request decodes batch after batch without
// allocating.
type Request struct {
	// Registry names the expression set; "" defers to ?registry= and
	// then the server default.
	Registry string
	// Table holds each distinct machine / op / algorithm name once. An
	// empty string is a valid entry (the default-algorithm alias).
	Table []string
	// Records are the scenarios, in answer order.
	Records []Record
}

// Append encodes the request frame.
func (r *Request) Append(dst []byte) []byte {
	dst = append(dst, Magic, Version)
	dst = AppendString(dst, r.Registry)
	dst = AppendLen(dst, uint64(len(r.Table)))
	for _, s := range r.Table {
		dst = AppendString(dst, s)
	}
	dst = AppendLen(dst, uint64(len(r.Records)))
	for _, rec := range r.Records {
		dst = AppendLen(dst, uint64(rec.Mach))
		dst = AppendLen(dst, uint64(rec.Op))
		dst = AppendLen(dst, uint64(rec.Alg))
		dst = AppendLen(dst, uint64(rec.P))
		dst = AppendLen(dst, uint64(rec.M))
	}
	return dst
}

// Decode parses a request frame, validating record indexes against the
// table. The receiver's Table and Records are reused.
func (r *Request) Decode(src []byte) error {
	if len(src) < 2 || src[0] != Magic || src[1] != Version {
		return ErrMagic
	}
	src = src[2:]
	var n int
	var err error
	if r.Registry, n, err = ReadString(src); err != nil {
		return fmt.Errorf("wire: registry: %w", err)
	}
	src = src[n:]

	tableLen, n, err := readInt(src)
	if err != nil {
		return fmt.Errorf("wire: table length: %w", err)
	}
	src = src[n:]
	if tableLen > maxTable {
		return fmt.Errorf("wire: %d table entries exceed the %d cap", tableLen, maxTable)
	}
	if tableLen > len(src) { // every entry needs ≥ 1 header byte
		return ErrShort
	}
	r.Table = r.Table[:0]
	for i := 0; i < tableLen; i++ {
		s, n, err := ReadString(src)
		if err != nil {
			return fmt.Errorf("wire: table entry %d: %w", i, err)
		}
		src = src[n:]
		r.Table = append(r.Table, s)
	}

	recordLen, n, err := readInt(src)
	if err != nil {
		return fmt.Errorf("wire: record count: %w", err)
	}
	src = src[n:]
	if recordLen > len(src)/5+1 { // a record is ≥ 5 single-byte fields
		return ErrShort
	}
	r.Records = r.Records[:0]
	for i := 0; i < recordLen; i++ {
		var rec Record
		fields := []*uint32{&rec.Mach, &rec.Op, &rec.Alg}
		for _, f := range fields {
			v, n, err := readInt(src)
			if err != nil {
				return fmt.Errorf("wire: record %d: %w", i, err)
			}
			if v >= tableLen {
				return fmt.Errorf("wire: record %d names table entry %d of %d", i, v, tableLen)
			}
			*f = uint32(v)
			src = src[n:]
		}
		if rec.P, n, err = readInt(src); err != nil {
			return fmt.Errorf("wire: record %d p: %w", i, err)
		}
		src = src[n:]
		if rec.M, n, err = readInt(src); err != nil {
			return fmt.Errorf("wire: record %d m: %w", i, err)
		}
		src = src[n:]
		r.Records = append(r.Records, rec)
	}
	if len(src) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after the last record", len(src))
	}
	return nil
}

// Answer flag bits.
const (
	flagFallback = 1 << iota // answered by the exact simulator
	flagBound                // a validated expected-error bound follows
	flagSegment              // the bound names its serving segment
)

// Bound mirrors the JSON answer's expected_error object.
type Bound struct {
	RelMedian, RelMax        float64
	BasisM, Points           int
	SegmentMMin, SegmentMMax int // both zero unless the segment flag is set
}

// Answer is one decoded response position. The answering backend is
// implied: the response header's backend, or the simulator when
// Fallback is set.
type Answer struct {
	Micros         float64
	Fallback       bool
	FallbackReason string
	HasBound       bool
	Bound          Bound
}

// AppendResponseHeader encodes the response frame's envelope for n
// answers; append each answer with AppendAnswer.
func AppendResponseHeader(dst []byte, registry, backend, provenance string, n int) []byte {
	dst = append(dst, Magic, Version)
	dst = AppendString(dst, registry)
	dst = AppendString(dst, backend)
	dst = AppendString(dst, provenance)
	return AppendLen(dst, uint64(n))
}

// AppendAnswer encodes one answer.
func AppendAnswer(dst []byte, a Answer) []byte {
	var flags byte
	if a.Fallback {
		flags |= flagFallback
	}
	if a.HasBound {
		flags |= flagBound
		if a.Bound.SegmentMMin != 0 || a.Bound.SegmentMMax != 0 {
			flags |= flagSegment
		}
	}
	dst = append(dst, flags)
	dst = AppendFloat(dst, a.Micros)
	if a.Fallback {
		dst = AppendString(dst, a.FallbackReason)
	}
	if a.HasBound {
		dst = AppendFloat(dst, a.Bound.RelMedian)
		dst = AppendFloat(dst, a.Bound.RelMax)
		dst = AppendLen(dst, uint64(a.Bound.BasisM))
		dst = AppendLen(dst, uint64(a.Bound.Points))
		if flags&flagSegment != 0 {
			dst = AppendLen(dst, uint64(a.Bound.SegmentMMin))
			dst = AppendLen(dst, uint64(a.Bound.SegmentMMax))
		}
	}
	return dst
}

// Response is a decoded response frame.
type Response struct {
	Registry, Backend, Provenance string
	Answers                       []Answer
}

// Append encodes the whole response frame.
func (r *Response) Append(dst []byte) []byte {
	dst = AppendResponseHeader(dst, r.Registry, r.Backend, r.Provenance, len(r.Answers))
	for _, a := range r.Answers {
		dst = AppendAnswer(dst, a)
	}
	return dst
}

// Decode parses a response frame, reusing the receiver's Answers.
func (r *Response) Decode(src []byte) error {
	if len(src) < 2 || src[0] != Magic || src[1] != Version {
		return ErrMagic
	}
	src = src[2:]
	var n int
	var err error
	for _, f := range []*string{&r.Registry, &r.Backend, &r.Provenance} {
		if *f, n, err = ReadString(src); err != nil {
			return fmt.Errorf("wire: response envelope: %w", err)
		}
		src = src[n:]
	}
	count, n, err := readInt(src)
	if err != nil {
		return fmt.Errorf("wire: answer count: %w", err)
	}
	src = src[n:]
	if count > len(src)/9+1 { // an answer is ≥ flags + 8 micros bytes
		return ErrShort
	}
	r.Answers = r.Answers[:0]
	for i := 0; i < count; i++ {
		var a Answer
		if len(src) == 0 {
			return ErrShort
		}
		flags := src[0]
		src = src[1:]
		if a.Micros, n, err = ReadFloat(src); err != nil {
			return fmt.Errorf("wire: answer %d: %w", i, err)
		}
		src = src[n:]
		if flags&flagFallback != 0 {
			a.Fallback = true
			if a.FallbackReason, n, err = ReadString(src); err != nil {
				return fmt.Errorf("wire: answer %d reason: %w", i, err)
			}
			src = src[n:]
		}
		if flags&flagBound != 0 {
			a.HasBound = true
			if a.Bound.RelMedian, n, err = ReadFloat(src); err != nil {
				return fmt.Errorf("wire: answer %d bound: %w", i, err)
			}
			src = src[n:]
			if a.Bound.RelMax, n, err = ReadFloat(src); err != nil {
				return fmt.Errorf("wire: answer %d bound: %w", i, err)
			}
			src = src[n:]
			if a.Bound.BasisM, n, err = readInt(src); err != nil {
				return fmt.Errorf("wire: answer %d bound: %w", i, err)
			}
			src = src[n:]
			if a.Bound.Points, n, err = readInt(src); err != nil {
				return fmt.Errorf("wire: answer %d bound: %w", i, err)
			}
			src = src[n:]
			if flags&flagSegment != 0 {
				if a.Bound.SegmentMMin, n, err = readInt(src); err != nil {
					return fmt.Errorf("wire: answer %d segment: %w", i, err)
				}
				src = src[n:]
				if a.Bound.SegmentMMax, n, err = readInt(src); err != nil {
					return fmt.Errorf("wire: answer %d segment: %w", i, err)
				}
				src = src[n:]
			}
		}
		r.Answers = append(r.Answers, a)
	}
	if len(src) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after the last answer", len(src))
	}
	return nil
}
