package wire

import (
	"bytes"
	"testing"
)

// fuzzSeedRequest is a representative request frame: a shared string
// table, the default-algorithm alias, and a few grid points.
func fuzzSeedRequest() []byte {
	req := Request{
		Registry: "refit-default",
		Table:    []string{"T3D", "broadcast", "", "SP2", "alltoall", "xor"},
		Records: []Record{
			{Mach: 0, Op: 1, Alg: 2, P: 8, M: 1024},
			{Mach: 3, Op: 4, Alg: 5, P: 32, M: 65536},
			{Mach: 0, Op: 1, Alg: 2, P: 4, M: 0},
		},
	}
	return req.Append(nil)
}

// fuzzSeedResponse exercises every answer shape: plain, fallback with a
// reason, bounded, and bounded with a serving segment.
func fuzzSeedResponse() []byte {
	resp := Response{
		Registry: "refit-default", Backend: "calibrated", Provenance: "seed=3",
		Answers: []Answer{
			{Micros: 12.5},
			{Micros: 99000.25, Fallback: true, FallbackReason: "out of calibrated range"},
			{Micros: 7.75, HasBound: true, Bound: Bound{RelMedian: 0.01, RelMax: 0.05, BasisM: 1024, Points: 4}},
			{Micros: 3.5, HasBound: true, Bound: Bound{
				RelMedian: 0.02, RelMax: 0.08, BasisM: 16, Points: 8, SegmentMMin: 1, SegmentMMax: 4096}},
		},
	}
	return resp.Append(nil)
}

// FuzzWireDecode throws arbitrary bytes at both frame decoders. The
// invariants: no panic on any input, and any frame a decoder accepts
// must re-encode and re-decode to the identical canonical bytes (the
// encoder is the codec's single source of truth, so accept → encode
// must be a fixed point).
func FuzzWireDecode(f *testing.F) {
	f.Add(fuzzSeedRequest())
	f.Add(fuzzSeedResponse())
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, Version})
	f.Add([]byte{Magic, Version, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := req.Decode(data); err == nil {
			b1 := req.Append(nil)
			var req2 Request
			if err := req2.Decode(b1); err != nil {
				t.Fatalf("re-encoded request frame does not decode: %v", err)
			}
			if b2 := req2.Append(nil); !bytes.Equal(b1, b2) {
				t.Fatalf("request re-encode is not a fixed point: %d vs %d bytes", len(b1), len(b2))
			}
		}
		var resp Response
		if err := resp.Decode(data); err == nil {
			b1 := resp.Append(nil)
			var resp2 Response
			if err := resp2.Decode(b1); err != nil {
				t.Fatalf("re-encoded response frame does not decode: %v", err)
			}
			if b2 := resp2.Append(nil); !bytes.Equal(b1, b2) {
				t.Fatalf("response re-encode is not a fixed point: %d vs %d bytes", len(b1), len(b2))
			}
		}
	})
}
