package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// instrument attaches a fresh metric registry to s and returns it.
func instrument(s *Server) *Metrics {
	s.Obs = NewMetrics(obs.NewRegistry())
	return s.Obs
}

// get performs a GET against the server's handler.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// promValues parses the single-value lines (counters, gauges, histogram
// _sum/_count/_bucket) of a Prometheus text body into a map.
func promValues(t *testing.T, body string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("non-integer value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint drives a mixed workload through an instrumented
// server and requires /metrics to report totals consistent with it,
// and /debug/vars to expose the same registry as JSON.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	instrument(s)

	// Two served requests: one closed-form in-range scenario carrying a
	// validated bound, and one out-of-range scenario answered by sim.
	for _, body := range []string{
		`{"machine":"T3D","op":"broadcast","p":8,"m":1024}`,
		`{"machine":"T3D","op":"broadcast","p":8,"m":65536}`,
	} {
		if rec := post(t, s, body, ""); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	// Two client errors: a malformed body and an unknown registry.
	for _, body := range []string{
		`{"machine":`,
		`{"registry":"nope","scenarios":[{"machine":"T3D","op":"broadcast","p":8,"m":16}]}`,
	} {
		if rec := post(t, s, body, ""); rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	vals := promValues(t, rec.Body.String())
	for series, want := range map[string]uint64{
		`serve_requests_total{outcome="ok"}`:                 2,
		`serve_requests_total{outcome="client_error"}`:       2,
		`serve_requests_total{outcome="server_error"}`:       0,
		`serve_registry_requests_total{registry="test-cal"}`: 2,
		`serve_scenarios_total{mode="closed_form"}`:          1,
		`serve_scenarios_total{mode="fallback"}`:             1,
		`serve_fallbacks_total{reason="out_of_range"}`:       1,
		`serve_fallbacks_total{reason="uncovered"}`:          0,
		`serve_fallbacks_total{reason="variant_only"}`:       0,
		`serve_bounds_attached_total`:                        1,
		`serve_in_flight`:                                    0,
		`serve_batch_size_count`:                             2,
		`serve_batch_size_sum`:                               2,
	} {
		if got, ok := vals[series]; !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", series, got, ok, want)
		}
	}
	// Every pipeline stage was observed exactly once per served request.
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		series := fmt.Sprintf("serve_stage_duration_ns_count{stage=%q}", st)
		if got := vals[series]; got != 2 {
			t.Errorf("%s = %d, want 2", series, got)
		}
	}
	// The non-trivial stages actually accumulated time.
	for _, st := range []obs.Stage{obs.StageDecode, obs.StageResolve, obs.StageEstimate, obs.StageEncode} {
		series := fmt.Sprintf("serve_stage_duration_ns_sum{stage=%q}", st)
		if vals[series] == 0 {
			t.Errorf("%s = 0, want > 0", series)
		}
	}

	// /debug/vars exposes the same registry under the "obs" key.
	rec = get(t, s, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
	var vars struct {
		Obs map[string]json.RawMessage `json:"obs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v\n%s", err, rec.Body.String())
	}
	if got := string(vars.Obs[`serve_requests_total{outcome="ok"}`]); got != "2" {
		t.Fatalf(`vars serve_requests_total{outcome="ok"} = %s, want 2`, got)
	}
	var hist obs.HistogramSnapshot
	if err := json.Unmarshal(vars.Obs["serve_batch_size"], &hist); err != nil {
		t.Fatalf("decoding batch-size snapshot: %v", err)
	}
	if hist.Count != 2 || hist.Sum != 2 || len(hist.Buckets) == 0 {
		t.Fatalf("batch-size snapshot %+v", hist)
	}

	if req, scn, fb := s.Obs.Totals(); req != 4 || scn != 2 || fb != 1 {
		t.Fatalf("Totals() = (%d, %d, %d), want (4, 2, 1)", req, scn, fb)
	}
}

// TestMetricsRoutesRequireObs: an un-instrumented server must not mount
// the observability surfaces.
func TestMetricsRoutesRequireObs(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/metrics", "/debug/vars"} {
		if rec := get(t, s, path); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s on un-instrumented server: status %d, want 404", path, rec.Code)
		}
	}
}

// TestErrorProvenanceHeaders: 4xx responses carry the same
// X-Estimate-* provenance headers as successes — attributed to the
// entry that would have answered — except when the named registry does
// not exist, where there is no provenance to claim.
func TestErrorProvenanceHeaders(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, body, query string
		status            int
		registry          string // want X-Estimate-Registry; "" = header absent
	}{
		{"success", `{"machine":"T3D","op":"broadcast","p":8,"m":16}`, "", http.StatusOK, "test-cal"},
		{"malformed-body", `{"machine":`, "", http.StatusBadRequest, "test-cal"},
		{"bad-scenario-default", `{"machine":"SP3","op":"broadcast","p":8,"m":16}`, "", http.StatusBadRequest, "test-cal"},
		{"bad-scenario-named", `{"machine":"SP3","op":"broadcast","p":8,"m":16}`, "registry=paper", http.StatusBadRequest, "paper"},
		{"no-scenarios", `{}`, "", http.StatusBadRequest, "test-cal"},
		{"unknown-registry", `{"registry":"nope","scenarios":[{"machine":"T3D","op":"broadcast","p":8,"m":16}]}`, "", http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, tc.body, tc.query)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			if got := rec.Header().Get("X-Estimate-Registry"); got != tc.registry {
				t.Fatalf("X-Estimate-Registry %q, want %q", got, tc.registry)
			}
			backend := rec.Header().Get("X-Estimate-Backend")
			if (backend == "") != (tc.registry == "") {
				t.Fatalf("X-Estimate-Backend %q inconsistent with registry header %q", backend, tc.registry)
			}
		})
	}
}

// TestMetricsConcurrentExact hammers an instrumented server from many
// goroutines and requires exact totals afterwards — the serving-layer
// test the race gate runs with -race.
func TestMetricsConcurrentExact(t *testing.T) {
	s := testServer(t)
	instrument(s)
	s.Workers = 2

	const clients, perClient = 8, 20
	okBody := `[{"machine":"T3D","op":"broadcast","p":8,"m":16},
	            {"machine":"T3D","op":"broadcast","p":8,"m":65536}]`
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if rec := post(t, s, okBody, ""); rec.Code != http.StatusOK {
					panic(fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String()))
				}
			}
			if rec := post(t, s, `{}`, ""); rec.Code != http.StatusBadRequest {
				panic(fmt.Sprintf("error request status %d", rec.Code))
			}
		}()
	}
	wg.Wait()

	vals := promValues(t, get(t, s, "/metrics").Body.String())
	const served = clients * perClient
	for series, want := range map[string]uint64{
		`serve_requests_total{outcome="ok"}`:           served,
		`serve_requests_total{outcome="client_error"}`: clients,
		`serve_scenarios_total{mode="closed_form"}`:    served,
		`serve_scenarios_total{mode="fallback"}`:       served,
		`serve_fallbacks_total{reason="out_of_range"}`: served,
		`serve_bounds_attached_total`:                  served,
		`serve_batch_size_sum`:                         2 * served,
		`serve_batch_size_count`:                       served,
		`serve_in_flight`:                              0,
	} {
		if got := vals[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}
