package measure

import (
	"testing"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestMeasureBarrierT3DNearHardwareCost(t *testing.T) {
	s := MeasureOp(machine.T3D(), machine.OpBarrier, 64, 0, Fast())
	if s.Micros < 2.5 || s.Micros > 6 {
		t.Fatalf("T3D 64-node barrier measured %.2f µs, want ≈3 µs", s.Micros)
	}
}

func TestMeasureBarrierSP2LogGrowth(t *testing.T) {
	cfg := Fast()
	t8 := MeasureOp(machine.SP2(), machine.OpBarrier, 8, 0, cfg).Micros
	t64 := MeasureOp(machine.SP2(), machine.OpBarrier, 64, 0, cfg).Micros
	// Tree barrier: doubling log p (3→6) should roughly double time,
	// nowhere near the 8x of linear growth.
	ratio := t64 / t8
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("SP2 barrier grew %.2fx from p=8 to p=64, want ≈2x (log shape)", ratio)
	}
}

func TestMeasureMonotonicInMessageLength(t *testing.T) {
	cfg := Fast()
	prev := 0.0
	for _, m := range []int{4, 1024, 16384, 65536} {
		v := MeasureOp(machine.SP2(), machine.OpBroadcast, 16, m, cfg).Micros
		if v <= prev {
			t.Fatalf("broadcast time not increasing with m: %v then %v at m=%d", prev, v, m)
		}
		prev = v
	}
}

func TestMeasureAlltoallGrowsWithMachineSize(t *testing.T) {
	cfg := Fast()
	prev := 0.0
	for _, p := range []int{2, 8, 32} {
		v := MeasureOp(machine.Paragon(), machine.OpAlltoall, p, 256, cfg).Micros
		if v <= prev {
			t.Fatalf("alltoall time not increasing with p at p=%d", p)
		}
		prev = v
	}
}

func TestSampleStatsOrdered(t *testing.T) {
	s := MeasureOp(machine.SP2(), machine.OpReduce, 8, 64, Config{Warmup: 1, K: 3, Reps: 4, Seed: 9})
	if s.MinMicros > s.Micros || s.Micros > s.MaxMicros {
		t.Fatalf("min %.2f ≤ mean %.2f ≤ max %.2f violated", s.MinMicros, s.Micros, s.MaxMicros)
	}
	if s.Machine != "SP2" || s.Op != machine.OpReduce || s.P != 8 || s.M != 64 {
		t.Fatal("sample metadata wrong")
	}
}

func TestMeasureDeterministicGivenSeed(t *testing.T) {
	cfg := Fast()
	a := MeasureOp(machine.T3D(), machine.OpScan, 16, 256, cfg).Micros
	b := MeasureOp(machine.T3D(), machine.OpScan, 16, 256, cfg).Micros
	if a != b {
		t.Fatalf("same config measured %v then %v", a, b)
	}
}

func TestStartupLatencyUsesShortMessage(t *testing.T) {
	cfg := Fast()
	t0 := StartupLatency(machine.T3D(), machine.OpBroadcast, 16, cfg)
	full := MeasureOp(machine.T3D(), machine.OpBroadcast, 16, 65536, cfg).Micros
	if t0 >= full {
		t.Fatalf("startup %.1f should be far below the 64KB time %.1f", t0, full)
	}
}

func TestPaperSweepBounds(t *testing.T) {
	t3d := PaperSizes(machine.T3D())
	if t3d[len(t3d)-1] != 64 {
		t.Fatal("T3D sweep must stop at 64 nodes")
	}
	sp2 := PaperSizes(machine.SP2())
	if sp2[len(sp2)-1] != 128 {
		t.Fatal("SP2 sweep must reach 128 nodes")
	}
	lens := PaperLengths()
	if lens[0] != 4 || lens[len(lens)-1] != 65536 {
		t.Fatalf("lengths %v", lens)
	}
}

func TestAllOpsMeasurableOnAllMachines(t *testing.T) {
	cfg := Config{Warmup: 0, K: 1, Reps: 1, Seed: 1}
	for _, m := range machine.All() {
		for _, op := range machine.Ops {
			s := MeasureOp(m, op, 4, 16, cfg)
			if s.Micros <= 0 {
				t.Errorf("%s/%s measured %v µs", m.Name(), op, s.Micros)
			}
		}
	}
}

func TestExtensionOpsMeasurable(t *testing.T) {
	cfg := Config{Warmup: 0, K: 1, Reps: 1, Seed: 1}
	for _, op := range []machine.Op{machine.OpAllgather, machine.OpAllreduce} {
		s := MeasureOp(machine.T3D(), op, 8, 64, cfg)
		if s.Micros <= 0 {
			t.Errorf("%s measured %v", op, s.Micros)
		}
	}
}

func TestSampleRankStatsOrdered(t *testing.T) {
	// §2: the harness collects min, max, and mean over all processes;
	// they must be consistently ordered.
	s := MeasureOp(machine.Paragon(), machine.OpAlltoall, 8, 1024, Fast())
	if s.RankMin > s.RankMean || s.RankMean > s.Micros {
		t.Fatalf("rank stats out of order: min %.1f mean %.1f max %.1f",
			s.RankMin, s.RankMean, s.Micros)
	}
	if s.RankMin <= 0 {
		t.Fatal("rank min should be positive")
	}
}

func TestMeasureOpWithDefaultTableMatchesMeasureOp(t *testing.T) {
	m := machine.T3D()
	a := MeasureOp(m, machine.OpAlltoall, 4, 256, Fast())
	b := MeasureOpWith(m, machine.OpAlltoall, 4, 256, Fast(), mpi.DefaultAlgorithms(m))
	if a != b {
		t.Fatalf("default-table MeasureOpWith diverged: %+v vs %+v", a, b)
	}
	c := MeasureOpWith(m, machine.OpAlltoall, 4, 256, Fast(),
		mpi.DefaultAlgorithms(m).With(machine.OpAlltoall, coll.AlgBruck))
	if c == a {
		t.Fatal("bruck alltoall measured identically to pairwise — algorithm table ignored")
	}
}
