package measure

import (
	"runtime"
	"sync"

	"repro/internal/fit"
	"repro/internal/machine"
)

// SweepParallel is Sweep with the grid points executed on a worker pool.
// Every (p, m) point is an independent simulation with its own seeded
// cluster, so the results are bit-identical to the serial Sweep — only
// wall-clock time changes. workers ≤ 0 uses GOMAXPROCS.
func SweepParallel(mach *machine.Machine, op machine.Op, sizes, lengths []int, cfg Config, workers int) *fit.Dataset {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type point struct{ p, m int }
	type result struct {
		point
		micros float64
	}
	points := make([]point, 0, len(sizes)*len(lengths))
	for _, p := range sizes {
		for _, m := range lengths {
			points = append(points, point{p, m})
		}
	}

	in := make(chan point)
	out := make(chan result, len(points))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pt := range in {
				s := MeasureOp(mach, op, pt.p, pt.m, cfg)
				out <- result{pt, s.Micros}
			}
		}()
	}
	for _, pt := range points {
		in <- pt
	}
	close(in)
	wg.Wait()
	close(out)

	byPoint := make(map[point]float64, len(points))
	for r := range out {
		byPoint[r.point] = r.micros
	}
	// Assemble in deterministic grid order regardless of completion
	// order.
	d := &fit.Dataset{}
	for _, pt := range points {
		d.Add(pt.p, pt.m, byPoint[pt])
	}
	return d
}
