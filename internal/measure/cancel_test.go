package measure

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// TestMeasureOpCtxBackgroundIdentical: a never-cancelling context
// measures byte-identically to the uncontexted path — the probe is
// free when unused.
func TestMeasureOpCtxBackgroundIdentical(t *testing.T) {
	mach := machine.T3D()
	cfg := Config{Warmup: 1, K: 2, Reps: 2, Seed: 5}
	plain := MeasureOp(mach, machine.OpBroadcast, 8, 1024, cfg)
	ctxed, err := MeasureOpCtx(context.Background(), mach, machine.OpBroadcast, 8, 1024, cfg,
		mpi.DefaultAlgorithms(mach))
	if err != nil {
		t.Fatal(err)
	}
	if plain != ctxed {
		t.Fatalf("context path diverged:\n%+v\nvs\n%+v", plain, ctxed)
	}
}

// TestMeasureOpCtxAlreadyExpired: a dead context returns immediately
// with its error, before any simulation runs.
func TestMeasureOpCtxAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mach := machine.SP2()
	_, err := MeasureOpCtx(ctx, mach, machine.OpAlltoall, 16, 65536,
		Config{Warmup: 1, K: 2, Reps: 1, Seed: 1}, mpi.DefaultAlgorithms(mach))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMeasureOpCtxCancelMidRun: cancelling during a large simulation
// aborts it promptly, surfaces the cancellation (wrapped in
// sim.ErrInterrupted), and leaks no rank goroutines.
func TestMeasureOpCtxCancelMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// A big alltoall over many reps: minutes of simulation if never
	// interrupted, so finishing fast proves the cancel took effect.
	mach := machine.Paragon()
	start := time.Now()
	_, err := MeasureOpCtx(ctx, mach, machine.OpAlltoall, 128, 1<<20,
		Config{Warmup: 2, K: 20, Reps: 50, Seed: 1}, mpi.DefaultAlgorithms(mach))
	if err == nil {
		t.Fatal("cancelled measurement returned no error")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %s to bite", elapsed)
	}
	// The unwind must reclaim every rank goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("rank goroutines leaked: %d live, base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
