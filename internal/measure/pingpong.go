package measure

import (
	"fmt"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Point-to-point benchmarks — the kind of measurement the paper says
// earlier MPI studies focused on (§1), included both for completeness
// and to characterize the simulated machines with the Hockney model the
// paper cites.

// PingPong measures the one-way time of an m-byte message between two
// nodes (half the round trip, averaged over cfg.K round trips), in µs.
func PingPong(mach *machine.Machine, m int, cfg Config) float64 {
	var sum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		cl := machine.NewCluster(mach, 2, cfg.Seed+int64(rep))
		var oneWay float64
		err := mpi.RunCluster(cl, func(c *mpi.Comm) {
			buf := make([]byte, m)
			for w := 0; w < cfg.Warmup; w++ {
				bounce(c, buf)
			}
			start := c.Wtime()
			for i := 0; i < cfg.K; i++ {
				bounce(c, buf)
			}
			if c.Rank() == 0 {
				rt := c.Wtime().Sub(start) / sim.Duration(cfg.K)
				oneWay = rt.Micros() / 2
			}
		})
		if err != nil {
			panic(fmt.Sprintf("measure: pingpong %s m=%d: %v", mach.Name(), m, err))
		}
		sum += oneWay
	}
	return sum / float64(cfg.Reps)
}

func bounce(c *mpi.Comm, buf []byte) {
	if c.Rank() == 0 {
		c.Send(1, 0, buf)
		c.Recv(1, 1)
	} else {
		c.Recv(0, 0)
		c.Send(0, 1, buf)
	}
}

// Exchange measures the time of a simultaneous bidirectional exchange of
// m bytes between two nodes (both send, both receive), in µs.
func Exchange(mach *machine.Machine, m int, cfg Config) float64 {
	var sum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		cl := machine.NewCluster(mach, 2, cfg.Seed+int64(rep))
		var elapsed float64
		err := mpi.RunCluster(cl, func(c *mpi.Comm) {
			buf := make([]byte, m)
			peer := 1 - c.Rank()
			doit := func() {
				r := c.Irecv(peer, 0)
				c.Send(peer, 0, buf)
				r.Wait()
			}
			for w := 0; w < cfg.Warmup; w++ {
				doit()
			}
			c.Barrier()
			start := c.Wtime()
			for i := 0; i < cfg.K; i++ {
				doit()
			}
			if c.Rank() == 0 {
				elapsed = (c.Wtime().Sub(start) / sim.Duration(cfg.K)).Micros()
			}
		})
		if err != nil {
			panic(fmt.Sprintf("measure: exchange %s m=%d: %v", mach.Name(), m, err))
		}
		sum += elapsed
	}
	return sum / float64(cfg.Reps)
}

// HockneyFit characterizes a machine's point-to-point path with the
// Hockney model over the paper's message-length sweep.
func HockneyFit(mach *machine.Machine, cfg Config) fit.Hockney {
	lengths := PaperLengths()
	times := make([]float64, len(lengths))
	for i, m := range lengths {
		times[i] = PingPong(mach, m, cfg)
	}
	return fit.FitHockney(lengths, times)
}
