// Package measure implements the paper's benchmark methodology (§2) over
// the simulator:
//
//	barrier synchronization
//	get start-time
//	for (i = 0; i < k; i++)
//	        the-collective-routine-being-measured
//	get end-time
//	local-time = (end-time − start-time)/k
//	communication-time = maximum-reduce(local-time)
//
// with the first (warm-up) iterations discarded, per-rank times read
// from each node's own unsynchronized clock, and the whole program
// executed several times per configuration. The paper focuses on the
// maximal time "because … it reflects the condition that all processes
// involved in the machine have finished the operation"; Sample.Micros
// carries that headline number.
package measure

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/paper"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config controls the measurement procedure.
type Config struct {
	Warmup int   // discarded leading iterations (paper: 2)
	K      int   // timed iterations per execution (paper: 20)
	Reps   int   // independent program executions (paper: 5)
	Seed   int64 // base RNG seed; rep r uses Seed+r
}

// Paper returns the paper-faithful configuration.
func Paper() Config { return Config{Warmup: 2, K: 20, Reps: 5, Seed: 1} }

// Fast returns a cheaper configuration for tests and wide sweeps; the
// simulator's noise model is mild, so fewer iterations lose little.
func Fast() Config { return Config{Warmup: 1, K: 3, Reps: 2, Seed: 1} }

// Sample is the measured time of one (machine, op, p, m) configuration.
type Sample struct {
	Machine string
	Op      machine.Op
	P       int
	M       int
	// Micros is the headline time in µs: the mean over executions of
	// the per-execution max-reduced per-rank averages.
	Micros float64
	// MinMicros/MaxMicros are the extreme per-execution values.
	MinMicros, MaxMicros float64
	// RankMin/RankMean are the paper's other two collected numbers
	// (§2: "the minimal time, the maximal time, and the mean time from
	// all processes are collected"), averaged over executions.
	RankMin, RankMean float64
}

// MeasureOp measures one collective on p nodes of m with msgLen bytes
// per pair, following the paper's procedure, using the machine's vendor
// algorithm table.
func MeasureOp(mach *machine.Machine, op machine.Op, p, msgLen int, cfg Config) Sample {
	return MeasureOpWith(mach, op, p, msgLen, cfg, mpi.DefaultAlgorithms(mach))
}

// MeasureOpWith is MeasureOp with an explicit algorithm table, used by
// the sweep engine to compare collective algorithm variants on the same
// machine. One kernel+cluster serves all executions (reset between
// repetitions), and the benchmark runs with opaque payloads: the
// harness's buffers are all zeros and its data is discarded, so the
// collectives skip payload byte movement while simulating identical
// timings.
func MeasureOpWith(mach *machine.Machine, op machine.Op, p, msgLen int, cfg Config, algs mpi.Algorithms) Sample {
	s, err := MeasureOpCtx(context.Background(), mach, op, p, msgLen, cfg, algs)
	if err != nil {
		// The background context never cancels, and every other failure
		// already panics inside runOnce.
		panic(fmt.Sprintf("measure: %s %s p=%d m=%d: %v", mach.Name(), op, p, msgLen, err))
	}
	return s
}

// MeasureOpCtx is MeasureOpWith under a cancellable context: the
// simulation kernel polls ctx at event-loop drive boundaries
// (sim.Kernel.SetInterrupt) and a cancellation unwinds the run's rank
// processes cleanly — no goroutine leaks — returning ctx's error. A
// context that can never cancel (context.Background()) installs no
// probe and measures byte-identically to MeasureOpWith.
func MeasureOpCtx(ctx context.Context, mach *machine.Machine, op machine.Op, p, msgLen int, cfg Config, algs mpi.Algorithms) (Sample, error) {
	if cfg.K < 1 || cfg.Reps < 1 {
		panic("measure: need K ≥ 1 and Reps ≥ 1")
	}
	if err := ctx.Err(); err != nil {
		return Sample{}, err
	}
	cl := machine.NewCluster(mach, p, cfg.Seed)
	if ctx.Done() != nil {
		cl.Kernel().SetInterrupt(ctx.Err)
	}
	locals := make([]sim.Duration, p)
	reps := make([]float64, 0, cfg.Reps)
	var minSum, meanSum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		if rep > 0 {
			if err := ctx.Err(); err != nil {
				return Sample{}, err
			}
			cl.Reset(cfg.Seed + int64(rep))
		}
		r, err := runOnce(cl, op, msgLen, cfg, algs, locals)
		if err != nil {
			return Sample{}, err
		}
		reps = append(reps, r.Max)
		minSum += r.Min
		meanSum += r.Mean
	}
	agg := stats.Summarize(reps)
	return Sample{
		Machine: mach.Name(), Op: op, P: p, M: msgLen,
		Micros: agg.Mean, MinMicros: agg.Min, MaxMicros: agg.Max,
		RankMin: minSum / float64(cfg.Reps), RankMean: meanSum / float64(cfg.Reps),
	}, nil
}

// runOnce executes one benchmark program on cl and returns the per-rank
// summary (the paper's min/max/mean over all processes) in µs. An
// interrupted drive returns the cancellation cause; any other failure
// (rank panic, deadlock) is a bug in the model and still panics.
func runOnce(cl *machine.Cluster, op machine.Op, msgLen int, cfg Config, algs mpi.Algorithms, locals []sim.Duration) (stats.Summary, error) {
	err := mpi.RunWith(cl, mpi.RunOptions{Algorithms: algs, OpaquePayloads: true}, func(c *mpi.Comm) {
		body := opBody(c, op, msgLen)
		for w := 0; w < cfg.Warmup; w++ {
			body()
		}
		c.Barrier()
		start := c.Wtime()
		for i := 0; i < cfg.K; i++ {
			body()
		}
		end := c.Wtime()
		locals[c.Rank()] = end.Sub(start) / sim.Duration(cfg.K)
	})
	if errors.Is(err, sim.ErrInterrupted) {
		return stats.Summary{}, err
	}
	if err != nil {
		panic(fmt.Sprintf("measure: %s %s p=%d m=%d: %v",
			cl.Machine().Name(), op, cl.Size(), msgLen, err))
	}
	// communication-time = maximum-reduce(local-time). Collected
	// host-side so the measurement itself does not perturb timing; the
	// paper's in-band MPI_Reduce(MPI_MAX) is timing-equivalent because
	// it happens after end-time is read.
	micros := make([]float64, len(locals))
	for i, v := range locals {
		micros[i] = v.Micros()
	}
	return stats.Summarize(micros), nil
}

// opBody returns a closure executing one instance of the collective with
// the per-pair message length the paper's m denotes. Buffers come from
// the shared zero arena (the run is opaque-payload), so a body costs no
// per-rank payload allocation.
func opBody(c *mpi.Comm, op machine.Op, msgLen int) func() {
	p := c.Size()
	mkBlocks := func() [][]byte {
		blocks := make([][]byte, p)
		for i := range blocks {
			blocks[i] = coll.ZeroBytes(msgLen)
		}
		return blocks
	}
	switch op {
	case machine.OpBarrier:
		return func() { c.Barrier() }
	case machine.OpBroadcast:
		var msg []byte
		if c.Rank() == 0 {
			msg = coll.ZeroBytes(msgLen)
		}
		return func() { c.Bcast(0, msg) }
	case machine.OpGather:
		mine := coll.ZeroBytes(msgLen)
		return func() { c.Gather(0, mine) }
	case machine.OpScatter:
		var blocks [][]byte
		if c.Rank() == 0 {
			blocks = mkBlocks()
		}
		return func() { c.Scatter(0, blocks) }
	case machine.OpAlltoall:
		blocks := mkBlocks()
		return func() { c.Alltoall(blocks) }
	case machine.OpReduce:
		mine := coll.ZeroBytes(msgLen)
		return func() { c.Reduce(0, mine, mpi.Sum, mpi.Float) }
	case machine.OpScan:
		mine := coll.ZeroBytes(msgLen)
		return func() { c.Scan(mine, mpi.Sum, mpi.Float) }
	case machine.OpAllgather:
		mine := coll.ZeroBytes(msgLen)
		return func() { c.Allgather(mine) }
	case machine.OpAllreduce:
		mine := coll.ZeroBytes(msgLen)
		return func() { c.Allreduce(mine, mpi.Sum, mpi.Float) }
	}
	panic("measure: unknown operation " + string(op))
}

// StartupLatency estimates T0(p) the paper's way: the timing of the
// shortest message (m = 4 B; the barrier uses none).
func StartupLatency(mach *machine.Machine, op machine.Op, p int, cfg Config) float64 {
	m := 4
	if op == machine.OpBarrier {
		m = 0
	}
	return MeasureOp(mach, op, p, m, cfg).Micros
}

// PaperSizes returns the study's machine-size sweep for mach, capped at
// its allocation (§2: 2, 4, …, 128; 64 on the T3D).
func PaperSizes(mach *machine.Machine) []int {
	return paper.MachineSizes(mach.Name())
}

// PaperLengths returns the study's message-length sweep (§2).
func PaperLengths() []int { return paper.MessageLengths() }
