package measure

import (
	"testing"

	"repro/internal/fit"
	"repro/internal/machine"
)

func TestPingPongGrowsWithSize(t *testing.T) {
	cfg := Fast()
	small := PingPong(machine.T3D(), 4, cfg)
	big := PingPong(machine.T3D(), 65536, cfg)
	if small <= 0 || big <= small {
		t.Fatalf("pingpong: %v then %v", small, big)
	}
}

func TestPingPongLatencyOrdering(t *testing.T) {
	// Zero-payload one-way latency: T3D fastest, Paragon slowest —
	// the §4 software-overhead ordering.
	cfg := Fast()
	t3d := PingPong(machine.T3D(), 4, cfg)
	sp2 := PingPong(machine.SP2(), 4, cfg)
	par := PingPong(machine.Paragon(), 4, cfg)
	if !(t3d < sp2 && t3d < par) {
		t.Fatalf("latency ordering broken: T3D %.1f, SP2 %.1f, Paragon %.1f", t3d, sp2, par)
	}
}

func TestExchangeAtLeastOneWay(t *testing.T) {
	cfg := Fast()
	ex := Exchange(machine.SP2(), 16384, cfg)
	ow := PingPong(machine.SP2(), 16384, cfg)
	if ex <= 0 {
		t.Fatal("exchange nonpositive")
	}
	// A full bidirectional exchange can't beat half a ping-pong.
	if ex < ow/2 {
		t.Fatalf("exchange %.1f faster than half a one-way %.1f", ex, ow)
	}
}

func TestHockneyFitReasonable(t *testing.T) {
	cfg := Fast()
	h := HockneyFit(machine.T3D(), cfg)
	if h.T0Micros <= 0 || h.T0Micros > 200 {
		t.Fatalf("T3D t0 = %.1f µs", h.T0Micros)
	}
	// Effective p2p bandwidth is the software-limited ≈27 MB/s, far
	// below the 300 MB/s link rate — the gap the paper attributes to
	// messaging overhead.
	if h.RInfMBs < 10 || h.RInfMBs > 80 {
		t.Fatalf("T3D r∞ = %.1f MB/s", h.RInfMBs)
	}
	if h.NHalf() <= 0 {
		t.Fatal("n½ must be positive")
	}
}

func TestHockneyModelAlgebra(t *testing.T) {
	h := fit.Hockney{T0Micros: 50, RInfMBs: 40}
	if got := h.Eval(4000); got != 150 {
		t.Fatalf("Eval = %v", got)
	}
	if got := h.NHalf(); got != 2000 {
		t.Fatalf("n½ = %v", got)
	}
	// At n½ the achieved bandwidth is half of r∞.
	if bw := h.Bandwidth(2000); bw < 19.9 || bw > 20.1 {
		t.Fatalf("bandwidth at n½ = %v, want 20", bw)
	}
}

func TestFitHockneyRecoversSynthetic(t *testing.T) {
	want := fit.Hockney{T0Micros: 33, RInfMBs: 27}
	lengths := []int{4, 64, 1024, 16384, 65536}
	times := make([]float64, len(lengths))
	for i, m := range lengths {
		times[i] = want.Eval(m)
	}
	got := fit.FitHockney(lengths, times)
	if d := got.T0Micros - want.T0Micros; d > 0.01 || d < -0.01 {
		t.Fatalf("t0 = %v", got.T0Micros)
	}
	if d := got.RInfMBs - want.RInfMBs; d > 0.01 || d < -0.01 {
		t.Fatalf("r∞ = %v", got.RInfMBs)
	}
}
