package fit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLeastSquaresExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	a, b, sse := LeastSquares(xs, ys)
	if !almost(a, 2, 1e-12) || !almost(b, 3, 1e-12) || sse > 1e-18 {
		t.Fatalf("a=%v b=%v sse=%v", a, b, sse)
	}
}

func TestLeastSquaresConstant(t *testing.T) {
	a, b, _ := LeastSquares([]float64{2, 2, 2}, []float64{7, 9, 8})
	if a != 0 || !almost(b, 8, 1e-12) {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestThroughOriginExact(t *testing.T) {
	a, sse := ThroughOrigin([]float64{1, 2, 4}, []float64{3, 6, 12})
	if !almost(a, 3, 1e-12) || sse > 1e-18 {
		t.Fatalf("a=%v sse=%v", a, sse)
	}
}

func TestPropertyLeastSquaresRecoversNoiselessLine(t *testing.T) {
	prop := func(a8, b8 int8) bool {
		a, b := float64(a8)/4, float64(b8)/4
		xs := []float64{1, 2, 3, 5, 8, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		ga, gb, _ := LeastSquares(xs, ys)
		return almost(ga, a, 1e-9) && almost(gb, b, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitFormSelectsLinear(t *testing.T) {
	ps := []int{2, 4, 8, 16, 32, 64}
	ys := make([]float64, len(ps))
	for i, p := range ps {
		ys[i] = 24*float64(p) + 90
	}
	f := FitForm(ps, ys, Log) // hint should not override clear data
	if f.Kind != Linear || !almost(f.A, 24, 1e-9) || !almost(f.B, 90, 1e-6) {
		t.Fatalf("got %v", f)
	}
}

func TestFitFormSelectsLog(t *testing.T) {
	ps := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ps))
	for i, p := range ps {
		ys[i] = 55*math.Log2(float64(p)) + 30
	}
	f := FitForm(ps, ys, Linear)
	if f.Kind != Log || !almost(f.A, 55, 1e-9) || !almost(f.B, 30, 1e-6) {
		t.Fatalf("got %v", f)
	}
}

func TestFitFormNoisyStillPicksRightShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ps))
	for i, p := range ps {
		ys[i] = (26*float64(p) + 8.6) * (1 + 0.05*rng.Float64())
	}
	if f := FitForm(ps, ys, Log); f.Kind != Linear {
		t.Fatalf("noisy linear data fitted as %v", f)
	}
}

func TestFormEvalAndString(t *testing.T) {
	f := Form{Kind: Linear, A: 24, B: 90}
	if f.Eval(64) != 24*64+90 {
		t.Fatal("linear eval")
	}
	g := Form{Kind: Log, A: 55, B: -30}
	if !almost(g.Eval(64), 55*6-30, 1e-12) {
		t.Fatal("log eval")
	}
	if got := g.String(); !strings.Contains(got, "logp") || !strings.Contains(got, "- 30") {
		t.Fatalf("string: %q", got)
	}
}

func TestExpressionEvalMatchesPaperExample(t *testing.T) {
	// Paper §8: T3D total exchange (26p + 8.6) + (0.038p − 0.12)m at
	// m=512, p=64 is 2.86 ms.
	e := Expression{
		Startup: Form{Kind: Linear, A: 26, B: 8.6},
		PerByte: Form{Kind: Linear, A: 0.038, B: -0.12},
	}
	got := e.Eval(512, 64)
	if !almost(got, 2856.3, 0.5) {
		t.Fatalf("T(512,64) = %v µs, want ≈2856 (paper: 2.86 ms)", got)
	}
}

func TestExpressionString(t *testing.T) {
	e := Expression{
		Startup: Form{Kind: Linear, A: 24, B: 90},
		PerByte: Form{Kind: Linear, A: 0.082, B: -0.29},
	}
	s := e.String()
	if !strings.Contains(s, "24p + 90") || !strings.Contains(s, "0.082p - 0.29") {
		t.Fatalf("rendered %q", s)
	}
}

func TestStartupOnly(t *testing.T) {
	e := Expression{Startup: Form{Kind: Log, A: 123, B: -90}}
	if !e.StartupOnly() {
		t.Fatal("barrier expression should be startup-only")
	}
}

func synthDataset(e Expression, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for _, p := range []int{2, 4, 8, 16, 32, 64, 128} {
		for _, m := range []int{4, 64, 1024, 4096, 16384, 65536} {
			v := e.Eval(m, p) * (1 + noise*rng.Float64())
			d.Add(p, m, v)
		}
	}
	return d
}

func TestTwoStageRecoversLinearExpression(t *testing.T) {
	want := Expression{
		Startup: Form{Kind: Linear, A: 26, B: 8.6},
		PerByte: Form{Kind: Linear, A: 0.038, B: 0.12},
	}
	got := TwoStage(synthDataset(want, 0, 1), Linear, Linear)
	if got.Startup.Kind != Linear || got.PerByte.Kind != Linear {
		t.Fatalf("wrong shapes: %v", got)
	}
	// T0 was estimated from the m=4 point, so its B absorbs ≈4·s(p);
	// allow that bias.
	if !almost(got.Startup.A, 26, 0.2) || !almost(got.PerByte.A, 0.038, 1e-3) {
		t.Fatalf("coefficients drifted: %v", got)
	}
}

func TestTwoStageRecoversLogExpression(t *testing.T) {
	want := Expression{
		Startup: Form{Kind: Log, A: 55, B: 30},
		PerByte: Form{Kind: Log, A: 0.014, B: 0.053},
	}
	got := TwoStage(synthDataset(want, 0, 1), Log, Log)
	if got.Startup.Kind != Log || got.PerByte.Kind != Log {
		t.Fatalf("wrong shapes: %+v", got)
	}
	if !almost(got.Startup.A, 55, 0.2) || !almost(got.PerByte.A, 0.014, 1e-3) {
		t.Fatalf("coefficients drifted: %+v", got)
	}
}

func TestTwoStageToleratesNoise(t *testing.T) {
	want := Expression{
		Startup: Form{Kind: Linear, A: 97, B: 82},
		PerByte: Form{Kind: Linear, A: 0.073, B: 0.10},
	}
	got := TwoStage(synthDataset(want, 0.05, 7), Linear, Linear)
	if got.Startup.Kind != Linear {
		t.Fatalf("noise flipped the startup shape: %+v", got)
	}
	if math.Abs(got.Startup.A-97)/97 > 0.15 || math.Abs(got.PerByte.A-0.073)/0.073 > 0.15 {
		t.Fatalf("noisy recovery off by >15%%: %+v", got)
	}
}

func TestTwoStageBarrierStartupOnly(t *testing.T) {
	d := &Dataset{}
	for _, p := range []int{2, 4, 8, 16, 32} {
		d.Add(p, 0, 123*math.Log2(float64(p))-90)
	}
	e := TwoStage(d, Log, Log)
	if !e.StartupOnly() {
		t.Fatalf("barrier fit has a per-byte part: %+v", e)
	}
	if !almost(e.Startup.A, 123, 1e-6) {
		t.Fatalf("startup = %+v", e.Startup)
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := &Dataset{}
	d.Add(4, 16, 100)
	d.Add(2, 64, 50)
	d.Add(4, 64, 120)
	if s := d.Sizes(); len(s) != 2 || s[0] != 2 || s[1] != 4 {
		t.Fatalf("sizes %v", s)
	}
	if l := d.Lengths(); len(l) != 2 || l[0] != 16 || l[1] != 64 {
		t.Fatalf("lengths %v", l)
	}
	if v, ok := d.At(4, 64); !ok || v != 120 {
		t.Fatalf("At = %v %v", v, ok)
	}
	if _, ok := d.At(8, 64); ok {
		t.Fatal("phantom point")
	}
}

func TestRSquared(t *testing.T) {
	ps := []int{2, 4, 8, 16}
	perfect := make([]float64, len(ps))
	f := Form{Kind: Linear, A: 3, B: 1}
	for i, p := range ps {
		perfect[i] = f.Eval(p)
	}
	if r := RSquared(f, ps, perfect); !almost(r, 1, 1e-12) {
		t.Fatalf("perfect fit r² = %v", r)
	}
	bad := Form{Kind: Linear, A: 0, B: 0}
	if r := RSquared(bad, ps, perfect); r > 0.5 {
		t.Fatalf("bad fit r² = %v", r)
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	d := &Dataset{}
	d.Add(2, 4, 35.25)
	d.Add(64, 65536, 153191.8)
	d.Add(8, 0, 3.07)
	var b strings.Builder
	if err := d.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 3 {
		t.Fatalf("%d points", len(got.Points))
	}
	for i := range d.Points {
		if d.Points[i] != got.Points[i] {
			t.Fatalf("point %d: %+v vs %+v", i, d.Points[i], got.Points[i])
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("p,m,micros\n1,2\n")); err == nil {
		t.Fatal("expected field-count error")
	}
	if _, err := ReadCSV(strings.NewReader("x,2,3\n")); err == nil {
		t.Fatal("expected parse error")
	}
}
