package fit

import (
	"math"
	"strings"
	"testing"
)

// twoRegime builds a protocol-switch dataset: eager handling below the
// switch length (shallow slope), rendezvous-style handoff above it
// (steep slope plus a fixed per-message surcharge) — the shape the
// affine model mispredicts worst in the middle.
func twoRegime(switchAt int) *Dataset {
	d := &Dataset{}
	for _, p := range []int{8, 32} {
		for _, m := range []int{4, 16, 64, 256, 1024, 4096, 16384, 65536} {
			startup := 20*float64(p) + 50
			if m <= switchAt {
				d.Add(p, m, startup+0.01*float64(p)*float64(m))
			} else {
				d.Add(p, m, startup+30*float64(p)+0.08*float64(p)*float64(m))
			}
		}
	}
	return d
}

func TestPiecewiseDegradesToAffineOnAffineData(t *testing.T) {
	want := Expression{
		Startup: Form{Kind: Linear, A: 26, B: 8.6},
		PerByte: Form{Kind: Linear, A: 0.038, B: 0.12},
	}
	got := Piecewise(synthDataset(want, 0, 1), Linear, Linear, PiecewiseOptions{})
	if got.IsPiecewise() {
		t.Fatalf("affine data produced %d segments: %v", len(got.Segments), got)
	}
	base := TwoStage(synthDataset(want, 0, 1), Linear, Linear)
	if got.String() != base.String() {
		t.Fatalf("K=1 piecewise %v differs from TwoStage %v", got, base)
	}
}

func TestPiecewiseRecoversProtocolSwitch(t *testing.T) {
	d := twoRegime(1024)
	e := Piecewise(d, Linear, Linear, PiecewiseOptions{})
	if !e.IsPiecewise() {
		t.Fatalf("two-regime data fitted as plain affine: %v", e)
	}
	// The affine model must be visibly wrong somewhere mid-range...
	base := TwoStage(d, Linear, Linear)
	_, baseWorst := gridError(d, base)
	if baseWorst < 0.10 {
		t.Fatalf("test data too easy: affine worst error %.3f", baseWorst)
	}
	// ...and the piecewise fit must hold every grid cell tightly.
	mean, worst := gridError(d, e)
	if mean > 0.01 || worst > 0.05 {
		t.Fatalf("piecewise grid error mean %.4f worst %.4f", mean, worst)
	}
	// A segment boundary must land on the protocol switch: some segment
	// ends at 1024 or starts at 1024.
	found := false
	for _, seg := range e.Segments {
		if seg.MMin == 1024 || seg.MMax == 1024 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no segment boundary at the m=1024 switch: %v", e.Segments)
	}
	// Segments tile the calibrated range contiguously with shared
	// boundary columns.
	for i := 1; i < len(e.Segments); i++ {
		if e.Segments[i].MMin != e.Segments[i-1].MMax {
			t.Fatalf("segments %d and %d do not share a boundary: %v", i-1, i, e.Segments)
		}
	}
}

func TestPiecewiseRespectsMaxSegments(t *testing.T) {
	d := twoRegime(256)
	e := Piecewise(d, Linear, Linear, PiecewiseOptions{MaxSegments: 2})
	if len(e.Segments) > 2 {
		t.Fatalf("MaxSegments=2 produced %d segments", len(e.Segments))
	}
}

func TestPiecewiseFewColumnsOrBarrierStayAffine(t *testing.T) {
	d := &Dataset{}
	for _, p := range []int{8, 32} {
		for _, m := range []int{4, 1024, 65536} {
			d.Add(p, m, float64(100*p)+0.05*float64(m))
		}
	}
	if e := Piecewise(d, Linear, Linear, PiecewiseOptions{}); e.IsPiecewise() {
		t.Fatalf("3-column dataset fitted piecewise: %v", e)
	}
	b := &Dataset{}
	for _, p := range []int{2, 4, 8, 16, 32} {
		b.Add(p, 0, 123*math.Log2(float64(p))-90)
	}
	if e := Piecewise(b, Log, Log, PiecewiseOptions{}); e.IsPiecewise() || !e.StartupOnly() {
		t.Fatalf("barrier dataset fitted piecewise: %v", e)
	}
}

func TestSegmentDispatchAndClamp(t *testing.T) {
	e := Expression{
		Startup: Form{Kind: Linear, A: 1, B: 10},
		PerByte: Form{Kind: Linear, A: 0, B: 0.05},
		Segments: []Segment{
			{MMin: 4, MMax: 1024,
				Startup: Form{Kind: Linear, A: 1, B: 10}, PerByte: Form{Kind: Linear, A: 0, B: 0.01}},
			{MMin: 1024, MMax: 16384,
				Startup: Form{Kind: Linear, A: 1, B: 500}, PerByte: Form{Kind: Linear, A: 0, B: -0.002}},
			{MMin: 16384, MMax: 65536,
				Startup: Form{Kind: Linear, A: 1, B: 20}, PerByte: Form{Kind: Linear, A: 0, B: 0.08}},
		},
	}
	p := 8
	// Below the first segment and at its boundary: first segment.
	if got, want := e.Predict(0, p), 18.0; !almost(got, want, 1e-9) {
		t.Fatalf("m=0: %v, want %v", got, want)
	}
	if got, want := e.Predict(1024, p), 18+0.01*1024; !almost(got, want, 1e-9) {
		t.Fatalf("m=1024 dispatches to segment 0: %v, want %v", got, want)
	}
	// Interior negative slope is data, not extrapolation — no clamp.
	if got, want := e.Predict(4096, p), 508-0.002*4096; !almost(got, want, 1e-9) {
		t.Fatalf("m=4096 keeps the negative interior slope: %v, want %v", got, want)
	}
	// Beyond the last segment: extrapolate on the last piece.
	if got, want := e.Predict(1<<20, p), 28+0.08*float64(1<<20); !almost(got, want, 1e-9) {
		t.Fatalf("m=1M extrapolates the last segment: %v, want %v", got, want)
	}
	// A negative last-segment slope clamps beyond its fitted range.
	neg := Expression{Segments: []Segment{
		{MMin: 4, MMax: 1024,
			Startup: Form{Kind: Linear, A: 0, B: 100}, PerByte: Form{Kind: Linear, A: 0, B: -0.01}},
	}}
	if got, want := neg.Predict(1<<20, p), 100.0; !almost(got, want, 1e-9) {
		t.Fatalf("negative slope beyond the range must clamp: %v, want %v", got, want)
	}
	if got, want := neg.Predict(1024, p), 100-0.01*1024; !almost(got, want, 1e-9) {
		t.Fatalf("negative slope inside the range must stand: %v, want %v", got, want)
	}
	// EvalPerByte reports the asymptotic (last-segment) rate.
	if got := e.EvalPerByte(p); !almost(got, 0.08, 1e-12) {
		t.Fatalf("EvalPerByte = %v, want the last segment's 0.08", got)
	}
	// String renders every segment with its range.
	s := e.String()
	for _, want := range []string{"m∈[4,1024]", "m∈[1024,16384]", "m∈[16384,65536]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestStableMatchesAdaptiveProbeSemantics(t *testing.T) {
	a := Expression{Startup: Form{Kind: Linear, A: 100, B: 5}, PerByte: Form{Kind: Linear, A: 0.1, B: 0}}
	b := a
	if !Stable(a, b, 0.02) {
		t.Fatal("identical fits must be stable")
	}
	b.Startup.A = 103 // 3% move
	if Stable(a, b, 0.02) {
		t.Fatal("3% coefficient move must not be stable at tol=2%")
	}
	if !Stable(a, b, 0.05) {
		t.Fatal("3% coefficient move must be stable at tol=5%")
	}
	b = a
	b.PerByte.Kind = Log
	if Stable(a, b, 0.5) {
		t.Fatal("a shape flip is never stable")
	}
	// Near-zero coefficients get the absolute slack.
	c := Expression{PerByte: Form{A: 1e-12}}
	d := Expression{PerByte: Form{A: -1e-12}}
	if !Stable(c, d, 0.02) {
		t.Fatal("near-zero coefficients must not block stability")
	}
}
