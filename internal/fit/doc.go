// Package fit derives closed-form timing expressions from measured
// collective-communication data — the reproduction of the paper's §3
// fitting procedure, extended with a protocol-aware piecewise family.
//
// # The affine model (paper Table 3)
//
// The paper models every collective as
//
//	T(m, p) = T0(p) + s(p)·m
//
// where m is the message length in bytes, p the machine size, T0 the
// startup latency, and s the per-byte rate. Both terms take one of two
// p-shapes: a·p + b (linear collectives: gather, scatter, total
// exchange) or a·log2(p) + b (tree collectives: barrier, broadcast,
// reduce, scan). TwoStage reproduces the paper's procedure: T0(p) is
// the shortest-message timing per size, the remainder is fitted
// through the origin against m, and each term's p-shape is chosen by
// least-squares residual (FitForm), with the paper's published shape as
// the tie-break hint.
//
// # The piecewise family
//
// The affine model is weakest at mid lengths (m ≈ 256–4096 B), where
// real message-passing layers switch protocols — eager handoff for
// short messages, rendezvous-style for long ones — and fixed
// per-message overheads bend the curve. Piecewise fits K ≥ 1 affine
// segments over the measured (log-spaced) length columns instead:
// breakpoint candidates come from the consecutive-refit-delta probe
// (refit the affine model column by column; a column that moves the
// coefficients beyond tolerance marks a regime boundary — the same
// probe the adaptive calibration planner uses to stop sweeps, exposed
// here as Stable), and K plus the breakpoint placement are selected by
// greedy forward selection on the fit's relative error cross-checked
// against the measured grid. K = 1 degrades to TwoStage exactly, so
// triples the affine model already fits never pay for segments.
//
// A piecewise Expression carries its pieces in Segments — adjacent
// segments share their boundary column, tiling the calibrated range —
// while Startup/PerByte keep the global affine view for legacy
// consumers (startup latency, asymptotic bandwidth). Eval and Predict
// dispatch to the segment covering m; affine expressions serialize
// byte-identically to the pre-piecewise format (Segments is omitted
// when empty).
//
// Datasets persist as "p,m,micros" CSV (WriteCSV/ReadCSV); fitted
// expressions persist as JSON through the sweep cache's expression
// store (see internal/sweep).
package fit
