package fit

// Hockney is the classic point-to-point communication model the paper
// cites ([13]): t(m) = t0 + m/r∞, characterized by the startup time t0,
// the asymptotic bandwidth r∞, and the half-performance message length
// n½ = t0·r∞ at which achieved bandwidth reaches half of r∞. The paper's
// §9 argues this model suits point-to-point but not collectives — the
// aggregated bandwidth R∞(p) generalizes it; we implement both so the
// comparison is reproducible.
type Hockney struct {
	T0Micros float64 // startup time in µs
	RInfMBs  float64 // asymptotic bandwidth in MB/s
}

// FitHockney fits t(m) = t0 + m/r∞ to point-to-point timings: lengths in
// bytes, times in µs.
func FitHockney(lengths []int, micros []float64) Hockney {
	if len(lengths) != len(micros) || len(lengths) < 2 {
		panic("fit: hockney needs ≥ 2 (m, t) points")
	}
	xs := make([]float64, len(lengths))
	for i, m := range lengths {
		xs[i] = float64(m)
	}
	slope, t0, _ := LeastSquares(xs, micros)
	h := Hockney{T0Micros: t0}
	if slope > 0 {
		h.RInfMBs = 1 / slope // µs/byte → MB/s
	}
	return h
}

// Eval returns the predicted one-way time in µs for m bytes.
func (h Hockney) Eval(m int) float64 {
	if h.RInfMBs <= 0 {
		return h.T0Micros
	}
	return h.T0Micros + float64(m)/h.RInfMBs
}

// NHalf returns the half-performance message length n½ in bytes.
func (h Hockney) NHalf() float64 { return h.T0Micros * h.RInfMBs }

// Bandwidth returns the achieved bandwidth in MB/s for m bytes.
func (h Hockney) Bandwidth(m int) float64 {
	t := h.Eval(m)
	if t <= 0 {
		return 0
	}
	return float64(m) / t
}
