package fit

import "math"

// LeastSquares fits y = a·x + b by ordinary least squares and returns
// the coefficients and the sum of squared residuals. With fewer than two
// distinct x values the slope is zero and b is the mean.
func LeastSquares(xs, ys []float64) (a, b, sse float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("fit: mismatched or empty series")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		b = sy / n
	} else {
		a = (n*sxy - sx*sy) / den
		b = (sy - a*sx) / n
	}
	for i := range xs {
		r := ys[i] - (a*xs[i] + b)
		sse += r * r
	}
	return a, b, sse
}

// ThroughOrigin fits y = a·x with zero intercept.
func ThroughOrigin(xs, ys []float64) (a, sse float64) {
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx != 0 {
		a = sxy / sxx
	}
	for i := range xs {
		r := ys[i] - a*xs[i]
		sse += r * r
	}
	return a, sse
}

// FitForm fits ys over machine sizes ps with both p-dependence shapes
// and returns the one with the smaller relative residual. Ties (and the
// degenerate single-point case) prefer the hinted kind.
func FitForm(ps []int, ys []float64, hint FormKind) Form {
	lin := make([]float64, len(ps))
	lg := make([]float64, len(ps))
	for i, p := range ps {
		lin[i] = float64(p)
		lg[i] = math.Log2(float64(p))
	}
	la, lb, lsse := LeastSquares(lin, ys)
	ga, gb, gsse := LeastSquares(lg, ys)
	linForm := Form{Kind: Linear, A: la, B: lb}
	logForm := Form{Kind: Log, A: ga, B: gb}
	switch {
	case lsse < gsse:
		return linForm
	case gsse < lsse:
		return logForm
	case hint == Log:
		return logForm
	default:
		return linForm
	}
}

// RSquared returns the coefficient of determination of form f over the
// observations (ps, ys).
func RSquared(f Form, ps []int, ys []float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var sse, sst float64
	for i, p := range ps {
		r := ys[i] - f.Eval(p)
		sse += r * r
		d := ys[i] - mean
		sst += d * d
	}
	if sst == 0 {
		return 1
	}
	return 1 - sse/sst
}
