package fit

import "sort"

// Point is one measured collective timing: machine size P, message
// length M bytes, elapsed time Micros µs.
type Point struct {
	P      int
	M      int
	Micros float64
}

// Dataset is a collection of measured points for one (machine,
// operation) pair.
type Dataset struct {
	Points []Point
}

// Add appends a measurement.
func (d *Dataset) Add(p, m int, micros float64) {
	d.Points = append(d.Points, Point{P: p, M: m, Micros: micros})
}

// Sizes returns the sorted distinct machine sizes present.
func (d *Dataset) Sizes() []int {
	seen := map[int]bool{}
	for _, pt := range d.Points {
		seen[pt.P] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Lengths returns the sorted distinct message lengths present.
func (d *Dataset) Lengths() []int {
	seen := map[int]bool{}
	for _, pt := range d.Points {
		seen[pt.M] = true
	}
	out := make([]int, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// At returns the measured time for (p, m) and whether it exists.
func (d *Dataset) At(p, m int) (float64, bool) {
	for _, pt := range d.Points {
		if pt.P == p && pt.M == m {
			return pt.Micros, true
		}
	}
	return 0, false
}

// TwoStage fits a Table 3 expression from a dataset using the paper's
// procedure (§3, "Startup latency … approximated by measuring the
// collective messaging time for a zero-byte or a short message"):
//
//  1. T0(p) := T(m_min, p), the shortest-message timing per size.
//  2. D(m, p) := T(m, p) − T0(p); per size, fit the through-origin slope
//     s(p) of D against (m − m_min).
//  3. Fit T0(p) and s(p) against both p-shapes; keep the better fit,
//     using startupHint/perByteHint to break ties.
//
// Datasets with a single message length (barrier) produce a
// startup-only expression.
func TwoStage(d *Dataset, startupHint, perByteHint FormKind) Expression {
	sizes := d.Sizes()
	lengths := d.Lengths()
	if len(sizes) == 0 {
		panic("fit: empty dataset")
	}
	mMin := lengths[0]

	t0 := make([]float64, 0, len(sizes))
	slope := make([]float64, 0, len(sizes))
	for _, p := range sizes {
		base, ok := d.At(p, mMin)
		if !ok {
			panic("fit: dataset missing shortest-message point")
		}
		t0 = append(t0, base)
		var xs, ys []float64
		for _, m := range lengths {
			if m == mMin {
				continue
			}
			if v, ok := d.At(p, m); ok {
				xs = append(xs, float64(m-mMin))
				ys = append(ys, v-base)
			}
		}
		if len(xs) > 0 {
			a, _ := ThroughOrigin(xs, ys)
			slope = append(slope, a)
		}
	}

	expr := Expression{Startup: FitForm(sizes, t0, startupHint)}
	if len(slope) == len(sizes) {
		expr.PerByte = FitForm(sizes, slope, perByteHint)
	}
	return expr
}
