// Package fit derives the paper's Table 3 closed-form timing
// expressions from measured data. The model (paper §3) is
//
//	T(m, p) = T0(p) + D(m, p),   D(m, p) = s(p)·m
//
// where the startup latency T0(p) and the per-byte rate s(p) each take
// one of two shapes: a·p + b (linear collectives: gather, scatter, total
// exchange) or a·log2(p) + b (tree collectives: barrier, broadcast,
// reduce, scan). Following the paper's procedure, T0(p) is estimated
// from the shortest-message timing, D is the remainder, and the shape is
// chosen by least-squares residual.
package fit

import (
	"fmt"
	"math"
)

// FormKind is the p-dependence shape of one expression term.
type FormKind int

// The two shapes of Table 3.
const (
	Linear FormKind = iota // a·p + b
	Log                    // a·log2(p) + b
)

// String returns "p" or "logp".
func (k FormKind) String() string {
	if k == Log {
		return "logp"
	}
	return "p"
}

// Form is one fitted term: A·x(p) + B where x is p or log2(p).
type Form struct {
	Kind FormKind
	A, B float64
}

// Eval evaluates the form at machine size p.
func (f Form) Eval(p int) float64 {
	x := float64(p)
	if f.Kind == Log {
		x = math.Log2(float64(p))
	}
	return f.A*x + f.B
}

// String renders the term the way Table 3 does, e.g. "24p + 90" or
// "55logp + 30".
func (f Form) String() string {
	sign := "+"
	b := f.B
	if b < 0 {
		sign = "-"
		b = -b
	}
	return fmt.Sprintf("%s%s %s %s", trim(f.A), f.Kind, sign, trim(b))
}

func trim(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// Expression is a full Table 3 entry: T(m,p) = Startup(p) + PerByte(p)·m
// with T in µs, m in bytes.
type Expression struct {
	Startup Form // µs
	PerByte Form // µs per byte
}

// Eval returns the predicted time in µs for message length m bytes on p
// nodes.
func (e Expression) Eval(m, p int) float64 {
	return e.Startup.Eval(p) + e.PerByte.Eval(p)*float64(m)
}

// EvalStartup returns T0(p) in µs.
func (e Expression) EvalStartup(p int) float64 { return e.Startup.Eval(p) }

// EvalPerByte returns s(p) in µs/byte.
func (e Expression) EvalPerByte(p int) float64 { return e.PerByte.Eval(p) }

// String renders the expression in the paper's notation, e.g.
// "(24p + 90) + (0.082p - 0.29)m".
func (e Expression) String() string {
	return fmt.Sprintf("(%s) + (%s)m", e.Startup, e.PerByte)
}

// StartupOnly reports whether the expression has no per-byte part
// (barrier rows of Table 3).
func (e Expression) StartupOnly() bool { return e.PerByte.A == 0 && e.PerByte.B == 0 }
