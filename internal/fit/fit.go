package fit

import (
	"fmt"
	"math"
	"strings"
)

// FormKind is the p-dependence shape of one expression term.
type FormKind int

// The two shapes of Table 3.
const (
	Linear FormKind = iota // a·p + b
	Log                    // a·log2(p) + b
)

// String returns "p" or "logp".
func (k FormKind) String() string {
	if k == Log {
		return "logp"
	}
	return "p"
}

// Form is one fitted term: A·x(p) + B where x is p or log2(p).
type Form struct {
	Kind FormKind
	A, B float64
}

// Eval evaluates the form at machine size p.
func (f Form) Eval(p int) float64 {
	x := float64(p)
	if f.Kind == Log {
		x = math.Log2(float64(p))
	}
	return f.A*x + f.B
}

// String renders the term the way Table 3 does, e.g. "24p + 90" or
// "55logp + 30".
func (f Form) String() string {
	sign := "+"
	b := f.B
	if b < 0 {
		sign = "-"
		b = -b
	}
	return fmt.Sprintf("%s%s %s %s", trim(f.A), f.Kind, sign, trim(b))
}

func trim(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// Expression is a full Table 3 entry: T(m,p) = Startup(p) + PerByte(p)·m
// with T in µs, m in bytes. An expression may additionally carry
// protocol-aware Segments (see Piecewise); Startup and PerByte then hold
// the global affine fit — the single-segment view legacy consumers see —
// while Eval dispatches to the segment covering m.
type Expression struct {
	Startup Form // µs
	PerByte Form // µs per byte
	// Segments, when non-empty, refine the affine model into K
	// contiguous pieces over message length, sorted by MMin with shared
	// boundary columns. Plain affine expressions leave it nil, so their
	// JSON encoding (and every pre-piecewise golden) is unchanged.
	Segments []Segment `json:"segments,omitempty"`
}

// Eval returns the predicted time in µs for message length m bytes on p
// nodes, dispatching to the covering segment for piecewise expressions.
func (e Expression) Eval(m, p int) float64 {
	if len(e.Segments) > 0 {
		seg := &e.Segments[e.segmentIdx(m)]
		return seg.Startup.Eval(p) + seg.PerByte.Eval(p)*float64(m)
	}
	return e.Startup.Eval(p) + e.PerByte.Eval(p)*float64(m)
}

// Predict is Eval with the serving clamp: a negative fitted per-byte
// rate is treated as zero when the model extrapolates (it would go
// non-physical at large m), matching model.Predictor.Time and the
// calibrated backend. Within a piecewise segment's fitted range the
// raw rate stands — a genuinely decreasing stretch (e.g. a congestion
// artifact between two measured lengths) is data, not extrapolation.
func (e Expression) Predict(m, p int) float64 {
	if len(e.Segments) > 0 {
		seg := &e.Segments[e.segmentIdx(m)]
		s := seg.PerByte.Eval(p)
		if s < 0 && m > seg.MMax {
			s = 0
		}
		return seg.Startup.Eval(p) + s*float64(m)
	}
	s := e.PerByte.Eval(p)
	if s < 0 {
		s = 0
	}
	return e.Startup.Eval(p) + s*float64(m)
}

// EvalStartup returns T0(p) in µs — for piecewise expressions, the
// global fit's startup term (anchored at the shortest message, like the
// paper's T0).
func (e Expression) EvalStartup(p int) float64 { return e.Startup.Eval(p) }

// EvalPerByte returns the asymptotic per-byte rate s(p) in µs/byte: the
// last segment's rate for piecewise expressions (the long-message slope
// behind R∞), the sole rate otherwise.
func (e Expression) EvalPerByte(p int) float64 {
	if n := len(e.Segments); n > 0 {
		return e.Segments[n-1].PerByte.Eval(p)
	}
	return e.PerByte.Eval(p)
}

// IsPiecewise reports whether the expression carries fitted segments.
func (e Expression) IsPiecewise() bool { return len(e.Segments) > 0 }

// SegmentFor returns the segment covering message length m: the first
// segment whose MMax is ≥ m, or the last segment for m beyond the
// fitted range (long-message extrapolation stays on the long-message
// piece). ok is false for plain affine expressions.
func (e Expression) SegmentFor(m int) (Segment, bool) {
	if len(e.Segments) == 0 {
		return Segment{}, false
	}
	return e.Segments[e.segmentIdx(m)], true
}

// segmentIdx locates the segment covering m (the caller guarantees
// Segments is non-empty). Fits have at most a handful of segments, so
// the scan beats a binary search.
func (e Expression) segmentIdx(m int) int {
	for i := range e.Segments {
		if m <= e.Segments[i].MMax {
			return i
		}
	}
	return len(e.Segments) - 1
}

// String renders the expression in the paper's notation, e.g.
// "(24p + 90) + (0.082p - 0.29)m"; piecewise expressions render each
// segment with its message-length range.
func (e Expression) String() string {
	if !e.IsPiecewise() {
		return fmt.Sprintf("(%s) + (%s)m", e.Startup, e.PerByte)
	}
	parts := make([]string, len(e.Segments))
	for i, seg := range e.Segments {
		parts[i] = fmt.Sprintf("(%s) + (%s)m for m∈[%d,%d]", seg.Startup, seg.PerByte, seg.MMin, seg.MMax)
	}
	return strings.Join(parts, "; ")
}

// StartupOnly reports whether the expression has no per-byte part
// (barrier rows of Table 3).
func (e Expression) StartupOnly() bool { return e.PerByte.A == 0 && e.PerByte.B == 0 }
