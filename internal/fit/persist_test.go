package fit

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTripPreservesDataset(t *testing.T) {
	d := &Dataset{}
	d.Add(2, 0, 3.25)
	d.Add(2, 4, 41.5)
	d.Add(64, 65536, 317000.125)
	d.Add(128, 4, 0.0078125)
	d.Add(8, 1024, 123.456789012345)

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip changed the dataset:\n got %+v\nwant %+v", got.Points, d.Points)
	}
}

func TestWriteCSVFormat(t *testing.T) {
	d := &Dataset{}
	d.Add(4, 16, 12.5)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "p,m,micros\n4,16,12.5\n"
	if buf.String() != want {
		t.Fatalf("WriteCSV = %q, want %q", buf.String(), want)
	}
}

func TestReadCSVToleratesHeaderAndBlankLines(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("p,m,micros\n\n2,4,1.5\n\n8,16,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2 || d.Points[0] != (Point{P: 2, M: 4, Micros: 1.5}) {
		t.Fatalf("parsed %+v", d.Points)
	}
}

func TestReadCSVRejectsMalformedRows(t *testing.T) {
	for _, in := range []string{"1,2\n", "a,2,3\n", "1,b,3\n", "1,2,c\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}
}
