package fit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the dataset as "p,m,micros" rows with a header,
// the cache format of cmd/experiments.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "p,m,micros"); err != nil {
		return err
	}
	for _, pt := range d.Points {
		if _, err := fmt.Fprintf(bw, "%d,%d,%g\n", pt.P, pt.M, pt.Micros); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses WriteCSV output.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	d := &Dataset{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "p,")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("fit: line %d: want 3 fields, got %d", line, len(parts))
		}
		p, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fit: line %d: bad p: %v", line, err)
		}
		m, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("fit: line %d: bad m: %v", line, err)
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fit: line %d: bad micros: %v", line, err)
		}
		d.Add(p, m, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
