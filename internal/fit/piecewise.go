package fit

import (
	"math"
	"sort"
)

// Segment is one piece of a piecewise expression: an affine model
// T(m, p) = Startup(p) + PerByte(p)·m fitted over the message-length
// columns in [MMin, MMax]. Adjacent segments share their boundary
// column, so a piecewise fit tiles the calibrated length range with no
// gaps; the first segment also serves m < MMin and the last m > MMax.
type Segment struct {
	MMin    int  `json:"m_min"`
	MMax    int  `json:"m_max"`
	Startup Form `json:"startup"`
	PerByte Form `json:"per_byte"`
}

// PiecewiseOptions tunes the Piecewise fit. The zero value selects the
// defaults: as many segments as the probe detects regimes, probe and
// stopping tolerance 0.02.
type PiecewiseOptions struct {
	// MaxSegments caps K, the number of affine pieces; ≤ 0 means no cap
	// beyond the number of detected regime boundaries (at most one
	// segment per pair of adjacent length columns).
	MaxSegments int `json:"max_segments"`
	// RelTol is the consecutive-refit instability threshold above which
	// a column boundary becomes a breakpoint candidate, and the
	// worst-cell error at which segment selection stops splitting;
	// ≤ 0 means 0.02 (the adaptive planner's default stability
	// tolerance).
	RelTol float64 `json:"rel_tol"`
}

func (o PiecewiseOptions) maxSegments(columns int) int {
	max := columns - 1 // every segment needs two columns of its own
	if o.MaxSegments > 0 && o.MaxSegments < max {
		return o.MaxSegments
	}
	return max
}

func (o PiecewiseOptions) relTol() float64 {
	if o.RelTol <= 0 {
		return 0.02
	}
	return o.RelTol
}

// Piecewise fits K ≥ 1 affine segments over the dataset's (log-spaced)
// message-length columns — the protocol-aware refinement of TwoStage
// for machines whose message-passing layer switches regimes (eager vs.
// rendezvous-style handoff) mid-range, where a single affine model
// carries its worst error.
//
// Breakpoint candidates come from the adaptive planner's
// consecutive-refit-delta probe: columns are refitted in ascending
// order, and a column whose arrival moves the affine coefficients by
// more than RelTol marks a regime boundary. K and the breakpoint
// placement are then selected by grid-validated relative error:
// greedy forward selection adds, one at a time, the candidate
// breakpoint whose segmentation best reduces the fit's relative error
// cross-checked cell by cell against the measured grid (the same
// in-sample fit-vs-simulator comparison `sweep -validate` runs at
// scale — deliberately not held-out scoring, which rejects segments
// that must memorize localized congestion artifacts the serving layer
// is expected to reproduce), and stops as soon as no candidate
// improves it, the worst cell already fits within RelTol, or
// MaxSegments is reached. K = 1 — plain TwoStage — therefore survives
// whenever the affine model already fits, and only genuinely
// multi-regime triples pay for segments; the probe threshold, not a
// held-out set, is what keeps smooth triples unsegmented.
//
// Datasets with fewer than four length columns, or startup-only
// datasets (barrier), always return the plain TwoStage fit.
func Piecewise(d *Dataset, startupHint, perByteHint FormKind, opt PiecewiseOptions) Expression {
	base := TwoStage(d, startupHint, perByteHint)
	lengths := d.Lengths()
	sizes := d.Sizes()
	if len(lengths) < 4 || base.StartupOnly() {
		return base
	}

	candidates := probeBreakpoints(d, lengths, startupHint, perByteHint, opt.relTol())
	if len(candidates) == 0 {
		return base
	}

	tol := opt.relTol()
	best := base
	bestScore, bestWorst := gridError(d, base)
	var chosen []int
	for len(chosen)+1 < opt.maxSegments(len(lengths)) && len(candidates) > 0 && bestWorst > tol {
		addIdx := -1
		addScore, addWorst := math.Inf(1), math.Inf(1)
		var addExpr Expression
		for ci, c := range candidates {
			bps := append(append([]int(nil), chosen...), c)
			sort.Ints(bps)
			groups := segmentColumns(lengths, bps)
			segs := make([]Segment, len(groups))
			for i, cols := range groups {
				segs[i] = fitSegment(d, sizes, cols, startupHint, perByteHint)
			}
			e := Expression{Startup: base.Startup, PerByte: base.PerByte, Segments: segs}
			score, worst := gridError(d, e)
			if score < addScore {
				addScore, addWorst, addIdx, addExpr = score, worst, ci, e
			}
		}
		if addIdx < 0 || addScore >= bestScore {
			break
		}
		best, bestScore, bestWorst = addExpr, addScore, addWorst
		chosen = append(chosen, candidates[addIdx])
		candidates = append(candidates[:addIdx], candidates[addIdx+1:]...)
	}
	return best
}

// gridError cross-checks an expression against every measured grid
// point and returns the mean and worst relative error — the per-triple
// miniature of the sweep validation report.
func gridError(d *Dataset, e Expression) (mean, worst float64) {
	var sum float64
	var n int
	for _, pt := range d.Points {
		if pt.Micros == 0 {
			continue
		}
		err := math.Abs(e.Predict(pt.M, pt.P)-pt.Micros) / pt.Micros
		sum += err
		if err > worst {
			worst = err
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), worst
}

// probeBreakpoints runs the consecutive-refit-delta probe: TwoStage is
// refitted on ascending column prefixes, and the boundary before a
// column whose arrival destabilizes the fit beyond tol becomes a
// breakpoint candidate. Candidates are returned strongest-delta first
// (ties broken by column order), as indices into lengths; a candidate
// at index i means "a new regime starts after column i", so segments
// split sharing column i.
func probeBreakpoints(d *Dataset, lengths []int, startupHint, perByteHint FormKind, tol float64) []int {
	type candidate struct {
		idx   int
		delta float64
	}
	var cands []candidate
	prev := TwoStage(subset(d, lengths[:2]), startupHint, perByteHint)
	for i := 2; i < len(lengths); i++ {
		next := TwoStage(subset(d, lengths[:i+1]), startupHint, perByteHint)
		if delta := refitDelta(prev, next); delta > tol {
			cands = append(cands, candidate{idx: i - 1, delta: delta})
		}
		prev = next
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].delta > cands[j].delta })
	out := make([]int, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.idx) // idx = i−1 ∈ [1, len−2]: always interior
	}
	return out
}

// refitDelta is the graded readout of the probe: the largest relative
// coefficient movement between two consecutive fits, +Inf on a shape
// flip. (Stable is the boolean readout the adaptive planner uses.)
func refitDelta(a, b Expression) float64 {
	if a.Startup.Kind != b.Startup.Kind || a.PerByte.Kind != b.PerByte.Kind {
		return math.Inf(1)
	}
	var max float64
	for _, pair := range [][2]float64{
		{a.Startup.A, b.Startup.A}, {a.Startup.B, b.Startup.B},
		{a.PerByte.A, b.PerByte.A}, {a.PerByte.B, b.PerByte.B},
	} {
		den := math.Max(math.Abs(pair[0]), math.Abs(pair[1]))
		if den == 0 {
			continue
		}
		if delta := math.Abs(pair[0]-pair[1]) / den; delta > max {
			max = delta
		}
	}
	return max
}

// Stable reports whether two successive fits agree within tol on every
// coefficient, with no shape flip — the adaptive calibration planner's
// stopping probe. The absolute 1e-9 slack keeps near-zero coefficients
// from blocking convergence.
func Stable(a, b Expression, tol float64) bool {
	return a.Startup.Kind == b.Startup.Kind && a.PerByte.Kind == b.PerByte.Kind &&
		coefStable(a.Startup.A, b.Startup.A, tol) &&
		coefStable(a.Startup.B, b.Startup.B, tol) &&
		coefStable(a.PerByte.A, b.PerByte.A, tol) &&
		coefStable(a.PerByte.B, b.PerByte.B, tol)
}

func coefStable(x, y, tol float64) bool {
	return math.Abs(x-y) <= tol*math.Max(math.Abs(x), math.Abs(y))+1e-9
}

// segmentColumns splits the sorted length columns into contiguous
// groups at the breakpoint indices (ascending), adjacent groups sharing
// their boundary column.
func segmentColumns(lengths []int, bps []int) [][]int {
	var groups [][]int
	start := 0
	for _, b := range bps {
		groups = append(groups, lengths[start:b+1])
		start = b
	}
	groups = append(groups, lengths[start:])
	return groups
}

// fitSegment fits one affine piece over the given length columns: per
// machine size, ordinary least squares of T against m; then the
// intercepts and slopes are fitted against the p-shapes like any
// Table 3 term.
func fitSegment(d *Dataset, sizes []int, cols []int, startupHint, perByteHint FormKind) Segment {
	intercepts := make([]float64, 0, len(sizes))
	slopes := make([]float64, 0, len(sizes))
	for _, p := range sizes {
		var xs, ys []float64
		for _, m := range cols {
			if v, ok := d.At(p, m); ok {
				xs = append(xs, float64(m))
				ys = append(ys, v)
			}
		}
		s, b, _ := LeastSquares(xs, ys)
		slopes = append(slopes, s)
		intercepts = append(intercepts, b)
	}
	return Segment{
		MMin:    cols[0],
		MMax:    cols[len(cols)-1],
		Startup: FitForm(sizes, intercepts, startupHint),
		PerByte: FitForm(sizes, slopes, perByteHint),
	}
}

// subset returns the dataset restricted to the given message lengths.
func subset(d *Dataset, lengths []int) *Dataset {
	keep := make(map[int]bool, len(lengths))
	for _, m := range lengths {
		keep[m] = true
	}
	out := &Dataset{Points: make([]Point, 0, len(d.Points))}
	for _, pt := range d.Points {
		if keep[pt.M] {
			out.Points = append(out.Points, pt)
		}
	}
	return out
}
