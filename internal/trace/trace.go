// Package trace records and analyzes communication activity of a
// simulated run: every network transfer with its queueing and transit
// times, per-node traffic totals, and hot-pair detection. The paper
// reasons about these quantities indirectly (startup latency vs
// transmission delay); the trace makes them directly inspectable, which
// is how the machine models in this repository were debugged.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// Recorder collects transfer events from a network.
type Recorder struct {
	events []network.TransferEvent
}

// Attach installs the recorder on a network and returns it.
func Attach(n *network.Network) *Recorder {
	r := &Recorder{}
	n.SetObserver(r.record)
	return r
}

func (r *Recorder) record(e network.TransferEvent) { r.events = append(r.events, e) }

// Events returns the recorded transfers in occurrence order.
func (r *Recorder) Events() []network.TransferEvent { return r.events }

// Len returns the number of recorded transfers.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards all recorded events.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Summary aggregates a recording.
type Summary struct {
	Transfers  int
	Bytes      int64
	QueueTime  sim.Duration // total time spent waiting for the path
	WireTime   sim.Duration // total start→arrive time
	MaxQueue   sim.Duration
	FirstStart sim.Time
	LastArrive sim.Time
}

// Summarize computes aggregate statistics of the recording.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Transfers = len(r.events)
	for i, e := range r.events {
		s.Bytes += int64(e.Size)
		q := e.Start.Sub(e.Ready)
		s.QueueTime += q
		if q > s.MaxQueue {
			s.MaxQueue = q
		}
		s.WireTime += e.Arrive.Sub(e.Start)
		if i == 0 || e.Start < s.FirstStart {
			s.FirstStart = e.Start
		}
		if e.Arrive > s.LastArrive {
			s.LastArrive = e.Arrive
		}
	}
	return s
}

// PairTraffic is the aggregate traffic between one ordered node pair.
type PairTraffic struct {
	Src, Dst  int
	Transfers int
	Bytes     int64
}

// HotPairs returns the ordered node pairs by descending byte volume,
// at most n entries.
func (r *Recorder) HotPairs(n int) []PairTraffic {
	agg := map[[2]int]*PairTraffic{}
	for _, e := range r.events {
		k := [2]int{e.Src, e.Dst}
		pt, ok := agg[k]
		if !ok {
			pt = &PairTraffic{Src: e.Src, Dst: e.Dst}
			agg[k] = pt
		}
		pt.Transfers++
		pt.Bytes += int64(e.Size)
	}
	out := make([]PairTraffic, 0, len(agg))
	for _, pt := range agg {
		out = append(out, *pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// NodeLoad returns per-node sent and received byte totals, indexed by
// node ID (length = max node ID + 1).
func (r *Recorder) NodeLoad() (sent, received []int64) {
	max := -1
	for _, e := range r.events {
		if e.Src > max {
			max = e.Src
		}
		if e.Dst > max {
			max = e.Dst
		}
	}
	sent = make([]int64, max+1)
	received = make([]int64, max+1)
	for _, e := range r.events {
		sent[e.Src] += int64(e.Size)
		received[e.Dst] += int64(e.Size)
	}
	return sent, received
}

// WriteReport renders a human-readable trace summary.
func (r *Recorder) WriteReport(w io.Writer, topPairs int) {
	s := r.Summarize()
	fmt.Fprintf(w, "transfers: %d  bytes: %d\n", s.Transfers, s.Bytes)
	fmt.Fprintf(w, "span: %v → %v\n", s.FirstStart, s.LastArrive)
	fmt.Fprintf(w, "queueing: total %v, max %v\n", s.QueueTime, s.MaxQueue)
	if topPairs > 0 {
		fmt.Fprintln(w, "hottest pairs:")
		for _, pt := range r.HotPairs(topPairs) {
			fmt.Fprintf(w, "  %3d → %-3d  %8d bytes in %d transfers\n",
				pt.Src, pt.Dst, pt.Bytes, pt.Transfers)
		}
	}
}
