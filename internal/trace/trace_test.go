package trace

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// runTraced runs an 8-node T3D broadcast with a recorder attached.
func runTraced(t *testing.T, body func(c *mpi.Comm)) *Recorder {
	t.Helper()
	cl := machine.NewCluster(machine.T3D(), 8, 1)
	rec := Attach(cl.Net())
	if err := mpi.RunCluster(cl, body); err != nil {
		t.Fatal(err)
	}
	return rec
}

func bcastBody(c *mpi.Comm) {
	var msg []byte
	if c.Rank() == 0 {
		msg = make([]byte, 4096)
	}
	c.Bcast(0, msg)
}

func TestRecorderCapturesBinomialTreeTransfers(t *testing.T) {
	rec := runTraced(t, bcastBody)
	// A binomial broadcast over p nodes sends exactly p-1 messages.
	if rec.Len() != 7 {
		t.Fatalf("recorded %d transfers, want 7", rec.Len())
	}
	for _, e := range rec.Events() {
		if e.Size != 4096 {
			t.Fatalf("transfer size %d", e.Size)
		}
		if e.Arrive <= e.Start || e.Start < e.Ready {
			t.Fatalf("inconsistent event times: %+v", e)
		}
	}
}

func TestSummarize(t *testing.T) {
	rec := runTraced(t, bcastBody)
	s := rec.Summarize()
	if s.Transfers != 7 || s.Bytes != 7*4096 {
		t.Fatalf("summary %+v", s)
	}
	if s.LastArrive <= s.FirstStart {
		t.Fatalf("span inverted: %+v", s)
	}
}

func TestNodeLoadBroadcastRootSendsMost(t *testing.T) {
	rec := runTraced(t, bcastBody)
	sent, recv := rec.NodeLoad()
	// Root of a binomial tree over 8 nodes sends 3 messages.
	if sent[0] != 3*4096 {
		t.Fatalf("root sent %d bytes, want %d", sent[0], 3*4096)
	}
	if recv[0] != 0 {
		t.Fatalf("root received %d bytes", recv[0])
	}
	var totalRecv int64
	for _, v := range recv {
		totalRecv += v
	}
	if totalRecv != 7*4096 {
		t.Fatalf("total received %d", totalRecv)
	}
}

func TestHotPairsAlltoallUniform(t *testing.T) {
	rec := runTraced(t, func(c *mpi.Comm) {
		blocks := make([][]byte, c.Size())
		for i := range blocks {
			blocks[i] = make([]byte, 512)
		}
		c.Alltoall(blocks)
	})
	pairs := rec.HotPairs(0)
	if len(pairs) != 8*7 {
		t.Fatalf("%d pairs, want 56", len(pairs))
	}
	for _, pt := range pairs {
		if pt.Bytes != 512 || pt.Transfers != 1 {
			t.Fatalf("non-uniform traffic: %+v", pt)
		}
	}
	top := rec.HotPairs(5)
	if len(top) != 5 {
		t.Fatalf("top-5 returned %d", len(top))
	}
}

func TestQueueTimeNonzeroUnderContention(t *testing.T) {
	// A 16-node gather funnels into the root: later messages must queue.
	cl := machine.NewCluster(machine.SP2(), 16, 1)
	rec := Attach(cl.Net())
	if err := mpi.RunCluster(cl, func(c *mpi.Comm) {
		c.Gather(0, make([]byte, 8192))
	}); err != nil {
		t.Fatal(err)
	}
	if s := rec.Summarize(); s.QueueTime == 0 {
		t.Fatal("gather funnel produced no queueing")
	}
}

func TestResetClears(t *testing.T) {
	rec := runTraced(t, bcastBody)
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWriteReport(t *testing.T) {
	rec := runTraced(t, bcastBody)
	var b strings.Builder
	rec.WriteReport(&b, 3)
	out := b.String()
	for _, want := range []string{"transfers: 7", "hottest pairs:", "→"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
