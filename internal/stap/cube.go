package stap

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// Cube is a radar data cube of one coherent processing interval:
// Ranges × Pulses × Channels complex samples, range-major. A Slice of it
// (a contiguous band of range gates) lives on each node.
type Cube struct {
	Ranges, Pulses, Channels int
	// Data[r][p][c]
	Data [][][]Complex
}

// NewCube allocates a zeroed cube.
func NewCube(ranges, pulses, channels int) *Cube {
	d := make([][][]Complex, ranges)
	for r := range d {
		d[r] = make([][]Complex, pulses)
		for p := range d[r] {
			d[r][p] = make([]Complex, channels)
		}
	}
	return &Cube{Ranges: ranges, Pulses: pulses, Channels: channels, Data: d}
}

// Target is a synthetic point target injected into a cube.
type Target struct {
	Range      int     // range gate
	DopplerBin int     // Doppler bin (0..Pulses-1)
	Amplitude  float64 // relative to unit noise
}

// Synthesize fills the cube with unit complex Gaussian noise plus the
// given targets, each a tone across pulses at its Doppler frequency,
// identical on all channels (boresight arrival). Deterministic in seed.
func Synthesize(ranges, pulses, channels int, targets []Target, seed int64) *Cube {
	rng := rand.New(rand.NewSource(seed))
	cube := NewCube(ranges, pulses, channels)
	for r := 0; r < ranges; r++ {
		for p := 0; p < pulses; p++ {
			for c := 0; c < channels; c++ {
				cube.Data[r][p][c] = Complex{
					float32(rng.NormFloat64() / math.Sqrt2),
					float32(rng.NormFloat64() / math.Sqrt2),
				}
			}
		}
	}
	for _, t := range targets {
		for p := 0; p < pulses; p++ {
			phase := 2 * math.Pi * float64(t.DopplerBin) * float64(p) / float64(pulses)
			tone := Complex{
				float32(t.Amplitude * math.Cos(phase)),
				float32(t.Amplitude * math.Sin(phase)),
			}
			for c := 0; c < channels; c++ {
				cube.Data[t.Range][p][c] = cube.Data[t.Range][p][c].Add(tone)
			}
		}
	}
	return cube
}

// RangeSlice returns the sub-cube of gates [lo, hi).
func (c *Cube) RangeSlice(lo, hi int) *Cube {
	return &Cube{
		Ranges: hi - lo, Pulses: c.Pulses, Channels: c.Channels,
		Data: c.Data[lo:hi],
	}
}

// sampleBytes is the wire size of one complex sample.
const sampleBytes = 8

// EncodeSamples packs samples little-endian float32 pairs.
func EncodeSamples(xs []Complex) []byte {
	out := make([]byte, sampleBytes*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint32(out[8*i:], math.Float32bits(v.Re))
		binary.LittleEndian.PutUint32(out[8*i+4:], math.Float32bits(v.Im))
	}
	return out
}

// DecodeSamples unpacks EncodeSamples output.
func DecodeSamples(b []byte) []Complex {
	out := make([]Complex, len(b)/sampleBytes)
	for i := range out {
		out[i] = Complex{
			math.Float32frombits(binary.LittleEndian.Uint32(b[8*i:])),
			math.Float32frombits(binary.LittleEndian.Uint32(b[8*i+4:])),
		}
	}
	return out
}
