package stap

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Params sizes one coherent processing interval.
type Params struct {
	Ranges   int // range gates; must divide by the node count
	Pulses   int // pulses per CPI; power of two (Doppler FFT length)
	Channels int // antenna channels
	// CFARThreshold is the detection multiple over the local noise
	// average (typical values 8–15).
	CFARThreshold float64
	// DiagonalLoad regularizes the covariance estimate.
	DiagonalLoad float32
}

// DefaultParams returns a modest CPI sized like the paper-era testbeds.
func DefaultParams() Params {
	return Params{Ranges: 256, Pulses: 64, Channels: 8, CFARThreshold: 10, DiagonalLoad: 1}
}

// Detection is one CFAR hit.
type Detection struct {
	DopplerBin int
	Range      int
	SNR        float64 // power over local noise estimate
}

// StageTimes is the simulated per-stage breakdown on the slowest rank.
type StageTimes struct {
	Doppler    sim.Duration // local FFTs
	CornerTurn sim.Duration // the alltoall
	Weights    sim.Duration // covariance estimate + allreduce + solve
	Beamform   sim.Duration // local apply
	CFAR       sim.Duration // detection + gather
	Total      sim.Duration

	// Communication sub-portions of the mixed stages.
	WeightsComm sim.Duration // the covariance allreduce
	CFARComm    sim.Duration // the detection gather
}

// CommTime returns the pure communication portion of the breakdown: the
// corner-turn alltoall, the covariance allreduce, and the detection
// gather.
func (s StageTimes) CommTime() sim.Duration { return s.CornerTurn + s.WeightsComm + s.CFARComm }

// Result is the outcome of one pipeline run.
type Result struct {
	Detections []Detection
	Times      StageTimes
}

// Run executes the pipeline on p nodes of mach over a synthesized cube
// containing the given targets. It returns the detections (collected at
// rank 0) and the per-stage timing of the slowest rank.
func Run(mach *machine.Machine, p int, prm Params, targets []Target, seed int64) (*Result, error) {
	if prm.Ranges%p != 0 || prm.Pulses%p != 0 {
		return nil, fmt.Errorf("stap: ranges (%d) and pulses (%d) must divide by p=%d",
			prm.Ranges, prm.Pulses, p)
	}
	cube := Synthesize(prm.Ranges, prm.Pulses, prm.Channels, targets, seed)

	res := &Result{}
	perRank := make([]StageTimes, p)
	err := mpi.Run(mach, p, seed, func(c *mpi.Comm) {
		t := runRank(c, mach, prm, cube, res)
		perRank[c.Rank()] = t
	})
	if err != nil {
		return nil, err
	}
	for _, t := range perRank {
		if t.Total > res.Times.Total {
			res.Times = t
		}
	}
	sort.Slice(res.Detections, func(i, j int) bool {
		if res.Detections[i].DopplerBin != res.Detections[j].DopplerBin {
			return res.Detections[i].DopplerBin < res.Detections[j].DopplerBin
		}
		return res.Detections[i].Range < res.Detections[j].Range
	})
	return res, nil
}

func runRank(c *mpi.Comm, mach *machine.Machine, prm Params, cube *Cube, res *Result) StageTimes {
	var t StageTimes
	p := c.Size()
	rank := c.Rank()
	gatesPer := prm.Ranges / p
	binsPer := prm.Pulses / p
	start := c.Proc().Now()

	// My slice of the cube (each node reads its own gates, as if from
	// the sensor fan-out).
	local := cube.RangeSlice(rank*gatesPer, (rank+1)*gatesPer)

	// --- Stage 1: Doppler filtering -----------------------------------
	// FFT across pulses for every (gate, channel).
	mark := c.Proc().Now()
	doppler := NewCube(gatesPer, prm.Pulses, prm.Channels)
	for g := 0; g < gatesPer; g++ {
		for ch := 0; ch < prm.Channels; ch++ {
			line := make([]Complex, prm.Pulses)
			for pu := 0; pu < prm.Pulses; pu++ {
				line[pu] = local.Data[g][pu][ch]
			}
			FFT(line)
			for pu := 0; pu < prm.Pulses; pu++ {
				doppler.Data[g][pu][ch] = line[pu]
			}
		}
	}
	c.Compute(mach.ComputeTime(float64(gatesPer*prm.Channels) * FFTFlops(prm.Pulses)))
	t.Doppler = c.Proc().Now().Sub(mark)

	// --- Stage 2: corner turn ------------------------------------------
	// Redistribute from range-major to Doppler-major: node j gets my
	// gates for its band of Doppler bins.
	mark = c.Proc().Now()
	blocks := make([][]byte, p)
	for j := 0; j < p; j++ {
		samples := make([]Complex, 0, gatesPer*binsPer*prm.Channels)
		for g := 0; g < gatesPer; g++ {
			for b := j * binsPer; b < (j+1)*binsPer; b++ {
				samples = append(samples, doppler.Data[g][b]...)
			}
		}
		blocks[j] = EncodeSamples(samples)
	}
	recv := c.Alltoall(blocks)
	// turned[b][r][ch] for my bins b (bin index relative to my band).
	turned := NewCube(binsPer, prm.Ranges, prm.Channels)
	for src := 0; src < p; src++ {
		samples := DecodeSamples(recv[src])
		i := 0
		for g := 0; g < gatesPer; g++ {
			globalRange := src*gatesPer + g
			for b := 0; b < binsPer; b++ {
				copy(turned.Data[b][globalRange], samples[i:i+prm.Channels])
				i += prm.Channels
			}
		}
	}
	t.CornerTurn = c.Proc().Now().Sub(mark)

	// --- Stage 3: adaptive weights --------------------------------------
	// Sample covariance over my portion, summed across nodes, then solve
	// M·w = s for the boresight steering vector s = 1.
	mark = c.Proc().Now()
	cov := NewMatrix(prm.Channels)
	for b := 0; b < binsPer; b++ {
		for r := 0; r < prm.Ranges; r++ {
			cov.AddOuter(turned.Data[b][r])
		}
	}
	c.Compute(mach.ComputeTime(8 * float64(binsPer*prm.Ranges) * float64(prm.Channels*prm.Channels)))
	commMark := c.Proc().Now()
	covSum := mpi.DecodeFloats(c.Allreduce(mpi.EncodeFloats(matToFloats(cov)), mpi.Sum, mpi.Float))
	t.WeightsComm = c.Proc().Now().Sub(commMark)
	total := floatsToMat(covSum, prm.Channels)
	total.Scale(1 / float32(prm.Ranges*prm.Pulses))
	total.AddDiagonal(prm.DiagonalLoad)
	steer := make([]Complex, prm.Channels)
	for i := range steer {
		steer[i] = Complex{1, 0}
	}
	w := total.Solve(steer)
	c.Compute(mach.ComputeTime(8 * float64(prm.Channels*prm.Channels*prm.Channels)))
	t.Weights = c.Proc().Now().Sub(mark)

	// --- Stage 4: beamforming -------------------------------------------
	mark = c.Proc().Now()
	power := make([][]float64, binsPer)
	for b := 0; b < binsPer; b++ {
		power[b] = make([]float64, prm.Ranges)
		for r := 0; r < prm.Ranges; r++ {
			power[b][r] = Dot(w, turned.Data[b][r]).Abs2()
		}
	}
	c.Compute(mach.ComputeTime(8 * float64(binsPer*prm.Ranges) * float64(prm.Channels)))
	t.Beamform = c.Proc().Now().Sub(mark)

	// --- Stage 5: CFAR detection + gather -------------------------------
	mark = c.Proc().Now()
	var local32 []int32
	for b := 0; b < binsPer; b++ {
		noise := meanExcludingPeak(power[b])
		for r := 0; r < prm.Ranges; r++ {
			if noise > 0 && power[b][r] > prm.CFARThreshold*noise {
				snr := power[b][r] / noise
				local32 = append(local32, int32(rank*binsPer+b), int32(r), int32(snr))
			}
		}
	}
	c.Compute(mach.ComputeTime(2 * float64(binsPer*prm.Ranges)))
	commMark = c.Proc().Now()
	all := c.Gatherv(0, mpi.EncodeInts(local32))
	if c.Rank() == 0 {
		for _, raw := range all {
			v := mpi.DecodeInts(raw)
			for i := 0; i+2 < len(v); i += 3 {
				res.Detections = append(res.Detections, Detection{
					DopplerBin: int(v[i]), Range: int(v[i+1]), SNR: float64(v[i+2]),
				})
			}
		}
	}
	t.CFARComm = c.Proc().Now().Sub(commMark)
	t.CFAR = c.Proc().Now().Sub(mark)
	t.Total = c.Proc().Now().Sub(start)
	return t
}

// meanExcludingPeak estimates the noise floor of one Doppler bin's range
// profile: the mean power with the strongest cell removed (a simplified
// cell-averaging CFAR reference window).
func meanExcludingPeak(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum, max float64
	for _, v := range xs {
		sum += v
		if v > max {
			max = v
		}
	}
	return (sum - max) / float64(len(xs)-1)
}

// matToFloats flattens a complex matrix into float32 pairs for the wire.
func matToFloats(m *Matrix) []float32 {
	out := make([]float32, 0, 2*len(m.A))
	for _, v := range m.A {
		out = append(out, v.Re, v.Im)
	}
	return out
}

func floatsToMat(f []float32, n int) *Matrix {
	m := NewMatrix(n)
	for i := range m.A {
		m.A[i] = Complex{f[2*i], f[2*i+1]}
	}
	return m
}
