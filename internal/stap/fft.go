// Package stap implements a miniature space-time adaptive processing
// pipeline — the radar benchmark the paper's measurements came from
// ("The MPI performance data are obtained from the STAP benchmark
// experiments jointly performed at the USC and HKU", sponsored by MIT
// Lincoln Laboratory). The pipeline really computes: Doppler FFTs,
// an alltoall corner turn, adaptive beamforming weights via a reduced
// covariance estimate, and cell-averaging CFAR detection; computation is
// charged to the simulated nodes at their sustained MFLOP rates, so the
// computation/communication trade-off the paper's expressions inform is
// directly observable.
package stap

import "math"

// Complex is the radar sample type (complex64-equivalent, kept explicit
// for encoding).
type Complex struct{ Re, Im float32 }

// Add returns a + b.
func (a Complex) Add(b Complex) Complex { return Complex{a.Re + b.Re, a.Im + b.Im} }

// Sub returns a - b.
func (a Complex) Sub(b Complex) Complex { return Complex{a.Re - b.Re, a.Im - b.Im} }

// Mul returns a × b.
func (a Complex) Mul(b Complex) Complex {
	return Complex{a.Re*b.Re - a.Im*b.Im, a.Re*b.Im + a.Im*b.Re}
}

// Conj returns the complex conjugate.
func (a Complex) Conj() Complex { return Complex{a.Re, -a.Im} }

// Abs2 returns |a|².
func (a Complex) Abs2() float64 { return float64(a.Re)*float64(a.Re) + float64(a.Im)*float64(a.Im) }

// FFT computes the in-place radix-2 decimation-in-time FFT of x, whose
// length must be a power of two.
func FFT(x []Complex) {
	n := len(x)
	if n&(n-1) != 0 {
		panic("stap: FFT length must be a power of two")
	}
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wn := Complex{float32(math.Cos(ang)), float32(math.Sin(ang))}
		for start := 0; start < n; start += size {
			w := Complex{1, 0}
			for k := 0; k < size/2; k++ {
				a := x[start+k]
				b := x[start+k+size/2].Mul(w)
				x[start+k] = a.Add(b)
				x[start+k+size/2] = a.Sub(b)
				w = w.Mul(wn)
			}
		}
	}
}

// IFFT computes the in-place inverse FFT (normalized by 1/n).
func IFFT(x []Complex) {
	for i := range x {
		x[i] = x[i].Conj()
	}
	FFT(x)
	inv := float32(1) / float32(len(x))
	for i := range x {
		x[i] = Complex{x[i].Re * inv, -x[i].Im * inv}
	}
}

// FFTFlops returns the standard 5·n·log2(n) operation count used to
// charge simulated compute time for an n-point complex FFT.
func FFTFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}
