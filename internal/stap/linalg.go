package stap

// Small complex linear algebra for the adaptive-beamforming stage: the
// sample covariance matrix and a Gaussian-elimination solver, both over
// the channel dimension (a handful of elements on these machines).

// Matrix is a dense square complex matrix, row-major.
type Matrix struct {
	N int
	A []Complex
}

// NewMatrix returns a zero n×n matrix.
func NewMatrix(n int) *Matrix { return &Matrix{N: n, A: make([]Complex, n*n)} }

// At returns element (i, j).
func (m *Matrix) At(i, j int) Complex { return m.A[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v Complex) { m.A[i*m.N+j] = v }

// AddOuter accumulates the outer product x·xᴴ into m.
func (m *Matrix) AddOuter(x []Complex) {
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			m.A[i*m.N+j] = m.A[i*m.N+j].Add(x[i].Mul(x[j].Conj()))
		}
	}
}

// AddDiagonal adds v to every diagonal element (diagonal loading, the
// standard STAP regularization).
func (m *Matrix) AddDiagonal(v float32) {
	for i := 0; i < m.N; i++ {
		m.A[i*m.N+i] = m.A[i*m.N+i].Add(Complex{v, 0})
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.A {
		m.A[i] = Complex{m.A[i].Re * s, m.A[i].Im * s}
	}
}

// Solve returns x with m·x = b by Gaussian elimination with partial
// pivoting. m and b are left unmodified. Panics on a singular system
// (cannot happen with diagonal loading).
func (m *Matrix) Solve(b []Complex) []Complex {
	n := m.N
	a := make([]Complex, len(m.A))
	copy(a, m.A)
	x := make([]Complex, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, a[col*n+col].Abs2()
		for r := col + 1; r < n; r++ {
			if v := a[r*n+col].Abs2(); v > best {
				pivot, best = r, v
			}
		}
		if best == 0 {
			panic("stap: singular covariance matrix")
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[pivot*n+j] = a[pivot*n+j], a[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := cinv(a[col*n+col])
		for r := col + 1; r < n; r++ {
			f := a[r*n+col].Mul(inv)
			if f.Re == 0 && f.Im == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] = a[r*n+j].Sub(f.Mul(a[col*n+j]))
			}
			x[r] = x[r].Sub(f.Mul(x[col]))
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		acc := x[row]
		for j := row + 1; j < n; j++ {
			acc = acc.Sub(a[row*n+j].Mul(x[j]))
		}
		x[row] = acc.Mul(cinv(a[row*n+row]))
	}
	return x
}

// cinv returns 1/z.
func cinv(z Complex) Complex {
	d := float32(z.Abs2())
	return Complex{z.Re / d, -z.Im / d}
}

// MatVec returns m·x.
func (m *Matrix) MatVec(x []Complex) []Complex {
	out := make([]Complex, m.N)
	for i := 0; i < m.N; i++ {
		var acc Complex
		for j := 0; j < m.N; j++ {
			acc = acc.Add(m.A[i*m.N+j].Mul(x[j]))
		}
		out[i] = acc
	}
	return out
}

// Dot returns aᴴ·b.
func Dot(a, b []Complex) Complex {
	var acc Complex
	for i := range a {
		acc = acc.Add(a[i].Conj().Mul(b[i]))
	}
	return acc
}
