package stap

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 32, 128} {
		x := make([]Complex, n)
		for i := range x {
			x[i] = Complex{float32(rng.NormFloat64()), float32(rng.NormFloat64())}
		}
		want := dft(x)
		got := append([]Complex(nil), x...)
		FFT(got)
		for k := range want {
			if d := math.Hypot(float64(got[k].Re-want[k].Re), float64(got[k].Im-want[k].Im)); d > 1e-3 {
				t.Fatalf("n=%d bin %d: fft %v, dft %v", n, k, got[k], want[k])
			}
		}
	}
}

func dft(x []Complex) []Complex {
	n := len(x)
	out := make([]Complex, n)
	for k := 0; k < n; k++ {
		var accRe, accIm float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			accRe += float64(x[j].Re)*c - float64(x[j].Im)*s
			accIm += float64(x[j].Re)*s + float64(x[j].Im)*c
		}
		out[k] = Complex{float32(accRe), float32(accIm)}
	}
	return out
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]Complex, 64)
	for i := range x {
		x[i] = Complex{float32(rng.NormFloat64()), float32(rng.NormFloat64())}
	}
	y := append([]Complex(nil), x...)
	FFT(y)
	IFFT(y)
	for i := range x {
		if d := math.Hypot(float64(y[i].Re-x[i].Re), float64(y[i].Im-x[i].Im)); d > 1e-4 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestFFTToneLandsInBin(t *testing.T) {
	const n, bin = 64, 12
	x := make([]Complex, n)
	for p := 0; p < n; p++ {
		ang := 2 * math.Pi * bin * float64(p) / n
		x[p] = Complex{float32(math.Cos(ang)), float32(math.Sin(ang))}
	}
	FFT(x)
	for k := range x {
		mag := x[k].Abs2()
		if k == bin && mag < float64(n*n)*0.9 {
			t.Fatalf("tone bin magnitude %v", mag)
		}
		if k != bin && mag > 1e-3 {
			t.Fatalf("leakage into bin %d: %v", k, mag)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]Complex, 12))
}

func TestEncodeDecodeSamples(t *testing.T) {
	xs := []Complex{{1, -2}, {0.5, 3.25}, {0, 0}}
	got := DecodeSamples(EncodeSamples(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], xs[i])
		}
	}
}

func TestSolveAgainstKnownSystem(t *testing.T) {
	// Solve a Hermitian positive-definite system and verify M·x = b.
	rng := rand.New(rand.NewSource(3))
	n := 6
	m := NewMatrix(n)
	// Build M = A·Aᴴ + I (guaranteed nonsingular).
	a := NewMatrix(n)
	for i := range a.A {
		a.A[i] = Complex{float32(rng.NormFloat64()), float32(rng.NormFloat64())}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc Complex
			for k := 0; k < n; k++ {
				acc = acc.Add(a.At(i, k).Mul(a.At(j, k).Conj()))
			}
			m.Set(i, j, acc)
		}
	}
	m.AddDiagonal(1)
	b := make([]Complex, n)
	for i := range b {
		b[i] = Complex{float32(rng.NormFloat64()), float32(rng.NormFloat64())}
	}
	x := m.Solve(b)
	back := m.MatVec(x)
	for i := range b {
		if d := math.Hypot(float64(back[i].Re-b[i].Re), float64(back[i].Im-b[i].Im)); d > 1e-3 {
			t.Fatalf("residual %v at %d", d, i)
		}
	}
}

func TestSolvePivoting(t *testing.T) {
	// Zero leading diagonal forces a pivot swap.
	m := NewMatrix(2)
	m.Set(0, 0, Complex{0, 0})
	m.Set(0, 1, Complex{1, 0})
	m.Set(1, 0, Complex{1, 0})
	m.Set(1, 1, Complex{0, 0})
	x := m.Solve([]Complex{{2, 0}, {3, 0}})
	if x[0].Re != 3 || x[1].Re != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(16, 8, 4, nil, 7)
	b := Synthesize(16, 8, 4, nil, 7)
	if a.Data[3][2][1] != b.Data[3][2][1] {
		t.Fatal("same seed, different cubes")
	}
	c := Synthesize(16, 8, 4, nil, 8)
	if a.Data[3][2][1] == c.Data[3][2][1] {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
}

func TestPipelineDetectsInjectedTargets(t *testing.T) {
	prm := Params{Ranges: 128, Pulses: 32, Channels: 4, CFARThreshold: 12, DiagonalLoad: 1}
	targets := []Target{
		{Range: 37, DopplerBin: 5, Amplitude: 12},
		{Range: 90, DopplerBin: 20, Amplitude: 12},
	}
	res, err := Run(machine.T3D(), 8, prm, targets, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int]bool{}
	for _, d := range res.Detections {
		found[[2]int{d.DopplerBin, d.Range}] = true
	}
	for _, tgt := range targets {
		if !found[[2]int{tgt.DopplerBin, tgt.Range}] {
			t.Errorf("target at bin %d gate %d not detected (got %v)",
				tgt.DopplerBin, tgt.Range, res.Detections)
		}
	}
	// Strong targets over unit noise: no more than a few false alarms.
	if len(res.Detections) > 8 {
		t.Errorf("%d detections for 2 targets — CFAR threshold too low", len(res.Detections))
	}
}

func TestPipelineNoTargetsFewFalseAlarms(t *testing.T) {
	prm := Params{Ranges: 128, Pulses: 32, Channels: 4, CFARThreshold: 14, DiagonalLoad: 1}
	res, err := Run(machine.SP2(), 4, prm, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) > 4 {
		t.Fatalf("%d false alarms in pure noise", len(res.Detections))
	}
}

func TestPipelineTimesPopulated(t *testing.T) {
	prm := Params{Ranges: 64, Pulses: 16, Channels: 4, CFARThreshold: 10, DiagonalLoad: 1}
	res, err := Run(machine.Paragon(), 4, prm, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Times
	for name, v := range map[string]int64{
		"doppler": int64(ts.Doppler), "corner": int64(ts.CornerTurn),
		"weights": int64(ts.Weights), "beamform": int64(ts.Beamform),
		"cfar": int64(ts.CFAR), "total": int64(ts.Total),
	} {
		if v <= 0 {
			t.Errorf("stage %s has nonpositive time", name)
		}
	}
	sum := ts.Doppler + ts.CornerTurn + ts.Weights + ts.Beamform + ts.CFAR
	if sum > ts.Total {
		t.Errorf("stage sum %v exceeds total %v", sum, ts.Total)
	}
	if ts.CommTime() >= ts.Total {
		t.Errorf("comm time %v not below total %v", ts.CommTime(), ts.Total)
	}
}

func TestPipelineMachineOrdering(t *testing.T) {
	// The corner turn is a total exchange: the T3D must spend less time
	// in it than the Paragon at the same configuration.
	prm := Params{Ranges: 128, Pulses: 32, Channels: 8, CFARThreshold: 10, DiagonalLoad: 1}
	t3d, err := Run(machine.T3D(), 8, prm, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(machine.Paragon(), 8, prm, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t3d.Times.CornerTurn >= par.Times.CornerTurn {
		t.Fatalf("corner turn: T3D %v should beat Paragon %v",
			t3d.Times.CornerTurn, par.Times.CornerTurn)
	}
}

func TestPipelineRejectsIndivisibleSizes(t *testing.T) {
	prm := Params{Ranges: 100, Pulses: 32, Channels: 4, CFARThreshold: 10}
	if _, err := Run(machine.T3D(), 8, prm, nil, 1); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestMeanExcludingPeak(t *testing.T) {
	if got := meanExcludingPeak([]float64{1, 1, 1, 9}); got != 1 {
		t.Fatalf("got %v", got)
	}
	if got := meanExcludingPeak([]float64{5}); got != 0 {
		t.Fatalf("single cell should yield 0, got %v", got)
	}
}
