package paper

import "repro/internal/machine"

// Artifact identifies a figure or table of the paper's evaluation.
type Artifact struct {
	ID      string // "fig1" … "fig5", "table3"
	Caption string
	Ops     []machine.Op
	// Fixed parameters; zero means "swept".
	FixedP int
	FixedM []int // message lengths held fixed (fig3 uses two)
}

// SixOps are the operations of Figs. 1, 2, 4 and 5 (barrier excluded —
// it has no message payload).
var SixOps = []machine.Op{
	machine.OpBroadcast, machine.OpAlltoall, machine.OpScatter,
	machine.OpGather, machine.OpScan, machine.OpReduce,
}

// Artifacts lists every evaluation artifact to reproduce.
var Artifacts = []Artifact{
	{
		ID:      "fig1",
		Caption: "Startup latencies T0(p) of six MPI collective operations over three multicomputers with 2 to 128 nodes",
		Ops:     SixOps,
	},
	{
		ID:      "fig2",
		Caption: "Collective messaging times T(m,32) of six MPI collective operations as a function of the message length",
		Ops:     SixOps,
		FixedP:  32,
	},
	{
		ID:      "fig3",
		Caption: "Collective messaging times T(m,p) as a function of machine size for short (16 B) and long (64 KB) messages",
		Ops: []machine.Op{
			machine.OpBroadcast, machine.OpAlltoall, machine.OpScatter,
			machine.OpGather, machine.OpScan, machine.OpReduce, machine.OpBarrier,
		},
		FixedM: []int{16, 65536},
	},
	{
		ID:      "fig4",
		Caption: "Breakdown of timing results in six MPI collective operations over p=32 nodes with m=1 KB per message",
		Ops:     SixOps,
		FixedP:  32,
		FixedM:  []int{1024},
	},
	{
		ID:      "fig5",
		Caption: "Aggregated bandwidths in performing different collective MPI operations on three machine sizes",
		Ops:     SixOps,
	},
	{
		ID:      "table3",
		Caption: "Timing expressions for collective communications on three MPPs",
		Ops:     machine.Ops,
	},
}

// ArtifactByID returns the artifact with the given id, or nil.
func ArtifactByID(id string) *Artifact {
	for i := range Artifacts {
		if Artifacts[i].ID == id {
			return &Artifacts[i]
		}
	}
	return nil
}

// Fig5Sizes are the three machine sizes of Fig. 5's bar groups.
var Fig5Sizes = []int{16, 32, 64}
