// Package paper encodes the published results of Hwang, Wang & Wang
// (HPCA 1997) as data: the 21 fitted timing expressions of Table 3, the
// spot values quoted in the text (§4 latencies, §5 total-exchange
// example, §8 aggregated bandwidths), and the structure of every figure
// and table the evaluation reports. The reproduction harness compares
// its own measurements against these.
package paper

import (
	"repro/internal/fit"
	"repro/internal/machine"
)

// lin and lg build Table 3 terms tersely.
func lin(a, b float64) fit.Form { return fit.Form{Kind: fit.Linear, A: a, B: b} }
func lg(a, b float64) fit.Form  { return fit.Form{Kind: fit.Log, A: a, B: b} }

// Table3 holds the paper's fitted timing expressions in µs (m in
// bytes, log base 2), keyed by machine name then operation.
var Table3 = map[string]map[machine.Op]fit.Expression{
	"SP2": {
		machine.OpBarrier:   {Startup: lg(123, -90)},
		machine.OpBroadcast: {Startup: lg(55, 30), PerByte: lg(0.014, 0.053)},
		machine.OpGather:    {Startup: lin(3.7, 128), PerByte: lin(0.022, -0.011)},
		machine.OpScatter:   {Startup: lin(5.8, 77), PerByte: lin(0.039, -0.12)},
		machine.OpReduce:    {Startup: lg(63, 26), PerByte: lg(0.016, 0.071)},
		machine.OpScan:      {Startup: lg(100, -43), PerByte: lin(0.0010, 0.23)},
		machine.OpAlltoall:  {Startup: lin(24, 90), PerByte: lin(0.082, -0.29)},
	},
	"T3D": {
		machine.OpBarrier:   {Startup: lg(0.011, 3)},
		machine.OpBroadcast: {Startup: lg(23, 12), PerByte: lg(0.013, -0.0071)},
		machine.OpGather:    {Startup: lin(5.3, 30), PerByte: lin(0.0047, 0.0084)},
		machine.OpScatter:   {Startup: lin(4.3, 67), PerByte: lin(0.0057, 0.16)},
		machine.OpReduce:    {Startup: lg(34, 49), PerByte: lg(0.061, -0.00035)},
		machine.OpScan:      {Startup: lg(28, 41), PerByte: lin(0.0046, 0.12)},
		machine.OpAlltoall:  {Startup: lin(26, 8.6), PerByte: lin(0.038, -0.12)},
	},
	"Paragon": {
		machine.OpBarrier:   {Startup: lg(147, -66)},
		machine.OpBroadcast: {Startup: lg(52, 15), PerByte: lg(0.019, -0.022)},
		machine.OpGather:    {Startup: lin(48, 15), PerByte: lin(0.0081, 0.039)},
		machine.OpScatter:   {Startup: lin(18, 78), PerByte: lin(0.0031, 0.039)},
		machine.OpReduce:    {Startup: lg(77, 3.6), PerByte: lg(0.16, -0.028)},
		machine.OpScan:      {Startup: lg(10, 73), PerByte: lin(0.0033, 0.28)},
		machine.OpAlltoall:  {Startup: lin(97, 82), PerByte: lin(0.073, -0.10)},
	},
}

// Expression returns the Table 3 entry for (machine, op).
func Expression(mach string, op machine.Op) (fit.Expression, bool) {
	row, ok := Table3[mach]
	if !ok {
		return fit.Expression{}, false
	}
	e, ok := row[op]
	return e, ok
}

// StartupShape returns the p-dependence the paper reports for an
// operation's startup latency (§8): logarithmic for the tree-based
// barrier, broadcast, reduce and scan; linear for gather, scatter, and
// total exchange.
func StartupShape(op machine.Op) fit.FormKind {
	switch op {
	case machine.OpGather, machine.OpScatter, machine.OpAlltoall:
		return fit.Linear
	default:
		return fit.Log
	}
}

// PerByteShape returns the p-dependence Table 3 uses for the per-byte
// term of an operation.
func PerByteShape(mach string, op machine.Op) fit.FormKind {
	if e, ok := Expression(mach, op); ok {
		return e.PerByte.Kind
	}
	return StartupShape(op)
}

// AggregatedMultiplier returns f(m,p)/m (§3): the number of per-pair
// messages a collective moves. m(p−1) for the one-to-many/many-to-one
// operations and the reductions; m·p(p−1) for total exchange.
func AggregatedMultiplier(op machine.Op, p int) float64 {
	switch op {
	case machine.OpAlltoall:
		return float64(p) * float64(p-1)
	case machine.OpBarrier:
		return 0
	default:
		return float64(p - 1)
	}
}

// AggregatedBandwidthMBs returns the paper's asymptotic aggregated
// bandwidth R∞(p) in MB/s implied by an expression (§8, Eq. 4):
// f(m,p)/(s(p)·m) with s in µs/byte.
func AggregatedBandwidthMBs(e fit.Expression, op machine.Op, p int) float64 {
	s := e.EvalPerByte(p)
	if s <= 0 {
		return 0
	}
	return AggregatedMultiplier(op, p) / s
}
