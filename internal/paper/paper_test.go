package paper

import (
	"math"
	"testing"

	"repro/internal/fit"
	"repro/internal/machine"
)

// These tests verify that our transcription of Table 3 is internally
// consistent with every number the paper quotes in prose — a guard
// against transcription errors in the reference data.

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

func TestTable3Complete(t *testing.T) {
	for _, mach := range []string{"SP2", "T3D", "Paragon"} {
		for _, op := range machine.Ops {
			e, ok := Expression(mach, op)
			if !ok {
				t.Fatalf("missing Table 3 entry %s/%s", mach, op)
			}
			if op == machine.OpBarrier && !e.StartupOnly() {
				t.Errorf("%s barrier should be startup-only", mach)
			}
			if op != machine.OpBarrier && e.StartupOnly() {
				t.Errorf("%s/%s lost its per-byte term", mach, op)
			}
		}
	}
}

func TestTable3MatchesSection8Example(t *testing.T) {
	// §8: "the total exchange time on the T3D … given m = 512 bytes and
	// p = 64, the time … is calculated as 2.86 ms".
	e, _ := Expression("T3D", machine.OpAlltoall)
	if got := e.Eval(512, 64); relErr(got, 2860) > 0.01 {
		t.Fatalf("T3D alltoall(512, 64) = %v µs, paper says 2.86 ms", got)
	}
}

func TestTable3MatchesSection4Latencies(t *testing.T) {
	// §4 quotes measured T3D startup latencies at p=64; the Table 3
	// fits reproduce them within the paper's own fitting error (≤16%).
	for _, sv := range Reported {
		if sv.Where != "§4" || sv.P != 64 {
			continue
		}
		e, _ := Expression(sv.Machine, sv.Op)
		if got := e.EvalStartup(64); relErr(got, sv.Value) > 0.16 {
			t.Errorf("%s %s startup(64) = %.1f µs, paper quotes %v", sv.Machine, sv.Op, got, sv.Value)
		}
	}
}

func TestTable3MatchesAggregatedBandwidths(t *testing.T) {
	// §8: 64-node total exchange reaches 1.745, 0.879, 0.818 GB/s on
	// T3D, Paragon, SP2.
	want := map[string]float64{"T3D": 1745, "Paragon": 879, "SP2": 818}
	for mach, bw := range want {
		e, _ := Expression(mach, machine.OpAlltoall)
		got := AggregatedBandwidthMBs(e, machine.OpAlltoall, 64)
		if relErr(got, bw) > 0.01 {
			t.Errorf("%s R∞(64) = %.0f MB/s, paper says %v", mach, got, bw)
		}
	}
}

func TestTable3MatchesSP2TotalExchangeExample(t *testing.T) {
	// §5: "in 64 node total exchange the SP2 requires 317 ms to
	// transmit messages of 64 KBytes each". The fit gives ≈346 ms; the
	// paper's own fit-vs-quote discrepancy is ≈9%.
	e, _ := Expression("SP2", machine.OpAlltoall)
	got := e.Eval(65536, 64)
	if relErr(got, 317_000) > 0.12 {
		t.Fatalf("SP2 alltoall(64KB, 64) = %.0f µs, paper quotes 317 ms", got)
	}
}

func TestT3DBarrierIsAtLeast30xFaster(t *testing.T) {
	// Abstract: "the T3D performs the barrier synchronization in 3 µs,
	// at least 30 times faster than the SP2 or Paragon".
	t3d, _ := Expression("T3D", machine.OpBarrier)
	for _, other := range []string{"SP2", "Paragon"} {
		e, _ := Expression(other, machine.OpBarrier)
		for _, p := range []int{8, 16, 32, 64} {
			ratio := e.EvalStartup(p) / t3d.EvalStartup(p)
			if ratio < 30 {
				t.Errorf("%s barrier only %.0fx slower than T3D at p=%d", other, ratio, p)
			}
		}
	}
}

func TestStartupShapesMatchSection8(t *testing.T) {
	// §8: O(log p) startup for barrier, scan, reduce, broadcast;
	// O(p) for gather, scatter, total exchange.
	wantLog := map[machine.Op]bool{
		machine.OpBarrier: true, machine.OpScan: true,
		machine.OpReduce: true, machine.OpBroadcast: true,
	}
	for _, op := range machine.Ops {
		shape := StartupShape(op)
		if wantLog[op] && shape != fit.Log {
			t.Errorf("%s startup should be logarithmic", op)
		}
		if !wantLog[op] && shape != fit.Linear {
			t.Errorf("%s startup should be linear", op)
		}
		// The transcribed expressions must agree with the stated shape.
		for mach := range Table3 {
			e, _ := Expression(mach, op)
			if e.Startup.Kind != shape {
				t.Errorf("%s/%s transcribed with %v startup, paper says %v",
					mach, op, e.Startup.Kind, shape)
			}
		}
	}
}

func TestAggregatedMultiplier(t *testing.T) {
	// §3: f(m,p) = m(p−1) for broadcast/gather/scatter/reduce/scan,
	// m·p(p−1) for total exchange.
	if got := AggregatedMultiplier(machine.OpBroadcast, 64); got != 63 {
		t.Fatalf("broadcast multiplier = %v", got)
	}
	if got := AggregatedMultiplier(machine.OpAlltoall, 64); got != 64*63 {
		t.Fatalf("alltoall multiplier = %v", got)
	}
	if got := AggregatedMultiplier(machine.OpBarrier, 64); got != 0 {
		t.Fatalf("barrier moves no payload, got %v", got)
	}
}

func TestMessageRangeCompletesIn5msTo675ms(t *testing.T) {
	// Abstract: "various collective operations with 64 KBytes per
	// message over 64 nodes … can be completed in the time range
	// (5.12 ms, 675 ms)".
	lo, hi := math.Inf(1), math.Inf(-1)
	for mach := range Table3 {
		for _, op := range machine.Ops {
			if op == machine.OpBarrier {
				continue
			}
			e, _ := Expression(mach, op)
			v := e.Eval(65536, 64)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo < 4000 || lo > 7000 {
		t.Errorf("fastest 64KB/64-node op = %.0f µs, paper says ≈5.12 ms", lo)
	}
	// The abstract's 675 ms upper end is a measured extreme that the
	// fitted expressions understate (the largest fit value is the SP2
	// total exchange at ≈347 ms, vs its measured 317 ms in §5 — the
	// measured 675 ms point has no corresponding fit). Check the fits
	// put the slowest operation in the hundreds of milliseconds.
	if hi < 250_000 || hi > 800_000 {
		t.Errorf("slowest 64KB/64-node op = %.0f µs, want hundreds of ms", hi)
	}
}

func TestSweepsMatchSection2(t *testing.T) {
	if got := MachineSizes("T3D"); got[len(got)-1] != 64 {
		t.Fatalf("T3D sizes end at %d, the study had 64", got[len(got)-1])
	}
	if got := MachineSizes("SP2"); got[len(got)-1] != 128 {
		t.Fatalf("SP2 sizes end at %d", got[len(got)-1])
	}
	ms := MessageLengths()
	if ms[0] != 4 || ms[len(ms)-1] != 65536 {
		t.Fatalf("message sweep %v", ms)
	}
}

func TestArtifactsCoverEverything(t *testing.T) {
	ids := map[string]bool{}
	for _, a := range Artifacts {
		ids[a.ID] = true
		if len(a.Ops) == 0 {
			t.Errorf("%s has no operations", a.ID)
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "table3"} {
		if !ids[want] {
			t.Errorf("missing artifact %s", want)
		}
	}
	if ArtifactByID("fig3").FixedM[0] != 16 || ArtifactByID("fig3").FixedM[1] != 65536 {
		t.Error("fig3 uses 16 B and 64 KB messages")
	}
	if ArtifactByID("nope") != nil {
		t.Error("phantom artifact")
	}
}

func TestScanParagonBeatsT3DLatencyAt16Plus(t *testing.T) {
	// §9: T3D trails the Paragon in scan on 16 nodes or more.
	t3d, _ := Expression("T3D", machine.OpScan)
	par, _ := Expression("Paragon", machine.OpScan)
	for _, p := range []int{16, 32, 64} {
		if par.EvalStartup(p) >= t3d.EvalStartup(p) {
			t.Errorf("Paragon scan startup should beat T3D at p=%d", p)
		}
	}
}
