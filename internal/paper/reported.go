package paper

import "repro/internal/machine"

// SpotValue is a number quoted in the paper's prose, used as a
// consistency check on Table 3 and as a reproduction target.
type SpotValue struct {
	Where   string // section of the paper
	Machine string
	Op      machine.Op
	P       int
	M       int     // bytes; 0 where not applicable
	Value   float64 // in the unit named by Unit
	Unit    string
}

// Reported lists the paper's quoted numbers.
var Reported = []SpotValue{
	// §4: measured 64-node T3D startup latencies.
	{"§4", "T3D", machine.OpBroadcast, 64, 0, 150, "µs"},
	{"§4", "T3D", machine.OpAlltoall, 64, 0, 1700, "µs"},
	{"§4", "T3D", machine.OpScatter, 64, 0, 298, "µs"},
	{"§4", "T3D", machine.OpGather, 64, 0, 365, "µs"},
	{"§4", "T3D", machine.OpScan, 64, 0, 209, "µs"},
	{"§4", "T3D", machine.OpReduce, 64, 0, 253, "µs"},
	// §4: lowest T3D latency — broadcast to two nodes.
	{"§4", "T3D", machine.OpBroadcast, 2, 0, 35, "µs"},
	// Abstract/§9: T3D hardwired barrier ≈ 3 µs.
	{"abstract", "T3D", machine.OpBarrier, 64, 0, 3, "µs"},
	// §5: SP2 64-node total exchange of 64 KB messages takes 317 ms.
	{"§5", "SP2", machine.OpAlltoall, 64, 65536, 317_000, "µs"},
	// §8: example evaluation of the T3D total-exchange expression.
	{"§8", "T3D", machine.OpAlltoall, 64, 512, 2860, "µs"},
	// §8: aggregated bandwidths of 64-node total exchange.
	{"§8", "T3D", machine.OpAlltoall, 64, -1, 1745, "MB/s"},
	{"§8", "Paragon", machine.OpAlltoall, 64, -1, 879, "MB/s"},
	{"§8", "SP2", machine.OpAlltoall, 64, -1, 818, "MB/s"},
}

// HopLatenciesNs are the per-hop network latencies of §4.
var HopLatenciesNs = map[string]int64{"SP2": 125, "T3D": 20, "Paragon": 40}

// NetworkBandwidthsMBs are the reported raw network bandwidths of §5.
var NetworkBandwidthsMBs = map[string]float64{"SP2": 40, "T3D": 300, "Paragon": 175}

// Fig4Latencies are the startup latencies called out in §7 for the
// 32-node, 1 KB case: the Paragon's total exchange and gather latencies
// ("3857 µs and 2918 µs, about 4 to 15 times greater than the SP2 and
// T3D counterparts").
var Fig4Latencies = []SpotValue{
	{"§7", "Paragon", machine.OpAlltoall, 32, 1024, 3857, "µs"},
	{"§7", "Paragon", machine.OpGather, 32, 1024, 2918, "µs"},
}

// MaxNodes is the largest allocation per machine in the study (§2).
var MaxNodes = map[string]int{"SP2": 128, "T3D": 64, "Paragon": 128}

// MachineSizes returns the p sweep of the study for one machine:
// 2, 4, …, up to 128 (64 on the T3D).
func MachineSizes(mach string) []int {
	max := MaxNodes[mach]
	var out []int
	for p := 2; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// MessageLengths returns the m sweep of the study: 4 B to 64 KB in
// factor-of-4 steps (§2: "message length m varies from 4, 16, …, to
// 64 KBytes").
func MessageLengths() []int {
	var out []int
	for m := 4; m <= 65536; m *= 4 {
		out = append(out, m)
	}
	return out
}
