package core

import (
	"strings"
	"testing"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/paper"
)

// fastEval keeps core tests quick: small sweeps, few iterations.
func fastEval(opts ...Option) *Evaluator {
	base := []Option{WithMaxNodes(16), WithLengths(4, 1024, 16384)}
	return New(measure.Fast(), append(base, opts...)...)
}

func TestFig1ShapesAndCoverage(t *testing.T) {
	figs := fastEval().Fig1()
	if len(figs) != 6 {
		t.Fatalf("Fig.1 has %d panels, want 6", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Fatalf("%s: %d series, want 3 machines", f.Title, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) == 0 {
				t.Fatalf("%s/%s: empty series", f.Title, s.Label)
			}
			// Startup latency must be monotonically non-decreasing in p
			// (allowing jitter of a few percent).
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]*0.9 {
					t.Errorf("%s/%s: latency fell from %v to %v", f.Title, s.Label, s.Y[i-1], s.Y[i])
				}
			}
		}
	}
}

func TestFig2TimeGrowsWithMessageLength(t *testing.T) {
	figs := fastEval().Fig2()
	if len(figs) != 6 {
		t.Fatalf("Fig.2 has %d panels", len(figs))
	}
	for _, f := range figs {
		for _, s := range f.Series {
			last := len(s.Y) - 1
			if s.Y[last] <= s.Y[0] {
				t.Errorf("%s/%s: no growth across m sweep", f.Title, s.Label)
			}
		}
	}
}

func TestFig3HasShortAndLongSeries(t *testing.T) {
	figs := fastEval().Fig3()
	if len(figs) != 7 {
		t.Fatalf("Fig.3 has %d panels, want 7 (incl. barrier)", len(figs))
	}
	var sawShortLong bool
	for _, f := range figs {
		if strings.Contains(f.Title, "barrier") {
			if len(f.Series) != 3 {
				t.Fatalf("barrier panel has %d series", len(f.Series))
			}
			continue
		}
		if len(f.Series) != 6 {
			t.Fatalf("%s: %d series, want 6 (3 machines × short/long)", f.Title, len(f.Series))
		}
		sawShortLong = true
	}
	if !sawShortLong {
		t.Fatal("no payload panels")
	}
}

func TestFig4BreakdownConsistent(t *testing.T) {
	rows := fastEval().Fig4()
	if len(rows) != 18 {
		t.Fatalf("Fig.4 has %d bars, want 18 (6 ops × 3 machines)", len(rows))
	}
	for _, r := range rows {
		if r.Startup <= 0 || r.Total <= 0 {
			t.Errorf("%s/%s: nonpositive bar", r.Machine, r.Op)
		}
		if r.Total < r.Startup*0.8 {
			t.Errorf("%s/%s: total %v below startup %v", r.Machine, r.Op, r.Total, r.Startup)
		}
	}
}

func TestFig5BandwidthsPositiveAndGrowing(t *testing.T) {
	e := New(measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 1}, WithLengths(4, 4096, 65536))
	rows := e.Fig5()
	byKey := map[string]map[int]float64{}
	for _, r := range rows {
		if r.MBs <= 0 {
			t.Errorf("%s/%s p=%d: bandwidth %v", r.Machine, r.Op, r.P, r.MBs)
		}
		k := r.Machine + "/" + string(r.Op)
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][r.P] = r.MBs
	}
	// §8: aggregated bandwidth increases monotonically with p for the
	// total exchange (f grows as p²).
	for _, mach := range []string{"SP2", "T3D", "Paragon"} {
		bw := byKey[mach+"/alltoall"]
		if bw[32] <= bw[16] {
			t.Errorf("%s alltoall R∞ did not grow: %v", mach, bw)
		}
	}
}

func TestTable3ShapesMatchPaper(t *testing.T) {
	// The headline structural claim (§8): startup is linear in p for
	// gather/scatter/alltoall and logarithmic for the tree collectives,
	// on every machine. Our refits must select the same shapes.
	e := New(measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 1}, WithMaxNodes(64), WithLengths(4, 16384, 65536))
	fitted := e.Table3()
	for mach, row := range fitted {
		for op, expr := range row {
			want := paper.StartupShape(op)
			if mach == "T3D" && op == machine.OpBarrier {
				continue // hardware barrier: nearly flat, shape is degenerate
			}
			if expr.Startup.Kind != want {
				t.Errorf("%s/%s startup fitted %v, paper says %v (expr %s)",
					mach, op, expr.Startup.Kind, want, expr)
			}
		}
	}
}

func TestTable3RowsComplete(t *testing.T) {
	e := fastEval()
	fitted := e.Table3()
	rows := e.Table3Rows(fitted)
	if len(rows) != 21 {
		t.Fatalf("Table 3 has %d rows, want 21", len(rows))
	}
	for _, r := range rows {
		if r.Paper == "" || r.Fitted == "" {
			t.Errorf("%s/%s: empty expression", r.Machine, r.Op)
		}
	}
}

func TestSpotChecksCovered(t *testing.T) {
	e := fastEval()
	// Spot checks run at up to 64 nodes; with the 16-node cap most are
	// filtered by P — use a dedicated evaluator for coverage counting
	// without actually running the heavy ones here.
	_ = e
	if len(paper.Reported) < 10 {
		t.Fatalf("only %d reported spot values transcribed", len(paper.Reported))
	}
}

func TestWithMachinesRestricts(t *testing.T) {
	e := fastEval(WithMachines(machine.T3D()))
	figs := e.Fig1()
	for _, f := range figs {
		if len(f.Series) != 1 || f.Series[0].Label != "T3D" {
			t.Fatalf("restriction failed: %+v", f.Series)
		}
	}
}

func TestBandwidthAtReasonableForT3DAlltoall(t *testing.T) {
	// At p=16 the T3D total exchange should deliver hundreds of MB/s
	// (the paper's Fig. 5b scale), nowhere near the 4.8 GB/s raw figure.
	e := New(measure.Fast(), WithLengths(4, 16384, 65536))
	bw := e.bandwidthAt(machine.T3D(), machine.OpAlltoall, 16)
	if bw < 100 || bw > 2000 {
		t.Fatalf("T3D alltoall R∞(16) = %.0f MB/s, want O(100s)", bw)
	}
}

func TestFittedExpressionsEvaluable(t *testing.T) {
	e := fastEval()
	fitted := e.Table3()
	for mach, row := range fitted {
		for op, expr := range row {
			v := expr.Eval(1024, 8)
			if v <= 0 || !isFinite(v) {
				t.Errorf("%s/%s: Eval(1024,8) = %v from %s", mach, op, v, expr)
			}
		}
	}
}

func isFinite(v float64) bool { return v == v && v < 1e18 && v > -1e18 }

var _ = fit.Expression{} // keep the fit import for the helpers above
