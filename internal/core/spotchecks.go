package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/paper"
	"repro/internal/report"
)

// SpotChecks measures every number the paper quotes in prose (E7 of
// DESIGN.md) and returns paper-vs-measured comparisons.
func (e *Evaluator) SpotChecks() []report.Comparison {
	var out []report.Comparison
	for _, sv := range paper.Reported {
		m := machine.ByName(sv.Machine)
		if m == nil || sv.P > m.MaxNodes() {
			continue
		}
		var measured float64
		switch {
		case sv.Unit == "MB/s":
			measured = e.bandwidthAt(m, sv.Op, sv.P)
		case sv.M == 0 && sv.Op != machine.OpBarrier:
			measured = measure.StartupLatency(m, sv.Op, sv.P, e.cfg)
		default:
			msg := sv.M
			if sv.Op == machine.OpBarrier {
				msg = 0
			}
			measured = measure.MeasureOp(m, sv.Op, sv.P, msg, e.cfg).Micros
		}
		out = append(out, report.Comparison{
			Label:    fmt.Sprintf("%s %s %s p=%d", sv.Where, sv.Machine, sv.Op, sv.P),
			Paper:    sv.Value,
			Measured: measured,
			Unit:     sv.Unit,
		})
	}
	return out
}
