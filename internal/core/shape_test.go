package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/measure"
)

// These tests assert the paper's headline *shape* claims against the
// simulator — machine rankings, crossovers, and magnitudes. They are the
// acceptance criteria of the reproduction (DESIGN.md E7), so they run on
// the real 64-node configurations.

var shapeCfg = measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 1}

func meas(name string, op machine.Op, p, m int) float64 {
	return measure.MeasureOp(machine.ByName(name), op, p, m, shapeCfg).Micros
}

func TestShapeT3DBarrierAtLeast30xFaster(t *testing.T) {
	// Abstract: "With hardwired barriers, the T3D performs the barrier
	// synchronization in 3 µs, at least 30 times faster than the SP2 or
	// Paragon."
	t3d := meas("T3D", machine.OpBarrier, 64, 0)
	if t3d > 6 {
		t.Fatalf("T3D 64-node barrier %v µs, want ≈3", t3d)
	}
	for _, other := range []string{"SP2", "Paragon"} {
		v := meas(other, machine.OpBarrier, 64, 0)
		if v/t3d < 30 {
			t.Errorf("%s barrier only %.0fx slower than the T3D's", other, v/t3d)
		}
	}
}

func TestShapeSP2BeatsParagonShortMessages(t *testing.T) {
	// Abstract: "For short messages, the SP2 outperforms the Paragon in
	// the barrier, total exchange, scatter, and gather operations."
	for _, op := range []machine.Op{machine.OpBarrier, machine.OpAlltoall, machine.OpScatter, machine.OpGather} {
		m := 16
		if op == machine.OpBarrier {
			m = 0
		}
		sp2 := meas("SP2", op, 64, m)
		par := meas("Paragon", op, 64, m)
		if sp2 >= par {
			t.Errorf("short %s: SP2 %.1f µs should beat Paragon %.1f µs", op, sp2, par)
		}
	}
}

func TestShapeParagonBeatsSP2LongMessagesExceptReduce(t *testing.T) {
	// §5/§9: "the Paragon outperforms the SP2 in almost all operations
	// [with long messages] except the reduce operation."
	for _, op := range []machine.Op{machine.OpBroadcast, machine.OpAlltoall, machine.OpScatter, machine.OpGather} {
		sp2 := meas("SP2", op, 64, 65536)
		par := meas("Paragon", op, 64, 65536)
		if par >= sp2 {
			t.Errorf("long %s: Paragon %.1f µs should beat SP2 %.1f µs", op, par, sp2)
		}
	}
	if sp2, par := meas("SP2", machine.OpReduce, 64, 65536), meas("Paragon", machine.OpReduce, 64, 65536); sp2 >= par {
		t.Errorf("long reduce: SP2 %.1f µs should beat Paragon %.1f µs", sp2, par)
	}
}

func TestShapeT3DWinsAlmostAllCollectives(t *testing.T) {
	// §9: "the T3D does uniformly best in all collective functions, with
	// the only exception of trailing the Paragon in … scan."
	for _, op := range []machine.Op{machine.OpBarrier, machine.OpBroadcast, machine.OpGather, machine.OpAlltoall, machine.OpReduce} {
		for _, m := range []int{16, 65536} {
			msg := m
			if op == machine.OpBarrier {
				if m > 16 {
					continue
				}
				msg = 0
			}
			if op == machine.OpReduce && m == 65536 {
				// Table 3 itself puts the SP2 ahead of the T3D for the
				// 64 KB reduce (§8 ranks reduce bandwidth "SP2, T3D,
				// Paragon"); the prose's "uniformly best" excludes it.
				continue
			}
			t3d := meas("T3D", op, 64, msg)
			for _, other := range []string{"SP2", "Paragon"} {
				if v := meas(other, op, 64, msg); t3d >= v {
					t.Errorf("%s m=%d: T3D %.1f µs should beat %s %.1f µs", op, msg, t3d, other, v)
				}
			}
		}
	}
}

func TestShapeParagonScanLatencyBeatsT3D(t *testing.T) {
	// §4: the Paragon "performs the scan operation with even shorter
	// latency than the T3D" (Fig. 1e, 16+ nodes).
	par := meas("Paragon", machine.OpScan, 64, 4)
	t3d := meas("T3D", machine.OpScan, 64, 4)
	if par >= t3d {
		t.Errorf("scan startup: Paragon %.1f µs should beat T3D %.1f µs", par, t3d)
	}
}

func TestShapeAggregatedBandwidthOrderingAndMagnitude(t *testing.T) {
	// §8: 64-node total exchange reaches 1.745, 0.879, 0.818 GB/s on
	// T3D, Paragon, SP2 — ordering must hold, magnitudes within 2x.
	e := New(shapeCfg, WithLengths(4, 16384, 65536))
	want := map[string]float64{"T3D": 1745, "Paragon": 879, "SP2": 818}
	got := map[string]float64{}
	for name, ref := range want {
		bw := e.bandwidthAt(machine.ByName(name), machine.OpAlltoall, 64)
		got[name] = bw
		if bw < ref/2 || bw > ref*2 {
			t.Errorf("%s alltoall R∞(64) = %.0f MB/s, paper %v (outside 2x)", name, bw, ref)
		}
	}
	if !(got["T3D"] > got["Paragon"] && got["Paragon"] > got["SP2"]) {
		t.Errorf("bandwidth ordering broken: %v", got)
	}
}

func TestShapeSP2ParagonCrossoverWithMessageLength(t *testing.T) {
	// §5: "the SP2 is faster than Paragon in handling short messages.
	// But for longer messages, the Paragon outperforms the SP2" — find
	// the measured alltoall crossover; the fits place it near 12 KB at
	// p=64, and it must exist between 256 B and 64 KB.
	prev := false
	var cross int
	for _, m := range []int{16, 256, 1024, 4096, 16384, 65536} {
		wins := meas("Paragon", machine.OpAlltoall, 64, m) < meas("SP2", machine.OpAlltoall, 64, m)
		if wins && !prev {
			cross = m
		}
		prev = wins
	}
	if !prev {
		t.Fatal("Paragon never overtakes the SP2 up to 64 KB")
	}
	if cross < 256 || cross > 65536 {
		t.Errorf("crossover at m=%d, expected within (256 B, 64 KB)", cross)
	}
}

func TestShapeSixtyFourKBRange(t *testing.T) {
	// Abstract: "Various collective operations with 64 KBytes per
	// message over 64 nodes … can be completed in the time range
	// (5.12 ms, 675 ms)."
	lo, hi := 1e18, 0.0
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			if op == machine.OpBarrier {
				continue
			}
			v := meas(mach.Name(), op, 64, 65536)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo < 2_000 || lo > 10_000 {
		t.Errorf("fastest 64KB/64-node op %.0f µs, paper says ≈5.12 ms", lo)
	}
	if hi < 150_000 || hi > 800_000 {
		t.Errorf("slowest 64KB/64-node op %.0f µs, paper says hundreds of ms", hi)
	}
}

func TestShapeStartupGrowthRates(t *testing.T) {
	// §4: startup grows linearly in p for gather/scatter/alltoall and
	// logarithmically for broadcast/scan/reduce/barrier. Compare the
	// p=16→64 growth: linear ops should roughly 4x, log ops should stay
	// well under 2.5x.
	for _, mach := range []string{"SP2", "Paragon"} {
		for _, op := range []machine.Op{machine.OpGather, machine.OpScatter, machine.OpAlltoall} {
			r := meas(mach, op, 64, 4) / meas(mach, op, 16, 4)
			// The fits' additive constants damp the ideal 4x (the
			// paper's own SP2 gather fit grows 1.95x over this range).
			if r < 1.8 {
				t.Errorf("%s/%s startup grew only %.2fx from p=16→64, want ≥1.8x (linear)", mach, op, r)
			}
		}
		for _, op := range []machine.Op{machine.OpBroadcast, machine.OpReduce, machine.OpBarrier} {
			m := 4
			if op == machine.OpBarrier {
				m = 0
			}
			r := meas(mach, op, 64, m) / meas(mach, op, 16, m)
			if r > 1.7 {
				t.Errorf("%s/%s startup grew %.2fx from p=16→64, want ≈1.5x (log)", mach, op, r)
			}
		}
	}
}
