// Package core is the experiment driver of the reproduction: it maps
// every figure and table of the paper's evaluation (Figs. 1–5, Table 3)
// to simulator sweeps, curve fits, and rendered reports, and carries the
// spot-value checks of EXPERIMENTS.md. It is the facade the cmd tools,
// the examples, and the benchmarks call.
package core

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/mpi"
	"repro/internal/paper"
	"repro/internal/report"
)

// Evaluator runs the paper's experiments over the three machine models.
type Evaluator struct {
	cfg      measure.Config
	machines []*machine.Machine
	sizes    map[string][]int // per machine; defaults to the paper sweep
	lengths  []int
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithMachines restricts the evaluation to the given machines.
func WithMachines(ms ...*machine.Machine) Option {
	return func(e *Evaluator) { e.machines = ms }
}

// WithMaxNodes caps the machine-size sweep (benchmarks use small caps).
func WithMaxNodes(max int) Option {
	return func(e *Evaluator) {
		for name, sizes := range e.sizes {
			var cut []int
			for _, p := range sizes {
				if p <= max {
					cut = append(cut, p)
				}
			}
			e.sizes[name] = cut
		}
	}
}

// WithLengths overrides the message-length sweep.
func WithLengths(lengths ...int) Option {
	return func(e *Evaluator) { e.lengths = lengths }
}

// New returns an evaluator running the paper's sweeps under cfg.
func New(cfg measure.Config, opts ...Option) *Evaluator {
	e := &Evaluator{
		cfg:      cfg,
		machines: machine.All(),
		sizes:    map[string][]int{},
		lengths:  paper.MessageLengths(),
	}
	for _, m := range machine.All() {
		e.sizes[m.Name()] = paper.MachineSizes(m.Name())
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Machines returns the machines under evaluation.
func (e *Evaluator) Machines() []*machine.Machine { return e.machines }

func (e *Evaluator) sizesFor(m *machine.Machine) []int { return e.sizes[m.Name()] }

func opMsg(op machine.Op, m int) int {
	if op == machine.OpBarrier {
		return 0
	}
	return m
}

// Fig1 reproduces Figure 1: startup latencies T0(p) of the six payload
// collectives, one figure per operation with one series per machine.
func (e *Evaluator) Fig1() []report.Figure {
	figs := make([]report.Figure, 0, len(paper.SixOps))
	for _, op := range paper.SixOps {
		f := report.Figure{
			Title:  fmt.Sprintf("Fig. 1 (%s): startup latency T0(p)", op),
			XLabel: "p",
			YLabel: "µs",
		}
		for _, m := range e.machines {
			s := report.Series{Label: m.Name()}
			for _, p := range e.sizesFor(m) {
				s.X = append(s.X, p)
				s.Y = append(s.Y, measure.StartupLatency(m, op, p, e.cfg))
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig2 reproduces Figure 2: T(m, 32) of the six payload collectives as
// a function of message length.
func (e *Evaluator) Fig2() []report.Figure {
	const p = 32
	figs := make([]report.Figure, 0, len(paper.SixOps))
	for _, op := range paper.SixOps {
		f := report.Figure{
			Title:  fmt.Sprintf("Fig. 2 (%s): messaging time T(m, 32)", op),
			XLabel: "m (bytes)",
			YLabel: "µs",
		}
		for _, m := range e.machines {
			if p > m.MaxNodes() {
				continue
			}
			s := report.Series{Label: m.Name()}
			for _, msg := range e.lengths {
				s.X = append(s.X, msg)
				s.Y = append(s.Y, measure.MeasureOp(m, op, p, msg, e.cfg).Micros)
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig3 reproduces Figure 3: T(m, p) against machine size for short
// (16 B) and long (64 KB) messages, for all seven operations.
func (e *Evaluator) Fig3() []report.Figure {
	art := paper.ArtifactByID("fig3")
	figs := make([]report.Figure, 0, len(art.Ops))
	for _, op := range art.Ops {
		f := report.Figure{
			Title:  fmt.Sprintf("Fig. 3 (%s): messaging time vs machine size", op),
			XLabel: "p",
			YLabel: "µs",
		}
		for _, m := range e.machines {
			lengths := art.FixedM
			if op == machine.OpBarrier {
				lengths = []int{0}
			}
			for _, msg := range lengths {
				label := fmt.Sprintf("%s m=%d", m.Name(), msg)
				if op == machine.OpBarrier {
					label = m.Name()
				}
				s := report.Series{Label: label}
				for _, p := range e.sizesFor(m) {
					s.X = append(s.X, p)
					s.Y = append(s.Y, measure.MeasureOp(m, op, p, msg, e.cfg).Micros)
				}
				f.Series = append(f.Series, s)
			}
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig4Row is one bar of Figure 4: the startup/transmission breakdown of
// an operation on one machine at p=32, m=1 KB.
type Fig4Row struct {
	Machine      string
	Op           machine.Op
	Startup      float64 // µs (T0 via the short-message estimate)
	Transmission float64 // µs (T(1KB) − T0)
	Total        float64 // µs
}

// Fig4 reproduces Figure 4's breakdown bars.
func (e *Evaluator) Fig4() []Fig4Row {
	const p, msg = 32, 1024
	var rows []Fig4Row
	for _, op := range paper.SixOps {
		for _, m := range e.machines {
			if p > m.MaxNodes() {
				continue
			}
			t0 := measure.StartupLatency(m, op, p, e.cfg)
			total := measure.MeasureOp(m, op, p, msg, e.cfg).Micros
			d := total - t0
			if d < 0 {
				d = 0
			}
			rows = append(rows, Fig4Row{
				Machine: m.Name(), Op: op, Startup: t0, Transmission: d, Total: total,
			})
		}
	}
	return rows
}

// Fig5Row is one bar of Figure 5: the aggregated bandwidth R∞(p) of an
// operation on one machine at one size.
type Fig5Row struct {
	Machine string
	Op      machine.Op
	P       int
	MBs     float64
}

// Fig5 reproduces Figure 5: asymptotic aggregated bandwidths at
// p ∈ {16, 32, 64}, estimated from the per-byte slope of an m-sweep.
func (e *Evaluator) Fig5() []Fig5Row {
	var rows []Fig5Row
	for _, op := range paper.SixOps {
		for _, m := range e.machines {
			for _, p := range paper.Fig5Sizes {
				if p > m.MaxNodes() {
					continue
				}
				rows = append(rows, Fig5Row{
					Machine: m.Name(), Op: op, P: p,
					MBs: e.bandwidthAt(m, op, p),
				})
			}
		}
	}
	return rows
}

// bandwidthAt estimates R∞(p) = f(m,p)/(s(p)·m) from measured slopes.
func (e *Evaluator) bandwidthAt(m *machine.Machine, op machine.Op, p int) float64 {
	d := estimate.BuildDataset(m, op, mpi.DefaultAlgorithms(m), []int{p}, e.lengths, e.cfg)
	base, _ := d.At(p, e.lengths[0])
	var xs, ys []float64
	for _, msg := range e.lengths[1:] {
		if v, ok := d.At(p, msg); ok {
			xs = append(xs, float64(msg-e.lengths[0]))
			ys = append(ys, v-base)
		}
	}
	slope, _ := fit.ThroughOrigin(xs, ys) // µs per byte
	if slope <= 0 {
		return 0
	}
	return paper.AggregatedMultiplier(op, p) / slope
}

// Table3 refits the paper's timing expressions from simulator sweeps.
// It returns the fitted expressions keyed like paper.Table3.
func (e *Evaluator) Table3() map[string]map[machine.Op]fit.Expression {
	out := map[string]map[machine.Op]fit.Expression{}
	for _, m := range e.machines {
		row := map[machine.Op]fit.Expression{}
		for _, op := range machine.Ops {
			lengths := e.lengths
			if op == machine.OpBarrier {
				lengths = []int{0}
			}
			d := estimate.BuildDataset(m, op, mpi.DefaultAlgorithms(m), e.sizesFor(m), lengths, e.cfg)
			row[op] = fit.TwoStage(d, paper.StartupShape(op), paper.PerByteShape(m.Name(), op))
		}
		out[m.Name()] = row
	}
	return out
}

// Table3Rows renders a Table 3 reproduction as report rows.
func (e *Evaluator) Table3Rows(fitted map[string]map[machine.Op]fit.Expression) []report.ExpressionRow {
	var rows []report.ExpressionRow
	for _, m := range e.machines {
		for _, op := range machine.Ops {
			pe, _ := paper.Expression(m.Name(), op)
			rows = append(rows, report.ExpressionRow{
				Machine: m.Name(),
				Op:      string(op),
				Paper:   pe.String(),
				Fitted:  fitted[m.Name()][op].String(),
			})
		}
	}
	return rows
}
