package obs

import (
	"sync/atomic"
	"time"
)

// Stage is one step of a request's estimate pipeline. The order is the
// wire order of one request through internal/serve.
type Stage int

const (
	// StageDecode is reading and parsing the request body.
	StageDecode Stage = iota
	// StageResolve is name resolution, validation, and the per-scenario
	// fallback decision.
	StageResolve
	// StageCalibrate is the batch precalibration of a calibrated entry's
	// triples.
	StageCalibrate
	// StageEstimate is the backend (or fallback-sim) evaluation, summed
	// across the batch's scenario workers.
	StageEstimate
	// StageBounds is the expected-error bound lookup and attachment,
	// summed across the batch's scenario workers.
	StageBounds
	// StageEncode is response encoding and writing.
	StageEncode

	// NumStages is the number of pipeline stages.
	NumStages
)

// String returns the stage's metric label ("decode", "resolve", …).
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageResolve:
		return "resolve"
	case StageCalibrate:
		return "calibrate"
	case StageEstimate:
		return "estimate"
	case StageBounds:
		return "bounds"
	default:
		return "encode"
	}
}

// Trace accumulates one request's per-stage durations. Adds are atomic,
// so the concurrent scenario workers of a batch can each charge their
// estimate and bound-attach shares; for those two stages the total is
// summed worker time, which can exceed the request's wall clock on a
// parallel batch. A nil *Trace is a valid no-op — un-instrumented
// requests pass nil and pay one branch per stage.
type Trace struct {
	ns [NumStages]atomic.Int64
}

// Add charges d to stage s.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t != nil {
		t.ns[s].Add(int64(d))
	}
}

// NS returns the nanoseconds charged to stage s.
func (t *Trace) NS(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.ns[s].Load()
}
