package obs

import (
	"sync/atomic"
	"time"
)

// Stage is one step of a request's estimate pipeline. The order is the
// wire order of one request through internal/serve.
type Stage int

const (
	// StageDecode is reading and parsing the request body.
	StageDecode Stage = iota
	// StageResolve is name resolution, validation, and the per-scenario
	// fallback decision.
	StageResolve
	// StageCalibrate is the batch precalibration of a calibrated entry's
	// triples.
	StageCalibrate
	// StageEstimate is the backend (or fallback-sim) evaluation, summed
	// across the batch's scenario workers.
	StageEstimate
	// StageBounds is the expected-error bound lookup and attachment,
	// summed across the batch's scenario workers.
	StageBounds
	// StageEncode is response encoding and writing.
	StageEncode

	// NumStages is the number of pipeline stages.
	NumStages
)

// String returns the stage's metric label ("decode", "resolve", …).
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageResolve:
		return "resolve"
	case StageCalibrate:
		return "calibrate"
	case StageEstimate:
		return "estimate"
	case StageBounds:
		return "bounds"
	default:
		return "encode"
	}
}

// Trace accumulates one request's per-stage durations. Adds are atomic,
// so the concurrent scenario workers of a batch can each charge their
// estimate and bound-attach shares; for those two stages the total is
// summed worker time, which can exceed the request's wall clock on a
// parallel batch. A nil *Trace is a valid no-op — un-instrumented
// requests pass nil and pay one branch per stage.
//
// Beyond the stage spans, a trace carries the request's wall-clock
// start and end plus a terminal outcome label. Those are plain fields:
// the single goroutine that owns the request sets them before fan-out
// and after join, so they need no synchronization of their own.
type Trace struct {
	ns [NumStages]atomic.Int64

	// Start and End bracket the request on the wall clock; set by Begin
	// and Finish. End minus Start is the request's true latency, unlike
	// the estimate/bounds stages, which sum worker time.
	Start, End time.Time
	// Outcome is the request's terminal label ("ok", "degraded",
	// "deadline_exceeded", "client_error", "server_error"), set by
	// Finish.
	Outcome string
}

// Add charges d to stage s.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t != nil {
		t.ns[s].Add(int64(d))
	}
}

// NS returns the nanoseconds charged to stage s.
func (t *Trace) NS(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.ns[s].Load()
}

// Begin stamps the request's wall-clock start.
func (t *Trace) Begin(now time.Time) {
	if t != nil {
		t.Start = now
	}
}

// Finish stamps the wall-clock end and the terminal outcome.
func (t *Trace) Finish(now time.Time, outcome string) {
	if t != nil {
		t.End = now
		t.Outcome = outcome
	}
}

// Duration is the request's wall-clock latency (zero before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil || t.End.Before(t.Start) {
		return 0
	}
	return t.End.Sub(t.Start)
}
