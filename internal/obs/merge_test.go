package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func parseExport(t *testing.T, r *Registry) *ParsedMetrics {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// totalsOf extracts the fleet-wide series (those without an instance
// label) of a merged snapshot.
func totalsOf(p *ParsedMetrics) map[string]any {
	out := map[string]any{}
	for _, f := range p.Families {
		for _, s := range f.Series {
			instanced := false
			for _, l := range s.Labels {
				if l.Key == InstanceLabel {
					instanced = true
					break
				}
			}
			if instanced {
				continue
			}
			switch f.Kind {
			case "counter":
				out[f.Name+s.Key()] = s.Counter
			case "gauge":
				out[f.Name+s.Key()] = s.Gauge
			default:
				out[f.Name+s.Key()] = *s.Hist
			}
		}
	}
	return out
}

// TestMergeKCopiesMultiplies is the exactness property: merging K
// copies of one snapshot multiplies every counter, every gauge, every
// histogram count/sum, and every individual bucket by exactly K.
func TestMergeKCopiesMultiplies(t *testing.T) {
	reg := exportRegistry()
	base := parseExport(t, reg)
	for _, k := range []int{1, 2, 5} {
		instances := map[string]*ParsedMetrics{}
		for i := 0; i < k; i++ {
			instances[fmt.Sprintf("w%d", i)] = parseExport(t, reg)
		}
		merged, err := Merge(instances)
		if err != nil {
			t.Fatal(err)
		}
		got := totalsOf(merged)
		want := map[string]any{}
		for name, v := range base.Snapshot() {
			switch v := v.(type) {
			case uint64:
				want[name] = v * uint64(k)
			case int64:
				want[name] = v * int64(k)
			case HistogramSnapshot:
				scaled := HistogramSnapshot{Count: v.Count * uint64(k), Sum: v.Sum * uint64(k)}
				for _, b := range v.Buckets {
					scaled.Buckets = append(scaled.Buckets, BucketSnapshot{Le: b.Le, N: b.N * uint64(k)})
				}
				want[name] = scaled
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("K=%d totals:\n got %#v\nwant %#v", k, got, want)
		}
	}
}

// TestMergePreservesPerInstanceSeries: each source's values reappear
// unchanged under instance="name".
func TestMergePreservesPerInstanceSeries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("req_total", "requests", Label{"outcome", "ok"}).Add(3)
	b.Counter("req_total", "requests", Label{"outcome", "ok"}).Add(5)
	b.Counter("req_total", "requests", Label{"outcome", "err"}).Add(1)
	merged, err := Merge(map[string]*ParsedMetrics{
		"w1": parseExport(t, a),
		"w2": parseExport(t, b),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := merged.Snapshot()
	for series, want := range map[string]uint64{
		`req_total{outcome="ok"}`:                8,
		`req_total{outcome="ok",instance="w1"}`:  3,
		`req_total{outcome="ok",instance="w2"}`:  5,
		`req_total{outcome="err"}`:               1,
		`req_total{outcome="err",instance="w2"}`: 1,
	} {
		if got, ok := snap[series]; !ok || got != any(want) {
			t.Errorf("%s = %v (present %v), want %d", series, got, ok, want)
		}
	}
	if _, ok := snap[`req_total{outcome="err",instance="w1"}`]; ok {
		t.Error("w1 gained an err series it never reported")
	}
}

// TestMergeHistogramsExactly: merging two workers' histograms equals
// the histogram of one worker having made every observation.
func TestMergeHistogramsExactly(t *testing.T) {
	a, b, union := NewRegistry(), NewRegistry(), NewRegistry()
	obsA := []uint64{0, 1, 5, 100, 100000}
	obsB := []uint64{3, 5, 70000, 1 << 40}
	ha := a.Histogram("lat_ns", "latency")
	hu := union.Histogram("lat_ns", "latency")
	for _, v := range obsA {
		ha.Observe(v)
		hu.Observe(v)
	}
	hb := b.Histogram("lat_ns", "latency")
	for _, v := range obsB {
		hb.Observe(v)
		hu.Observe(v)
	}
	merged, err := Merge(map[string]*ParsedMetrics{
		"a": parseExport(t, a),
		"b": parseExport(t, b),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := totalsOf(merged)["lat_ns"]
	want := union.Snapshot()["lat_ns"]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged histogram %#v, union histogram %#v", got, want)
	}
}

func TestMergeKindMismatchFails(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x", "as counter").Inc()
	b.Gauge("x", "as gauge").Set(1)
	if _, err := Merge(map[string]*ParsedMetrics{
		"a": parseExport(t, a),
		"b": parseExport(t, b),
	}); err == nil {
		t.Fatal("kind mismatch merged without error")
	}
}

// TestMergedSnapshotReExports: the merged view itself survives the
// text format — what fleetstat's own GET /metrics relies on.
func TestMergedSnapshotReExports(t *testing.T) {
	reg := exportRegistry()
	merged, err := Merge(map[string]*ParsedMetrics{
		"w1": parseExport(t, reg),
		"w2": parseExport(t, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := merged.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("re-parsing merged export: %v\n%s", err, buf.String())
	}
	if got, want := re.Snapshot(), merged.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("merged export does not round-trip")
	}
}
