package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
)

// TraceRecord is one sampled request, frozen for the trace ring: the
// identity and outcome of the request plus its per-stage nanoseconds.
// Records are immutable once pushed — the ring stores pointers and
// swaps them atomically, so readers never see a half-written record.
type TraceRecord struct {
	// Seq is the ring-assigned capture sequence number (1-based,
	// monotonic); newer records have higher values even after the ring
	// wraps.
	Seq uint64 `json:"seq"`
	// TraceID is the request's X-Trace-Id — inbound or generated.
	TraceID string `json:"trace_id"`
	// StartUnixNano and DurationNS place the request on the wall clock.
	StartUnixNano int64 `json:"start_unix_ns"`
	DurationNS    int64 `json:"duration_ns"`
	// Status and Outcome are the HTTP status and its coarse label
	// ("ok", "degraded", "deadline_exceeded", "client_error",
	// "server_error").
	Status  int    `json:"status"`
	Outcome string `json:"outcome"`
	// Registry names the expression set that answered (empty when the
	// request failed before resolving one).
	Registry string `json:"registry,omitempty"`
	// Scenario-level accounting of a served request.
	Scenarios   int `json:"scenarios"`
	Fallbacks   int `json:"fallbacks,omitempty"`
	Degraded    int `json:"degraded,omitempty"`
	Bounds      int `json:"bounds,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
	// Stages is the per-stage nanosecond breakdown, one key per
	// obs.Stage ("decode" … "encode"); estimate and bounds sum worker
	// time on parallel batches.
	Stages map[string]int64 `json:"stage_ns,omitempty"`
}

// StagesFrom flattens tr's spans into the record's Stages map, one key
// per pipeline stage (all six present, so consumers never need to
// distinguish "zero" from "missing").
func (rec *TraceRecord) StagesFrom(tr *Trace) {
	m := make(map[string]int64, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		m[st.String()] = tr.NS(st)
	}
	rec.Stages = m
}

// TraceRing is a bounded ring of sampled trace records. Push claims a
// slot with one atomic add and publishes the record with one atomic
// pointer store — no locks, safe for concurrent writers — and readers
// load the same pointers, so a scrape never blocks the request path.
// When the ring is full the oldest record is overwritten. A nil
// *TraceRing is a valid no-op.
type TraceRing struct {
	slots []atomic.Pointer[TraceRecord]
	seq   atomic.Uint64
}

// NewTraceRing returns a ring keeping the last n records (n < 1 is
// clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[TraceRecord], n)}
}

// Push captures one record, assigning its sequence number. The record
// must not be mutated afterwards.
func (r *TraceRing) Push(rec TraceRecord) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	rec.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&rec)
}

// Total is the lifetime number of records pushed (captured), including
// those since overwritten.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Cap is the ring's capacity.
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Records returns the ring's current contents, oldest first. Under
// concurrent pushes the result is a consistent set of point-in-time
// records, though neighbors may straddle a wrap.
func (r *TraceRing) Records() []TraceRecord {
	if r == nil {
		return nil
	}
	out := make([]TraceRecord, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Last returns the newest record, if any.
func (r *TraceRing) Last() (TraceRecord, bool) {
	recs := r.Records()
	if len(recs) == 0 {
		return TraceRecord{}, false
	}
	return recs[len(recs)-1], true
}

// WriteLineJSON emits the ring oldest-first, one JSON object per line —
// the GET /debug/traces format.
func (r *TraceRing) WriteLineJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Records() {
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
