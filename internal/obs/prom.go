package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format: # HELP / # TYPE headers, one line per series,
// histograms as cumulative le-bounded buckets plus _sum and _count.
// Families are sorted by name and series by labels, so the layout is
// stable across calls — only the numbers move.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				v := s.counter.Value()
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, v)
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.gauge.Value())
			case kindHistogram:
				writePromHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram series: cumulative buckets up
// to the highest non-empty one, then +Inf, _sum, and _count.
func writePromHistogram(w io.Writer, name string, s *series) {
	h := s.hist
	top := -1
	var counts [numHistBuckets]uint64
	for i := 0; i < numHistBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(s.labels, strconv.FormatUint(bucketBound(i), 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.key, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, h.Count())
}

// withLe renders the series labels with an le bound appended.
func withLe(labels []Label, le string) string {
	with := make([]Label, 0, len(labels)+1)
	with = append(with, labels...)
	return renderLabels(append(with, Label{Key: "le", Value: le}))
}

// HistogramSnapshot is a histogram's value in Registry.Snapshot:
// totals plus the non-empty buckets (per-bucket counts, not
// cumulative), each with its inclusive upper bound.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     uint64           `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty log₂ bucket.
type BucketSnapshot struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Snapshot returns every series as a flat map from "name{labels}" to
// its current value: uint64 for counters, int64 for gauges,
// HistogramSnapshot for histograms. The map marshals deterministically
// (encoding/json sorts map keys), which the /debug/vars surface and
// the shutdown snapshot rely on.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			name := f.name + s.key
			switch f.kind {
			case kindCounter:
				if s.fn != nil {
					out[name] = s.fn()
				} else {
					out[name] = s.counter.Value()
				}
			case kindGauge:
				out[name] = s.gauge.Value()
			case kindHistogram:
				hs := HistogramSnapshot{Count: s.hist.Count(), Sum: s.hist.Sum()}
				for i := 0; i < numHistBuckets; i++ {
					if n := s.hist.buckets[i].Load(); n > 0 {
						hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: bucketBound(i), N: n})
					}
				}
				out[name] = hs
			}
		}
	}
	return out
}
