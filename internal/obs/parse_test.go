package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// exportRegistry builds a registry exercising every series shape the
// text format can carry: plain and labeled counters, a CounterFunc, a
// negative gauge, an escaped label value, an empty histogram, and
// histograms with zero, small, and maximal observations.
func exportRegistry() *Registry {
	r := NewRegistry()
	r.Counter("plain_total", "a bare counter").Add(42)
	r.Counter("labeled_total", "a labeled counter", Label{"op", "sum"}).Add(7)
	r.Counter("labeled_total", "a labeled counter", Label{"op", "max"}).Add(1 << 60)
	r.CounterFunc("fn_total", "an export-time counter", func() uint64 { return 12345 })
	r.Gauge("depth", "a gauge that can go negative").Set(-3)
	r.Gauge("esc", "escaped label value", Label{"v", "a\"b\\c\nd"}).Set(9)
	r.Histogram("empty_ns", "a histogram nothing observed")
	h := r.Histogram("lat_ns", "a busy histogram", Label{"stage", "decode"})
	h.Observe(0)
	h.Observe(1)
	h.Observe(7)
	h.Observe(8)
	h.Observe(123456)
	h.Observe(math.MaxUint64)
	r.Histogram("lat_ns", "a busy histogram", Label{"stage", "encode"}).Observe(300)
	return r
}

// TestParseRoundTripsSnapshot is the exactness contract the fleet
// aggregation stands on: Parse(WritePrometheus(r)) reproduces
// Snapshot(r) exactly — counters (including CounterFunc series),
// gauges, and histograms down to empty ones.
func TestParseRoundTripsSnapshot(t *testing.T) {
	r := exportRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing own export:\n%s\n%v", buf.String(), err)
	}
	got, want := parsed.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed snapshot differs:\n got %#v\nwant %#v", got, want)
	}
}

// TestParseRoundTripsBytes: parse → write reproduces the export
// byte-for-byte, so a re-exported scrape is indistinguishable from the
// original.
func TestParseRoundTripsBytes(t *testing.T) {
	r := exportRegistry()
	var orig bytes.Buffer
	if err := r.WritePrometheus(&orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(orig.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var re bytes.Buffer
	if err := parsed.WritePrometheus(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), re.Bytes()) {
		t.Fatalf("re-export differs:\n--- original\n%s\n--- re-export\n%s", orig.String(), re.String())
	}
}

// TestParseRoundTripProperty fuzzes the contract over seeded random
// registries: any mix of counters, gauges, and histograms survives the
// text format unchanged.
func TestParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		r := NewRegistry()
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			name := fmt.Sprintf("m%d_total", rng.Intn(4))
			var labels []Label
			if rng.Intn(2) == 1 {
				labels = append(labels, Label{"l", fmt.Sprintf("v%d", rng.Intn(3))})
			}
			switch rng.Intn(3) {
			case 0:
				r.Counter(name, "c", labels...).Add(rng.Uint64() >> uint(rng.Intn(64)))
			case 1:
				r.Gauge("g"+name, "g", labels...).Set(rng.Int63() - rng.Int63())
			default:
				h := r.Histogram("h"+name, "h", labels...)
				for j, m := 0, rng.Intn(20); j < m; j++ {
					h.Observe(rng.Uint64() >> uint(rng.Intn(64)))
				}
			}
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParsePrometheus(buf.Bytes())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if got, want := parsed.Snapshot(), r.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: snapshot mismatch\n got %#v\nwant %#v", trial, got, want)
		}
		var re bytes.Buffer
		if err := parsed.WritePrometheus(&re); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), re.Bytes()) {
			t.Fatalf("trial %d: bytes differ\n%s\nvs\n%s", trial, buf.String(), re.String())
		}
	}
}

func TestParseRejectsMalformedInput(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"untyped sample", "foo_total 3\n"},
		{"bad counter value", "# TYPE foo_total counter\nfoo_total -1\n"},
		{"bad type", "# TYPE foo summary\nfoo 1\n"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"b\" 1\n"},
		{"non-log2 bucket", "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 1\n"},
		{"shrinking cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 3\nh_count 3\n"},
	} {
		if _, err := ParsePrometheus([]byte(tc.text)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
}
