package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/estimate"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/serve"
)

// worker is one in-process serving instance: a full serve.Server over
// the paper's analytic registry, instrumented and tracing, behind an
// httptest listener.
type worker struct {
	ts  *httptest.Server
	srv *serve.Server
}

func newWorker(t *testing.T) *worker {
	t.Helper()
	reg := estimate.NewRegistry()
	if err := reg.Register(&estimate.Entry{
		Name: "paper", Description: "paper Table 3", Backend: estimate.PaperAnalytic(),
	}); err != nil {
		t.Fatal(err)
	}
	srv := &serve.Server{
		Registry: reg, Default: "paper",
		Sim:    estimate.Sim{Memo: estimate.NewSampleMemo()},
		Config: measure.Config{Warmup: 1, K: 2, Reps: 1, Seed: 3},
		Obs:    serve.NewMetrics(obs.NewRegistry()),
		Traces: obs.NewTraceRing(32), TraceSample: 1,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &worker{ts: ts, srv: srv}
}

const scenario = `{"machine":"SP2","op":"alltoall","p":8,"m":1024}`

// drive posts n ok scenarios to w; the optional traceID rides on the
// last one.
func drive(t *testing.T, w *worker, n int, traceID string) {
	t.Helper()
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodPost, w.ts.URL+"/v1/estimate", strings.NewReader(scenario))
		if err != nil {
			t.Fatal(err)
		}
		if traceID != "" && i == n-1 {
			req.Header.Set(serve.TraceIDHeader, traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("worker request %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestFleetEndToEnd runs two live workers, drives traffic, scrapes
// them, and requires the merged view to be the exact sum — then kills
// one worker and requires staleness marking without the fleet totals
// moving backwards. It also retrieves a fixed trace ID from a worker's
// /debug/traces, closing the loop from request header to sampled trace.
func TestFleetEndToEnd(t *testing.T) {
	w0, w1 := newWorker(t), newWorker(t)
	drive(t, w0, 3, "")
	drive(t, w1, 2, "fleet-e2e-trace")
	// One client error on w0: it must appear in the merged totals too.
	resp, err := http.Post(w0.ts.URL+"/v1/estimate", "application/json", strings.NewReader(`{oops`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}

	base := time.Now()
	var offset time.Duration
	scraper, err := New(Config{
		Targets: []Target{
			{Name: "w0", URL: w0.ts.URL + "/metrics"},
			{Name: "w1", URL: w1.ts.URL + "/metrics"},
		},
		Interval: time.Minute, Timeout: 5 * time.Second, StaleAfter: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	scraper.now = func() time.Time { return base.Add(offset) }

	if ok := scraper.ScrapeOnce(context.Background()); ok != 2 {
		t.Fatalf("first round scraped %d of 2", ok)
	}
	merged, err := scraper.Merged()
	if err != nil {
		t.Fatal(err)
	}
	snap := merged.Snapshot()

	// Fleet totals are the exact sum of the per-instance series.
	for series, want := range map[string]uint64{
		`serve_requests_total{outcome="ok"}`:               5,
		`serve_requests_total{outcome="ok",instance="w0"}`: 3,
		`serve_requests_total{outcome="ok",instance="w1"}`: 2,
		`serve_requests_total{outcome="client_error"}`:     1,
		`serve_scenarios_total{mode="closed_form"}`:        5,
		`fleet_scrapes_total{instance="w0"}`:               1,
		`fleet_scrape_errors_total{instance="w0"}`:         0,
	} {
		if got := snap[series]; got != any(want) {
			t.Errorf("%s = %v, want %d", series, got, want)
		}
	}
	for series, want := range map[string]int64{
		`fleet_instance_up{instance="w0"}`:    1,
		`fleet_instance_up{instance="w1"}`:    1,
		`fleet_instance_stale{instance="w0"}`: 0,
		`fleet_instance_stale{instance="w1"}`: 0,
		`fleet_instances`:                     2,
	} {
		if got := snap[series]; got != any(want) {
			t.Errorf("%s = %v, want %d", series, got, want)
		}
	}

	// Histogram merge is exact bucket-wise: the fleet series equals the
	// bucket-by-bucket sum of its instance series.
	total, okT := snap[`serve_batch_size`].(obs.HistogramSnapshot)
	h0, ok0 := snap[`serve_batch_size{instance="w0"}`].(obs.HistogramSnapshot)
	h1, ok1 := snap[`serve_batch_size{instance="w1"}`].(obs.HistogramSnapshot)
	if !okT || !ok0 || !ok1 {
		t.Fatalf("batch histograms missing: %v %v %v", okT, ok0, ok1)
	}
	if total.Count != h0.Count+h1.Count || total.Count != 5 {
		t.Fatalf("batch count %d, want %d+%d=5", total.Count, h0.Count, h1.Count)
	}
	if total.Sum != h0.Sum+h1.Sum {
		t.Fatalf("batch sum %d != %d + %d", total.Sum, h0.Sum, h1.Sum)
	}
	byLe := map[uint64]uint64{}
	for _, h := range []obs.HistogramSnapshot{h0, h1} {
		for _, b := range h.Buckets {
			byLe[b.Le] += b.N
		}
	}
	gotLe := map[uint64]uint64{}
	for _, b := range total.Buckets {
		gotLe[b.Le] = b.N
	}
	if !reflect.DeepEqual(gotLe, byLe) {
		t.Fatalf("fleet buckets %v, bucket-wise sum %v", gotLe, byLe)
	}

	// The fixed trace ID is retrievable from the worker that served it,
	// with every pipeline stage populated.
	assertTraceRetrievable(t, w1, "fleet-e2e-trace")

	// Kill w1 and advance past the staleness window: the next round
	// marks it down and stale, but its last-good snapshot keeps the
	// fleet totals intact.
	w1.ts.Close()
	offset = 30 * time.Second
	if ok := scraper.ScrapeOnce(context.Background()); ok != 1 {
		t.Fatalf("post-kill round scraped %d, want 1 (w0 only)", ok)
	}
	status := map[string]InstanceStatus{}
	for _, st := range scraper.Status() {
		status[st.Name] = st
	}
	if st := status["w0"]; !st.Up || st.Stale || st.Failures != 0 {
		t.Errorf("w0 status %+v, want up and fresh", st)
	}
	if st := status["w1"]; st.Up || !st.Stale || st.Failures == 0 || st.Error == "" {
		t.Errorf("w1 status %+v, want down, stale, failed", st)
	}

	merged, err = scraper.Merged()
	if err != nil {
		t.Fatal(err)
	}
	snap = merged.Snapshot()
	for series, want := range map[string]uint64{
		`serve_requests_total{outcome="ok"}`:               5, // unchanged: w1's last-good still counts
		`serve_requests_total{outcome="ok",instance="w1"}`: 2,
		`fleet_scrape_errors_total{instance="w1"}`:         1,
	} {
		if got := snap[series]; got != any(want) {
			t.Errorf("after kill: %s = %v, want %d", series, got, want)
		}
	}
	for series, want := range map[string]int64{
		`fleet_instance_up{instance="w1"}`:    0,
		`fleet_instance_stale{instance="w1"}`: 1,
		`fleet_instance_up{instance="w0"}`:    1,
	} {
		if got := snap[series]; got != any(want) {
			t.Errorf("after kill: %s = %v, want %d", series, got, want)
		}
	}
}

// assertTraceRetrievable fetches the worker's /debug/traces and finds
// the record with the given trace ID, all stages present.
func assertTraceRetrievable(t *testing.T, w *worker, traceID string) {
	t.Helper()
	resp, err := http.Get(w.ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", resp.StatusCode)
	}
	found := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if rec.TraceID != traceID {
			continue
		}
		found = true
		if rec.Outcome != "ok" || rec.Status != http.StatusOK || rec.DurationNS <= 0 {
			t.Errorf("trace record %+v", rec)
		}
		if len(rec.Stages) != int(obs.NumStages) {
			t.Errorf("trace stages %v, want all %d", rec.Stages, obs.NumStages)
		}
		var sum int64
		for _, ns := range rec.Stages {
			sum += ns
		}
		if sum <= 0 {
			t.Errorf("trace accumulated no stage time: %v", rec.Stages)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("trace %q not in /debug/traces", traceID)
	}
}

// TestScraperNeverUpTarget: a target that never answers contributes no
// worker series but is fully marked in the health families.
func TestScraperNeverUpTarget(t *testing.T) {
	scraper, err := New(Config{
		Targets: []Target{{Name: "ghost", URL: "http://127.0.0.1:1/metrics"}},
		Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok := scraper.ScrapeOnce(context.Background()); ok != 0 {
		t.Fatalf("scraped %d targets, want 0", ok)
	}
	merged, err := scraper.Merged()
	if err != nil {
		t.Fatal(err)
	}
	snap := merged.Snapshot()
	if got := snap[`fleet_instance_up{instance="ghost"}`]; got != any(int64(0)) {
		t.Errorf("fleet_instance_up = %v, want 0", got)
	}
	if got := snap[`fleet_instance_stale{instance="ghost"}`]; got != any(int64(1)) {
		t.Errorf("fleet_instance_stale = %v, want 1", got)
	}
	if got := snap[`fleet_scrape_errors_total{instance="ghost"}`]; got != any(uint64(1)) {
		t.Errorf("fleet_scrape_errors_total = %v, want 1", got)
	}
	for name := range snap {
		if strings.HasPrefix(name, "serve_") {
			t.Errorf("ghost target contributed worker series %s", name)
		}
	}
}

// TestNewValidation: bad configs are refused up front.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := New(Config{Targets: []Target{{Name: "a"}}}); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := New(Config{Targets: []Target{
		{Name: "a", URL: "http://x/metrics"}, {Name: "a", URL: "http://y/metrics"},
	}}); err == nil {
		t.Error("duplicate instance name accepted")
	}
}
