// Package fleet aggregates the /metrics endpoints of many serving
// processes into one fleet view. A Scraper polls each worker on an
// interval with bounded concurrency and a per-target timeout, parses
// the Prometheus text it gets back (obs.ParsePrometheus), and keeps
// the last good snapshot per instance. Merged folds those snapshots
// with obs.Merge — counters and gauges sum, histograms add bucket-wise
// exactly — and annotates the result with the scraper's own health
// series, so a dead worker shows up as fleet_instance_up 0 instead of
// silently vanishing from the totals.
//
// Staleness is marked, not dropped: a worker that stops answering
// keeps contributing its last good snapshot (its counters are
// monotonic, so the fleet totals stay truthful about work already
// done) while fleet_instance_up and fleet_instance_stale flag that the
// numbers are no longer moving.
package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target names one worker's scrape endpoint.
type Target struct {
	// Name is the instance label stamped on the worker's series; ""
	// uses the URL.
	Name string
	// URL is the worker's full metrics endpoint, e.g.
	// "http://10.0.0.3:8080/metrics".
	URL string
}

func (t Target) name() string {
	if t.Name != "" {
		return t.Name
	}
	return t.URL
}

// Config parameterizes a Scraper. The zero value of each knob picks a
// usable default.
type Config struct {
	Targets []Target
	// Interval is Run's scrape period; ≤ 0 means 5s.
	Interval time.Duration
	// Timeout bounds one target's scrape (connect + read); ≤ 0 means
	// 2s.
	Timeout time.Duration
	// Concurrency bounds in-flight scrapes per round; ≤ 0 means 8.
	Concurrency int
	// StaleAfter is how old an instance's last good snapshot may grow
	// before the instance is marked stale; ≤ 0 means 3 × Interval.
	StaleAfter time.Duration
	// Client issues the scrapes; nil uses a dedicated client with
	// keep-alives (timeouts come from per-scrape contexts, not the
	// client).
	Client *http.Client
	// Logger, when non-nil, gets one debug line per failed scrape.
	Logger *obs.Logger
	// OnLiveness, when non-nil, is called after every scrape attempt
	// that changed an instance's up state (and after its first attempt,
	// whatever the outcome) — the sharding front's failover ladder feeds
	// on these transitions. Called outside the scraper's lock, from the
	// scraping goroutine; keep it cheap and non-blocking.
	OnLiveness func(instance string, up bool)
}

// instanceState is one target's scrape history. Guarded by Scraper.mu:
// scrapes of distinct targets run concurrently but publish under the
// same lock the readers (Merged, Status) take.
type instanceState struct {
	target      Target
	lastGood    *obs.ParsedMetrics
	lastGoodAt  time.Time
	lastErr     error
	lastAttempt time.Time
	scrapes     uint64
	failures    uint64
}

// Scraper polls a fixed set of workers and serves their merged view.
type Scraper struct {
	cfg    Config
	client *http.Client

	mu        sync.Mutex
	instances []*instanceState

	// now is the clock, swappable in tests to force staleness without
	// sleeping.
	now func() time.Time
}

// New builds a Scraper over cfg. Duplicate instance names are an
// error: the instance label is the per-worker identity in the merged
// view.
func New(cfg Config) (*Scraper, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("fleet: no scrape targets")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	}
	s := &Scraper{cfg: cfg, client: client, now: time.Now}
	seen := map[string]bool{}
	for _, t := range cfg.Targets {
		if t.URL == "" {
			return nil, fmt.Errorf("fleet: target %q has no URL", t.Name)
		}
		name := t.name()
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate instance name %q", name)
		}
		seen[name] = true
		s.instances = append(s.instances, &instanceState{target: t})
	}
	return s, nil
}

// ScrapeOnce polls every target once — at most Concurrency in flight,
// each bounded by Timeout — and returns how many succeeded.
func (s *Scraper) ScrapeOnce(ctx context.Context) int {
	sem := make(chan struct{}, s.cfg.Concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok := 0
	for _, inst := range s.instances {
		wg.Add(1)
		go func(inst *instanceState) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				s.record(inst, nil, ctx.Err())
				return
			}
			parsed, err := s.scrape(ctx, inst.target)
			s.record(inst, parsed, err)
			if err == nil {
				mu.Lock()
				ok++
				mu.Unlock()
			}
		}(inst)
	}
	wg.Wait()
	return ok
}

// scrape fetches and parses one target's metrics.
func (s *Scraper) scrape(ctx context.Context, t Target) (*obs.ParsedMetrics, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.URL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", t.URL, resp.StatusCode)
	}
	return obs.ParsePrometheus(body)
}

// record publishes one scrape attempt's outcome under the lock and
// feeds the liveness callback on up/down transitions.
func (s *Scraper) record(inst *instanceState, parsed *obs.ParsedMetrics, err error) {
	now := s.now()
	s.mu.Lock()
	wasUp := inst.scrapes > 0 && inst.lastErr == nil
	first := inst.scrapes == 0
	inst.lastAttempt = now
	inst.scrapes++
	if err != nil {
		inst.failures++
		inst.lastErr = err
	} else {
		inst.lastErr = nil
		inst.lastGood = parsed
		inst.lastGoodAt = now
	}
	up := inst.lastErr == nil
	s.mu.Unlock()
	if s.cfg.OnLiveness != nil && (first || up != wasUp) {
		s.cfg.OnLiveness(inst.target.name(), up)
	}
	if err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Debug("fleet scrape failed",
			obs.F("instance", inst.target.name()), obs.F("error", err.Error()))
	}
}

// Run scrapes immediately, then on every Interval tick until ctx ends.
func (s *Scraper) Run(ctx context.Context) {
	s.ScrapeOnce(ctx)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.ScrapeOnce(ctx)
		}
	}
}

// InstanceStatus is one worker's scrape health.
type InstanceStatus struct {
	Name string `json:"instance"`
	URL  string `json:"url"`
	// Up reports whether the most recent scrape attempt succeeded.
	Up bool `json:"up"`
	// Stale reports whether the last good snapshot is older than
	// StaleAfter (or was never obtained): the instance's series are
	// still merged but no longer moving.
	Stale      bool      `json:"stale"`
	LastScrape time.Time `json:"last_scrape"`
	Error      string    `json:"error,omitempty"`
	Scrapes    uint64    `json:"scrapes"`
	Failures   uint64    `json:"failures"`
}

// Up reports whether the named instance's most recent scrape attempt
// succeeded — false for unknown names and instances never scraped. The
// synchronous counterpart of the OnLiveness callback.
func (s *Scraper) Up(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, inst := range s.instances {
		if inst.target.name() == name {
			return inst.scrapes > 0 && inst.lastErr == nil
		}
	}
	return false
}

// Status reports every instance's health, sorted by name.
func (s *Scraper) Status() []InstanceStatus {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]InstanceStatus, 0, len(s.instances))
	for _, inst := range s.instances {
		st := InstanceStatus{
			Name:       inst.target.name(),
			URL:        inst.target.URL,
			Up:         inst.scrapes > 0 && inst.lastErr == nil,
			Stale:      inst.lastGood == nil || now.Sub(inst.lastGoodAt) > s.cfg.StaleAfter,
			LastScrape: inst.lastGoodAt,
			Scrapes:    inst.scrapes,
			Failures:   inst.failures,
		}
		if inst.lastErr != nil {
			st.Error = inst.lastErr.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merged folds every instance's last good snapshot into one fleet view
// (see obs.Merge for the exactness guarantees), then appends the
// scraper's own health families: fleet_instance_up and
// fleet_instance_stale per instance, fleet_scrapes_total and
// fleet_scrape_errors_total per instance, and a fleet_instances gauge.
// Instances that never answered contribute no worker series but still
// appear in the health families.
func (s *Scraper) Merged() (*obs.ParsedMetrics, error) {
	snapshots := map[string]*obs.ParsedMetrics{}
	s.mu.Lock()
	for _, inst := range s.instances {
		if inst.lastGood != nil {
			snapshots[inst.target.name()] = inst.lastGood
		}
	}
	s.mu.Unlock()
	merged, err := obs.Merge(snapshots)
	if err != nil {
		return nil, err
	}
	status := s.Status()

	up := &obs.ParsedFamily{Name: "fleet_instance_up",
		Help: "1 if the most recent scrape of this instance succeeded", Kind: "gauge"}
	stale := &obs.ParsedFamily{Name: "fleet_instance_stale",
		Help: "1 if this instance's snapshot is older than the staleness window", Kind: "gauge"}
	scrapes := &obs.ParsedFamily{Name: "fleet_scrapes_total",
		Help: "scrape attempts per instance", Kind: "counter"}
	failures := &obs.ParsedFamily{Name: "fleet_scrape_errors_total",
		Help: "failed scrape attempts per instance", Kind: "counter"}
	for _, st := range status {
		lbl := []obs.Label{{Key: obs.InstanceLabel, Value: st.Name}}
		up.Series = append(up.Series, &obs.ParsedSeries{Labels: lbl, Gauge: b2i(st.Up)})
		stale.Series = append(stale.Series, &obs.ParsedSeries{Labels: lbl, Gauge: b2i(st.Stale)})
		scrapes.Series = append(scrapes.Series, &obs.ParsedSeries{Labels: lbl, Counter: st.Scrapes})
		failures.Series = append(failures.Series, &obs.ParsedSeries{Labels: lbl, Counter: st.Failures})
	}
	count := &obs.ParsedFamily{Name: "fleet_instances",
		Help: "scrape targets configured", Kind: "gauge",
		Series: []*obs.ParsedSeries{{Gauge: int64(len(status))}}}
	merged.Families = append(merged.Families, up, stale, scrapes, failures, count)
	return merged, nil
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
