package obs

import (
	"bytes"
	"testing"
)

// fuzzSeedExport renders a live registry — counter, labeled counters,
// gauge, and a populated histogram — exactly as a worker's GET /metrics
// would.
func fuzzSeedExport() []byte {
	reg := NewRegistry()
	reg.Counter("serve_requests_total", "requests by outcome",
		Label{Key: "outcome", Value: "ok"}).Add(42)
	reg.Counter("serve_requests_total", "requests by outcome",
		Label{Key: "outcome", Value: "error"}).Inc()
	reg.Gauge("serve_in_flight", "requests currently in the handler").Add(3)
	h := reg.Histogram("serve_latency_us", "request latency in microseconds")
	for _, v := range []uint64{0, 1, 2, 7, 100, 5000, 1 << 20} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	return buf.Bytes()
}

// FuzzParsePrometheus fuzzes the scrape parser with arbitrary text. The
// invariants: no panic on any input, and any text the parser accepts
// must re-emit through WritePrometheus as a canonical form that parses
// again and re-emits byte-identically (write is a fixed point after one
// normalization pass).
func FuzzParsePrometheus(f *testing.F) {
	f.Add(fuzzSeedExport())
	f.Add([]byte("# HELP a help text\n# TYPE a counter\na 1\n"))
	f.Add([]byte("# TYPE g gauge\ng{k=\"v\",k2=\"with \\\"quotes\\\" and \\\\\"} -5\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"0\"} 1\nh_bucket{le=\"1\"} 2\n" +
		"h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"))
	f.Add([]byte("# HELP only-help no type line\n"))
	f.Add([]byte("# TYPE a counter\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := ParsePrometheus(data)
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := p1.WritePrometheus(&b1); err != nil {
			t.Fatalf("accepted input does not re-emit: %v", err)
		}
		p2, err := ParsePrometheus(b1.Bytes())
		if err != nil {
			t.Fatalf("re-emitted text does not re-parse: %v\n%s", err, b1.Bytes())
		}
		var b2 bytes.Buffer
		if err := p2.WritePrometheus(&b2); err != nil {
			t.Fatalf("re-parsed metrics do not re-emit: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write is not a fixed point:\nfirst:\n%s\nsecond:\n%s", b1.Bytes(), b2.Bytes())
		}
	})
}
