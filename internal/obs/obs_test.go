package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrent hammers one counter, gauge, and histogram from
// many goroutines and requires exact totals — the race gate runs this
// with -race, so it doubles as the data-race check for the atomics.
func TestCountersConcurrent(t *testing.T) {
	const goroutines, per = 16, 10000
	r := NewRegistry()
	c := r.Counter("hammer_total", "test counter")
	g := r.Gauge("hammer_gauge", "test gauge")
	h := r.Histogram("hammer_hist", "test histogram")
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i%7) * 100)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter %d, want %d", got, goroutines*per)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("histogram count %d, want %d", got, goroutines*per)
	}
	// Each goroutine observes 0,100,…,600 cyclically: per/7 ≈ 1428 full
	// cycles plus a deterministic remainder; sum it directly instead.
	var want uint64
	for i := 0; i < per; i++ {
		want += uint64(i%7) * 100
	}
	want *= goroutines
	if got := h.Sum(); got != want {
		t.Fatalf("histogram sum %d, want %d", got, want)
	}
}

// TestRegistryReusesSeries: registering the same name+labels twice must
// return the same handle (idempotent wiring), different labels a
// different one, and a kind collision must panic.
func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{Key: "k", Value: "a"})
	b := r.Counter("x_total", "", Label{Key: "k", Value: "a"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "", Label{Key: "k", Value: "b"}); c == a {
		t.Fatal("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestRegisterDuringExport interleaves lazy registration of new labeled
// series — the serving layer's per-registry counter pattern — with
// concurrent WritePrometheus and Snapshot exports. Race-gated: the
// exports sort and read the series slices the registrations grow, so
// this is the check that snapshots copy under the registry lock.
func TestRegisterDuringExport(t *testing.T) {
	const writers, perWriter, scrapes = 4, 50, 2
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("lazy_total", "per-entry counter",
					Label{Key: "entry", Value: fmt.Sprintf("w%d-%d", w, i)}).Inc()
				r.Histogram("lazy_ns", "per-entry histogram",
					Label{Key: "entry", Value: fmt.Sprintf("w%d-%d", w, i)}).Observe(uint64(i))
			}
		}(w)
	}
	for s := 0; s < scrapes; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf(`lazy_total{entry="w%d-%d"}`, w, i)
			if got := snap[key]; got != uint64(1) {
				t.Fatalf("%s = %v, want 1", key, got)
			}
		}
	}
}

// TestPrometheusOutput pins the text-format layout for a deterministic
// registry — the shape GET /metrics serves.
func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests by outcome", Label{Key: "outcome", Value: "ok"}).Add(3)
	r.Counter("req_total", "requests by outcome", Label{Key: "outcome", Value: "err"}).Add(1)
	r.Gauge("in_flight", "open requests").Set(2)
	h := r.Histogram("lat_ns", "latency")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5) // bucket le=7
	h.Observe(5)
	r.CounterFunc("fn_total", "function-backed", func() uint64 { return 42 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP fn_total function-backed",
		"# TYPE fn_total counter",
		"fn_total 42",
		"# HELP in_flight open requests",
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# HELP lat_ns latency",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="0"} 1`,
		`lat_ns_bucket{le="1"} 2`,
		`lat_ns_bucket{le="3"} 2`,
		`lat_ns_bucket{le="7"} 4`,
		`lat_ns_bucket{le="+Inf"} 4`,
		"lat_ns_sum 11",
		"lat_ns_count 4",
		"# HELP req_total requests by outcome",
		"# TYPE req_total counter",
		`req_total{outcome="err"} 1`,
		`req_total{outcome="ok"} 3`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshot checks the flat map /debug/vars marshals: counters as
// numbers, histograms as {count, sum, buckets}.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", Label{Key: "k", Value: "v"}).Add(7)
	h := r.Histogram("b_ns", "")
	h.Observe(100)
	snap := r.Snapshot()
	if got := snap[`a_total{k="v"}`]; got != uint64(7) {
		t.Fatalf("counter snapshot %v", got)
	}
	hs, ok := snap["b_ns"].(HistogramSnapshot)
	if !ok || hs.Count != 1 || hs.Sum != 100 {
		t.Fatalf("histogram snapshot %+v", snap["b_ns"])
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 127 || hs.Buckets[0].N != 1 {
		t.Fatalf("buckets %+v", hs.Buckets)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

// TestNilHandles: every handle method must be a safe no-op on nil, the
// contract that lets un-instrumented paths skip wiring entirely.
func TestNilHandles(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var l *Logger
	c.Inc()
	c.Add(3)
	g.Add(1)
	g.Set(9)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.Add(StageDecode, time.Second)
	l.Info("dropped")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.NS(StageDecode) != 0 || l.Enabled(LevelError) {
		t.Fatal("nil handles must read as zero")
	}
}

// TestTraceConcurrent charges one stage from many goroutines — the
// batch worker-pool pattern — and requires the exact total.
func TestTraceConcurrent(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add(StageEstimate, 3*time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := tr.NS(StageEstimate); got != 8*1000*3 {
		t.Fatalf("trace ns %d, want %d", got, 8*1000*3)
	}
}

// TestLoggerLine pins one log line byte for byte (clock pinned) and
// checks level filtering.
func TestLoggerLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(func() time.Time {
		return time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	})
	l.Debug("dropped", F("k", 1))
	l.Info("served", F("status", 200), F("registry", "refit-default"), F("stages", map[string]int64{"decode": 10}))
	want := `{"ts":"2026-08-07T10:00:00Z","level":"info","msg":"served","status":200,"registry":"refit-default","stages":{"decode":10}}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("log line:\n%q\nwant:\n%q", got, want)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

// TestLoggerConcurrent writes from many goroutines and requires every
// line to stay intact (no interleaving) — race-gated.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewLogger(safe, LevelDebug)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Debug("line", F("w", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("%d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("interleaved line %q: %v", line, err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
