package obs

import (
	"fmt"
	"sort"
)

// InstanceLabel is the label key Merge stamps on per-source series.
const InstanceLabel = "instance"

// Merge combines per-process metric snapshots into one fleet view. For
// every series it emits both
//
//   - a fleet-wide total under the original labels — counters and
//     gauges sum, histograms merge bucket-wise (the log₂ bounds are
//     fixed across processes, so bucket addition is exact: the merged
//     histogram is identical to one process having made every
//     observation), and
//   - one series per source instance, the original labels plus
//     instance="<name>", so per-worker numbers stay inspectable next
//     to the totals.
//
// Families keep the first non-empty help string; a metric name
// declared with different types across instances is a wiring error and
// fails the merge. Instances are folded in name order, so the result
// is deterministic.
func Merge(instances map[string]*ParsedMetrics) (*ParsedMetrics, error) {
	names := make([]string, 0, len(instances))
	for name := range instances {
		names = append(names, name)
	}
	sort.Strings(names)

	type mergedSeries struct {
		total       *ParsedSeries
		perInstance []*ParsedSeries
	}
	type mergedFamily struct {
		fam    *ParsedFamily
		byKey  map[string]*mergedSeries
		order  []string
		merged []*mergedSeries
	}
	byName := map[string]*mergedFamily{}
	out := &ParsedMetrics{}

	for _, inst := range names {
		for _, f := range instances[inst].Families {
			mf := byName[f.Name]
			if mf == nil {
				mf = &mergedFamily{
					fam:   &ParsedFamily{Name: f.Name, Help: f.Help, Kind: f.Kind},
					byKey: map[string]*mergedSeries{},
				}
				byName[f.Name] = mf
				out.Families = append(out.Families, mf.fam)
			}
			if mf.fam.Kind != f.Kind {
				return nil, fmt.Errorf("obs: merge: metric %q is %s on one instance and %s on %s",
					f.Name, mf.fam.Kind, f.Kind, inst)
			}
			if mf.fam.Help == "" {
				mf.fam.Help = f.Help
			}
			for _, s := range f.Series {
				key := s.Key()
				ms := mf.byKey[key]
				if ms == nil {
					ms = &mergedSeries{total: &ParsedSeries{
						Labels: append([]Label(nil), s.Labels...),
					}}
					if f.Kind == "histogram" {
						ms.total.Hist = &HistogramSnapshot{}
					}
					mf.byKey[key] = ms
					mf.order = append(mf.order, key)
					mf.merged = append(mf.merged, ms)
				}
				switch f.Kind {
				case "counter":
					ms.total.Counter += s.Counter
				case "gauge":
					ms.total.Gauge += s.Gauge
				default:
					addHistogram(ms.total.Hist, s.Hist)
				}
				withInst := append(append([]Label(nil), s.Labels...), Label{Key: InstanceLabel, Value: inst})
				ms.perInstance = append(ms.perInstance, &ParsedSeries{
					Labels: withInst, Counter: s.Counter, Gauge: s.Gauge, Hist: cloneHist(s.Hist),
				})
			}
		}
	}

	for _, mf := range byName {
		for _, ms := range mf.merged {
			mf.fam.Series = append(mf.fam.Series, ms.total)
			mf.fam.Series = append(mf.fam.Series, ms.perInstance...)
		}
	}
	// Present in the stable export order; WritePrometheus re-sorts too,
	// but consumers reading Families directly get determinism for free.
	out.Families = out.sorted()
	return out, nil
}

// addHistogram folds src into dst bucket-wise. Both use the fixed log₂
// bounds, so the addition is exact.
func addHistogram(dst *HistogramSnapshot, src *HistogramSnapshot) {
	if src == nil {
		return
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
	if len(src.Buckets) == 0 {
		return
	}
	byLe := make(map[uint64]uint64, len(dst.Buckets)+len(src.Buckets))
	for _, b := range dst.Buckets {
		byLe[b.Le] += b.N
	}
	for _, b := range src.Buckets {
		byLe[b.Le] += b.N
	}
	merged := make([]BucketSnapshot, 0, len(byLe))
	for le, n := range byLe {
		merged = append(merged, BucketSnapshot{Le: le, N: n})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Le < merged[j].Le })
	dst.Buckets = merged
}

func cloneHist(h *HistogramSnapshot) *HistogramSnapshot {
	if h == nil {
		return nil
	}
	cp := &HistogramSnapshot{Count: h.Count, Sum: h.Sum}
	cp.Buckets = append(cp.Buckets, h.Buckets...)
	return cp
}
