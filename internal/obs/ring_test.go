package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRingBasics(t *testing.T) {
	var nilRing *TraceRing
	nilRing.Push(TraceRecord{TraceID: "x"}) // no-op, no panic
	if nilRing.Total() != 0 || nilRing.Cap() != 0 || nilRing.Records() != nil {
		t.Fatal("nil ring should be empty")
	}

	r := NewTraceRing(4)
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring reported a last record")
	}
	for i := 1; i <= 6; i++ {
		r.Push(TraceRecord{TraceID: fmt.Sprintf("t%d", i), Status: 200, Outcome: "ok"})
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 holds %d records", len(recs))
	}
	// Oldest two were overwritten; survivors are t3..t6 oldest-first.
	for i, want := range []string{"t3", "t4", "t5", "t6"} {
		if recs[i].TraceID != want {
			t.Errorf("record %d = %s, want %s", i, recs[i].TraceID, want)
		}
		if recs[i].Seq != uint64(i+3) {
			t.Errorf("record %d seq = %d, want %d", i, recs[i].Seq, i+3)
		}
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	last, ok := r.Last()
	if !ok || last.TraceID != "t6" {
		t.Errorf("Last = %+v, want t6", last)
	}
}

func TestTraceRingLineJSON(t *testing.T) {
	r := NewTraceRing(8)
	tr := &Trace{}
	tr.Add(StageDecode, 100)
	tr.Add(StageEstimate, 2500)
	tr.Begin(time.Unix(0, 1000))
	tr.Finish(time.Unix(0, 4000), "ok")
	rec := TraceRecord{
		TraceID:       "abc-1",
		StartUnixNano: tr.Start.UnixNano(),
		DurationNS:    tr.Duration().Nanoseconds(),
		Status:        200,
		Outcome:       tr.Outcome,
		Registry:      "test",
		Scenarios:     3,
	}
	rec.StagesFrom(tr)
	r.Push(rec)
	r.Push(TraceRecord{TraceID: "abc-2", Status: 504, Outcome: "deadline_exceeded"})

	var buf bytes.Buffer
	if err := r.WriteLineJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var got TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "abc-1" || got.DurationNS != 3000 || got.Outcome != "ok" {
		t.Errorf("decoded %+v", got)
	}
	// All six stages present even when only two accumulated time.
	if len(got.Stages) != int(NumStages) {
		t.Errorf("stage keys = %d, want %d (%v)", len(got.Stages), NumStages, got.Stages)
	}
	if got.Stages["estimate"] != 2500 || got.Stages["decode"] != 100 {
		t.Errorf("stage values %v", got.Stages)
	}
}

// TestTraceRingConcurrent hammers the ring from parallel writers while
// readers scrape it — the race-gated proof that Push and Records can
// interleave freely (CI runs this package under -race).
func TestTraceRingConcurrent(t *testing.T) {
	const writers, perWriter, readers = 8, 500, 4
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range r.Records() {
					if rec.TraceID == "" {
						t.Error("scraped a half-written record")
						return
					}
				}
				r.Last()
				var sink bytes.Buffer
				r.WriteLineJSON(&sink)
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			tr := &Trace{}
			tr.Add(StageEncode, time.Duration(g))
			for i := 0; i < perWriter; i++ {
				rec := TraceRecord{TraceID: fmt.Sprintf("w%d-%d", g, i), Status: 200, Outcome: "ok"}
				rec.StagesFrom(tr)
				r.Push(rec)
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	recs := r.Records()
	if len(recs) != 64 {
		t.Fatalf("ring holds %d records, want 64", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order: seq %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
}
