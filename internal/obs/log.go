package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level is a log severity. Debug is below Info, so a Logger at Info
// drops the per-request access logs but keeps lifecycle messages.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's JSON value.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves "debug", "info", "warn", or "error".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Field is one key/value of a structured log line. Fields keep their
// call-site order in the output, unlike a marshaled map.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes one JSON object per line:
//
//	{"ts":"2026-08-07T10:00:00.000000Z","level":"info","msg":"…",…}
//
// Lines are written atomically under a mutex, so concurrent request
// handlers never interleave. A nil *Logger drops everything, and
// Enabled lets hot paths skip assembling fields entirely.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level

	// now stamps the ts field; nil means time.Now. Tests pin it for
	// byte-stable lines.
	now func() time.Time
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// WithClock pins the timestamp source (tests) and returns the logger.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	l.now = now
	return l
}

// Enabled reports whether lvl would be written — the guard that keeps
// disabled access logging at one branch per request.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl >= l.min
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.Log(LevelInfo, msg, fields...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }

// Log writes one line at lvl with the fields in order.
func (l *Logger) Log(lvl Level, msg string, fields ...Field) {
	if !l.Enabled(lvl) {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	buf = strconv.AppendQuote(buf, now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":"`...)
	buf = append(buf, lvl.String()...)
	buf = append(buf, `","msg":`...)
	buf = strconv.AppendQuote(buf, msg)
	for _, f := range fields {
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, f.Key)
		buf = append(buf, ':')
		if v, err := json.Marshal(f.Value); err == nil {
			buf = append(buf, v...)
		} else {
			buf = strconv.AppendQuote(buf, fmt.Sprint(f.Value))
		}
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}
