package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is a valid no-op, so instrumented code
// needs no "is observability on?" branches of its own.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (in-flight
// requests, pool sizes). A nil *Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numHistBuckets is one bucket per uint64 bit length: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v ∈ [2^(i−1), 2^i − 1]
// (bucket 0 holds exactly v = 0).
const numHistBuckets = 65

// Histogram is a log₂-bucketed histogram of non-negative integer
// observations (typically nanosecond durations or batch sizes). An
// observation is two atomic adds — no locks, no allocation; the
// observation count is derived from the buckets at read time, keeping
// the write path minimal. A nil *Histogram is a valid no-op.
//
// Readers (snapshot, Prometheus export) see each bucket atomically but
// not the set of buckets as one transaction; totals can be transiently
// off by in-flight observations, which is fine for monitoring.
type Histogram struct {
	sum     atomic.Uint64
	buckets [numHistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds; negative durations
// clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations (summed over the buckets).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// bucketBound is bucket i's inclusive upper bound: 0, 1, 3, 7, …,
// 2^i − 1 (the last bucket tops out at the uint64 maximum).
func bucketBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Label is one metric dimension, rendered Prometheus-style:
// name{key="value"}.
type Label struct{ Key, Value string }

// kind is a metric family's type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family's kind; fn, when non-nil,
// overrides counter/gauge reads at export time (CounterFunc).
type series struct {
	labels []Label
	key    string // rendered labels, the family's dedup key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() uint64
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
}

// Registry is a named collection of metrics. Registration
// (Counter/Gauge/Histogram/CounterFunc) takes a mutex and is meant for
// setup time; the returned handles are then updated lock-free, and
// exports only read atomics. Registering the same name+labels twice
// returns the same handle, so wiring code can be idempotent.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, nil).counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, nil).gauge
}

// Histogram registers (or finds) a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels, nil).hist
}

// CounterFunc registers a counter whose value is read from fn at export
// time — for totals owned elsewhere (e.g. the sim kernel's process-wide
// event counters). Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, labels, fn)
}

// register finds or creates the series for name+labels, panicking on a
// kind collision — that is a wiring bug, not a runtime condition. All
// series mutation (value allocation, fn replacement, the family append)
// happens under r.mu; exports snapshot under the same lock, so lazy
// registration on the request path stays safe against concurrent
// scrapes.
func (r *Registry) register(name, help string, k kind, labels []Label, fn func() uint64) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	for _, s := range f.series {
		if s.key == key {
			if fn != nil {
				s.fn = fn
			}
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, fn: fn}
	switch k {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{}
	}
	f.series = append(f.series, s)
	return s
}

// sortedFamilies returns a point-in-time copy of the families sorted by
// name, each with its series sorted by rendered labels — the stable
// export order. Families and series structs are copied under r.mu so
// concurrent registration (or another scrape sorting its own copy)
// never touches the slices this caller sorts and reads; the metric
// values behind the copied handles stay live atomics.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		cp := &family{name: f.name, help: f.help, kind: f.kind,
			series: make([]*series, len(f.series))}
		for i, s := range f.series {
			sc := *s
			cp.series[i] = &sc
		}
		out = append(out, cp)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, f := range out {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	}
	return out
}

// renderLabels formats {k="v",…}, empty for no labels. Values are
// escaped per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
