// Package obs is the observability core: allocation-lean metrics
// (atomic counters, gauges, log₂-bucketed latency histograms), a
// registry that snapshots without locks on the hot path, per-request
// trace spans, and a structured JSON logger.
//
// The package has no dependencies beyond the standard library and sits
// below every instrumented layer: serve counts requests and stage
// latencies, estimate counts memo and expression-store traffic, sweep
// counts cache hits and phase timings, and sim exports kernel
// event/wakeup totals. Metric handles (*Counter, *Gauge, *Histogram)
// are obtained once at setup through Registry and then updated with
// single atomic operations — the registry's mutex guards registration
// only, never a read or an update, so the serving hot path is
// lock-free. All handle methods are nil-receiver safe no-ops, so
// un-instrumented configurations pay one branch per update site.
//
// Export formats:
//
//   - Registry.WritePrometheus emits the Prometheus text format
//     (counters, gauges, and cumulative histogram buckets), no
//     dependency required — GET /metrics in internal/serve.
//   - Registry.Snapshot returns a flat name→value map for JSON
//     surfaces — GET /debug/vars in internal/serve, the shutdown
//     snapshot in cmd/serve, and `cmd/sweep -obs`.
//
// Trace records the per-stage breakdown of one request (decode →
// resolve → calibrate → estimate → bounds → encode) with atomic adds,
// so concurrent scenario workers can charge their shares of a batch.
// Logger writes one JSON object per line with ordered fields; access
// logs attach the trace's span timings at debug level.
package obs
