package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// ParsedSeries is one labeled series of a parsed family. Exactly one of
// the value fields is meaningful, matching the family's Kind.
type ParsedSeries struct {
	Labels  []Label
	Counter uint64
	Gauge   int64
	Hist    *HistogramSnapshot
}

// Key renders the series labels — the family's dedup and sort key.
func (s *ParsedSeries) Key() string { return renderLabels(s.Labels) }

// ParsedFamily is all parsed series sharing one metric name.
type ParsedFamily struct {
	Name, Help string
	Kind       string // "counter", "gauge", or "histogram"
	Series     []*ParsedSeries
}

// ParsedMetrics is a typed snapshot recovered from the Prometheus text
// format — what one scrape of a worker's GET /metrics yields. It
// round-trips exactly with Registry.WritePrometheus: parsing an export
// and re-writing it reproduces the bytes, and Snapshot reproduces
// Registry.Snapshot.
type ParsedMetrics struct {
	Families []*ParsedFamily
}

// histKey groups one histogram series' text lines by its labels minus
// the synthetic le dimension.
type histAssembly struct {
	labels []Label
	// cum is the cumulative count of the last bucket line seen; buckets
	// holds the recovered per-bucket counts.
	cum     uint64
	buckets []BucketSnapshot
	sum     uint64
	count   uint64
	sawInf  bool
}

// ParsePrometheus parses the subset of the Prometheus text exposition
// format that WritePrometheus emits: # HELP / # TYPE headers, integer
// counter and gauge samples, and histograms as cumulative le-bounded
// buckets over the fixed log₂ bounds (0, 1, 3, 7, …, 2^i − 1) plus
// _sum and _count. Families keep their input order; Snapshot and
// WritePrometheus sort, matching the Registry exports.
func ParsePrometheus(data []byte) (*ParsedMetrics, error) {
	out := &ParsedMetrics{}
	byName := map[string]*ParsedFamily{}
	// Histogram series under assembly: family name → rendered labels
	// (minus le) → builder.
	hists := map[string]map[string]*histAssembly{}
	histOrder := map[string][]string{}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // an unknown comment form; ignore like Prometheus does
			}
			f := byName[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				byName[name] = f
				out.Families = append(out.Families, f)
			}
			switch kind {
			case "HELP":
				f.Help = rest
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram":
					// A family has exactly one type; re-typing it would leave
					// already-parsed series with the wrong value shape.
					if f.Kind != "" && f.Kind != rest {
						return nil, fmt.Errorf("obs: line %d: metric %s re-typed %s → %s", lineNo, name, f.Kind, rest)
					}
					f.Kind = rest
				default:
					return nil, fmt.Errorf("obs: line %d: unsupported metric type %q", lineNo, rest)
				}
				if rest == "histogram" && hists[name] == nil {
					hists[name] = map[string]*histAssembly{}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		// Histogram sample lines carry the family name plus a _bucket,
		// _sum, or _count suffix.
		if base, suffix, ok := histBase(name, hists); ok {
			if err := addHistSample(hists[base], histOrder, base, suffix, labels, value); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		f := byName[name]
		if f == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q precedes its # TYPE header", lineNo, name)
		}
		s := &ParsedSeries{Labels: labels}
		switch f.Kind {
		case "counter":
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: counter %s: %w", lineNo, name, err)
			}
			s.Counter = v
		case "gauge":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: gauge %s: %w", lineNo, name, err)
			}
			s.Gauge = v
		default:
			return nil, fmt.Errorf("obs: line %d: sample %q has no usable # TYPE", lineNo, name)
		}
		f.Series = append(f.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics text: %w", err)
	}
	// Fold the assembled histograms into their families, preserving the
	// order their first line appeared in.
	for name, perLabels := range hists {
		f := byName[name]
		for _, key := range histOrder[name] {
			h := perLabels[key]
			if !h.sawInf {
				return nil, fmt.Errorf("obs: histogram %s%s is missing its +Inf bucket", name, key)
			}
			f.Series = append(f.Series, &ParsedSeries{
				Labels: h.labels,
				Hist:   &HistogramSnapshot{Count: h.count, Sum: h.sum, Buckets: h.buckets},
			})
		}
	}
	return out, nil
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample splits one sample line into name, labels, and the raw
// value text.
func parseSample(line string) (name string, labels []Label, value string, err error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", nil, "", fmt.Errorf("unparseable sample line %q", line)
	}
	nameAndLabels, value := line[:i], line[i+1:]
	if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
		if !strings.HasSuffix(nameAndLabels, "}") {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		name = nameAndLabels[:j]
		labels, err = parseLabels(nameAndLabels[j+1 : len(nameAndLabels)-1])
		if err != nil {
			return "", nil, "", fmt.Errorf("labels of %q: %w", line, err)
		}
	} else {
		name = nameAndLabels
	}
	return name, labels, value, nil
}

// parseLabels decodes `k="v",k2="v2"` with the text format's escapes.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, fmt.Errorf("unterminated label value for %q", key)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("dangling escape in label value for %q", key)
				}
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c in label value for %q", rest[i+1], key)
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, Label{Key: key, Value: b.String()})
		s = rest[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between label pairs, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// histBase reports whether name is a histogram sample of a declared
// histogram family, returning the family name and the _bucket/_sum/
// _count suffix.
func histBase(name string, hists map[string]map[string]*histAssembly) (base, suffix string, ok bool) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suffix); found {
			if _, declared := hists[base]; declared {
				return base, suffix, true
			}
		}
	}
	return "", "", false
}

// addHistSample folds one _bucket/_sum/_count line into its series
// assembly, recovering per-bucket counts from the cumulative text form.
func addHistSample(perLabels map[string]*histAssembly, order map[string][]string, base, suffix string, labels []Label, value string) error {
	// The le label is synthetic: strip it before keying the series.
	le := ""
	kept := labels
	if suffix == "_bucket" {
		kept = make([]Label, 0, len(labels))
		for _, l := range labels {
			if l.Key == "le" {
				le = l.Value
				continue
			}
			kept = append(kept, l)
		}
		if le == "" {
			return fmt.Errorf("histogram %s bucket without an le label", base)
		}
	}
	key := renderLabels(kept)
	h := perLabels[key]
	if h == nil {
		h = &histAssembly{labels: kept}
		perLabels[key] = h
		order[base] = append(order[base], key)
	}
	v, err := strconv.ParseUint(value, 10, 64)
	if err != nil {
		return fmt.Errorf("histogram %s%s value: %w", base, suffix, err)
	}
	switch suffix {
	case "_sum":
		h.sum = v
	case "_count":
		h.count = v
	case "_bucket":
		if le == "+Inf" {
			h.sawInf = true
			// All observations live in the finite log₂ buckets, so +Inf
			// only restates the last cumulative value; a larger value
			// would mean observations this parser cannot place.
			if v < h.cum {
				return fmt.Errorf("histogram %s: +Inf bucket %d below cumulative %d", base, v, h.cum)
			}
			if v > h.cum {
				return fmt.Errorf("histogram %s: %d observations beyond the log2 bucket bounds", base, v-h.cum)
			}
			return nil
		}
		bound, err := strconv.ParseUint(le, 10, 64)
		if err != nil {
			return fmt.Errorf("histogram %s le=%q: %w", base, le, err)
		}
		if _, err := bucketIndex(bound); err != nil {
			return fmt.Errorf("histogram %s: %w", base, err)
		}
		if v < h.cum {
			return fmt.Errorf("histogram %s: bucket le=%s cumulative %d below previous %d", base, le, v, h.cum)
		}
		if n := v - h.cum; n > 0 {
			h.buckets = append(h.buckets, BucketSnapshot{Le: bound, N: n})
		}
		h.cum = v
	}
	return nil
}

// bucketIndex inverts bucketBound: 0 → 0, 2^i − 1 → i.
func bucketIndex(bound uint64) (int, error) {
	if bound == 0 {
		return 0, nil
	}
	i := bits.Len64(bound)
	if bucketBound(i) != bound {
		return 0, fmt.Errorf("le=%d is not a log2 bucket bound", bound)
	}
	return i, nil
}

// Snapshot flattens the parsed metrics into the Registry.Snapshot
// shape: "name{labels}" → uint64 (counter), int64 (gauge), or
// HistogramSnapshot.
func (p *ParsedMetrics) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range p.Families {
		for _, s := range f.Series {
			name := f.Name + s.Key()
			switch f.Kind {
			case "counter":
				out[name] = s.Counter
			case "gauge":
				out[name] = s.Gauge
			default:
				out[name] = *s.Hist
			}
		}
	}
	return out
}

// sorted returns the families sorted by name, each with series sorted
// by rendered labels — the stable export order, matching
// Registry.sortedFamilies.
func (p *ParsedMetrics) sorted() []*ParsedFamily {
	fams := make([]*ParsedFamily, len(p.Families))
	copy(fams, p.Families)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		sort.Slice(f.Series, func(i, j int) bool { return f.Series[i].Key() < f.Series[j].Key() })
	}
	return fams
}

// WritePrometheus re-emits the parsed metrics in the same text format
// Registry.WritePrometheus produces; parse → write round-trips
// byte-identically.
func (p *ParsedMetrics) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range p.sorted() {
		if f.Kind == "" {
			// A HELP-only family (no # TYPE ever arrived) can carry no
			// samples; an empty-kind TYPE line would not re-parse.
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case "counter":
				fmt.Fprintf(bw, "%s%s %d\n", f.Name, s.Key(), s.Counter)
			case "gauge":
				fmt.Fprintf(bw, "%s%s %d\n", f.Name, s.Key(), s.Gauge)
			default:
				writeParsedHistogram(bw, f.Name, s)
			}
		}
	}
	return bw.Flush()
}

// writeParsedHistogram mirrors writePromHistogram over a recovered
// snapshot: cumulative buckets up to the highest non-empty bound, then
// +Inf, _sum, and _count.
func writeParsedHistogram(w io.Writer, name string, s *ParsedSeries) {
	var counts [numHistBuckets]uint64
	top := -1
	for _, b := range s.Hist.Buckets {
		i, err := bucketIndex(b.Le)
		if err != nil {
			continue // unreachable for rings built by ParsePrometheus or Merge
		}
		counts[i] += b.N
		if i > top {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(s.Labels, strconv.FormatUint(bucketBound(i), 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(s.Labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.Key(), s.Hist.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.Key(), s.Hist.Count)
}
