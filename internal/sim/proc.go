package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs simulated work and
// blocks on simulated conditions (Sleep, Future.Await, Resource.Acquire).
// At most one process runs at a time; the execution token passes
// directly between processes (and the Run caller) over unbuffered
// channels, so process code needs no locking and observes a consistent
// virtual clock.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	done    bool
	waiting string // human-readable blocking reason, for deadlock reports
}

// interruptPanic unwinds a process goroutine when its kernel's drive
// was canceled (SetInterrupt): park panics with it after being resumed
// mid-cancellation, and the spawn wrapper's recover treats it as the
// expected exit rather than a process failure.
type interruptPanic struct{}

// Go spawns a process executing fn. The process starts at the current
// simulated time (via a zero-delay event). If fn panics, the panic is
// captured and surfaced as an error from Kernel.Run.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	if name == "" {
		name = fmt.Sprintf("proc-%d", k.procSeq)
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, interrupted := r.(interruptPanic); !interrupted && k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			delete(k.procs, p)
			// The finishing process holds the token; keep driving.
			if next := k.next(); next != nil {
				next.resume <- struct{}{}
			} else {
				k.endDrive()
			}
		}()
		<-p.resume // wait for first dispatch
		if k.canceling {
			panic(interruptPanic{})
		}
		fn(p)
	}()
	k.wake(p, 0)
	return p
}

// park hands the execution token onward and blocks until this process's
// own wakeup event is reached. Must be called from within the process
// itself, with a wakeup for it either already queued or arranged to be
// scheduled by another process (Future.Resolve, Resource.Release).
//
// Fast path: if the next runnable event is this process's own wakeup,
// park drains the intervening callback events inline and returns
// without any goroutine switch.
func (p *Proc) park(reason string) {
	p.waiting = reason
	k := p.k
	switch next := k.next(); next {
	case p:
		// Own wakeup reached — keep the token, keep running.
	case nil:
		k.endDrive() // nothing drivable: return the token to Run
		<-p.resume
	default:
		next.resume <- struct{}{} // direct switch to the next process
		<-p.resume
	}
	p.waiting = ""
	// A canceled drive resumes parked processes only so they can exit;
	// unwind instead of returning to simulated work.
	if k.canceling {
		panic(interruptPanic{})
	}
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d of simulated time. Zero and negative
// durations yield the processor for one zero-delay event round, which
// preserves FIFO fairness among runnable processes. The wakeup is
// stored by value in the event queue — no closure, no allocation — and
// when no other event precedes it the process resumes without leaving
// its own goroutine.
func (p *Proc) Sleep(d Duration) {
	p.k.wake(p, d)
	p.park("sleep")
}

// Yield reschedules the process at the current time behind any already
// pending events.
func (p *Proc) Yield() { p.Sleep(0) }
