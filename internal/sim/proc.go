package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs simulated work and
// blocks on simulated conditions (Sleep, Future.Await, Resource.Acquire).
// At most one process runs at a time; control passes between the kernel
// and the running process over unbuffered channels, so process code needs
// no locking and observes a consistent virtual clock.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	done    bool
	waiting string // human-readable blocking reason, for deadlock reports
}

// Go spawns a process executing fn. The process starts at the current
// simulated time (via a zero-delay event). If fn panics, the panic is
// captured and surfaced as an error from Kernel.Run.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	if name == "" {
		name = fmt.Sprintf("proc-%d", k.procSeq)
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil && k.failure == nil {
				k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			p.done = true
			delete(k.procs, p)
			k.yield <- struct{}{}
		}()
		<-p.resume // wait for first dispatch
		fn(p)
	}()
	k.After(0, func() { k.dispatch(p) })
	return p
}

// dispatch resumes p and waits until it parks again or finishes. Must be
// called from kernel context (inside an event callback).
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-k.yield
}

// park hands control back to the kernel and blocks until the next
// dispatch. Must be called from within the process itself.
func (p *Proc) park(reason string) {
	p.waiting = reason
	p.k.yield <- struct{}{}
	<-p.resume
	p.waiting = ""
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d of simulated time. Zero and negative
// durations yield the processor for one zero-delay event round, which
// preserves FIFO fairness among runnable processes.
func (p *Proc) Sleep(d Duration) {
	p.k.After(d, func() { p.k.dispatch(p) })
	p.park("sleep")
}

// Yield reschedules the process at the current time behind any already
// pending events.
func (p *Proc) Yield() { p.Sleep(0) }
