package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// ErrInterrupted is the failure RunUntil reports when an installed
// interrupt probe (SetInterrupt) asked a drive to stop. The error wraps
// the probe's cause, so errors.Is sees both this sentinel and e.g. the
// context error that triggered the cancellation.
var ErrInterrupted = errors.New("sim: interrupted")

// interruptStride is how many executed events pass between interrupt
// probes. Kernel events run in tens of nanoseconds, so a drive notices
// cancellation within roughly a hundred microseconds of wall time while
// the uncancelled path pays one counter comparison per event.
const interruptStride = 2048

// Kernel is a discrete-event simulation executive. It owns the virtual
// clock and the event queue. A Kernel is not safe for concurrent use;
// all simulated activity is serialized through Run.
//
// Internally the kernel uses direct-switch scheduling: exactly one
// goroutine — the Run caller or one simulated process — holds the
// execution token at any time, and whoever holds it drains the event
// queue. Callback events run inline on the token holder; a process
// wakeup hands the token straight to that process's goroutine, so a
// process switch costs a single channel synchronization, and a process
// whose own wakeup is the next event simply keeps running with no
// switch at all.
type Kernel struct {
	now    Time
	events eventQueue
	seq    uint64

	// deadline bounds the current drive (RunUntil); events beyond it
	// stay queued.
	deadline Time

	// interrupt, when non-nil, is polled every interruptStride executed
	// events; a non-nil return cancels the drive (see SetInterrupt).
	// nextProbe is the executed-event count of the next poll, and
	// canceling marks a drive that is unwinding its live processes.
	interrupt func() error
	nextProbe uint64
	canceling bool

	// yield is the channel on which the token returns to the Run caller
	// when driving stops (queue drained, deadline reached, or failure).
	yield chan struct{}

	procs    map[*Proc]struct{} // live (spawned, not finished) processes
	procSeq  int
	failure  error // first process panic, if any
	rng      *rand.Rand
	executed uint64
	wakeups  uint64

	// flushedEvents/flushedWakeups mark how much of executed/wakeups the
	// process-wide counters (counters.go) have already absorbed.
	flushedEvents  uint64
	flushedWakeups uint64
}

// New returns a kernel with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Reset returns the kernel to the state New(seed) creates — clock at
// zero, empty event queue, reseeded RNG, counters cleared — while
// keeping the event queue's storage for reuse. It is the cheap way to
// run many independent executions (the §2 benchmark repetitions) on one
// kernel. Resetting a kernel whose processes are still live (Run
// returned an error, or was never driven to completion) panics: their
// goroutines are parked and cannot be reclaimed.
func (k *Kernel) Reset(seed int64) {
	if n := len(k.procs); n > 0 {
		panic(fmt.Sprintf("sim: Reset with %d live process(es): %s", n, k.parkedNames()))
	}
	k.flushCounters()
	k.now = 0
	k.seq = 0
	k.procSeq = 0
	k.executed = 0
	k.wakeups = 0
	k.flushedEvents = 0
	k.flushedWakeups = 0
	k.failure = nil
	k.canceling = false
	k.nextProbe = 0
	k.events.reset()
	k.rng.Seed(seed)
}

// SetInterrupt installs (or, with nil, removes) a cancellation probe:
// check is polled at event-loop drive boundaries, every interruptStride
// executed events, and a non-nil return aborts the drive. Every live
// process is then unwound — resumed once so it can exit its goroutine —
// and RunUntil returns an error wrapping both ErrInterrupted and the
// probe's cause. An interrupted kernel holds no live processes, so
// Reset makes it reusable. The probe persists across Reset, covering
// all repetitions of a measurement run; it must be cheap (it is called
// from the hot event loop) and must not touch kernel state.
func (k *Kernel) SetInterrupt(check func() error) {
	k.interrupt = check
	k.nextProbe = k.executed + interruptStride
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past is
// an error in the model; it is clamped to the current time.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now.Add(d), fn)
}

// wake schedules p to resume d after the current time, allocating
// nothing: the wakeup is stored by value in the event queue.
func (k *Kernel) wake(p *Proc, d Duration) {
	t := k.now
	if d > 0 {
		t = t.Add(d)
	}
	k.seq++
	k.wakeups++
	k.events.push(event{at: t, seq: k.seq, proc: p})
}

// Run executes events until the queue is empty. It returns an error if a
// process panicked, or if the queue drained while processes were still
// parked (a deadlock in the simulated system).
func (k *Kernel) Run() error { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with time ≤ deadline. The clock stops at the
// last executed event (it does not jump to the deadline).
func (k *Kernel) RunUntil(deadline Time) error {
	k.deadline = deadline
	for {
		p := k.next()
		if p == nil {
			break
		}
		p.resume <- struct{}{} // hand the token into the simulation
		<-k.yield              // token returns when driving stops
	}
	k.flushCounters()
	if k.failure != nil {
		return k.failure
	}
	if k.events.len() == 0 {
		if n := len(k.procs); n > 0 {
			return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events: %s", n, k.parkedNames())
		}
	}
	return nil
}

// next drains callback events inline and returns the next process to
// hand the token to, or nil when driving must stop (queue drained,
// deadline reached, or failure recorded). During cancellation it stops
// executing events and instead hands back live processes one at a time
// so each can unwind (panic out of park with interruptPanic).
func (k *Kernel) next() *Proc {
	if k.canceling {
		return k.anyProc()
	}
	for k.failure == nil {
		if k.interrupt != nil && k.executed >= k.nextProbe {
			k.nextProbe = k.executed + interruptStride
			if err := k.interrupt(); err != nil {
				k.canceling = true
				k.failure = fmt.Errorf("%w: %w", ErrInterrupted, err)
				return k.anyProc()
			}
		}
		if k.events.len() == 0 || k.events.minTime() > k.deadline {
			return nil
		}
		e := k.events.pop()
		k.now = e.at
		k.executed++
		if e.proc != nil {
			if e.proc.done {
				continue
			}
			return e.proc
		}
		e.fn()
	}
	return nil
}

// anyProc returns one live process to resume for unwinding, or nil when
// all have exited (the cancellation is complete).
func (k *Kernel) anyProc() *Proc {
	for p := range k.procs {
		return p
	}
	return nil
}

// endDrive returns the token to the Run caller. Called by a process
// goroutine when next() found nothing left to drive.
func (k *Kernel) endDrive() {
	k.yield <- struct{}{}
}

// parkedNames lists parked processes (and what they wait on) for the
// deadlock report, truncated to 8 entries so a 128-rank deadlock stays
// one readable line.
func (k *Kernel) parkedNames() string {
	var b strings.Builder
	i := 0
	for p := range k.procs {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 8 {
			b.WriteString("…")
			break
		}
		b.WriteString(p.name)
		if p.waiting != "" {
			b.WriteString(" (waiting: ")
			b.WriteString(p.waiting)
			b.WriteString(")")
		}
		i++
	}
	return b.String()
}
