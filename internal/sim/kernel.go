package sim

import (
	"fmt"
	"math/rand"
)

// Kernel is a discrete-event simulation executive. It owns the virtual
// clock and the event queue. A Kernel is not safe for concurrent use;
// all simulated activity is serialized through Run.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64

	// yield is the channel on which a running process hands control
	// back to the kernel. Exactly one goroutine (the kernel or a single
	// process) is ever active, so one shared channel suffices.
	yield chan struct{}

	procs    map[*Proc]struct{} // live (spawned, not finished) processes
	procSeq  int
	failure  error // first process panic, if any
	rng      *rand.Rand
	executed uint64
}

// New returns a kernel with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past is
// an error in the model; it is clamped to the current time.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(&event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now.Add(d), fn)
}

// Run executes events until the queue is empty. It returns an error if a
// process panicked, or if the queue drained while processes were still
// parked (a deadlock in the simulated system).
func (k *Kernel) Run() error { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with time ≤ deadline. The clock stops at the
// last executed event (it does not jump to the deadline).
func (k *Kernel) RunUntil(deadline Time) error {
	for len(k.events) > 0 {
		if k.events[0].at > deadline {
			return k.failure
		}
		e := k.events.pop()
		k.now = e.at
		k.executed++
		e.fn()
		if k.failure != nil {
			return k.failure
		}
	}
	if n := len(k.procs); n > 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events: %s", n, k.parkedNames())
	}
	return nil
}

func (k *Kernel) parkedNames() string {
	s := ""
	i := 0
	for p := range k.procs {
		if i > 0 {
			s += ", "
		}
		if i == 8 {
			s += "…"
			break
		}
		s += p.name
		if p.waiting != "" {
			s += " (waiting: " + p.waiting + ")"
		}
		i++
	}
	return s
}
