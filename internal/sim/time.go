package sim

import "fmt"

// Time is an absolute simulated time in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis returns the time as fractional milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Micros returns the duration as fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration as fractional milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds returns the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// FromMicros converts fractional microseconds to a Duration, rounding to
// the nearest nanosecond.
func FromMicros(us float64) Duration {
	if us < 0 {
		return Duration(us*1e3 - 0.5)
	}
	return Duration(us*1e3 + 0.5)
}

// String formats the duration with an adaptive unit (ns, µs, ms, s).
func (d Duration) String() string {
	switch {
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 10*Millisecond:
		return fmt.Sprintf("%.2fµs", d.Micros())
	case d < 10*Second:
		return fmt.Sprintf("%.2fms", d.Millis())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// PerByte computes the serialization time of size bytes at rate
// megabytesPerSec, rounding to the nearest nanosecond. A non-positive
// rate yields zero (treated as an infinitely fast channel).
func PerByte(size int64, megabytesPerSec float64) Duration {
	if megabytesPerSec <= 0 || size <= 0 {
		return 0
	}
	ns := float64(size) * 1e3 / megabytesPerSec // bytes * ns/byte
	return Duration(ns + 0.5)
}
