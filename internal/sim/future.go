package sim

// Future is a one-shot completion carrying a value of type T. Processes
// block on Await; any context (event callback or process) may Resolve it
// exactly once. Multiple waiters are woken in FIFO order via zero-delay
// events.
type Future[T any] struct {
	k        *Kernel
	resolved bool
	value    T
	waiters  []*Proc
	name     string
}

// NewFuture returns an unresolved future on kernel k. The name is used
// in deadlock reports.
func NewFuture[T any](k *Kernel, name string) *Future[T] {
	return &Future[T]{k: k, name: name}
}

// Resolved reports whether the future has been resolved.
func (f *Future[T]) Resolved() bool { return f.resolved }

// Value returns the resolved value. It is only meaningful after Resolve.
func (f *Future[T]) Value() T { return f.value }

// Resolve completes the future with v and wakes all waiters. Resolving
// twice panics: a future models a single event.
func (f *Future[T]) Resolve(v T) {
	if f.resolved {
		panic("sim: future " + f.name + " resolved twice")
	}
	f.resolved = true
	f.value = v
	for _, w := range f.waiters {
		f.k.wake(w, 0)
	}
	f.waiters = nil
}

// Await blocks p until the future resolves and returns its value. If the
// future is already resolved it returns immediately without yielding.
func (f *Future[T]) Await(p *Proc) T {
	if !f.resolved {
		f.waiters = append(f.waiters, p)
		p.park("future " + f.name)
	}
	return f.value
}

// Signal is a broadcast condition with no payload.
type Signal = Future[struct{}]

// NewSignal returns an unresolved signal.
func NewSignal(k *Kernel, name string) *Signal { return NewFuture[struct{}](k, name) }
