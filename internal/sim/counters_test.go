package sim

import "testing"

// TestProcessWideCounters drives a kernel with the toggle off, then on,
// and checks that only the enabled drives reach the process totals —
// including across Reset, which must flush before clearing.
func TestProcessWideCounters(t *testing.T) {
	defer EnableCounters(false)

	run := func(k *Kernel) {
		k.Go("worker", func(p *Proc) {
			p.Sleep(5) // one scheduled wakeup
			p.Sleep(5) // and another
		})
		k.At(1, func() {}) // one callback event
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}

	EnableCounters(false)
	k := New(1)
	run(k)
	e0, w0 := KernelEvents(), KernelWakeups()

	EnableCounters(true)
	k.Reset(1) // the disabled drive's delta must NOT flush in
	if KernelEvents() != e0 || KernelWakeups() != w0 {
		t.Fatalf("disabled drive leaked into totals: events %d→%d wakeups %d→%d",
			e0, KernelEvents(), w0, KernelWakeups())
	}

	run(k)
	perEvents, perWakeups := KernelEvents()-e0, KernelWakeups()-w0
	if perEvents == 0 || perWakeups == 0 {
		t.Fatalf("enabled drive counted nothing: events +%d wakeups +%d", perEvents, perWakeups)
	}
	if perEvents != k.Events() {
		t.Fatalf("flushed events %d, kernel executed %d", perEvents, k.Events())
	}

	// A second identical drive doubles the totals exactly — the flush
	// markers advance, nothing is re-counted.
	k.Reset(1)
	run(k)
	if got := KernelEvents() - e0; got != 2*perEvents {
		t.Fatalf("after two drives events +%d, want %d", got, 2*perEvents)
	}
	if got := KernelWakeups() - w0; got != 2*perWakeups {
		t.Fatalf("after two drives wakeups +%d, want %d", got, 2*perWakeups)
	}
}
