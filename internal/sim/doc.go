// Package sim provides the deterministic discrete-event simulation
// kernel every machine model in this repository runs on.
//
// # Execution model
//
// The Kernel owns a virtual clock and an event queue and advances time
// by executing events in (time, sequence) order. Simulated activity is
// written either as plain event callbacks or as blocking processes
// (Proc) — each process is a goroutine resumed and parked under a
// strict one-runner handshake, so execution is sequential and fully
// deterministic whatever the host scheduler does.
//
// Internally the kernel uses direct-switch scheduling: exactly one
// goroutine — the Run caller or one simulated process — holds the
// execution token at any time, and whoever holds it drains the event
// queue. Callback events run inline on the token holder; a process
// wakeup hands the token straight to that process's goroutine, so a
// process switch costs a single channel synchronization and a process
// whose own wakeup is the next event keeps running with no switch at
// all. Events live by value in a slot-recycled 4-ary index heap, so
// the steady state allocates nothing.
//
// # Coordination primitives
//
// Future is a single-assignment value processes can wait on; Resource
// is a counted semaphore with deterministic FIFO grants; Mailbox is a
// typed rendezvous channel between processes. All are built on the
// kernel's wakeup primitive and preserve determinism.
//
// # Reuse
//
// Kernel.Reset rewinds the clock and clears the queue without
// releasing the process goroutines' stacks, so measurement harnesses
// (internal/measure) reuse one kernel — and one machine.Cluster —
// across benchmark repetitions instead of rebuilding the world; see
// also machine.Cluster.Reset. Determinism is enforced by the
// repository-root determinism tests, which byte-compare sweep reports
// and calibrated fits against committed goldens.
package sim
