package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	k := New(1)
	ran := false
	k.At(100, func() {
		k.At(50, func() { // in the past
			if k.Now() != 100 {
				t.Errorf("past event ran at %v, want clamp to 100", k.Now())
			}
			ran = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var times []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { times = append(times, at) })
	}
	if err := k.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || k.Now() != 20 {
		t.Fatalf("RunUntil(25): executed %v, now %v", times, k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("resume after RunUntil: executed %v", times)
	}
}

func TestProcSleep(t *testing.T) {
	k := New(1)
	var wake []Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		wake = append(wake, p.Now())
		p.Sleep(10 * Microsecond)
		wake = append(wake, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wake) != 2 || wake[0] != Time(5*Microsecond) || wake[1] != Time(15*Microsecond) {
		t.Fatalf("wake times = %v", wake)
	}
}

func TestManyProcsInterleaveDeterministically(t *testing.T) {
	run := func(seed int64) []string {
		k := New(seed)
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			k.Go("", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Duration(i+1) * Microsecond)
					log = append(log, p.Name())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(1), run(2)
	if len(a) != 24 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	k := New(1)
	k.Go("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New(1)
	f := NewSignal(k, "never")
	k.Go("stuck", func(p *Proc) { f.Await(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestFutureResolveWakesAllFIFO(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k, "f")
	var got []int
	for i := 0; i < 5; i++ {
		k.Go("", func(p *Proc) { got = append(got, f.Await(p)) })
	}
	k.At(100, func() { f.Resolve(42) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("woke %d waiters, want 5", len(got))
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("value = %d, want 42", v)
		}
	}
}

func TestFutureAwaitAfterResolveDoesNotBlock(t *testing.T) {
	k := New(1)
	f := NewFuture[string](k, "f")
	f.Resolve("done")
	var got string
	k.Go("", func(p *Proc) {
		before := p.Now()
		got = f.Await(p)
		if p.Now() != before {
			t.Error("Await on resolved future advanced time")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "done" {
		t.Fatalf("got %q", got)
	}
}

func TestFutureDoubleResolvePanics(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k, "f")
	f.Resolve(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double resolve")
		}
	}()
	f.Resolve(2)
}

func TestResourceSerializes(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	var spans [][2]Time
	for i := 0; i < 4; i++ {
		k.Go("", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(10 * Microsecond)
			spans = append(spans, [2]Time{start, p.Now()})
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("overlapping holds: %v", spans)
		}
	}
	if spans[3][1] != Time(40*Microsecond) {
		t.Fatalf("last release at %v, want 40µs", spans[3][1])
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	k := New(1)
	r := NewResource(k, "dma", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		k.Go("", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Microsecond)
			r.Release()
			done = append(done, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two waves of two: finish at 10µs, 10µs, 20µs, 20µs.
	if done[1] != Time(10*Microsecond) || done[3] != Time(20*Microsecond) {
		t.Fatalf("done times = %v", done)
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	k := New(1)
	r := NewResource(k, "q", 1)
	var order []string
	names := []string{"a", "b", "c", "d"}
	for i, n := range names {
		n := n
		k.At(Time(i), func() {
			k.Go(n, func(p *Proc) {
				r.Acquire(p)
				order = append(order, p.Name())
				p.Sleep(Microsecond)
				r.Release()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if order[i] != n {
			t.Fatalf("admission order = %v", order)
		}
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	k := New(1)
	r := NewResource(k, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}

func TestLatchReleasesAllTogether(t *testing.T) {
	k := New(1)
	l := NewLatch(k, "sync", 3)
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		k.Go("", func(p *Proc) {
			p.Sleep(Duration(i*10) * Microsecond)
			l.Arrive(p)
			times = append(times, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tm := range times {
		if tm != Time(20*Microsecond) {
			t.Fatalf("latch release times = %v, want all 20µs", times)
		}
	}
}

func TestLatchReusableAcrossGenerations(t *testing.T) {
	k := New(1)
	l := NewLatch(k, "sync", 2)
	var hits int
	for i := 0; i < 2; i++ {
		k.Go("", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(Microsecond)
				l.Arrive(p)
				hits++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 10 {
		t.Fatalf("hits = %d, want 10", hits)
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	k := New(1)
	m := NewMailbox[int](k, "mb")
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Get(p))
		}
	})
	k.At(10, func() { m.Put(1) })
	k.At(20, func() { m.Put(2); m.Put(3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestPerByte(t *testing.T) {
	cases := []struct {
		size int64
		mbps float64
		want Duration
	}{
		{65536, 40, 1638400}, // SP2 link: 64 KB at 40 MB/s = 1.6384 ms
		{65536, 300, 218453}, // T3D link
		{1, 1000, 1},         // 1 ns/byte
		{0, 100, 0},
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := PerByte(c.size, c.mbps); got != c.want {
			t.Errorf("PerByte(%d, %v) = %d, want %d", c.size, c.mbps, got, c.want)
		}
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{50 * Microsecond, "50.00µs"},
		{50 * Millisecond, "50.00ms"},
		{12 * Second, "12.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestFromMicrosRoundTrip(t *testing.T) {
	for _, us := range []float64{0, 0.5, 3, 123.456, 1e6} {
		d := FromMicros(us)
		if diff := d.Micros() - us; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("FromMicros(%v) = %v", us, d)
		}
	}
}
