package sim

// event is a scheduled callback or process wakeup. Events with equal
// times execute in scheduling order (seq), which makes zero-delay
// wakeups FIFO and the whole simulation deterministic. Process wakeups
// carry the process directly (proc non-nil, fn nil), so the hot path —
// a sleeping process rescheduling itself — allocates no closure.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// eventQueue is the kernel's pending-event store: events live by value
// in a slot slab, and a 4-ary min-heap of slot indices orders them by
// (at, seq). Sift operations therefore move 4-byte handles instead of
// 40-byte events, and freed slots recycle through a free list, so a
// steady-state simulation schedules millions of events with zero
// allocations. A 4-ary heap halves the tree depth of a binary heap;
// with the one-compare-per-level of sift-up unchanged and the payload
// untouched during sifts, it wins on the push-heavy mix simulations
// produce.
type eventQueue struct {
	slab []event
	heap []int32 // heap of slab indices ordered by less()
	free []int32 // recycled slab slots (LIFO free list)
}

func (q *eventQueue) len() int { return len(q.heap) }

// minTime returns the time of the earliest pending event; the queue
// must be non-empty.
func (q *eventQueue) minTime() Time { return q.slab[q.heap[0]].at }

// push schedules e, recycling a freed slab slot when one exists.
func (q *eventQueue) push(e event) {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		slot = int32(len(q.slab))
		q.slab = append(q.slab, event{})
	}
	q.slab[slot] = e
	q.heap = append(q.heap, slot)
	q.up(len(q.heap) - 1)
}

// pop removes and returns the earliest event; the queue must be
// non-empty. The vacated slot is cleared (dropping the fn/proc
// references for the GC) and pushed onto the free list.
func (q *eventQueue) pop() event {
	h := q.heap
	slot := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.heap = h[:last]
	if last > 0 {
		q.down(0)
	}
	e := q.slab[slot]
	q.slab[slot] = event{}
	q.free = append(q.free, slot)
	return e
}

// reset empties the queue but keeps the slab, heap, and free-list
// capacity for reuse.
func (q *eventQueue) reset() {
	for i := range q.slab {
		q.slab[i] = event{}
	}
	q.slab = q.slab[:0]
	q.heap = q.heap[:0]
	q.free = q.free[:0]
}

func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (q *eventQueue) up(i int) {
	h := q.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	h := q.heap
	n := len(h)
	for {
		min := i
		lo := 4*i + 1
		hi := lo + 4
		if hi > n {
			hi = n
		}
		for c := lo; c < hi; c++ {
			if q.less(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
