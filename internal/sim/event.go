package sim

import "container/heap"

// event is a scheduled callback. Events with equal times execute in
// scheduling order (seq), which makes zero-delay wakeups FIFO and the
// whole simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (h *eventHeap) push(e *event) { heap.Push(h, e) }

func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }
