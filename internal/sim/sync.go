package sim

// Latch is a countdown latch: processes Arrive, and everyone blocked in
// AwaitAll is released when the count reaches n. It is reusable: after
// opening, the next generation starts automatically.
//
// Latch models an idealized rendezvous with zero cost; it is used by the
// measurement harness for logical coordination. Machine-level barriers
// with real costs live in the coll package.
type Latch struct {
	k    *Kernel
	name string
	n    int
	gen  int
	cnt  int
	sig  *Signal
}

// NewLatch returns a latch for n participants.
func NewLatch(k *Kernel, name string, n int) *Latch {
	if n < 1 {
		panic("sim: latch size must be ≥ 1")
	}
	return &Latch{k: k, name: name, n: n, sig: NewSignal(k, name)}
}

// Arrive registers p and blocks it until all n participants of the
// current generation have arrived.
func (l *Latch) Arrive(p *Proc) {
	l.cnt++
	if l.cnt == l.n {
		done := l.sig
		l.cnt = 0
		l.gen++
		l.sig = NewSignal(l.k, l.name)
		done.Resolve(struct{}{})
		return
	}
	sig := l.sig
	sig.Await(p)
}

// Mailbox is an unbounded FIFO queue of T with blocking Get, used for
// simple producer/consumer coordination inside simulated nodes.
type Mailbox[T any] struct {
	k     *Kernel
	name  string
	items []T
	recvq []*Proc
}

// NewMailbox returns an empty mailbox.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{k: k, name: name}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put enqueues v and wakes one blocked receiver, if any. It never
// blocks and may be called from event context.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if len(m.recvq) > 0 {
		w := m.recvq[0]
		m.recvq = m.recvq[:copy(m.recvq, m.recvq[1:])]
		m.k.wake(w, 0)
	}
}

// Get dequeues the oldest item, blocking p while the mailbox is empty.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.recvq = append(m.recvq, p)
		p.park("mailbox " + m.name)
	}
	v := m.items[0]
	m.items = m.items[:copy(m.items, m.items[1:])]
	return v
}
