package sim

// Resource is a counted resource with FIFO admission, modeling things
// like a node CPU, a DMA engine, or an adapter send queue. Acquire blocks
// the calling process until a unit is available; Release may be called
// from any context.
type Resource struct {
	k       *Kernel
	name    string
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given capacity (≥ 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be ≥ 1")
	}
	return &Resource{k: k, name: name, cap: capacity}
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire obtains one unit, blocking p in FIFO order behind earlier
// requesters if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park("resource " + r.name)
	// Woken by Release, which transferred the unit to us already.
}

// Release returns one unit. If processes are queued, ownership of the
// unit transfers directly to the head waiter, which is woken with a
// zero-delay event.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[:copy(r.waiters, r.waiters[1:])]
		r.k.wake(w, 0)
		return // unit stays accounted as in use, now owned by w
	}
	r.inUse--
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
