package sim

import "sync/atomic"

// Process-wide kernel counters behind a runtime toggle — no build tag.
// Every kernel always keeps its own per-drive tallies (Kernel.Events
// and the wakeup count are plain fields the scheduler already touches);
// when the toggle is on, each completed drive flushes its delta into
// these process totals with two atomic adds. The per-event hot path
// never pays: disabled or enabled, the cost lives at drive granularity,
// which is why the toggle needs no compile-time gate.
var (
	countersOn   atomic.Bool
	totalEvents  atomic.Uint64
	totalWakeups atomic.Uint64
)

// EnableCounters switches process-wide kernel counting on or off.
// Drives completed while disabled are not retroactively counted.
func EnableCounters(on bool) { countersOn.Store(on) }

// CountersEnabled reports the toggle state.
func CountersEnabled() bool { return countersOn.Load() }

// KernelEvents returns the process-wide executed-event total
// accumulated while counting was enabled.
func KernelEvents() uint64 { return totalEvents.Load() }

// KernelWakeups returns the process-wide scheduled-process-wakeup total
// accumulated while counting was enabled.
func KernelWakeups() uint64 { return totalWakeups.Load() }

// flushCounters folds the kernel's unflushed event/wakeup deltas into
// the process totals. Called when a drive ends and before Reset clears
// the per-kernel tallies; the flush markers advance regardless of the
// toggle, so enabling mid-process never double- or back-counts.
func (k *Kernel) flushCounters() {
	de := k.executed - k.flushedEvents
	dw := k.wakeups - k.flushedWakeups
	k.flushedEvents, k.flushedWakeups = k.executed, k.wakeups
	if de|dw != 0 && countersOn.Load() {
		totalEvents.Add(de)
		totalWakeups.Add(dw)
	}
}
