package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// spinUp runs a workload with many parked and running processes: one
// spinner generating a steady event stream (so interrupt probes fire)
// and several processes parked forever on an unresolved future.
func spinUp(k *Kernel) {
	f := NewFuture[int](k, "never")
	for i := 0; i < 8; i++ {
		k.Go("", func(p *Proc) { f.Await(p) })
	}
	k.Go("spinner", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
		}
	})
}

// settleGoroutines polls until the goroutine count drops back to at
// most base, tolerating scheduler lag after the unwind.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, want ≤ %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInterruptUnwindsAllProcs: a firing interrupt probe aborts the
// drive with an error wrapping both ErrInterrupted and the cause, and
// every process goroutine — parked or runnable — exits.
func TestInterruptUnwindsAllProcs(t *testing.T) {
	base := runtime.NumGoroutine()
	cause := errors.New("deadline pressure")
	k := New(1)
	k.SetInterrupt(func() error { return cause })
	spinUp(k)
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run() = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Run() = %v, want it to wrap the probe's cause", err)
	}
	if n := len(k.procs); n != 0 {
		t.Fatalf("%d live process(es) after interrupt: %s", n, k.parkedNames())
	}
	settleGoroutines(t, base)
}

// TestInterruptedKernelIsResettable: after an interrupt the kernel
// holds no live processes, so Reset restores it for a clean run — the
// contract estimate's measurement loop depends on for retries.
func TestInterruptedKernelIsResettable(t *testing.T) {
	cause := errors.New("stop")
	fire := false
	k := New(1)
	k.SetInterrupt(func() error {
		if fire {
			return cause
		}
		return nil
	})

	// Clean run first: an installed-but-quiet probe changes nothing.
	done := false
	k.Go("worker", func(p *Proc) {
		for i := 0; i < 5000; i++ {
			p.Sleep(Microsecond)
		}
		done = true
	})
	if err := k.Run(); err != nil || !done {
		t.Fatalf("quiet probe: err=%v done=%v", err, done)
	}

	// Interrupted run.
	k.Reset(2)
	fire = true
	spinUp(k)
	if err := k.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run() = %v, want ErrInterrupted", err)
	}

	// Reset and run clean again — the probe persists across Reset but
	// is quiet now.
	fire = false
	k.Reset(3)
	done = false
	k.Go("worker", func(p *Proc) {
		p.Sleep(Microsecond)
		done = true
	})
	if err := k.Run(); err != nil || !done {
		t.Fatalf("after interrupted Reset: err=%v done=%v", err, done)
	}
}

// TestInterruptRemovedBySetNil: SetInterrupt(nil) uninstalls the probe.
func TestInterruptRemovedBySetNil(t *testing.T) {
	k := New(1)
	k.SetInterrupt(func() error { return errors.New("should never fire") })
	k.SetInterrupt(nil)
	done := false
	k.Go("worker", func(p *Proc) {
		for i := 0; i < 5000; i++ { // well past one probe stride
			p.Sleep(Microsecond)
		}
		done = true
	})
	if err := k.Run(); err != nil || !done {
		t.Fatalf("removed probe still fired: err=%v done=%v", err, done)
	}
}

// TestInterruptDeterministicBoundary: the probe is polled on event
// strides, so a firing check stops the drive at a deterministic event
// count — the property that keeps cancellation reproducible.
func TestInterruptDeterministicBoundary(t *testing.T) {
	run := func() uint64 {
		k := New(7)
		k.SetInterrupt(func() error { return errors.New("now") })
		spinUp(k)
		if err := k.Run(); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("Run() = %v", err)
		}
		return k.Events()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("interrupt boundary not deterministic: %d vs %d events", a, b)
	}
}
