package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Std != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 150: 5, -5: 1}
	for q, want := range cases {
		if got := Percentile(xs, q); got != want {
			t.Errorf("P%v = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 25); got != 2.5 {
		t.Errorf("P25 of {0,10} = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{5, 1, 9}) != 5 {
		t.Fatal("median wrong")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{10, 10, 10}); cv != 0 {
		t.Fatalf("constant sample cv = %v", cv)
	}
	if cv := CoefficientOfVariation([]float64{0, 0}); cv != 0 {
		t.Fatalf("zero-mean cv = %v", cv)
	}
	cv := CoefficientOfVariation([]float64{9, 11})
	if math.Abs(cv-0.1) > 1e-12 {
		t.Fatalf("cv = %v, want 0.1", cv)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	// Ratio symmetry: geomean of x and 1/x is 1.
	if g := GeoMean([]float64{0.5, 2}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("geomean = %v, want 1", g)
	}
}

func TestPropertyMinLEMeanLEMax(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	prop := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		qa, qb := float64(a%101), float64(b%101)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Percentile(xs, qa) <= Percentile(xs, qb)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
