// Package stats provides the summary statistics the measurement harness
// reports: the paper collects "the minimal time, the maximal time, and
// the mean time from all processes" (§2) and we additionally expose
// dispersion and percentiles for the repeated-execution analysis.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Std            float64 // population standard deviation
}

// Summarize computes a Summary. An empty sample returns the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// Percentile returns the q-th percentile (0 ≤ q ≤ 100) using linear
// interpolation between order statistics. Panics on an empty sample.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CoefficientOfVariation returns Std/Mean, or 0 for a zero mean — the
// run-to-run stability measure used in EXPERIMENTS.md.
func CoefficientOfVariation(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// GeoMean returns the geometric mean of strictly positive values; it is
// the right average for paper-vs-measured ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean needs positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
