// Package network models message transmission through a multicomputer
// interconnect. It combines a topology (which links a message crosses)
// with per-link occupancy accounting (when it may cross them), using a
// wormhole-pipelining approximation: a message's head moves one hop per
// per-hop latency and its body streams at the bottleneck bandwidth, so an
// uncontended transfer of m bytes over H hops completes in
//
//	H·t_hop + m/B
//
// while contention serializes transfers on shared links. Node adapters
// (NICs) bound per-node injection and ejection rates, which on all three
// machines studied in the paper — not raw link speed — limit what MPI
// actually delivers.
package network

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Params are the hardware constants of a fabric.
type Params struct {
	// HopLatency is the per-hop routing/switch delay (paper §4: 125 ns
	// SP2, 20 ns T3D, 40 ns Paragon).
	HopLatency sim.Duration
	// LinkBandwidthMBs is the raw bandwidth of each network link in
	// MByte/s (paper §5: 40 SP2, 300 T3D, 175 Paragon).
	LinkBandwidthMBs float64
	// InjectionMBs is the effective per-node injection/ejection rate in
	// MByte/s achievable by the messaging software (memory copies,
	// protocol processing). This is what saturates first for MPI.
	InjectionMBs float64
	// WireLatency is a fixed time-of-flight added to every transfer
	// (cable lengths, adapter crossing). Zero is valid.
	WireLatency sim.Duration
}

// Network is the simulated fabric: topology + link occupancy state.
type Network struct {
	k     *sim.Kernel
	topo  topology.Topology
	p     Params
	links []sim.Time // earliest time each directed link is next free
	nicTx []sim.Time // per-node injection port occupancy
	nicRx []sim.Time // per-node ejection port occupancy

	// Stats
	transfers   uint64
	bytesMoved  uint64
	contendedNs sim.Duration

	observer func(TransferEvent)
}

// TransferEvent describes one completed path reservation, for tracing.
type TransferEvent struct {
	Src, Dst int
	Size     int
	Ready    sim.Time // when the sender was ready to inject
	Start    sim.Time // when the path was acquired
	Arrive   sim.Time // when the last byte reaches the destination
	Hops     int
}

// SetObserver installs a callback invoked synchronously for every
// network transfer (nil to disable). Used by the trace package.
func (n *Network) SetObserver(fn func(TransferEvent)) { n.observer = fn }

// New returns a network over the given topology.
func New(k *sim.Kernel, topo topology.Topology, p Params) *Network {
	if p.LinkBandwidthMBs <= 0 || p.InjectionMBs <= 0 {
		panic("network: bandwidths must be positive")
	}
	return &Network{
		k:     k,
		topo:  topo,
		p:     p,
		links: make([]sim.Time, topo.Links()),
		nicTx: make([]sim.Time, topo.Nodes()),
		nicRx: make([]sim.Time, topo.Nodes()),
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Params returns the fabric constants.
func (n *Network) Params() Params { return n.p }

// Transfers returns the number of completed Transfer calls.
func (n *Network) Transfers() uint64 { return n.transfers }

// BytesMoved returns the cumulative payload bytes transferred.
func (n *Network) BytesMoved() uint64 { return n.bytesMoved }

// ContentionTime returns the cumulative time transfers spent waiting for
// busy links or adapters.
func (n *Network) ContentionTime() sim.Duration { return n.contendedNs }

// Transfer reserves the path from src to dst for a message of size bytes
// that is ready to inject at time ready, and returns the time the last
// byte arrives at dst. It updates link occupancy so later transfers
// contend realistically. size 0 models a control packet (header only).
//
// Transfer is a pure state update on the occupancy table; callers embed
// the returned arrival time in a delivery event.
func (n *Network) Transfer(src, dst int, size int, ready sim.Time) sim.Time {
	return n.TransferRate(src, dst, size, ready, n.p.InjectionMBs)
}

// TransferRate is Transfer with an explicit effective injection rate,
// used by the MPI layer because each collective's code path achieves a
// different per-node rate (protocol processing and copies differ). The
// rate is still capped by the physical link bandwidth.
func (n *Network) TransferRate(src, dst int, size int, ready sim.Time, injMBs float64) sim.Time {
	_, arrive := n.TransferDetail(src, dst, size, ready, injMBs)
	return arrive
}

// TransferDetail is TransferRate also returning the time injection
// completes at the source (when a blocking sender's buffer is free).
func (n *Network) TransferDetail(src, dst int, size int, ready sim.Time, injMBs float64) (txDone, arrive sim.Time) {
	if injMBs <= 0 {
		injMBs = n.p.InjectionMBs
	}
	if src == dst {
		// Intra-node: a memory copy at injection rate, no network.
		done := ready.Add(sim.PerByte(int64(size), injMBs))
		return done, done
	}
	path := n.topo.Route(src, dst)
	rate := injMBs
	if n.p.LinkBandwidthMBs < rate {
		rate = n.p.LinkBandwidthMBs
	}
	// End-to-end streaming is paced by the slowest stage (the endpoint
	// software, for MPI on all three machines), but each *network link*
	// is occupied only for the time the wire itself needs: a slow
	// receiver back-pressures the sender, it does not slow the wire for
	// bystanders sharing the link.
	ser := sim.PerByte(int64(size), rate)
	serEnd := sim.PerByte(int64(size), injMBs)
	serLink := sim.PerByte(int64(size), n.p.LinkBandwidthMBs)

	// Earliest start: when the injection port, every path link, and the
	// ejection port are simultaneously free (wormhole holds the path).
	start := ready
	if n.nicTx[src] > start {
		start = n.nicTx[src]
	}
	if n.nicRx[dst] > start {
		start = n.nicRx[dst]
	}
	for _, l := range path {
		if n.links[l] > start {
			start = n.links[l]
		}
	}
	if start > ready {
		n.contendedNs += start.Sub(ready)
	}

	hop := n.p.HopLatency
	// Head reaches dst after crossing every hop; body streams behind it.
	headArrive := start.Add(sim.Duration(len(path)) * hop).Add(n.p.WireLatency)
	done := headArrive.Add(ser)

	// Occupancy: link i carries the body from its head-arrival until the
	// tail passes at wire pace; endpoints hold their ports for the
	// software-paced serialization.
	n.nicTx[src] = start.Add(serEnd)
	for i, l := range path {
		busyFrom := start.Add(sim.Duration(i+1) * hop)
		n.links[l] = busyFrom.Add(serLink)
	}
	n.nicRx[dst] = start.Add(sim.Duration(len(path)) * hop).Add(serEnd)

	n.transfers++
	n.bytesMoved += uint64(size)
	if n.observer != nil {
		n.observer(TransferEvent{
			Src: src, Dst: dst, Size: size,
			Ready: ready, Start: start, Arrive: done, Hops: len(path),
		})
	}
	return start.Add(serEnd), done
}

func (n *Network) bottleneckMBs() float64 {
	if n.p.InjectionMBs < n.p.LinkBandwidthMBs {
		return n.p.InjectionMBs
	}
	return n.p.LinkBandwidthMBs
}

// UncontendedLatency returns the zero-load time for size bytes from src
// to dst — the textbook wormhole formula — without touching occupancy.
func (n *Network) UncontendedLatency(src, dst int, size int) sim.Duration {
	hops := topology.Hops(n.topo, src, dst)
	return sim.Duration(hops)*n.p.HopLatency + n.p.WireLatency + sim.PerByte(int64(size), n.bottleneckMBs())
}

// Reset clears all occupancy state and statistics, as between benchmark
// repetitions on a dedicated machine.
func (n *Network) Reset() {
	for i := range n.links {
		n.links[i] = 0
	}
	for i := range n.nicTx {
		n.nicTx[i] = 0
	}
	for i := range n.nicRx {
		n.nicRx[i] = 0
	}
	n.transfers = 0
	n.bytesMoved = 0
	n.contendedNs = 0
}

// String describes the fabric.
func (n *Network) String() string {
	return fmt.Sprintf("%s hop=%v link=%.0fMB/s inj=%.1fMB/s",
		n.topo.Name(), n.p.HopLatency, n.p.LinkBandwidthMBs, n.p.InjectionMBs)
}
