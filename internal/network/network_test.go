package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet() *Network {
	k := sim.New(1)
	return New(k, topology.NewCrossbar(8), Params{
		HopLatency:       100, // 100 ns
		LinkBandwidthMBs: 100, // 10 ns/byte
		InjectionMBs:     100,
	})
}

func TestUncontendedWormholeFormula(t *testing.T) {
	n := testNet()
	// 2 hops * 100ns + 1000 bytes * 10ns/B = 200 + 10000 = 10200ns.
	got := n.Transfer(0, 1, 1000, 0)
	if got != 10200 {
		t.Fatalf("arrival = %d, want 10200", got)
	}
	if n.UncontendedLatency(0, 1, 1000) != 10200 {
		t.Fatalf("UncontendedLatency mismatch")
	}
}

func TestZeroByteTransferIsHeaderOnly(t *testing.T) {
	n := testNet()
	if got := n.Transfer(0, 1, 0, 0); got != 200 {
		t.Fatalf("control packet arrival = %d, want 200", got)
	}
}

func TestIntraNodeTransferSkipsNetwork(t *testing.T) {
	n := testNet()
	got := n.Transfer(3, 3, 1000, 50)
	if got != 50+10000 {
		t.Fatalf("intra-node arrival = %d, want 10050", got)
	}
	if n.Transfers() != 0 {
		t.Fatal("intra-node copy should not count as a network transfer")
	}
}

func TestInjectionPortSerializesSends(t *testing.T) {
	n := testNet()
	// Two back-to-back sends from node 0 to different destinations must
	// serialize at node 0's injection port.
	a := n.Transfer(0, 1, 1000, 0)
	b := n.Transfer(0, 2, 1000, 0)
	if a != 10200 {
		t.Fatalf("first arrival %d", a)
	}
	// Second send can begin only when the first's tail has crossed the
	// injection link: 10000 (serialization) + 100 (tail hop) = 10100.
	if b != 10100+10200 {
		t.Fatalf("second arrival = %d, want 20300", b)
	}
}

func TestEjectionPortSerializesReceives(t *testing.T) {
	n := testNet()
	a := n.Transfer(1, 0, 1000, 0)
	b := n.Transfer(2, 0, 1000, 0)
	if a != 10200 {
		t.Fatalf("first arrival %d", a)
	}
	if b <= a {
		t.Fatalf("concurrent receives did not serialize: %d then %d", a, b)
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	n := testNet()
	a := n.Transfer(0, 1, 1000, 0)
	b := n.Transfer(2, 3, 1000, 0)
	if a != b {
		t.Fatalf("disjoint transfers should complete together: %d vs %d", a, b)
	}
	if n.ContentionTime() != 0 {
		t.Fatalf("unexpected contention: %v", n.ContentionTime())
	}
}

func TestSharedMeshLinkContends(t *testing.T) {
	k := sim.New(1)
	m := topology.NewMesh2D(4, 1) // a 4-node chain
	n := New(k, m, Params{HopLatency: 100, LinkBandwidthMBs: 100, InjectionMBs: 100})
	// 0→3 and 1→3 share links (1→2, 2→3).
	a := n.Transfer(0, 3, 1000, 0)
	b := n.Transfer(1, 3, 1000, 0)
	if b <= a {
		t.Fatalf("shared-link transfers must serialize: %d then %d", a, b)
	}
	if n.ContentionTime() == 0 {
		t.Fatal("contention not recorded")
	}
}

func TestBottleneckIsMinOfLinkAndInjection(t *testing.T) {
	k := sim.New(1)
	n := New(k, topology.NewCrossbar(4), Params{
		HopLatency:       0,
		LinkBandwidthMBs: 1000,
		InjectionMBs:     10, // 100 ns/byte — the bottleneck
	})
	if got := n.Transfer(0, 1, 100, 0); got != 10000 {
		t.Fatalf("arrival = %d, want 10000 (injection-limited)", got)
	}
}

func TestReadyTimeRespected(t *testing.T) {
	n := testNet()
	if got := n.Transfer(0, 1, 0, 5000); got != 5200 {
		t.Fatalf("arrival = %d, want 5200", got)
	}
}

func TestResetClearsState(t *testing.T) {
	n := testNet()
	n.Transfer(0, 1, 4096, 0)
	n.Transfer(0, 2, 4096, 0)
	n.Reset()
	if n.Transfers() != 0 || n.BytesMoved() != 0 || n.ContentionTime() != 0 {
		t.Fatal("stats not cleared")
	}
	if got := n.Transfer(0, 1, 1000, 0); got != 10200 {
		t.Fatalf("occupancy not cleared: %d", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := testNet()
	n.Transfer(0, 1, 100, 0)
	n.Transfer(1, 2, 200, 0)
	if n.Transfers() != 2 || n.BytesMoved() != 300 {
		t.Fatalf("transfers=%d bytes=%d", n.Transfers(), n.BytesMoved())
	}
}

func TestWireLatencyAdds(t *testing.T) {
	k := sim.New(1)
	n := New(k, topology.NewCrossbar(4), Params{
		HopLatency: 100, LinkBandwidthMBs: 100, InjectionMBs: 100, WireLatency: 1000,
	})
	if got := n.Transfer(0, 1, 0, 0); got != 1200 {
		t.Fatalf("arrival = %d, want 1200", got)
	}
}

func TestTorusManyToOneFunnels(t *testing.T) {
	// All nodes sending to node 0 must serialize at 0's ejection port:
	// total time ≥ (p-1) * serialization.
	k := sim.New(1)
	to := topology.NewTorus3D(2, 2, 2)
	n := New(k, to, Params{HopLatency: 20, LinkBandwidthMBs: 300, InjectionMBs: 100})
	var last sim.Time
	for src := 1; src < 8; src++ {
		if got := n.Transfer(src, 0, 10000, 0); got > last {
			last = got
		}
	}
	ser := sim.PerByte(10000, 100)
	if last < sim.Time(7*ser) {
		t.Fatalf("funnel completed at %d, want ≥ %d", last, 7*ser)
	}
}

func TestPropertyArrivalNeverBeforeUncontended(t *testing.T) {
	// Under any traffic, a transfer can never complete faster than its
	// zero-load latency from its ready time.
	k := sim.New(1)
	to := topology.NewTorus3D(4, 4, 2)
	n := New(k, to, Params{HopLatency: 20, LinkBandwidthMBs: 300, InjectionMBs: 27})
	prop := func(srcs, dsts [6]uint8, sizes [6]uint16) bool {
		n.Reset()
		var ready sim.Time
		for i := 0; i < 6; i++ {
			src := int(srcs[i]) % to.Nodes()
			dst := int(dsts[i]) % to.Nodes()
			size := int(sizes[i])
			arrive := n.Transfer(src, dst, size, ready)
			if src != dst {
				min := ready.Add(n.UncontendedLatency(src, dst, size))
				if arrive < min {
					return false
				}
			}
			ready = ready.Add(10)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyArrivalMonotoneInReadyTime(t *testing.T) {
	// Same transfer issued later must not arrive earlier.
	k := sim.New(1)
	n := New(k, topology.NewMesh2D(4, 4), Params{HopLatency: 40, LinkBandwidthMBs: 175, InjectionMBs: 14})
	prop := func(r1, r2 uint16, size uint16) bool {
		a, b := sim.Time(r1), sim.Time(r2)
		if a > b {
			a, b = b, a
		}
		n.Reset()
		t1 := n.Transfer(0, 5, int(size), a)
		n.Reset()
		t2 := n.Transfer(0, 5, int(size), b)
		return t2 >= t1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
