package model

import "repro/internal/machine"

// Phase-structured MPP performance prediction — the use the paper's
// conclusion points to ("The latency and messaging delays can be used to
// predict MPP performance as reported in [32]", Xu & Hwang's early
// prediction work). A program is a sequence of phases, each dividing
// some computation over p nodes and ending in one collective; the
// predictor turns the Table 3 expressions into speedup and efficiency
// curves and finds the scalability knee.

// Phase is one compute+communicate step of an SPMD program.
type Phase struct {
	// SerialMicros is the single-node computation time of this phase;
	// it divides perfectly over p (the communication terms supply all
	// the sub-linearity).
	SerialMicros float64
	// SequentialFraction (0..1) of the phase that does not parallelize
	// (Amdahl term).
	SequentialFraction float64
	// Op ends the phase; empty means no communication.
	Op machine.Op
	// Bytes is the per-pair message length of the collective as a
	// function of p.
	Bytes func(p int) int
}

// Program is a phase sequence executed Iterations times.
type Program struct {
	Phases     []Phase
	Iterations int
}

// TimeOn predicts the program's execution time on p nodes of mach, µs.
func (pg Program) TimeOn(pr *Predictor, mach string, p int) float64 {
	var per float64
	for _, ph := range pg.Phases {
		seq := ph.SerialMicros * ph.SequentialFraction
		par := ph.SerialMicros * (1 - ph.SequentialFraction) / float64(p)
		per += seq + par
		if ph.Op != "" {
			m := 0
			if ph.Bytes != nil {
				m = ph.Bytes(p)
			}
			per += pr.Time(mach, ph.Op, m, p)
		}
	}
	it := pg.Iterations
	if it < 1 {
		it = 1
	}
	return float64(it) * per
}

// Speedup predicts T(1)/T(p). The single-node time has no communication.
func (pg Program) Speedup(pr *Predictor, mach string, p int) float64 {
	var serial float64
	for _, ph := range pg.Phases {
		serial += ph.SerialMicros
	}
	it := pg.Iterations
	if it < 1 {
		it = 1
	}
	t1 := float64(it) * serial
	tp := pg.TimeOn(pr, mach, p)
	if tp <= 0 {
		return 0
	}
	return t1 / tp
}

// Efficiency predicts Speedup(p)/p.
func (pg Program) Efficiency(pr *Predictor, mach string, p int) float64 {
	return pg.Speedup(pr, mach, p) / float64(p)
}

// Knee returns the largest machine size among candidates whose
// efficiency is at least minEff, or 0 if none qualifies — the practical
// scalability limit of the program on that machine.
func (pg Program) Knee(pr *Predictor, mach string, candidates []int, minEff float64) int {
	best := 0
	for _, p := range candidates {
		if pg.Efficiency(pr, mach, p) >= minEff && p > best {
			best = p
		}
	}
	return best
}
