package model

import (
	"testing"

	"repro/internal/fit"
	"repro/internal/machine"
)

func TestFromPaperKnowsAllMachines(t *testing.T) {
	pr := FromPaper()
	ms := pr.Machines()
	if len(ms) != 3 || ms[0] != "Paragon" || ms[1] != "SP2" || ms[2] != "T3D" {
		t.Fatalf("machines = %v", ms)
	}
}

func TestTimeMatchesPaperExample(t *testing.T) {
	pr := FromPaper()
	got := pr.Time("T3D", machine.OpAlltoall, 512, 64)
	if got < 2800 || got > 2900 {
		t.Fatalf("T3D alltoall(512,64) = %v, paper says 2.86 ms", got)
	}
}

func TestBandwidthMatchesPaper(t *testing.T) {
	pr := FromPaper()
	if bw := pr.Bandwidth("T3D", machine.OpAlltoall, 64); bw < 1730 || bw > 1760 {
		t.Fatalf("T3D R∞ = %v, want ≈1745", bw)
	}
}

func TestRankShortMessagesSP2BeatsParagon(t *testing.T) {
	// §9: "the SP2 outperforms the Paragon in any short messages less
	// than 1 KBytes" — check the headline collectives.
	pr := FromPaper()
	for _, op := range []machine.Op{machine.OpAlltoall, machine.OpGather, machine.OpScatter, machine.OpBarrier} {
		m := 64
		if op == machine.OpBarrier {
			m = 0
		}
		order := pr.Rank(op, m, 64)
		if pos(order, "SP2") > pos(order, "Paragon") {
			t.Errorf("%s short-message: SP2 should beat Paragon, got %v", op, order)
		}
	}
}

func TestRankLongMessagesParagonBeatsSP2ExceptReduce(t *testing.T) {
	// §9: "The Paragon performs better than the SP2 in long messages,
	// except the reduce operation."
	pr := FromPaper()
	for _, op := range []machine.Op{machine.OpBroadcast, machine.OpAlltoall, machine.OpGather, machine.OpScatter} {
		order := pr.Rank(op, 65536, 64)
		if pos(order, "Paragon") > pos(order, "SP2") {
			t.Errorf("%s long-message: Paragon should beat SP2, got %v", op, order)
		}
	}
	order := pr.Rank(machine.OpReduce, 65536, 64)
	if pos(order, "SP2") > pos(order, "Paragon") {
		t.Errorf("reduce long-message: SP2 should beat Paragon, got %v", order)
	}
}

func TestT3DFastestAlmostEverywhere(t *testing.T) {
	pr := FromPaper()
	for _, op := range []machine.Op{machine.OpBroadcast, machine.OpAlltoall, machine.OpGather, machine.OpBarrier} {
		for _, m := range []int{16, 4096, 65536} {
			if op == machine.OpBarrier && m > 16 {
				continue
			}
			if op == machine.OpAlltoall && m == 16 {
				// The Table 3 fits themselves put the SP2's alltoall
				// startup (1645 µs) a hair under the T3D's (1672 µs) at
				// p=64 — fitting noise the paper's prose glosses over.
				continue
			}
			if order := pr.Rank(op, m, 64); order[0] != "T3D" {
				t.Errorf("%s m=%d: T3D should rank first, got %v", op, m, order)
			}
		}
	}
}

func TestCrossoverSP2ParagonNearOneKB(t *testing.T) {
	// §5/§9: the SP2→Paragon crossover sits around 1 KB for the bulk
	// operations.
	pr := FromPaper()
	m, ok := pr.Crossover("SP2", "Paragon", machine.OpAlltoall, 64, 4, 65536)
	if !ok {
		t.Fatal("no crossover found")
	}
	// Table 3 places the 64-node total-exchange crossover near 12 KB;
	// for broadcast the Paragon wins from the start. The generic "short
	// messages < 1 KB favor the SP2" claim is tested via Rank above.
	if m < 4096 || m > 32768 {
		t.Fatalf("alltoall crossover at %d bytes, Table 3 places it near 12 KB", m)
	}
	mb, ok := pr.Crossover("SP2", "Paragon", machine.OpBroadcast, 64, 4, 65536)
	if !ok || mb != 4 {
		t.Fatalf("broadcast: Paragon should win from 4 B at p=64, got (%d, %v)", mb, ok)
	}
}

func TestCrossoverAbsentWhenBNeverWins(t *testing.T) {
	pr := FromPaper()
	// The Paragon never overtakes the T3D on total exchange.
	if m, ok := pr.Crossover("T3D", "Paragon", machine.OpAlltoall, 64, 4, 65536); ok {
		t.Fatalf("phantom crossover at %d", m)
	}
}

func TestCrossoverImmediateWhenBAlreadyWins(t *testing.T) {
	pr := FromPaper()
	m, ok := pr.Crossover("Paragon", "SP2", machine.OpAlltoall, 64, 4, 65536)
	if !ok || m != 4 {
		t.Fatalf("SP2 already wins at 4 B: got (%d, %v)", m, ok)
	}
}

func TestEfficiencyLimitSP2TotalExchange(t *testing.T) {
	// §5: the SP2's 64-node total exchange used ≈33% of the raw
	// 2.56 GB/s aggregate.
	pr := FromPaper()
	eff := pr.EfficiencyLimit("SP2", machine.OpAlltoall, 64, 40)
	if eff < 0.25 || eff > 0.40 {
		t.Fatalf("SP2 alltoall efficiency = %.2f, paper says ≈0.33", eff)
	}
}

func TestSweepTimeMonotone(t *testing.T) {
	pr := FromPaper()
	lengths := []int{4, 64, 1024, 16384, 65536}
	ts := pr.SweepTime("Paragon", machine.OpGather, 32, lengths)
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("sweep not monotone: %v", ts)
		}
	}
}

func TestWorkloadBestSizeBalancesCompAndComm(t *testing.T) {
	pr := FromPaper()
	// A job with 0.5 s of serial work and a fixed-1KB alltoall: at small
	// p compute dominates, at large p the O(p) alltoall startup does, so
	// an interior size must win.
	w := Workload{
		SerialMicros: 5e5,
		Op:           machine.OpAlltoall,
		BytesPerPair: func(p int) int { return 1024 },
		Steps:        1,
	}
	candidates := []int{2, 4, 8, 16, 32, 64, 128}
	bestP, bestT := w.BestSize(pr, "SP2", candidates)
	if bestP == 2 || bestP == 128 {
		t.Fatalf("expected an interior optimum, got p=%d (%.0f µs)", bestP, bestT)
	}
	// The optimum must actually be no worse than its neighbors.
	for _, p := range candidates {
		if w.TotalTime(pr, "SP2", p) < bestT {
			t.Fatalf("p=%d beats reported best p=%d", p, bestP)
		}
	}
}

func TestCommFractionGrowsWithMachineSize(t *testing.T) {
	pr := FromPaper()
	w := Workload{
		SerialMicros: 1e6,
		Op:           machine.OpAlltoall,
		BytesPerPair: func(p int) int { return 1 << 20 / (p * p) },
		Steps:        1,
	}
	small := w.CommFraction(pr, "Paragon", 4)
	large := w.CommFraction(pr, "Paragon", 64)
	if large <= small {
		t.Fatalf("comm fraction should grow with p: %.3f → %.3f", small, large)
	}
}

// twoMachinePredictor builds a predictor over a synthetic expression
// set where machine "slow" is strictly slower per byte but cheaper at
// startup — a controlled crossover.
func twoMachinePredictor() *Predictor {
	lin := func(a, b float64) fit.Form { return fit.Form{Kind: fit.Linear, A: a, B: b} }
	return New(map[string]map[machine.Op]fit.Expression{
		"fast": {machine.OpAlltoall: {Startup: lin(0, 100), PerByte: lin(0, 0.01)}},
		"slow": {machine.OpAlltoall: {Startup: lin(0, 10), PerByte: lin(0, 0.1)}},
	})
}

func TestNewPredictorMachinesSorted(t *testing.T) {
	pr := twoMachinePredictor()
	ms := pr.Machines()
	if len(ms) != 2 || ms[0] != "fast" || ms[1] != "slow" {
		t.Fatalf("machines = %v", ms)
	}
	if _, ok := pr.Expression("fast", machine.OpBarrier); ok {
		t.Fatal("phantom expression for an op the set lacks")
	}
	if _, ok := pr.Expression("CM-5", machine.OpAlltoall); ok {
		t.Fatal("phantom expression for an unknown machine")
	}
}

func TestRankFlipsAtCrossover(t *testing.T) {
	pr := twoMachinePredictor()
	// fast − slow time difference flips sign at m = 90/0.09 = 1000.
	if order := pr.Rank(machine.OpAlltoall, 100, 4); order[0] != "slow" {
		t.Fatalf("short messages should favor the low-startup machine, got %v", order)
	}
	if order := pr.Rank(machine.OpAlltoall, 10000, 4); order[0] != "fast" {
		t.Fatalf("long messages should favor the low-per-byte machine, got %v", order)
	}
	m, ok := pr.Crossover("slow", "fast", machine.OpAlltoall, 4, 1, 1<<20)
	if !ok {
		t.Fatal("no crossover found")
	}
	if m != 1001 {
		// Crossover returns the smallest m where b strictly wins:
		// at m=1000 the two are exactly equal.
		t.Fatalf("crossover at %d, want 1001", m)
	}
	// The boundary is exact: one byte below, slow still holds.
	if pr.Time("fast", machine.OpAlltoall, m-1, 4) < pr.Time("slow", machine.OpAlltoall, m-1, 4) {
		t.Fatal("crossover is not the smallest winning length")
	}
}

// TestCrossoverFindsMidLengthWindow: with piecewise expressions the
// ranking can flip back — b faster only in a mid-length window — and
// the old affine precondition (b must win at hi) would miss it. The
// bracketing scan must find the window.
func TestCrossoverFindsMidLengthWindow(t *testing.T) {
	lin := func(a, b float64) fit.Form { return fit.Form{Kind: fit.Linear, A: a, B: b} }
	// "steady" is affine; "bursty" undercuts it only in m ∈ [1024, 16384]
	// (cheap eager segment), then loses again in its rendezvous segment.
	pr := New(map[string]map[machine.Op]fit.Expression{
		"steady": {machine.OpAlltoall: {Startup: lin(0, 500), PerByte: lin(0, 0.05)}},
		"bursty": {machine.OpAlltoall: {
			Startup: lin(0, 2000), PerByte: lin(0, 0.05),
			Segments: []fit.Segment{
				{MMin: 4, MMax: 1024, Startup: lin(0, 2000), PerByte: lin(0, 0.05)},
				{MMin: 1024, MMax: 16384, Startup: lin(0, 100), PerByte: lin(0, 0.01)},
				{MMin: 16384, MMax: 1 << 20, Startup: lin(0, 2000), PerByte: lin(0, 0.1)},
			},
		}},
	})
	// bursty loses at both ends of the range...
	if pr.Time("bursty", machine.OpAlltoall, 4, 8) < pr.Time("steady", machine.OpAlltoall, 4, 8) {
		t.Fatal("test setup: bursty must lose at the bottom")
	}
	if pr.Time("bursty", machine.OpAlltoall, 1<<20, 8) < pr.Time("steady", machine.OpAlltoall, 1<<20, 8) {
		t.Fatal("test setup: bursty must lose at the top")
	}
	// ...but the scan still finds the mid-length window where it wins.
	m, ok := pr.Crossover("steady", "bursty", machine.OpAlltoall, 8, 4, 1<<20)
	if !ok {
		t.Fatal("mid-length crossover window missed")
	}
	if pr.Time("bursty", machine.OpAlltoall, m, 8) >= pr.Time("steady", machine.OpAlltoall, m, 8) {
		t.Fatalf("reported crossover m=%d is not a win", m)
	}
	if m < 1024 || m > 16384 {
		t.Fatalf("crossover m=%d outside the winning segment [1024, 16384]", m)
	}
}

func TestCrossoverClampsLowBound(t *testing.T) {
	pr := twoMachinePredictor()
	// lo < 1 must clamp rather than probe m=0 (degenerate for
	// startup-only comparisons).
	m, ok := pr.Crossover("fast", "slow", machine.OpAlltoall, 4, -5, 10)
	if !ok || m != 1 {
		t.Fatalf("slow already wins at the clamped lo=1: got (%d, %v)", m, ok)
	}
}

func TestEfficiencyLimitEdges(t *testing.T) {
	pr := FromPaper()
	if eff := pr.EfficiencyLimit("SP2", machine.OpAlltoall, 64, 0); eff != 0 {
		t.Fatalf("zero link rate should give 0, got %v", eff)
	}
	if eff := pr.EfficiencyLimit("SP2", machine.OpAlltoall, 64, -1); eff != 0 {
		t.Fatalf("negative link rate should give 0, got %v", eff)
	}
	// Barrier has no per-byte term, so its aggregated bandwidth — and
	// efficiency — is 0 by construction.
	if eff := pr.EfficiencyLimit("T3D", machine.OpBarrier, 64, 300); eff != 0 {
		t.Fatalf("barrier efficiency should be 0, got %v", eff)
	}
	// Efficiency scales inversely with the raw link rate.
	at40 := pr.EfficiencyLimit("SP2", machine.OpAlltoall, 64, 40)
	at80 := pr.EfficiencyLimit("SP2", machine.OpAlltoall, 64, 80)
	if at40 <= 0 || at80 <= 0 || at40/at80 < 1.99 || at40/at80 > 2.01 {
		t.Fatalf("efficiency should halve when the raw rate doubles: %v vs %v", at40, at80)
	}
}

func pos(order []string, name string) int {
	for i, v := range order {
		if v == name {
			return i
		}
	}
	return -1
}

func TestProgramSpeedupBoundedByAmdahl(t *testing.T) {
	pr := FromPaper()
	pg := Program{
		Phases: []Phase{{
			SerialMicros:       1e6,
			SequentialFraction: 0.05,
			Op:                 machine.OpAllreduce,
		}},
		Iterations: 10,
	}
	// OpAllreduce is not in Table 3 — use reduce for the model.
	pg.Phases[0].Op = machine.OpReduce
	pg.Phases[0].Bytes = func(p int) int { return 1024 }
	for _, p := range []int{2, 16, 64} {
		s := pg.Speedup(pr, "T3D", p)
		amdahl := 1 / (0.05 + 0.95/float64(p))
		if s <= 0 || s > amdahl {
			t.Fatalf("speedup(%d) = %.2f exceeds Amdahl bound %.2f", p, s, amdahl)
		}
	}
}

func TestProgramEfficiencyDecreases(t *testing.T) {
	pr := FromPaper()
	pg := Program{
		Phases: []Phase{{
			SerialMicros: 5e5,
			Op:           machine.OpAlltoall,
			Bytes:        func(p int) int { return 4096 },
		}},
		Iterations: 1,
	}
	prev := 2.0
	for _, p := range []int{2, 8, 32, 128} {
		e := pg.Efficiency(pr, "Paragon", p)
		if e >= prev {
			t.Fatalf("efficiency not decreasing at p=%d: %.3f then %.3f", p, prev, e)
		}
		prev = e
	}
}

func TestProgramKnee(t *testing.T) {
	pr := FromPaper()
	pg := Program{
		Phases: []Phase{{
			SerialMicros: 1e5,
			Op:           machine.OpAlltoall,
			Bytes:        func(p int) int { return 1024 },
		}},
	}
	candidates := []int{2, 4, 8, 16, 32, 64, 128}
	knee := pg.Knee(pr, "SP2", candidates, 0.5)
	if knee == 0 || knee == 128 {
		t.Fatalf("expected an interior scalability knee, got %d", knee)
	}
	// Above the knee, efficiency is below the threshold.
	if pg.Efficiency(pr, "SP2", knee*2) >= 0.5 {
		t.Fatalf("knee %d is not the boundary", knee)
	}
	// A machine with cheaper alltoall scales further at the same target.
	t3dKnee := pg.Knee(pr, "T3D", []int{2, 4, 8, 16, 32, 64}, 0.5)
	if t3dKnee < knee {
		t.Fatalf("T3D knee %d below SP2's %d", t3dKnee, knee)
	}
}

func TestProgramNoCommPhase(t *testing.T) {
	pr := FromPaper()
	pg := Program{Phases: []Phase{{SerialMicros: 1000}}}
	if got := pg.TimeOn(pr, "T3D", 10); got != 100 {
		t.Fatalf("pure compute phase = %v, want 100", got)
	}
}
