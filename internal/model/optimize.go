package model

import "repro/internal/machine"

// Workload describes a data-parallel job whose per-node computation
// shrinks as nodes are added while collective communication grows — the
// trade-off between "divided computation and collective communication"
// the paper's abstract says its expressions are for.
type Workload struct {
	// SerialMicros is the total single-node computation time.
	SerialMicros float64
	// Op is the collective executed each step (e.g. the total exchange
	// of a STAP corner turn).
	Op machine.Op
	// BytesPerPair is the per-pair message length of one collective as
	// a function of p (data usually divides, so m shrinks with p).
	BytesPerPair func(p int) int
	// Steps is how many compute+collective iterations the job runs.
	Steps int
}

// StepTime returns the predicted time of one step on p nodes in µs:
// perfectly divided computation plus the collective.
func (w Workload) StepTime(pr *Predictor, mach string, p int) float64 {
	compute := w.SerialMicros / float64(p)
	comm := pr.Time(mach, w.Op, w.BytesPerPair(p), p)
	return compute + comm
}

// TotalTime returns the predicted job time on p nodes in µs.
func (w Workload) TotalTime(pr *Predictor, mach string, p int) float64 {
	return float64(w.Steps) * w.StepTime(pr, mach, p)
}

// BestSize returns the machine size among candidates that minimizes the
// job time, with the predicted time. This is the (m, p) search the paper
// suggests: "possible combinations of (m, p) should be tested to achieve
// a shorter execution time".
func (w Workload) BestSize(pr *Predictor, mach string, candidates []int) (bestP int, bestMicros float64) {
	for i, p := range candidates {
		t := w.TotalTime(pr, mach, p)
		if i == 0 || t < bestMicros {
			bestP, bestMicros = p, t
		}
	}
	return bestP, bestMicros
}

// CommFraction returns the fraction of a step spent communicating on p
// nodes — the quantity that tells a developer whether more nodes help.
func (w Workload) CommFraction(pr *Predictor, mach string, p int) float64 {
	comm := pr.Time(mach, w.Op, w.BytesPerPair(p), p)
	return comm / w.StepTime(pr, mach, p)
}
