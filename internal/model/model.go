// Package model provides the analytic performance predictor the paper's
// closing sections advertise: given the fitted timing expressions
// (Table 3, or fits regenerated from the simulator), it answers the
// questions application developers ask — how long will a collective
// take, which machine wins for a given (m, p), where is the message-size
// crossover between two machines, and how should work be partitioned to
// trade divided computation against collective communication.
package model

import (
	"math"
	"sort"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/paper"
)

// Predictor evaluates collective performance from a set of fitted
// expressions, keyed by machine name then operation.
type Predictor struct {
	exprs map[string]map[machine.Op]fit.Expression
}

// FromPaper returns a predictor backed by the paper's Table 3.
func FromPaper() *Predictor { return &Predictor{exprs: paper.Table3} }

// New returns a predictor over the given expressions (e.g. fits
// regenerated from the simulator).
func New(exprs map[string]map[machine.Op]fit.Expression) *Predictor {
	return &Predictor{exprs: exprs}
}

// Machines returns the machine names known to the predictor, sorted.
func (pr *Predictor) Machines() []string {
	out := make([]string, 0, len(pr.exprs))
	for k := range pr.exprs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Expression returns the expression for (mach, op).
func (pr *Predictor) Expression(mach string, op machine.Op) (fit.Expression, bool) {
	row, ok := pr.exprs[mach]
	if !ok {
		return fit.Expression{}, false
	}
	e, ok := row[op]
	return e, ok
}

// Time predicts T(m, p) in µs. It panics on unknown machines or
// operations — these are programming errors in a fixed study. The
// per-byte rate is clamped at zero: several Table 3 fits have small
// negative terms that would go non-physical outside the measured range
// (e.g. the SP2 total exchange at p = 2). Piecewise expressions are
// answered by the segment covering m.
func (pr *Predictor) Time(mach string, op machine.Op, m, p int) float64 {
	e, ok := pr.Expression(mach, op)
	if !ok {
		panic("model: no expression for " + mach + "/" + string(op))
	}
	return e.Predict(m, p)
}

// Startup predicts T0(p) in µs.
func (pr *Predictor) Startup(mach string, op machine.Op, p int) float64 {
	e, ok := pr.Expression(mach, op)
	if !ok {
		panic("model: no expression for " + mach + "/" + string(op))
	}
	return e.EvalStartup(p)
}

// Bandwidth predicts the asymptotic aggregated bandwidth R∞(p) in MB/s.
func (pr *Predictor) Bandwidth(mach string, op machine.Op, p int) float64 {
	e, ok := pr.Expression(mach, op)
	if !ok {
		panic("model: no expression for " + mach + "/" + string(op))
	}
	return paper.AggregatedBandwidthMBs(e, op, p)
}

// Rank orders the predictor's machines from fastest to slowest for one
// (op, m, p) configuration — the paper's point that rankings flip with
// message length and operation.
func (pr *Predictor) Rank(op machine.Op, m, p int) []string {
	machines := pr.Machines()
	sort.Slice(machines, func(i, j int) bool {
		return pr.Time(machines[i], op, m, p) < pr.Time(machines[j], op, m, p)
	})
	return machines
}

// Crossover finds the message length at which machine b becomes faster
// than machine a for the given operation and size, searching lengths in
// [lo, hi]. It returns such an m and true, or 0 and false when b is
// never observed faster. For affine models the difference is monotone
// in m, so the result is exact and minimal. Piecewise models can flip
// back (b faster only in a mid-length window), so the range is first
// bracketed at power-of-two lengths — a window spanning at least one
// octave is always found — and the bracket refined by binary search;
// windows narrower than an octave between scan points may be missed.
func (pr *Predictor) Crossover(a, b string, op machine.Op, p, lo, hi int) (int, bool) {
	if lo < 1 {
		lo = 1
	}
	bWins := func(m int) bool { return pr.Time(b, op, m, p) < pr.Time(a, op, m, p) }
	if bWins(lo) {
		return lo, true // b already wins at the bottom of the range
	}
	// Bracket: walk doubling lengths (hi included) until b wins.
	prev, at := lo, 0
	for m := lo * 2; ; m *= 2 {
		if m > hi {
			m = hi
		}
		if m <= prev {
			return 0, false
		}
		if bWins(m) {
			at = m
			break
		}
		prev = m
		if m == hi {
			return 0, false
		}
	}
	// Refine: binary search on the first flip inside (prev, at].
	lo, hi = prev+1, at
	for lo < hi {
		mid := lo + (hi-lo)/2
		if bWins(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// EfficiencyLimit returns the fraction of the raw aggregated network
// bandwidth (link rate × p) a collective achieves at saturation — the
// paper's §5 observation that the SP2's 64-node total exchange consumed
// only 33% of its raw capacity.
func (pr *Predictor) EfficiencyLimit(mach string, op machine.Op, p int, linkMBs float64) float64 {
	raw := linkMBs * float64(p)
	if raw <= 0 {
		return 0
	}
	return pr.Bandwidth(mach, op, p) / raw
}

// SweepTime evaluates T over a message-length sweep, for plotting.
func (pr *Predictor) SweepTime(mach string, op machine.Op, p int, lengths []int) []float64 {
	out := make([]float64, len(lengths))
	for i, m := range lengths {
		out[i] = pr.Time(mach, op, m, p)
	}
	return out
}

// IsFinite reports whether a predicted value is a usable number (fits
// with negative per-byte terms can go negative at extreme ranges).
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
