package coll

import "sort"

// Algorithm names, used by the per-machine algorithm tables and the
// ablation benchmarks.
const (
	AlgLinear            = "linear"
	AlgBinomial          = "binomial"
	AlgCentral           = "central"
	AlgTree              = "tree"
	AlgDissemination     = "dissemination"
	AlgHardware          = "hardware" // T3D barrier circuit; bound by the mpi layer
	AlgPairwise          = "pairwise"
	AlgXOR               = "xor"
	AlgBruck             = "bruck"
	AlgRecursiveDoubling = "recursive-doubling"
	AlgRing              = "ring"
	AlgGatherBcast       = "gather-bcast"
	AlgReduceBcast       = "reduce-bcast"
	AlgScatterAllgather  = "scatter-allgather"
	AlgRabenseifner      = "rabenseifner"
	AlgPipelined         = "pipelined"
)

// Registries map algorithm names to implementations so harnesses can
// sweep alternatives. The hardware barrier is not listed here: it needs
// machine support and is bound by the mpi layer.

// BcastAlg is the signature of a broadcast algorithm.
type BcastAlg func(t Transport, root int, data []byte) []byte

// BarrierAlg is the signature of a barrier algorithm.
type BarrierAlg func(t Transport)

// GatherAlg is the signature of a gather algorithm.
type GatherAlg func(t Transport, root int, mine []byte) [][]byte

// ScatterAlg is the signature of a scatter algorithm.
type ScatterAlg func(t Transport, root int, blocks [][]byte) []byte

// AlltoallAlg is the signature of a total-exchange algorithm.
type AlltoallAlg func(t Transport, blocks [][]byte) [][]byte

// ReduceAlg is the signature of a reduce algorithm.
type ReduceAlg func(t Transport, root int, mine []byte, f Combiner) []byte

// ScanAlg is the signature of a scan algorithm.
type ScanAlg func(t Transport, mine []byte, f Combiner) []byte

// AllgatherAlg is the signature of an allgather algorithm.
type AllgatherAlg func(t Transport, mine []byte) [][]byte

// AllreduceAlg is the signature of an allreduce algorithm.
type AllreduceAlg func(t Transport, mine []byte, f Combiner) []byte

// The algorithm registries.
var (
	Bcasts = map[string]BcastAlg{
		AlgLinear:           BcastLinear,
		AlgBinomial:         BcastBinomial,
		AlgScatterAllgather: BcastScatterAllgather,
		AlgPipelined: func(t Transport, root int, data []byte) []byte {
			return BcastPipelined(t, root, data, 4096)
		},
	}
	Barriers = map[string]BarrierAlg{
		AlgCentral:       BarrierCentral,
		AlgTree:          BarrierTree,
		AlgDissemination: BarrierDissemination,
	}
	Gathers = map[string]GatherAlg{
		AlgLinear:   GatherLinear,
		AlgBinomial: GatherBinomial,
	}
	Scatters = map[string]ScatterAlg{
		AlgLinear:   ScatterLinear,
		AlgBinomial: ScatterBinomial,
	}
	Alltoalls = map[string]AlltoallAlg{
		AlgLinear:   AlltoallLinear,
		AlgPairwise: AlltoallPairwise,
		AlgXOR:      AlltoallXOR,
		AlgBruck:    AlltoallBruck,
	}
	Reduces = map[string]ReduceAlg{
		AlgLinear:   ReduceLinear,
		AlgBinomial: ReduceBinomial,
	}
	Scans = map[string]ScanAlg{
		AlgLinear:            ScanLinear,
		AlgRecursiveDoubling: ScanRecursiveDoubling,
	}
	Allgathers = map[string]AllgatherAlg{
		AlgRing:        AllgatherRing,
		AlgGatherBcast: AllgatherGatherBcast,
	}
	Allreduces = map[string]AllreduceAlg{
		AlgReduceBcast:       AllreduceReduceBcast,
		AlgRecursiveDoubling: AllreduceRecursiveDoubling,
		AlgRabenseifner:      AllreduceRabenseifner,
	}
)

// Names returns the sorted keys of an algorithm registry.
func Names[V any](reg map[string]V) []string {
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Operation names as the harnesses spell them (machine.Op values are the
// same strings; coll cannot import machine without a cycle).
const (
	OpBarrier   = "barrier"
	OpBroadcast = "broadcast"
	OpGather    = "gather"
	OpScatter   = "scatter"
	OpAlltoall  = "alltoall"
	OpReduce    = "reduce"
	OpScan      = "scan"
	OpAllgather = "allgather"
	OpAllreduce = "allreduce"
)

// RegisteredOps returns the operation names that have an algorithm
// registry, sorted.
func RegisteredOps() []string {
	return []string{OpAllgather, OpAllreduce, OpAlltoall, OpBarrier,
		OpBroadcast, OpGather, OpReduce, OpScan, OpScatter}
}

// Algorithms returns the sorted algorithm names registered for op, or
// nil for an unknown operation. The T3D's hardware barrier is not
// listed: it needs machine support and is bound by the mpi layer.
func Algorithms(op string) []string {
	switch op {
	case OpBarrier:
		return Names(Barriers)
	case OpBroadcast:
		return Names(Bcasts)
	case OpGather:
		return Names(Gathers)
	case OpScatter:
		return Names(Scatters)
	case OpAlltoall:
		return Names(Alltoalls)
	case OpReduce:
		return Names(Reduces)
	case OpScan:
		return Names(Scans)
	case OpAllgather:
		return Names(Allgathers)
	case OpAllreduce:
		return Names(Allreduces)
	}
	return nil
}

// HasAlgorithm reports whether name is registered for op.
func HasAlgorithm(op, name string) bool {
	for _, n := range Algorithms(op) {
		if n == name {
			return true
		}
	}
	return false
}
