package coll

// ReduceLinear reduces equal-size contributions to root by direct
// fan-in: the root receives p-1 messages and combines them in rank
// order. O(p) at the root.
func ReduceLinear(t Transport, root int, mine []byte, f Combiner) []byte {
	p := t.Size()
	rank := t.Rank()
	if rank != root {
		t.Send(root, tagReduce, mine)
		return nil
	}
	// Combine in rank order for non-commutative operations.
	var acc []byte
	first := true
	for r := 0; r < p; r++ {
		var contrib []byte
		if r == root {
			contrib = mine
		} else {
			contrib = t.Recv(r, tagReduce)
		}
		if first {
			acc = contrib
			first = false
		} else {
			acc = t.Combine(acc, contrib, f)
		}
	}
	return acc
}

// ReduceBinomial reduces along a binomial tree in ⌈log2 p⌉ stages — the
// binary/binomial tree the paper reports for EPCC MPI's reduce [6] and
// the reason reduce startup grows logarithmically (Fig. 1f). Operands
// combine in rank order, so non-commutative Combiners are safe. The
// result lands on root; other ranks return nil.
//
// The rank-order guarantee relies on the binomial schedule: a rank only
// ever absorbs partial results of strictly higher contiguous rank spans,
// so Combine(lower-span, higher-span) preserves order. To keep that true
// for any root, the tree always runs in true rank order toward rank 0,
// and the result takes one extra hop to a non-zero root afterward —
// exactly MPICH's treatment of (potentially) non-commutative operations.
func ReduceBinomial(t Transport, root int, mine []byte, f Combiner) []byte {
	p := t.Size()
	rank := t.Rank()

	acc := mine
	mask := 1
	for mask < p {
		if rank&mask == 0 {
			peer := rank | mask
			if peer < p {
				in := t.Recv(peer, tagReduce)
				acc = t.Combine(acc, in, f) // my span precedes peer's
			}
		} else {
			t.Send(rank-mask, tagReduce, acc)
			acc = nil
			break
		}
		mask <<= 1
	}
	if root == 0 {
		return acc
	}
	// Relocate the result from rank 0 to the requested root.
	switch rank {
	case 0:
		t.Send(root, tagReduce, acc)
		return nil
	case root:
		return t.Recv(0, tagReduce)
	default:
		return nil
	}
}
