package coll

// Long-message algorithms the mid-90s libraries were just adopting;
// included as ablations against the tree/linear algorithms the studied
// machines shipped.

// BcastScatterAllgather broadcasts by splitting the message into p
// pieces, scattering them binomially, and ring-allgathering the pieces —
// the van de Geijn algorithm. It moves 2·m·(p-1)/p bytes per node
// instead of the binomial tree's m·log p on the critical path, winning
// for long messages. The payload is padded to a multiple of p and
// trimmed on return.
func BcastScatterAllgather(t Transport, root int, data []byte) []byte {
	p := t.Size()
	if p == 1 {
		return data
	}
	size := len(data)
	// All non-root ranks must know the true length to trim; ship it in
	// a tiny header block alongside the scatter by padding to p pieces.
	var blocks [][]byte
	if t.Rank() == root {
		padded := len(data)
		if rem := padded % p; rem != 0 {
			padded += p - rem
		}
		var buf []byte
		if opaquePayloads(t) {
			buf = ZeroBytes(padded)
		} else {
			buf = make([]byte, padded)
			copy(buf, data)
		}
		blocks = split(buf, p)
	}
	mine := ScatterBinomial(t, root, blocks)
	pieces := AllgatherRing(t, mine)
	full := merge(t, pieces)

	// Non-root ranks learn the original size from the root's header.
	if t.Rank() == root {
		hdr := []byte{byte(size), byte(size >> 8), byte(size >> 16), byte(size >> 24)}
		for r := 0; r < p; r++ {
			if r != root {
				t.Send(r, tagBcast+0x40, hdr)
			}
		}
		return data
	}
	hdr := t.Recv(root, tagBcast+0x40)
	size = int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
	return full[:size]
}

// AllreduceRabenseifner combines a recursive-halving reduce-scatter with
// a ring allgather: each node moves O(m) bytes instead of the O(m·log p)
// of recursive doubling, the long-message allreduce of choice. Requires
// a commutative combiner; the payload must split into p equal blocks
// (it is padded if not) — here we require divisibility for clarity and
// fall back to AllreduceReduceBcast otherwise.
func AllreduceRabenseifner(t Transport, mine []byte, f Combiner) []byte {
	p := t.Size()
	if p == 1 {
		return mine
	}
	if p&(p-1) != 0 || len(mine)%p != 0 {
		return AllreduceReduceBcast(t, mine, f)
	}
	myBlock := ReduceScatter(t, split(mine, p), f)
	return merge(t, AllgatherRing(t, myBlock))
}
