package coll

import (
	"fmt"
	"sync"
)

// memFabric is an in-memory message fabric for correctness tests: p
// goroutines exchange messages over per-(src,dst,tag) buffered channels.
// It has no notion of time — only delivery and ordering semantics.
type memFabric struct {
	p  int
	mu sync.Mutex
	ch map[string]chan []byte
}

func newMemFabric(p int) *memFabric {
	return &memFabric{p: p, ch: make(map[string]chan []byte)}
}

func (f *memFabric) chanFor(src, dst, tag int) chan []byte {
	key := fmt.Sprintf("%d/%d/%d", src, dst, tag)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.ch[key]
	if !ok {
		c = make(chan []byte, 4096)
		f.ch[key] = c
	}
	return c
}

// memTransport is one rank's endpoint on a memFabric.
type memTransport struct {
	f    *memFabric
	rank int
}

func (t *memTransport) Rank() int { return t.rank }
func (t *memTransport) Size() int { return t.f.p }

func (t *memTransport) Send(dst, tag int, data []byte) {
	t.f.chanFor(t.rank, dst, tag) <- clone(data)
}

func (t *memTransport) Recv(src, tag int) []byte {
	return <-t.f.chanFor(src, t.rank, tag)
}

func (t *memTransport) Combine(a, b []byte, f Combiner) []byte { return f(a, b) }

// runSPMD runs body on p concurrent ranks and returns per-rank results.
func runSPMD[T any](p int, body func(t Transport) T) []T {
	f := newMemFabric(p)
	out := make([]T, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[r] = body(&memTransport{f: f, rank: r})
		}()
	}
	wg.Wait()
	return out
}
