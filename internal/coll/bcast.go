package coll

// BcastLinear broadcasts data from root by p-1 sequential sends. O(p)
// root-bound time; the baseline the tree algorithms beat.
func BcastLinear(t Transport, root int, data []byte) []byte {
	p := t.Size()
	if p == 1 {
		return data
	}
	if t.Rank() == root {
		for r := 0; r < p; r++ {
			if r != root {
				t.Send(r, tagBcast, data)
			}
		}
		return data
	}
	return t.Recv(root, tagBcast)
}

// BcastBinomial broadcasts data from root along a binomial tree in
// ⌈log2 p⌉ stages — the MPICH algorithm, and equivalent in depth to the
// EPCC MPI unbalanced tree the paper cites for the T3D [6]. Startup
// latency grows logarithmically in p, which is the Fig. 1a shape.
func BcastBinomial(t Transport, root int, data []byte) []byte {
	p := t.Size()
	if p == 1 {
		return data
	}
	rank := t.Rank()
	v := vrank(rank, root, p)

	// Receive phase: my parent is v minus my lowest set bit.
	mask := 1
	for mask < p {
		if v&mask != 0 {
			data = t.Recv(unvrank(v-mask, root, p), tagBcast)
			break
		}
		mask <<= 1
	}
	// Forward phase: serve subtrees below my entry mask.
	mask >>= 1
	for mask > 0 {
		if v+mask < p {
			t.Send(unvrank(v+mask, root, p), tagBcast, data)
		}
		mask >>= 1
	}
	return data
}
