package coll

// ScanLinear computes an inclusive prefix reduction along the rank
// chain: rank r waits for the prefix of ranks [0, r), combines its own
// contribution, and forwards. O(p) critical path; the baseline.
func ScanLinear(t Transport, mine []byte, f Combiner) []byte {
	p := t.Size()
	rank := t.Rank()
	acc := mine
	if rank > 0 {
		prev := t.Recv(rank-1, tagScan)
		acc = t.Combine(prev, acc, f)
	}
	if rank+1 < p {
		t.Send(rank+1, tagScan, acc)
	}
	return acc
}

// ScanRecursiveDoubling computes an inclusive prefix reduction in
// ⌈log2 p⌉ rounds (Hillis–Steele): in round d, rank r sends its running
// partial to r+2^d and absorbs the partial from r−2^d. This gives the
// logarithmic startup growth of Fig. 1e. Non-commutative safe: the
// incoming partial always covers the span immediately left of mine.
func ScanRecursiveDoubling(t Transport, mine []byte, f Combiner) []byte {
	p := t.Size()
	rank := t.Rank()
	acc := mine
	round := 0
	for d := 1; d < p; d <<= 1 {
		if rank+d < p {
			t.Send(rank+d, tagScan+round<<8, acc)
		}
		if rank-d >= 0 {
			left := t.Recv(rank-d, tagScan+round<<8)
			acc = t.Combine(left, acc, f)
		}
		round++
	}
	return acc
}
