package coll

// GatherLinear collects one equal-size block from every rank at root:
// each rank sends directly, the root drains p-1 messages. Startup grows
// linearly in p (the Fig. 1d shape); the root's ejection port and
// per-message receive cost are the bottleneck, which is exactly the
// paper's account of the Paragon's 48 µs-per-message NX gather. Returns
// the blocks in rank order on root, nil elsewhere.
func GatherLinear(t Transport, root int, mine []byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if rank != root {
		t.Send(root, tagGather, mine)
		return nil
	}
	out := make([][]byte, p)
	out[root] = mine
	for r := 0; r < p; r++ {
		if r != root {
			out[r] = t.Recv(r, tagGather)
		}
	}
	return out
}

// GatherBinomial collects blocks along a binomial tree: each interior
// node forwards its whole subtree's data as one message, halving the
// message count at the cost of retransmitting data. ⌈log2 p⌉ stages.
func GatherBinomial(t Transport, root int, mine []byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	size := len(mine)
	v := vrank(rank, root, p)

	// sub holds blocks for vranks [v, v+extent) gathered so far.
	sub := [][]byte{mine}
	mask := 1
	for mask < p {
		if v&mask != 0 {
			// Ship my subtree to my parent as one message.
			t.Send(unvrank(v-mask, root, p), tagGather, merge(t, sub))
			return nil
		}
		if v|mask < p {
			buf := t.Recv(unvrank(v|mask, root, p), tagGather)
			n := len(sub) // peer subtree is at most as large as mine
			if size > 0 {
				n = len(buf) / size
			} else {
				n = subtreeSize(v|mask, p)
			}
			sub = append(sub, split(buf, n)...)
		}
		mask <<= 1
	}
	// v == 0: rotate from vrank order back to rank order.
	out := make([][]byte, p)
	for i, b := range sub {
		out[unvrank(i, root, p)] = b
	}
	return out
}

// subtreeSize returns the number of vranks in the binomial subtree
// rooted at v in a tree over p nodes.
func subtreeSize(v, p int) int {
	// The subtree at v spans [v, min(v+low, p)) where low is the lowest
	// set bit of v (or p for v = 0).
	if v == 0 {
		return p
	}
	low := v & -v
	if v+low > p {
		return p - v
	}
	return low
}
