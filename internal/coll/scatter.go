package coll

// ScatterLinear distributes one equal-size block to every rank from
// root via p-1 direct sends. Startup grows linearly in p (Fig. 1c); the
// root's injection port serializes the sends. Every rank returns its
// block; root must pass p blocks in rank order, others nil.
func ScatterLinear(t Transport, root int, blocks [][]byte) []byte {
	p := t.Size()
	rank := t.Rank()
	if rank != root {
		return t.Recv(root, tagScatter)
	}
	if len(blocks) != p {
		panic("coll: scatter root needs exactly p blocks")
	}
	checkUniform(blocks)
	for r := 0; r < p; r++ {
		if r != root {
			t.Send(r, tagScatter, blocks[r])
		}
	}
	return blocks[root]
}

// ScatterBinomial distributes blocks down a binomial tree: the root
// sends whole subtree bundles, each interior node peels off its own
// block and forwards the rest. ⌈log2 p⌉ stages of shrinking messages.
func ScatterBinomial(t Transport, root int, blocks [][]byte) []byte {
	p := t.Size()
	rank := t.Rank()
	v := vrank(rank, root, p)

	var sub [][]byte // blocks for vranks [v, v+extent), vrank order
	if rank == root {
		if len(blocks) != p {
			panic("coll: scatter root needs exactly p blocks")
		}
		checkUniform(blocks)
		sub = make([][]byte, p)
		for i := range sub {
			sub[i] = blocks[unvrank(i, root, p)]
		}
	} else {
		// Receive my subtree bundle from my parent.
		mask := 1
		for mask < p {
			if v&mask != 0 {
				buf := t.Recv(unvrank(v-mask, root, p), tagScatter)
				n := subtreeSize(v, p)
				if n > 0 && len(buf) > 0 {
					sub = split(buf, n)
				} else {
					sub = make([][]byte, n)
					for i := range sub {
						sub[i] = []byte{}
					}
				}
				break
			}
			mask <<= 1
		}
	}

	// Forward phase: hand each child the tail half of my span, largest
	// subtree first, shrinking my span as I go.
	entry := 1
	if v == 0 {
		for entry < p {
			entry <<= 1
		}
	} else {
		entry = v & -v
	}
	for mask := entry >> 1; mask > 0; mask >>= 1 {
		child := v + mask
		if child < p {
			t.Send(unvrank(child, root, p), tagScatter, merge(t, sub[mask:]))
			sub = sub[:mask]
		}
	}
	return sub[0]
}
