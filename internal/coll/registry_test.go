package coll

import (
	"reflect"
	"sort"
	"testing"
)

// allAlgConstants lists every Alg* constant in the package.
var allAlgConstants = []string{
	AlgLinear, AlgBinomial, AlgCentral, AlgTree, AlgDissemination,
	AlgHardware, AlgPairwise, AlgXOR, AlgBruck, AlgRecursiveDoubling,
	AlgRing, AlgGatherBcast, AlgReduceBcast, AlgScatterAllgather,
	AlgRabenseifner, AlgPipelined,
}

// TestEveryAlgConstantResolves checks that each Alg* constant is
// registered for at least one operation — a renamed registry key or a
// dangling constant fails here. AlgHardware is the one exception: the
// T3D barrier circuit needs machine support and is bound by the mpi
// layer, not a registry.
func TestEveryAlgConstantResolves(t *testing.T) {
	registered := map[string]bool{}
	for _, op := range RegisteredOps() {
		for _, name := range Algorithms(op) {
			registered[name] = true
		}
	}
	for _, c := range allAlgConstants {
		if c == AlgHardware {
			if registered[c] {
				t.Errorf("%q must stay out of the registries (machine-bound)", c)
			}
			continue
		}
		if !registered[c] {
			t.Errorf("constant %q is in no registry", c)
		}
	}
}

func TestRegistryListingsSortedAndStable(t *testing.T) {
	for _, op := range RegisteredOps() {
		algs := Algorithms(op)
		if len(algs) == 0 {
			t.Errorf("%s: empty registry", op)
		}
		if !sort.StringsAreSorted(algs) {
			t.Errorf("%s: listing not sorted: %v", op, algs)
		}
		if again := Algorithms(op); !reflect.DeepEqual(algs, again) {
			t.Errorf("%s: listing unstable: %v vs %v", op, algs, again)
		}
	}
}

func TestRegisteredOpsSortedAndComplete(t *testing.T) {
	ops := RegisteredOps()
	if !sort.StringsAreSorted(ops) {
		t.Fatalf("RegisteredOps not sorted: %v", ops)
	}
	want := map[string]int{
		OpBarrier: len(Barriers), OpBroadcast: len(Bcasts),
		OpGather: len(Gathers), OpScatter: len(Scatters),
		OpAlltoall: len(Alltoalls), OpReduce: len(Reduces),
		OpScan: len(Scans), OpAllgather: len(Allgathers),
		OpAllreduce: len(Allreduces),
	}
	if len(ops) != len(want) {
		t.Fatalf("RegisteredOps = %v, want %d ops", ops, len(want))
	}
	for op, n := range want {
		if got := len(Algorithms(op)); got != n {
			t.Errorf("%s: %d algorithms listed, registry holds %d", op, got, n)
		}
	}
}

func TestAlgorithmsUnknownOp(t *testing.T) {
	if got := Algorithms("gossip"); got != nil {
		t.Fatalf("Algorithms(gossip) = %v, want nil", got)
	}
	if HasAlgorithm("broadcast", "telepathy") {
		t.Fatal("HasAlgorithm accepted an unregistered name")
	}
	if !HasAlgorithm("alltoall", AlgBruck) {
		t.Fatal("HasAlgorithm rejected a registered name")
	}
}
