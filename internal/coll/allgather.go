package coll

// AllgatherRing collects one equal-size block from every rank at every
// rank using p-1 ring steps: each step, pass along the block received in
// the previous step. Total traffic m(p-1) per node, perfectly balanced.
func AllgatherRing(t Transport, mine []byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	out := make([][]byte, p)
	out[rank] = mine
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	carry := mine
	hold := rank // rank whose block I am carrying
	for step := 0; step < p-1; step++ {
		t.Send(next, tagGatherv+step<<8, carry)
		carry = t.Recv(prev, tagGatherv+step<<8)
		hold = (hold - 1 + p) % p
		out[hold] = carry
	}
	return out
}

// AllgatherGatherBcast collects blocks at rank 0 with a binomial gather
// and redistributes with a binomial broadcast — the simple composite the
// early MPICH used.
func AllgatherGatherBcast(t Transport, mine []byte) [][]byte {
	p := t.Size()
	gathered := GatherBinomial(t, 0, mine)
	var buf []byte
	if t.Rank() == 0 {
		buf = merge(t, gathered)
	}
	buf = BcastBinomial(t, 0, buf)
	return split(buf, p)
}
