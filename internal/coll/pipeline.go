package coll

// BcastPipelined broadcasts data from root down a rank-ordered chain in
// fixed-size segments: while segment k travels hop i, segment k+1
// travels hop i−1. For a long message the chain costs ≈ m/B + p·seg/B
// instead of the binomial tree's log2(p)·m/B — the classic pipelined
// broadcast that later MPI libraries adopted for bulk data. segSize ≤ 0
// uses a 4 KB segment.
func BcastPipelined(t Transport, root int, data []byte, segSize int) []byte {
	p := t.Size()
	if p == 1 {
		return data
	}
	if segSize <= 0 {
		segSize = 4096
	}
	rank := t.Rank()
	v := vrank(rank, root, p)
	next := unvrank(v+1, root, p)
	prev := unvrank(v-1+p, root, p)

	if v == 0 {
		nseg := (len(data) + segSize - 1) / segSize
		if nseg == 0 {
			nseg = 1 // a single empty segment carries the termination
		}
		// Announce the segment count, then stream.
		t.Send(next, tagBcast+0x80, []byte{byte(nseg), byte(nseg >> 8), byte(nseg >> 16)})
		for s := 0; s < nseg; s++ {
			lo := s * segSize
			hi := lo + segSize
			if hi > len(data) {
				hi = len(data)
			}
			t.Send(next, tagBcast+0x81+(s%2)<<8, data[lo:hi])
		}
		return data
	}

	hdr := t.Recv(prev, tagBcast+0x80)
	nseg := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
	last := v == p-1
	if !last {
		t.Send(next, tagBcast+0x80, hdr)
	}
	opaque := opaquePayloads(t)
	var out []byte
	total := 0
	for s := 0; s < nseg; s++ {
		seg := t.Recv(prev, tagBcast+0x81+(s%2)<<8)
		if !last {
			t.Send(next, tagBcast+0x81+(s%2)<<8, seg)
		}
		if opaque {
			total += len(seg)
		} else {
			out = append(out, seg...)
		}
	}
	if opaque {
		out = ZeroBytes(total)
	}
	return out
}
