package coll

// AllreduceReduceBcast reduces to rank 0 and broadcasts the result —
// the composite of two binomial trees, 2·⌈log2 p⌉ stages.
func AllreduceReduceBcast(t Transport, mine []byte, f Combiner) []byte {
	res := ReduceBinomial(t, 0, mine, f)
	return BcastBinomial(t, 0, res)
}

// AllreduceRecursiveDoubling reduces in ⌈log2 p⌉ full-exchange rounds
// when p is a power of two: in round d, rank r exchanges partials with
// r XOR 2^d and both combine. For other p it falls back to
// AllreduceReduceBcast. Operands still combine in rank order.
func AllreduceRecursiveDoubling(t Transport, mine []byte, f Combiner) []byte {
	p := t.Size()
	if p&(p-1) != 0 {
		return AllreduceReduceBcast(t, mine, f)
	}
	rank := t.Rank()
	acc := mine
	round := 0
	for d := 1; d < p; d <<= 1 {
		peer := rank ^ d
		t.Send(peer, tagReduce+0x100+round<<9, acc)
		in := t.Recv(peer, tagReduce+0x100+round<<9)
		if peer < rank {
			acc = t.Combine(in, acc, f) // peer's span precedes mine
		} else {
			acc = t.Combine(acc, in, f)
		}
		round++
	}
	return acc
}
