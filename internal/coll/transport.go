// Package coll implements the collective communication algorithms used
// by the vendor MPI libraries the paper measured: binomial trees
// (MPICH/EPCC broadcast, reduce, barrier), linear fan-in/fan-out
// (gather, scatter), pairwise and Bruck total exchange, recursive
// doubling (scan, allreduce, dissemination barrier), and ring allgather.
//
// Every algorithm is written against the small Transport interface, so
// the same code runs over the machine simulator (timing studies) and
// over an in-memory fabric (correctness tests). Algorithms are SPMD:
// every rank of the group calls the same function with matching
// arguments, exactly as MPI requires.
package coll

// Transport is the point-to-point layer an algorithm runs over.
//
// Send is asynchronous-eager (it may return before the data is
// delivered); Recv blocks until a message with the given source and tag
// arrives. Message order between a fixed (source, destination) pair is
// preserved. Combine applies a reduction step and accounts for its
// computational cost.
type Transport interface {
	// Rank returns this process's rank in [0, Size()).
	Rank() int
	// Size returns the number of processes in the group.
	Size() int
	// Send transmits data to rank dst with the given tag.
	Send(dst, tag int, data []byte)
	// Recv blocks until a message from rank src with the given tag
	// arrives and returns its payload.
	Recv(src, tag int) []byte
	// Combine returns a ⊕ b, charging the arithmetic cost of the
	// combine to this rank. The operands are in rank order: a originates
	// from lower ranks than b, which makes non-commutative reductions
	// well defined.
	Combine(a, b []byte, f Combiner) []byte
}

// Combiner merges two reduction operands in rank order (a before b) and
// returns the result. Implementations must not modify a or b.
type Combiner func(a, b []byte) []byte

// OpaqueTransport is an optional Transport capability: a transport may
// declare that payload CONTENTS are immaterial to its users — only
// lengths drive the simulation — so algorithms may skip payload byte
// movement and stage messages out of the shared zero arena. The
// measurement harness (whose buffers are all zeros and whose results
// are discarded) runs this way; correctness tests and applications use
// ordinary transports and real bytes. Control headers an algorithm
// reads (segment counts, true lengths) are unaffected: they are built
// and shipped verbatim either way.
type OpaqueTransport interface {
	OpaquePayloads() bool
}

// opaquePayloads reports whether t declared its payloads opaque.
func opaquePayloads(t Transport) bool {
	o, ok := t.(OpaqueTransport)
	return ok && o.OpaquePayloads()
}

// merge concatenates blocks into the single buffer an algorithm ships
// as one message. Under an opaque-payload transport it returns a zero
// slab of the combined length instead of copying.
func merge(t Transport, blocks [][]byte) []byte {
	if opaquePayloads(t) {
		n := 0
		for _, b := range blocks {
			n += len(b)
		}
		return ZeroBytes(n)
	}
	return concat(blocks)
}

// Tags used by the algorithms. Distinct phases use distinct tags so that
// overlapping algorithm steps between the same pair of ranks can never
// match the wrong message. FIFO per (src,dst,tag) makes back-to-back
// collectives safe without epochs.
const (
	tagBcast    = 0x10
	tagBarrier  = 0x11
	tagGather   = 0x12
	tagScatter  = 0x13
	tagAlltoall = 0x14
	tagReduce   = 0x15
	tagScan     = 0x16
	tagGatherv  = 0x17
	tagRelease  = 0x18
)

// vrank returns the rank relative to root, so tree algorithms can treat
// any root as virtual rank 0.
func vrank(rank, root, p int) int { return (rank - root + p) % p }

// unvrank is the inverse of vrank.
func unvrank(v, root, p int) int { return (v + root) % p }
