package coll

// Blocks of equal size are the unit of data in gather/scatter/alltoall:
// the paper's m is the per-pair message length, so a p-node gather moves
// p-1 blocks of m bytes each. Equal-size blocks concatenate losslessly,
// which lets tree algorithms ship whole subtrees as one message.

// concat joins blocks into one contiguous buffer.
func concat(blocks [][]byte) []byte {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	out := make([]byte, 0, n)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// split cuts buf into count equal blocks. len(buf) must be divisible by
// count; count 0 returns nil.
func split(buf []byte, count int) [][]byte {
	if count == 0 {
		return nil
	}
	if len(buf)%count != 0 {
		panic("coll: buffer not divisible into equal blocks")
	}
	size := len(buf) / count
	out := make([][]byte, count)
	for i := range out {
		out[i] = buf[i*size : (i+1)*size : (i+1)*size]
	}
	return out
}

// clone copies b; algorithms clone before mutating shared buffers.
func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// checkUniform panics unless all blocks have equal length (the MPI
// contract for the fixed-count collectives).
func checkUniform(blocks [][]byte) int {
	if len(blocks) == 0 {
		return 0
	}
	size := len(blocks[0])
	for _, b := range blocks[1:] {
		if len(b) != size {
			panic("coll: blocks must have uniform size")
		}
	}
	return size
}
