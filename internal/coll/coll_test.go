package coll

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// testSizes covers the paper's machine sizes (2..128) plus odd sizes
// that stress non-power-of-two tree handling.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 32}

// payload returns a deterministic distinct payload for (rank, i).
func payload(rank, i, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(rank*31 + i*7 + j)
	}
	return b
}

// catCombiner concatenates operands — associative, NON-commutative, so
// it detects any algorithm that combines out of rank order.
func catCombiner(a, b []byte) []byte { return append(clone(a), b...) }

func TestBcastAllAlgorithmsAllRootsDeliver(t *testing.T) {
	for name, alg := range Bcasts {
		for _, p := range testSizes {
			for root := 0; root < p; root += 3 {
				msg := payload(root, 0, 17)
				res := runSPMD(p, func(tr Transport) []byte {
					var in []byte
					if tr.Rank() == root {
						in = msg
					}
					return alg(tr, root, in)
				})
				for r, got := range res {
					if !bytes.Equal(got, msg) {
						t.Fatalf("%s p=%d root=%d: rank %d got %v", name, p, root, r, got)
					}
				}
			}
		}
	}
}

func TestGatherAllAlgorithmsCollectInRankOrder(t *testing.T) {
	for name, alg := range Gathers {
		for _, p := range testSizes {
			for root := 0; root < p; root += 2 {
				res := runSPMD(p, func(tr Transport) [][]byte {
					return alg(tr, root, payload(tr.Rank(), 0, 8))
				})
				for r, got := range res {
					if r != root {
						if got != nil {
							t.Fatalf("%s p=%d: non-root %d returned data", name, p, r)
						}
						continue
					}
					if len(got) != p {
						t.Fatalf("%s p=%d root=%d: %d blocks", name, p, root, len(got))
					}
					for i, b := range got {
						if !bytes.Equal(b, payload(i, 0, 8)) {
							t.Fatalf("%s p=%d root=%d: block %d wrong", name, p, root, i)
						}
					}
				}
			}
		}
	}
}

func TestGatherZeroByteBlocks(t *testing.T) {
	for name, alg := range Gathers {
		res := runSPMD(8, func(tr Transport) [][]byte {
			return alg(tr, 0, []byte{})
		})
		if len(res[0]) != 8 {
			t.Fatalf("%s: zero-byte gather returned %d blocks", name, len(res[0]))
		}
	}
}

func TestScatterAllAlgorithmsDistribute(t *testing.T) {
	for name, alg := range Scatters {
		for _, p := range testSizes {
			for root := 0; root < p; root += 2 {
				res := runSPMD(p, func(tr Transport) []byte {
					var blocks [][]byte
					if tr.Rank() == root {
						blocks = make([][]byte, p)
						for i := range blocks {
							blocks[i] = payload(i, 1, 12)
						}
					}
					return alg(tr, root, blocks)
				})
				for r, got := range res {
					if !bytes.Equal(got, payload(r, 1, 12)) {
						t.Fatalf("%s p=%d root=%d: rank %d got wrong block", name, p, root, r)
					}
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	p := 16
	res := runSPMD(p, func(tr Transport) [][]byte {
		var blocks [][]byte
		if tr.Rank() == 3 {
			blocks = make([][]byte, p)
			for i := range blocks {
				blocks[i] = payload(i, 2, 10)
			}
		}
		mine := ScatterBinomial(tr, 3, blocks)
		return GatherBinomial(tr, 3, mine)
	})
	for i, b := range res[3] {
		if !bytes.Equal(b, payload(i, 2, 10)) {
			t.Fatalf("round trip corrupted block %d", i)
		}
	}
}

func TestAlltoallAllAlgorithmsExchange(t *testing.T) {
	for name, alg := range Alltoalls {
		for _, p := range testSizes {
			res := runSPMD(p, func(tr Transport) [][]byte {
				blocks := make([][]byte, p)
				for d := range blocks {
					blocks[d] = mkAlltoallBlock(tr.Rank(), d, 6)
				}
				return alg(tr, blocks)
			})
			for me, got := range res {
				if len(got) != p {
					t.Fatalf("%s p=%d: rank %d has %d blocks", name, p, me, len(got))
				}
				for src, b := range got {
					if !bytes.Equal(b, mkAlltoallBlock(src, me, 6)) {
						t.Fatalf("%s p=%d: rank %d block from %d wrong: %v", name, p, me, src, b)
					}
				}
			}
		}
	}
}

func mkAlltoallBlock(src, dst, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(src*37 + dst*11 + j)
	}
	return b
}

func TestAlltoallZeroBytes(t *testing.T) {
	for name, alg := range Alltoalls {
		res := runSPMD(8, func(tr Transport) [][]byte {
			blocks := make([][]byte, 8)
			for i := range blocks {
				blocks[i] = []byte{}
			}
			return alg(tr, blocks)
		})
		for r := range res {
			if len(res[r]) != 8 {
				t.Fatalf("%s: zero-byte alltoall lost blocks at rank %d", name, r)
			}
		}
	}
}

func TestReduceAllAlgorithmsRankOrder(t *testing.T) {
	for name, alg := range Reduces {
		for _, p := range testSizes {
			for root := 0; root < p; root += 3 {
				res := runSPMD(p, func(tr Transport) []byte {
					return alg(tr, root, []byte{byte(tr.Rank())}, catCombiner)
				})
				// Non-commutative combiner: result must be 0,1,…,p-1.
				want := make([]byte, p)
				for i := range want {
					want[i] = byte(i)
				}
				if !bytes.Equal(res[root], want) {
					t.Fatalf("%s p=%d root=%d: reduce order %v, want %v", name, p, root, res[root], want)
				}
				for r := range res {
					if r != root && res[r] != nil {
						t.Fatalf("%s: non-root %d has a result", name, r)
					}
				}
			}
		}
	}
}

func TestScanAllAlgorithmsInclusivePrefix(t *testing.T) {
	for name, alg := range Scans {
		for _, p := range testSizes {
			res := runSPMD(p, func(tr Transport) []byte {
				return alg(tr, []byte{byte(tr.Rank())}, catCombiner)
			})
			for r, got := range res {
				want := make([]byte, r+1)
				for i := range want {
					want[i] = byte(i)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s p=%d: rank %d prefix %v, want %v", name, p, r, got, want)
				}
			}
		}
	}
}

func TestBarrierAllAlgorithmsComplete(t *testing.T) {
	// A barrier's correctness (no rank exits before all enter) is a
	// timing property verified in the mpi package tests; here we verify
	// completion (no deadlock, no stray messages) across sizes,
	// including back-to-back barriers reusing tags.
	for name, alg := range Barriers {
		for _, p := range testSizes {
			done := runSPMD(p, func(tr Transport) bool {
				for i := 0; i < 3; i++ {
					alg(tr)
				}
				return true
			})
			for r, ok := range done {
				if !ok {
					t.Fatalf("%s p=%d: rank %d incomplete", name, p, r)
				}
			}
		}
	}
}

func TestAllgatherAllAlgorithms(t *testing.T) {
	for name, alg := range Allgathers {
		for _, p := range testSizes {
			res := runSPMD(p, func(tr Transport) [][]byte {
				return alg(tr, payload(tr.Rank(), 4, 9))
			})
			for me, got := range res {
				if len(got) != p {
					t.Fatalf("%s p=%d: rank %d has %d blocks", name, p, me, len(got))
				}
				for src, b := range got {
					if !bytes.Equal(b, payload(src, 4, 9)) {
						t.Fatalf("%s p=%d: rank %d block %d wrong", name, p, me, src)
					}
				}
			}
		}
	}
}

func TestAllreduceAllAlgorithmsRankOrder(t *testing.T) {
	for name, alg := range Allreduces {
		for _, p := range testSizes {
			res := runSPMD(p, func(tr Transport) []byte {
				return alg(tr, []byte{byte(tr.Rank())}, catCombiner)
			})
			want := make([]byte, p)
			for i := range want {
				want[i] = byte(i)
			}
			for r, got := range res {
				if !bytes.Equal(got, want) {
					t.Fatalf("%s p=%d: rank %d got %v, want %v", name, p, r, got, want)
				}
			}
		}
	}
}

func TestSubtreeSize(t *testing.T) {
	// Sum of subtree sizes of a root's children plus the root itself
	// must equal p, for every p.
	for p := 1; p <= 64; p++ {
		total := 1 // vrank 0
		for mask := 1; mask < p; mask <<= 1 {
			if mask < p {
				total += subtreeSize(mask, p)
			}
		}
		if total != p {
			t.Fatalf("p=%d: subtree sizes sum to %d", p, total)
		}
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(16)
		size := rng.Intn(32)
		blocks := make([][]byte, n)
		for i := range blocks {
			blocks[i] = payload(i, trial, size)
		}
		got := split(concat(blocks), n)
		if len(got) != n {
			t.Fatalf("split returned %d blocks, want %d", len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i], blocks[i]) {
				t.Fatalf("block %d corrupted", i)
			}
		}
	}
}

func TestSplitRejectsUneven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	split(make([]byte, 10), 3)
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names(Alltoalls)
	if len(names) != 4 {
		t.Fatalf("alltoall registry has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

// Fuzz-style property check: for random sizes and roots, gather ∘
// scatter is the identity under both algorithm families.
func TestPropertyScatterGatherIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.Intn(20)
		root := rng.Intn(p)
		size := rng.Intn(24)
		sName := Names(Scatters)[rng.Intn(len(Scatters))]
		gName := Names(Gathers)[rng.Intn(len(Gathers))]
		scatter, gather := Scatters[sName], Gathers[gName]
		blocks := make([][]byte, p)
		for i := range blocks {
			blocks[i] = payload(i, trial, size)
		}
		res := runSPMD(p, func(tr Transport) [][]byte {
			var in [][]byte
			if tr.Rank() == root {
				in = blocks
			}
			return gather(tr, root, scatter(tr, root, in))
		})
		for i, b := range res[root] {
			if !bytes.Equal(b, blocks[i]) {
				t.Fatalf("trial %d (%s∘%s p=%d root=%d): block %d corrupted",
					trial, gName, sName, p, root, i)
			}
		}
	}
}

// Property: alltoall is an involution when every rank's blocks are
// symmetric (block[i][j] == block[j][i] pattern): running it twice
// returns the original matrix row.
func TestPropertyAlltoallTwiceRestoresMatrix(t *testing.T) {
	for name, alg := range Alltoalls {
		p := 9
		res := runSPMD(p, func(tr Transport) [][]byte {
			blocks := make([][]byte, p)
			for d := range blocks {
				blocks[d] = mkAlltoallBlock(tr.Rank(), d, 5)
			}
			return alg(tr, alg(tr, blocks))
		})
		for me, got := range res {
			for d, b := range got {
				if !bytes.Equal(b, mkAlltoallBlock(me, d, 5)) {
					t.Fatalf("%s: double alltoall did not restore (%d,%d)", name, me, d)
				}
			}
		}
	}
}

func ExampleBcastBinomial() {
	res := runSPMD(4, func(tr Transport) []byte {
		var msg []byte
		if tr.Rank() == 0 {
			msg = []byte("hello")
		}
		return BcastBinomial(tr, 0, msg)
	})
	fmt.Println(string(res[3]))
	// Output: hello
}

func TestBcastPipelinedAllRootsAndSizes(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += 2 {
			for _, size := range []int{0, 100, 5000, 13000} {
				msg := payload(root, size, size)
				res := runSPMD(p, func(tr Transport) []byte {
					var in []byte
					if tr.Rank() == root {
						in = msg
					}
					return BcastPipelined(tr, root, in, 4096)
				})
				for r, got := range res {
					if !bytes.Equal(got, msg) {
						t.Fatalf("p=%d root=%d size=%d: rank %d got %d bytes",
							p, root, size, r, len(got))
					}
				}
			}
		}
	}
}

func TestBcastPipelinedTinySegments(t *testing.T) {
	msg := payload(0, 1, 777)
	res := runSPMD(5, func(tr Transport) []byte {
		var in []byte
		if tr.Rank() == 0 {
			in = msg
		}
		return BcastPipelined(tr, 0, in, 64)
	})
	for r, got := range res {
		if !bytes.Equal(got, msg) {
			t.Fatalf("rank %d corrupted with 64-byte segments", r)
		}
	}
}
