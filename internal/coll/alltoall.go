package coll

// AlltoallLinear performs total exchange naively: every rank posts all
// p-1 sends in destination order, then drains all p-1 receives. This is
// the shape of the Paragon's NX implementation the paper calls "the
// least efficient scheme": all traffic floods the network at once and
// the unexpected-message queues absorb the burst.
func AlltoallLinear(t Transport, blocks [][]byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: alltoall needs exactly p blocks")
	}
	checkUniform(blocks)
	out := make([][]byte, p)
	out[rank] = blocks[rank]
	for r := 0; r < p; r++ {
		if r != rank {
			t.Send(r, tagAlltoall, blocks[r])
		}
	}
	for r := 0; r < p; r++ {
		if r != rank {
			out[r] = t.Recv(r, tagAlltoall)
		}
	}
	return out
}

// AlltoallPairwise performs total exchange in p-1 balanced rounds: in
// round r every rank sends to (rank+r) mod p and receives from
// (rank−r) mod p, so each round is a permutation and no endpoint is
// oversubscribed. This is the classic large-message algorithm; startup
// grows linearly in p (Fig. 1b) and the per-node injection rate bounds
// the aggregated bandwidth (§8).
func AlltoallPairwise(t Transport, blocks [][]byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: alltoall needs exactly p blocks")
	}
	checkUniform(blocks)
	out := make([][]byte, p)
	out[rank] = blocks[rank]
	for r := 1; r < p; r++ {
		dst := (rank + r) % p
		src := (rank - r + p) % p
		t.Send(dst, tagAlltoall+r<<8, blocks[dst])
		out[src] = t.Recv(src, tagAlltoall+r<<8)
	}
	return out
}

// AlltoallXOR performs total exchange in p-1 rounds pairing rank with
// rank XOR r. Requires p to be a power of two; each round is a perfect
// matching, which suits the T3D's torus (partners are mutual, so each
// pair exchanges over the same path in both directions).
func AlltoallXOR(t Transport, blocks [][]byte) [][]byte {
	p := t.Size()
	if p&(p-1) != 0 {
		return AlltoallPairwise(t, blocks) // fall back off powers of two
	}
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: alltoall needs exactly p blocks")
	}
	checkUniform(blocks)
	out := make([][]byte, p)
	out[rank] = blocks[rank]
	for r := 1; r < p; r++ {
		peer := rank ^ r
		t.Send(peer, tagAlltoall+r<<8, blocks[peer])
		out[peer] = t.Recv(peer, tagAlltoall+r<<8)
	}
	return out
}

// AlltoallBruck performs total exchange in ⌈log2 p⌉ rounds by shipping
// consolidated block bundles, trading bandwidth (each block moves up to
// log p times) for startup — the short-message algorithm of Bruck et
// al., which the CCL library the paper cites [3] popularized.
func AlltoallBruck(t Transport, blocks [][]byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: alltoall needs exactly p blocks")
	}
	size := checkUniform(blocks)

	// Phase 1: local rotation so that tmp[i] is the block destined for
	// rank (rank+i) mod p.
	tmp := make([][]byte, p)
	for i := 0; i < p; i++ {
		tmp[i] = blocks[(rank+i)%p]
	}

	// Phase 2: for each bit k, send every block whose offset has bit k
	// set to (rank+2^k), receive the same set from (rank−2^k).
	round := 0
	for k := 1; k < p; k <<= 1 {
		var idx []int
		for i := 0; i < p; i++ {
			if i&k != 0 {
				idx = append(idx, i)
			}
		}
		bundle := make([][]byte, 0, len(idx))
		for _, i := range idx {
			bundle = append(bundle, tmp[i])
		}
		dst := (rank + k) % p
		src := (rank - k + p) % p
		t.Send(dst, tagAlltoall+round<<8, merge(t, bundle))
		in := t.Recv(src, tagAlltoall+round<<8)
		var parts [][]byte
		if size > 0 {
			parts = split(in, len(idx))
		} else {
			parts = make([][]byte, len(idx))
			for i := range parts {
				parts[i] = []byte{}
			}
		}
		for j, i := range idx {
			tmp[i] = parts[j]
		}
		round++
	}

	// Phase 3: inverse rotation. After phase 2, tmp[i] holds the block
	// sent by rank (rank−i) mod p destined for me.
	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		out[(rank-i+p)%p] = tmp[i]
	}
	return out
}
