package coll

// The v-variants relax the equal-block-size contract: each rank may
// contribute or receive a different amount. The vendor implementations
// of the era were linear (tree consolidation does not pay off when
// block sizes are irregular), so these are linear fan-in/fan-out with
// the same cost structure as GatherLinear/ScatterLinear.

// Gatherv collects a variable-size block from every rank at root.
// Returns the blocks in rank order on root, nil elsewhere. Unlike MPI,
// receive counts are discovered from the messages, which is safe here
// because the transport preserves lengths.
func Gatherv(t Transport, root int, mine []byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if rank != root {
		t.Send(root, tagGatherv, mine)
		return nil
	}
	out := make([][]byte, p)
	out[root] = mine
	for r := 0; r < p; r++ {
		if r != root {
			out[r] = t.Recv(r, tagGatherv)
		}
	}
	return out
}

// Scatterv distributes per-rank variable-size blocks from root; every
// rank returns its block. The root passes one (possibly empty) block per
// rank; other ranks pass nil.
func Scatterv(t Transport, root int, blocks [][]byte) []byte {
	p := t.Size()
	rank := t.Rank()
	if rank != root {
		return t.Recv(root, tagScatter+0x40)
	}
	if len(blocks) != p {
		panic("coll: scatterv root needs exactly p blocks")
	}
	for r := 0; r < p; r++ {
		if r != root {
			t.Send(r, tagScatter+0x40, blocks[r])
		}
	}
	return blocks[rank]
}

// Alltoallv performs total exchange with per-destination block sizes:
// rank i's blocks[j] goes to rank j, any sizes. Pairwise-shift schedule,
// like AlltoallPairwise.
func Alltoallv(t Transport, blocks [][]byte) [][]byte {
	p := t.Size()
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: alltoallv needs exactly p blocks")
	}
	out := make([][]byte, p)
	out[rank] = blocks[rank]
	for r := 1; r < p; r++ {
		dst := (rank + r) % p
		src := (rank - r + p) % p
		t.Send(dst, tagAlltoall+0x40+r<<8, blocks[dst])
		out[src] = t.Recv(src, tagAlltoall+0x40+r<<8)
	}
	return out
}

// ReduceScatter reduces elementwise across ranks and scatters the result
// so rank i ends with the i-th block (MPI_Reduce_scatter_block with
// equal blocks). For power-of-two sizes it uses recursive halving —
// each round exchanges and combines half the remaining data — and falls
// back to reduce-then-scatter otherwise. The combiner must be
// commutative (as MPI requires for this algorithm): recursive halving
// interleaves source spans across rounds.
func ReduceScatter(t Transport, blocks [][]byte, f Combiner) []byte {
	p := t.Size()
	rank := t.Rank()
	if len(blocks) != p {
		panic("coll: reduce-scatter needs exactly p blocks")
	}
	checkUniform(blocks)
	if p&(p-1) != 0 {
		full := ReduceBinomial(t, 0, merge(t, blocks), f)
		var split2 [][]byte
		if rank == 0 {
			split2 = split(full, p)
		}
		return ScatterBinomial(t, 0, split2)
	}

	// Recursive halving: maintain the blocks for a shrinking span of
	// destination ranks; each round sends the half belonging to the
	// peer's side and combines the half received for mine.
	cur := make([][]byte, p)
	copy(cur, blocks)
	lo, hi := 0, p // my destination span [lo, hi)
	round := 0
	for d := p / 2; d >= 1; d /= 2 {
		peer := rank ^ d
		mid := lo + (hi-lo)/2
		var sendLo, sendHi, keepLo, keepHi int
		if rank < peer { // I keep the lower half
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		t.Send(peer, tagReduce+0x200+round<<9, merge(t, cur[sendLo:sendHi]))
		in := split(t.Recv(peer, tagReduce+0x200+round<<9), keepHi-keepLo)
		for i := keepLo; i < keepHi; i++ {
			a, b := cur[i], in[i-keepLo]
			if rank < peer {
				cur[i] = t.Combine(a, b, f)
			} else {
				cur[i] = t.Combine(b, a, f)
			}
		}
		lo, hi = keepLo, keepHi
		round++
	}
	return cur[rank]
}
