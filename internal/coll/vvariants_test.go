package coll

import (
	"bytes"
	"testing"
)

// addCombiner byte-wise sums operands — commutative, for the algorithms
// that require commutativity.
func addCombiner(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func TestGathervVariableSizes(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 16} {
		for root := 0; root < p; root += 3 {
			res := runSPMD(p, func(tr Transport) [][]byte {
				// Rank r contributes r+1 bytes.
				return Gatherv(tr, root, payload(tr.Rank(), 0, tr.Rank()+1))
			})
			got := res[root]
			for r := 0; r < p; r++ {
				if len(got[r]) != r+1 {
					t.Fatalf("p=%d root=%d: block %d has %d bytes, want %d", p, root, r, len(got[r]), r+1)
				}
				if !bytes.Equal(got[r], payload(r, 0, r+1)) {
					t.Fatalf("p=%d root=%d: block %d corrupted", p, root, r)
				}
			}
		}
	}
}

func TestScattervVariableSizes(t *testing.T) {
	for _, p := range []int{1, 3, 8, 13} {
		root := p / 2
		res := runSPMD(p, func(tr Transport) []byte {
			var blocks [][]byte
			if tr.Rank() == root {
				blocks = make([][]byte, p)
				for i := range blocks {
					blocks[i] = payload(i, 1, 2*i)
				}
			}
			return Scatterv(tr, root, blocks)
		})
		for r, b := range res {
			if !bytes.Equal(b, payload(r, 1, 2*r)) {
				t.Fatalf("p=%d: rank %d got wrong scatterv block", p, r)
			}
		}
	}
}

func TestAlltoallvVariableSizes(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 9} {
		res := runSPMD(p, func(tr Transport) [][]byte {
			blocks := make([][]byte, p)
			for d := range blocks {
				// Size depends on both endpoints: src+2*dst bytes.
				blocks[d] = mkAlltoallBlock(tr.Rank(), d, tr.Rank()+2*d)
			}
			return Alltoallv(tr, blocks)
		})
		for me, got := range res {
			for src, b := range got {
				want := mkAlltoallBlock(src, me, src+2*me)
				if !bytes.Equal(b, want) {
					t.Fatalf("p=%d: rank %d block from %d wrong", p, me, src)
				}
			}
		}
	}
}

func TestReduceScatterPowerOfTwo(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		res := runSPMD(p, func(tr Transport) []byte {
			blocks := make([][]byte, p)
			for i := range blocks {
				// blocks[i][0] = rank contribution to destination i.
				blocks[i] = []byte{byte(tr.Rank() + i)}
			}
			return ReduceScatter(tr, blocks, addCombiner)
		})
		// Destination i receives sum over ranks r of (r+i).
		sumRanks := p * (p - 1) / 2
		for i, b := range res {
			want := byte(sumRanks + p*i)
			if len(b) != 1 || b[0] != want {
				t.Fatalf("p=%d: dest %d got %v, want %d", p, i, b, want)
			}
		}
	}
}

func TestReduceScatterNonPowerOfTwoFallback(t *testing.T) {
	p := 6
	res := runSPMD(p, func(tr Transport) []byte {
		blocks := make([][]byte, p)
		for i := range blocks {
			blocks[i] = []byte{byte(tr.Rank()), byte(i)}
		}
		return ReduceScatter(tr, blocks, addCombiner)
	})
	sumRanks := byte(p * (p - 1) / 2)
	for i, b := range res {
		if b[0] != sumRanks || b[1] != byte(p*i) {
			t.Fatalf("dest %d got %v", i, b)
		}
	}
}

func TestBcastScatterAllgatherOddSizes(t *testing.T) {
	// Payload length not divisible by p: padding must round-trip.
	for _, p := range []int{2, 3, 8, 11} {
		msg := payload(0, 9, 101) // 101 bytes
		res := runSPMD(p, func(tr Transport) []byte {
			var in []byte
			if tr.Rank() == 1%p {
				in = msg
			}
			return BcastScatterAllgather(tr, 1%p, in)
		})
		for r, b := range res {
			if !bytes.Equal(b, msg) {
				t.Fatalf("p=%d: rank %d got %d bytes", p, r, len(b))
			}
		}
	}
}

func TestAllreduceRabenseifnerMatchesReduceBcast(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		size := 4 * p // divisible by p
		a := runSPMD(p, func(tr Transport) []byte {
			return AllreduceRabenseifner(tr, payload(tr.Rank(), 3, size), addCombiner)
		})
		b := runSPMD(p, func(tr Transport) []byte {
			return AllreduceReduceBcast(tr, payload(tr.Rank(), 3, size), addCombiner)
		})
		for r := range a {
			if !bytes.Equal(a[r], b[r]) {
				t.Fatalf("p=%d: rabenseifner disagrees with reduce+bcast at rank %d", p, r)
			}
		}
	}
}

func TestAllreduceRabenseifnerFallbacks(t *testing.T) {
	// Non-power-of-two size and non-divisible payload both fall back.
	res := runSPMD(6, func(tr Transport) []byte {
		return AllreduceRabenseifner(tr, []byte{byte(tr.Rank())}, addCombiner)
	})
	want := byte(15)
	for r, b := range res {
		if b[0] != want {
			t.Fatalf("rank %d got %d, want %d", r, b[0], want)
		}
	}
}
