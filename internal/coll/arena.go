package coll

import (
	"sync"
	"sync/atomic"
)

// The zero arena backs payload staging under opaque-payload transports
// (see OpaqueTransport): algorithms that would copy message bytes into
// a fresh buffer hand out a slice of this shared all-zero backing
// instead. Arena slices are never written — opaque mode skips every
// payload store — so overlapping reads from many goroutines are safe.
// The arena pointer is published atomically: once it is big enough (a
// few calls in), ZeroBytes is a lock-free load on every simulation
// worker; the mutex only serializes growth.
var (
	zeroMu    sync.Mutex
	zeroArena atomic.Pointer[[]byte]
)

// ZeroBytes returns an n-byte all-zero slice backed by the shared
// arena. Callers must treat it as immutable; it is only for payloads
// whose contents are immaterial (OpaqueTransport measurements).
func ZeroBytes(n int) []byte {
	if n == 0 {
		return empty
	}
	if p := zeroArena.Load(); p != nil && len(*p) >= n {
		return (*p)[:n:n]
	}
	zeroMu.Lock()
	defer zeroMu.Unlock()
	if p := zeroArena.Load(); p != nil && len(*p) >= n {
		return (*p)[:n:n]
	}
	size := 64 << 10
	for size < n {
		size <<= 1
	}
	arena := make([]byte, size)
	zeroArena.Store(&arena)
	return arena[:n:n]
}
