package coll

var empty = []byte{}

// BarrierCentral synchronizes via a central coordinator: everyone
// reports to rank 0, which then releases everyone. O(p) at the root.
func BarrierCentral(t Transport) {
	p := t.Size()
	if p == 1 {
		return
	}
	if t.Rank() == 0 {
		for r := 1; r < p; r++ {
			t.Recv(r, tagBarrier)
		}
		for r := 1; r < p; r++ {
			t.Send(r, tagRelease, empty)
		}
		return
	}
	t.Send(0, tagBarrier, empty)
	t.Recv(0, tagRelease)
}

// BarrierTree synchronizes with a binomial fan-in to rank 0 followed by
// a binomial release — 2·⌈log2 p⌉ message stages on the critical path.
// This is the MPICH shape behind the paper's 123·logp (SP2) and
// 147·logp (Paragon) barrier fits.
func BarrierTree(t Transport) {
	p := t.Size()
	if p == 1 {
		return
	}
	v := t.Rank() // root 0

	// Fan-in: collect from children, report to parent.
	mask := 1
	for mask < p {
		if v&mask != 0 {
			t.Send(v-mask, tagBarrier, empty)
			break
		}
		if v|mask < p {
			t.Recv(v|mask, tagBarrier)
		}
		mask <<= 1
	}
	// Release: mirror of the binomial broadcast.
	if v != 0 {
		mask = 1
		for mask < p {
			if v&mask != 0 {
				t.Recv(v-mask, tagRelease)
				break
			}
			mask <<= 1
		}
	} else {
		mask = 1
		for mask < p {
			mask <<= 1
		}
	}
	mask >>= 1
	for mask > 0 {
		if v+mask < p {
			t.Send(v+mask, tagRelease, empty)
		}
		mask >>= 1
	}
}

// BarrierDissemination synchronizes in ⌈log2 p⌉ rounds; in round k every
// rank signals (rank+2^k) mod p and waits for (rank−2^k) mod p. Each
// rank sends and receives exactly ⌈log2 p⌉ messages.
func BarrierDissemination(t Transport) {
	p := t.Size()
	rank := t.Rank()
	round := 0
	for dist := 1; dist < p; dist <<= 1 {
		t.Send((rank+dist)%p, tagBarrier+round<<8, empty)
		t.Recv((rank-dist+p)%p, tagBarrier+round<<8)
		round++
	}
}
