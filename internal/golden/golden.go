// Package golden pins the determinism surface of the estimation engine:
// one fixed sweep grid and one fixed calibration set whose outputs are
// compared byte for byte against committed goldens (testdata/ at the
// repository root) by the determinism tests, and regenerated only by
// cmd/goldengen. The committed files were produced by the
// pre-optimization engine, so they also prove that every optimization
// since — the direct-switch kernel, opaque payloads, measurement
// memoization, parallel calibration — changed nothing but speed.
package golden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/coll"
	"repro/internal/estimate"
	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/sweep"
)

// Spec is the fixed grid the goldens pin down: every machine,
// operation, and algorithm variant at two machine sizes and three
// message lengths — small enough to simulate in tests, wide enough to
// cross every collective code path.
func Spec() sweep.Spec {
	return sweep.Spec{
		Algorithms: sweep.AllAlgorithms(machine.Ops),
		Sizes:      []int{8, 32},
		Lengths:    []int{4, 1024, 65536},
		Config:     measure.Fast(),
	}
}

// Scenarios expands Spec.
func Scenarios() ([]sweep.Scenario, error) {
	return Spec().Expand()
}

// Markdown renders results the way the golden file stores them.
func Markdown(results []sweep.Result) ([]byte, error) {
	var buf bytes.Buffer
	title := fmt.Sprintf("Determinism golden — %d scenarios (sim backend)", len(results))
	if err := sweep.WriteMarkdown(&buf, title, results); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Calibrated returns a backend configured for the golden grid.
func Calibrated() *estimate.Calibrated {
	spec := Spec()
	return &estimate.Calibrated{Config: spec.Config, Sizes: spec.Sizes, Lengths: spec.Lengths}
}

// Triples enumerates every (machine, op, algorithm) calibration triple
// of the golden set, including the "default" alias.
func Triples() []estimate.Triple {
	var out []estimate.Triple
	for _, mach := range machine.All() {
		for _, op := range machine.Ops {
			algs := append([]string{sweep.DefaultAlgorithm}, coll.Algorithms(string(op))...)
			if op == machine.OpBarrier && mach.HardwareBarrier() {
				algs = append(algs, coll.AlgHardware)
			}
			sort.Strings(algs)
			for _, alg := range algs {
				out = append(out, estimate.Triple{Machine: mach, Op: op, Alg: alg})
			}
		}
	}
	return out
}

// Expressions fits every golden triple on c and returns them keyed
// "machine/op/alg".
func Expressions(c *estimate.Calibrated) map[string]fit.Expression {
	out := map[string]fit.Expression{}
	for _, tr := range Triples() {
		out[fmt.Sprintf("%s/%s/%s", tr.Machine.Name(), tr.Op, tr.Alg)] = c.Expression(tr.Machine, tr.Op, tr.Alg)
	}
	return out
}

// ExpressionsJSON renders expressions the way the golden file stores
// them (sorted keys, indented, trailing newline).
func ExpressionsJSON(exprs map[string]fit.Expression) ([]byte, error) {
	blob, err := json.MarshalIndent(exprs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
