package topology

import "fmt"

// Torus3D is a 3-dimensional torus with dimension-order (e-cube) routing
// and shortest-direction wraparound, modeling the Cray T3D interconnect.
// Each node has six outgoing links (±X, ±Y, ±Z).
type Torus3D struct {
	nx, ny, nz int
}

// Directions of the six per-node links, in link-ID order.
const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	dirZPlus
	dirZMinus
	numTorusDirs
)

// NewTorus3D returns an nx × ny × nz torus. All dimensions must be ≥ 1.
func NewTorus3D(nx, ny, nz int) *Torus3D {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("topology: torus dimensions must be ≥ 1")
	}
	return &Torus3D{nx: nx, ny: ny, nz: nz}
}

// TorusForNodes returns a torus with at least n nodes, choosing near-cubic
// dimensions the way T3D configurations were built up (powers of two).
func TorusForNodes(n int) *Torus3D {
	if n < 1 {
		panic("topology: need ≥ 1 node")
	}
	dims := [3]int{1, 1, 1}
	for i := 0; dims[0]*dims[1]*dims[2] < n; i++ {
		dims[i%3] *= 2
	}
	return NewTorus3D(dims[0], dims[1], dims[2])
}

// Name implements Topology.
func (t *Torus3D) Name() string { return fmt.Sprintf("torus3d(%dx%dx%d)", t.nx, t.ny, t.nz) }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.nx * t.ny * t.nz }

// Links implements Topology.
func (t *Torus3D) Links() int { return t.Nodes() * numTorusDirs }

// Dims returns the three torus dimensions.
func (t *Torus3D) Dims() (nx, ny, nz int) { return t.nx, t.ny, t.nz }

// Coord returns the (x, y, z) coordinate of node id.
func (t *Torus3D) Coord(id int) (x, y, z int) {
	checkNode(t, id)
	x = id % t.nx
	y = (id / t.nx) % t.ny
	z = id / (t.nx * t.ny)
	return
}

// NodeAt returns the node id at coordinate (x, y, z).
func (t *Torus3D) NodeAt(x, y, z int) int { return x + t.nx*(y+t.ny*z) }

// linkID returns the ID of node's outgoing link in direction dir.
func (t *Torus3D) linkID(node, dir int) LinkID { return LinkID(node*numTorusDirs + dir) }

// step returns the next coordinate and the direction when moving from c
// toward g along a ring of size n, taking the shorter way around.
func ringStep(c, g, n int) (next int, forward bool) {
	if c == g {
		return c, true
	}
	fwd := (g - c + n) % n
	bwd := (c - g + n) % n
	if fwd <= bwd { // prefer + direction on ties, as e-cube routers did
		return (c + 1) % n, true
	}
	return (c - 1 + n) % n, false
}

// Route implements Topology using dimension-order routing: the message
// fully corrects X, then Y, then Z, each along the shorter ring arc.
func (t *Torus3D) Route(src, dst int) []LinkID {
	checkNode(t, src)
	checkNode(t, dst)
	if src == dst {
		return nil
	}
	x, y, z := t.Coord(src)
	gx, gy, gz := t.Coord(dst)
	var path []LinkID
	for x != gx {
		node := t.NodeAt(x, y, z)
		nx, fwd := ringStep(x, gx, t.nx)
		dir := dirXPlus
		if !fwd {
			dir = dirXMinus
		}
		path = append(path, t.linkID(node, dir))
		x = nx
	}
	for y != gy {
		node := t.NodeAt(x, y, z)
		ny, fwd := ringStep(y, gy, t.ny)
		dir := dirYPlus
		if !fwd {
			dir = dirYMinus
		}
		path = append(path, t.linkID(node, dir))
		y = ny
	}
	for z != gz {
		node := t.NodeAt(x, y, z)
		nz, fwd := ringStep(z, gz, t.nz)
		dir := dirZPlus
		if !fwd {
			dir = dirZMinus
		}
		path = append(path, t.linkID(node, dir))
		z = nz
	}
	return path
}

// Diameter implements Topology.
func (t *Torus3D) Diameter() int { return t.nx/2 + t.ny/2 + t.nz/2 }
