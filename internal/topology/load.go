package topology

// Traffic analysis: channel load under uniform all-to-all traffic — the
// quantity that bounds total-exchange bandwidth on a topology. The load
// of a link is the number of (src, dst) routes crossing it; the maximum
// load over links is the serialization factor a total exchange suffers
// on the most contended channel.

// LoadProfile summarizes per-link route counts under uniform all-pairs
// traffic (one route per ordered pair of distinct nodes).
type LoadProfile struct {
	MaxLoad   int     // routes over the busiest link
	MeanLoad  float64 // average over links that carry ≥ 1 route
	UsedLinks int     // links carrying at least one route
}

// AllPairsLoad computes the load profile of t under uniform all-to-all
// traffic by enumerating every route.
func AllPairsLoad(t Topology) LoadProfile {
	loads := make([]int, t.Links())
	n := t.Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			for _, l := range t.Route(s, d) {
				loads[l]++
			}
		}
	}
	var p LoadProfile
	total := 0
	for _, v := range loads {
		if v == 0 {
			continue
		}
		p.UsedLinks++
		total += v
		if v > p.MaxLoad {
			p.MaxLoad = v
		}
	}
	if p.UsedLinks > 0 {
		p.MeanLoad = float64(total) / float64(p.UsedLinks)
	}
	return p
}

// SaturationBandwidthMBs returns the aggregate bandwidth in MB/s a
// uniform total exchange can sustain on t when every link runs at
// linkMBs: each of the n(n−1) flows gets linkMBs/MaxLoad, so the
// aggregate is n(n−1)·linkMBs/MaxLoad.
func SaturationBandwidthMBs(t Topology, linkMBs float64) float64 {
	p := AllPairsLoad(t)
	if p.MaxLoad == 0 {
		return 0
	}
	n := float64(t.Nodes())
	return n * (n - 1) * linkMBs / float64(p.MaxLoad)
}
