// Package topology models the interconnect topologies of the three
// machines evaluated in the paper: the Cray T3D 3-D torus, the Intel
// Paragon 2-D mesh, and the IBM SP2 multistage omega network, plus a
// crossbar used in tests. Each topology enumerates directed links and
// computes the deterministic route (sequence of link IDs) between any
// pair of nodes, using the routing algorithm the real machine used
// (dimension-order for the torus, XY for the mesh, destination-bit for
// the omega network).
package topology

import "fmt"

// LinkID identifies one directed link of a topology.
type LinkID int

// Topology describes an interconnect as a set of nodes joined by
// directed links, with deterministic routing.
type Topology interface {
	// Name identifies the topology, e.g. "torus3d(4x4x4)".
	Name() string
	// Nodes returns the number of addressable compute nodes.
	Nodes() int
	// Links returns the total number of directed links, valid IDs being
	// 0..Links()-1. Link IDs cover both network-internal links and, for
	// indirect networks, node-to-switch attachment links.
	Links() int
	// Route returns the ordered link IDs traversed by a message from
	// src to dst. Route(x, x) is an empty path (intra-node transfer).
	Route(src, dst int) []LinkID
	// Diameter returns the maximum hop count between any node pair.
	Diameter() int
}

func checkNode(t Topology, n int) {
	if n < 0 || n >= t.Nodes() {
		panic(fmt.Sprintf("topology %s: node %d out of range [0,%d)", t.Name(), n, t.Nodes()))
	}
}

// Hops returns the number of links on the route from src to dst.
func Hops(t Topology, src, dst int) int { return len(t.Route(src, dst)) }

// AverageDistance returns the mean hop count over all ordered pairs of
// distinct nodes. It is used in calibration and reporting.
func AverageDistance(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				total += Hops(t, s, d)
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}
