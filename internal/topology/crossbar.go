package topology

import "fmt"

// Crossbar is a single-stage full crossbar: every pair of distinct nodes
// is two hops apart (injection link, ejection link) and no two routes
// between different sources and destinations share a link. It is used in
// tests as an idealized contention-free fabric.
type Crossbar struct {
	n int
}

// NewCrossbar returns an n-node crossbar.
func NewCrossbar(n int) *Crossbar {
	if n < 1 {
		panic("topology: need ≥ 1 node")
	}
	return &Crossbar{n: n}
}

// Name implements Topology.
func (c *Crossbar) Name() string { return fmt.Sprintf("crossbar(%d)", c.n) }

// Nodes implements Topology.
func (c *Crossbar) Nodes() int { return c.n }

// Links implements Topology: n injection links then n ejection links.
func (c *Crossbar) Links() int { return 2 * c.n }

// Route implements Topology.
func (c *Crossbar) Route(src, dst int) []LinkID {
	checkNode(c, src)
	checkNode(c, dst)
	if src == dst {
		return nil
	}
	return []LinkID{LinkID(src), LinkID(c.n + dst)}
}

// Diameter implements Topology.
func (c *Crossbar) Diameter() int {
	if c.n == 1 {
		return 0
	}
	return 2
}
