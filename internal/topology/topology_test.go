package topology

import (
	"testing"
	"testing/quick"
)

// endpoints recovers, for a given topology, which node each link leaves
// from (for validation that consecutive route links are adjacent). We
// validate structural invariants instead: paths are loop-free in link
// IDs, within diameter, and terminate correctly by construction of the
// routing functions, which we cross-check with coordinate arithmetic.

func TestTorusCoordRoundTrip(t *testing.T) {
	to := NewTorus3D(4, 2, 8)
	for id := 0; id < to.Nodes(); id++ {
		x, y, z := to.Coord(id)
		if to.NodeAt(x, y, z) != id {
			t.Fatalf("coord round trip failed for %d", id)
		}
	}
}

func TestTorusRouteLengthIsManhattanRingDistance(t *testing.T) {
	to := NewTorus3D(4, 4, 4)
	ringDist := func(a, b, n int) int {
		d := (a - b + n) % n
		if n-d < d {
			d = n - d
		}
		return d
	}
	for s := 0; s < to.Nodes(); s++ {
		for d := 0; d < to.Nodes(); d++ {
			sx, sy, sz := to.Coord(s)
			dx, dy, dz := to.Coord(d)
			want := ringDist(sx, dx, 4) + ringDist(sy, dy, 4) + ringDist(sz, dz, 4)
			if got := Hops(to, s, d); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestTorusRouteWithinDiameter(t *testing.T) {
	for _, to := range []*Torus3D{NewTorus3D(2, 2, 2), NewTorus3D(4, 4, 2), NewTorus3D(8, 4, 4)} {
		for s := 0; s < to.Nodes(); s++ {
			for d := 0; d < to.Nodes(); d++ {
				if h := Hops(to, s, d); h > to.Diameter() {
					t.Fatalf("%s: hops(%d,%d)=%d exceeds diameter %d", to.Name(), s, d, h, to.Diameter())
				}
			}
		}
	}
}

func TestTorusSelfRouteEmpty(t *testing.T) {
	to := NewTorus3D(4, 4, 4)
	for id := 0; id < to.Nodes(); id++ {
		if len(to.Route(id, id)) != 0 {
			t.Fatalf("self route of %d not empty", id)
		}
	}
}

func TestTorusDistanceSymmetric(t *testing.T) {
	// Hop *count* is symmetric on a torus with shortest-arc routing.
	to := NewTorus3D(4, 8, 2)
	for s := 0; s < to.Nodes(); s++ {
		for d := s + 1; d < to.Nodes(); d++ {
			if Hops(to, s, d) != Hops(to, d, s) {
				t.Fatalf("asymmetric distance between %d and %d", s, d)
			}
		}
	}
}

func TestTorusForNodes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 100, 128} {
		to := TorusForNodes(n)
		if to.Nodes() < n {
			t.Fatalf("TorusForNodes(%d) has %d nodes", n, to.Nodes())
		}
		if to.Nodes() > 2*n {
			t.Fatalf("TorusForNodes(%d) oversized: %d", n, to.Nodes())
		}
	}
}

func TestTorusLinkIDsInRange(t *testing.T) {
	to := NewTorus3D(4, 4, 4)
	prop := func(s, d uint8) bool {
		src, dst := int(s)%to.Nodes(), int(d)%to.Nodes()
		for _, l := range to.Route(src, dst) {
			if int(l) < 0 || int(l) >= to.Links() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRouteNoRepeatedLinks(t *testing.T) {
	to := NewTorus3D(8, 8, 2)
	prop := func(s, d uint8) bool {
		src, dst := int(s)%to.Nodes(), int(d)%to.Nodes()
		seen := map[LinkID]bool{}
		for _, l := range to.Route(src, dst) {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshRouteLengthIsManhattan(t *testing.T) {
	m := NewMesh2D(8, 16)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	for s := 0; s < m.Nodes(); s += 7 {
		for d := 0; d < m.Nodes(); d += 5 {
			sx, sy := m.Coord(s)
			dx, dy := m.Coord(d)
			want := abs(sx-dx) + abs(sy-dy)
			if got := Hops(m, s, d); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestMeshDiameter(t *testing.T) {
	m := NewMesh2D(16, 8)
	if m.Diameter() != 22 {
		t.Fatalf("diameter = %d, want 22", m.Diameter())
	}
	if got := Hops(m, 0, m.Nodes()-1); got != 22 {
		t.Fatalf("corner-to-corner hops = %d, want 22", got)
	}
}

func TestMeshXYOrdering(t *testing.T) {
	// XY routing corrects X completely before Y: from (0,0) to (2,2) the
	// first two links must be +X links of nodes (0,0) and (1,0).
	m := NewMesh2D(4, 4)
	path := m.Route(m.NodeAt(0, 0), m.NodeAt(2, 2))
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	if path[0] != m.linkID(m.NodeAt(0, 0), meshXPlus) || path[1] != m.linkID(m.NodeAt(1, 0), meshXPlus) {
		t.Fatalf("XY routing violated: %v", path)
	}
	if path[2] != m.linkID(m.NodeAt(2, 0), meshYPlus) || path[3] != m.linkID(m.NodeAt(2, 1), meshYPlus) {
		t.Fatalf("XY routing violated in Y phase: %v", path)
	}
}

func TestMeshForNodes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 64, 100, 128} {
		m := MeshForNodes(n)
		if m.Nodes() < n {
			t.Fatalf("MeshForNodes(%d) has %d", n, m.Nodes())
		}
	}
}

func TestOmegaUniformPathLength(t *testing.T) {
	for _, o := range []*Omega{NewOmega(16, 2), NewOmega(16, 4), NewOmega(64, 4), NewOmega(128, 2)} {
		want := o.Stages() + 1
		for s := 0; s < o.Nodes(); s += 3 {
			for d := 0; d < o.Nodes(); d += 5 {
				if s == d {
					continue
				}
				if got := Hops(o, s, d); got != want {
					t.Fatalf("%s: hops(%d,%d) = %d, want %d", o.Name(), s, d, got, want)
				}
			}
		}
	}
}

func TestOmegaRoutesDistinctDestinationsDisjointFinalLink(t *testing.T) {
	// The final link of a route is the ejection link, unique per
	// destination: two routes to different destinations must end on
	// different links.
	o := NewOmega(64, 4)
	for src := 0; src < 8; src++ {
		last := map[LinkID]int{}
		for dst := 0; dst < o.Nodes(); dst++ {
			if dst == src {
				continue
			}
			p := o.Route(src, dst)
			l := p[len(p)-1]
			if prev, dup := last[l]; dup {
				t.Fatalf("destinations %d and %d share final link %d", prev, dst, l)
			}
			last[l] = dst
		}
	}
}

func TestOmegaPermutationRoutingIdentity(t *testing.T) {
	// The identity permutation (node i sends to node i XOR shift within
	// switch groups) is congestion-free for the shuffle: verify at least
	// that routes i→i+n/2 all have distinct links per stage (a classic
	// omega-routable permutation).
	o := NewOmega(16, 2)
	used := map[LinkID]int{}
	for i := 0; i < o.Nodes(); i++ {
		d := (i + o.Nodes()/2) % o.Nodes()
		for _, l := range o.Route(i, d) {
			used[l]++
		}
	}
	for l, c := range used {
		if c > 1 {
			t.Fatalf("link %d used %d times by a routable permutation", l, c)
		}
	}
}

func TestOmegaForNodes(t *testing.T) {
	cases := []struct{ n, nodes, radix int }{
		{2, 2, 2},
		{4, 4, 4},
		{8, 8, 2},
		{16, 16, 4},
		{64, 64, 4},
		{128, 128, 2},
		{100, 128, 2},
	}
	for _, c := range cases {
		o := OmegaForNodes(c.n)
		if o.Nodes() != c.nodes || o.Radix() != c.radix {
			t.Fatalf("OmegaForNodes(%d) = %s", c.n, o.Name())
		}
	}
}

func TestOmegaBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power size")
		}
	}()
	NewOmega(12, 2)
}

func TestCrossbarDisjointRoutes(t *testing.T) {
	c := NewCrossbar(16)
	used := map[LinkID]bool{}
	// A permutation: every route must be link-disjoint.
	for i := 0; i < 16; i++ {
		for _, l := range c.Route(i, (i+5)%16) {
			if used[l] {
				t.Fatal("crossbar routes collide under permutation traffic")
			}
			used[l] = true
		}
	}
}

func TestAverageDistance(t *testing.T) {
	// Crossbar: every distinct pair is 2 hops.
	if got := AverageDistance(NewCrossbar(8)); got != 2 {
		t.Fatalf("crossbar average distance = %v", got)
	}
	// 4x4x4 torus: mean ring distance per dim = (0+1+1+2)/4 = 1, times 3
	// dims, over ordered pairs of distinct nodes: 64*64*3/ (64*63).
	want := float64(64*64*3) / float64(64*63)
	if got := AverageDistance(NewTorus3D(4, 4, 4)); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("torus average distance = %v, want %v", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	topos := []Topology{NewTorus3D(2, 2, 2), NewMesh2D(4, 4), NewOmega(8, 2), NewCrossbar(4)}
	for _, tp := range topos {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on out-of-range node", tp.Name())
				}
			}()
			tp.Route(0, tp.Nodes())
		}()
	}
}

func TestLinksCountConsistent(t *testing.T) {
	topos := []Topology{NewTorus3D(4, 4, 2), NewMesh2D(8, 4), NewOmega(32, 2), NewCrossbar(8)}
	for _, tp := range topos {
		maxID := -1
		for s := 0; s < tp.Nodes(); s++ {
			for d := 0; d < tp.Nodes(); d++ {
				for _, l := range tp.Route(s, d) {
					if int(l) > maxID {
						maxID = int(l)
					}
					if int(l) < 0 || int(l) >= tp.Links() {
						t.Fatalf("%s: link %d out of [0,%d)", tp.Name(), l, tp.Links())
					}
				}
			}
		}
	}
}

func TestAllPairsLoadCrossbar(t *testing.T) {
	// Crossbar: each injection link carries n-1 routes (one per
	// destination), each ejection link n-1 (one per source).
	c := NewCrossbar(8)
	p := AllPairsLoad(c)
	if p.MaxLoad != 7 {
		t.Fatalf("crossbar max load = %d, want 7", p.MaxLoad)
	}
	if p.UsedLinks != 16 {
		t.Fatalf("used links = %d, want 16", p.UsedLinks)
	}
}

func TestAllPairsLoadTorusBeatsMesh(t *testing.T) {
	// With wraparound a torus spreads uniform traffic over more links
	// than a mesh of the same size: its busiest channel carries less.
	torus := NewTorus3D(4, 4, 4)
	mesh := NewMesh2D(8, 8)
	lt := AllPairsLoad(torus)
	lm := AllPairsLoad(mesh)
	if lt.MaxLoad >= lm.MaxLoad {
		t.Fatalf("torus max load %d should be below mesh %d", lt.MaxLoad, lm.MaxLoad)
	}
}

func TestSaturationBandwidthOrderingMatchesPaper(t *testing.T) {
	// At 64 nodes with the paper's link rates, the topology-level
	// total-exchange ceilings must rank T3D first — same direction as
	// the measured 1.745/0.879/0.818 GB/s (the software layer, not the
	// wires, is the real limiter; these ceilings sit far above).
	t3d := SaturationBandwidthMBs(NewTorus3D(4, 4, 4), 300)
	par := SaturationBandwidthMBs(NewMesh2D(8, 8), 175)
	sp2 := SaturationBandwidthMBs(OmegaForNodes(64), 40)
	if !(t3d > par && par > sp2) {
		t.Fatalf("saturation ordering broken: T3D %.0f, Paragon %.0f, SP2 %.0f", t3d, par, sp2)
	}
	// All ceilings exceed the measured (software-limited) rates.
	if t3d < 1745 || par < 879 || sp2 < 818 {
		t.Fatalf("hardware ceiling below measured software rate: %.0f %.0f %.0f", t3d, par, sp2)
	}
}

func TestOmegaLoadUniform(t *testing.T) {
	// In an omega network every route has the same length and the
	// shuffle spreads uniform traffic evenly: every link carries the
	// same load n-1... per stage column. Verify max equals mean.
	o := NewOmega(16, 2)
	p := AllPairsLoad(o)
	if float64(p.MaxLoad) > p.MeanLoad*1.5 {
		t.Fatalf("omega uniform traffic unexpectedly skewed: max %d mean %.1f", p.MaxLoad, p.MeanLoad)
	}
}
