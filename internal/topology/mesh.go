package topology

import "fmt"

// Mesh2D is a 2-dimensional mesh (no wraparound) with XY routing,
// modeling the Intel Paragon interconnect: messages first travel along X
// to the destination column, then along Y. Each node has four outgoing
// links (+X, −X, +Y, −Y); edge links exist but are never routed over.
type Mesh2D struct {
	nx, ny int
}

const (
	meshXPlus = iota
	meshXMinus
	meshYPlus
	meshYMinus
	numMeshDirs
)

// NewMesh2D returns an nx × ny mesh.
func NewMesh2D(nx, ny int) *Mesh2D {
	if nx < 1 || ny < 1 {
		panic("topology: mesh dimensions must be ≥ 1")
	}
	return &Mesh2D{nx: nx, ny: ny}
}

// MeshForNodes returns a mesh with at least n nodes, preferring the
// tall-rectangle aspect ratios of real Paragon installations (the SDSC
// Paragon was a 16-column mesh).
func MeshForNodes(n int) *Mesh2D {
	if n < 1 {
		panic("topology: need ≥ 1 node")
	}
	nx := 1
	for nx*nx < n {
		nx *= 2
	}
	ny := (n + nx - 1) / nx
	return NewMesh2D(nx, ny)
}

// Name implements Topology.
func (m *Mesh2D) Name() string { return fmt.Sprintf("mesh2d(%dx%d)", m.nx, m.ny) }

// Nodes implements Topology.
func (m *Mesh2D) Nodes() int { return m.nx * m.ny }

// Links implements Topology.
func (m *Mesh2D) Links() int { return m.Nodes() * numMeshDirs }

// Dims returns the mesh dimensions.
func (m *Mesh2D) Dims() (nx, ny int) { return m.nx, m.ny }

// Coord returns the (x, y) coordinate of node id.
func (m *Mesh2D) Coord(id int) (x, y int) {
	checkNode(m, id)
	return id % m.nx, id / m.nx
}

// NodeAt returns the node id at coordinate (x, y).
func (m *Mesh2D) NodeAt(x, y int) int { return x + m.nx*y }

func (m *Mesh2D) linkID(node, dir int) LinkID { return LinkID(node*numMeshDirs + dir) }

// Route implements Topology using XY dimension-order routing.
func (m *Mesh2D) Route(src, dst int) []LinkID {
	checkNode(m, src)
	checkNode(m, dst)
	if src == dst {
		return nil
	}
	x, y := m.Coord(src)
	gx, gy := m.Coord(dst)
	var path []LinkID
	for x != gx {
		node := m.NodeAt(x, y)
		if gx > x {
			path = append(path, m.linkID(node, meshXPlus))
			x++
		} else {
			path = append(path, m.linkID(node, meshXMinus))
			x--
		}
	}
	for y != gy {
		node := m.NodeAt(x, y)
		if gy > y {
			path = append(path, m.linkID(node, meshYPlus))
			y++
		} else {
			path = append(path, m.linkID(node, meshYMinus))
			y--
		}
	}
	return path
}

// Diameter implements Topology.
func (m *Mesh2D) Diameter() int { return (m.nx - 1) + (m.ny - 1) }
