package topology

import "fmt"

// Omega is a multistage omega (shuffle-exchange) network of radix-k
// crossbar switch elements, modeling the IBM SP2's multistage High
// Performance Switch, which was built from Vulcan switch boards whose
// 8-port elements act as 4×4 bidirectional crossbars. Every route
// traverses exactly Stages()+1 links (one injection link plus one link
// after every stage), matching the SP2's nearly uniform node-to-node
// latency.
type Omega struct {
	n      int // nodes; n = radix^stages
	radix  int
	stages int
}

// NewOmega returns an omega network over n nodes built from radix-k
// switches. n must be an exact power of radix.
func NewOmega(n, radix int) *Omega {
	if radix < 2 {
		panic("topology: omega radix must be ≥ 2")
	}
	stages := 0
	for v := 1; v < n; v *= radix {
		stages++
		if stages > 32 {
			break
		}
	}
	if pow(radix, stages) != n {
		panic(fmt.Sprintf("topology: omega size %d is not a power of radix %d", n, radix))
	}
	return &Omega{n: n, radix: radix, stages: stages}
}

// OmegaForNodes returns an omega network with at least n nodes, using
// 4×4 switch elements where the size allows (as on the SP2) and 2×2
// elements otherwise.
func OmegaForNodes(n int) *Omega {
	if n < 1 {
		panic("topology: need ≥ 1 node")
	}
	size := 1
	lg := 0
	for size < n {
		size *= 2
		lg++
	}
	if lg%2 == 0 && lg > 0 {
		return NewOmega(size, 4)
	}
	return NewOmega(size, 2)
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Name implements Topology.
func (o *Omega) Name() string {
	return fmt.Sprintf("omega(%d,%dx%d)", o.n, o.radix, o.radix)
}

// Nodes implements Topology.
func (o *Omega) Nodes() int { return o.n }

// Stages returns the number of switch stages.
func (o *Omega) Stages() int { return o.stages }

// Radix returns the switch radix.
func (o *Omega) Radix() int { return o.radix }

// Links implements Topology: n injection links plus n links after each
// of the stages (the final stage's outputs are the ejection links).
func (o *Omega) Links() int { return o.n * (o.stages + 1) }

// Route implements Topology using destination-digit routing: after the
// perfect shuffle of stage s, the switch forwards on the output selected
// by the s-th most significant radix-k digit of the destination.
func (o *Omega) Route(src, dst int) []LinkID {
	checkNode(o, src)
	checkNode(o, dst)
	if src == dst {
		return nil
	}
	if o.stages == 0 {
		return nil
	}
	path := make([]LinkID, 0, o.stages+1)
	pos := src
	path = append(path, LinkID(pos)) // injection link
	for s := 0; s < o.stages; s++ {
		digit := (dst / pow(o.radix, o.stages-1-s)) % o.radix
		pos = (pos*o.radix + digit) % o.n
		path = append(path, LinkID(o.n+s*o.n+pos))
	}
	return path
}

// Diameter implements Topology: all routes have the same length.
func (o *Omega) Diameter() int {
	if o.stages == 0 {
		return 0
	}
	return o.stages + 1
}
