// Machinecompare: run every collective on all three simulated machines
// at one configuration and reproduce the paper's headline observations —
// the T3D's across-the-board lead, its 3 µs hardwired barrier, and the
// SP2/Paragon ranking flip between short and long messages.
//
// The comparison loop goes through the estimate package, so swapping
// the exact simulator for the instant analytic backend is a one-line
// change (see the closing Table 3 cross-check).
package main

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/machine"
	"repro/internal/measure"
)

func main() {
	const p = 32
	cfg := measure.Fast()
	sim := estimate.Sim{}

	for _, m := range []int{16, 65536} {
		fmt.Printf("== p=%d nodes, m=%d bytes per pair ==\n", p, m)
		fmt.Printf("  %-10s %12s %12s %12s   winner\n", "operation", "SP2", "T3D", "Paragon")
		for _, op := range machine.Ops {
			ests, err := estimate.Compare(sim, machine.Names(), op, p, m, cfg)
			if err != nil {
				panic(err) // the fixed study's names always resolve
			}
			times := map[string]float64{}
			for _, e := range ests {
				times[e.Sample.Machine] = e.Sample.Micros
			}
			fmt.Printf("  %-10s %10.1fµs %10.1fµs %10.1fµs   %s\n",
				op, times["SP2"], times["T3D"], times["Paragon"],
				estimate.Fastest(ests).Sample.Machine)
		}
		fmt.Println()
	}
	fmt.Println("Short messages: the SP2 leads the Paragon (NX startup).")
	fmt.Println("Long messages: the Paragon overtakes the SP2 everywhere but reduce.")
	fmt.Println("The T3D leads almost everything — hardwired barrier, BLT, fast messaging.")

	// The same comparison answered without simulating anything: the
	// paper's Table 3 expressions through the analytic backend.
	analytic := estimate.PaperAnalytic()
	fmt.Println("\nTable 3 cross-check (analytic backend, no simulation):")
	for _, m := range []int{16, 65536} {
		ests, err := estimate.Compare(analytic, machine.Names(), machine.OpAlltoall, p, m, cfg)
		if err != nil {
			panic(err)
		}
		best := estimate.Fastest(ests)
		fmt.Printf("  alltoall m=%-6d → %s predicts %s at %.1f µs\n",
			m, estimate.BackendAnalytic, best.Sample.Machine, best.Sample.Micros)
	}
}
