// Machinecompare: run every collective on all three simulated machines
// at one configuration and reproduce the paper's headline observations —
// the T3D's across-the-board lead, its 3 µs hardwired barrier, and the
// SP2/Paragon ranking flip between short and long messages.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/measure"
)

func main() {
	const p = 32
	cfg := measure.Fast()

	for _, m := range []int{16, 65536} {
		fmt.Printf("== p=%d nodes, m=%d bytes per pair ==\n", p, m)
		fmt.Printf("  %-10s %12s %12s %12s   winner\n", "operation", "SP2", "T3D", "Paragon")
		for _, op := range machine.Ops {
			msg := m
			if op == machine.OpBarrier {
				msg = 0
			}
			times := map[string]float64{}
			for _, mach := range machine.All() {
				times[mach.Name()] = measure.MeasureOp(mach, op, p, msg, cfg).Micros
			}
			winner := "SP2"
			for _, name := range []string{"T3D", "Paragon"} {
				if times[name] < times[winner] {
					winner = name
				}
			}
			fmt.Printf("  %-10s %10.1fµs %10.1fµs %10.1fµs   %s\n",
				op, times["SP2"], times["T3D"], times["Paragon"], winner)
		}
		fmt.Println()
	}
	fmt.Println("Short messages: the SP2 leads the Paragon (NX startup).")
	fmt.Println("Long messages: the Paragon overtakes the SP2 everywhere but reduce.")
	fmt.Println("The T3D leads almost everything — hardwired barrier, BLT, fast messaging.")
}
